// RL allocation: the paper's §VII-C generalizability discussion made
// concrete. ARGO's tuning strategies — completely unchanged — allocate
// CPU cores to RL Actors and GPU streaming multiprocessors to the Learner
// on a simulated heterogeneous platform, balancing experience production
// against gradient-step consumption. The custom allocation space plugs
// into the public runtime via WithSpace.
//
//	go run ./examples/rlallocation
package main

import (
	"context"
	"fmt"
	"log"

	"argo"
	"argo/internal/rlsim"
	"argo/internal/search"
)

func main() {
	obj := rlsim.NewObjective()
	space := rlsim.Space(obj.Platform)
	fmt.Printf("platform: %s (%d CPU cores, %d SMs)\n", obj.Platform.Name, obj.Platform.CPUCores, obj.Platform.TotalSMs)
	fmt.Printf("objective: seconds per %.0g environment steps\n", obj.Workload.TargetSteps)
	fmt.Printf("allocation space: %d configurations\n\n", space.Size())

	exh := search.Exhaustive(space, obj)
	fmt.Printf("exhaustive optimum: %d actor groups × %d cores, %d SM units → %.1fs\n\n",
		exh.Best.Procs, exh.Best.SampleCores, exh.Best.TrainCores, exh.BestTime)

	budget := space.Size() / 20
	rt, err := argo.NewRuntime(budget, budget,
		argo.WithSpace(space),
		argo.WithStrategy(argo.StrategyBayesOpt),
		argo.WithSeed(3),
	)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := rt.Run(context.Background(), func(_ context.Context, cfg argo.Config, _ int) (float64, error) {
		return obj.Evaluate(cfg), nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auto-tuner (%d searches, 5%%): %d actor groups × %d cores, %d SM units → %.1fs (%.0f%% of optimal)\n",
		budget, rep.Best.Procs, rep.Best.SampleCores, rep.Best.TrainCores, rep.BestEpochSeconds,
		100*exh.BestTime/rep.BestEpochSeconds)
	fmt.Println("\nactors ↔ sampling cores, learner ↔ training cores: the same")
	fmt.Println("black-box tuner that configures GNN training balances RL pipelines.")
}
