// RL allocation: the paper's §VII-C generalizability discussion made
// concrete. ARGO's auto-tuner — completely unchanged — allocates CPU
// cores to RL Actors and GPU streaming multiprocessors to the Learner on
// a simulated heterogeneous platform, balancing experience production
// against gradient-step consumption.
//
//	go run ./examples/rlallocation
package main

import (
	"fmt"

	"argo/internal/bayesopt"
	"argo/internal/rlsim"
	"argo/internal/search"
)

func main() {
	obj := rlsim.NewObjective()
	space := rlsim.Space(obj.Platform)
	fmt.Printf("platform: %s (%d CPU cores, %d SMs)\n", obj.Platform.Name, obj.Platform.CPUCores, obj.Platform.TotalSMs)
	fmt.Printf("objective: seconds per %.0g environment steps\n", obj.Workload.TargetSteps)
	fmt.Printf("allocation space: %d configurations\n\n", space.Size())

	exh := search.Exhaustive(space, obj)
	fmt.Printf("exhaustive optimum: %d actor groups × %d cores, %d SM units → %.1fs\n\n",
		exh.Best.Procs, exh.Best.SampleCores, exh.Best.TrainCores, exh.BestTime)

	budget := space.Size() / 20
	tuner := bayesopt.NewTuner(space, budget, 3)
	for !tuner.Done() {
		cfg := tuner.Next()
		tuner.Observe(cfg, obj.Evaluate(cfg))
	}
	best, secs := tuner.Best()
	fmt.Printf("auto-tuner (%d searches, 5%%): %d actor groups × %d cores, %d SM units → %.1fs (%.0f%% of optimal)\n",
		budget, best.Procs, best.SampleCores, best.TrainCores, secs, 100*exh.BestTime/secs)
	fmt.Println("\nactors ↔ sampling cores, learner ↔ training cores: the same")
	fmt.Println("black-box tuner that configures GNN training balances RL pipelines.")
}
