// Autotune: compare every registered ARGO tuning strategy — Bayesian
// optimization, simulated annealing, random search, exhaustive
// enumeration — on the simulated 112-core Ice Lake design space for
// ShaDow-GCN on ogbn-products, all through the public strategy registry
// on the same evaluation budget (the Table IV experiment, one cell).
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"

	"argo"
	"argo/internal/graph"
	"argo/internal/platform"
	"argo/internal/platsim"
	"argo/internal/search"
)

func main() {
	ds, err := graph.Spec("ogbn-products")
	if err != nil {
		log.Fatal(err)
	}
	sc := platsim.Scenario{
		Platform: platform.IceLake4S,
		Library:  platsim.DGL,
		Sampler:  platsim.Shadow,
		Model:    platsim.GCN,
		Dataset:  ds,
	}
	space := argo.DefaultSpace(112)
	obj := platsim.NewObjective(sc)

	const budget = 45 // Table VI: ShaDow on Ice Lake
	fmt.Printf("design space: %d configurations; budget %d (%.0f%%)\n\n",
		space.Size(), budget, 100*float64(budget)/float64(space.Size()))

	// Exhaustive reference over the whole space (the paper calls this
	// intractable on hardware; the simulator makes it cheap).
	exh := search.Exhaustive(space, obj)
	fmt.Printf("exhaustive optimum (full space): %s at %.2fs/epoch\n\n", exh.Best, exh.BestTime)

	// Every registered strategy on the identical budget, narrating the
	// auto-tuner's proposals.
	for _, name := range argo.Strategies() {
		strat, err := argo.NewStrategy(name, space, budget, 7)
		if err != nil {
			log.Fatal(err)
		}
		evals := 0
		for evals < budget {
			cfg, ok := strat.Next()
			if !ok {
				break
			}
			secs := obj.Evaluate(cfg)
			strat.Observe(cfg, secs)
			evals++
			if name == argo.StrategyBayesOpt && (evals <= 10 || evals%10 == 0) {
				best, bestSecs := strat.Best()
				fmt.Printf("  search %2d: tried %-15s %6.2fs   best so far %-15s %6.2fs\n",
					evals, cfg.String(), secs, best.String(), bestSecs)
			}
		}
		best, bestSecs := strat.Best()
		fmt.Printf("%-11s best %-15s %6.2fs/epoch — %3.0f%% of optimal, overhead %s\n",
			name, best.String(), bestSecs, 100*exh.BestTime/bestSecs, strat.Overhead().Round(1000))
	}
	fmt.Println("\nexhaustive sees only its first 45 enumerated configs at this budget —")
	fmt.Println("the point of the paper: a model-guided search finds the optimum online.")
}
