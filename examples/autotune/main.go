// Autotune: watch ARGO's Bayesian-optimization auto-tuner navigate the
// simulated 112-core Ice Lake design space for ShaDow-GCN on
// ogbn-products, and compare it against exhaustive search and simulated
// annealing on the same budget (the Table IV experiment, one cell).
//
//	go run ./examples/autotune
package main

import (
	"fmt"
	"log"
	"math/rand"

	"argo/internal/anneal"
	"argo/internal/bayesopt"
	"argo/internal/graph"
	"argo/internal/platform"
	"argo/internal/platsim"
	"argo/internal/search"
)

func main() {
	ds, err := graph.Spec("ogbn-products")
	if err != nil {
		log.Fatal(err)
	}
	sc := platsim.Scenario{
		Platform: platform.IceLake4S,
		Library:  platsim.DGL,
		Sampler:  platsim.Shadow,
		Model:    platsim.GCN,
		Dataset:  ds,
	}
	space := search.DefaultSpace(112)
	obj := platsim.NewObjective(sc)

	const budget = 45 // Table VI: ShaDow on Ice Lake
	fmt.Printf("design space: %d configurations; budget %d (%.0f%%)\n\n",
		space.Size(), budget, 100*float64(budget)/float64(space.Size()))

	// Exhaustive reference (the paper calls this intractable on hardware;
	// the simulator makes it cheap).
	exh := search.Exhaustive(space, obj)
	fmt.Printf("exhaustive optimum: %s at %.2fs/epoch\n\n", exh.Best, exh.BestTime)

	// The online auto-tuner, narrating each proposal.
	tuner := bayesopt.NewTuner(space, budget, 7)
	for !tuner.Done() {
		cfg := tuner.Next()
		secs := obj.Evaluate(cfg)
		tuner.Observe(cfg, secs)
		if n := tuner.Observations(); n <= 10 || n%10 == 0 {
			best, bestSecs := tuner.Best()
			fmt.Printf("search %2d: tried %-15s %6.2fs   best so far %-15s %6.2fs\n",
				n, cfg.String(), secs, best.String(), bestSecs)
		}
	}
	bestCfg, bestSecs := tuner.Best()
	fmt.Printf("\nauto-tuner found %s at %.2fs — %.0f%% of optimal, overhead %s\n",
		bestCfg, bestSecs, 100*exh.BestTime/bestSecs, tuner.Overhead().Round(1000))

	// Simulated annealing with the same budget, 5 runs.
	var saBest []float64
	for seed := int64(0); seed < 5; seed++ {
		res := anneal.Run(space, obj, budget, rand.New(rand.NewSource(seed)), anneal.Options{})
		saBest = append(saBest, res.BestTime)
	}
	fmt.Printf("simulated annealing (5 runs, same budget): best epoch times %v\n", fmtAll(saBest))
}

func fmtAll(xs []float64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%.2fs", x)
	}
	return out
}
