// Quickstart: enable ARGO on an existing GNN training job with a few
// lines — the Go rendition of the paper's Listing 1/Listing 3.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"argo"
	"argo/internal/datasets"
	"argo/internal/nn"
	"argo/internal/sampler"
)

func main() {
	// 1. Load a dataset from the workload registry (a scaled synthetic
	//    stand-in for ogbn-products; argo-data ls shows the rest). Passing
	//    a path to an .argograph store generated with
	//    `argo-data gen -dataset products-sim -o products.argograph`
	//    instead skips generation entirely.
	ds, err := datasets.Resolve("products-sim", 1)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Describe the training job exactly as you would without ARGO: a
	//    three-layer GraphSAGE model fed by a [15,10,5] neighbor sampler.
	trainer, err := argo.NewGNNTrainer(argo.GNNTrainerOptions{
		Dataset:   ds,
		Sampler:   sampler.NewNeighbor(ds.Graph, []int{15, 10, 5}),
		Model:     nn.ModelSpec{Kind: nn.KindSAGE, Dims: []int{ds.Spec.ScaledF0, 32, 32, ds.NumClasses}, Seed: 1},
		BatchSize: 128,
		LR:        0.01,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer trainer.Close()

	// 3. Wrap it in the ARGO runtime: the tuning strategy (Bayesian
	//    optimization by default — see argo.Strategies() for the rest)
	//    spends the first 4 of 12 epochs learning the best (processes,
	//    sampling cores, training cores) configuration, then reuses it.
	//    The Event callback streams per-epoch progress.
	rt, err := argo.NewRuntime(12, 4,
		argo.WithTotalCores(16),
		argo.WithSeed(1),
		argo.WithEvents(func(e argo.Event) {
			fmt.Printf("epoch %2d [%-6s] %-15s %.3fs\n", e.Epoch, e.Phase, e.Config, e.Seconds)
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	report, err := rt.Run(context.Background(), trainer.Step)
	if err != nil {
		log.Fatal(err)
	}

	acc, err := trainer.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best config: %s (epoch %.3fs)\n", report.Best, report.BestEpochSeconds)
	fmt.Printf("validation accuracy after %d epochs: %.3f\n", trainer.Epochs(), acc)
}
