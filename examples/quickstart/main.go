// Quickstart: enable ARGO on an existing GNN training job with a few
// lines — the Go rendition of the paper's Listing 1/Listing 3.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"argo"
	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/sampler"
)

func main() {
	// 1. Load a dataset (a scaled synthetic stand-in for ogbn-products;
	//    see DESIGN.md §2 for the substitution).
	ds, err := graph.BuildByName("ogbn-products", 1)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Describe the training job exactly as you would without ARGO: a
	//    three-layer GraphSAGE model fed by a [15,10,5] neighbor sampler.
	trainer, err := argo.NewGNNTrainer(argo.GNNTrainerOptions{
		Dataset:   ds,
		Sampler:   sampler.NewNeighbor(ds.Graph, []int{15, 10, 5}),
		Model:     nn.ModelSpec{Kind: nn.KindSAGE, Dims: []int{ds.Spec.ScaledF0, 32, 32, ds.NumClasses}, Seed: 1},
		BatchSize: 128,
		LR:        0.01,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer trainer.Close()

	// 3. Wrap it in the ARGO runtime: the auto-tuner spends the first
	//    NumSearches epochs learning the best (processes, sampling cores,
	//    training cores) configuration, then reuses it.
	rt, err := argo.New(argo.Options{Epochs: 12, NumSearches: 4, TotalCores: 16, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	report, err := rt.Run(trainer.Step)
	if err != nil {
		log.Fatal(err)
	}

	acc, err := trainer.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best config: %s (epoch %.3fs)\n", report.Best, report.BestEpochSeconds)
	fmt.Printf("validation accuracy after %d epochs: %.3f\n", trainer.Epochs(), acc)
}
