// Convergence: demonstrate that ARGO's Multi-Process Engine preserves
// training semantics (paper Fig. 9). Training with n processes on batch
// shares of B/n plus synchronous gradient averaging follows the same
// convergence curve as single-process training with batch B — this runs
// the real Go training stack through the public argo surface (a
// GNNTrainer stepped at fixed configurations), not the simulator.
//
//	go run ./examples/convergence
package main

import (
	"context"
	"fmt"
	"log"

	"argo"
	"argo/internal/datasets"
	"argo/internal/nn"
	"argo/internal/sampler"
)

func main() {
	ds, err := datasets.Resolve("products-sim", 3)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	const epochs = 8
	type curve struct {
		label string
		acc   []float64
	}
	var curves []curve
	for _, n := range []int{1, 2, 4, 8} {
		label := fmt.Sprintf("ARGO:%d", n)
		if n == 1 {
			label = "single "
		}
		trainer, err := argo.NewGNNTrainer(argo.GNNTrainerOptions{
			Dataset:   ds,
			Sampler:   sampler.NewNeighbor(ds.Graph, []int{15, 10, 5}),
			Model:     nn.ModelSpec{Kind: nn.KindSAGE, Dims: []int{ds.Spec.ScaledF0, 32, 32, ds.NumClasses}, Seed: 21},
			BatchSize: 64,
			LR:        0.01,
			Seed:      33,
		})
		if err != nil {
			log.Fatal(err)
		}
		// A fixed configuration per curve — no tuning — isolates the
		// multi-process semantics from the strategy.
		cfg := argo.Config{Procs: n, SampleCores: 1, TrainCores: 1}
		c := curve{label: label}
		for ep := 0; ep < epochs; ep++ {
			if _, err := trainer.Step(ctx, cfg, 1); err != nil {
				log.Fatal(err)
			}
			acc, err := trainer.Evaluate()
			if err != nil {
				log.Fatal(err)
			}
			c.acc = append(c.acc, acc)
		}
		trainer.Close()
		curves = append(curves, c)
	}

	fmt.Println("validation accuracy by epoch (same effective batch size everywhere):")
	fmt.Print("epoch  ")
	for _, c := range curves {
		fmt.Printf("%8s", c.label)
	}
	fmt.Println()
	for ep := 0; ep < epochs; ep++ {
		fmt.Printf("%5d  ", ep+1)
		for _, c := range curves {
			fmt.Printf("%8.3f", c.acc[ep])
		}
		fmt.Println()
	}
	fmt.Println("\nthe curves overlap: splitting the batch n ways with synchronous")
	fmt.Println("gradient averaging does not alter the training algorithm.")
}
