// Scalability: reproduce the paper's headline scaling story (Figs. 1 and
// 8) on the simulated platforms — stock DGL/PyG peak at ~16 cores, while
// ARGO keeps scaling until the NUMA/UPI bandwidth limit. The best ARGO
// configuration per core budget is found with the public exhaustive
// strategy (the converged tuner; using the true optimum isolates scaling
// behaviour from tuner noise).
//
//	go run ./examples/scalability
package main

import (
	"fmt"
	"log"
	"strings"

	"argo"
	"argo/internal/graph"
	"argo/internal/platform"
	"argo/internal/platsim"
)

func main() {
	ds, err := graph.Spec("ogbn-products")
	if err != nil {
		log.Fatal(err)
	}
	cores := []int{4, 8, 16, 32, 64, 112}
	for _, lib := range []platsim.Profile{platsim.DGL, platsim.PyG} {
		sc := platsim.Scenario{
			Platform: platform.IceLake4S,
			Library:  lib,
			Sampler:  platsim.Neighbor,
			Model:    platsim.SAGE,
			Dataset:  ds,
		}
		obj := platsim.NewObjective(sc)
		fmt.Printf("Neighbor-SAGE on ogbn-products, Ice Lake (112 cores), %s:\n", lib.Name)
		fmt.Printf("%8s  %12s  %12s  %s\n", "cores", lib.Name, "ARGO", "ARGO config")
		var libBase, argoBase float64
		for _, c := range cores {
			libEpoch, err := platsim.BaselineEpoch(sc, c)
			if err != nil {
				log.Fatal(err)
			}
			cfg, argoEpoch, err := bestConfig(obj, c)
			if err != nil {
				log.Fatal(err)
			}
			if libBase == 0 {
				libBase, argoBase = libEpoch, argoEpoch
			}
			fmt.Printf("%8d  %6.1fs %s  %6.1fs %s  %s\n",
				c,
				libEpoch, bar(libBase/libEpoch),
				argoEpoch, bar(argoBase/argoEpoch),
				cfg)
		}
		fmt.Println()
	}
	fmt.Println("each bar is the speedup over that series' own 4-core time (1 char = 0.5x);")
	fmt.Println("the stock library flattens at ~16 cores, ARGO scales on until the UPI limit.")
}

// bestConfig walks the whole core-bounded space with the registered
// exhaustive strategy and returns its optimum.
func bestConfig(obj *platsim.Objective, cores int) (argo.Config, float64, error) {
	space := argo.DefaultSpace(cores)
	strat, err := argo.NewStrategy(argo.StrategyExhaustive, space, space.Size(), 0)
	if err != nil {
		return argo.Config{}, 0, err
	}
	for {
		cfg, ok := strat.Next()
		if !ok {
			break
		}
		strat.Observe(cfg, obj.Evaluate(cfg))
	}
	best, secs := strat.Best()
	return best, secs, nil
}

func bar(speedup float64) string {
	n := int(speedup * 2)
	if n < 1 {
		n = 1
	}
	return strings.Repeat("█", n)
}
