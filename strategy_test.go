package argo

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"argo/internal/ddp"
	"argo/internal/search"
)

// bowl is the deterministic synthetic cost surface shared by the parity
// tests: a smooth quadratic with a unique minimum inside the space.
func bowl(cfg Config) float64 {
	dn := float64(cfg.Procs - 3)
	ds := float64(cfg.SampleCores - 4)
	dt := float64(cfg.TrainCores - 5)
	return 1 + 0.05*dn*dn + 0.04*ds*ds + 0.03*dt*dt
}

func TestStrategiesRegistry(t *testing.T) {
	names := Strategies()
	want := []string{StrategyAnneal, StrategyBayesOpt, StrategyExhaustive, StrategyRandom}
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("registry %v missing %q", names, w)
		}
	}
	if len(names) < 4 {
		t.Fatalf("Strategies() lists %d names, want ≥4", len(names))
	}
	if _, err := NewStrategy("no-such-strategy", DefaultSpace(16), 5, 1); err == nil {
		t.Fatal("unknown strategy must error")
	}
	if _, err := NewStrategy("  BAYESOPT ", DefaultSpace(16), 5, 1); err != nil {
		t.Fatalf("lookup must be case- and space-insensitive: %v", err)
	}
	if err := RegisterStrategy(StrategyBayesOpt, func(Space, int, int64) Strategy { return nil }); err == nil {
		t.Fatal("duplicate registration must error")
	}
	if err := RegisterStrategy("", nil); err == nil {
		t.Fatal("empty registration must error")
	}
}

// Parity: every registered strategy, run through the public
// Runtime.Run(ctx, train) loop with a full-coverage budget, must land
// within 10 % of the true optimum of the synthetic surface.
func TestStrategyParityOnSyntheticSurface(t *testing.T) {
	space := DefaultSpace(16)
	optimum := search.Exhaustive(space, search.ObjectiveFunc(bowl)).BestTime
	if optimum <= 0 {
		t.Fatal("degenerate surface")
	}
	budget := space.Size()
	builtins := []string{StrategyAnneal, StrategyBayesOpt, StrategyExhaustive, StrategyRandom}
	for _, name := range builtins {
		if !strategyRegistered(name) {
			t.Fatalf("built-in strategy %q not registered", name)
		}
		t.Run(name, func(t *testing.T) {
			rt, err := NewRuntime(budget+4, budget,
				WithSpace(space),
				WithStrategy(name),
				WithSeed(11),
			)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := rt.Run(context.Background(), func(_ context.Context, cfg Config, _ int) (float64, error) {
				return bowl(cfg), nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.BestEpochSeconds > optimum*1.10 {
				t.Fatalf("strategy %s found %.4f, true optimum %.4f (>10%% off)", name, rep.BestEpochSeconds, optimum)
			}
			if bowl(rep.Best) != rep.BestEpochSeconds {
				t.Fatalf("best config %v inconsistent with best seconds %v", rep.Best, rep.BestEpochSeconds)
			}
			if rep.Strategy != name {
				t.Fatalf("report credits %q, ran %q", rep.Strategy, name)
			}
			if rep.SearchEpochs == 0 {
				t.Fatalf("strategy %s made no proposals", name)
			}
		})
	}
}

// Exhaustive coverage: with a budget equal to the space size, bayesopt,
// random and exhaustive visit every configuration and must find the exact
// optimum.
func TestFullBudgetStrategiesFindExactOptimum(t *testing.T) {
	space := DefaultSpace(16)
	optimum := search.Exhaustive(space, search.ObjectiveFunc(bowl)).BestTime
	for _, name := range []string{StrategyBayesOpt, StrategyRandom, StrategyExhaustive} {
		strat, err := NewStrategy(name, space, space.Size(), 5)
		if err != nil {
			t.Fatal(err)
		}
		for {
			cfg, ok := strat.Next()
			if !ok {
				break
			}
			strat.Observe(cfg, bowl(cfg))
		}
		if _, best := strat.Best(); best != optimum {
			t.Fatalf("strategy %s with full budget found %.4f, want exact %.4f", name, best, optimum)
		}
	}
}

// Cancelling the context mid-search must stop the loop between epochs and
// return the partial Report, without leaking goroutines.
func TestRunCancellationReturnsPartialReport(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rt, err := NewRuntime(100, 50, WithTotalCores(16), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	rep, err := rt.Run(ctx, func(_ context.Context, cfg Config, _ int) (float64, error) {
		calls++
		if calls == 3 {
			cancel()
		}
		return bowl(cfg), nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if calls != 3 {
		t.Fatalf("train called %d times after mid-search cancel, want 3", calls)
	}
	if len(rep.History) != 3 {
		t.Fatalf("partial report has %d records, want 3", len(rep.History))
	}
	for _, h := range rep.History {
		if h.Phase != PhaseSearch {
			t.Fatalf("record %v has phase %q", h.Epoch, h.Phase)
		}
	}
	// The partial report must keep the incumbent from the completed
	// search epochs, not a zero config.
	if rep.BestEpochSeconds != bowl(rep.Best) {
		t.Fatalf("partial report lost the incumbent: best %v at %v", rep.Best, rep.BestEpochSeconds)
	}
	want := rep.History[0].Seconds
	for _, h := range rep.History[1:] {
		if h.Seconds < want {
			want = h.Seconds
		}
	}
	if rep.BestEpochSeconds != want {
		t.Fatalf("partial incumbent %v is not the min of observed epochs %v", rep.BestEpochSeconds, want)
	}
	// The loop is synchronous: no goroutines may outlive Run.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before Run, %d after", before, after)
	}
}

// Cancelling during the reuse phase must keep the search results in the
// partial report.
func TestRunCancellationDuringReuse(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rt, err := NewRuntime(100, 2, WithTotalCores(16), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	rep, err := rt.Run(ctx, func(_ context.Context, cfg Config, _ int) (float64, error) {
		calls++
		if calls == 5 {
			cancel()
		}
		return bowl(cfg), nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if len(rep.History) != 5 {
		t.Fatalf("partial report has %d records, want 5", len(rep.History))
	}
	if rep.SearchEpochs != 2 || rep.History[2].Phase != PhaseReuse {
		t.Fatal("search results missing from partial report")
	}
	if rep.BestEpochSeconds != bowl(rep.Best) {
		t.Fatal("partial report lost the search incumbent")
	}
}

// A run whose measurements all crash (non-finite epoch times) must error
// out instead of driving the reuse phase with the zero-value config.
func TestRunAllCrashedSearchErrors(t *testing.T) {
	rt, err := NewRuntime(10, 3, WithTotalCores(16), WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	rep, err := rt.Run(context.Background(), func(context.Context, Config, int) (float64, error) {
		calls++
		return math.Inf(1), nil // every epoch crashes
	})
	if err == nil {
		t.Fatal("all-crashed run must error, not reuse a zero config")
	}
	if calls != 3 {
		t.Fatalf("train called %d times, want 3 (search only, no reuse)", calls)
	}
	if rep.SearchEpochs != 3 || len(rep.History) != 3 {
		t.Fatalf("partial report %d/%d records", rep.SearchEpochs, len(rep.History))
	}
	if rep.TotalSeconds != 0 {
		t.Fatalf("crashed measurements leaked into TotalSeconds: %v", rep.TotalSeconds)
	}
}

// Early stopping must also fire when measurements crash: stale epochs
// without a finite incumbent still count toward the patience.
func TestEarlyStopFiresOnCrashedMeasurements(t *testing.T) {
	rt, err := NewRuntime(20, 10, WithTotalCores(16), WithSeed(8), WithEarlyStop(2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(context.Background(), func(context.Context, Config, int) (float64, error) {
		return math.Inf(1), nil
	})
	if err == nil {
		t.Fatal("all-crashed run must error")
	}
	if rep.SearchEpochs != 2 {
		t.Fatalf("early stop let %d crashed search epochs run, want 2", rep.SearchEpochs)
	}
}

// A best config that starts crashing after the search phase must abort
// the reuse phase instead of silently burning the remaining epochs.
func TestRunAbortsOnCrashedReuse(t *testing.T) {
	rt, err := NewRuntime(20, 2, WithTotalCores(16), WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	rep, err := rt.Run(context.Background(), func(context.Context, Config, int) (float64, error) {
		calls++
		if calls <= 2 {
			return 2.0, nil // search succeeds
		}
		return math.Inf(1), nil // reuse crashes every epoch
	})
	if err == nil {
		t.Fatal("all-crashed reuse must abort")
	}
	if calls != 5 { // 2 search + 3 consecutive crashed reuse epochs
		t.Fatalf("train called %d times, want 5", calls)
	}
	if rep.SearchEpochs != 2 || rep.BestEpochSeconds != 2.0 {
		t.Fatalf("partial report lost search results: %+v", rep)
	}
}

// The event stream must stay one-to-one with History even when the reuse
// phase aborts on consecutive crashes.
func TestEventsMatchHistoryOnCrashedReuseAbort(t *testing.T) {
	var events []Event
	rt, err := NewRuntime(20, 2, WithTotalCores(16), WithSeed(8),
		WithEvents(func(e Event) { events = append(events, e) }))
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	rep, err := rt.Run(context.Background(), func(context.Context, Config, int) (float64, error) {
		calls++
		if calls <= 2 {
			return 2.0, nil
		}
		return math.Inf(1), nil
	})
	if err == nil {
		t.Fatal("all-crashed reuse must abort")
	}
	if len(events) != len(rep.History) {
		t.Fatalf("%d events vs %d history records", len(events), len(rep.History))
	}
}

// Events must marshal even for a crashed epoch (NDJSON streaming).
func TestEventJSONWithCrashedEpoch(t *testing.T) {
	e := Event{Strategy: StrategyRandom, Epoch: 3, Phase: PhaseSearch,
		Config: Config{Procs: 2, SampleCores: 1, TrainCores: 1}, Seconds: math.Inf(1), Searched: 4}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatalf("marshalling crashed event: %v", err)
	}
	if !strings.Contains(string(b), `"crashed":true`) {
		t.Fatalf("crashed flag missing: %s", b)
	}
	var back Event
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(back.Seconds, 1) {
		t.Fatalf("crashed event decoded as %v, want +Inf", back.Seconds)
	}
	if back.Epoch != e.Epoch || back.Config != e.Config || back.Searched != e.Searched {
		t.Fatalf("event round trip mismatch: %+v vs %+v", back, e)
	}
}

// A report containing a crashed epoch must still serialise and round-trip
// (JSON has no +Inf).
func TestReportJSONWithCrashedEpoch(t *testing.T) {
	rep := Report{
		Strategy:         StrategyRandom,
		Best:             Config{Procs: 1, SampleCores: 1, TrainCores: 1},
		BestEpochSeconds: 1.5,
		History: []EpochRecord{
			{Epoch: 0, Config: Config{Procs: 1, SampleCores: 1, TrainCores: 1}, Seconds: 1.5, Phase: PhaseSearch},
			{Epoch: 1, Config: Config{Procs: 8, SampleCores: 1, TrainCores: 1}, Seconds: math.Inf(1), Phase: PhaseSearch},
		},
		SearchEpochs: 2,
		TotalSeconds: 1.5,
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON with crashed epoch: %v", err)
	}
	if !strings.Contains(buf.String(), `"crashed": true`) {
		t.Fatalf("crashed epoch not flagged in JSON:\n%s", buf.String())
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(back.History[1].Seconds, 1) {
		t.Fatalf("crashed epoch decoded as %v, want +Inf", back.History[1].Seconds)
	}
	if back.History[0].Seconds != 1.5 {
		t.Fatalf("finite epoch decoded as %v", back.History[0].Seconds)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rt, err := NewRuntime(6, 3, WithTotalCores(16), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(context.Background(), func(_ context.Context, cfg Config, _ int) (float64, error) {
		return bowl(cfg), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, rep)
	}
	if _, err := ReadReport(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Fatal("garbage must not decode")
	}
}

// A report carrying a sharded run's exchange stats round-trips, and a
// report without them serialises with no exchange key at all (old
// reports stay byte-stable).
func TestReportExchangeStatsRoundTrip(t *testing.T) {
	rep := Report{
		Strategy: StrategyBayesOpt,
		Exchange: &ExchangeStats{
			Transport:   "tcp",
			LocalRows:   10,
			RemoteRows:  4,
			RemoteBytes: 128,
			Messages:    2,
			Peers: []PeerTraffic{
				{From: 0, To: 1, PeerCounts: ddp.PeerCounts{Rows: 4, Bytes: 128, Messages: 2}},
			},
		},
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"exchange"`) || !strings.Contains(buf.String(), `"peers"`) {
		t.Fatalf("exchange stats missing from JSON:\n%s", buf.String())
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back.Exchange, rep.Exchange)
	}
	buf.Reset()
	if err := (Report{Strategy: StrategyBayesOpt}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "exchange") {
		t.Fatal("single-store report grew an exchange key")
	}
}

// Warm-starting from a previous report must prime the strategy with the
// prior observations: the incumbent can only be at least as good, and the
// warm observations must not consume the new run's search budget.
func TestWarmStart(t *testing.T) {
	train := func(_ context.Context, cfg Config, _ int) (float64, error) { return bowl(cfg), nil }
	rt1, err := NewRuntime(12, 10, WithTotalCores(16), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := rt1.Run(context.Background(), train)
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := NewRuntime(8, 6, WithTotalCores(16), WithSeed(2), WithWarmStart(rep1))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := rt2.Run(context.Background(), train)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.BestEpochSeconds > rep1.BestEpochSeconds {
		t.Fatalf("warm-started best %.4f worse than prior best %.4f", rep2.BestEpochSeconds, rep1.BestEpochSeconds)
	}
	if rep2.SearchEpochs != 6 {
		t.Fatalf("warm start consumed the search budget: %d search epochs, want 6", rep2.SearchEpochs)
	}
	if len(rep2.History) != 8 {
		t.Fatalf("warm-started run trained %d epochs, want 8", len(rep2.History))
	}
}

// Warm-start records that are infeasible in the new run's (smaller)
// space must be dropped: a 112-core incumbent must not drive a 16-core
// reuse phase.
func TestWarmStartDropsInfeasibleRecords(t *testing.T) {
	big := Report{History: []EpochRecord{
		// Feasible only on a big machine — and faster than anything the
		// 16-core space can do on this surface, so if replayed it would
		// win the incumbent.
		{Epoch: 0, Config: Config{Procs: 8, SampleCores: 4, TrainCores: 8}, Seconds: 0.001, Phase: PhaseSearch},
		{Epoch: 1, Config: Config{Procs: 1, SampleCores: 2, TrainCores: 2}, Seconds: bowl(Config{Procs: 1, SampleCores: 2, TrainCores: 2}), Phase: PhaseSearch},
	}}
	space := DefaultSpace(16)
	rt, err := NewRuntime(6, 3, WithSpace(space), WithSeed(5), WithWarmStart(big))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(context.Background(), func(_ context.Context, cfg Config, _ int) (float64, error) {
		if !space.Feasible(cfg) {
			t.Fatalf("runtime trained infeasible config %v", cfg)
		}
		return bowl(cfg), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !space.Feasible(rep.Best) {
		t.Fatalf("best %v infeasible on 16 cores", rep.Best)
	}
	if rep.Best.TotalCores() > 16 {
		t.Fatalf("best %v exceeds 16 cores", rep.Best)
	}
}

// A warm-started exhaustive run must continue the enumeration instead of
// re-measuring the configurations the prior report already observed.
func TestWarmStartExhaustiveSkipsObservedPrefix(t *testing.T) {
	train := func(_ context.Context, cfg Config, _ int) (float64, error) { return bowl(cfg), nil }
	rt1, err := NewRuntime(10, 10, WithTotalCores(16), WithStrategy(StrategyExhaustive))
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := rt1.Run(context.Background(), train)
	if err != nil {
		t.Fatal(err)
	}
	already := map[Config]bool{}
	for _, h := range rep1.History {
		already[h.Config] = true
	}
	rt2, err := NewRuntime(10, 10, WithTotalCores(16), WithStrategy(StrategyExhaustive), WithWarmStart(rep1))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := rt2.Run(context.Background(), train)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range rep2.History {
		if h.Phase == PhaseSearch && already[h.Config] {
			t.Fatalf("warm-started exhaustive re-measured %v", h.Config)
		}
	}
	if rep2.SearchEpochs != 10 {
		t.Fatalf("warm-started run searched %d epochs, want 10", rep2.SearchEpochs)
	}
}

// Early stopping must cut the search phase after `patience` stale epochs
// and hand the rest to reuse.
func TestEarlyStop(t *testing.T) {
	rt, err := NewRuntime(30, 20, WithTotalCores(16), WithSeed(3), WithEarlyStop(3))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(context.Background(), func(context.Context, Config, int) (float64, error) {
		return 2.5, nil // flat surface: nothing ever improves
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SearchEpochs != 4 { // 1 first observation + 3 stale
		t.Fatalf("early stop after %d search epochs, want 4", rep.SearchEpochs)
	}
	if len(rep.History) != 30 {
		t.Fatalf("early-stopped run trained %d epochs, want 30", len(rep.History))
	}
	if rep.History[4].Phase != PhaseReuse {
		t.Fatal("epochs after early stop must be reuse")
	}
}

// registerFixedOnce guards the process-global registry so repeated
// in-process test runs (go test -count=2) don't trip the duplicate check.
var registerFixedOnce sync.Once

// A custom strategy registered by a user must be selectable through the
// functional options and drive the run loop.
func TestCustomStrategyThroughRuntime(t *testing.T) {
	fixed := Config{Procs: 1, SampleCores: 1, TrainCores: 1}
	registerFixedOnce.Do(func() {
		MustRegisterStrategy("test-fixed", func(sp Space, budget int, seed int64) Strategy {
			return &fixedStrategy{cfg: fixed, budget: budget}
		})
	})
	rt, err := NewRuntime(5, 2, WithTotalCores(16), WithStrategy("test-fixed"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(context.Background(), func(_ context.Context, cfg Config, _ int) (float64, error) {
		if cfg != fixed {
			t.Fatalf("custom strategy proposal %v, want %v", cfg, fixed)
		}
		return 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best != fixed || rep.Strategy != "test-fixed" {
		t.Fatalf("report %+v does not reflect the custom strategy", rep)
	}
}

type fixedStrategy struct {
	cfg      Config
	budget   int
	observed int
	bestY    float64
	haveBest bool
}

func (f *fixedStrategy) Next() (Config, bool) {
	if f.observed >= f.budget {
		return Config{}, false
	}
	return f.cfg, true
}

func (f *fixedStrategy) Observe(cfg Config, y float64) {
	f.observed++
	if !f.haveBest || y < f.bestY {
		f.bestY, f.haveBest = y, true
	}
}

func (f *fixedStrategy) Best() (Config, float64) { return f.cfg, f.bestY }

func (f *fixedStrategy) Overhead() time.Duration { return 0 }
