// Package argo is a runtime system for scalable mini-batch GNN training
// on multi-core processors — a from-scratch Go reproduction of
//
//	Lin et al., "ARGO: An Auto-Tuning Runtime System for Scalable GNN
//	Training on Multi-Core Processor", IPDPS 2024 (arXiv:2402.03671).
//
// ARGO improves platform utilisation by running n synchronized training
// processes whose memory-intensive phases overlap other processes'
// compute phases, binding each process's sampling and training workers to
// disjoint cores, and auto-tuning the (n, s, t) configuration online. The
// tuning policy is a pluggable Strategy: the paper's Bayesian-optimization
// auto-tuner is the default, with simulated annealing, random search and
// exhaustive enumeration (its Table IV/V/VI comparisons) registered
// alongside it — see Strategies. Training semantics are preserved: the
// global mini-batch is split n ways and gradients are averaged
// synchronously, so the effective batch size never changes.
//
// Typical use mirrors the paper's Listing 1:
//
//	trainer, _ := argo.NewGNNTrainer(argo.GNNTrainerOptions{ ... })
//	rt, _ := argo.NewRuntime(200, 20,
//	        argo.WithTotalCores(64),
//	        argo.WithStrategy(argo.StrategyBayesOpt))
//	report, _ := rt.Run(ctx, trainer.Step)
//
// Run executes Algorithm 1 from the paper: for the first numSearches
// epochs the strategy proposes a configuration, observes the epoch time,
// and updates its model; the remaining epochs reuse the best
// configuration found. The loop honours ctx between epochs, streams an
// Event per epoch (WithEvents), and the final Report round-trips through
// JSON so a later run can warm-start from it (WithWarmStart).
package argo

import (
	"context"
	"fmt"
	"runtime"

	"argo/internal/core"
	"argo/internal/ddp"
	"argo/internal/engine"
	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/platform"
	"argo/internal/sampler"
	"argo/internal/search"
)

// Config is one point of ARGO's design space: the number of GNN training
// processes and the sampling/training cores bound to each.
type Config = search.Config

// Space is the discrete feasible configuration space.
type Space = search.Space

// DefaultSpace returns the paper-matched space bounds for a machine with
// the given total core count.
func DefaultSpace(totalCores int) Space { return search.DefaultSpace(totalCores) }

// TrainStep runs `epochs` training epochs under cfg and returns the mean
// epoch time in seconds. ARGO calls it once per epoch, both while tuning
// and through the reuse tail, so implementations must carry model state
// across calls (GNNTrainer does). The context is the one passed to Run;
// long steps should abort promptly when it is cancelled.
type TrainStep func(ctx context.Context, cfg Config, epochs int) (secondsPerEpoch float64, err error)

// Runtime drives auto-tuned training. Create one per training job with
// NewRuntime.
type Runtime struct {
	epochs      int
	numSearches int
	strategy    string
	totalCores  int
	seed        int64
	space       Space
	haveSpace   bool
	logf        func(format string, args ...any)
	onEvent     EventFunc
	earlyStop   int
	warmStart   []EpochRecord
}

// NewRuntime returns a Runtime that trains for `epochs` total epochs,
// spending the first `numSearches` of them evaluating tuning-strategy
// proposals (paper Table VI budgets ~5 % of the space). Behaviour is
// customised with functional options: WithStrategy, WithTotalCores,
// WithSpace, WithSeed, WithLogf, WithEvents, WithEarlyStop,
// WithWarmStart.
func NewRuntime(epochs, numSearches int, opts ...Option) (*Runtime, error) {
	if epochs < 1 {
		return nil, fmt.Errorf("argo: Epochs must be ≥1, got %d", epochs)
	}
	if numSearches < 1 {
		return nil, fmt.Errorf("argo: NumSearches must be ≥1, got %d", numSearches)
	}
	if numSearches > epochs {
		return nil, fmt.Errorf("argo: NumSearches %d exceeds Epochs %d", numSearches, epochs)
	}
	r := &Runtime{
		epochs:      epochs,
		numSearches: numSearches,
		strategy:    StrategyBayesOpt,
	}
	for _, opt := range opts {
		if err := opt(r); err != nil {
			return nil, err
		}
	}
	if !r.haveSpace {
		if r.totalCores == 0 {
			r.totalCores = runtime.NumCPU()
		}
		r.space = search.DefaultSpace(r.totalCores)
	}
	if r.space.Size() == 0 {
		return nil, fmt.Errorf("argo: no feasible configuration on %d cores", r.totalCores)
	}
	return r, nil
}

// SpaceSize returns the number of feasible configurations.
func (r *Runtime) SpaceSize() int { return r.space.Size() }

// StrategyName returns the registered name of the tuning strategy this
// runtime will use.
func (r *Runtime) StrategyName() string { return r.strategy }

// emit streams e to the event callback, if any.
func (r *Runtime) emit(e Event) {
	if r.onEvent != nil {
		r.onEvent(e)
	}
}

// Run executes the paper's Algorithm 1 against the training function:
// numSearches single-epoch strategy probes, then per-epoch reuse of the
// best configuration found. Cancellation is honoured between epochs: on
// ctx expiry Run stops cleanly and returns the partial Report together
// with the context's error.
func (r *Runtime) Run(ctx context.Context, train TrainStep) (Report, error) {
	rep := Report{Strategy: r.strategy}
	// Warm-start observations must inform the strategy without consuming
	// the run's own online-learning budget, so the strategy is built with
	// a budget covering both. Records outside this run's space (e.g. a
	// report from a larger machine) are dropped: replaying them could
	// make an infeasible configuration the incumbent and drive the whole
	// reuse phase with it.
	var warm []EpochRecord
	for _, h := range r.warmStart {
		if r.space.Feasible(h.Config) {
			warm = append(warm, h)
		}
	}
	strat, err := NewStrategy(r.strategy, r.space, r.numSearches+len(warm), r.seed)
	if err != nil {
		return rep, err
	}
	for _, h := range warm {
		strat.Observe(h.Config, h.Seconds)
	}
	if len(r.warmStart) > 0 && r.logf != nil {
		if dropped := len(r.warmStart) - len(warm); dropped > 0 {
			r.logf("argo: warm start with %d prior observations (%d infeasible here, dropped)", len(warm), dropped)
		} else {
			r.logf("argo: warm start with %d prior observations", len(warm))
		}
	}

	epoch := 0
	sinceImprove := 0
	// The incumbent is tracked through (value, have) rather than a zero
	// sentinel: a run whose measurements all crash (non-finite) must
	// count as stale, and a legitimate 0-second incumbent must not reset
	// the early-stop counter forever.
	incumbent, haveIncumbent := 0.0, false
	if bc, by := strat.Best(); r.space.Feasible(bc) {
		incumbent, haveIncumbent = by, true
	}
	for epoch < r.numSearches {
		if err := ctx.Err(); err != nil {
			// Keep the incumbent found so far: a partial report must not
			// lose completed search observations.
			rep.Best, rep.BestEpochSeconds = strat.Best()
			rep.TunerOverhead = strat.Overhead()
			return rep, fmt.Errorf("argo: search epoch %d: %w", epoch, err)
		}
		cfg, ok := strat.Next()
		if !ok {
			break // strategy exhausted (e.g. exhaustive over a small space)
		}
		secs, err := train(ctx, cfg, 1)
		if err != nil {
			rep.Best, rep.BestEpochSeconds = strat.Best()
			rep.TunerOverhead = strat.Overhead()
			return rep, fmt.Errorf("argo: search epoch %d (%s): %w", epoch, cfg, err)
		}
		strat.Observe(cfg, secs)
		rep.History = append(rep.History, EpochRecord{Epoch: epoch, Config: cfg, Seconds: secs, Phase: PhaseSearch})
		if isFinite(secs) {
			rep.TotalSeconds += secs
		}
		rep.SearchEpochs++
		best, bestSecs := strat.Best()
		if r.logf != nil {
			r.logf("argo: search %d/%d %s epoch=%.3fs", epoch+1, r.numSearches, cfg, secs)
		}
		r.emit(Event{
			Strategy: r.strategy, Epoch: epoch, Phase: PhaseSearch,
			Config: cfg, Seconds: secs,
			Best: best, BestSeconds: bestSecs, Searched: rep.SearchEpochs,
		})
		epoch++
		if r.space.Feasible(best) && (!haveIncumbent || bestSecs < incumbent) {
			incumbent, haveIncumbent = bestSecs, true
			sinceImprove = 0
		} else {
			sinceImprove++
			if r.earlyStop > 0 && sinceImprove >= r.earlyStop {
				if r.logf != nil {
					r.logf("argo: early stop after %d stale search epochs", sinceImprove)
				}
				break
			}
		}
	}
	rep.Best, rep.BestEpochSeconds = strat.Best()
	rep.TunerOverhead = strat.Overhead()
	if rep.SearchEpochs == 0 && len(warm) == 0 {
		return rep, fmt.Errorf("argo: strategy %q made no proposals", r.strategy)
	}
	// Every measurement may have been non-finite (the crashed-epoch
	// signal): the strategy then has no incumbent and Best() returns the
	// zero config, which must never drive the reuse phase.
	if !r.space.Feasible(rep.Best) {
		return rep, fmt.Errorf("argo: no feasible incumbent after %d search epochs (all measurements crashed?)", rep.SearchEpochs)
	}

	// Reuse phase: train the remaining epochs under the best
	// configuration, one epoch at a time, recording each epoch's actual
	// duration (not a duplicated mean) and honouring cancellation between
	// epochs. BestEpochSeconds keeps the search-phase incumbent;
	// ReuseEpochSeconds reports the reuse-phase mean separately. A
	// configuration that starts crashing after the search phase must not
	// silently burn the rest of the run: maxCrashedReuse consecutive
	// non-finite measurements abort with the partial report.
	const maxCrashedReuse = 3
	var reuseTotal float64
	reuseEpochs, crashedRun := 0, 0
	for ; epoch < r.epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return rep, fmt.Errorf("argo: reuse epoch %d: %w", epoch, err)
		}
		secs, err := train(ctx, rep.Best, 1)
		if err != nil {
			return rep, fmt.Errorf("argo: reuse phase (%s): %w", rep.Best, err)
		}
		rep.History = append(rep.History, EpochRecord{Epoch: epoch, Config: rep.Best, Seconds: secs, Phase: PhaseReuse})
		if isFinite(secs) {
			rep.TotalSeconds += secs
			reuseTotal += secs
			reuseEpochs++
			rep.ReuseEpochSeconds = reuseTotal / float64(reuseEpochs)
			crashedRun = 0
		} else {
			crashedRun++
		}
		// Emit before any abort so the event stream stays one-to-one with
		// the returned History.
		r.emit(Event{
			Strategy: r.strategy, Epoch: epoch, Phase: PhaseReuse,
			Config: rep.Best, Seconds: secs,
			Best: rep.Best, BestSeconds: rep.BestEpochSeconds, Searched: rep.SearchEpochs,
		})
		if crashedRun >= maxCrashedReuse {
			return rep, fmt.Errorf("argo: %d consecutive crashed reuse epochs under %s", crashedRun, rep.Best)
		}
	}
	if reuseEpochs > 0 && r.logf != nil {
		r.logf("argo: reuse %s for %d epochs, mean epoch=%.3fs", rep.Best, reuseEpochs, rep.ReuseEpochSeconds)
	}
	return rep, nil
}

// GNNTrainerOptions configures a real GNN training job managed by ARGO.
type GNNTrainerOptions struct {
	Dataset   *graph.Dataset
	Sampler   sampler.Sampler
	Model     nn.ModelSpec
	BatchSize int
	LR        float64
	Seed      int64
	// Binder supplies virtual cores; nil uses a generous default.
	Binder *platform.Allocator
	// Shards switches on shard-aware training: Dataset must be the
	// set's Skeleton() and the sampler must be built over its graph.
	// Each replica then maps only its own shards and exchanges halo
	// features with the others; training losses match the single-store
	// run on the same configuration to float precision.
	Shards *graph.ShardSet
	// Transport selects the exchange transport of a sharded run:
	// "" or "inproc" (direct calls within this address space) or "tcp"
	// (batched messages framed over loopback sockets — the seam a
	// multi-host deployment plugs into). Loss parity holds on both.
	Transport string
	// NoOverlap disables prefetching halo features on the sampling
	// workers (by default the exchange for batch i+1 overlaps batch i's
	// compute). Performance knob only; losses are bit-identical.
	NoOverlap bool
	// SamplingRegime selects how a sharded run draws mini-batches:
	// "" or "exact" samples the assembled global topology (losses
	// bit-identical to single-store), "local" samples partition-locally
	// (each replica within its shards' owned + 1-hop halo rows — the
	// Cluster-GCN regime, trading a bounded accuracy perturbation for a
	// large cut in halo traffic). "local" requires Shards and
	// LocalFanouts.
	SamplingRegime string
	// LocalFanouts configures the partition-local samplers' layered
	// fanouts (typically the exact sampler's fanouts).
	LocalFanouts []int
}

// HaloStats is the halo-exchange traffic summary of a sharded run.
type HaloStats = ddp.HaloStats

// ExchangeStats is the whole-run exchange traffic summary: totals plus
// the directed per-peer matrix in deterministic (From, To) order,
// accumulated across auto-tuner re-launches.
type ExchangeStats = ddp.ExchangeStats

// PeerTraffic is one directed (from, to) edge of the exchange's
// traffic matrix.
type PeerTraffic = ddp.PeerTraffic

// GNNTrainer adapts the real multi-process training engine to the
// TrainStep contract, carrying model weights across configuration
// changes.
type GNNTrainer struct {
	inner *core.Trainer
}

// NewGNNTrainer builds a GNNTrainer.
func NewGNNTrainer(opts GNNTrainerOptions) (*GNNTrainer, error) {
	regime, err := engine.ParseRegime(opts.SamplingRegime)
	if err != nil {
		return nil, err
	}
	inner, err := core.NewTrainer(core.TrainerOptions{
		Dataset:        opts.Dataset,
		Sampler:        opts.Sampler,
		Model:          opts.Model,
		BatchSize:      opts.BatchSize,
		LR:             opts.LR,
		Seed:           opts.Seed,
		Binder:         opts.Binder,
		Shards:         opts.Shards,
		Transport:      opts.Transport,
		NoOverlap:      opts.NoOverlap,
		SamplingRegime: regime,
		LocalFanouts:   opts.LocalFanouts,
	})
	if err != nil {
		return nil, err
	}
	return &GNNTrainer{inner: inner}, nil
}

// Step implements TrainStep.
func (t *GNNTrainer) Step(ctx context.Context, cfg Config, epochs int) (float64, error) {
	return t.inner.Step(ctx, cfg, epochs)
}

// Evaluate returns validation accuracy under the current weights.
func (t *GNNTrainer) Evaluate() (float64, error) { return t.inner.Evaluate() }

// LossHistory returns the mean training loss of every epoch so far.
func (t *GNNTrainer) LossHistory() []float64 { return t.inner.LossHistory() }

// HaloStats reports the accumulated halo-exchange traffic of a sharded
// run; zero for single-store runs.
func (t *GNNTrainer) HaloStats() HaloStats { return t.inner.HaloStats() }

// SnapshotHaloStats returns the halo traffic accumulated since the
// previous snapshot call and advances the snapshot mark, without
// disturbing the cumulative HaloStats view. Calling it once per epoch
// yields per-epoch traffic curves that stay correct across auto-tuner
// re-launches.
func (t *GNNTrainer) SnapshotHaloStats() HaloStats { return t.inner.SnapshotHaloStats() }

// ExchangeStats reports the whole-run exchange traffic of a sharded run
// (totals + deterministic per-peer matrix, accumulated across tuner
// re-launches), or nil for single-store runs. Attach it to a Report's
// Exchange field to persist it with the run.
func (t *GNNTrainer) ExchangeStats() *ExchangeStats { return t.inner.ExchangeStats() }

// Epochs returns how many epochs have been trained.
func (t *GNNTrainer) Epochs() int { return t.inner.Epoch() }

// SaveCheckpoint writes the current model weights to path atomically
// (temp + rename, like .argograph saves). The written checkpoint is
// self-describing — nn.LoadModel reconstructs the architecture from it —
// and is what `argo-serve` consumes.
func (t *GNNTrainer) SaveCheckpoint(path string) error {
	m, err := t.inner.Model()
	if err != nil {
		return err
	}
	return m.SaveCheckpointFile(path)
}

// Close releases the trainer's core binding.
func (t *GNNTrainer) Close() error { return t.inner.Close() }
