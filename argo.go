// Package argo is a runtime system for scalable mini-batch GNN training
// on multi-core processors — a from-scratch Go reproduction of
//
//	Lin et al., "ARGO: An Auto-Tuning Runtime System for Scalable GNN
//	Training on Multi-Core Processor", IPDPS 2024 (arXiv:2402.03671).
//
// ARGO improves platform utilisation by running n synchronized training
// processes whose memory-intensive phases overlap other processes'
// compute phases, binding each process's sampling and training workers to
// disjoint cores, and auto-tuning the (n, s, t) configuration online with
// Bayesian optimization. Training semantics are preserved: the global
// mini-batch is split n ways and gradients are averaged synchronously, so
// the effective batch size never changes.
//
// Typical use mirrors the paper's Listing 1:
//
//	trainer, _ := argo.NewGNNTrainer(argo.GNNTrainerOptions{ ... })
//	rt, _ := argo.New(argo.Options{NumSearches: 20, Epochs: 200})
//	report, _ := rt.Run(trainer.Step)
//
// Run executes Algorithm 1 from the paper: for the first NumSearches
// epochs the auto-tuner proposes a configuration, observes the epoch
// time, and updates its surrogate model; the remaining epochs reuse the
// best configuration found.
package argo

import (
	"fmt"
	"runtime"
	"time"

	"argo/internal/bayesopt"
	"argo/internal/core"
	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/platform"
	"argo/internal/sampler"
	"argo/internal/search"
)

// Config is one point of ARGO's design space: the number of GNN training
// processes and the sampling/training cores bound to each.
type Config = search.Config

// Space is the discrete feasible configuration space.
type Space = search.Space

// DefaultSpace returns the paper-matched space bounds for a machine with
// the given total core count.
func DefaultSpace(totalCores int) Space { return search.DefaultSpace(totalCores) }

// TrainStep runs `epochs` training epochs under cfg and returns the mean
// epoch time in seconds. ARGO calls it once per epoch while tuning and
// once for the whole tail of training afterwards. Implementations must
// carry model state across calls (GNNTrainer does).
type TrainStep func(cfg Config, epochs int) (secondsPerEpoch float64, err error)

// Options configures a Runtime.
type Options struct {
	// NumSearches is the online-learning budget: how many epochs are
	// spent evaluating auto-tuner proposals (paper Table VI uses 5–6 % of
	// the space: 35/45 on 112 cores, 20/25 on 64).
	NumSearches int
	// Epochs is the total number of training epochs, tuning included.
	Epochs int
	// TotalCores bounds the configuration space. Defaults to
	// runtime.NumCPU().
	TotalCores int
	// Seed drives the tuner's random probes.
	Seed int64
	// Logf, when set, receives one line per tuning step.
	Logf func(format string, args ...any)
}

// EpochRecord is one entry of a Report's history.
type EpochRecord struct {
	Epoch   int
	Config  Config
	Seconds float64
	// Phase is "search" while the auto-tuner is learning, then "reuse".
	Phase string
}

// Report summarises a Run.
type Report struct {
	Best             Config
	BestEpochSeconds float64
	History          []EpochRecord
	// TunerOverhead is the time spent fitting the surrogate model and
	// maximising the acquisition function (paper §VI-D).
	TunerOverhead time.Duration
	// TotalSeconds is the end-to-end training time: every search epoch at
	// its observed cost plus the reuse tail.
	TotalSeconds float64
}

// Runtime drives auto-tuned training. Create one per training job.
type Runtime struct {
	opts  Options
	space Space
}

// New validates opts and returns a Runtime.
func New(opts Options) (*Runtime, error) {
	if opts.Epochs < 1 {
		return nil, fmt.Errorf("argo: Epochs must be ≥1, got %d", opts.Epochs)
	}
	if opts.NumSearches < 1 {
		return nil, fmt.Errorf("argo: NumSearches must be ≥1, got %d", opts.NumSearches)
	}
	if opts.NumSearches > opts.Epochs {
		return nil, fmt.Errorf("argo: NumSearches %d exceeds Epochs %d", opts.NumSearches, opts.Epochs)
	}
	if opts.TotalCores == 0 {
		opts.TotalCores = runtime.NumCPU()
	}
	sp := search.DefaultSpace(opts.TotalCores)
	if sp.Size() == 0 {
		return nil, fmt.Errorf("argo: no feasible configuration on %d cores", opts.TotalCores)
	}
	return &Runtime{opts: opts, space: sp}, nil
}

// SpaceSize returns the number of feasible configurations.
func (r *Runtime) SpaceSize() int { return r.space.Size() }

// Run executes the paper's Algorithm 1 against the training function.
func (r *Runtime) Run(train TrainStep) (Report, error) {
	var rep Report
	tuner := bayesopt.NewTuner(r.space, r.opts.NumSearches, r.opts.Seed)
	epoch := 0
	logf := r.opts.Logf
	for !tuner.Done() {
		cfg := tuner.Next()
		secs, err := train(cfg, 1)
		if err != nil {
			return rep, fmt.Errorf("argo: search epoch %d (%s): %w", epoch, cfg, err)
		}
		tuner.Observe(cfg, secs)
		rep.History = append(rep.History, EpochRecord{Epoch: epoch, Config: cfg, Seconds: secs, Phase: "search"})
		rep.TotalSeconds += secs
		if logf != nil {
			logf("argo: search %d/%d %s epoch=%.3fs", epoch+1, r.opts.NumSearches, cfg, secs)
		}
		epoch++
	}
	best, bestSecs := tuner.Best()
	rep.Best, rep.BestEpochSeconds = best, bestSecs
	rep.TunerOverhead = tuner.Overhead()
	remaining := r.opts.Epochs - epoch
	if remaining > 0 {
		secs, err := train(best, remaining)
		if err != nil {
			return rep, fmt.Errorf("argo: reuse phase (%s): %w", best, err)
		}
		rep.BestEpochSeconds = secs
		for i := 0; i < remaining; i++ {
			rep.History = append(rep.History, EpochRecord{Epoch: epoch + i, Config: best, Seconds: secs, Phase: "reuse"})
		}
		rep.TotalSeconds += secs * float64(remaining)
		if logf != nil {
			logf("argo: reuse %s for %d epochs, epoch=%.3fs", best, remaining, secs)
		}
	}
	return rep, nil
}

// GNNTrainerOptions configures a real GNN training job managed by ARGO.
type GNNTrainerOptions struct {
	Dataset   *graph.Dataset
	Sampler   sampler.Sampler
	Model     nn.ModelSpec
	BatchSize int
	LR        float64
	Seed      int64
	// Binder supplies virtual cores; nil uses a generous default.
	Binder *platform.Allocator
}

// GNNTrainer adapts the real multi-process training engine to the
// TrainStep contract, carrying model weights across configuration
// changes.
type GNNTrainer struct {
	inner *core.Trainer
}

// NewGNNTrainer builds a GNNTrainer.
func NewGNNTrainer(opts GNNTrainerOptions) (*GNNTrainer, error) {
	inner, err := core.NewTrainer(core.TrainerOptions{
		Dataset:   opts.Dataset,
		Sampler:   opts.Sampler,
		Model:     opts.Model,
		BatchSize: opts.BatchSize,
		LR:        opts.LR,
		Seed:      opts.Seed,
		Binder:    opts.Binder,
	})
	if err != nil {
		return nil, err
	}
	return &GNNTrainer{inner: inner}, nil
}

// Step implements TrainStep.
func (t *GNNTrainer) Step(cfg Config, epochs int) (float64, error) {
	return t.inner.Step(cfg, epochs)
}

// Evaluate returns validation accuracy under the current weights.
func (t *GNNTrainer) Evaluate() (float64, error) { return t.inner.Evaluate() }

// Epochs returns how many epochs have been trained.
func (t *GNNTrainer) Epochs() int { return t.inner.Epoch() }

// Close releases the trainer's core binding.
func (t *GNNTrainer) Close() error { return t.inner.Close() }
