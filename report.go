package argo

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"argo/internal/search"
)

// Phases of a run, as recorded in EpochRecord and Event.
const (
	PhaseSearch = "search" // the auto-tuner is learning
	PhaseReuse  = "reuse"  // the best-found configuration is reused
)

// EpochRecord is one entry of a Report's history: a single training epoch
// with the configuration it ran under and its measured duration. A
// non-finite Seconds marks a crashed measurement; it serialises as
// {"crashed": true} (JSON has no ±Inf/NaN) and deserialises back to +Inf.
type EpochRecord struct {
	Epoch   int     `json:"epoch"`
	Config  Config  `json:"config"`
	Seconds float64 `json:"seconds"`
	// Phase is PhaseSearch while the auto-tuner is learning, then
	// PhaseReuse.
	Phase string `json:"phase"`
}

// wireEpochRecord is EpochRecord's JSON shape, with crashed measurements
// flagged instead of encoded as an unsupported non-finite float.
type wireEpochRecord struct {
	Epoch   int     `json:"epoch"`
	Config  Config  `json:"config"`
	Seconds float64 `json:"seconds"`
	Crashed bool    `json:"crashed,omitempty"`
	Phase   string  `json:"phase"`
}

// MarshalJSON implements json.Marshaler.
func (e EpochRecord) MarshalJSON() ([]byte, error) {
	w := wireEpochRecord{Epoch: e.Epoch, Config: e.Config, Seconds: e.Seconds, Phase: e.Phase}
	if !isFinite(e.Seconds) {
		w.Seconds, w.Crashed = 0, true
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (e *EpochRecord) UnmarshalJSON(b []byte) error {
	var w wireEpochRecord
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*e = EpochRecord{Epoch: w.Epoch, Config: w.Config, Seconds: w.Seconds, Phase: w.Phase}
	if w.Crashed {
		e.Seconds = math.Inf(1)
	}
	return nil
}

// isFinite reports whether v is a usable measurement (not the crashed
// signal); the convention lives in search.IsFinite.
func isFinite(v float64) bool { return search.IsFinite(v) }

// Event is a per-epoch progress notification streamed to the callback
// installed with WithEvents, carrying the epoch just measured and the
// incumbent so far.
type Event struct {
	// Strategy is the name of the tuning strategy driving the run.
	Strategy string `json:"strategy"`
	// Epoch is the zero-based index of the epoch just completed.
	Epoch int `json:"epoch"`
	// Phase is PhaseSearch or PhaseReuse.
	Phase string `json:"phase"`
	// Config ran this epoch, taking Seconds.
	Config  Config  `json:"config"`
	Seconds float64 `json:"seconds"`
	// Best is the incumbent configuration after this epoch and
	// BestSeconds its epoch time (zero until a finite search observation
	// exists).
	Best        Config  `json:"best"`
	BestSeconds float64 `json:"best_seconds"`
	// Searched counts search-phase epochs consumed so far, out of the
	// run's online-learning budget.
	Searched int `json:"searched"`
}

// wireEvent is Event's JSON shape; like EpochRecord, a crashed (non-
// finite) measurement is flagged rather than encoded as ±Inf.
type wireEvent struct {
	Strategy    string  `json:"strategy"`
	Epoch       int     `json:"epoch"`
	Phase       string  `json:"phase"`
	Config      Config  `json:"config"`
	Seconds     float64 `json:"seconds"`
	Crashed     bool    `json:"crashed,omitempty"`
	Best        Config  `json:"best"`
	BestSeconds float64 `json:"best_seconds"`
	Searched    int     `json:"searched"`
}

// MarshalJSON implements json.Marshaler, so events can be streamed as
// NDJSON even when an epoch crashes.
func (e Event) MarshalJSON() ([]byte, error) {
	w := wireEvent{
		Strategy: e.Strategy, Epoch: e.Epoch, Phase: e.Phase, Config: e.Config,
		Seconds: e.Seconds, Best: e.Best, BestSeconds: e.BestSeconds, Searched: e.Searched,
	}
	if !isFinite(e.Seconds) {
		w.Seconds, w.Crashed = 0, true
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (e *Event) UnmarshalJSON(b []byte) error {
	var w wireEvent
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*e = Event{
		Strategy: w.Strategy, Epoch: w.Epoch, Phase: w.Phase, Config: w.Config,
		Seconds: w.Seconds, Best: w.Best, BestSeconds: w.BestSeconds, Searched: w.Searched,
	}
	if w.Crashed {
		e.Seconds = math.Inf(1)
	}
	return nil
}

// EventFunc receives per-epoch Events during Runtime.Run. It is called
// synchronously from the run loop; slow handlers slow training down.
type EventFunc func(Event)

// Report summarises a Run. It round-trips through JSON (WriteJSON /
// ReadReport), so a finished run can be persisted and warm-start a later
// one via WithWarmStart.
type Report struct {
	// Strategy is the registered name of the tuning strategy that drove
	// the run.
	Strategy string `json:"strategy"`
	Best     Config `json:"best"`
	// BestEpochSeconds is the best epoch time observed during the search
	// phase — the strategy's incumbent. The reuse phase never overwrites
	// it; compare with ReuseEpochSeconds to see post-search drift.
	BestEpochSeconds float64 `json:"best_epoch_seconds"`
	// ReuseEpochSeconds is the mean measured epoch time over the reuse
	// phase (zero when the run ended before reuse).
	ReuseEpochSeconds float64       `json:"reuse_epoch_seconds,omitempty"`
	History           []EpochRecord `json:"history"`
	// SearchEpochs counts epochs spent evaluating tuner proposals.
	SearchEpochs int `json:"search_epochs"`
	// TunerOverhead is the time spent inside the strategy — fitting the
	// surrogate model and maximising the acquisition function (paper
	// §VI-D). Serialised as nanoseconds.
	TunerOverhead time.Duration `json:"tuner_overhead_ns"`
	// TotalSeconds is the end-to-end training time: every epoch at its
	// observed cost.
	TotalSeconds float64 `json:"total_seconds"`
	// Exchange carries the halo-exchange traffic summary of a sharded
	// run (argo-train attaches GNNTrainer.ExchangeStats before writing
	// the report); nil for single-store runs. Peers serialise in
	// deterministic (From, To) order.
	Exchange *ExchangeStats `json:"exchange,omitempty"`
}

// WriteJSON serialises the report, indented, to w.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport deserialises a report previously written with WriteJSON.
func ReadReport(rd io.Reader) (Report, error) {
	var rep Report
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("argo: decoding report: %w", err)
	}
	return rep, nil
}

// searchHistory returns the search-phase records — the observations a
// warm-started run replays into its strategy.
func (r Report) searchHistory() []EpochRecord {
	var out []EpochRecord
	for _, h := range r.History {
		if h.Phase == PhaseSearch {
			out = append(out, h)
		}
	}
	return out
}
