package argo

import (
	"context"
	"fmt"
	"strings"
)

// Option configures a Runtime built with NewRuntime.
type Option func(*Runtime) error

// WithStrategy selects the tuning strategy by registered name (see
// Strategies). The default is StrategyBayesOpt, the paper's auto-tuner.
func WithStrategy(name string) Option {
	return func(r *Runtime) error {
		if !strategyRegistered(name) {
			return fmt.Errorf("argo: unknown strategy %q (registered: %s)", name, strings.Join(Strategies(), ", "))
		}
		// Store the canonical registry form so Report.Strategy and
		// Event.Strategy compare equal to the Strategy* constants.
		r.strategy = strings.ToLower(strings.TrimSpace(name))
		return nil
	}
}

// WithTotalCores bounds the configuration space to a machine with the
// given core count. The default is runtime.NumCPU().
func WithTotalCores(n int) Option {
	return func(r *Runtime) error {
		if n < 1 {
			return fmt.Errorf("argo: TotalCores must be ≥1, got %d", n)
		}
		r.totalCores = n
		return nil
	}
}

// WithSpace overrides the feasible configuration space entirely — for
// non-GNN workloads (e.g. the RL allocation example) whose space is not
// DefaultSpace-shaped. It takes precedence over WithTotalCores.
func WithSpace(sp Space) Option {
	return func(r *Runtime) error {
		if sp.Size() == 0 {
			return fmt.Errorf("argo: empty configuration space")
		}
		r.space = sp
		r.haveSpace = true
		return nil
	}
}

// WithSeed seeds the strategy's random draws. Runs with the same seed,
// space and training function are reproducible.
func WithSeed(seed int64) Option {
	return func(r *Runtime) error {
		r.seed = seed
		return nil
	}
}

// WithLogf installs a printf-style logger receiving one line per tuning
// step and one per reuse summary.
func WithLogf(logf func(format string, args ...any)) Option {
	return func(r *Runtime) error {
		r.logf = logf
		return nil
	}
}

// WithEvents installs a callback receiving one Event per completed epoch,
// streaming run progress instead of waiting for the final Report.
func WithEvents(fn EventFunc) Option {
	return func(r *Runtime) error {
		r.onEvent = fn
		return nil
	}
}

// WithEarlyStop stops the search phase once `patience` consecutive search
// epochs fail to improve the incumbent, moving straight to the reuse
// phase. Zero (the default) disables early stopping.
func WithEarlyStop(patience int) Option {
	return func(r *Runtime) error {
		if patience < 0 {
			return fmt.Errorf("argo: early-stop patience must be ≥0, got %d", patience)
		}
		r.earlyStop = patience
		return nil
	}
}

// WithWarmStart replays a previous run's search-phase observations into
// the strategy before training starts, so a new run (same machine, same
// workload shape) begins from learned knowledge instead of from scratch.
// Warm-start observations do not consume the new run's online-learning
// budget. Persist reports with Report.WriteJSON and reload with
// ReadReport.
func WithWarmStart(rep Report) Option {
	return func(r *Runtime) error {
		r.warmStart = append(r.warmStart, rep.searchHistory()...)
		return nil
	}
}

// Options is the legacy struct-field configuration of a Runtime.
//
// Deprecated: build runtimes with NewRuntime and functional options
// instead; see the README migration table. Options and New are retained
// so legacy construction code keeps compiling; call sites of the old
// context-free Run(train) must switch to RunLegacy (or to Run with a
// context).
type Options struct {
	// NumSearches is the online-learning budget: how many epochs are
	// spent evaluating auto-tuner proposals (paper Table VI uses 5–6 % of
	// the space: 35/45 on 112 cores, 20/25 on 64).
	NumSearches int
	// Epochs is the total number of training epochs, tuning included.
	Epochs int
	// TotalCores bounds the configuration space. Defaults to
	// runtime.NumCPU().
	TotalCores int
	// Seed drives the tuner's random probes.
	Seed int64
	// Logf, when set, receives one line per tuning step.
	Logf func(format string, args ...any)
}

// New validates opts and returns a Runtime.
//
// Deprecated: use NewRuntime with functional options.
func New(opts Options) (*Runtime, error) {
	var fns []Option
	if opts.TotalCores != 0 {
		fns = append(fns, WithTotalCores(opts.TotalCores))
	}
	if opts.Seed != 0 {
		fns = append(fns, WithSeed(opts.Seed))
	}
	if opts.Logf != nil {
		fns = append(fns, WithLogf(opts.Logf))
	}
	return NewRuntime(opts.Epochs, opts.NumSearches, fns...)
}

// TrainFunc is the pre-context training-step contract.
//
// Deprecated: implement TrainStep, which receives the run's context.
type TrainFunc func(cfg Config, epochs int) (secondsPerEpoch float64, err error)

// RunLegacy executes the run loop without cancellation support.
//
// Deprecated: use Run with a context.
func (r *Runtime) RunLegacy(train TrainFunc) (Report, error) {
	return r.Run(context.Background(), func(_ context.Context, cfg Config, epochs int) (float64, error) {
		return train(cfg, epochs)
	})
}
