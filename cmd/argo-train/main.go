// Command argo-train trains a GNN for real (no simulation) on a scaled
// synthetic dataset with an ARGO tuning strategy picking the
// multi-process configuration online — the Go equivalent of the paper's
// Listing 3 workflow. Ctrl-C cancels cleanly between epochs, leaving a
// partial report.
//
// Usage:
//
//	argo-train -dataset products-sim -sampler neighbor -model sage \
//	           -epochs 20 -searches 6 -batch 128 -cores 16 \
//	           -strategy bayesopt -report report.json
//
// -dataset accepts a registry profile name (argo-data ls) or a path to a
// .argograph store written by argo-data gen, so large graphs are
// generated once and reloaded instantly on later runs.
//
// With -shards the dataset is a shard set (name#k or a .shard0 store);
// halo traffic then moves through the batched exchange over the
// -transport of choice (inproc or loopback tcp), overlapped with
// sampling unless -overlap=false, and the run's traffic totals plus the
// per-peer matrix are printed, embedded in -report, and included in
// -loss-json.
//
// A report written with -report can warm-start a later run via
// -warmstart, skipping the cold random probes.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"argo"
	"argo/internal/datasets"
	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/sampler"
)

// benchWarmStart turns a BENCH_argo.json artifact into a warm-start
// prior: the bench entry whose dataset profile is nearest the current
// workload's stats (datasets.NearestProfile) contributes one prior
// observation per benchmarked strategy. Simulated epoch seconds are not
// this machine's epoch seconds, but as a prior they rank configurations
// — which is all a warm start needs.
func benchWarmStart(path string, st graph.Stats) (argo.Report, string, error) {
	var bench struct {
		Datasets []struct {
			Dataset    string `json:"dataset"`
			Strategies []struct {
				Best             argo.Config `json:"best"`
				BestEpochSeconds float64     `json:"best_epoch_seconds"`
			} `json:"strategies"`
		} `json:"datasets"`
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return argo.Report{}, "", err
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		return argo.Report{}, "", fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(bench.Datasets) == 0 {
		return argo.Report{}, "", fmt.Errorf("%s has no dataset entries", path)
	}
	nearest, _, err := datasets.NearestProfile(st)
	if err != nil {
		return argo.Report{}, "", err
	}
	// Prefer the nearest profile's entry; fall back to the first one so
	// a single-dataset bench file always warm-starts something.
	pick := 0
	for i, d := range bench.Datasets {
		if d.Dataset == nearest.Name {
			pick = i
			break
		}
	}
	var rep argo.Report
	for _, s := range bench.Datasets[pick].Strategies {
		if s.Best == (argo.Config{}) || s.BestEpochSeconds <= 0 {
			continue
		}
		rep.History = append(rep.History, argo.EpochRecord{Config: s.Best, Seconds: s.BestEpochSeconds})
	}
	if len(rep.History) == 0 {
		return argo.Report{}, "", fmt.Errorf("%s: entry %q carries no usable observations", path, bench.Datasets[pick].Dataset)
	}
	return rep, bench.Datasets[pick].Dataset, nil
}

func main() {
	dataset := flag.String("dataset", "products-sim",
		"dataset: a registry profile ("+strings.Join(datasets.Names(), ", ")+") or an .argograph file path")
	samplerName := flag.String("sampler", "neighbor", "sampling algorithm: neighbor or shadow")
	modelName := flag.String("model", "sage", "GNN model: sage or gcn")
	epochs := flag.Int("epochs", 20, "total training epochs")
	searches := flag.Int("searches", 6, "tuning-strategy online-learning epochs")
	batch := flag.Int("batch", 128, "global mini-batch size")
	cores := flag.Int("cores", 16, "virtual cores ARGO may bind")
	lr := flag.Float64("lr", 0.01, "Adam learning rate")
	seed := flag.Int64("seed", 1, "random seed")
	strategy := flag.String("strategy", argo.StrategyBayesOpt,
		"tuning strategy: "+strings.Join(argo.Strategies(), ", "))
	earlyStop := flag.Int("early-stop", 0, "stop searching after N stale search epochs (0 = off)")
	reportPath := flag.String("report", "", "write the final report as JSON to this file")
	warmPath := flag.String("warmstart", "", "warm-start the strategy from a previous -report JSON file")
	warmBench := flag.String("warmstart-bench", "",
		"warm-start from a BENCH_argo.json file: the entry for the registry profile nearest this workload's stats seeds the strategy")
	lazyFlag := flag.String("lazy", "auto",
		"store loading for .argograph paths: auto (lazy at ≥32MB), on, off")
	shards := flag.Bool("shards", false,
		"treat -dataset as a shard set: name#k (in-memory) or the path of a manifest-carrying .shard0 store; "+
			"each replica maps only its own shards and exchanges halo features")
	procs := flag.Int("procs", 0, "pin the process count: restrict the design space to exactly N processes (0 = tune freely)")
	lossPath := flag.String("loss-json", "", "write the per-epoch mean training loss history (plus exchange traffic for sharded runs) as JSON to this file")
	transport := flag.String("transport", "inproc",
		"halo-exchange transport for -shards runs: inproc (direct calls) or tcp (batched messages over loopback sockets)")
	sampling := flag.String("sampling", "exact",
		"sampling regime for -shards runs: exact (global batches, losses bit-identical to single-store) or "+
			"local (partition-local: each replica samples within its shards' owned + 1-hop halo rows, cutting halo traffic)")
	overlap := flag.Bool("overlap", true,
		"overlap the halo exchange with sampling: prefetch batch i+1's features while batch i computes (losses are identical either way)")
	ckptPath := flag.String("save-checkpoint", "",
		"write the final model weights to this file (atomic temp+rename); argo-serve loads it for inference")
	flag.Parse()

	mode, err := datasets.ParseLoadMode(*lazyFlag)
	if err != nil {
		log.Fatalf("argo-train: %v", err)
	}
	if *transport != "inproc" && *transport != "tcp" {
		log.Fatalf("argo-train: unknown -transport %q (inproc, tcp)", *transport)
	}
	if *sampling != "exact" && *sampling != "local" {
		log.Fatalf("argo-train: unknown -sampling %q (exact, local)", *sampling)
	}
	if *sampling == "local" && !*shards {
		log.Fatalf("argo-train: -sampling local needs -shards (partition-local sampling is defined per shard)")
	}
	if *sampling == "local" && *samplerName != "neighbor" {
		log.Fatalf("argo-train: -sampling local supports the neighbor sampler only (got %q)", *samplerName)
	}
	var (
		ds       *graph.Dataset
		st       graph.Stats
		shardSet *graph.ShardSet
	)
	if *shards {
		// Shard-aware path: the skeleton (topology + splits) is assembled
		// from topology-only opens; features and labels stay in the
		// shards and flow through the halo exchange during training.
		shardSet, err = datasets.ResolveShards(*dataset, *seed)
		if err != nil {
			log.Fatalf("argo-train: %v", err)
		}
		defer shardSet.Close()
		if err := shardSet.Validate(); err != nil {
			log.Fatalf("argo-train: %v", err)
		}
		ds, err = shardSet.Skeleton()
		if err != nil {
			log.Fatalf("argo-train: %v", err)
		}
		st, err = shardSet.GlobalStats()
		if err != nil {
			log.Fatalf("argo-train: %v", err)
		}
		cut := shardSet.Manifest.TotalCutArcs()
		fmt.Printf("shard set %s (k=%d, %s partition): %d nodes, %d arcs, %d classes, %d train targets, edge cut %d arcs (%.1f%%)\n",
			ds.Spec.Name, shardSet.K(), shardSet.Manifest.Partitioner,
			st.NumNodes, st.NumArcs, st.NumClasses, st.TrainCount, cut,
			100*shardSet.Manifest.EdgeCutFraction())
		fmt.Printf("exchange: %s transport, overlap %v; planner input (cut arcs per replica at n=2): %v\n",
			*transport, *overlap, shardSet.Manifest.ReplicaCutArcs(2))
	} else {
		// The lazy handle yields spec and stats from the store header
		// before any section is decoded, so huge stores announce
		// themselves instantly; training then materialises the sections
		// it needs.
		lz, err := datasets.ResolveLazy(*dataset, *seed, mode)
		if err != nil {
			log.Fatalf("argo-train: %v", err)
		}
		defer lz.Close()
		st = lz.Stats()
		fmt.Printf("dataset %s (scaled, %s): %d nodes, %d arcs, %d classes, %d train targets\n",
			lz.Spec().Name, lz.AccessMode(), st.NumNodes, st.NumArcs, st.NumClasses, st.TrainCount)
		ds, err = lz.Dataset()
		if err != nil {
			log.Fatalf("argo-train: %v", err)
		}
	}

	var smp sampler.Sampler
	layers := 3
	fanouts := []int{15, 10, 5}
	switch *samplerName {
	case "neighbor":
		smp = sampler.NewNeighbor(ds.Graph, fanouts)
	case "shadow":
		smp = sampler.NewShaDow(ds.Graph, []int{10, 5}, layers)
	default:
		log.Fatalf("argo-train: unknown sampler %q", *samplerName)
	}
	kind := nn.KindSAGE
	if *modelName == "gcn" {
		kind = nn.KindGCN
	} else if *modelName != "sage" {
		log.Fatalf("argo-train: unknown model %q", *modelName)
	}
	dims := []int{ds.Spec.ScaledF0, ds.Spec.ScaledHidden, ds.Spec.ScaledHidden, ds.NumClasses}

	topts := argo.GNNTrainerOptions{
		Dataset:        ds,
		Sampler:        smp,
		Model:          nn.ModelSpec{Kind: kind, Dims: dims, Seed: *seed},
		BatchSize:      *batch,
		LR:             *lr,
		Seed:           *seed,
		Shards:         shardSet,
		Transport:      *transport,
		NoOverlap:      !*overlap,
		SamplingRegime: *sampling,
	}
	if *sampling == "local" {
		topts.LocalFanouts = fanouts
		fmt.Printf("sampling regime: partition-local (frontiers bounded to owned + 1-hop halo rows; fanouts %v)\n", fanouts)
	}
	trainer, err := argo.NewGNNTrainer(topts)
	if err != nil {
		log.Fatalf("argo-train: %v", err)
	}
	defer trainer.Close()

	opts := []argo.Option{
		argo.WithTotalCores(*cores),
		argo.WithSeed(*seed),
		argo.WithStrategy(*strategy),
		argo.WithLogf(func(f string, a ...any) { fmt.Printf(f+"\n", a...) }),
	}
	if *procs > 0 {
		sp := argo.DefaultSpace(*cores)
		sp.MinProcs, sp.MaxProcs = *procs, *procs
		opts = append(opts, argo.WithSpace(sp))
	}
	if *earlyStop > 0 {
		opts = append(opts, argo.WithEarlyStop(*earlyStop))
	}
	if *warmPath != "" {
		f, err := os.Open(*warmPath)
		if err != nil {
			log.Fatalf("argo-train: %v", err)
		}
		prior, err := argo.ReadReport(f)
		f.Close()
		if err != nil {
			log.Fatalf("argo-train: %v", err)
		}
		opts = append(opts, argo.WithWarmStart(prior))
	}
	if *warmBench != "" {
		prior, from, err := benchWarmStart(*warmBench, st)
		if err != nil {
			log.Fatalf("argo-train: %v", err)
		}
		fmt.Printf("warm-starting from %s's entry in %s (%d prior observations)\n", from, *warmBench, len(prior.History))
		opts = append(opts, argo.WithWarmStart(prior))
	}
	rt, err := argo.NewRuntime(*epochs, *searches, opts...)
	if err != nil {
		log.Fatalf("argo-train: %v", err)
	}
	fmt.Printf("strategy %s; design space: %d configurations on %d cores; exploring %d (%.1f%%)\n",
		rt.StrategyName(), rt.SpaceSize(), *cores, *searches, 100*float64(*searches)/float64(rt.SpaceSize()))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	report, runErr := rt.Run(ctx, trainer.Step)
	if runErr != nil {
		if errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded) {
			fmt.Printf("argo-train: interrupted after %d epochs, reporting partial run\n", len(report.History))
		} else {
			log.Fatalf("argo-train: %v", runErr)
		}
	}
	if *ckptPath != "" {
		if err := trainer.SaveCheckpoint(*ckptPath); err != nil {
			log.Fatalf("argo-train: %v", err)
		}
		fmt.Printf("checkpoint written to %s\n", *ckptPath)
	}
	// A sharded run's exchange traffic rides along in the report and in
	// -loss-json, with peers in deterministic (from, to) order.
	exchange := trainer.ExchangeStats()
	report.Exchange = exchange
	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			log.Fatalf("argo-train: %v", err)
		}
		if err := report.WriteJSON(f); err != nil {
			log.Fatalf("argo-train: %v", err)
		}
		f.Close()
		fmt.Printf("report written to %s\n", *reportPath)
	}
	if *lossPath != "" {
		raw, err := json.MarshalIndent(struct {
			Losses   []float64           `json:"losses"`
			Exchange *argo.ExchangeStats `json:"exchange,omitempty"`
		}{trainer.LossHistory(), exchange}, "", "  ")
		if err != nil {
			log.Fatalf("argo-train: %v", err)
		}
		if err := os.WriteFile(*lossPath, append(raw, '\n'), 0o644); err != nil {
			log.Fatalf("argo-train: %v", err)
		}
		fmt.Printf("loss history (%d epochs) written to %s\n", len(trainer.LossHistory()), *lossPath)
	}
	if exchange != nil {
		total := exchange.LocalRows + exchange.RemoteRows
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(exchange.RemoteRows) / float64(total)
		}
		fmt.Printf("halo exchange (%s): %d local rows, %d remote rows (%.1f%%), %d logical bytes → %d wire bytes in %d batched messages\n",
			exchange.Transport, exchange.LocalRows, exchange.RemoteRows, pct, exchange.RemoteBytes, exchange.WireBytes, exchange.Messages)
		for _, p := range exchange.Peers {
			fmt.Printf("  replica %d → %d: %d rows, %d bytes (%d wire), %d messages\n", p.From, p.To, p.Rows, p.Bytes, p.WireBytes, p.Messages)
		}
	}
	acc, err := trainer.Evaluate()
	if err != nil {
		log.Fatalf("argo-train: %v", err)
	}
	if report.Best == (argo.Config{}) {
		fmt.Println("\nno configuration was measured before the run stopped")
		return
	}
	fmt.Printf("\nbest configuration: %s (%.4fs/epoch during search", report.Best, report.BestEpochSeconds)
	if report.ReuseEpochSeconds > 0 {
		fmt.Printf(", %.4fs/epoch during reuse", report.ReuseEpochSeconds)
	}
	fmt.Printf(")\n")
	fmt.Printf("total training time: %.2fs over %d epochs (tuner overhead %s)\n",
		report.TotalSeconds, len(report.History), report.TunerOverhead.Round(1000))
	fmt.Printf("validation accuracy: %.3f\n", acc)
}
