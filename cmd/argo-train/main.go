// Command argo-train trains a GNN for real (no simulation) on a scaled
// synthetic dataset with ARGO's online auto-tuner picking the
// multi-process configuration — the Go equivalent of the paper's
// Listing 3 workflow.
//
// Usage:
//
//	argo-train -dataset ogbn-products -sampler neighbor -model sage \
//	           -epochs 20 -searches 6 -batch 128 -cores 16
package main

import (
	"flag"
	"fmt"
	"log"

	"argo"
	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/sampler"
)

func main() {
	dataset := flag.String("dataset", "ogbn-products", "dataset name (flickr, reddit, ogbn-products, ogbn-papers100M)")
	samplerName := flag.String("sampler", "neighbor", "sampling algorithm: neighbor or shadow")
	modelName := flag.String("model", "sage", "GNN model: sage or gcn")
	epochs := flag.Int("epochs", 20, "total training epochs")
	searches := flag.Int("searches", 6, "auto-tuner online-learning epochs")
	batch := flag.Int("batch", 128, "global mini-batch size")
	cores := flag.Int("cores", 16, "virtual cores ARGO may bind")
	lr := flag.Float64("lr", 0.01, "Adam learning rate")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	ds, err := graph.BuildByName(*dataset, *seed)
	if err != nil {
		log.Fatalf("argo-train: %v", err)
	}
	fmt.Printf("dataset %s (scaled): %d nodes, %d arcs, %d classes, %d train targets\n",
		ds.Spec.Name, ds.Graph.NumNodes, ds.Graph.NumEdges(), ds.NumClasses, len(ds.TrainIdx))

	var smp sampler.Sampler
	layers := 3
	switch *samplerName {
	case "neighbor":
		smp = sampler.NewNeighbor(ds.Graph, []int{15, 10, 5})
	case "shadow":
		smp = sampler.NewShaDow(ds.Graph, []int{10, 5}, layers)
	default:
		log.Fatalf("argo-train: unknown sampler %q", *samplerName)
	}
	kind := nn.KindSAGE
	if *modelName == "gcn" {
		kind = nn.KindGCN
	} else if *modelName != "sage" {
		log.Fatalf("argo-train: unknown model %q", *modelName)
	}
	dims := []int{ds.Spec.ScaledF0, ds.Spec.ScaledHidden, ds.Spec.ScaledHidden, ds.NumClasses}

	trainer, err := argo.NewGNNTrainer(argo.GNNTrainerOptions{
		Dataset:   ds,
		Sampler:   smp,
		Model:     nn.ModelSpec{Kind: kind, Dims: dims, Seed: *seed},
		BatchSize: *batch,
		LR:        *lr,
		Seed:      *seed,
	})
	if err != nil {
		log.Fatalf("argo-train: %v", err)
	}
	defer trainer.Close()

	rt, err := argo.New(argo.Options{
		Epochs:      *epochs,
		NumSearches: *searches,
		TotalCores:  *cores,
		Seed:        *seed,
		Logf: func(f string, a ...any) {
			fmt.Printf(f+"\n", a...)
		},
	})
	if err != nil {
		log.Fatalf("argo-train: %v", err)
	}
	fmt.Printf("design space: %d configurations on %d cores; exploring %d (%.1f%%)\n",
		rt.SpaceSize(), *cores, *searches, 100*float64(*searches)/float64(rt.SpaceSize()))

	report, err := rt.Run(trainer.Step)
	if err != nil {
		log.Fatalf("argo-train: %v", err)
	}
	acc, err := trainer.Evaluate()
	if err != nil {
		log.Fatalf("argo-train: %v", err)
	}
	fmt.Printf("\nbest configuration: %s (%.4fs/epoch)\n", report.Best, report.BestEpochSeconds)
	fmt.Printf("total training time: %.2fs over %d epochs (tuner overhead %s)\n",
		report.TotalSeconds, *epochs, report.TunerOverhead.Round(1000))
	fmt.Printf("validation accuracy: %.3f\n", acc)
}
