package main

import "testing"

func TestPercentileNearestRank(t *testing.T) {
	seq := func(n int) []float64 {
		s := make([]float64, n)
		for i := range s {
			s[i] = float64(i + 1)
		}
		return s
	}
	cases := []struct {
		name   string
		sorted []float64
		q      float64
		want   float64
	}{
		{"empty", nil, 0.5, 0},
		{"single", []float64{7}, 0.99, 7},
		{"p50-even", seq(4), 0.50, 2}, // ceil(0.5*4)=2 → 2nd value
		{"p50-odd", seq(5), 0.50, 3},  // ceil(0.5*5)=3 → 3rd value
		{"p95-100", seq(100), 0.95, 95},
		{"p99-100", seq(100), 0.99, 99},
		{"p100-100", seq(100), 1.00, 100},
		// The old int(q*(N-1)) floor returned 9 here — one rank low.
		{"p99-10", seq(10), 0.99, 10}, // ceil(0.99*10)=10 → max
		{"p95-10", seq(10), 0.95, 10},
		{"p90-10", seq(10), 0.90, 9},
		{"q0", seq(10), 0, 1}, // clamped to the first rank
	}
	for _, tc := range cases {
		if got := percentile(tc.sorted, tc.q); got != tc.want {
			t.Errorf("%s: percentile(q=%g) = %g, want %g", tc.name, tc.q, got, tc.want)
		}
	}
}
