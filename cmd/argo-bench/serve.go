package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"argo/internal/datasets"
	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/serve"
)

// serveBench is one (dataset, policy, workload) row of the serving
// benchmark: the same stack argo-serve runs (full-neighbor gather,
// policy-driven hot-node cache, micro-batcher), driven in-process so
// the numbers measure the serving path rather than HTTP framing.
type serveBench struct {
	Dataset      string  `json:"dataset"`
	Policy       string  `json:"policy"`
	Workload     string  `json:"workload"` // zipf or uniform
	Hops         int     `json:"hops"`
	Requests     int     `json:"requests"`
	RequestNodes int     `json:"request_nodes"`
	Concurrency  int     `json:"concurrency"`
	OpenLoopRPS  float64 `json:"open_loop_rps,omitempty"`
	ZipfS        float64 `json:"zipf_s,omitempty"` // zipf rows only
	CacheBytes   int64   `json:"cache_bytes"`
	FeatDtype    string  `json:"feat_dtype"`
	// CachedRowCapacity is how many feature rows the cache budget holds
	// under the workload's storage dtype (pure arithmetic, byte-stable):
	// fp16 packing roughly doubles it for the same CacheBytes.
	CachedRowCapacity int64   `json:"cached_row_capacity"`
	CacheHitRate      float64 `json:"cache_hit_rate"`
	CacheEvictions    int64   `json:"cache_evictions"`
	CacheRejections   int64   `json:"cache_rejections,omitempty"`
	PinnedEntries     int     `json:"pinned_entries,omitempty"`
	HubNodes          int     `json:"hub_nodes,omitempty"`
	HubHits           int64   `json:"hub_hits,omitempty"`
	Batches           int64   `json:"batches"`
	MeanBatchNodes    float64 `json:"mean_batch_nodes"`
	ThroughputRPS     float64 `json:"throughput_rps"`
	LatencyP50Micros  float64 `json:"latency_p50_micros"`
	LatencyP95Micros  float64 `json:"latency_p95_micros"`
	LatencyP99Micros  float64 `json:"latency_p99_micros"`
	LatencyMaxMicros  float64 `json:"latency_max_micros"`
	WallSeconds       float64 `json:"wall_seconds"`
}

// mergedBench is benchJSON plus the serve section. benchServe reads the
// existing artifact through it so a prior strategy benchmark's entries
// survive the rewrite (CI runs the strategy benchmark first, then
// -serve merges into the same file).
type mergedBench struct {
	TotalCores int            `json:"total_cores"`
	Searches   int            `json:"searches"`
	Epochs     int            `json:"epochs"`
	Datasets   []datasetBench `json:"datasets"`
	Serve      []serveBench   `json:"serve,omitempty"`
	Kernels    *kernelsBench  `json:"kernels,omitempty"`
	Regimes    []regimeBench  `json:"regimes,omitempty"`
}

// serveBenchConfig carries the -serve flag surface into benchServe —
// one field per flag, so adding a knob does not ripple a positional
// parameter through every call site.
type serveBenchConfig struct {
	Datasets    string  // -dataset: comma list or "all"
	Policies    string  // -cache-policy: comma list or "all"
	Hops        int     // -hops: model depth = gather depth
	Requests    int     // -requests
	Concurrency int     // -concurrency
	ReqNodes    int     // -req-nodes
	Rate        float64 // -rate (open loop when > 0)
	CacheBytes  int64   // -cache-bytes
	HubPin      float64 // -hub-pin
	Precompute  float64 // -precompute-hubs
	ZipfS       float64 // -zipf-s: skew of the zipf query stream
	FeatDtype   string  // -feat-dtype: workload feature storage dtype
	JSONPath    string  // -json
	Stable      bool    // -stable
}

// benchServe benchmarks the serving stack on each workload dataset,
// for each requested cache policy, under a Zipf-skewed and a uniform
// query stream, and merges the rows into cfg.JSONPath. With Stable set
// the drive is sequential (one closed loop, no coalescing window) and
// wall-clock fields are zeroed, so the rows — including the cache
// hit-rates the CI skew gate compares — are a pure function of the
// seed.
func benchServe(cfg serveBenchConfig, w *os.File) error {
	var names []string
	if cfg.Datasets == "all" {
		names = datasets.PaperNames()
	} else {
		for _, n := range strings.Split(cfg.Datasets, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("-dataset selected no workloads")
	}
	var policies []string
	if cfg.Policies == "all" {
		policies = serve.Policies()
	} else {
		for _, p := range strings.Split(cfg.Policies, ",") {
			if p = strings.TrimSpace(strings.ToLower(p)); p != "" {
				policies = append(policies, p)
			}
		}
	}
	if len(policies) == 0 {
		return fmt.Errorf("-cache-policy selected no policies")
	}
	if cfg.Requests < 1 || cfg.ReqNodes < 1 || cfg.Concurrency < 1 || cfg.Hops < 1 {
		return fmt.Errorf("-requests, -req-nodes, -concurrency, and -hops must be positive")
	}
	dt, err := graph.ParseFeatDtype(cfg.FeatDtype)
	if err != nil {
		return err
	}
	const seed = 7
	var rows []serveBench
	for _, name := range names {
		ds, err := datasets.Resolve(name, seed)
		if err != nil {
			return err
		}
		// One up-front rounding pass; the source tag below then lets the
		// serving cache pack rows losslessly.
		if err := ds.ConvertFeatures(dt); err != nil {
			return err
		}
		if cfg.ReqNodes > ds.Graph.NumNodes {
			return fmt.Errorf("%s: -req-nodes %d exceeds the graph (%d nodes)", name, cfg.ReqNodes, ds.Graph.NumNodes)
		}
		// A hops-layer model sets the gather regime. At one hop each
		// request fetches its targets' neighbor rows, so query skew
		// translates directly into fetch locality — the regime plain LRU
		// already handles. At two-plus hops every request's
		// full-neighborhood gather is a scan over hundreds of one-off
		// frontier rows; this is exactly the traffic scan-resistant
		// policies exist for, so the CI gate compares policies at 2
		// hops. Weights are seeded, not trained; serving cost does not
		// depend on what the weights are.
		dims := []int{ds.Features.Cols}
		for l := 1; l < cfg.Hops; l++ {
			dims = append(dims, 16)
		}
		dims = append(dims, ds.NumClasses)
		model, err := nn.NewModel(nn.ModelSpec{
			Kind: nn.KindSAGE,
			Dims: dims,
			Seed: seed,
		}, nil)
		if err != nil {
			return err
		}
		for _, policy := range policies {
			for _, workload := range []string{"zipf", "uniform"} {
				row, err := runServeWorkload(name, workload, policy, ds, model, cfg)
				if err != nil {
					return err
				}
				rows = append(rows, row)
				fmt.Fprintf(w, "%-16s %-9s %-8s %d reqs × %d nodes @ %d hops: hit-rate %.3f, %d batches (%.1f nodes/batch), p95 %.0fµs\n",
					name, policy, workload, row.Requests, row.RequestNodes, row.Hops, row.CacheHitRate,
					row.Batches, row.MeanBatchNodes, row.LatencyP95Micros)
			}
		}
	}
	// Merge: keep whatever strategy entries are already in the artifact.
	var out mergedBench
	if raw, err := os.ReadFile(cfg.JSONPath); err == nil {
		if err := json.Unmarshal(raw, &out); err != nil {
			return fmt.Errorf("parsing existing %s: %w", cfg.JSONPath, err)
		}
	}
	out.Serve = rows
	f, err := os.Create(cfg.JSONPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	fmt.Fprintf(w, "serve benchmark (%d rows) merged into %s\n", len(rows), cfg.JSONPath)
	return nil
}

// runServeWorkload builds a fresh serving stack through serve.New (so
// cache state is isolated per row) and drives it with the named query
// stream.
func runServeWorkload(dsName, workload, policy string, ds *graph.Dataset, model *nn.GNN, cfg serveBenchConfig) (serveBench, error) {
	const seed = 7
	opts := []serve.Option{
		serve.WithPolicy(policy),
		serve.WithCacheBytes(cfg.CacheBytes),
		serve.WithHubPin(cfg.HubPin),
		serve.WithPrecomputeHubs(cfg.Precompute),
		serve.WithWorkers(2),
	}
	if !cfg.Stable {
		// With a sequential -stable drive every request is its own batch
		// and the cache trace is deterministic; otherwise coalesce.
		opts = append(opts, serve.WithBatchWindow(2*time.Millisecond), serve.WithBatchMaxNodes(256))
	}
	srv, err := serve.New(serve.Source{Graph: ds.Graph, Features: serve.NewMatrixFeatureSourceDtype(ds.Features, ds.FeatDtype)}, model, opts...)
	if err != nil {
		return serveBench{}, err
	}
	defer srv.Close()
	b := srv.Batcher()

	newGen := func(genSeed int64) (serve.Generator, error) {
		if workload == "zipf" {
			return serve.NewZipfGenerator(ds.Graph, genSeed, cfg.ZipfS)
		}
		return serve.NewUniformGenerator(ds.Graph.NumNodes, genSeed)
	}

	latencies := make([]float64, 0, cfg.Requests)
	var mu sync.Mutex
	record := func(d time.Duration) {
		mu.Lock()
		latencies = append(latencies, float64(d.Microseconds()))
		mu.Unlock()
	}
	start := time.Now()
	switch {
	case cfg.Stable:
		gen, err := newGen(seed)
		if err != nil {
			return serveBench{}, err
		}
		for i := 0; i < cfg.Requests; i++ {
			t0 := time.Now()
			if _, err := b.Predict(serve.NextBatch(gen, cfg.ReqNodes)); err != nil {
				return serveBench{}, err
			}
			record(time.Since(t0))
		}
	case cfg.Rate > 0:
		// Open loop: fire at the target rate no matter how fast the
		// server answers; queueing shows up as latency.
		var wg sync.WaitGroup
		errCh := make(chan error, 1)
		gen, err := newGen(seed)
		if err != nil {
			return serveBench{}, err
		}
		interval := time.Duration(float64(time.Second) / cfg.Rate)
		ticker := time.NewTicker(interval)
		for i := 0; i < cfg.Requests; i++ {
			<-ticker.C
			nodes := serve.NextBatch(gen, cfg.ReqNodes)
			wg.Add(1)
			go func() {
				defer wg.Done()
				t0 := time.Now()
				if _, err := b.Predict(nodes); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
				record(time.Since(t0))
			}()
		}
		ticker.Stop()
		wg.Wait()
		select {
		case err := <-errCh:
			return serveBench{}, err
		default:
		}
	default:
		// Closed loop: concurrency workers, each with its own seeded
		// stream, back to back.
		var wg sync.WaitGroup
		errCh := make(chan error, cfg.Concurrency)
		per := cfg.Requests / cfg.Concurrency
		extra := cfg.Requests % cfg.Concurrency
		for c := 0; c < cfg.Concurrency; c++ {
			n := per
			if c < extra {
				n++
			}
			wg.Add(1)
			go func(c, n int) {
				defer wg.Done()
				gen, err := newGen(seed + int64(c))
				if err != nil {
					errCh <- err
					return
				}
				for i := 0; i < n; i++ {
					t0 := time.Now()
					if _, err := b.Predict(serve.NextBatch(gen, cfg.ReqNodes)); err != nil {
						errCh <- err
						return
					}
					record(time.Since(t0))
				}
			}(c, n)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			if err != nil {
				return serveBench{}, err
			}
		}
	}
	wall := time.Since(start).Seconds()

	cs := srv.Inferencer().CacheStats()
	hs := srv.Inferencer().HubStats()
	bs := b.Stats()
	row := serveBench{
		Dataset:           dsName,
		Policy:            policy,
		Workload:          workload,
		Hops:              cfg.Hops,
		Requests:          cfg.Requests,
		RequestNodes:      cfg.ReqNodes,
		Concurrency:       cfg.Concurrency,
		OpenLoopRPS:       cfg.Rate,
		CacheBytes:        cfg.CacheBytes,
		FeatDtype:         ds.FeatDtype.String(),
		CachedRowCapacity: serve.EffectiveRowCapacity(cfg.CacheBytes, ds.Features.Cols, ds.FeatDtype),
		CacheHitRate:      cs.HitRate,
		CacheEvictions:    cs.Evictions,
		CacheRejections:   cs.Rejections,
		PinnedEntries:     cs.PinnedEntries,
		HubNodes:          hs.Nodes,
		HubHits:           hs.Hits,
		Batches:           bs.Batches,
		MeanBatchNodes:    bs.MeanBatchNodes,
	}
	if workload == "zipf" {
		row.ZipfS = cfg.ZipfS
	}
	if cfg.Stable {
		row.Concurrency = 1
	} else {
		row.ThroughputRPS = float64(cfg.Requests) / wall
		row.WallSeconds = wall
		sort.Float64s(latencies)
		row.LatencyP50Micros = percentile(latencies, 0.50)
		row.LatencyP95Micros = percentile(latencies, 0.95)
		row.LatencyP99Micros = percentile(latencies, 0.99)
		row.LatencyMaxMicros = latencies[len(latencies)-1]
	}
	return row, nil
}

// percentile reads the q-quantile from sorted using the nearest-rank
// definition: the smallest value with at least q·N observations at or
// below it, i.e. sorted[ceil(q·N)−1]. The previous int(q·(N−1)) floor
// read one rank low at small N (e.g. p99 of 100 samples returned the
// 99th, not the 100th, value).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
