package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"argo/internal/datasets"
	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/serve"
)

// serveBench is one (dataset, workload) row of the serving benchmark:
// the same stack argo-serve runs (full-neighbor gather, hot-node cache,
// micro-batcher), driven in-process so the numbers measure the serving
// path rather than HTTP framing.
type serveBench struct {
	Dataset          string  `json:"dataset"`
	Workload         string  `json:"workload"` // zipf or uniform
	Requests         int     `json:"requests"`
	RequestNodes     int     `json:"request_nodes"`
	Concurrency      int     `json:"concurrency"`
	OpenLoopRPS      float64 `json:"open_loop_rps,omitempty"`
	CacheBytes       int64   `json:"cache_bytes"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	CacheEvictions   int64   `json:"cache_evictions"`
	Batches          int64   `json:"batches"`
	MeanBatchNodes   float64 `json:"mean_batch_nodes"`
	ThroughputRPS    float64 `json:"throughput_rps"`
	LatencyP50Micros float64 `json:"latency_p50_micros"`
	LatencyP95Micros float64 `json:"latency_p95_micros"`
	LatencyP99Micros float64 `json:"latency_p99_micros"`
	LatencyMaxMicros float64 `json:"latency_max_micros"`
	WallSeconds      float64 `json:"wall_seconds"`
}

// mergedBench is benchJSON plus the serve section. benchServe reads the
// existing artifact through it so a prior strategy benchmark's entries
// survive the rewrite (CI runs the strategy benchmark first, then
// -serve merges into the same file).
type mergedBench struct {
	TotalCores int            `json:"total_cores"`
	Searches   int            `json:"searches"`
	Epochs     int            `json:"epochs"`
	Datasets   []datasetBench `json:"datasets"`
	Serve      []serveBench   `json:"serve,omitempty"`
	Kernels    *kernelsBench  `json:"kernels,omitempty"`
}

// benchServe benchmarks the serving stack on each workload dataset
// under a Zipf-skewed and a uniform query stream, and merges the rows
// into jsonPath. With stable set the drive is sequential (one closed
// loop, no coalescing window) and wall-clock fields are zeroed, so the
// rows — including the cache hit-rates the CI skew gate compares — are
// a pure function of the seed.
func benchServe(datasetFlag string, requests, concurrency, reqNodes int, rate float64, cacheBytes int64, jsonPath string, stable bool, w *os.File) error {
	var names []string
	if datasetFlag == "all" {
		names = datasets.PaperNames()
	} else {
		for _, n := range strings.Split(datasetFlag, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("-dataset selected no workloads")
	}
	if requests < 1 || reqNodes < 1 || concurrency < 1 {
		return fmt.Errorf("-requests, -req-nodes, and -concurrency must be positive")
	}
	const seed = 7
	var rows []serveBench
	for _, name := range names {
		ds, err := datasets.Resolve(name, seed)
		if err != nil {
			return err
		}
		if reqNodes > ds.Graph.NumNodes {
			return fmt.Errorf("%s: -req-nodes %d exceeds the graph (%d nodes)", name, reqNodes, ds.Graph.NumNodes)
		}
		// A single-layer model pins the regime the feature cache is
		// designed for: each request fetches its targets' one-hop rows,
		// so query skew translates directly into fetch locality. Deeper
		// models' full-neighborhood gathers are cache-hostile scans —
		// one hub's k-hop frontier evicts everything under LRU no
		// matter how skewed the queries are — which would make the row
		// measure eviction pathology, not workload locality. Weights
		// are seeded, not trained; serving cost does not depend on what
		// the weights are.
		model, err := nn.NewModel(nn.ModelSpec{
			Kind: nn.KindSAGE,
			Dims: []int{ds.Features.Cols, ds.NumClasses},
			Seed: seed,
		}, nil)
		if err != nil {
			return err
		}
		for _, workload := range []string{"zipf", "uniform"} {
			row, err := runServeWorkload(name, workload, ds, model, requests, concurrency, reqNodes, rate, cacheBytes, stable)
			if err != nil {
				return err
			}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-16s %-8s %d reqs × %d nodes: hit-rate %.3f, %d batches (%.1f nodes/batch), p95 %.0fµs\n",
				name, workload, row.Requests, row.RequestNodes, row.CacheHitRate,
				row.Batches, row.MeanBatchNodes, row.LatencyP95Micros)
		}
	}
	// Merge: keep whatever strategy entries are already in the artifact.
	var out mergedBench
	if raw, err := os.ReadFile(jsonPath); err == nil {
		if err := json.Unmarshal(raw, &out); err != nil {
			return fmt.Errorf("parsing existing %s: %w", jsonPath, err)
		}
	}
	out.Serve = rows
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	fmt.Fprintf(w, "serve benchmark (%d rows) merged into %s\n", len(rows), jsonPath)
	return nil
}

// runServeWorkload builds a fresh serving stack (so cache state is
// isolated per row) and drives it with the named query stream.
func runServeWorkload(dsName, workload string, ds *graph.Dataset, model *nn.GNN, requests, concurrency, reqNodes int, rate float64, cacheBytes int64, stable bool) (serveBench, error) {
	const seed = 7
	cache := serve.NewFeatureCache(cacheBytes)
	inf, err := serve.NewInferencer(serve.InferencerOptions{
		Model:    model,
		Graph:    ds.Graph,
		Features: serve.NewMatrixFeatureSource(ds.Features),
		Cache:    cache,
		Workers:  2,
	})
	if err != nil {
		return serveBench{}, err
	}
	cfg := serve.BatcherConfig{Window: 2 * time.Millisecond, MaxNodes: 256}
	if stable {
		// No coalescing window: with a sequential drive every request is
		// its own batch and the LRU trace is deterministic.
		cfg = serve.BatcherConfig{}
	}
	b := serve.NewBatcher(inf, cfg)
	defer b.Close()

	newGen := func(genSeed int64) (serve.Generator, error) {
		if workload == "zipf" {
			return serve.NewZipfGenerator(ds.Graph, genSeed, 1.5)
		}
		return serve.NewUniformGenerator(ds.Graph.NumNodes, genSeed)
	}

	latencies := make([]float64, 0, requests)
	var mu sync.Mutex
	record := func(d time.Duration) {
		mu.Lock()
		latencies = append(latencies, float64(d.Microseconds()))
		mu.Unlock()
	}
	start := time.Now()
	switch {
	case stable:
		gen, err := newGen(seed)
		if err != nil {
			return serveBench{}, err
		}
		for i := 0; i < requests; i++ {
			t0 := time.Now()
			if _, err := b.Predict(serve.NextBatch(gen, reqNodes)); err != nil {
				return serveBench{}, err
			}
			record(time.Since(t0))
		}
	case rate > 0:
		// Open loop: fire at the target rate no matter how fast the
		// server answers; queueing shows up as latency.
		var wg sync.WaitGroup
		errCh := make(chan error, 1)
		gen, err := newGen(seed)
		if err != nil {
			return serveBench{}, err
		}
		interval := time.Duration(float64(time.Second) / rate)
		ticker := time.NewTicker(interval)
		for i := 0; i < requests; i++ {
			<-ticker.C
			nodes := serve.NextBatch(gen, reqNodes)
			wg.Add(1)
			go func() {
				defer wg.Done()
				t0 := time.Now()
				if _, err := b.Predict(nodes); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
				record(time.Since(t0))
			}()
		}
		ticker.Stop()
		wg.Wait()
		select {
		case err := <-errCh:
			return serveBench{}, err
		default:
		}
	default:
		// Closed loop: concurrency workers, each with its own seeded
		// stream, back to back.
		var wg sync.WaitGroup
		errCh := make(chan error, concurrency)
		per := requests / concurrency
		extra := requests % concurrency
		for c := 0; c < concurrency; c++ {
			n := per
			if c < extra {
				n++
			}
			wg.Add(1)
			go func(c, n int) {
				defer wg.Done()
				gen, err := newGen(seed + int64(c))
				if err != nil {
					errCh <- err
					return
				}
				for i := 0; i < n; i++ {
					t0 := time.Now()
					if _, err := b.Predict(serve.NextBatch(gen, reqNodes)); err != nil {
						errCh <- err
						return
					}
					record(time.Since(t0))
				}
			}(c, n)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			if err != nil {
				return serveBench{}, err
			}
		}
	}
	wall := time.Since(start).Seconds()

	cs := cache.Stats()
	bs := b.Stats()
	row := serveBench{
		Dataset:        dsName,
		Workload:       workload,
		Requests:       requests,
		RequestNodes:   reqNodes,
		Concurrency:    concurrency,
		OpenLoopRPS:    rate,
		CacheBytes:     cacheBytes,
		CacheHitRate:   cs.HitRate,
		CacheEvictions: cs.Evictions,
		Batches:        bs.Batches,
		MeanBatchNodes: bs.MeanBatchNodes,
	}
	if stable {
		row.Concurrency = 1
	} else {
		row.ThroughputRPS = float64(requests) / wall
		row.WallSeconds = wall
		sort.Float64s(latencies)
		row.LatencyP50Micros = percentile(latencies, 0.50)
		row.LatencyP95Micros = percentile(latencies, 0.95)
		row.LatencyP99Micros = percentile(latencies, 0.99)
		row.LatencyMaxMicros = latencies[len(latencies)-1]
	}
	return row, nil
}

// percentile reads the q-quantile from sorted using the nearest-rank
// definition: the smallest value with at least q·N observations at or
// below it, i.e. sorted[ceil(q·N)−1]. The previous int(q·(N−1)) floor
// read one rank low at small N (e.g. p99 of 100 samples returned the
// 99th, not the 100th, value).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
