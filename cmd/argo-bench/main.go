// Command argo-bench regenerates the tables and figures of the ARGO paper
// on the platform simulator (plus the real-training convergence study).
//
// Usage:
//
//	argo-bench -list
//	argo-bench -exp fig1
//	argo-bench -exp all
//
// See DESIGN.md §6 for the experiment ↔ paper mapping and EXPERIMENTS.md
// for the recorded paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"argo/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (see -list), or \"all\"")
	list := flag.Bool("list", false, "list available experiments")
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		if err := experiments.Run(name, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "argo-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s took %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
