// Command argo-bench regenerates the tables and figures of the ARGO paper
// on the platform simulator (plus the real-training convergence study),
// and benchmarks the registered tuning strategies head-to-head through
// the public runtime API, emitting a machine-readable BENCH_argo.json so
// the performance trajectory can be tracked across commits.
//
// Usage:
//
//	argo-bench -list
//	argo-bench -exp fig1
//	argo-bench -exp all
//	argo-bench -exp none -strategy all -json BENCH_argo.json
//	argo-bench -exp none -dataset arxiv-sim,reddit-sim
//	argo-bench -exchange -transport tcp -dataset tiny
//	argo-bench -serve -dataset tiny -requests 400 -cache-bytes 4096
//
// -serve switches to the inference-serving benchmark: each workload is
// served through the argo-serve stack (full-neighbor gather, hot-node
// feature cache, micro-batcher) under a Zipf-skewed and a uniform query
// stream, and the per-workload rows — cache hit-rate, batch shape,
// latency percentiles, throughput — are merged into BENCH_argo.json as
// a "serve" section next to the strategy entries. Closed loop by
// default (-concurrency workers back to back); -rate switches to an
// open loop firing at that many requests/sec. Under -stable the drive
// is sequential and wall-clock fields are zeroed, so the rows (and the
// zipf-vs-uniform hit-rate gap CI gates on) are seed-deterministic.
//
// -exchange switches to the halo-exchange traffic benchmark: each
// workload is sharded (k=4), trained for two epochs on two replicas
// over the selected -transport, and the batched exchange's traffic —
// per-peer rows/bytes/messages, and the message reduction against the
// per-row baseline — is reported and written as JSON. Traffic counts
// are deterministic for a fixed seed, so the artifact is byte-stable
// under -stable.
//
// -dataset selects which workloads the strategy benchmark covers: a
// comma-separated list of registry profiles (argo-data ls) and/or
// .argograph file paths, or "all" for every paper profile. Each dataset
// becomes one entry in BENCH_argo.json, so the strategy comparison runs
// across scenario-diverse workloads.
//
// See DESIGN.md §6 for the experiment ↔ paper mapping and EXPERIMENTS.md
// for the recorded paper-vs-measured comparison.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"argo"
	"argo/internal/datasets"
	"argo/internal/ddp"
	"argo/internal/engine"
	"argo/internal/experiments"
	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/platform"
	"argo/internal/platsim"
	"argo/internal/sampler"
	"argo/internal/search"
	"argo/internal/serve"
)

// strategyResult is one row of BENCH_argo.json: a tuning strategy run
// through the public Runtime on the simulated platform.
type strategyResult struct {
	Strategy         string      `json:"strategy"`
	Best             argo.Config `json:"best"`
	BestEpochSeconds float64     `json:"best_epoch_seconds"`
	// Quality is optimal/best — 1.0 means the strategy found the true
	// optimum of the space.
	Quality         float64 `json:"quality"`
	SearchEpochs    int     `json:"search_epochs"`
	TunerOverhead   string  `json:"tuner_overhead"`
	TunerOverheadNs int64   `json:"tuner_overhead_ns"`
	WallSeconds     float64 `json:"wall_seconds"`
}

// datasetBench is the strategy comparison on one (workload, sampler)
// pair.
type datasetBench struct {
	Dataset        string           `json:"dataset"`
	Sampler        string           `json:"sampler"`
	Scenario       string           `json:"scenario"`
	SpaceSize      int              `json:"space_size"`
	OptimalSeconds float64          `json:"optimal_seconds"`
	Strategies     []strategyResult `json:"strategies"`
}

// benchSampler is one -sampler selection: the simulated sampler/model
// pairing the paper (and its survey) evaluates together.
type benchSampler struct {
	name    string
	kind    platsim.SamplerKind
	model   platsim.ModelKind
	display string
}

var benchSamplers = []benchSampler{
	{"neighbor", platsim.Neighbor, platsim.SAGE, "Neighbor-SAGE"},
	{"shadow", platsim.Shadow, platsim.GCN, "ShaDow-GCN"},
	{"saint", platsim.Saint, platsim.SAGE, "SAINT-SAGE"},
	{"cluster", platsim.ClusterK, platsim.GCN, "Cluster-GCN"},
	{"partition", platsim.PartLocal, platsim.SAGE, "Partition-SAGE"},
}

// parseSamplers expands the -sampler flag into concrete pairings.
func parseSamplers(flagVal string) ([]benchSampler, error) {
	if flagVal == "all" {
		return benchSamplers, nil
	}
	var out []benchSampler
	for _, n := range strings.Split(flagVal, ",") {
		n = strings.TrimSpace(strings.ToLower(n))
		if n == "" {
			continue
		}
		found := false
		for _, s := range benchSamplers {
			if s.name == n {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			var known []string
			for _, s := range benchSamplers {
				known = append(known, s.name)
			}
			return nil, fmt.Errorf("unknown sampler %q (registered: %s, or \"all\")", n, strings.Join(known, ", "))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-sampler selected no samplers")
	}
	return out, nil
}

// benchJSON is the whole emitted artifact: one entry per benchmarked
// dataset.
type benchJSON struct {
	TotalCores int            `json:"total_cores"`
	Searches   int            `json:"searches"`
	Epochs     int            `json:"epochs"`
	Datasets   []datasetBench `json:"datasets"`
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (see -list), \"all\", or \"none\"")
	list := flag.Bool("list", false, "list available experiments")
	strategy := flag.String("strategy", "all",
		"strategy benchmark: a registered name ("+strings.Join(argo.Strategies(), ", ")+"), \"all\", or \"none\"")
	datasetFlag := flag.String("dataset", "products-sim",
		"strategy-benchmark workloads: comma-separated registry profiles ("+strings.Join(datasets.PaperNames(), ", ")+
			") and/or .argograph paths, or \"all\" for every paper profile")
	samplerFlag := flag.String("sampler", "neighbor",
		"strategy-benchmark samplers: comma-separated from neighbor, shadow, saint, cluster, or \"all\"; "+
			"each (dataset, sampler) pair becomes one BENCH_argo.json entry")
	jsonPath := flag.String("json", "BENCH_argo.json", "where to write the strategy benchmark JSON")
	searches := flag.Int("searches", 20, "online-learning budget per strategy (paper Table VI: 20 on 64 cores)")
	lazyFlag := flag.String("lazy", "auto",
		"store access for .argograph -dataset paths: auto/on read only the spec section; off fully loads and verifies the store first")
	stable := flag.Bool("stable", false,
		"zero wall-clock fields in the JSON so repeated runs are byte-identical (CI regression gating)")
	exchangeFlag := flag.Bool("exchange", false,
		"run the halo-exchange traffic benchmark instead of the experiments/strategy benchmarks")
	transport := flag.String("transport", "inproc",
		"exchange transport for -exchange: inproc (direct calls) or tcp (loopback sockets)")
	serveFlag := flag.Bool("serve", false,
		"run the inference-serving benchmark (zipf vs uniform query streams) and merge a \"serve\" section into the JSON artifact")
	serveRequests := flag.Int("requests", 400, "serving benchmark: requests per (dataset, workload) row")
	serveConcurrency := flag.Int("concurrency", 4, "serving benchmark: closed-loop client workers")
	serveReqNodes := flag.Int("req-nodes", 4, "serving benchmark: nodes per predict request")
	serveRate := flag.Float64("rate", 0, "serving benchmark: open-loop request rate in req/s (0 = closed loop)")
	serveCacheBytes := flag.Int64("cache-bytes", 64<<10, "serving benchmark: hot-node feature cache budget")
	servePolicies := flag.String("cache-policy", "all",
		"serving benchmark: comma-separated cache policies ("+strings.Join(serve.Policies(), ", ")+") or \"all\"; one row pair per policy")
	serveHops := flag.Int("hops", 2, "serving benchmark: gather depth / model layers (2+ makes each request a frontier scan)")
	serveHubPin := flag.Float64("hub-pin", 0.01, "serving benchmark: top-degree fraction pinned by the twotier policy")
	servePrecompute := flag.Float64("precompute-hubs", 0, "serving benchmark: top-degree fraction with precomputed activations (0 disables hub serving)")
	serveZipfS := flag.Float64("zipf-s", 2.0, "serving benchmark: skew of the zipf query stream (must be > 1)")
	featDtypeFlag := flag.String("feat-dtype", "fp32",
		"-exchange/-serve workload feature dtype: fp32 or fp16 (fp16 converts each workload once up front, making the store dtype drive the wire format and cache packing)")
	regimesFlag := flag.Bool("regimes", false,
		"run the sampling-regime study: train each workload's shard set under the exact and partition-local regimes "+
			"and merge per-epoch loss + halo-traffic curves (and the wire-reduction / loss-delta headline) into -json")
	regimeEpochs := flag.Int("regime-epochs", 4, "regime study: training epochs per regime")
	kernelsFlag := flag.Bool("kernels", false,
		"run the kernel benchmark (degree-aware chunk balance + pooled forward timings on a synthetic power-law graph) and merge a \"kernels\" section into the JSON artifact")
	kernelWorkers := flag.Int("kernel-workers", 8,
		"kernel benchmark: worker count the chunk-balance metrics are computed for (machine-independent)")
	flag.Parse()

	loadMode, err := datasets.ParseLoadMode(*lazyFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "argo-bench: %v\n", err)
		os.Exit(1)
	}

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	if *exchangeFlag {
		jp := *jsonPath
		if jp == "BENCH_argo.json" {
			jp = "BENCH_exchange.json" // don't clobber the strategy artifact by default
		}
		if err := benchExchange(*datasetFlag, *transport, *featDtypeFlag, jp, *stable, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "argo-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *serveFlag {
		// Merges into the strategy artifact rather than clobbering it,
		// so the default -json path is the right destination.
		if err := benchServe(serveBenchConfig{
			Datasets:    *datasetFlag,
			Policies:    *servePolicies,
			Hops:        *serveHops,
			Requests:    *serveRequests,
			Concurrency: *serveConcurrency,
			ReqNodes:    *serveReqNodes,
			Rate:        *serveRate,
			CacheBytes:  *serveCacheBytes,
			HubPin:      *serveHubPin,
			Precompute:  *servePrecompute,
			ZipfS:       *serveZipfS,
			FeatDtype:   *featDtypeFlag,
			JSONPath:    *jsonPath,
			Stable:      *stable,
		}, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "argo-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *regimesFlag {
		// Like -serve, merges into the strategy artifact.
		if err := benchRegimes(*datasetFlag, *transport, *regimeEpochs, *jsonPath, *stable, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "argo-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *kernelsFlag {
		// Like -serve, merges into the strategy artifact.
		if err := benchKernels(*kernelWorkers, *jsonPath, *stable, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "argo-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	strategySet := false
	flag.Visit(func(f *flag.Flag) {
		// An explicit -json, -dataset, or -sampler is as clear a request
		// for the benchmark artifact as an explicit -strategy.
		if f.Name == "strategy" || f.Name == "json" || f.Name == "dataset" || f.Name == "sampler" {
			strategySet = true
		}
	})
	*strategy = strings.ToLower(strings.TrimSpace(*strategy))
	// Fail fast on a typo'd strategy name before the (slow) experiments.
	if *strategy != "all" && *strategy != "none" {
		known := false
		for _, n := range argo.Strategies() {
			if n == *strategy {
				known = true
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "argo-bench: unknown strategy %q (registered: %s)\n",
				*strategy, strings.Join(argo.Strategies(), ", "))
			os.Exit(1)
		}
	}
	if *exp != "none" {
		names := []string{*exp}
		if *exp == "all" {
			names = experiments.Names()
		}
		for _, name := range names {
			start := time.Now()
			if err := experiments.Run(name, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "argo-bench: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("[%s took %s]\n\n", name, time.Since(start).Round(time.Millisecond))
		}
	}
	if *strategy == "none" {
		return
	}
	// A request for one specific experiment keeps its pre-redesign
	// behaviour: the strategy benchmark (and its BENCH_argo.json) only
	// runs when asked for explicitly or on a default full run.
	if *exp != "all" && *exp != "none" && !strategySet {
		return
	}
	samplers, err := parseSamplers(strings.ToLower(strings.TrimSpace(*samplerFlag)))
	if err != nil {
		fmt.Fprintf(os.Stderr, "argo-bench: %v\n", err)
		os.Exit(1)
	}
	if err := benchStrategies(*strategy, *datasetFlag, samplers, *searches, *jsonPath, loadMode, *stable, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "argo-bench: %v\n", err)
		os.Exit(1)
	}
}

// benchWorkload is one resolved -dataset entry.
type benchWorkload struct {
	name string
	spec graph.DatasetSpec
}

// benchDatasets expands the -dataset flag and resolves every workload up
// front, so a typo'd name fails fast instead of after minutes of
// benchmarking the names before it. Path workloads resolve through the
// store's spec section only (lazy); -lazy off forces a full,
// checksum-verified load before the spec is trusted.
func benchDatasets(datasetFlag string, mode datasets.LoadMode) ([]benchWorkload, error) {
	names := datasets.PaperNames()
	if datasetFlag != "all" {
		names = nil
		for _, n := range strings.Split(datasetFlag, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("-dataset selected no workloads")
	}
	out := make([]benchWorkload, 0, len(names))
	for _, n := range names {
		spec, err := datasets.ResolveSpecMode(n, mode)
		if err != nil {
			return nil, err
		}
		out = append(out, benchWorkload{name: n, spec: spec})
	}
	return out, nil
}

// benchStrategies runs each requested strategy through the public
// Runtime.Run loop on the Table-IV simulator setting (a 64-core
// Sapphire Rapids) once per requested (dataset, sampler) pair, with an
// identical budget everywhere, and writes the per-pair comparison to
// jsonPath. With stable set, wall-clock fields are zeroed so the
// artifact is a pure function of (datasets, samplers, strategies,
// budget, seed) — byte-stable across runs, which is what CI's
// bench-smoke job diffs.
func benchStrategies(which, datasetFlag string, samplers []benchSampler, searches int, jsonPath string, mode datasets.LoadMode, stable bool, w *os.File) error {
	workloads, err := benchDatasets(datasetFlag, mode)
	if err != nil {
		return err
	}
	names := argo.Strategies()
	if which != "all" {
		names = []string{which}
	}
	const totalCores = 64
	epochs := searches + 4 // a short reuse tail exercises the full loop
	out := benchJSON{
		TotalCores: totalCores,
		Searches:   searches,
		Epochs:     epochs,
	}
	for _, wl := range workloads {
		for _, smp := range samplers {
			dsName, spec := wl.name, wl.spec
			sc := platsim.Scenario{
				Platform: platform.SapphireRapids2S,
				Library:  platsim.DGL,
				Sampler:  smp.kind,
				Model:    smp.model,
				Dataset:  spec,
			}
			obj := platsim.NewObjective(sc)
			space := argo.DefaultSpace(totalCores)
			optimum := search.Exhaustive(space, obj).BestTime
			db := datasetBench{
				Dataset:        dsName,
				Sampler:        smp.name,
				Scenario:       smp.display + " / " + spec.Name + " / " + sc.Platform.Name,
				SpaceSize:      space.Size(),
				OptimalSeconds: optimum,
			}
			fmt.Fprintf(w, "== strategy benchmark: %s, space %d, budget %d ==\n", db.Scenario, db.SpaceSize, searches)
			for _, name := range names {
				rt, err := argo.NewRuntime(epochs, searches,
					argo.WithTotalCores(totalCores),
					argo.WithStrategy(name),
					argo.WithSeed(7),
				)
				if err != nil {
					return err
				}
				start := time.Now()
				rep, err := rt.Run(context.Background(), func(_ context.Context, cfg argo.Config, _ int) (float64, error) {
					return obj.Evaluate(cfg), nil
				})
				if err != nil {
					return fmt.Errorf("strategy %s on %s/%s: %w", name, dsName, smp.name, err)
				}
				res := strategyResult{
					Strategy:         name,
					Best:             rep.Best,
					BestEpochSeconds: rep.BestEpochSeconds,
					Quality:          optimum / rep.BestEpochSeconds,
					SearchEpochs:     rep.SearchEpochs,
					TunerOverhead:    rep.TunerOverhead.String(),
					TunerOverheadNs:  rep.TunerOverhead.Nanoseconds(),
					WallSeconds:      time.Since(start).Seconds(),
				}
				if stable {
					// The simulator outputs are deterministic for a fixed
					// seed; only the real-time measurements vary run to run.
					res.TunerOverhead = "0s"
					res.TunerOverheadNs = 0
					res.WallSeconds = 0
				}
				db.Strategies = append(db.Strategies, res)
				fmt.Fprintf(w, "%-11s best %-15s %.3fs/epoch  quality %.2f  overhead %s\n",
					name, rep.Best.String(), rep.BestEpochSeconds, res.Quality, rep.TunerOverhead.Round(time.Microsecond))
			}
			out.Datasets = append(out.Datasets, db)
		}
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	fmt.Fprintf(w, "strategy benchmark (%d datasets) written to %s\n", len(out.Datasets), jsonPath)
	return nil
}

// exchangeBench is one row of the -exchange artifact: a sharded
// 2-replica training run's batched halo-exchange traffic on one
// workload. Every count is deterministic for a fixed seed.
type exchangeBench struct {
	Dataset   string            `json:"dataset"`
	Shards    int               `json:"shards"`
	Replicas  int               `json:"replicas"`
	Epochs    int               `json:"epochs"`
	FeatDtype string            `json:"feat_dtype"`
	EdgeCut   int64             `json:"edge_cut_arcs"`
	Exchange  ddp.ExchangeStats `json:"exchange"`
	// PerRowMessages is what the per-row baseline would have sent: one
	// message per remote row. Reduction = PerRowMessages / Messages.
	PerRowMessages int64   `json:"per_row_messages"`
	Reduction      float64 `json:"message_reduction"`
	WallSeconds    float64 `json:"wall_seconds"`
}

// benchExchange shards each workload (k=4), trains two epochs on two
// replicas over the selected transport, and reports the batched
// exchange's traffic next to the per-row baseline it replaced.
func benchExchange(datasetFlag, transport, featDtype, jsonPath string, stable bool, w *os.File) error {
	dt, err := graph.ParseFeatDtype(featDtype)
	if err != nil {
		return err
	}
	var names []string
	if datasetFlag == "all" {
		names = datasets.PaperNames()
	} else {
		for _, n := range strings.Split(datasetFlag, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("-dataset selected no workloads")
	}
	const (
		seed     = 7
		shards   = 4
		replicas = 2
		epochs   = 2
	)
	out := struct {
		Transport string          `json:"transport"`
		Exchange  []exchangeBench `json:"exchange"`
	}{Transport: transport}
	for _, name := range names {
		ds, err := datasets.Resolve(name, seed)
		if err != nil {
			return err
		}
		// Converting before sharding makes the shard manifest carry the
		// dtype, which is what negotiates the fp16 wire format downstream.
		if err := ds.ConvertFeatures(dt); err != nil {
			return err
		}
		ss, err := graph.ShardSetFromDataset(ds, graph.ShardOptions{K: shards, Seed: seed})
		if err != nil {
			return err
		}
		skel, err := ss.Skeleton()
		if err != nil {
			ss.Close()
			return err
		}
		sources, ex, err := engine.NewShardSourcesOpts(ss, replicas, engine.ShardSourceOptions{Transport: transport})
		if err != nil {
			ss.Close()
			return err
		}
		eng, err := engine.New(engine.Config{
			Dataset:       skel,
			Sampler:       sampler.NewNeighbor(skel.Graph, []int{10, 5}),
			Model:         nn.ModelSpec{Kind: nn.KindSAGE, Dims: []int{ds.Spec.ScaledF0, ds.Spec.ScaledHidden, ds.NumClasses}, Seed: seed},
			BatchSize:     64,
			LR:            0.01,
			NumProcs:      replicas,
			SampleWorkers: 2,
			TrainWorkers:  1,
			Seed:          seed,
			Sources:       sources,
		})
		if err != nil {
			ex.Close()
			ss.Close()
			return err
		}
		start := time.Now()
		for ep := 0; ep < epochs; ep++ {
			if _, err := eng.RunEpoch(ep); err != nil {
				ex.Close()
				ss.Close()
				return fmt.Errorf("%s: epoch %d: %w", name, ep, err)
			}
		}
		row := exchangeBench{
			Dataset:        name,
			Shards:         shards,
			Replicas:       replicas,
			Epochs:         epochs,
			FeatDtype:      dt.String(),
			EdgeCut:        ss.Manifest.TotalCutArcs(),
			Exchange:       ex.Summary(),
			PerRowMessages: ex.TotalStats().RemoteRows,
			WallSeconds:    time.Since(start).Seconds(),
		}
		if row.Exchange.Messages > 0 {
			row.Reduction = float64(row.PerRowMessages) / float64(row.Exchange.Messages)
		}
		if stable {
			row.WallSeconds = 0
		}
		out.Exchange = append(out.Exchange, row)
		fmt.Fprintf(w, "%-16s %s %s: %d remote rows, %d logical bytes → %d wire bytes in %d messages (per-row baseline %d → %.1f× fewer)\n",
			name, transport, dt, row.Exchange.RemoteRows, row.Exchange.RemoteBytes,
			row.Exchange.WireBytes, row.Exchange.Messages, row.PerRowMessages, row.Reduction)
		ex.Close()
		ss.Close()
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	fmt.Fprintf(w, "exchange benchmark (%d workloads, %s transport) written to %s\n", len(out.Exchange), transport, jsonPath)
	return nil
}
