// Command argo-bench regenerates the tables and figures of the ARGO paper
// on the platform simulator (plus the real-training convergence study),
// and benchmarks the registered tuning strategies head-to-head through
// the public runtime API, emitting a machine-readable BENCH_argo.json so
// the performance trajectory can be tracked across commits.
//
// Usage:
//
//	argo-bench -list
//	argo-bench -exp fig1
//	argo-bench -exp all
//	argo-bench -exp none -strategy all -json BENCH_argo.json
//
// See DESIGN.md §6 for the experiment ↔ paper mapping and EXPERIMENTS.md
// for the recorded paper-vs-measured comparison.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"argo"
	"argo/internal/experiments"
	"argo/internal/graph"
	"argo/internal/platform"
	"argo/internal/platsim"
	"argo/internal/search"
)

// strategyResult is one row of BENCH_argo.json: a tuning strategy run
// through the public Runtime on the simulated platform.
type strategyResult struct {
	Strategy         string      `json:"strategy"`
	Best             argo.Config `json:"best"`
	BestEpochSeconds float64     `json:"best_epoch_seconds"`
	// Quality is optimal/best — 1.0 means the strategy found the true
	// optimum of the space.
	Quality         float64 `json:"quality"`
	SearchEpochs    int     `json:"search_epochs"`
	TunerOverhead   string  `json:"tuner_overhead"`
	TunerOverheadNs int64   `json:"tuner_overhead_ns"`
	WallSeconds     float64 `json:"wall_seconds"`
}

// benchJSON is the whole emitted artifact.
type benchJSON struct {
	Scenario       string           `json:"scenario"`
	TotalCores     int              `json:"total_cores"`
	SpaceSize      int              `json:"space_size"`
	Searches       int              `json:"searches"`
	Epochs         int              `json:"epochs"`
	OptimalSeconds float64          `json:"optimal_seconds"`
	Strategies     []strategyResult `json:"strategies"`
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (see -list), \"all\", or \"none\"")
	list := flag.Bool("list", false, "list available experiments")
	strategy := flag.String("strategy", "all",
		"strategy benchmark: a registered name ("+strings.Join(argo.Strategies(), ", ")+"), \"all\", or \"none\"")
	jsonPath := flag.String("json", "BENCH_argo.json", "where to write the strategy benchmark JSON")
	searches := flag.Int("searches", 20, "online-learning budget per strategy (paper Table VI: 20 on 64 cores)")
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}
	strategySet := false
	flag.Visit(func(f *flag.Flag) {
		// An explicit -json is as clear a request for the benchmark
		// artifact as an explicit -strategy.
		if f.Name == "strategy" || f.Name == "json" {
			strategySet = true
		}
	})
	*strategy = strings.ToLower(strings.TrimSpace(*strategy))
	// Fail fast on a typo'd strategy name before the (slow) experiments.
	if *strategy != "all" && *strategy != "none" {
		known := false
		for _, n := range argo.Strategies() {
			if n == *strategy {
				known = true
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "argo-bench: unknown strategy %q (registered: %s)\n",
				*strategy, strings.Join(argo.Strategies(), ", "))
			os.Exit(1)
		}
	}
	if *exp != "none" {
		names := []string{*exp}
		if *exp == "all" {
			names = experiments.Names()
		}
		for _, name := range names {
			start := time.Now()
			if err := experiments.Run(name, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "argo-bench: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("[%s took %s]\n\n", name, time.Since(start).Round(time.Millisecond))
		}
	}
	if *strategy == "none" {
		return
	}
	// A request for one specific experiment keeps its pre-redesign
	// behaviour: the strategy benchmark (and its BENCH_argo.json) only
	// runs when asked for explicitly or on a default full run.
	if *exp != "all" && *exp != "none" && !strategySet {
		return
	}
	if err := benchStrategies(*strategy, *searches, *jsonPath, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "argo-bench: %v\n", err)
		os.Exit(1)
	}
}

// benchStrategies runs each requested strategy through the public
// Runtime.Run loop on the Table-IV simulator scenario (Neighbor-SAGE on
// ogbn-products, 64-core Sapphire Rapids) with an identical budget, and
// writes the comparison to jsonPath.
func benchStrategies(which string, searches int, jsonPath string, w *os.File) error {
	ds, err := graph.Spec("ogbn-products")
	if err != nil {
		return err
	}
	sc := platsim.Scenario{
		Platform: platform.SapphireRapids2S,
		Library:  platsim.DGL,
		Sampler:  platsim.Neighbor,
		Model:    platsim.SAGE,
		Dataset:  ds,
	}
	const totalCores = 64
	obj := platsim.NewObjective(sc)
	space := argo.DefaultSpace(totalCores)
	optimum := search.Exhaustive(space, obj).BestTime

	names := argo.Strategies()
	if which != "all" {
		names = []string{which}
	}
	epochs := searches + 4 // a short reuse tail exercises the full loop
	out := benchJSON{
		Scenario:       "Neighbor-SAGE / ogbn-products / " + sc.Platform.Name,
		TotalCores:     totalCores,
		SpaceSize:      space.Size(),
		Searches:       searches,
		Epochs:         epochs,
		OptimalSeconds: optimum,
	}
	fmt.Fprintf(w, "== strategy benchmark: %s, space %d, budget %d ==\n", out.Scenario, out.SpaceSize, searches)
	for _, name := range names {
		rt, err := argo.NewRuntime(epochs, searches,
			argo.WithTotalCores(totalCores),
			argo.WithStrategy(name),
			argo.WithSeed(7),
		)
		if err != nil {
			return err
		}
		start := time.Now()
		rep, err := rt.Run(context.Background(), func(_ context.Context, cfg argo.Config, _ int) (float64, error) {
			return obj.Evaluate(cfg), nil
		})
		if err != nil {
			return fmt.Errorf("strategy %s: %w", name, err)
		}
		res := strategyResult{
			Strategy:         name,
			Best:             rep.Best,
			BestEpochSeconds: rep.BestEpochSeconds,
			Quality:          optimum / rep.BestEpochSeconds,
			SearchEpochs:     rep.SearchEpochs,
			TunerOverhead:    rep.TunerOverhead.String(),
			TunerOverheadNs:  rep.TunerOverhead.Nanoseconds(),
			WallSeconds:      time.Since(start).Seconds(),
		}
		out.Strategies = append(out.Strategies, res)
		fmt.Fprintf(w, "%-11s best %-15s %.3fs/epoch  quality %.2f  overhead %s\n",
			name, rep.Best.String(), rep.BestEpochSeconds, res.Quality, rep.TunerOverhead.Round(time.Microsecond))
	}
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	fmt.Fprintf(w, "strategy benchmark written to %s\n", jsonPath)
	return nil
}
