package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/sampler"
	"argo/internal/tensor"
)

// kernelsBench is the "kernels" section of BENCH_argo.json: the
// degree-aware chunking's load-balance metrics on a synthetic power-law
// graph, plus wall-clock for the pooled forward/fused-inference paths.
// The balance metrics are a pure function of (graph seed, workers) —
// chunk boundaries are deterministic — so CI can gate on them even on a
// single-core runner where parallel wall-clock means nothing; timing
// fields are zeroed under -stable.
type kernelsBench struct {
	Graph   string `json:"graph"`
	Nodes   int    `json:"nodes"`
	Edges   int64  `json:"edges"` // stored arcs
	Workers int    `json:"workers"`

	// Load balance over the per-row aggregation cost (1 + degree).
	// FixedMaxChunkCost is the heaviest chunk under the old equal-count
	// split into workers chunks; WeightedMaxChunkCost is the heaviest
	// chunk under the cost-quantile split with work-stealing
	// oversubscription. Their ratio is the worst-case speedup headroom
	// the weighted dispatch recovers on this skew.
	TotalCost            int64   `json:"total_cost"`
	MaxRowCost           int64   `json:"max_row_cost"`
	Chunks               int     `json:"chunks"`
	FixedMaxChunkCost    int64   `json:"fixed_max_chunk_cost"`
	WeightedMaxChunkCost int64   `json:"weighted_max_chunk_cost"`
	BalanceGain          float64 `json:"balance_gain"`

	// Wall-clock (zeroed under -stable): one steady-state pooled
	// Forward and fused Infer pass of a 2-layer SAGE over a 1024-target
	// full-neighbor batch.
	BatchTargets   int     `json:"batch_targets"`
	ForwardSeconds float64 `json:"forward_seconds"`
	InferSeconds   float64 `json:"infer_seconds"`
}

// maxChunkCost sums cost over each [bounds[k], bounds[k+1]) chunk and
// returns the heaviest.
func maxChunkCost(bounds []int, cost func(i int) int) int64 {
	var worst int64
	for k := 1; k < len(bounds); k++ {
		var s int64
		for i := bounds[k-1]; i < bounds[k]; i++ {
			s += int64(cost(i))
		}
		if s > worst {
			worst = s
		}
	}
	return worst
}

// benchKernels generates a deterministic power-law graph, measures the
// chunk balance of the fixed vs weighted splits at the requested worker
// count, times the pooled forward and fused inference paths, and merges
// a "kernels" section into jsonPath.
func benchKernels(workers int, jsonPath string, stable bool, w *os.File) error {
	if workers < 1 {
		workers = 1
	}
	const (
		numNodes = 20000
		numEdges = 200000
		seed     = 42
	)
	g, _, err := graph.Generate(graph.GenSpec{
		NumNodes:   numNodes,
		NumEdges:   numEdges,
		NumClasses: 5,
		Exponent:   2.1,
		MinDegree:  1,
		Homophily:  0.5,
		Seed:       seed,
	})
	if err != nil {
		return err
	}
	cost := func(i int) int { return 1 + g.Degree(graph.NodeID(i)) }
	var total, maxRow int64
	for i := 0; i < g.NumNodes; i++ {
		c := int64(cost(i))
		total += c
		if c > maxRow {
			maxRow = c
		}
	}
	// The fixed baseline is ParallelRange's equal-count split into
	// workers chunks; the weighted split oversubscribes (work-stealing)
	// and cuts at cost quantiles, so its heaviest chunk bounds the
	// critical path under stealing.
	fixed := tensor.SplitWeighted(g.NumNodes, workers, nil)
	weighted := tensor.SplitWeighted(g.NumNodes, workers*tensor.StealFactor, cost)
	row := kernelsBench{
		Graph:                fmt.Sprintf("powerlaw-n%d-e%d-s%d", numNodes, numEdges, seed),
		Nodes:                g.NumNodes,
		Edges:                g.NumEdges(),
		Workers:              workers,
		TotalCost:            total,
		MaxRowCost:           maxRow,
		Chunks:               len(weighted) - 1,
		FixedMaxChunkCost:    maxChunkCost(fixed, cost),
		WeightedMaxChunkCost: maxChunkCost(weighted, cost),
		BatchTargets:         1024,
	}
	if row.WeightedMaxChunkCost > 0 {
		row.BalanceGain = float64(row.FixedMaxChunkCost) / float64(row.WeightedMaxChunkCost)
	}

	// Wall-clock of the end-to-end kernels (meaningful only on
	// multi-core hosts; CI gates on the balance metrics above instead).
	targets := make([]graph.NodeID, row.BatchTargets)
	for i := range targets {
		targets[i] = graph.NodeID(i * 3)
	}
	mb := sampler.NewFullNeighbor(g, 2).Sample(nil, targets)
	m, err := nn.NewModel(nn.ModelSpec{Kind: nn.KindSAGE, Dims: []int{64, 32, 8}, Seed: seed}, nil)
	if err != nil {
		return err
	}
	feats := tensor.New(g.NumNodes, 64)
	for i := range feats.Data {
		feats.Data[i] = float32(i%17) * 0.1
	}
	pool := tensor.NewPool(workers)
	bufs := m.Buffers()
	x0 := nn.GatherPooled(bufs, feats, mb.InputNodes())
	m.Forward(pool, mb, x0) // warm the buffer pool
	const reps = 3
	start := time.Now()
	for r := 0; r < reps; r++ {
		m.Forward(pool, mb, x0)
	}
	row.ForwardSeconds = time.Since(start).Seconds() / reps
	bufs.Put(m.Infer(pool, mb, x0)) // warm
	start = time.Now()
	for r := 0; r < reps; r++ {
		bufs.Put(m.Infer(pool, mb, x0))
	}
	row.InferSeconds = time.Since(start).Seconds() / reps
	bufs.Put(x0)
	if stable {
		row.ForwardSeconds = 0
		row.InferSeconds = 0
	}

	// Merge: keep whatever sections are already in the artifact.
	var out mergedBench
	if raw, err := os.ReadFile(jsonPath); err == nil {
		if err := json.Unmarshal(raw, &out); err != nil {
			return fmt.Errorf("parsing existing %s: %w", jsonPath, err)
		}
	}
	out.Kernels = &row
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	fmt.Fprintf(w, "kernels: %s, %d workers: max chunk cost %d fixed → %d weighted (%.2f× better balance, %d chunks) merged into %s\n",
		row.Graph, workers, row.FixedMaxChunkCost, row.WeightedMaxChunkCost, row.BalanceGain, row.Chunks, jsonPath)
	return nil
}
