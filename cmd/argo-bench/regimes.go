package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"argo/internal/datasets"
	"argo/internal/engine"
	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/sampler"
)

// regimeEpoch is one epoch of one regime run: the training loss plus
// the halo traffic that epoch moved (per-epoch deltas via the
// exchange's Snapshot seam, not cumulative counters).
type regimeEpoch struct {
	Epoch       int     `json:"epoch"`
	Loss        float64 `json:"loss"`
	LocalRows   int64   `json:"local_rows"`
	RemoteRows  int64   `json:"remote_rows"`
	RemoteBytes int64   `json:"remote_bytes"` // logical float32 bytes
	WireBytes   int64   `json:"wire_bytes"`   // framed bytes on the wire
	Messages    int64   `json:"messages"`
	GradRows    int64   `json:"grad_rows"`
	// GradNodes counts owned rows that received routed input-feature
	// gradient contributions (local regime only).
	GradNodes int64   `json:"grad_nodes,omitempty"`
	Seconds   float64 `json:"seconds"` // zeroed under -stable
}

// regimeRun is one sampling regime's curve on one workload.
type regimeRun struct {
	Regime         string        `json:"regime"` // exact or local
	FinalLoss      float64       `json:"final_loss"`
	TotalWireBytes int64         `json:"total_wire_bytes"`
	TotalRemote    int64         `json:"total_remote_rows"`
	TotalMessages  int64         `json:"total_messages"`
	Epochs         []regimeEpoch `json:"epochs"`
}

// regimeBench is the accuracy/communication study on one workload: the
// exact and partition-local regimes trained side by side on the same
// shard set, with the headline trade-off precomputed for CI gates.
type regimeBench struct {
	Dataset    string  `json:"dataset"`
	Shards     int     `json:"shards"`
	Replicas   int     `json:"replicas"`
	EpochCount int     `json:"epoch_count"`
	EdgeCut    int64   `json:"edge_cut_arcs"`
	Transport  string  `json:"transport"`
	FeatDtype  string  `json:"feat_dtype"`
	BatchSize  int     `json:"batch_size"`
	Fanouts    []int   `json:"fanouts"`
	ExactAcc   float64 `json:"exact_val_accuracy"`
	LocalAcc   float64 `json:"local_val_accuracy"`
	// WireReduction = exact total wire bytes / local total wire bytes
	// (>1 means the local regime moved fewer bytes). FinalLossDelta =
	// |local final loss − exact final loss|. The regime-smoke CI job
	// gates on both.
	WireReduction  float64     `json:"wire_reduction"`
	FinalLossDelta float64     `json:"final_loss_delta"`
	Runs           []regimeRun `json:"runs"`
}

// runRegime trains one regime on a fresh shard mapping of ss and
// returns its per-epoch curve (losses from the engine, traffic from
// per-epoch exchange snapshots) plus the validation accuracy.
func runRegime(ss *graph.ShardSet, regime engine.SamplingRegime, transport string, replicas, batch, epochs int, fanouts []int, seed int64, stable bool) (regimeRun, float64, error) {
	run := regimeRun{Regime: regime.String()}
	skel, err := ss.Skeleton()
	if err != nil {
		return run, 0, err
	}
	sources, ex, err := engine.NewShardSourcesOpts(ss, replicas, engine.ShardSourceOptions{Transport: transport})
	if err != nil {
		return run, 0, err
	}
	defer ex.Close()
	cfg := engine.Config{
		Dataset: skel,
		Sampler: sampler.NewNeighbor(skel.Graph, fanouts),
		Model: nn.ModelSpec{
			Kind: nn.KindSAGE,
			Dims: []int{ss.Spec().ScaledF0, ss.Spec().ScaledHidden, skel.NumClasses},
			Seed: seed,
		},
		BatchSize: batch,
		LR:        0.01,
		NumProcs:  replicas,
		// One sampling worker keeps the gather order — and with it the
		// local regime's first-touch message counts — deterministic, so
		// the artifact is byte-stable under -stable.
		SampleWorkers:  1,
		TrainWorkers:   1,
		Seed:           seed,
		Sources:        sources,
		SamplingRegime: regime,
	}
	if regime == engine.RegimeLocal {
		setup, err := engine.NewPartitionSetup(ss, skel, replicas, fanouts)
		if err != nil {
			return run, 0, err
		}
		cfg.LocalSamplers = setup.Samplers
		cfg.LocalTargets = setup.Targets
	}
	eng, err := engine.New(cfg)
	if err != nil {
		return run, 0, err
	}
	for ep := 0; ep < epochs; ep++ {
		start := time.Now()
		res, err := eng.RunEpoch(ep)
		if err != nil {
			return run, 0, fmt.Errorf("%s epoch %d: %w", regime, ep, err)
		}
		delta := ex.Snapshot()
		row := regimeEpoch{
			Epoch:       ep,
			Loss:        res.MeanLoss,
			LocalRows:   delta.LocalRows,
			RemoteRows:  delta.RemoteRows,
			RemoteBytes: delta.RemoteBytes,
			WireBytes:   delta.WireBytes,
			Messages:    delta.Messages,
			GradRows:    delta.GradRows,
			GradNodes:   res.GradNodes,
			Seconds:     time.Since(start).Seconds(),
		}
		if stable {
			row.Seconds = 0
		}
		run.Epochs = append(run.Epochs, row)
		run.FinalLoss = res.MeanLoss
		run.TotalWireBytes += delta.WireBytes
		run.TotalRemote += delta.RemoteRows
		run.TotalMessages += delta.Messages
	}
	acc, err := eng.EvaluateErr(skel.ValIdx)
	if err != nil {
		return run, 0, err
	}
	return run, acc, nil
}

// benchRegimes runs the exact vs partition-local accuracy and
// communication study on each workload's shard set and merges a
// "regimes" section into jsonPath (BENCH_argo.json).
func benchRegimes(datasetFlag, transport string, epochs int, jsonPath string, stable bool, w *os.File) error {
	if epochs < 1 {
		return fmt.Errorf("-regime-epochs %d", epochs)
	}
	var names []string
	if datasetFlag == "all" {
		names = datasets.PaperNames()
	} else {
		for _, n := range strings.Split(datasetFlag, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("-dataset selected no workloads")
	}
	const (
		seed     = 7
		shards   = 4
		replicas = 2
		batch    = 64
	)
	fanouts := []int{10, 5}
	var rows []regimeBench
	for _, name := range names {
		ds, err := datasets.Resolve(name, seed)
		if err != nil {
			return err
		}
		ss, err := graph.ShardSetFromDataset(ds, graph.ShardOptions{K: shards, Seed: seed})
		if err != nil {
			return err
		}
		row := regimeBench{
			Dataset:    name,
			Shards:     shards,
			Replicas:   replicas,
			EpochCount: epochs,
			EdgeCut:    ss.Manifest.TotalCutArcs(),
			Transport:  transport,
			FeatDtype:  ss.Manifest.FeatDtype,
			BatchSize:  batch,
			Fanouts:    fanouts,
		}
		for _, regime := range []engine.SamplingRegime{engine.RegimeExact, engine.RegimeLocal} {
			run, acc, err := runRegime(ss, regime, transport, replicas, batch, epochs, fanouts, seed, stable)
			if err != nil {
				ss.Close()
				return fmt.Errorf("%s: %w", name, err)
			}
			if regime == engine.RegimeExact {
				row.ExactAcc = acc
			} else {
				row.LocalAcc = acc
			}
			row.Runs = append(row.Runs, run)
		}
		ss.Close()
		exact, local := row.Runs[0], row.Runs[1]
		if local.TotalWireBytes > 0 {
			row.WireReduction = float64(exact.TotalWireBytes) / float64(local.TotalWireBytes)
		}
		row.FinalLossDelta = math.Abs(local.FinalLoss - exact.FinalLoss)
		rows = append(rows, row)
		fmt.Fprintf(w, "%-16s exact: %d wire bytes, final loss %.4f | local: %d wire bytes, final loss %.4f → %.1f× less wire, loss delta %.4f\n",
			name, exact.TotalWireBytes, exact.FinalLoss, local.TotalWireBytes, local.FinalLoss,
			row.WireReduction, row.FinalLossDelta)
	}

	// Merge: keep whatever sections are already in the artifact.
	var out mergedBench
	if raw, err := os.ReadFile(jsonPath); err == nil {
		if err := json.Unmarshal(raw, &out); err != nil {
			return fmt.Errorf("parsing existing %s: %w", jsonPath, err)
		}
	}
	out.Regimes = rows
	f, err := os.Create(jsonPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	fmt.Fprintf(w, "regime study (%d workloads, %d epochs, %s transport) merged into %s\n", len(rows), epochs, transport, jsonPath)
	return nil
}
