// Command argo-data manages .argograph binary dataset stores: it
// generates the registry's synthetic workload profiles to disk (at test
// size or scaled up to 1000×), inspects stored graphs lazily, verifies
// a store's section table, checksums, and structural invariants, and
// upgrades legacy v1 stores to the sectioned v2 layout. Generating once
// and loading thereafter turns dataset setup from tens of milliseconds
// (or much more for bigger profiles) into a single fast read shared by
// argo-train, argo-bench, and argo-sweep — and with v2's lazy loading,
// metadata and topology reads stay fast no matter how large the store.
//
// Usage:
//
//	argo-data ls
//	argo-data gen -dataset arxiv-sim [-seed 1] [-scale 100] -o arxiv.argograph
//	argo-data gen -dataset tiny -nodes 5000 -edges 40000 -feat 32 -o big-tiny.argograph
//	argo-data import edges.csv -labels labels.csv -o mygraph.argograph
//	argo-data inspect arxiv.argograph
//	argo-data verify arxiv.argograph
//	argo-data upgrade old.argograph [-o new.argograph]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"argo/internal/datasets"
	"argo/internal/graph"
)

func usage() {
	fmt.Fprintf(os.Stderr, `argo-data manages .argograph binary dataset stores.

Subcommands:
  ls                         list registered workload profiles
  gen -dataset <name> -o <file> [-seed N] [-scale N] [-nodes N] [-edges N] [-feat N]
                             generate a profile (optionally scaled) and save it
  shard <name|file> -k N [-part greedy|random] [-seed N] [-o <dir/base>]
                             split a workload into N .argograph shards + manifest
  import <edges-file> -o <file> [-labels l.csv] [-feats f.csv] [-name N]
         [-directed] [-feat N] [-classes N] [-train-frac F] [-seed N]
                             convert an edge-list/CSV dump into an .argograph store
  inspect <file>             print a stored dataset's statistics and section layout
                             (lazy: topology and feature bytes are never read)
  verify <file>              check section table, checksums, and graph invariants
                             (fp16 stores: every value finite and fp16-exact); on a
                             manifest-carrying shard store, also validate the
                             whole shard set (coverage, disjointness, halo edges)
  upgrade <file> [-o <out>]  rewrite a v1 store in the sectioned v2 format
  convert <file> -feat-dtype fp32|fp16 [-o <out>]
                             re-encode the store's features in the given dtype
                             (fp16 halves the features section; idempotent)

Registered profiles: %s
`, strings.Join(datasets.Names(), ", "))
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "ls":
		err = runLs()
	case "gen":
		err = runGen(os.Args[2:])
	case "shard":
		err = runShard(os.Args[2:])
	case "import":
		err = runImport(os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	case "verify":
		err = runVerify(os.Args[2:])
	case "upgrade":
		err = runUpgrade(os.Args[2:])
	case "convert":
		err = runConvert(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "argo-data: unknown subcommand %q\n\n", os.Args[1])
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "argo-data: %v\n", err)
		os.Exit(1)
	}
}

func runLs() error {
	fmt.Printf("%-15s %-10s %-10s %-8s %-8s %s\n", "PROFILE", "NODES", "EDGES*", "FEATS", "CLASSES", "DESCRIPTION")
	for _, name := range datasets.Names() {
		p, err := datasets.Get(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-15s %-10d %-10d %-8d %-8d %s\n",
			p.Name, p.Spec.ScaledNodes, p.Spec.ScaledEdges, p.Spec.ScaledF0, p.Spec.ScaledClasses, p.Description)
	}
	fmt.Println("* undirected edge target; the stored arc count is near twice this (both directions, after dedup)")
	return nil
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	name := fs.String("dataset", "", "registry profile to generate (see argo-data ls)")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("o", "", "output .argograph path")
	scale := fs.Int("scale", 1, "multiply the profile's node and edge counts by N (10–1000 for full-scale stores)")
	nodes := fs.Int("nodes", 0, "override node count (after -scale; 0 = keep)")
	edges := fs.Int64("edges", 0, "override undirected edge target (after -scale; 0 = keep)")
	feat := fs.Int("feat", 0, "override feature width F0 (0 = keep)")
	featDtype := fs.String("feat-dtype", "fp32", "feature storage dtype: fp32 or fp16 (fp16 rounds once at generation)")
	fs.Parse(args)
	if *name == "" || *out == "" {
		return fmt.Errorf("gen needs -dataset and -o (try: argo-data gen -dataset arxiv-sim -o arxiv.argograph)")
	}
	dt, err := graph.ParseFeatDtype(*featDtype)
	if err != nil {
		return err
	}
	if *scale < 1 {
		return fmt.Errorf("-scale must be ≥ 1, got %d", *scale)
	}
	p, err := datasets.Get(*name)
	if err != nil {
		return err
	}
	spec := p.Spec.Scale(*scale)
	if *nodes > 0 {
		spec.ScaledNodes = *nodes
	}
	if *edges > 0 {
		spec.ScaledEdges = *edges
	}
	if *feat > 0 {
		spec.ScaledF0 = *feat
	}
	start := time.Now()
	ds, err := graph.Build(spec, *seed)
	if err != nil {
		return err
	}
	if err := ds.ConvertFeatures(dt); err != nil {
		return err
	}
	genTime := time.Since(start)
	start = time.Now()
	if err := ds.Save(*out); err != nil {
		return err
	}
	fi, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("%s (seed %d): %d nodes, %d arcs, %d classes, %s features → %s (%d bytes, format v2)\n",
		spec.Name, *seed, ds.Graph.NumNodes, ds.Graph.NumEdges(), ds.NumClasses, ds.FeatDtype, *out, fi.Size())
	fmt.Printf("generated in %s, saved in %s\n", genTime.Round(time.Microsecond), time.Since(start).Round(time.Microsecond))
	return nil
}

func runShard(args []string) error {
	fs := flag.NewFlagSet("shard", flag.ExitOnError)
	k := fs.Int("k", 0, "number of shards (required, ≥1)")
	part := fs.String("part", "greedy", "partitioner: greedy (deterministic BFS) or random")
	seed := fs.Int64("seed", 1, "seed for workload generation and the random partitioner")
	out := fs.String("o", "", "output dir/base for <base>.shard<i>.argograph (default: derived from the input)")
	// Accept both `shard tiny -k 4` and `shard -k 4 tiny`.
	var src string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		src = args[0]
		args = args[1:]
	}
	fs.Parse(args)
	if src == "" && fs.NArg() == 1 {
		src = fs.Arg(0)
	} else if fs.NArg() > 0 {
		return fmt.Errorf("shard takes one workload (profile name or .argograph path)")
	}
	if src == "" || *k < 1 {
		return fmt.Errorf("shard needs a workload and -k (try: argo-data shard tiny -k 4 -o shards/tiny)")
	}
	start := time.Now()
	ds, err := datasets.Resolve(src, *seed)
	if err != nil {
		return err
	}
	loadTime := time.Since(start)
	dir, base := ".", *out
	if base == "" {
		base = strings.TrimSuffix(filepath.Base(src), ".argograph")
	} else {
		// Always split and re-join through filepath so a "./base" spelling
		// cannot leak into the manifest's File entries (OpenShardSet
		// matches them against filepath.Base of the opened path).
		dir, base = filepath.Dir(base), filepath.Base(base)
		if dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
	}
	start = time.Now()
	man, paths, err := graph.WriteShardSet(ds, dir, base, graph.ShardOptions{
		K: *k, Partitioner: *part, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d nodes, %d arcs → %d shards (%s partition) in %s (load/gen %s)\n",
		man.Spec.Name, man.NumNodes, man.NumArcs, man.K, man.Partitioner,
		time.Since(start).Round(time.Microsecond), loadTime.Round(time.Microsecond))
	var cut int64
	for _, e := range man.Shards {
		cut += e.CutArcs
	}
	fmt.Printf("edge cut: %d arcs (%.1f%% of total) — the halo-exchange traffic bound\n",
		cut, 100*float64(cut)/float64(man.NumArcs))
	fmt.Printf("  %-5s %-32s %8s %8s %10s %10s %7s\n", "SHARD", "FILE", "OWNED", "HALO", "ARCS", "CUT", "TRAIN")
	for i, e := range man.Shards {
		fmt.Printf("  %-5d %-32s %8d %8d %10d %10d %7d\n",
			i, filepath.Base(paths[i]), e.Owned, e.Halo, e.Arcs, e.CutArcs, e.Train)
	}
	fmt.Printf("manifest carried by %s; train with: argo-train -shards -dataset %s\n", paths[0], paths[0])
	return nil
}

func runImport(args []string) error {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	out := fs.String("o", "", "output .argograph path (required)")
	name := fs.String("name", "", "dataset name recorded in the spec (default: derived from the input file)")
	labelsPath := fs.String("labels", "", "optional node,label CSV; labels are synthesised when absent")
	featsPath := fs.String("feats", "", "optional node,f0,f1,... CSV; features are synthesised when absent")
	directed := fs.Bool("directed", false, "keep arcs as listed instead of symmetrising every edge")
	feat := fs.Int("feat", 16, "synthesised feature width (ignored with -feats)")
	classes := fs.Int("classes", 4, "synthesised class count (ignored with -labels)")
	trainFrac := fs.Float64("train-frac", 0.5, "training split fraction; val/test halve the rest")
	seed := fs.Int64("seed", 1, "seed for synthesis and the split shuffle")
	featDtype := fs.String("feat-dtype", "fp32", "feature storage dtype: fp32 or fp16 (fp16 rounds once at import)")
	// Accept both `import edges.csv -o out` and `import -o out edges.csv`.
	var src string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		src = args[0]
		args = args[1:]
	}
	fs.Parse(args)
	if src == "" && fs.NArg() == 1 {
		src = fs.Arg(0)
	} else if fs.NArg() > 0 {
		return fmt.Errorf("import takes one edge-list file")
	}
	if src == "" || *out == "" {
		return fmt.Errorf("import needs an edge-list file and -o (try: argo-data import edges.csv -o mygraph.argograph)")
	}
	dt, err := graph.ParseFeatDtype(*featDtype)
	if err != nil {
		return err
	}
	if *name == "" {
		*name = strings.TrimSuffix(filepath.Base(src), filepath.Ext(src))
	}
	f, err := os.Open(src)
	if err != nil {
		return err
	}
	defer f.Close()
	opt := graph.ImportOptions{
		Name: *name, Directed: *directed,
		FeatDim: *feat, NumClasses: *classes,
		TrainFrac: *trainFrac, Seed: *seed,
	}
	if *labelsPath != "" {
		lf, err := os.Open(*labelsPath)
		if err != nil {
			return err
		}
		defer lf.Close()
		opt.Labels = lf
	}
	if *featsPath != "" {
		ff, err := os.Open(*featsPath)
		if err != nil {
			return err
		}
		defer ff.Close()
		opt.Features = ff
	}
	start := time.Now()
	ds, err := graph.ImportEdgeList(f, opt)
	if err != nil {
		return err
	}
	if err := ds.ConvertFeatures(dt); err != nil {
		return err
	}
	importTime := time.Since(start)
	start = time.Now()
	if err := ds.Save(*out); err != nil {
		return err
	}
	fi, err := os.Stat(*out)
	if err != nil {
		return err
	}
	synth := []string{}
	if opt.Labels == nil {
		synth = append(synth, "labels")
	}
	if opt.Features == nil {
		synth = append(synth, "features")
	}
	note := ""
	if len(synth) > 0 {
		note = " (synthesised: " + strings.Join(synth, ", ") + ")"
	}
	fmt.Printf("%s: %d nodes, %d arcs, %d classes, %d-wide %s features%s → %s (%d bytes, format v2)\n",
		ds.Spec.Name, ds.Graph.NumNodes, ds.Graph.NumEdges(), ds.NumClasses, ds.Features.Cols, ds.FeatDtype, note, *out, fi.Size())
	fmt.Printf("splits: %d train / %d val / %d test; imported in %s, saved in %s\n",
		len(ds.TrainIdx), len(ds.ValIdx), len(ds.TestIdx),
		importTime.Round(time.Microsecond), time.Since(start).Round(time.Microsecond))
	return nil
}

func runInspect(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("inspect takes exactly one .argograph path")
	}
	start := time.Now()
	// Lazy open: only the header, section table, spec, and stats are
	// read, so inspect answers in microseconds on stores of any size.
	lz, err := graph.OpenLazy(args[0])
	if err != nil {
		return err
	}
	defer lz.Close()
	openTime := time.Since(start)
	fi, err := os.Stat(args[0])
	if err != nil {
		return err
	}
	st := lz.Stats()
	fmt.Printf("store:      %s (%d bytes, format v%d, opened in %s, %s)\n",
		args[0], fi.Size(), lz.Version(), openTime.Round(time.Microsecond), lz.AccessMode())
	spec := lz.Spec()
	if spec.Name != "" {
		fmt.Printf("dataset:    %s\n", spec.Name)
	}
	if spec.Paper.Vertices > 0 {
		fmt.Printf("paper:      %d vertices, %d edges, F0=%d F1=%d F2=%d\n",
			spec.Paper.Vertices, spec.Paper.Edges, spec.Paper.F0, spec.Paper.F1, spec.Paper.F2)
	}
	fmt.Printf("graph:      %d nodes, %d arcs, avg degree %.1f, max degree %d\n",
		st.NumNodes, st.NumArcs, st.AvgDegree, st.MaxDegree)
	if st.FeatRows > 0 {
		fmt.Printf("features:   %d × %d %s (decodes to float32)\n", st.FeatRows, st.FeatCols, lz.FeatDtype())
	}
	if st.NumClasses > 0 {
		fmt.Printf("labels:     %d classes\n", st.NumClasses)
	}
	fmt.Printf("splits:     %d train / %d val / %d test\n", st.TrainCount, st.ValCount, st.TestCount)
	if hist := st.DegreeHist; len(hist) > 0 {
		fmt.Printf("degrees:    hist by bit-length %v\n", hist)
	}
	if sh := st.Shard; sh != nil {
		fmt.Printf("shard:      %d of %d — %d owned + %d halo nodes, %d cut arcs\n",
			sh.Index, sh.Count, sh.Owned, sh.Halo, sh.CutArcs)
	}
	if man, ok, err := lz.ShardManifest(); err != nil {
		return err
	} else if ok {
		var cut int64
		for _, e := range man.Shards {
			cut += e.CutArcs
		}
		fmt.Printf("manifest:   shard set %q: k=%d over %d nodes (%s partition, seed %d), edge cut %d arcs (%.1f%%)\n",
			man.Base, man.K, man.NumNodes, man.Partitioner, man.Seed, cut, 100*float64(cut)/float64(man.NumArcs))
		for _, e := range man.Shards {
			fmt.Printf("            shard %d: %-28s %6d owned %6d halo %8d arcs\n", e.Index, e.File, e.Owned, e.Halo, e.Arcs)
		}
	}
	if secs := lz.Sections(); len(secs) > 0 {
		fmt.Printf("sections:\n")
		fmt.Printf("  %-10s %12s %14s %14s %10s\n", "NAME", "OFFSET", "ON-DISK", "DECODED", "CRC32C")
		for _, s := range secs {
			// Every section decodes 1:1 except fp16 features, which widen
			// to float32 rows (same 16-byte dims header, doubled payload).
			decoded := s.Length
			if s.Name == "features16" {
				decoded = 16 + uint64(st.FeatRows)*uint64(st.FeatCols)*4
			}
			fmt.Printf("  %-10s %12d %14d %14d %10x\n", s.Name, s.Offset, s.Length, decoded, s.CRC)
		}
	}
	return nil
}

func runVerify(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("verify takes exactly one .argograph path")
	}
	// VerifyStore checks in trust-nothing order: header, section table
	// (overlapping or out-of-bounds extents are distinct errors raised
	// before any payload decode), per-section checksums, then a full
	// decode with every structural invariant.
	check, err := graph.VerifyStore(args[0])
	switch {
	case errors.Is(err, graph.ErrSectionOverlap):
		return fmt.Errorf("malformed section table (overlapping extents): %w", err)
	case errors.Is(err, graph.ErrSectionBounds):
		return fmt.Errorf("malformed section table (extent outside file): %w", err)
	case err != nil:
		return err
	}
	st := check.Stats
	fmt.Printf("%s: OK (format v%d %s, %d nodes, %d arcs, %d classes, %s features, %d sections, checksums + invariants verified)\n",
		args[0], check.Version, check.Kind, st.NumNodes, st.NumArcs, st.NumClasses, check.FeatDtype, len(check.Sections))
	// A manifest-carrying store is a shard-set handle: validate the set
	// end to end too (topology-only — feature bytes stay untouched).
	hasManifest := false
	for _, s := range check.Sections {
		if s.Name == "manifest" {
			hasManifest = true
		}
	}
	if hasManifest {
		ss, err := graph.OpenShardSet(args[0])
		if err != nil {
			return err
		}
		defer ss.Close()
		if err := ss.Validate(); err != nil {
			return fmt.Errorf("shard set invalid: %w", err)
		}
		fmt.Printf("%s: shard set OK (k=%d, coverage + disjointness + halo consistency verified)\n", args[0], ss.K())
	}
	return nil
}

func runConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	featDtype := fs.String("feat-dtype", "", "target feature dtype: fp32 or fp16 (required)")
	out := fs.String("o", "", "output path (default: rewrite in place)")
	// Accept both `convert store.argograph -feat-dtype fp16` and the
	// flags-first spelling.
	var src string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		src = args[0]
		args = args[1:]
	}
	fs.Parse(args)
	if src == "" && fs.NArg() == 1 {
		src = fs.Arg(0)
	} else if fs.NArg() > 0 {
		return fmt.Errorf("convert takes one .argograph path (plus -feat-dtype and optional -o out)")
	}
	if src == "" || *featDtype == "" {
		return fmt.Errorf("convert needs a store and -feat-dtype (try: argo-data convert big.argograph -feat-dtype fp16)")
	}
	dt, err := graph.ParseFeatDtype(*featDtype)
	if err != nil {
		return err
	}
	dst := *out
	if dst == "" {
		dst = src
	}
	// Measure the precision loss BEFORE converting: the default dst is
	// src (in-place rewrite), and after conversion every value is
	// fp16-exact so the report would read all zeros.
	var report *graph.F16RoundingStats
	if dt == graph.DtypeF16 {
		lz, err := graph.OpenLazy(src)
		if err != nil {
			return err
		}
		if lz.Kind() == "dataset" && lz.FeatDtype() == graph.DtypeF32 {
			ds, err := lz.Dataset()
			if err != nil {
				lz.Close()
				return err
			}
			st := graph.F16RoundingReport(ds.Features)
			report = &st
		}
		if err := lz.Close(); err != nil {
			return err
		}
	}
	start := time.Now()
	from, identical, err := graph.ConvertStore(src, dst, dt)
	if err != nil {
		return err
	}
	elapsed := time.Since(start).Round(time.Microsecond)
	var dstBytes int64
	if fi, err := os.Stat(dst); err == nil {
		dstBytes = fi.Size()
	}
	switch {
	case identical:
		fmt.Printf("%s: already %s; rewritten byte-identically to %s in %s\n", src, dt, dst, elapsed)
	case from == dt:
		fmt.Printf("%s: already %s; re-encoded canonically to %s in %s\n", src, dt, dst, elapsed)
	default:
		fmt.Printf("%s: converted %s → %s at %s (%d bytes) in %s\n", src, from, dt, dst, dstBytes, elapsed)
	}
	if report != nil {
		fmt.Printf("  fp16 rounding over %d×%d: max |err| %.3g (column %d), mean |err| %.3g\n",
			report.Rows, report.Cols, report.OverallMax, report.WorstCol, report.MeanAbs)
	}
	return nil
}

func runUpgrade(args []string) error {
	fs := flag.NewFlagSet("upgrade", flag.ExitOnError)
	out := fs.String("o", "", "output path (default: rewrite in place)")
	// Accept both `upgrade store.argograph -o out` and `upgrade -o out store.argograph`.
	var src string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		src = args[0]
		args = args[1:]
	}
	fs.Parse(args)
	if src == "" && fs.NArg() == 1 {
		src = fs.Arg(0)
	} else if fs.NArg() > 0 {
		return fmt.Errorf("upgrade takes one .argograph path (plus optional -o out)")
	}
	if src == "" {
		return fmt.Errorf("upgrade takes one .argograph path (plus optional -o out)")
	}
	dst := *out
	if dst == "" {
		dst = src
	}
	start := time.Now()
	srcVersion, identical, err := graph.UpgradeStore(src, dst)
	if err != nil {
		return err
	}
	elapsed := time.Since(start).Round(time.Microsecond)
	switch {
	case srcVersion >= 2 && identical:
		fmt.Printf("%s: already format v2; rewritten byte-identically to %s in %s\n", src, dst, elapsed)
	case srcVersion >= 2:
		fmt.Printf("%s: already format v2; re-encoded canonically to %s in %s\n", src, dst, elapsed)
	default:
		fmt.Printf("%s: upgraded v%d → v2 at %s in %s\n", src, srcVersion, dst, elapsed)
	}
	return nil
}
