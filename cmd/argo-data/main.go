// Command argo-data manages .argograph binary dataset stores: it
// generates the registry's synthetic workload profiles to disk, inspects
// stored graphs, and verifies a store's checksum and structural
// invariants. Generating once and loading thereafter turns dataset setup
// from tens of milliseconds (or much more for bigger profiles) into a
// single fast read shared by argo-train, argo-bench, and argo-sweep.
//
// Usage:
//
//	argo-data ls
//	argo-data gen -dataset arxiv-sim [-seed 1] -o arxiv.argograph
//	argo-data inspect arxiv.argograph
//	argo-data verify arxiv.argograph
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"argo/internal/datasets"
	"argo/internal/graph"
)

func usage() {
	fmt.Fprintf(os.Stderr, `argo-data manages .argograph binary dataset stores.

Subcommands:
  ls                         list registered workload profiles
  gen -dataset <name> -o <file> [-seed N]
                             generate a profile and save it
  inspect <file>             print a stored dataset's statistics
  verify <file>              check header, checksum, and graph invariants

Registered profiles: %s
`, strings.Join(datasets.Names(), ", "))
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "ls":
		err = runLs()
	case "gen":
		err = runGen(os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	case "verify":
		err = runVerify(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "argo-data: unknown subcommand %q\n\n", os.Args[1])
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "argo-data: %v\n", err)
		os.Exit(1)
	}
}

func runLs() error {
	fmt.Printf("%-15s %-10s %-10s %-8s %-8s %s\n", "PROFILE", "NODES", "EDGES*", "FEATS", "CLASSES", "DESCRIPTION")
	for _, name := range datasets.Names() {
		p, err := datasets.Get(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-15s %-10d %-10d %-8d %-8d %s\n",
			p.Name, p.Spec.ScaledNodes, p.Spec.ScaledEdges, p.Spec.ScaledF0, p.Spec.ScaledClasses, p.Description)
	}
	fmt.Println("* undirected edge target; the stored arc count is near twice this (both directions, after dedup)")
	return nil
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	name := fs.String("dataset", "", "registry profile to generate (see argo-data ls)")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("o", "", "output .argograph path")
	fs.Parse(args)
	if *name == "" || *out == "" {
		return fmt.Errorf("gen needs -dataset and -o (try: argo-data gen -dataset arxiv-sim -o arxiv.argograph)")
	}
	start := time.Now()
	ds, err := datasets.Build(*name, *seed)
	if err != nil {
		return err
	}
	genTime := time.Since(start)
	start = time.Now()
	if err := ds.Save(*out); err != nil {
		return err
	}
	fi, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("%s (seed %d): %d nodes, %d arcs, %d classes → %s (%d bytes)\n",
		*name, *seed, ds.Graph.NumNodes, ds.Graph.NumEdges(), ds.NumClasses, *out, fi.Size())
	fmt.Printf("generated in %s, saved in %s\n", genTime.Round(time.Microsecond), time.Since(start).Round(time.Microsecond))
	return nil
}

func runInspect(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("inspect takes exactly one .argograph path")
	}
	start := time.Now()
	ds, err := graph.LoadDataset(args[0])
	if err != nil {
		return err
	}
	loadTime := time.Since(start)
	fi, err := os.Stat(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("store:      %s (%d bytes, loaded in %s)\n", args[0], fi.Size(), loadTime.Round(time.Microsecond))
	fmt.Printf("dataset:    %s\n", ds.Spec.Name)
	if ds.Spec.Paper.Vertices > 0 {
		fmt.Printf("paper:      %d vertices, %d edges, F0=%d F1=%d F2=%d\n",
			ds.Spec.Paper.Vertices, ds.Spec.Paper.Edges, ds.Spec.Paper.F0, ds.Spec.Paper.F1, ds.Spec.Paper.F2)
	}
	fmt.Printf("graph:      %d nodes, %d arcs, avg degree %.1f, max degree %d\n",
		ds.Graph.NumNodes, ds.Graph.NumEdges(), ds.Graph.AvgDegree(), ds.Graph.MaxDegree())
	fmt.Printf("features:   %d × %d float32\n", ds.Features.Rows, ds.Features.Cols)
	fmt.Printf("labels:     %d classes\n", ds.NumClasses)
	fmt.Printf("splits:     %d train / %d val / %d test\n", len(ds.TrainIdx), len(ds.ValIdx), len(ds.TestIdx))
	return nil
}

func runVerify(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("verify takes exactly one .argograph path")
	}
	// LoadDataset verifies everything: the header, the payload checksum,
	// and every structural invariant (Dataset.Validate: CSR shape, label
	// range, split bounds and disjointness).
	ds, err := graph.LoadDataset(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("%s: OK (%d nodes, %d arcs, %d classes, checksum + invariants verified)\n",
		args[0], ds.Graph.NumNodes, ds.Graph.NumEdges(), ds.NumClasses)
	return nil
}
