// Command argo-sweep renders the epoch-time landscape of one setup over
// the (processes × sampling-cores) plane at a fixed training-core count —
// the data behind the paper's Fig. 7 heatmaps and Fig. 12 surface.
//
// Usage:
//
//	argo-sweep -lib dgl -platform icelake -sampler neighbor -model sage \
//	           -dataset reddit -t 6
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"argo/internal/experiments"
	"argo/internal/platform"
	"argo/internal/platsim"
)

func main() {
	lib := flag.String("lib", "dgl", "library profile: dgl or pyg")
	plat := flag.String("platform", "icelake", "platform: icelake or spr")
	samplerName := flag.String("sampler", "neighbor", "sampler: neighbor or shadow")
	modelName := flag.String("model", "sage", "model: sage or gcn")
	dataset := flag.String("dataset", "reddit", "dataset name")
	trainCores := flag.Int("t", 6, "fixed training cores per process")
	flag.Parse()

	setup := experiments.Setup{Dataset: *dataset}
	switch *lib {
	case "dgl":
		setup.Lib = platsim.DGL
	case "pyg":
		setup.Lib = platsim.PyG
	default:
		log.Fatalf("argo-sweep: unknown library %q", *lib)
	}
	switch *plat {
	case "icelake":
		setup.Plat = platform.IceLake4S
	case "spr":
		setup.Plat = platform.SapphireRapids2S
	default:
		log.Fatalf("argo-sweep: unknown platform %q", *plat)
	}
	switch *samplerName {
	case "neighbor":
		setup.Sampler = platsim.Neighbor
	case "shadow":
		setup.Sampler = platsim.Shadow
	default:
		log.Fatalf("argo-sweep: unknown sampler %q", *samplerName)
	}
	switch *modelName {
	case "sage":
		setup.Model = platsim.SAGE
	case "gcn":
		setup.Model = platsim.GCN
	default:
		log.Fatalf("argo-sweep: unknown model %q", *modelName)
	}

	hd, err := experiments.Heatmap(setup, *trainCores)
	if err != nil {
		log.Fatalf("argo-sweep: %v", err)
	}
	hd.Render(os.Stdout, fmt.Sprintf("epoch time (s): %s / %s / %s / %s",
		setup.Lib.Name, setup.SamplerModel(), *dataset, setup.Plat.Name))
}
