// Command argo-sweep renders the epoch-time landscape of one setup over
// the (processes × sampling-cores) plane at a fixed training-core count —
// the data behind the paper's Fig. 7 heatmaps and Fig. 12 surface — and,
// with -strategy, runs a registered tuning strategy over the full 3-D
// space of the same setup to show what the online tuner would find.
//
// Usage:
//
//	argo-sweep -lib dgl -platform icelake -sampler neighbor -model sage \
//	           -dataset reddit-sim -t 6 [-strategy bayesopt -budget 45] \
//	           [-json sweep.json]
//
// -dataset accepts a registry profile name (argo-data ls), a legacy
// graph-registry name, or a path to an .argograph store.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"

	"argo"
	"argo/internal/datasets"
	"argo/internal/experiments"
	"argo/internal/platform"
	"argo/internal/platsim"
)

// sweepJSON is the machine-readable form of one sweep: the heatmap plane
// plus the optional strategy result on the full space.
type sweepJSON struct {
	Lib        string      `json:"lib"`
	Platform   string      `json:"platform"`
	Sampler    string      `json:"sampler_model"`
	Dataset    string      `json:"dataset"`
	TrainCores int         `json:"train_cores"`
	Procs      []int       `json:"procs"`
	Samples    []int       `json:"samples"`
	Seconds    [][]float64 `json:"seconds"` // -1 marks infeasible corners (JSON has no +Inf)
	PlaneBest  argo.Config `json:"plane_best"`
	PlaneSecs  float64     `json:"plane_best_seconds"`

	Strategy      string       `json:"strategy,omitempty"`
	Budget        int          `json:"budget,omitempty"`
	FoundBest     *argo.Config `json:"found_best,omitempty"`
	FoundSecs     float64      `json:"found_best_seconds,omitempty"`
	TunerOverhead string       `json:"tuner_overhead,omitempty"`
}

func main() {
	lib := flag.String("lib", "dgl", "library profile: dgl or pyg")
	plat := flag.String("platform", "icelake", "platform: icelake or spr")
	samplerName := flag.String("sampler", "neighbor", "sampler: neighbor or shadow")
	modelName := flag.String("model", "sage", "model: sage or gcn")
	dataset := flag.String("dataset", "reddit-sim",
		"dataset: a registry profile ("+strings.Join(datasets.Names(), ", ")+"), legacy name, or .argograph path")
	trainCores := flag.Int("t", 6, "fixed training cores per process")
	strategy := flag.String("strategy", "",
		"also run a tuning strategy over the full 3-D space: "+strings.Join(argo.Strategies(), ", "))
	budget := flag.Int("budget", 45, "strategy evaluation budget (with -strategy)")
	jsonPath := flag.String("json", "", "write the sweep as JSON to this file")
	seed := flag.Int64("seed", 7, "strategy random seed")
	flag.Parse()

	spec, err := datasets.ResolveSpec(*dataset)
	if err != nil {
		log.Fatalf("argo-sweep: %v", err)
	}
	setup := experiments.Setup{Dataset: *dataset, Spec: &spec}
	switch *lib {
	case "dgl":
		setup.Lib = platsim.DGL
	case "pyg":
		setup.Lib = platsim.PyG
	default:
		log.Fatalf("argo-sweep: unknown library %q", *lib)
	}
	switch *plat {
	case "icelake":
		setup.Plat = platform.IceLake4S
	case "spr":
		setup.Plat = platform.SapphireRapids2S
	default:
		log.Fatalf("argo-sweep: unknown platform %q", *plat)
	}
	switch *samplerName {
	case "neighbor":
		setup.Sampler = platsim.Neighbor
	case "shadow":
		setup.Sampler = platsim.Shadow
	default:
		log.Fatalf("argo-sweep: unknown sampler %q", *samplerName)
	}
	switch *modelName {
	case "sage":
		setup.Model = platsim.SAGE
	case "gcn":
		setup.Model = platsim.GCN
	default:
		log.Fatalf("argo-sweep: unknown model %q", *modelName)
	}

	hd, err := experiments.Heatmap(setup, *trainCores)
	if err != nil {
		log.Fatalf("argo-sweep: %v", err)
	}
	hd.Render(os.Stdout, fmt.Sprintf("epoch time (s): %s / %s / %s / %s",
		setup.Lib.Name, setup.SamplerModel(), *dataset, setup.Plat.Name))

	out := sweepJSON{
		Lib:        setup.Lib.Name,
		Platform:   setup.Plat.Name,
		Sampler:    setup.SamplerModel(),
		Dataset:    *dataset,
		TrainCores: *trainCores,
		Procs:      hd.Procs,
		Samples:    hd.Samples,
		PlaneBest:  hd.Best,
		PlaneSecs:  hd.BestSec,
	}
	for _, row := range hd.Seconds {
		jr := make([]float64, len(row))
		for j, v := range row {
			if math.IsInf(v, 1) {
				jr[j] = -1
			} else {
				jr[j] = v
			}
		}
		out.Seconds = append(out.Seconds, jr)
	}

	if *strategy != "" {
		space := argo.DefaultSpace(setup.Plat.TotalCores())
		obj := platsim.NewObjective(setup.Scenario())
		strat, err := argo.NewStrategy(*strategy, space, *budget, *seed)
		if err != nil {
			log.Fatalf("argo-sweep: %v", err)
		}
		evals := 0
		for evals < *budget {
			cfg, ok := strat.Next()
			if !ok {
				break
			}
			strat.Observe(cfg, obj.Evaluate(cfg))
			evals++
		}
		best, secs := strat.Best()
		fmt.Printf("strategy %s (%d/%d evals on the full %d-config space): %s at %.3fs, overhead %s\n",
			*strategy, evals, *budget, space.Size(), best, secs, strat.Overhead().Round(1000))
		out.Strategy = *strategy
		out.Budget = *budget
		out.FoundBest = &best
		out.FoundSecs = secs
		out.TunerOverhead = strat.Overhead().String()
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatalf("argo-sweep: %v", err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatalf("argo-sweep: %v", err)
		}
		f.Close()
		fmt.Printf("sweep written to %s\n", *jsonPath)
	}
}
