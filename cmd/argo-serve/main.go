// Command argo-serve answers node-classification queries over HTTP from
// a trained checkpoint and an .argograph store — the inference-side
// counterpart of argo-train. Queries are coalesced into micro-batches
// (one forward pass per batch) and feature rows are read row-granularly
// through a policy-driven hot-node cache (-cache-policy: lru, tinylfu,
// midpoint, twotier), so a store much larger than RAM can be served
// directly off disk. -hub-pin pins the top-degree rows in the twotier
// cache; -precompute-hubs computes top-degree nodes' per-layer
// activations at startup so their deep frontiers are never gathered —
// both leave served logits bit-identical to direct inference.
//
// Usage:
//
//	argo-train -dataset tiny -epochs 2 -save-checkpoint model.ckpt
//	argo-serve -store tiny.argograph -checkpoint model.ckpt -addr :8090 \
//	    -cache-policy twotier -hub-pin 0.01 -precompute-hubs 0.01
//	curl -s localhost:8090/v1/predict -d '{"nodes":[0,1,2]}'
//
// Endpoints: POST /v1/predict ({"nodes":[...]} -> labels + logits),
// GET /healthz, GET /statz (cache, hub, batcher, and server counters;
// echoes the active cache policy).
//
// -direct bypasses the server entirely: it assembles the full dataset,
// runs one reference forward pass for -nodes, and prints the same JSON
// a /v1/predict call returns. CI pins the served path against it —
// the two must match bit for bit, whatever policy and hub settings are
// in effect.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"argo/internal/datasets"
	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("argo-serve: ")
	var (
		store       = flag.String("store", "", "dataset: registry name or .argograph path")
		shards      = flag.String("shards", "", "shard set instead of -store: name#k or a .shard0 store path")
		checkpoint  = flag.String("checkpoint", "", "checkpoint written by argo-train -save-checkpoint (required)")
		addr        = flag.String("addr", ":8090", "listen address")
		window      = flag.Duration("batch-window", 2*time.Millisecond, "micro-batch window (0 disables coalescing)")
		batchMax    = flag.Int("batch-max", 256, "flush a batch at this many unique nodes (0 = no cap)")
		cacheBytes  = flag.Int64("cache-bytes", 4<<20, "hot-node feature cache budget in bytes (0 disables)")
		cachePolicy = flag.String("cache-policy", serve.PolicyLRU,
			"cache replacement policy: "+strings.Join(serve.Policies(), ", "))
		hubPin     = flag.Float64("hub-pin", 0, "pin the top fraction of nodes by degree in the twotier cache (0..1)")
		precompute = flag.Float64("precompute-hubs", 0, "precompute per-layer activations for the top fraction of nodes by degree (0..1; 0 disables)")
		seed       = flag.Int64("seed", 1, "generation seed when -store/-shards is a registry name")
		direct     = flag.Bool("direct", false, "no server: print the reference predictions for -nodes and exit")
		nodes      = flag.String("nodes", "", "comma-separated node ids for -direct")
	)
	flag.Parse()
	if *checkpoint == "" {
		log.Fatal("-checkpoint is required")
	}
	if (*store == "") == (*shards == "") {
		log.Fatal("exactly one of -store or -shards is required")
	}
	cfg := serveConfig{
		window:      *window,
		batchMax:    *batchMax,
		cacheBytes:  *cacheBytes,
		cachePolicy: *cachePolicy,
		hubPin:      *hubPin,
		precompute:  *precompute,
	}
	if err := run(*store, *shards, *checkpoint, *addr, cfg, *seed, *direct, *nodes); err != nil {
		log.Fatal(err)
	}
}

// serveConfig carries the serving-stack flags into run.
type serveConfig struct {
	window      time.Duration
	batchMax    int
	cacheBytes  int64
	cachePolicy string
	hubPin      float64
	precompute  float64
}

func run(store, shards, checkpoint, addr string, cfg serveConfig, seed int64, direct bool, nodeList string) error {
	// Open the store and the topology first: the model loader needs the
	// degree array for GCN checkpoints.
	var (
		feats   serve.FeatureSource
		g       *graph.CSR
		dsName  string
		closeFn func() error
	)
	switch {
	case shards != "":
		ss, err := datasets.ResolveShards(shards, seed)
		if err != nil {
			return err
		}
		closeFn = ss.Close
		if g, err = ss.AssembleTopology(); err != nil {
			return err
		}
		if feats, err = serve.NewShardFeatureSource(ss); err != nil {
			return err
		}
		dsName = ss.Spec().Name
	default:
		lz, err := datasets.ResolveLazy(store, seed, datasets.LoadAuto)
		if err != nil {
			return err
		}
		closeFn = lz.Close
		if g, err = lz.Topology(); err != nil {
			return err
		}
		feats = serve.NewLazyFeatureSource(lz)
		dsName = lz.Spec().Name
	}
	defer closeFn()

	degrees := make([]int, g.NumNodes)
	for v := range degrees {
		degrees[v] = g.Degree(graph.NodeID(v))
	}
	model, err := nn.LoadModelFile(checkpoint, degrees)
	if err != nil {
		return err
	}

	if direct {
		return printDirect(model, store, shards, seed, nodeList)
	}

	srv, err := serve.New(serve.Source{Graph: g, Features: feats}, model,
		serve.WithPolicy(cfg.cachePolicy),
		serve.WithCacheBytes(cfg.cacheBytes),
		serve.WithHubPin(cfg.hubPin),
		serve.WithPrecomputeHubs(cfg.precompute),
		serve.WithBatchWindow(cfg.window),
		serve.WithBatchMaxNodes(cfg.batchMax),
	)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: addr, Handler: srv}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	inf := srv.Inferencer()
	log.Printf("serving %s (%s, %d nodes, %d classes) on %s with %s cache (%d bytes), %d precomputed hubs",
		dsName, model.Spec.Kind, g.NumNodes, inf.NumClasses(), addr, cfg.cachePolicy, cfg.cacheBytes, inf.HubStats().Nodes)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		log.Printf("%v: draining", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	srv.Close()
	log.Print("drained")
	return nil
}

// printDirect runs the reference single-batch forward pass on the fully
// materialised dataset and prints a PredictResponse — the bytes CI
// compares a served answer against.
func printDirect(model *nn.GNN, store, shards string, seed int64, nodeList string) error {
	if nodeList == "" {
		return fmt.Errorf("-direct needs -nodes")
	}
	var targets []graph.NodeID
	for _, f := range strings.Split(nodeList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return fmt.Errorf("bad -nodes entry %q: %w", f, err)
		}
		targets = append(targets, graph.NodeID(n))
	}
	var (
		ds  *graph.Dataset
		err error
	)
	if shards != "" {
		ss, serr := datasets.ResolveShards(shards, seed)
		if serr != nil {
			return serr
		}
		defer ss.Close()
		ds, err = ss.AssembleDataset()
	} else {
		ds, err = datasets.Resolve(store, seed)
	}
	if err != nil {
		return err
	}
	preds, err := serve.DirectPredict(model, ds, targets, 1)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetEscapeHTML(false)
	return enc.Encode(serve.PredictResponse{Predictions: preds})
}
