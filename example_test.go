package argo_test

import (
	"fmt"
	"log"

	"argo"
	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/sampler"
)

// ExampleRuntime_Run shows the paper's Listing-1 flow: wrap an existing
// GNN training job in the ARGO runtime and let the online auto-tuner pick
// the multi-process configuration. Seeds are fixed, so the output is
// deterministic.
func ExampleRuntime_Run() {
	ds, err := graph.Build(graph.DatasetSpec{
		Name: "example", ScaledNodes: 300, ScaledEdges: 2200,
		ScaledF0: 12, ScaledHidden: 8, ScaledClasses: 4,
		Homophily: 0.7, Exponent: 2.2, TrainFrac: 0.5,
	}, 5)
	if err != nil {
		log.Fatal(err)
	}
	trainer, err := argo.NewGNNTrainer(argo.GNNTrainerOptions{
		Dataset:   ds,
		Sampler:   sampler.NewNeighbor(ds.Graph, []int{4, 4}),
		Model:     nn.ModelSpec{Kind: nn.KindSAGE, Dims: []int{12, 8, 4}, Seed: 3},
		BatchSize: 50,
		LR:        0.01,
		Seed:      9,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer trainer.Close()

	rt, err := argo.New(argo.Options{Epochs: 8, NumSearches: 3, TotalCores: 16, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	report, err := rt.Run(trainer.Step)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("searched %d configurations, trained %d epochs\n", 3, trainer.Epochs())
	fmt.Printf("best configuration uses %d processes\n", report.Best.Procs)
	// Output:
	// searched 3 configurations, trained 8 epochs
	// best configuration uses 1 processes
}

// ExampleDefaultSpace shows the configuration space the auto-tuner
// explores on the paper's Ice Lake machine.
func ExampleDefaultSpace() {
	space := argo.DefaultSpace(112)
	fmt.Printf("%d feasible configurations\n", space.Size())
	fmt.Println(space.Feasible(argo.Config{Procs: 8, SampleCores: 4, TrainCores: 10}))
	fmt.Println(space.Feasible(argo.Config{Procs: 8, SampleCores: 10, TrainCores: 10}))
	// Output:
	// 766 feasible configurations
	// true
	// false
}
