package argo_test

import (
	"context"
	"fmt"
	"log"

	"argo"
	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/sampler"
)

// ExampleRuntime_Run shows the paper's Listing-1 flow: wrap an existing
// GNN training job in the ARGO runtime and let the online tuning strategy
// pick the multi-process configuration. Seeds are fixed, so the output is
// deterministic.
func ExampleRuntime_Run() {
	ds, err := graph.Build(graph.DatasetSpec{
		Name: "example", ScaledNodes: 300, ScaledEdges: 2200,
		ScaledF0: 12, ScaledHidden: 8, ScaledClasses: 4,
		Homophily: 0.7, Exponent: 2.2, TrainFrac: 0.5,
	}, 5)
	if err != nil {
		log.Fatal(err)
	}
	trainer, err := argo.NewGNNTrainer(argo.GNNTrainerOptions{
		Dataset:   ds,
		Sampler:   sampler.NewNeighbor(ds.Graph, []int{4, 4}),
		Model:     nn.ModelSpec{Kind: nn.KindSAGE, Dims: []int{12, 8, 4}, Seed: 3},
		BatchSize: 50,
		LR:        0.01,
		Seed:      9,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer trainer.Close()

	rt, err := argo.NewRuntime(8, 3,
		argo.WithTotalCores(16),
		argo.WithSeed(4),
		argo.WithStrategy(argo.StrategyBayesOpt),
	)
	if err != nil {
		log.Fatal(err)
	}
	report, err := rt.Run(context.Background(), trainer.Step)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("searched %d configurations, trained %d epochs\n", report.SearchEpochs, trainer.Epochs())
	fmt.Printf("best configuration uses %d processes\n", report.Best.Procs)
	// Output:
	// searched 3 configurations, trained 8 epochs
	// best configuration uses 1 processes
}

// ExampleNewStrategy shows stepping a registered strategy directly — the
// propose/observe loop Runtime.Run drives internally.
func ExampleNewStrategy() {
	space := argo.DefaultSpace(16)
	strat, err := argo.NewStrategy(argo.StrategyExhaustive, space, space.Size(), 0)
	if err != nil {
		log.Fatal(err)
	}
	evals := 0
	for {
		cfg, ok := strat.Next()
		if !ok {
			break
		}
		// A toy objective: prefer few processes and few cores.
		strat.Observe(cfg, float64(cfg.TotalCores())+0.1*float64(cfg.Procs))
		evals++
	}
	best, _ := strat.Best()
	fmt.Printf("evaluated %d configurations\n", evals)
	fmt.Printf("best: %s\n", best)
	// Output:
	// evaluated 140 configurations
	// best: n=1 s=1 t=1
}

// ExampleDefaultSpace shows the configuration space the auto-tuner
// explores on the paper's Ice Lake machine.
func ExampleDefaultSpace() {
	space := argo.DefaultSpace(112)
	fmt.Printf("%d feasible configurations\n", space.Size())
	fmt.Println(space.Feasible(argo.Config{Procs: 8, SampleCores: 4, TrainCores: 10}))
	fmt.Println(space.Feasible(argo.Config{Procs: 8, SampleCores: 10, TrainCores: 10}))
	// Output:
	// 766 feasible configurations
	// true
	// false
}
