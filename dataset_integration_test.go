package argo

import (
	"bytes"
	"context"
	"math"
	"path/filepath"
	"testing"

	"argo/internal/datasets"
	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/sampler"
	"argo/internal/tensor"
)

// The binary store must be transparent to training: a 4-epoch auto-tuned
// run on a freshly generated `tiny` dataset and on its save→load copy
// must walk the same configuration sequence and end in bit-identical
// model weights. Epoch times fed to the strategy are derived
// deterministically from the configuration (real training still runs),
// so the tuner's decisions — and therefore the training trajectory —
// cannot diverge on wall-clock noise.
func TestGeneratedAndReloadedDatasetTrainIdentically(t *testing.T) {
	ds, err := datasets.Build("tiny", 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiny.argograph")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	reloaded, err := graph.LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}

	run := func(d *graph.Dataset) (Report, []*tensor.Matrix) {
		t.Helper()
		trainer, err := NewGNNTrainer(GNNTrainerOptions{
			Dataset:   d,
			Sampler:   sampler.NewNeighbor(d.Graph, []int{4, 4}),
			Model:     nn.ModelSpec{Kind: nn.KindSAGE, Dims: []int{d.Spec.ScaledF0, d.Spec.ScaledHidden, d.NumClasses}, Seed: 7},
			BatchSize: 32,
			LR:        0.01,
			Seed:      7,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer trainer.Close()
		rt, err := NewRuntime(4, 2, WithTotalCores(8), WithSeed(11))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := rt.Run(context.Background(), func(ctx context.Context, cfg Config, epochs int) (float64, error) {
			if _, err := trainer.Step(ctx, cfg, epochs); err != nil {
				return 0, err
			}
			return 0.1 * float64(cfg.TotalCores()), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep, trainer.inner.Engine().ExportWeights()
	}

	repGen, wGen := run(ds)
	repLoad, wLoad := run(reloaded)

	if len(repGen.History) != 4 || len(repLoad.History) != len(repGen.History) {
		t.Fatalf("history lengths %d and %d, want 4", len(repGen.History), len(repLoad.History))
	}
	for i := range repGen.History {
		a, b := repGen.History[i], repLoad.History[i]
		if a.Config != b.Config || a.Phase != b.Phase || a.Seconds != b.Seconds {
			t.Fatalf("epoch %d diverged: generated ran %+v, reloaded ran %+v", i, a, b)
		}
	}
	if repGen.Best != repLoad.Best {
		t.Fatalf("best configs diverged: %s vs %s", repGen.Best, repLoad.Best)
	}
	if len(wGen) == 0 || len(wGen) != len(wLoad) {
		t.Fatalf("weight tensor counts %d and %d", len(wGen), len(wLoad))
	}
	for i := range wGen {
		if wGen[i].Rows != wLoad[i].Rows || wGen[i].Cols != wLoad[i].Cols {
			t.Fatalf("weight %d shapes differ", i)
		}
		for j := range wGen[i].Data {
			if math.Float32bits(wGen[i].Data[j]) != math.Float32bits(wLoad[i].Data[j]) {
				t.Fatalf("weight %d element %d not bit-identical: %v vs %v",
					i, j, wGen[i].Data[j], wLoad[i].Data[j])
			}
		}
	}
}

// A report must re-marshal to the exact bytes it was parsed from —
// otherwise warm-start files churn on every rewrite. Exercised with a
// history that includes a crashed epoch, the one field with a custom
// JSON codec.
func TestReportJSONByteStable(t *testing.T) {
	rep := Report{
		Strategy:         StrategyAnneal,
		Best:             Config{Procs: 2, SampleCores: 1, TrainCores: 3},
		BestEpochSeconds: 1.25,
		History: []EpochRecord{
			{Epoch: 0, Config: Config{Procs: 2, SampleCores: 1, TrainCores: 3}, Seconds: 1.25, Phase: PhaseSearch},
			{Epoch: 1, Config: Config{Procs: 8, SampleCores: 2, TrainCores: 2}, Seconds: math.Inf(1), Phase: PhaseSearch},
			{Epoch: 2, Config: Config{Procs: 2, SampleCores: 1, TrainCores: 3}, Seconds: 1.125, Phase: PhaseReuse},
		},
		SearchEpochs:      2,
		ReuseEpochSeconds: 1.125,
		TunerOverhead:     1500,
		TotalSeconds:      2.375,
	}
	var first bytes.Buffer
	if err := rep.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := back.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("marshal → unmarshal → marshal changed the bytes:\n%s\nvs\n%s", first.Bytes(), second.Bytes())
	}
}

// Warm-starting from a report produced on a different dataset and a
// bigger machine must drop the records that are infeasible here (as
// documented on Runtime.Run) and still finish with a locally feasible
// incumbent.
func TestWarmStartAcrossDatasetsDropsInfeasible(t *testing.T) {
	objective := func(spec graph.DatasetSpec) func(Config) float64 {
		scale := float64(spec.ScaledNodes)
		return func(cfg Config) float64 {
			return scale / float64(cfg.TotalCores())
		}
	}

	// Prior run: reddit-sim workload on a 112-core machine.
	redditSpec, err := datasets.ResolveSpec("reddit-sim")
	if err != nil {
		t.Fatal(err)
	}
	redditObj := objective(redditSpec)
	prior, err := NewRuntime(8, 6, WithTotalCores(112), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	priorRep, err := prior.Run(context.Background(), func(_ context.Context, cfg Config, _ int) (float64, error) {
		return redditObj(cfg), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if priorRep.Best.TotalCores() <= 16 {
		t.Skipf("prior best %s already fits 16 cores; cannot exercise the drop", priorRep.Best)
	}

	// New run: arxiv-sim workload on 16 cores, warm-started from the
	// foreign report.
	arxivSpec, err := datasets.ResolveSpec("arxiv-sim")
	if err != nil {
		t.Fatal(err)
	}
	arxivObj := objective(arxivSpec)
	space := DefaultSpace(16)
	var dropLogged bool
	rt, err := NewRuntime(6, 3, WithSpace(space), WithSeed(2), WithWarmStart(priorRep),
		WithLogf(func(format string, args ...any) {
			if len(args) >= 2 {
				if n, ok := args[1].(int); ok && n > 0 {
					dropLogged = true
				}
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(context.Background(), func(_ context.Context, cfg Config, _ int) (float64, error) {
		if !space.Feasible(cfg) {
			t.Fatalf("infeasible config %s trained after cross-dataset warm start", cfg)
		}
		return arxivObj(cfg), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !space.Feasible(rep.Best) || rep.Best.TotalCores() > 16 {
		t.Fatalf("best %s infeasible on 16 cores", rep.Best)
	}
	if !dropLogged {
		t.Fatal("dropping infeasible warm-start records was not reported")
	}
}
