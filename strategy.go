package argo

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"argo/internal/anneal"
	"argo/internal/bayesopt"
	"argo/internal/search"
)

// Strategy is the pluggable auto-tuning policy behind Runtime.Run: the
// propose/observe halves of one online-learning step. The runtime calls
// Next to obtain the configuration for the next training epoch, measures
// the epoch, and feeds the result back through Observe.
//
// Implementations must be deterministic given their construction seed and
// the observation sequence; they are used from a single goroutine.
type Strategy interface {
	// Next proposes the next configuration to evaluate. ok is false once
	// the strategy has nothing further to propose (its budget is
	// exhausted, or the space is fully explored).
	Next() (cfg Config, ok bool)
	// Observe records the measured epoch time (seconds) of a proposed —
	// or warm-started — configuration. Non-finite times mark a crashed
	// measurement and must not become the incumbent.
	Observe(cfg Config, seconds float64)
	// Best returns the incumbent optimum and its epoch time. Until the
	// first finite observation it must return zero values (a zero,
	// infeasible Config) — Runtime.Run relies on this to detect a run
	// whose measurements all crashed instead of reusing a bogus
	// configuration. Embedding an Incumbent implements the rule.
	Best() (Config, float64)
	// Overhead returns the cumulative time the strategy itself consumed
	// (surrogate fits, acquisition maximisation, proposal draws) — the
	// auto-tuning overhead the paper profiles in §VI-D.
	Overhead() time.Duration
}

// StrategyFactory builds a Strategy over a feasible space with an
// observation budget and a seed for its random draws.
type StrategyFactory func(sp Space, budget int, seed int64) Strategy

// Incumbent tracks the best finite observation — the shared half of the
// Strategy contract (non-finite measurements never become the incumbent,
// and Best returns zero values until a finite one exists). Custom
// strategies can embed it and forward Observe/Best.
type Incumbent = search.Incumbent

// Built-in strategy names.
const (
	StrategyBayesOpt   = "bayesopt"   // GP surrogate + expected improvement (paper Algorithm 1)
	StrategyAnneal     = "anneal"     // simulated annealing (paper Tables IV/V baseline)
	StrategyRandom     = "random"     // uniform random search (acquisition ablation)
	StrategyExhaustive = "exhaustive" // enumerate the whole space (paper's intractable optimum)
)

var (
	strategyMu  sync.RWMutex
	strategyReg = map[string]StrategyFactory{}
)

func init() {
	MustRegisterStrategy(StrategyBayesOpt, func(sp Space, budget int, seed int64) Strategy {
		return bayesAdapter{bayesopt.NewTuner(sp, budget, seed)}
	})
	MustRegisterStrategy(StrategyAnneal, func(sp Space, budget int, seed int64) Strategy {
		return anneal.NewAnnealer(sp, budget, rand.New(rand.NewSource(seed)), anneal.Options{})
	})
	MustRegisterStrategy(StrategyRandom, func(sp Space, budget int, seed int64) Strategy {
		return search.NewRandomSearcher(sp, budget, rand.New(rand.NewSource(seed)))
	})
	MustRegisterStrategy(StrategyExhaustive, func(sp Space, budget int, seed int64) Strategy {
		return search.NewExhaustiveSearcher(sp)
	})
}

// RegisterStrategy adds a named strategy to the registry. Names are
// case-insensitive and must be unique; registering an empty name, a nil
// factory, or a duplicate is an error.
func RegisterStrategy(name string, f StrategyFactory) error {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		return fmt.Errorf("argo: empty strategy name")
	}
	if f == nil {
		return fmt.Errorf("argo: nil factory for strategy %q", name)
	}
	strategyMu.Lock()
	defer strategyMu.Unlock()
	if _, dup := strategyReg[name]; dup {
		return fmt.Errorf("argo: strategy %q already registered", name)
	}
	strategyReg[name] = f
	return nil
}

// MustRegisterStrategy is RegisterStrategy, panicking on error — for use
// from package init functions.
func MustRegisterStrategy(name string, f StrategyFactory) {
	if err := RegisterStrategy(name, f); err != nil {
		panic(err)
	}
}

// Strategies lists the registered strategy names in sorted order.
func Strategies() []string {
	strategyMu.RLock()
	defer strategyMu.RUnlock()
	names := make([]string, 0, len(strategyReg))
	for n := range strategyReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// strategyRegistered reports whether name resolves in the registry.
func strategyRegistered(name string) bool {
	strategyMu.RLock()
	defer strategyMu.RUnlock()
	_, ok := strategyReg[strings.ToLower(strings.TrimSpace(name))]
	return ok
}

// NewStrategy instantiates a registered strategy by name over sp with the
// given observation budget and seed.
func NewStrategy(name string, sp Space, budget int, seed int64) (Strategy, error) {
	strategyMu.RLock()
	f, ok := strategyReg[strings.ToLower(strings.TrimSpace(name))]
	strategyMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("argo: unknown strategy %q (registered: %s)", name, strings.Join(Strategies(), ", "))
	}
	return f(sp, budget, seed), nil
}

// bayesAdapter narrows bayesopt.Tuner's Done/Next pair to the Strategy
// contract; Observe, Best and Overhead are promoted unchanged.
type bayesAdapter struct {
	*bayesopt.Tuner
}

func (a bayesAdapter) Next() (Config, bool) {
	if a.Tuner.Done() {
		return Config{}, false
	}
	return a.Tuner.Next(), true
}
