module argo

go 1.24
