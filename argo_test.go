package argo

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/platform"
	"argo/internal/platsim"
	"argo/internal/sampler"
)

func TestNewRuntimeValidation(t *testing.T) {
	bad := []struct {
		epochs, searches int
		opts             []Option
	}{
		{0, 0, nil},
		{10, 0, nil},
		{5, 10, nil},
		{10, 3, []Option{WithTotalCores(-1)}},
		{10, 3, []Option{WithStrategy("no-such-strategy")}},
		{10, 3, []Option{WithEarlyStop(-1)}},
		{10, 3, []Option{WithSpace(Space{})}},
	}
	for i, c := range bad {
		if _, err := NewRuntime(c.epochs, c.searches, c.opts...); err == nil {
			t.Fatalf("case %d must be rejected", i)
		}
	}
	rt, err := NewRuntime(10, 3, WithTotalCores(64))
	if err != nil {
		t.Fatal(err)
	}
	if rt.SpaceSize() != 563 {
		t.Fatalf("SpaceSize = %d, want 563 for 64 cores", rt.SpaceSize())
	}
	if rt.StrategyName() != StrategyBayesOpt {
		t.Fatalf("default strategy %q, want %q", rt.StrategyName(), StrategyBayesOpt)
	}
}

// The deprecated Options/New/RunLegacy shim must keep old callers working
// against the new run loop.
func TestLegacyShim(t *testing.T) {
	bad := []Options{
		{},
		{Epochs: 10},
		{Epochs: 10, NumSearches: 0},
		{Epochs: 5, NumSearches: 10},
	}
	for i, o := range bad {
		if _, err := New(o); err == nil {
			t.Fatalf("options %d must be rejected", i)
		}
	}
	var lines []string
	rt, err := New(Options{Epochs: 6, NumSearches: 2, TotalCores: 64, Seed: 1,
		Logf: func(f string, a ...any) { lines = append(lines, fmt.Sprintf(f, a...)) }})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.RunLegacy(func(Config, int) (float64, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.History) != 6 {
		t.Fatalf("legacy run recorded %d epochs, want 6", len(rep.History))
	}
	if len(lines) == 0 {
		t.Fatal("legacy Logf not wired through")
	}
}

// Run must implement Algorithm 1: NumSearches single-epoch probes, then
// per-epoch reuse of the best configuration (each reuse epoch recorded at
// its own measured cost, not a duplicated mean).
func TestRunFollowsAlgorithm1(t *testing.T) {
	rt, err := NewRuntime(50, 8, WithTotalCores(64), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	type call struct {
		cfg    Config
		epochs int
	}
	var calls []call
	objective := func(cfg Config) float64 {
		dn := float64(cfg.Procs - 4)
		return 2 + 0.3*dn*dn + 0.1*float64(cfg.SampleCores) + 0.05*float64(cfg.TrainCores)
	}
	rep, err := rt.Run(context.Background(), func(_ context.Context, cfg Config, epochs int) (float64, error) {
		calls = append(calls, call{cfg, epochs})
		return objective(cfg), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 50 {
		t.Fatalf("expected 50 per-epoch calls, got %d", len(calls))
	}
	for i, c := range calls {
		if c.epochs != 1 {
			t.Fatalf("call %d ran %d epochs", i, c.epochs)
		}
		if i >= 8 && c.cfg != rep.Best {
			t.Fatalf("reuse call %d used %v, want best %v", i, c.cfg, rep.Best)
		}
	}
	if rep.SearchEpochs != 8 {
		t.Fatalf("SearchEpochs = %d, want 8", rep.SearchEpochs)
	}
	// The reported best must be the minimum of the searched epochs, and
	// must not be overwritten by the reuse phase.
	for _, h := range rep.History[:8] {
		if rep.BestEpochSeconds > h.Seconds {
			t.Fatalf("best %v slower than searched %v", rep.BestEpochSeconds, h.Seconds)
		}
	}
	if rep.BestEpochSeconds != objective(rep.Best) {
		t.Fatalf("BestEpochSeconds %v is not the search-phase observation %v", rep.BestEpochSeconds, objective(rep.Best))
	}
	if d := rep.ReuseEpochSeconds - objective(rep.Best); d > 1e-9 || d < -1e-9 {
		t.Fatalf("ReuseEpochSeconds %v, want reuse mean %v", rep.ReuseEpochSeconds, objective(rep.Best))
	}
	if len(rep.History) != 50 {
		t.Fatalf("history has %d records, want 50", len(rep.History))
	}
	if rep.History[7].Phase != PhaseSearch || rep.History[8].Phase != PhaseReuse {
		t.Fatal("phases mislabelled")
	}
	wantTotal := 0.0
	for _, h := range rep.History {
		wantTotal += h.Seconds
	}
	if diff := rep.TotalSeconds - wantTotal; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("TotalSeconds %v != history sum %v", rep.TotalSeconds, wantTotal)
	}
	if rep.Strategy != StrategyBayesOpt {
		t.Fatalf("report strategy %q", rep.Strategy)
	}
}

// The reuse phase must record each epoch's actual measured duration, not
// duplicate the phase mean across the history.
func TestRunRecordsActualReuseEpochs(t *testing.T) {
	rt, err := NewRuntime(10, 2, WithTotalCores(64), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	rep, err := rt.Run(context.Background(), func(_ context.Context, cfg Config, _ int) (float64, error) {
		n++
		return float64(n), nil // every epoch takes a different, known time
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range rep.History {
		if h.Seconds != float64(i+1) {
			t.Fatalf("epoch %d recorded %.0fs, want %d", i, h.Seconds, i+1)
		}
	}
	// Search best is min(1,2)=1; reuse mean is mean(3..10)=6.5. The two
	// must stay separate.
	if rep.BestEpochSeconds != 1 {
		t.Fatalf("BestEpochSeconds %v overwritten (want search-phase 1)", rep.BestEpochSeconds)
	}
	if rep.ReuseEpochSeconds != 6.5 {
		t.Fatalf("ReuseEpochSeconds %v, want 6.5", rep.ReuseEpochSeconds)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	rt, err := NewRuntime(10, 2, WithTotalCores(64))
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if _, err := rt.Run(context.Background(), func(context.Context, Config, int) (float64, error) {
		return 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("search error not propagated: %v", err)
	}
	n := 0
	if _, err := rt.Run(context.Background(), func(_ context.Context, cfg Config, epochs int) (float64, error) {
		n++
		if n > 2 {
			return 0, boom
		}
		return 1, nil
	}); !errors.Is(err, boom) {
		t.Fatalf("reuse error not propagated: %v", err)
	}
}

func TestRunLogsAndEvents(t *testing.T) {
	var lines []string
	var events []Event
	rt, err := NewRuntime(4, 2, WithTotalCores(64),
		WithLogf(func(f string, a ...any) { lines = append(lines, fmt.Sprintf(f, a...)) }),
		WithEvents(func(e Event) { events = append(events, e) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(context.Background(), func(context.Context, Config, int) (float64, error) {
		return 1, nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("expected 3 log lines, got %d: %q", len(lines), lines)
	}
	if !strings.Contains(lines[2], "reuse") {
		t.Fatalf("final line should describe the reuse phase: %q", lines[2])
	}
	if len(events) != 4 {
		t.Fatalf("expected one event per epoch, got %d", len(events))
	}
	for i, e := range events {
		if e.Epoch != i {
			t.Fatalf("event %d has epoch %d", i, e.Epoch)
		}
		want := PhaseSearch
		if i >= 2 {
			want = PhaseReuse
		}
		if e.Phase != want {
			t.Fatalf("event %d phase %q, want %q", i, e.Phase, want)
		}
		if e.Strategy != StrategyBayesOpt {
			t.Fatalf("event %d strategy %q", i, e.Strategy)
		}
	}
	if events[3].Searched != 2 {
		t.Fatalf("final event Searched = %d, want 2", events[3].Searched)
	}
}

// End-to-end against the platform simulator: the runtime must find a
// configuration within 90 % of the exhaustive optimum with a ~5 % budget —
// the paper's headline auto-tuner claim, via the public API.
func TestRunFindsNearOptimalOnSimulator(t *testing.T) {
	ds, err := graph.Spec("ogbn-products")
	if err != nil {
		t.Fatal(err)
	}
	sc := platsim.Scenario{
		Platform: platform.SapphireRapids2S,
		Library:  platsim.DGL,
		Sampler:  platsim.Neighbor,
		Model:    platsim.SAGE,
		Dataset:  ds,
	}
	obj := platsim.NewObjective(sc)
	_, optimal := platsim.BestWithBudget(sc, 64)

	rt, err := NewRuntime(200, 20, WithTotalCores(64), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(context.Background(), func(_ context.Context, cfg Config, epochs int) (float64, error) {
		return obj.Evaluate(cfg), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if quality := optimal / rep.BestEpochSeconds; quality < 0.9 {
		t.Fatalf("tuner quality %.3f below 0.9 (found %.3fs, optimal %.3fs)", quality, rep.BestEpochSeconds, optimal)
	}
	if rep.TunerOverhead <= 0 {
		t.Fatal("tuner overhead must be measured")
	}
}

// End-to-end with the real training engine on a scaled dataset: ARGO must
// run the full Listing-1 flow and leave a trained model behind.
func TestRunWithRealGNNTrainer(t *testing.T) {
	spec := graph.DatasetSpec{
		Name: "api-test", ScaledNodes: 300, ScaledEdges: 2200,
		ScaledF0: 12, ScaledHidden: 8, ScaledClasses: 4,
		Homophily: 0.7, Exponent: 2.2, TrainFrac: 0.5,
	}
	ds, err := graph.Build(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := NewGNNTrainer(GNNTrainerOptions{
		Dataset:   ds,
		Sampler:   sampler.NewNeighbor(ds.Graph, []int{4, 4}),
		Model:     nn.ModelSpec{Kind: nn.KindSAGE, Dims: []int{12, 8, 4}, Seed: 2},
		BatchSize: 50,
		LR:        0.01,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer trainer.Close()

	rt, err := NewRuntime(10, 4, WithTotalCores(16), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(context.Background(), trainer.Step)
	if err != nil {
		t.Fatal(err)
	}
	if trainer.Epochs() != 10 {
		t.Fatalf("trained %d epochs, want 10", trainer.Epochs())
	}
	if rep.Best.TotalCores() > 16 {
		t.Fatalf("best config %v exceeds 16 cores", rep.Best)
	}
	acc, err := trainer.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.4 { // chance is 0.25 on 4 classes
		t.Fatalf("post-training accuracy %.3f too low", acc)
	}
}
