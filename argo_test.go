package argo

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/platform"
	"argo/internal/platsim"
	"argo/internal/sampler"
)

func TestNewValidation(t *testing.T) {
	bad := []Options{
		{},
		{Epochs: 10},
		{Epochs: 10, NumSearches: 0},
		{Epochs: 5, NumSearches: 10},
	}
	for i, o := range bad {
		if _, err := New(o); err == nil {
			t.Fatalf("options %d must be rejected", i)
		}
	}
	rt, err := New(Options{Epochs: 10, NumSearches: 3, TotalCores: 64})
	if err != nil {
		t.Fatal(err)
	}
	if rt.SpaceSize() != 563 {
		t.Fatalf("SpaceSize = %d, want 563 for 64 cores", rt.SpaceSize())
	}
}

// Run must implement Algorithm 1: NumSearches single-epoch probes, then a
// single reuse call covering the remaining epochs with the best config.
func TestRunFollowsAlgorithm1(t *testing.T) {
	rt, err := New(Options{Epochs: 50, NumSearches: 8, TotalCores: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	type call struct {
		cfg    Config
		epochs int
	}
	var calls []call
	objective := func(cfg Config) float64 {
		dn := float64(cfg.Procs - 4)
		return 2 + 0.3*dn*dn + 0.1*float64(cfg.SampleCores) + 0.05*float64(cfg.TrainCores)
	}
	rep, err := rt.Run(func(cfg Config, epochs int) (float64, error) {
		calls = append(calls, call{cfg, epochs})
		return objective(cfg), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 9 {
		t.Fatalf("expected 8 search calls + 1 reuse call, got %d", len(calls))
	}
	for i := 0; i < 8; i++ {
		if calls[i].epochs != 1 {
			t.Fatalf("search call %d ran %d epochs", i, calls[i].epochs)
		}
	}
	last := calls[8]
	if last.epochs != 42 {
		t.Fatalf("reuse call ran %d epochs, want 42", last.epochs)
	}
	if last.cfg != rep.Best {
		t.Fatal("reuse call must use the best configuration")
	}
	// The reported best must be the minimum of the searched epochs.
	for _, h := range rep.History[:8] {
		if objective(rep.Best) > h.Seconds {
			t.Fatalf("best %v slower than searched %v", rep.Best, h.Config)
		}
	}
	if len(rep.History) != 50 {
		t.Fatalf("history has %d records, want 50", len(rep.History))
	}
	if rep.History[7].Phase != "search" || rep.History[8].Phase != "reuse" {
		t.Fatal("phases mislabelled")
	}
	wantTotal := 0.0
	for _, h := range rep.History {
		wantTotal += h.Seconds
	}
	if diff := rep.TotalSeconds - wantTotal; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("TotalSeconds %v != history sum %v", rep.TotalSeconds, wantTotal)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	rt, err := New(Options{Epochs: 10, NumSearches: 2, TotalCores: 64})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if _, err := rt.Run(func(Config, int) (float64, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("search error not propagated: %v", err)
	}
	n := 0
	if _, err := rt.Run(func(cfg Config, epochs int) (float64, error) {
		n++
		if epochs > 1 {
			return 0, boom
		}
		return 1, nil
	}); !errors.Is(err, boom) {
		t.Fatalf("reuse error not propagated: %v", err)
	}
}

func TestRunLogs(t *testing.T) {
	var lines []string
	rt, err := New(Options{Epochs: 4, NumSearches: 2, TotalCores: 64, Logf: func(f string, a ...any) {
		lines = append(lines, fmt.Sprintf(f, a...))
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(func(Config, int) (float64, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("expected 3 log lines, got %d", len(lines))
	}
	if !strings.Contains(lines[2], "reuse") {
		t.Fatalf("final line should describe the reuse phase: %q", lines[2])
	}
}

// End-to-end against the platform simulator: the runtime must find a
// configuration within 90 % of the exhaustive optimum with a ~5 % budget —
// the paper's headline auto-tuner claim, via the public API.
func TestRunFindsNearOptimalOnSimulator(t *testing.T) {
	ds, err := graph.Spec("ogbn-products")
	if err != nil {
		t.Fatal(err)
	}
	sc := platsim.Scenario{
		Platform: platform.SapphireRapids2S,
		Library:  platsim.DGL,
		Sampler:  platsim.Neighbor,
		Model:    platsim.SAGE,
		Dataset:  ds,
	}
	obj := platsim.NewObjective(sc)
	_, optimal := platsim.BestWithBudget(sc, 64)

	rt, err := New(Options{Epochs: 200, NumSearches: 20, TotalCores: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(func(cfg Config, epochs int) (float64, error) {
		return obj.Evaluate(cfg), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if quality := optimal / rep.BestEpochSeconds; quality < 0.9 {
		t.Fatalf("tuner quality %.3f below 0.9 (found %.3fs, optimal %.3fs)", quality, rep.BestEpochSeconds, optimal)
	}
	if rep.TunerOverhead <= 0 {
		t.Fatal("tuner overhead must be measured")
	}
}

// End-to-end with the real training engine on a scaled dataset: ARGO must
// run the full Listing-1 flow and leave a trained model behind.
func TestRunWithRealGNNTrainer(t *testing.T) {
	spec := graph.DatasetSpec{
		Name: "api-test", ScaledNodes: 300, ScaledEdges: 2200,
		ScaledF0: 12, ScaledHidden: 8, ScaledClasses: 4,
		Homophily: 0.7, Exponent: 2.2, TrainFrac: 0.5,
	}
	ds, err := graph.Build(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := NewGNNTrainer(GNNTrainerOptions{
		Dataset:   ds,
		Sampler:   sampler.NewNeighbor(ds.Graph, []int{4, 4}),
		Model:     nn.ModelSpec{Kind: nn.KindSAGE, Dims: []int{12, 8, 4}, Seed: 2},
		BatchSize: 50,
		LR:        0.01,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer trainer.Close()

	rt, err := New(Options{Epochs: 10, NumSearches: 4, TotalCores: 16, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rt.Run(trainer.Step)
	if err != nil {
		t.Fatal(err)
	}
	if trainer.Epochs() != 10 {
		t.Fatalf("trained %d epochs, want 10", trainer.Epochs())
	}
	if rep.Best.TotalCores() > 16 {
		t.Fatalf("best config %v exceeds 16 cores", rep.Best)
	}
	acc, err := trainer.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.4 { // chance is 0.25 on 4 classes
		t.Fatalf("post-training accuracy %.3f too low", acc)
	}
}
