// Benchmarks: one per table and figure of the paper's evaluation section.
// Each benchmark regenerates its artifact through internal/experiments
// (the same code cmd/argo-bench runs) so `go test -bench=.` exercises the
// full reproduction; per-experiment paper-vs-measured notes live in
// EXPERIMENTS.md. The Ablation* benchmarks quantify the design choices
// DESIGN.md §7 calls out.
package argo_test

import (
	"io"
	"math/rand"
	"testing"

	"argo/internal/anneal"
	"argo/internal/bayesopt"
	"argo/internal/experiments"
	"argo/internal/graph"
	"argo/internal/platform"
	"argo/internal/platsim"
	"argo/internal/sampler"
	"argo/internal/search"
)

func BenchmarkFig1Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2Trace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := experiments.Fig2(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(data.SingleMemBusy*100, "membusy1proc_%")
			b.ReportMetric(data.DualMemBusy*100, "membusy2proc_%")
		}
	}
}

func BenchmarkFig6Workload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := experiments.Fig6(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := len(data.Procs) - 1
			b.ReportMetric(data.SimEdges[last]/data.SimEdges[0], "workload_inflation_x")
		}
	}
}

func BenchmarkFig7Landscape(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := experiments.Fig9(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(data.Curves) > 0 {
			c := data.Curves[len(data.Curves)-1] // ARGO:8
			b.ReportMetric(c.Accuracy[len(c.Accuracy)-1], "argo8_final_acc")
		}
	}
}

func BenchmarkFig10EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12Surface(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIVAutoTuner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := experiments.TableIV(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(worstTunerQuality(data), "worst_tuner_quality")
		}
	}
}

func BenchmarkTableVAutoTuner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		data, err := experiments.TableV(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(worstTunerQuality(data), "worst_tuner_quality")
		}
	}
}

func worstTunerQuality(data experiments.TableData) float64 {
	worst := 1.0
	for _, r := range data.Rows {
		if q := r.Exhaustive / r.Tuner; q < worst {
			worst = q
		}
	}
	return worst
}

func BenchmarkTableVISpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableVI(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTunerOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TunerOverhead(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDedup quantifies the sampler's shared-neighbour reuse:
// without per-layer dedup the same epoch samples many more feature rows.
func BenchmarkAblationDedup(b *testing.B) {
	ds, err := graph.BuildByName("ogbn-products", 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, dedup := range []bool{true, false} {
		name := "dedup"
		if !dedup {
			name = "nodedup"
		}
		b.Run(name, func(b *testing.B) {
			ns := &sampler.Neighbor{Graph: ds.Graph, Fanouts: []int{15, 10, 5}, Dedup: dedup}
			var nodes int64
			for i := 0; i < b.N; i++ {
				stats := sampler.EpochWorkload(ns, ds.TrainIdx, 256, 1, 7)
				nodes = stats.InputNodes
			}
			b.ReportMetric(float64(nodes), "input_nodes/epoch")
		})
	}
}

// BenchmarkAblationAcquisition compares Expected Improvement against
// random acquisition with the same budget (DESIGN.md §7).
func BenchmarkAblationAcquisition(b *testing.B) {
	ds, err := graph.Spec("ogbn-products")
	if err != nil {
		b.Fatal(err)
	}
	sc := platsim.Scenario{
		Platform: platform.IceLake4S, Library: platsim.DGL,
		Sampler: platsim.Shadow, Model: platsim.GCN, Dataset: ds,
	}
	sp := search.DefaultSpace(112)
	obj := platsim.NewObjective(sc)
	optimal := search.Exhaustive(sp, obj).BestTime
	for _, random := range []bool{false, true} {
		name := "ei"
		if random {
			name = "random"
		}
		b.Run(name, func(b *testing.B) {
			var quality float64
			for i := 0; i < b.N; i++ {
				tu := bayesopt.NewTuner(sp, 45, int64(i))
				tu.RandomAcquisition = random
				res := tu.Run(obj)
				quality = optimal / res.BestTime
			}
			b.ReportMetric(quality, "quality_vs_optimal")
		})
	}
}

// BenchmarkAblationOverlap measures what the sampling/training pipeline
// overlap is worth: the same configuration with sampling serialized into
// the training loop.
func BenchmarkAblationOverlap(b *testing.B) {
	ds, err := graph.Spec("ogbn-products")
	if err != nil {
		b.Fatal(err)
	}
	sc := platsim.Scenario{
		Platform: platform.IceLake4S, Library: platsim.DGL,
		Sampler: platsim.Shadow, Model: platsim.GCN, Dataset: ds,
	}
	for _, noOverlap := range []bool{false, true} {
		name := "pipelined"
		if noOverlap {
			name = "serialized"
		}
		b.Run(name, func(b *testing.B) {
			var epoch float64
			for i := 0; i < b.N; i++ {
				m, err := platsim.Simulate(sc, platsim.SimConfig{
					Procs: 4, SampleCores: 4, TrainCores: 8, MaxIters: 40, NoOverlap: noOverlap,
				})
				if err != nil {
					b.Fatal(err)
				}
				epoch = m.EpochSeconds
			}
			b.ReportMetric(epoch, "sim_epoch_s")
		})
	}
}

// BenchmarkAblationSearchStrategies pits the three search strategies
// against each other on one setup with equal budgets.
func BenchmarkAblationSearchStrategies(b *testing.B) {
	ds, err := graph.Spec("reddit")
	if err != nil {
		b.Fatal(err)
	}
	sc := platsim.Scenario{
		Platform: platform.SapphireRapids2S, Library: platsim.DGL,
		Sampler: platsim.Neighbor, Model: platsim.SAGE, Dataset: ds,
	}
	sp := search.DefaultSpace(64)
	obj := platsim.NewObjective(sc)
	const budget = 20
	b.Run("bayesopt", func(b *testing.B) {
		var best float64
		for i := 0; i < b.N; i++ {
			best = bayesopt.NewTuner(sp, budget, int64(i)).Run(obj).BestTime
		}
		b.ReportMetric(best, "found_epoch_s")
	})
	b.Run("anneal", func(b *testing.B) {
		var best float64
		for i := 0; i < b.N; i++ {
			best = anneal.Run(sp, obj, budget, rand.New(rand.NewSource(int64(i))), anneal.Options{}).BestTime
		}
		b.ReportMetric(best, "found_epoch_s")
	})
	b.Run("random", func(b *testing.B) {
		var best float64
		for i := 0; i < b.N; i++ {
			best = search.RandomSearch(sp, obj, budget, rand.New(rand.NewSource(int64(i)))).BestTime
		}
		b.ReportMetric(best, "found_epoch_s")
	})
}

// BenchmarkExtensionNUMA measures the §IX future-work extension:
// socket-local feature replicas versus UPI-bound interleaving.
func BenchmarkExtensionNUMA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.NUMAExtension(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(rows) > 0 {
			b.ReportMetric(rows[len(rows)-1].Gain, "gain_112c_x")
		}
	}
}
