package search

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultSpaceSizesMatchDesign(t *testing.T) {
	// DESIGN.md §5: 766 configs at 112 cores, 563 at 64 — same order as
	// the paper's 726 and 408.
	if n := DefaultSpace(112).Size(); n != 766 {
		t.Fatalf("112-core space has %d configs, want 766", n)
	}
	if n := DefaultSpace(64).Size(); n != 563 {
		t.Fatalf("64-core space has %d configs, want 563", n)
	}
}

func TestFeasible(t *testing.T) {
	sp := DefaultSpace(64)
	cases := []struct {
		c    Config
		want bool
	}{
		{Config{2, 1, 1}, true},
		{Config{8, 4, 4}, true},  // 64 cores exactly
		{Config{8, 4, 5}, false}, // 72 > 64
		{Config{1, 1, 1}, true},  // n=1: core-binding only
		{Config{0, 1, 1}, false},
		{Config{9, 1, 1}, false},
		{Config{2, 0, 1}, false},
		{Config{2, 11, 1}, false},
		{Config{2, 1, 11}, false},
	}
	for _, tc := range cases {
		if got := sp.Feasible(tc.c); got != tc.want {
			t.Fatalf("Feasible(%v) = %v, want %v", tc.c, got, tc.want)
		}
	}
}

func TestEnumerateAllFeasibleAndUnique(t *testing.T) {
	sp := DefaultSpace(64)
	seen := map[Config]bool{}
	for _, c := range sp.Enumerate() {
		if !sp.Feasible(c) {
			t.Fatalf("enumerated infeasible %v", c)
		}
		if seen[c] {
			t.Fatalf("duplicate %v", c)
		}
		seen[c] = true
	}
}

func TestRandomIsFeasible(t *testing.T) {
	sp := DefaultSpace(112)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		if c := sp.Random(rng); !sp.Feasible(c) {
			t.Fatalf("Random produced infeasible %v", c)
		}
	}
}

// Property: neighbours are feasible, distinct from the origin, and differ
// in exactly one dimension by one.
func TestQuickNeighbors(t *testing.T) {
	sp := DefaultSpace(64)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := sp.Random(rng)
		for _, nb := range sp.Neighbors(c) {
			if !sp.Feasible(nb) || nb == c {
				return false
			}
			d := abs(nb.Procs-c.Procs) + abs(nb.SampleCores-c.SampleCores) + abs(nb.TrainCores-c.TrainCores)
			if d != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// bowl is a smooth test objective with its optimum inside the space.
func bowl(c Config) float64 {
	dn := float64(c.Procs - 6)
	ds := float64(c.SampleCores - 3)
	dt := float64(c.TrainCores - 7)
	return 10 + 0.5*dn*dn + 0.3*ds*ds + 0.2*dt*dt
}

func TestExhaustiveFindsOptimum(t *testing.T) {
	sp := DefaultSpace(112)
	res := Exhaustive(sp, ObjectiveFunc(bowl))
	if res.Evals != sp.Size() {
		t.Fatalf("exhaustive made %d evals, want %d", res.Evals, sp.Size())
	}
	want := Config{Procs: 6, SampleCores: 3, TrainCores: 7}
	if res.Best != want {
		t.Fatalf("best = %v, want %v", res.Best, want)
	}
	if res.BestTime != 10 {
		t.Fatalf("best time = %v, want 10", res.BestTime)
	}
}

func TestRandomSearchBudgetAndIncumbent(t *testing.T) {
	sp := DefaultSpace(64)
	res := RandomSearch(sp, ObjectiveFunc(bowl), 30, rand.New(rand.NewSource(3)))
	if res.Evals != 30 || len(res.History) != 30 {
		t.Fatalf("random search made %d evals", res.Evals)
	}
	for _, e := range res.History {
		if e.Time < res.BestTime {
			t.Fatal("incumbent is not the minimum of the history")
		}
	}
}

func TestConfigString(t *testing.T) {
	if s := (Config{4, 2, 8}).String(); s != "n=4 s=2 t=8" {
		t.Fatalf("String() = %q", s)
	}
	if (Config{4, 2, 8}).TotalCores() != 40 {
		t.Fatal("TotalCores wrong")
	}
}
