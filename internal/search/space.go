// Package search defines ARGO's 3-D configuration space — number of GNN
// processes, sampling cores per process, training cores per process — and
// the exhaustive/random search baselines the paper compares the auto-tuner
// against (Table IV/V/VI).
package search

import (
	"fmt"
	"math/rand"
)

// Config is one point of the design space: n processes, each bound to
// s sampling cores and t training cores.
type Config struct {
	Procs       int `json:"procs"`        // n
	SampleCores int `json:"sample_cores"` // s
	TrainCores  int `json:"train_cores"`  // t
}

// String renders "n=4 s=2 t=8".
func (c Config) String() string {
	return fmt.Sprintf("n=%d s=%d t=%d", c.Procs, c.SampleCores, c.TrainCores)
}

// TotalCores returns the configuration's total core demand n·(s+t).
func (c Config) TotalCores() int { return c.Procs * (c.SampleCores + c.TrainCores) }

// Space is the discrete feasible region. A config is feasible iff every
// dimension is within bounds and the total core demand fits the machine.
//
// Bounds default to n ∈ [1,8], s ∈ [1,10], t ∈ [1,10] (DefaultSpace) —
// n=1 is core-binding without multi-processing — which yields 766
// feasible configs on a 112-core platform and 563 on a 64-core platform,
// the same order as the paper's 726 and 408 (DESIGN.md §5).
type Space struct {
	TotalCores         int
	MinProcs, MaxProcs int
	MaxSample          int
	MaxTrain           int
}

// DefaultSpace returns the paper-matched bounds for a machine with the
// given core count.
func DefaultSpace(totalCores int) Space {
	return Space{TotalCores: totalCores, MinProcs: 1, MaxProcs: 8, MaxSample: 10, MaxTrain: 10}
}

// Feasible reports whether c lies inside the space.
func (s Space) Feasible(c Config) bool {
	return c.Procs >= s.MinProcs && c.Procs <= s.MaxProcs &&
		c.SampleCores >= 1 && c.SampleCores <= s.MaxSample &&
		c.TrainCores >= 1 && c.TrainCores <= s.MaxTrain &&
		c.TotalCores() <= s.TotalCores
}

// Enumerate lists every feasible configuration in a deterministic order.
func (s Space) Enumerate() []Config {
	var out []Config
	for n := s.MinProcs; n <= s.MaxProcs; n++ {
		for sc := 1; sc <= s.MaxSample; sc++ {
			for tc := 1; tc <= s.MaxTrain; tc++ {
				c := Config{Procs: n, SampleCores: sc, TrainCores: tc}
				if s.Feasible(c) {
					out = append(out, c)
				}
			}
		}
	}
	return out
}

// Size returns the number of feasible configurations.
func (s Space) Size() int { return len(s.Enumerate()) }

// Random draws a feasible configuration uniformly.
func (s Space) Random(rng *rand.Rand) Config {
	for {
		c := Config{
			Procs:       s.MinProcs + rng.Intn(s.MaxProcs-s.MinProcs+1),
			SampleCores: 1 + rng.Intn(s.MaxSample),
			TrainCores:  1 + rng.Intn(s.MaxTrain),
		}
		if s.Feasible(c) {
			return c
		}
	}
}

// Neighbors returns the feasible one-step moves from c (±1 in a single
// dimension) — the simulated-annealing neighbourhood.
func (s Space) Neighbors(c Config) []Config {
	deltas := []Config{
		{Procs: 1}, {Procs: -1},
		{SampleCores: 1}, {SampleCores: -1},
		{TrainCores: 1}, {TrainCores: -1},
	}
	var out []Config
	for _, d := range deltas {
		nc := Config{
			Procs:       c.Procs + d.Procs,
			SampleCores: c.SampleCores + d.SampleCores,
			TrainCores:  c.TrainCores + d.TrainCores,
		}
		if s.Feasible(nc) {
			out = append(out, nc)
		}
	}
	return out
}

// Objective maps a configuration to its epoch time in seconds (lower is
// better). Implementations: the platform simulator (performance studies)
// and the real training engine (online examples).
type Objective interface {
	Evaluate(Config) float64
}

// ObjectiveFunc adapts a plain function to Objective.
type ObjectiveFunc func(Config) float64

// Evaluate implements Objective.
func (f ObjectiveFunc) Evaluate(c Config) float64 { return f(c) }

// Eval is one recorded objective evaluation.
type Eval struct {
	Config Config
	Time   float64
}

// Result summarises a search run.
type Result struct {
	Best     Config
	BestTime float64
	Evals    int
	History  []Eval
}

// record appends an evaluation and updates the incumbent.
func (r *Result) record(c Config, y float64) {
	r.History = append(r.History, Eval{Config: c, Time: y})
	r.Evals++
	if r.Evals == 1 || y < r.BestTime {
		r.Best, r.BestTime = c, y
	}
}

// Exhaustive evaluates every feasible configuration — the paper's optimal
// but intractably expensive baseline.
func Exhaustive(sp Space, obj Objective) Result {
	var res Result
	e := NewExhaustiveSearcher(sp)
	for {
		c, ok := e.Next()
		if !ok {
			return res
		}
		res.record(c, obj.Evaluate(c))
	}
}

// RandomSearch evaluates `budget` configurations drawn uniformly (with
// replacement avoided best-effort).
func RandomSearch(sp Space, obj Objective, budget int, rng *rand.Rand) Result {
	var res Result
	r := NewRandomSearcher(sp, budget, rng)
	for {
		c, ok := r.Next()
		if !ok {
			return res
		}
		y := obj.Evaluate(c)
		r.Observe(c, y)
		res.record(c, y)
	}
}
