package search

import (
	"math"
	"math/rand"
	"time"
)

// IsFinite reports whether v is a usable measurement — the shared
// crashed-measurement convention: NaN and ±Inf mark a crashed epoch and
// must never become an incumbent.
func IsFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Incumbent tracks the best finite observation seen so far — the shared
// half of the Strategy contract: non-finite costs (a crashed measurement)
// must never become the incumbent.
type Incumbent struct {
	best     Config
	bestY    float64
	haveBest bool
}

// Observe folds one measurement into the incumbent, ignoring non-finite
// costs.
func (in *Incumbent) Observe(c Config, y float64) {
	if !IsFinite(y) {
		return
	}
	if !in.haveBest || y < in.bestY {
		in.best, in.bestY, in.haveBest = c, y, true
	}
}

// Best returns the incumbent optimal configuration and its cost (zero
// values before the first finite observation).
func (in *Incumbent) Best() (Config, float64) { return in.best, in.bestY }

// RandomSearcher proposes feasible configurations uniformly at random
// (avoiding repeats best-effort) one at a time — the stepwise form of
// RandomSearch, so a training runtime can interleave proposals with real
// epoch measurements.
type RandomSearcher struct {
	sp     Space
	budget int
	rng    *rand.Rand
	size   int
	seen   map[Config]bool

	observed int
	inc      Incumbent
	overhead time.Duration
}

// NewRandomSearcher builds a random searcher over sp with the given
// evaluation budget.
func NewRandomSearcher(sp Space, budget int, rng *rand.Rand) *RandomSearcher {
	return &RandomSearcher{sp: sp, budget: budget, rng: rng, size: sp.Size(), seen: map[Config]bool{}}
}

// Next proposes the next configuration. ok is false once the budget is
// exhausted.
func (r *RandomSearcher) Next() (Config, bool) {
	start := time.Now()
	defer func() { r.overhead += time.Since(start) }()
	if r.observed >= r.budget {
		return Config{}, false
	}
	for {
		c := r.sp.Random(r.rng)
		if !r.seen[c] || len(r.seen) >= r.size {
			return c, true
		}
	}
}

// Observe records an evaluated configuration and its cost.
func (r *RandomSearcher) Observe(c Config, y float64) {
	r.observed++
	r.seen[c] = true
	r.inc.Observe(c, y)
}

// Best returns the incumbent optimal configuration and its cost.
func (r *RandomSearcher) Best() (Config, float64) { return r.inc.Best() }

// Observations returns how many costs have been recorded.
func (r *RandomSearcher) Observations() int { return r.observed }

// Overhead returns the cumulative time spent drawing proposals.
func (r *RandomSearcher) Overhead() time.Duration { return r.overhead }

// ExhaustiveSearcher walks every feasible configuration in enumeration
// order — the stepwise form of Exhaustive. Next returns ok=false once the
// space is exhausted, regardless of any external budget. Configurations
// already observed (e.g. replayed from a warm start) are skipped, so a
// resumed enumeration continues instead of re-measuring its prefix.
type ExhaustiveSearcher struct {
	order []Config
	next  int
	seen  map[Config]bool

	inc      Incumbent
	overhead time.Duration
}

// NewExhaustiveSearcher builds an exhaustive searcher over sp.
func NewExhaustiveSearcher(sp Space) *ExhaustiveSearcher {
	return &ExhaustiveSearcher{order: sp.Enumerate(), seen: map[Config]bool{}}
}

// Next proposes the next unvisited configuration in enumeration order.
func (e *ExhaustiveSearcher) Next() (Config, bool) {
	start := time.Now()
	defer func() { e.overhead += time.Since(start) }()
	for e.next < len(e.order) {
		c := e.order[e.next]
		e.next++
		if !e.seen[c] {
			return c, true
		}
	}
	return Config{}, false
}

// Observe records an evaluated configuration and its cost.
func (e *ExhaustiveSearcher) Observe(c Config, y float64) {
	e.seen[c] = true
	e.inc.Observe(c, y)
}

// Best returns the incumbent optimal configuration and its cost.
func (e *ExhaustiveSearcher) Best() (Config, float64) { return e.inc.Best() }

// Overhead returns the cumulative time spent iterating the enumeration.
func (e *ExhaustiveSearcher) Overhead() time.Duration { return e.overhead }
