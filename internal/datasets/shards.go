package datasets

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"sync"

	"argo/internal/graph"
)

// ParseShardSpec splits a -shards workload spec into its base workload
// and shard count: "tiny#4" means the registry profile tiny split into
// 4 shards; a bare name or path has no inline count (k = 0).
func ParseShardSpec(spec string) (base string, k int, err error) {
	i := strings.LastIndex(spec, "#")
	if i < 0 {
		return spec, 0, nil
	}
	base = spec[:i]
	k, err = strconv.Atoi(spec[i+1:])
	if err != nil || k < 1 {
		return "", 0, fmt.Errorf("datasets: bad shard count in %q (want name#k, e.g. tiny#4)", spec)
	}
	if base == "" {
		return "", 0, fmt.Errorf("datasets: empty workload name in %q", spec)
	}
	return base, k, nil
}

// ResolveShards turns a shard-set spec into an opened graph.ShardSet:
//
//   - "name#k" builds the registry profile with the given seed and
//     shards it in memory with the deterministic greedy partitioner —
//     identical contents to what `argo-data shard -k k` would store;
//   - a path names the manifest-carrying store of a set written by
//     `argo-data shard` (shard 0), opened lazily.
//
// The caller owns the returned set and must Close it.
func ResolveShards(spec string, seed int64) (*graph.ShardSet, error) {
	base, k, err := ParseShardSpec(spec)
	if err != nil {
		return nil, err
	}
	if k > 0 {
		d, berr := Build(base, seed)
		if berr != nil {
			return nil, fmt.Errorf("datasets: %q: %w", spec, berr)
		}
		return graph.ShardSetFromDataset(d, graph.ShardOptions{K: k, Seed: seed})
	}
	if _, serr := os.Stat(spec); serr != nil {
		return nil, fmt.Errorf("datasets: %q is neither name#k nor a shard store path: %v", spec, serr)
	}
	return graph.OpenShardSet(spec)
}

// profileSignatures caches each registry profile's *realised* stats —
// what its scaled instance actually generates at the canonical seed —
// computed once on first use. Matching against realisations rather than
// raw spec numbers matters because the generator's dedup and power-law
// clipping land the arc count well under 2× the edge target for the
// denser profiles.
var (
	profileStatsOnce sync.Once
	profileStats     map[string]graph.Stats
)

func signatures() map[string]graph.Stats {
	profileStatsOnce.Do(func() {
		profileStats = make(map[string]graph.Stats, len(registry))
		for _, p := range registry {
			if p.Spec.ScaledNodes < 1 {
				continue
			}
			d, err := graph.Build(p.Spec, 1)
			if err != nil {
				continue // an unbuildable profile simply cannot be matched
			}
			profileStats[p.Name] = graph.ComputeStats(d)
		}
	})
	return profileStats
}

// NearestProfile returns the registry profile whose shape is closest to
// the given workload stats — the warm-start prior matcher: a finished
// BENCH_argo.json entry for a similar profile is a better starting
// point for the tuner than cold random probes. Distance is measured in
// log space over node count, average degree, feature width, and class
// count against each profile's realised instance, so "similar" means
// similar orders of magnitude rather than similar absolute sizes. Ties
// resolve to registry order.
func NearestProfile(st graph.Stats) (Profile, float64, error) {
	if st.NumNodes < 1 {
		return Profile{}, 0, fmt.Errorf("datasets: stats describe no nodes")
	}
	sigs := signatures()
	best := -1
	bestDist := math.Inf(1)
	for i, p := range registry {
		sig, ok := sigs[p.Name]
		if !ok {
			continue
		}
		d := logDist(float64(st.NumNodes), float64(sig.NumNodes)) +
			logDist(st.AvgDegree, sig.AvgDegree) +
			logDist(float64(st.FeatCols), float64(sig.FeatCols)) +
			logDist(float64(st.NumClasses), float64(sig.NumClasses))
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	if best < 0 {
		return Profile{}, 0, fmt.Errorf("datasets: no sized registry profile to match against")
	}
	return registry[best], bestDist, nil
}

// logDist is the squared distance between a and b in log space; zero or
// negative values clamp to 1 so degenerate stats stay comparable.
func logDist(a, b float64) float64 {
	if a < 1 {
		a = 1
	}
	if b < 1 {
		b = 1
	}
	d := math.Log(a) - math.Log(b)
	return d * d
}
