package datasets

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"argo/internal/graph"
)

// The point of the binary store: reloading a stored graph must beat
// regenerating it by at least an order of magnitude. Each side takes the
// MINIMUM over several runs — the standard estimator for "how fast can
// this go" — so a GC pause or a noisy CI neighbour during some runs
// cannot flip the verdict (one clean run per side suffices).
func TestLoadBeatsBuildTenfold(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation distorts the build/load timing ratio")
	}
	const name, seed = "arxiv-sim", 7
	path := filepath.Join(t.TempDir(), name+".argograph")
	ds, err := Build(name, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}

	build := fastest(5, func() {
		if _, err := Build(name, seed); err != nil {
			t.Fatal(err)
		}
	})
	load := fastest(5, func() {
		if _, err := graph.LoadDataset(path); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("build %v, load %v (%.1fx)", build, load, float64(build)/float64(load))
	if load*10 > build {
		t.Fatalf("load %v not ≥10x faster than build %v", load, build)
	}
}

func fastest(runs int, f func()) time.Duration {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < runs; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

func BenchmarkBuildArxivSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Build("arxiv-sim", 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadArxivSim(b *testing.B) {
	path := filepath.Join(b.TempDir(), "arxiv.argograph")
	ds, err := Build("arxiv-sim", 7)
	if err != nil {
		b.Fatal(err)
	}
	if err := ds.Save(path); err != nil {
		b.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fi.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.LoadDataset(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSaveArxivSim(b *testing.B) {
	dir := b.TempDir()
	ds, err := Build("arxiv-sim", 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ds.Save(filepath.Join(dir, "arxiv.argograph")); err != nil {
			b.Fatal(err)
		}
	}
}
