package datasets

import (
	"path/filepath"
	"reflect"
	"testing"

	"argo/internal/graph"
)

func TestRegistryNamesAndOrder(t *testing.T) {
	want := []string{"tiny", "flickr-sim", "arxiv-sim", "reddit-sim", "products-sim", "papers100m-sim"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	if got := PaperNames(); !reflect.DeepEqual(got, want[1:]) {
		t.Fatalf("PaperNames() = %v, want %v", got, want[1:])
	}
}

func TestGetLegacyGraphNames(t *testing.T) {
	p, err := Get("ogbn-products")
	if err != nil {
		t.Fatal(err)
	}
	alias, err := Get("products-sim")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Spec, alias.Spec) {
		t.Fatal("products-sim and ogbn-products resolve to different specs")
	}
	if _, err := Get("no-such-dataset"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestArxivMatchesTableIII(t *testing.T) {
	p, err := Get("arxiv-sim")
	if err != nil {
		t.Fatal(err)
	}
	if p.Spec.Paper.Vertices != 169_343 || p.Spec.Paper.Edges != 1_166_243 ||
		p.Spec.Paper.F0 != 128 || p.Spec.Paper.F2 != 40 {
		t.Fatalf("ogbn-arxiv paper stats drifted from Table III: %+v", p.Spec.Paper)
	}
}

// TestProfileInvariants is the property harness of the dataset registry:
// every profile's materialised graph must satisfy the CSR structural
// invariants (monotone sorted row offsets, in-bounds column indices,
// degree sums equal to the stored arc count), carry labels inside the
// class range, and split node IDs into disjoint in-range train/val/test
// sets covering the whole graph. Subtests run in parallel so the whole
// harness doubles as a race check on Build and the registry under
// `go test -race`.
func TestProfileInvariants(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ds, err := Build(name, 7)
			if err != nil {
				t.Fatal(err)
			}
			if err := ds.Validate(); err != nil {
				t.Fatal(err)
			}
			g := ds.Graph
			// Degree sums must equal the arc count both via RowPtr and by
			// recounting adjacency lists.
			var sum int64
			for v := 0; v < g.NumNodes; v++ {
				sum += int64(g.Degree(graph.NodeID(v)))
			}
			if sum != g.NumEdges() || sum != int64(len(g.Col)) {
				t.Fatalf("degree sum %d, NumEdges %d, len(Col) %d", sum, g.NumEdges(), len(g.Col))
			}
			// The generator symmetrizes: every arc needs its reverse.
			for v := 0; v < g.NumNodes; v++ {
				for _, u := range g.Neighbors(graph.NodeID(v)) {
					if !g.HasEdge(u, graph.NodeID(v)) {
						t.Fatalf("arc %d→%d has no reverse", v, u)
					}
				}
			}
			// Splits partition the node set.
			seen := make(map[graph.NodeID]string, g.NumNodes)
			for _, split := range []struct {
				name string
				ids  []graph.NodeID
			}{{"train", ds.TrainIdx}, {"val", ds.ValIdx}, {"test", ds.TestIdx}} {
				for _, v := range split.ids {
					if prev, dup := seen[v]; dup {
						t.Fatalf("node %d in both %s and %s splits", v, prev, split.name)
					}
					seen[v] = split.name
				}
			}
			if len(seen) != g.NumNodes {
				t.Fatalf("splits cover %d of %d nodes", len(seen), g.NumNodes)
			}
		})
	}
}

func TestBuildDeterministicPerProfile(t *testing.T) {
	for _, name := range []string{"tiny", "arxiv-sim"} {
		a, err := Build(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: two builds with the same seed differ", name)
		}
		c, err := Build(name, 4)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(a.Graph, c.Graph) {
			t.Fatalf("%s: different seeds produced an identical graph", name)
		}
	}
}

func TestResolveNameAndPath(t *testing.T) {
	built, err := Resolve("tiny", 5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiny.argograph")
	if err := built.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Resolve(path, 99) // seed must be ignored for paths
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(built, loaded) {
		t.Fatal("Resolve(path) differs from the saved dataset")
	}
	if _, err := Resolve("definitely-not-a-dataset", 1); err == nil {
		t.Fatal("unknown name resolved")
	}

	spec, err := ResolveSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, built.Spec) {
		t.Fatalf("ResolveSpec(path) = %+v, want %+v", spec, built.Spec)
	}
	spec, err = ResolveSpec("reddit-sim")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "reddit" {
		t.Fatalf("reddit-sim resolves to spec %q", spec.Name)
	}
	if _, err := ResolveSpec("definitely-not-a-dataset"); err == nil {
		t.Fatal("unknown name resolved to a spec")
	}
}

// Every registry profile must round-trip through the binary store
// unchanged — the golden property of the .argograph format.
func TestEveryProfileRoundTripsThroughStore(t *testing.T) {
	dir := t.TempDir()
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ds, err := Build(name, 2)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, name+".argograph")
			if err := ds.Save(path); err != nil {
				t.Fatal(err)
			}
			back, err := graph.LoadDataset(path)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ds, back) {
				t.Fatal("round trip changed the dataset")
			}
		})
	}
}
