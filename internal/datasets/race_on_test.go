//go:build race

package datasets

// raceEnabled reports whether this test binary was built with the race
// detector, whose instrumentation distorts wall-clock comparisons.
const raceEnabled = true
