package datasets

import (
	"path/filepath"
	"strings"
	"testing"

	"argo/internal/graph"
)

func TestParseShardSpec(t *testing.T) {
	cases := []struct {
		in   string
		base string
		k    int
		ok   bool
	}{
		{"tiny#4", "tiny", 4, true},
		{"arxiv-sim#2", "arxiv-sim", 2, true},
		{"tiny", "tiny", 0, true},
		{"dir/set.shard0.argograph", "dir/set.shard0.argograph", 0, true},
		{"tiny#0", "", 0, false},
		{"tiny#x", "", 0, false},
		{"#4", "", 0, false},
	}
	for _, c := range cases {
		base, k, err := ParseShardSpec(c.in)
		if c.ok && (err != nil || base != c.base || k != c.k) {
			t.Fatalf("ParseShardSpec(%q) = %q,%d,%v want %q,%d", c.in, base, k, err, c.base, c.k)
		}
		if !c.ok && err == nil {
			t.Fatalf("ParseShardSpec(%q) accepted", c.in)
		}
	}
}

// name#k resolution builds the same set the file path round trip yields.
func TestResolveShardsNameAndPathAgree(t *testing.T) {
	byName, err := ResolveShards("tiny#3", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer byName.Close()
	if byName.K() != 3 {
		t.Fatalf("k=%d", byName.K())
	}
	if err := byName.Validate(); err != nil {
		t.Fatal(err)
	}

	ds, err := Build("tiny", 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	_, paths, err := graph.WriteShardSet(ds, dir, "tiny", graph.ShardOptions{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	byPath, err := ResolveShards(paths[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	defer byPath.Close()
	a, err := byName.AssembleDataset()
	if err != nil {
		t.Fatal(err)
	}
	b, err := byPath.AssembleDataset()
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() || len(a.TrainIdx) != len(b.TrainIdx) {
		t.Fatal("name#k and stored shard set assemble differently")
	}
	for i := range a.TrainIdx {
		if a.TrainIdx[i] != b.TrainIdx[i] {
			t.Fatalf("train order diverges at %d", i)
		}
	}
}

func TestResolveShardsErrors(t *testing.T) {
	if _, err := ResolveShards("no-such-profile#2", 1); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if _, err := ResolveShards(filepath.Join(t.TempDir(), "missing.argograph"), 1); err == nil ||
		!strings.Contains(err.Error(), "neither") {
		t.Fatalf("missing path: %v", err)
	}
}

// The matcher must map each profile's own materialised stats back to
// itself: the build is the spec's realisation, so no other registry
// entry may be closer.
func TestNearestProfileIdentity(t *testing.T) {
	for _, name := range Names() {
		ds, err := Build(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		p, dist, err := NearestProfile(graph.ComputeStats(ds))
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != name {
			t.Fatalf("stats of %s matched %s (dist %.3f)", name, p.Name, dist)
		}
	}
}

// Matching is robust to realisation noise: a different generator seed
// produces a slightly different instance of the same profile, which
// must still match its own profile.
func TestNearestProfileOtherSeed(t *testing.T) {
	for _, name := range []string{"tiny", "arxiv-sim", "reddit-sim"} {
		ds, err := Build(name, 17)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := NearestProfile(graph.ComputeStats(ds))
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != name {
			t.Fatalf("%s (seed 17) matched %s", name, got.Name)
		}
	}
}

// The matcher is size-aware: scaling tiny up moderately keeps it far
// below every paper profile, so it stays matched to tiny, while a
// heavily scaled mid-size profile may legitimately migrate to the
// profile whose size it has grown into.
func TestNearestProfileScaledInstance(t *testing.T) {
	p, err := Get("tiny")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := graph.Build(p.Spec.Scale(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := NearestProfile(graph.ComputeStats(ds))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "tiny" {
		t.Fatalf("tiny@x4 matched %s", got.Name)
	}
}

func TestNearestProfileRejectsEmptyStats(t *testing.T) {
	if _, _, err := NearestProfile(graph.Stats{}); err == nil {
		t.Fatal("empty stats accepted")
	}
}
