//go:build !race

package datasets

const raceEnabled = false
