// Package datasets makes the training workload a first-class, loadable
// artifact. It provides a named registry of paper-matched synthetic
// workload profiles — scaled stand-ins for the graphs of the paper's
// Table III — and resolution helpers that turn a registry name or an
// .argograph file path into a materialised graph.Dataset. Together with
// the binary store in internal/graph this lets a graph be generated once
// (cmd/argo-data) and reloaded in milliseconds by every cmd and test
// thereafter.
package datasets

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"argo/internal/graph"
)

// Profile is one registry entry: a human-readable description plus the
// full dataset specification (paper-scale statistics and scaled
// synthetic-instance parameters).
type Profile struct {
	Name        string
	Description string
	Spec        graph.DatasetSpec
}

// registry lists the workload profiles in paper (Table III) order, with
// `tiny` first as the test workload. The *-sim names are the sized-down
// synthetic stand-ins; their Paper stats carry the full-scale numbers the
// platform simulator consumes.
var registry = []Profile{
	{
		Name:        "tiny",
		Description: "minimal planted-community graph for tests and demos",
		Spec: graph.DatasetSpec{
			Name:        "tiny",
			Paper:       graph.PaperStats{Vertices: 120, Edges: 480, F0: 16, F1: 8, F2: 3},
			ScaledNodes: 120, ScaledEdges: 480,
			ScaledF0: 16, ScaledHidden: 8, ScaledClasses: 3,
			Homophily: 0.7, Exponent: 2.1, TrainFrac: 0.5,
		},
	},
	{
		Name:        "flickr-sim",
		Description: "scaled stand-in for Flickr (89k nodes, 900k edges)",
	},
	{
		Name:        "arxiv-sim",
		Description: "scaled stand-in for ogbn-arxiv (169k nodes, 1.2M edges)",
		Spec: graph.DatasetSpec{
			Name:        "ogbn-arxiv",
			Paper:       graph.PaperStats{Vertices: 169_343, Edges: 1_166_243, F0: 128, F1: 128, F2: 40},
			ScaledNodes: 2_000, ScaledEdges: 26_000,
			ScaledF0: 64, ScaledHidden: 32, ScaledClasses: 10,
			Homophily: 0.65, Exponent: 2.3, TrainFrac: 0.54,
		},
	},
	{
		Name:        "reddit-sim",
		Description: "scaled stand-in for Reddit (233k nodes, 11.6M edges)",
	},
	{
		Name:        "products-sim",
		Description: "scaled stand-in for ogbn-products (2.4M nodes, 61.9M edges)",
	},
	{
		Name:        "papers100m-sim",
		Description: "scaled stand-in for ogbn-papers100M (111M nodes, 1.6B edges)",
	},
}

// The four datasets already specified in graph.Registry keep a single
// source of truth there; the registry above only aliases them under the
// *-sim profile names.
var graphAliases = map[string]string{
	"flickr-sim":     "flickr",
	"reddit-sim":     "reddit",
	"products-sim":   "ogbn-products",
	"papers100m-sim": "ogbn-papers100M",
}

func init() {
	for i := range registry {
		if base, ok := graphAliases[registry[i].Name]; ok {
			spec, err := graph.Spec(base)
			if err != nil {
				panic(err) // the alias table names a missing graph registry entry
			}
			registry[i].Spec = spec
		}
	}
}

// Names returns the registered profile names in registry order (tiny
// first, then the paper's Table III order).
func Names() []string {
	out := make([]string, len(registry))
	for i, p := range registry {
		out[i] = p.Name
	}
	return out
}

// PaperNames returns the profiles that stand in for the paper's
// benchmark datasets — everything except tiny — in registry order.
func PaperNames() []string {
	var out []string
	for _, p := range registry {
		if p.Name != "tiny" {
			out = append(out, p.Name)
		}
	}
	return out
}

// Get returns the profile registered under name. Legacy graph-registry
// names ("flickr", "ogbn-products", …) resolve too, so older scripts keep
// working. A "@xN" suffix (the provenance syntax Scale stamps on stored
// specs) resolves to the base profile scaled N×: "arxiv-sim@x16" is
// arxiv-sim with 16× the nodes and edges at the same degree
// distribution — the knob for workloads where frontier size relative to
// the graph matters (e.g. cache-locality benchmarks) without a
// pre-materialised store.
func Get(name string) (Profile, error) {
	base, factor := splitScale(name)
	for _, p := range registry {
		if p.Name == base {
			return p.scaled(factor), nil
		}
	}
	if spec, err := graph.Spec(base); err == nil {
		return Profile{Name: base, Description: "graph registry entry", Spec: spec}.scaled(factor), nil
	}
	known := append(Names(), legacyNames()...)
	sort.Strings(known)
	return Profile{}, fmt.Errorf("datasets: unknown profile %q (registered: %s, optionally with a @xN scale suffix)", name, strings.Join(known, ", "))
}

// splitScale parses a trailing "@xN" (N ≥ 2) off a profile name. Names
// without one — including file paths, which fall through Get unchanged —
// return factor 1.
func splitScale(name string) (string, int) {
	i := strings.LastIndex(name, "@x")
	if i < 0 {
		return name, 1
	}
	var factor int
	if _, err := fmt.Sscanf(name[i+2:], "%d", &factor); err != nil || factor < 2 ||
		fmt.Sprintf("%s@x%d", name[:i], factor) != name {
		return name, 1
	}
	return name[:i], factor
}

func (p Profile) scaled(factor int) Profile {
	if factor <= 1 {
		return p
	}
	p.Spec = p.Spec.Scale(factor)
	p.Name = fmt.Sprintf("%s@x%d", p.Name, factor)
	p.Description = fmt.Sprintf("%s, scaled %d×", p.Description, factor)
	return p
}

func legacyNames() []string {
	var out []string
	for _, s := range graph.Registry {
		out = append(out, s.Name)
	}
	return out
}

// Build materialises the named profile's scaled synthetic instance with
// the given seed.
func Build(name string, seed int64) (*graph.Dataset, error) {
	p, err := Get(name)
	if err != nil {
		return nil, err
	}
	return graph.Build(p.Spec, seed)
}

// LoadMode selects how a stored workload is brought into memory.
type LoadMode int

const (
	// LoadAuto picks by file size: stores at or above
	// LazyAutoThresholdBytes stay lazy (sections materialise on first
	// use, mmap-backed on linux), smaller ones are decoded eagerly.
	LoadAuto LoadMode = iota
	// LoadEager materialises and validates every section up front.
	LoadEager
	// LoadLazy defers every section until a consumer asks for it.
	LoadLazy
)

// LazyAutoThresholdBytes is the LoadAuto cutover: below it an eager
// decode costs single-digit milliseconds and buys full up-front
// validation; above it lazy opening keeps peak memory proportional to
// the sections actually touched.
const LazyAutoThresholdBytes = 32 << 20

// ParseLoadMode parses a -lazy flag value: auto, on (or lazy), off (or
// eager).
func ParseLoadMode(s string) (LoadMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return LoadAuto, nil
	case "on", "lazy", "true":
		return LoadLazy, nil
	case "off", "eager", "false":
		return LoadEager, nil
	}
	return LoadAuto, fmt.Errorf("datasets: bad -lazy value %q (auto, on, off)", s)
}

// Resolve turns a registry name or an .argograph file path into a
// materialised dataset: names are generated with the given seed, paths
// are loaded from the binary store (the seed is ignored — the stored
// graph is already materialised).
func Resolve(nameOrPath string, seed int64) (*graph.Dataset, error) {
	return ResolveWith(nameOrPath, seed, LoadAuto)
}

// ResolveWith is Resolve with an explicit load mode for path workloads.
// The returned dataset is always fully materialised; the mode decides
// whether a v2 store is decoded eagerly or section-by-section off an
// mmap while assembling it.
func ResolveWith(nameOrPath string, seed int64, mode LoadMode) (*graph.Dataset, error) {
	lz, err := ResolveLazy(nameOrPath, seed, mode)
	if err != nil {
		return nil, err
	}
	defer lz.Close()
	return lz.Dataset()
}

// ResolveLazy turns a registry name or an .argograph path into a
// LazyDataset handle. Names are generated with the given seed and
// wrapped (already materialised); paths are opened through the v2 lazy
// reader, so spec and stats are available immediately and topology-only
// consumers never pay for feature bytes. With LoadEager (or LoadAuto on
// a small file) every section is materialised and validated before the
// handle is returned. The caller owns the handle and must Close it.
func ResolveLazy(nameOrPath string, seed int64, mode LoadMode) (*graph.LazyDataset, error) {
	p, gerr := Get(nameOrPath)
	if gerr == nil {
		d, err := graph.Build(p.Spec, seed)
		if err != nil {
			return nil, err
		}
		return graph.LazyFromDataset(d), nil
	}
	fi, serr := os.Stat(nameOrPath)
	if serr != nil {
		return nil, fmt.Errorf("%w; and no such file: %v", gerr, serr)
	}
	lz, err := graph.OpenLazy(nameOrPath)
	if err != nil {
		return nil, err
	}
	if mode == LoadEager || (mode == LoadAuto && fi.Size() < LazyAutoThresholdBytes) {
		if _, err := lz.Dataset(); err != nil {
			lz.Close()
			return nil, err
		}
	}
	return lz, nil
}

// ResolveSpec returns just the dataset specification for a registry name
// or an .argograph path — what the platform simulator consumes when no
// materialised graph is needed. For paths only the store's spec section
// (v2) or spec prefix (v1) is read (graph.LoadSpec), so arbitrarily
// large stores resolve in microseconds.
func ResolveSpec(nameOrPath string) (graph.DatasetSpec, error) {
	return ResolveSpecMode(nameOrPath, LoadAuto)
}

// ResolveSpecMode is ResolveSpec with an explicit load mode. LoadEager
// forces a path workload through a full load — every checksum and
// structural invariant verified — before its spec is trusted; the other
// modes stay on the metadata-only fast path.
func ResolveSpecMode(nameOrPath string, mode LoadMode) (graph.DatasetSpec, error) {
	p, gerr := Get(nameOrPath)
	if gerr == nil {
		return p.Spec, nil
	}
	if _, serr := os.Stat(nameOrPath); serr != nil {
		return graph.DatasetSpec{}, fmt.Errorf("%w; and no such file: %v", gerr, serr)
	}
	if mode == LoadEager {
		ds, err := graph.LoadDataset(nameOrPath)
		if err != nil {
			return graph.DatasetSpec{}, err
		}
		return ds.Spec, nil
	}
	return graph.LoadSpec(nameOrPath)
}
