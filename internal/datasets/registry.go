// Package datasets makes the training workload a first-class, loadable
// artifact. It provides a named registry of paper-matched synthetic
// workload profiles — scaled stand-ins for the graphs of the paper's
// Table III — and resolution helpers that turn a registry name or an
// .argograph file path into a materialised graph.Dataset. Together with
// the binary store in internal/graph this lets a graph be generated once
// (cmd/argo-data) and reloaded in milliseconds by every cmd and test
// thereafter.
package datasets

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"argo/internal/graph"
)

// Profile is one registry entry: a human-readable description plus the
// full dataset specification (paper-scale statistics and scaled
// synthetic-instance parameters).
type Profile struct {
	Name        string
	Description string
	Spec        graph.DatasetSpec
}

// registry lists the workload profiles in paper (Table III) order, with
// `tiny` first as the test workload. The *-sim names are the sized-down
// synthetic stand-ins; their Paper stats carry the full-scale numbers the
// platform simulator consumes.
var registry = []Profile{
	{
		Name:        "tiny",
		Description: "minimal planted-community graph for tests and demos",
		Spec: graph.DatasetSpec{
			Name:        "tiny",
			Paper:       graph.PaperStats{Vertices: 120, Edges: 480, F0: 16, F1: 8, F2: 3},
			ScaledNodes: 120, ScaledEdges: 480,
			ScaledF0: 16, ScaledHidden: 8, ScaledClasses: 3,
			Homophily: 0.7, Exponent: 2.1, TrainFrac: 0.5,
		},
	},
	{
		Name:        "flickr-sim",
		Description: "scaled stand-in for Flickr (89k nodes, 900k edges)",
	},
	{
		Name:        "arxiv-sim",
		Description: "scaled stand-in for ogbn-arxiv (169k nodes, 1.2M edges)",
		Spec: graph.DatasetSpec{
			Name:        "ogbn-arxiv",
			Paper:       graph.PaperStats{Vertices: 169_343, Edges: 1_166_243, F0: 128, F1: 128, F2: 40},
			ScaledNodes: 2_000, ScaledEdges: 26_000,
			ScaledF0: 64, ScaledHidden: 32, ScaledClasses: 10,
			Homophily: 0.65, Exponent: 2.3, TrainFrac: 0.54,
		},
	},
	{
		Name:        "reddit-sim",
		Description: "scaled stand-in for Reddit (233k nodes, 11.6M edges)",
	},
	{
		Name:        "products-sim",
		Description: "scaled stand-in for ogbn-products (2.4M nodes, 61.9M edges)",
	},
	{
		Name:        "papers100m-sim",
		Description: "scaled stand-in for ogbn-papers100M (111M nodes, 1.6B edges)",
	},
}

// The four datasets already specified in graph.Registry keep a single
// source of truth there; the registry above only aliases them under the
// *-sim profile names.
var graphAliases = map[string]string{
	"flickr-sim":     "flickr",
	"reddit-sim":     "reddit",
	"products-sim":   "ogbn-products",
	"papers100m-sim": "ogbn-papers100M",
}

func init() {
	for i := range registry {
		if base, ok := graphAliases[registry[i].Name]; ok {
			spec, err := graph.Spec(base)
			if err != nil {
				panic(err) // the alias table names a missing graph registry entry
			}
			registry[i].Spec = spec
		}
	}
}

// Names returns the registered profile names in registry order (tiny
// first, then the paper's Table III order).
func Names() []string {
	out := make([]string, len(registry))
	for i, p := range registry {
		out[i] = p.Name
	}
	return out
}

// PaperNames returns the profiles that stand in for the paper's
// benchmark datasets — everything except tiny — in registry order.
func PaperNames() []string {
	var out []string
	for _, p := range registry {
		if p.Name != "tiny" {
			out = append(out, p.Name)
		}
	}
	return out
}

// Get returns the profile registered under name. Legacy graph-registry
// names ("flickr", "ogbn-products", …) resolve too, so older scripts keep
// working.
func Get(name string) (Profile, error) {
	for _, p := range registry {
		if p.Name == name {
			return p, nil
		}
	}
	if spec, err := graph.Spec(name); err == nil {
		return Profile{Name: name, Description: "graph registry entry", Spec: spec}, nil
	}
	known := append(Names(), legacyNames()...)
	sort.Strings(known)
	return Profile{}, fmt.Errorf("datasets: unknown profile %q (registered: %s)", name, strings.Join(known, ", "))
}

func legacyNames() []string {
	var out []string
	for _, s := range graph.Registry {
		out = append(out, s.Name)
	}
	return out
}

// Build materialises the named profile's scaled synthetic instance with
// the given seed.
func Build(name string, seed int64) (*graph.Dataset, error) {
	p, err := Get(name)
	if err != nil {
		return nil, err
	}
	return graph.Build(p.Spec, seed)
}

// Resolve turns a registry name or an .argograph file path into a
// materialised dataset: names are generated with the given seed, paths
// are loaded from the binary store (the seed is ignored — the stored
// graph is already materialised).
func Resolve(nameOrPath string, seed int64) (*graph.Dataset, error) {
	p, gerr := Get(nameOrPath)
	if gerr == nil {
		return graph.Build(p.Spec, seed)
	}
	if _, serr := os.Stat(nameOrPath); serr != nil {
		return nil, fmt.Errorf("%w; and no such file: %v", gerr, serr)
	}
	return graph.LoadDataset(nameOrPath)
}

// ResolveSpec returns just the dataset specification for a registry name
// or an .argograph path — what the platform simulator consumes when no
// materialised graph is needed. For paths only the store's spec header
// is read (graph.LoadSpec), so arbitrarily large stores resolve in
// microseconds.
func ResolveSpec(nameOrPath string) (graph.DatasetSpec, error) {
	p, gerr := Get(nameOrPath)
	if gerr == nil {
		return p.Spec, nil
	}
	if _, serr := os.Stat(nameOrPath); serr != nil {
		return graph.DatasetSpec{}, fmt.Errorf("%w; and no such file: %v", gerr, serr)
	}
	return graph.LoadSpec(nameOrPath)
}
