package datasets

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"argo/internal/graph"
)

func TestParseLoadMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want LoadMode
		ok   bool
	}{
		{"auto", LoadAuto, true},
		{"", LoadAuto, true},
		{"on", LoadLazy, true},
		{"lazy", LoadLazy, true},
		{"off", LoadEager, true},
		{"eager", LoadEager, true},
		{"ON", LoadLazy, true},
		{"sometimes", LoadAuto, false},
	} {
		got, err := ParseLoadMode(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseLoadMode(%q) = %v, %v", tc.in, got, err)
		}
	}
}

// The acceptance scenario: the tiny profile written at -scale 100 opens
// via the lazy path with work proportional to the sections touched —
// spec and stats are served from the store prefix, and topology-only
// loads never materialise the (much larger) feature section.
func TestScaledProfileOpensLazily(t *testing.T) {
	p, err := Get("tiny")
	if err != nil {
		t.Fatal(err)
	}
	spec := p.Spec.Scale(100)
	if spec.ScaledNodes != p.Spec.ScaledNodes*100 || spec.ScaledEdges != p.Spec.ScaledEdges*100 {
		t.Fatalf("Scale(100): %d nodes, %d edges", spec.ScaledNodes, spec.ScaledEdges)
	}
	if spec.Name != "tiny@x100" {
		t.Fatalf("scaled name %q", spec.Name)
	}
	ds, err := graph.Build(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiny100.argograph")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}

	// Metadata resolves without touching topology or features.
	gotSpec, err := ResolveSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSpec, spec) {
		t.Fatalf("ResolveSpec = %+v", gotSpec)
	}
	st, err := graph.LoadStats(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumNodes != int64(ds.Graph.NumNodes) || st.FeatRows != ds.Features.Rows {
		t.Fatalf("stats %+v", st)
	}

	// Topology-only load — feature bytes stay untouched (the byte-level
	// proof lives in internal/graph's recording-source tests; here we
	// check the path-level API composes).
	g, err := graph.LoadCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes != ds.Graph.NumNodes {
		t.Fatalf("lazy topology %d nodes, want %d", g.NumNodes, ds.Graph.NumNodes)
	}

	// The lazy handle resolves and materialises identically to a build.
	lz, err := ResolveLazy(path, 0, LoadLazy)
	if err != nil {
		t.Fatal(err)
	}
	defer lz.Close()
	if lz.Version() != 2 {
		t.Fatalf("store version %d", lz.Version())
	}
	back, err := lz.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, back) {
		t.Fatal("scaled store did not round-trip through the lazy path")
	}
}

func TestResolveLazyRegistryName(t *testing.T) {
	lz, err := ResolveLazy("tiny", 3, LoadAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer lz.Close()
	if lz.AccessMode() != "memory" {
		t.Fatalf("registry build access mode %s", lz.AccessMode())
	}
	want, err := Build("tiny", 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lz.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("ResolveLazy(name) differs from Build(name)")
	}
}

func TestResolveWithModesAgree(t *testing.T) {
	ds, err := Build("tiny", 5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiny.argograph")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []LoadMode{LoadAuto, LoadEager, LoadLazy} {
		got, err := ResolveWith(path, 0, mode)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if !reflect.DeepEqual(ds, got) {
			t.Fatalf("mode %d materialised a different dataset", mode)
		}
	}
}

// LoadEager is the trust-nothing mode: a store whose feature section is
// corrupt resolves its spec on the lazy paths (metadata sections are
// intact and individually checksummed) but fails eager resolution.
func TestResolveSpecModeEagerCatchesDeepCorruption(t *testing.T) {
	ds, err := Build("tiny", 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiny.argograph")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Feature data sits in the store's back half; flip a bit there
	// without disturbing the metadata prefix.
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ResolveSpecMode(path, LoadLazy); err != nil {
		t.Fatalf("lazy spec resolution failed on intact metadata: %v", err)
	}
	if _, err := ResolveSpecMode(path, LoadEager); err == nil {
		t.Fatal("eager spec resolution accepted a corrupt store")
	}
}
