package datasets

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"argo/internal/graph"
)

// The race-clean harness: registry lookups, profile builds, and binary
// store saves/loads hammered from many goroutines at once. The assertions
// are ordinary correctness properties; the value of the test is that it
// runs in CI under `go test -race`, so any shared mutable state sneaking
// into the registry or the store surfaces as a hard failure.
func TestConcurrentRegistryAndStoreAreRaceClean(t *testing.T) {
	dir := t.TempDir()
	base, err := Build("tiny", 1)
	if err != nil {
		t.Fatal(err)
	}
	shared := filepath.Join(dir, "shared.argograph")
	if err := base.Save(shared); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*4)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 4; iter++ {
				// Registry reads.
				if _, err := Get(Names()[iter%len(Names())]); err != nil {
					errs <- err
					return
				}
				// Concurrent loads of one shared store.
				got, err := graph.LoadDataset(shared)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, base) {
					errs <- fmt.Errorf("worker %d: concurrent load diverged", w)
					return
				}
				// Concurrent builds + saves to distinct paths.
				ds, err := Build("tiny", int64(w))
				if err != nil {
					errs <- err
					return
				}
				if err := ds.Save(filepath.Join(dir, fmt.Sprintf("w%d.argograph", w))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Concurrent saves to the SAME path must never leave a torn store behind:
// the atomic temp-file-plus-rename protocol guarantees readers always see
// one complete, checksum-valid dataset.
func TestConcurrentSaveSamePathStaysReadable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "contended.argograph")
	a, err := Build("tiny", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build("tiny", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ds := a
			if w%2 == 1 {
				ds = b
			}
			for i := 0; i < 3; i++ {
				if err := ds.Save(path); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			got, err := graph.LoadDataset(path)
			if err != nil {
				errs <- fmt.Errorf("reader saw a torn store: %w", err)
				return
			}
			if !reflect.DeepEqual(got, a) && !reflect.DeepEqual(got, b) {
				errs <- fmt.Errorf("reader saw a dataset that was never written")
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
