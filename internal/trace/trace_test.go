package trace

import (
	"strings"
	"testing"
)

func sampleTimeline() *Timeline {
	tl := &Timeline{}
	tl.Add(Event{Proc: 0, Actor: "trainer", Phase: "gather", Start: 0, End: 1})
	tl.Add(Event{Proc: 0, Actor: "trainer", Phase: "dense", Start: 1, End: 3})
	tl.Add(Event{Proc: 1, Actor: "trainer", Phase: "gather", Start: 2, End: 4})
	tl.Add(Event{Proc: 0, Actor: "sampler", Phase: "sample", Start: 0, End: 2})
	return tl
}

func TestDuration(t *testing.T) {
	tl := sampleTimeline()
	if tl.Duration() != 4 {
		t.Fatalf("Duration = %v, want 4", tl.Duration())
	}
	empty := &Timeline{}
	if empty.Duration() != 0 {
		t.Fatal("empty timeline has zero duration")
	}
}

func TestRenderContainsLanes(t *testing.T) {
	out := sampleTimeline().Render(40)
	for _, want := range []string{"P0 trainer", "P0 sampler", "P1 trainer", "M", "c", "s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 4 { // header + 3 lanes
		t.Fatalf("expected 4 lines, got %d:\n%s", lines, out)
	}
}

func TestRenderEmpty(t *testing.T) {
	out := (&Timeline{}).Render(40)
	if !strings.Contains(out, "empty") {
		t.Fatalf("unexpected empty render: %q", out)
	}
}

func TestRenderShortEventStillVisible(t *testing.T) {
	tl := &Timeline{}
	tl.Add(Event{Proc: 0, Actor: "trainer", Phase: "dense", Start: 0, End: 100})
	tl.Add(Event{Proc: 0, Actor: "trainer", Phase: "sync", Start: 100, End: 100.0001})
	out := tl.Render(50)
	if !strings.Contains(out, "|") {
		t.Fatalf("tiny sync event must still render:\n%s", out)
	}
}

func TestBusyFraction(t *testing.T) {
	tl := &Timeline{}
	tl.Add(Event{Proc: 0, Actor: "trainer", Phase: "gather", Start: 0, End: 1})
	tl.Add(Event{Proc: 1, Actor: "trainer", Phase: "gather", Start: 0.5, End: 1.5})
	tl.Add(Event{Proc: 0, Actor: "trainer", Phase: "dense", Start: 1.5, End: 4})
	// Memory busy: union [0, 1.5] of 4.0 total.
	got := tl.BusyFraction(map[string]bool{"gather": true})
	if got < 0.37 || got > 0.38 {
		t.Fatalf("BusyFraction = %v, want 0.375", got)
	}
	if tl.BusyFraction(map[string]bool{}) != 0 {
		t.Fatal("no phases selected ⇒ zero busy fraction")
	}
}

func TestBusyFractionEmptyTimeline(t *testing.T) {
	if (&Timeline{}).BusyFraction(MemoryPhases) != 0 {
		t.Fatal("empty timeline busy fraction must be 0")
	}
}
