// Package trace records execution timelines from the platform simulator
// and renders them as ASCII Gantt charts — the reproduction of the paper's
// Fig. 2 time-traces (single process vs. two overlapped processes).
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Event is one phase execution on one actor's lane.
type Event struct {
	Proc  int     // process index
	Actor string  // "sampler" or "trainer"
	Phase string  // "sample", "gather", "aggregate", "dense", "backward", "sync"
	Start float64 // seconds
	End   float64
}

// Timeline accumulates events.
type Timeline struct {
	Events []Event
}

// Add appends an event.
func (tl *Timeline) Add(e Event) { tl.Events = append(tl.Events, e) }

// Duration returns the latest event end time.
func (tl *Timeline) Duration() float64 {
	var max float64
	for _, e := range tl.Events {
		if e.End > max {
			max = e.End
		}
	}
	return max
}

// phaseGlyph maps phases to the single characters used in the chart.
// Memory-intensive phases use dense glyphs, compute uses light ones, so
// the Fig. 2 alternation is visible at a glance.
var phaseGlyph = map[string]byte{
	"sample":    's',
	"gather":    'M', // memory access
	"aggregate": 'm', // memory + some compute
	"dense":     'c', // compute
	"backward":  'b',
	"sync":      '|',
}

// MemoryPhases lists the phases the paper classifies as memory-intensive.
var MemoryPhases = map[string]bool{"sample": false, "gather": true, "aggregate": true}

// Render draws one text lane per (process, actor), `width` characters
// spanning the full timeline duration.
func (tl *Timeline) Render(width int) string {
	if len(tl.Events) == 0 {
		return "(empty timeline)\n"
	}
	dur := tl.Duration()
	if dur <= 0 {
		return "(zero-length timeline)\n"
	}
	type laneKey struct {
		proc  int
		actor string
	}
	lanes := map[laneKey][]byte{}
	var keys []laneKey
	for _, e := range tl.Events {
		k := laneKey{e.Proc, e.Actor}
		if _, ok := lanes[k]; !ok {
			row := make([]byte, width)
			for i := range row {
				row[i] = '.'
			}
			lanes[k] = row
			keys = append(keys, k)
		}
		lo := int(e.Start / dur * float64(width))
		hi := int(e.End / dur * float64(width))
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		g := phaseGlyph[e.Phase]
		if g == 0 {
			g = '?'
		}
		row := lanes[k]
		for i := lo; i < hi; i++ {
			row[i] = g
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].proc != keys[j].proc {
			return keys[i].proc < keys[j].proc
		}
		return keys[i].actor < keys[j].actor
	})
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %.3fs  (s=sample M=gather m=aggregate c=dense b=backward |=sync)\n", dur)
	for _, k := range keys {
		fmt.Fprintf(&b, "P%d %-8s %s\n", k.proc, k.actor, lanes[k])
	}
	return b.String()
}

// BusyFraction returns the fraction of the timeline during which at least
// one event with a phase in the given set is running — e.g. how busy the
// memory system is across all processes (the Fig. 2 utilization argument).
func (tl *Timeline) BusyFraction(phases map[string]bool) float64 {
	dur := tl.Duration()
	if dur <= 0 {
		return 0
	}
	type edge struct {
		t     float64
		delta int
	}
	var edges []edge
	for _, e := range tl.Events {
		if !phases[e.Phase] {
			continue
		}
		edges = append(edges, edge{e.Start, 1}, edge{e.End, -1})
	}
	if len(edges) == 0 {
		return 0
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].t < edges[j].t })
	var busy, last float64
	depth := 0
	for _, ed := range edges {
		if depth > 0 {
			busy += ed.t - last
		}
		last = ed.t
		depth += ed.delta
	}
	return busy / dur
}
