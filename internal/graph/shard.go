package graph

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"sort"

	"argo/internal/tensor"
)

// A shard set splits one dataset into k .argograph v2 stores, one per
// graph partition, so a distributed trainer can map only the shards its
// replicas own. Each shard is an ordinary v2 dataset store over its
// *local* node space — owned nodes first (ascending global id), then
// the 1-hop halo (ghost) nodes its cut edges reference — carrying local
// CSR, features (halo rows cached, HyScale-GNN style), labels, splits,
// and a stats section whose Shard field records the halo and degree
// profile. Two extra sections ride the extensible v2 table without a
// version bump:
//
//   - shardmap (id 7, every shard): the binary local↔global node map
//     plus the global ranks of the shard's split entries, which is what
//     makes reassembly exact (including split *order*, so a sharded
//     training run shuffles identically to a single-store one);
//   - manifest (id 8, shard 0 only): the ShardManifest JSON mapping
//     global node ranges to shards and summarising per-shard halo
//     edges.
//
// A reader that predates these sections still verifies (CRC-only) and
// loads every shard as a plain dataset store; that forward-compat
// promise is pinned by TestUnknownSectionForwardCompat.

// ShardManifest describes a shard set: the global shape, the owner of
// every global node id (as run-length ranges), and one entry per shard.
// It is stored as JSON in the manifest section of shard 0.
type ShardManifest struct {
	Version    int    `json:"version"` // manifest schema version, 1
	Base       string `json:"base"`    // shard file basename stem
	K          int    `json:"k"`
	NumNodes   int64  `json:"num_nodes"`
	NumArcs    int64  `json:"num_arcs"`
	NumClasses int    `json:"num_classes"`
	FeatDim    int    `json:"feat_dim"`
	// FeatDtype is the set-wide feature encoding ("fp16", or empty for
	// fp32 so pre-dtype manifests are byte-unchanged). Every shard store
	// carries the same dtype; it is also what the exchange layer
	// negotiates its wire encoding from.
	FeatDtype   string       `json:"feat_dtype,omitempty"`
	TrainCount  int          `json:"train_count"`
	ValCount    int          `json:"val_count"`
	TestCount   int          `json:"test_count"`
	Partitioner string       `json:"partitioner"`
	Seed        int64        `json:"seed"`
	Spec        DatasetSpec  `json:"spec"` // the global dataset's spec
	Shards      []ShardEntry `json:"shards"`
	// Runs maps global node ranges to their owning shard: ascending,
	// contiguous, covering [0, NumNodes) exactly.
	Runs []OwnerRun `json:"runs"`
}

// ShardEntry summarises one shard of the set.
type ShardEntry struct {
	Index   int    `json:"index"`
	File    string `json:"file"` // relative to the manifest store's directory
	Owned   int    `json:"owned"`
	Halo    int    `json:"halo"`
	Arcs    int64  `json:"arcs"`     // arcs stored (all neighbours of owned nodes)
	CutArcs int64  `json:"cut_arcs"` // arcs from owned nodes to halo nodes
	Train   int    `json:"train"`
	Val     int    `json:"val"`
	Test    int    `json:"test"`
}

// OwnerRun assigns the global node range [Start, Start+Count) to Shard.
type OwnerRun struct {
	Start int64 `json:"start"`
	Count int64 `json:"count"`
	Shard int   `json:"shard"`
}

// manifestVersion is the current ShardManifest schema version.
const manifestVersion = 1

// Validate checks the manifest's internal consistency: shard entries
// and owner runs present, runs ascending/contiguous/covering, every
// run's shard in range, and per-shard owned counts matching the runs.
func (m *ShardManifest) Validate() error {
	if m.Version != manifestVersion {
		return fmt.Errorf("graph: shard manifest schema version %d (supported: %d)", m.Version, manifestVersion)
	}
	if m.K < 1 || len(m.Shards) != m.K {
		return fmt.Errorf("graph: manifest declares k=%d but lists %d shards", m.K, len(m.Shards))
	}
	if m.NumNodes < 1 {
		return fmt.Errorf("graph: manifest covers %d nodes", m.NumNodes)
	}
	files := make(map[string]bool, m.K)
	for i, e := range m.Shards {
		if e.Index != i {
			return fmt.Errorf("graph: shard entry %d has index %d", i, e.Index)
		}
		if e.File == "" {
			return fmt.Errorf("graph: shard %d has no file name", i)
		}
		if files[e.File] {
			return fmt.Errorf("graph: shard file %q listed twice", e.File)
		}
		files[e.File] = true
	}
	owned := make([]int64, m.K)
	next := int64(0)
	for _, r := range m.Runs {
		if r.Shard < 0 || r.Shard >= m.K {
			return fmt.Errorf("graph: owner run [%d,+%d) names shard %d of %d", r.Start, r.Count, r.Shard, m.K)
		}
		if r.Count < 1 {
			return fmt.Errorf("graph: empty owner run at %d", r.Start)
		}
		if r.Start != next {
			return fmt.Errorf("graph: owner runs not contiguous: run starts at %d, want %d", r.Start, next)
		}
		next = r.Start + r.Count
		owned[r.Shard] += r.Count
	}
	if next != m.NumNodes {
		return fmt.Errorf("graph: owner runs cover %d of %d nodes", next, m.NumNodes)
	}
	for i, e := range m.Shards {
		if owned[i] != int64(e.Owned) {
			return fmt.Errorf("graph: shard %d owns %d nodes per runs, entry says %d", i, owned[i], e.Owned)
		}
	}
	return nil
}

// Owner returns the shard owning global node v.
func (m *ShardManifest) Owner(v NodeID) (int, error) {
	if v < 0 || int64(v) >= m.NumNodes {
		return 0, fmt.Errorf("graph: node %d outside [0,%d)", v, m.NumNodes)
	}
	i := sort.Search(len(m.Runs), func(i int) bool { return m.Runs[i].Start > int64(v) }) - 1
	if i < 0 || int64(v) >= m.Runs[i].Start+m.Runs[i].Count {
		return 0, fmt.Errorf("graph: node %d not covered by owner runs", v)
	}
	return m.Runs[i].Shard, nil
}

// TotalCutArcs sums the per-shard cut-arc counts — the shard set's
// whole edge cut, the upper bound on distinct halo rows any exchange
// over this set can move per epoch.
func (m *ShardManifest) TotalCutArcs() int64 {
	var cut int64
	for _, e := range m.Shards {
		cut += e.CutArcs
	}
	return cut
}

// EdgeCutFraction is the edge cut as a fraction of all arcs (0 when the
// manifest records no arcs).
func (m *ShardManifest) EdgeCutFraction() float64 {
	if m.NumArcs == 0 {
		return 0
	}
	return float64(m.TotalCutArcs()) / float64(m.NumArcs)
}

// ReplicaCutArcs aggregates the per-shard cut-arc counts onto numProcs
// training replicas under the engine's shard→replica mapping (shard s
// belongs to replica s mod numProcs) — the exchange planner's cost
// input: replica r's entry bounds the foreign rows its gathers can
// reference.
func (m *ShardManifest) ReplicaCutArcs(numProcs int) []int64 {
	if numProcs < 1 {
		return nil
	}
	out := make([]int64, numProcs)
	for s, e := range m.Shards {
		out[s%numProcs] += e.CutArcs
	}
	return out
}

// ownerRuns run-length-encodes a partition assignment.
func ownerRuns(assign []int32) []OwnerRun {
	var runs []OwnerRun
	for v := 0; v < len(assign); v++ {
		s := int(assign[v])
		if n := len(runs); n > 0 && runs[n-1].Shard == s {
			runs[n-1].Count++
			continue
		}
		runs = append(runs, OwnerRun{Start: int64(v), Count: 1, Shard: s})
	}
	return runs
}

// ShardMap is the decoded shardmap section of one shard: the shard's
// local↔global node mapping and the global positions of its split
// entries. Local node l is Owned[l] for l < len(Owned) and
// Halo[l-len(Owned)] otherwise; both lists are ascending.
type ShardMap struct {
	Shard int
	K     int
	Owned []NodeID
	Halo  []NodeID
	// TrainRank[j] is the position of the shard's j-th train entry in
	// the global TrainIdx list (likewise Val/Test): reassembly restores
	// the exact global split order, not just its membership.
	TrainRank []int64
	ValRank   []int64
	TestRank  []int64
}

// GlobalID maps a shard-local node id to its global id.
func (sm *ShardMap) GlobalID(local NodeID) (NodeID, error) {
	if int(local) < len(sm.Owned) {
		return sm.Owned[local], nil
	}
	h := int(local) - len(sm.Owned)
	if h < len(sm.Halo) {
		return sm.Halo[h], nil
	}
	return 0, fmt.Errorf("graph: local id %d outside shard %d's %d+%d nodes", local, sm.Shard, len(sm.Owned), len(sm.Halo))
}

// LocalID maps a global node id to the shard-local id, or -1 when the
// node is neither owned nor in the halo.
func (sm *ShardMap) LocalID(global NodeID) NodeID {
	if i := sort.Search(len(sm.Owned), func(i int) bool { return sm.Owned[i] >= global }); i < len(sm.Owned) && sm.Owned[i] == global {
		return NodeID(i)
	}
	if i := sort.Search(len(sm.Halo), func(i int) bool { return sm.Halo[i] >= global }); i < len(sm.Halo) && sm.Halo[i] == global {
		return NodeID(len(sm.Owned) + i)
	}
	return -1
}

// encodeShardMap serialises the shardmap section payload.
func encodeShardMap(sm *ShardMap) []byte {
	var e enc
	e.u32(uint32(sm.Shard))
	e.u32(uint32(sm.K))
	e.u64(uint64(len(sm.Owned)))
	e.u64(uint64(len(sm.Halo)))
	e.i32s(sm.Owned)
	e.i32s(sm.Halo)
	for _, ranks := range [][]int64{sm.TrainRank, sm.ValRank, sm.TestRank} {
		e.u64(uint64(len(ranks)))
		e.i64s(ranks)
	}
	return e.buf
}

// decodeShardMapSection decodes a shardmap payload with the same
// division-only bounds discipline as the other section decoders.
func decodeShardMapSection(b []byte) (*ShardMap, error) {
	d := dec{buf: b}
	sm := &ShardMap{
		Shard: int(d.u32()),
		K:     int(d.u32()),
	}
	nOwned := int(d.u64())
	nHalo := int(d.u64())
	if d.err == nil && (nOwned < 0 || nHalo < 0 || nOwned > d.remaining()/4 || nHalo > (d.remaining()-4*nOwned)/4) {
		return nil, fmt.Errorf("graph: shardmap of %d+%d nodes exceeds section", nOwned, nHalo)
	}
	sm.Owned = d.i32s(nOwned)
	sm.Halo = d.i32s(nHalo)
	for _, ranks := range []*[]int64{&sm.TrainRank, &sm.ValRank, &sm.TestRank} {
		n := int(d.u64())
		if d.err == nil && (n < 0 || n > d.remaining()/8) {
			return nil, fmt.Errorf("graph: shardmap rank list of %d exceeds section", n)
		}
		*ranks = d.i64s(n)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("graph: %d trailing bytes in shardmap section", len(d.buf)-d.off)
	}
	return sm, nil
}

// ShardOptions configures WriteShardSet / ShardSetFromDataset.
type ShardOptions struct {
	K int
	// Partitioner selects the node-splitting strategy: "greedy" (the
	// deterministic BFS partitioner, default) or "random".
	Partitioner string
	// Seed drives the random partitioner (ignored by greedy, recorded
	// in the manifest either way).
	Seed int64
}

// partition builds the node assignment for the options.
func (o ShardOptions) partition(g *CSR) (*Partition, error) {
	if o.K < 1 {
		return nil, fmt.Errorf("graph: shard count %d", o.K)
	}
	if o.K > g.NumNodes {
		return nil, fmt.Errorf("graph: %d shards for %d nodes", o.K, g.NumNodes)
	}
	switch o.Partitioner {
	case "", "greedy":
		return GreedyPartition(g, o.K), nil
	case "random":
		return RandomPartition(g, o.K, rand.New(rand.NewSource(o.Seed))), nil
	}
	return nil, fmt.Errorf("graph: unknown partitioner %q (greedy, random)", o.Partitioner)
}

func (o ShardOptions) partitionerName() string {
	if o.Partitioner == "" {
		return "greedy"
	}
	return o.Partitioner
}

// shardBuild is one fully materialised shard before encoding.
type shardBuild struct {
	ds    *Dataset
	sm    *ShardMap
	stats Stats
}

// buildShards splits d according to p into k local datasets plus the
// manifest. It is shared by the file writer and the in-memory
// constructor, so both produce identical shard contents.
func buildShards(d *Dataset, p *Partition, opt ShardOptions, base string) ([]shardBuild, *ShardManifest, error) {
	if err := d.Validate(); err != nil {
		return nil, nil, fmt.Errorf("graph: refusing to shard invalid dataset: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	g := d.Graph
	k := p.K
	man := &ShardManifest{
		Version:     manifestVersion,
		Base:        base,
		K:           k,
		NumNodes:    int64(g.NumNodes),
		NumArcs:     g.NumEdges(),
		NumClasses:  d.NumClasses,
		FeatDim:     d.Features.Cols,
		FeatDtype:   d.FeatDtype.statsName(),
		TrainCount:  len(d.TrainIdx),
		ValCount:    len(d.ValIdx),
		TestCount:   len(d.TestIdx),
		Partitioner: opt.partitionerName(),
		Seed:        opt.Seed,
		Spec:        d.Spec,
		Runs:        ownerRuns(p.Assign),
	}

	owned := make([][]NodeID, k)
	for v := 0; v < g.NumNodes; v++ {
		s := p.Assign[v]
		owned[s] = append(owned[s], NodeID(v)) // ascending by construction
	}

	// Split membership per shard, in global-list order, with global
	// ranks recorded for exact reassembly.
	type splitRef struct {
		locals []NodeID // filled after local ids are known; holds globals first
		ranks  []int64
	}
	splits := [3][]NodeID{d.TrainIdx, d.ValIdx, d.TestIdx}
	perShard := make([][3]splitRef, k)
	for si, split := range splits {
		for rank, v := range split {
			s := p.Assign[v]
			perShard[s][si].locals = append(perShard[s][si].locals, v)
			perShard[s][si].ranks = append(perShard[s][si].ranks, int64(rank))
		}
	}

	localOf := make([]NodeID, g.NumNodes) // scratch, valid only for the current shard
	builds := make([]shardBuild, k)
	for s := 0; s < k; s++ {
		own := owned[s]
		if len(own) == 0 {
			return nil, nil, fmt.Errorf("graph: shard %d owns no nodes (lower -k or change the partitioner)", s)
		}
		// 1-hop halo: every foreign neighbour of an owned node.
		seen := make(map[NodeID]bool)
		var halo []NodeID
		var arcs, cutArcs int64
		for _, v := range own {
			for _, u := range g.Neighbors(v) {
				arcs++
				if p.Assign[u] != int32(s) {
					cutArcs++
					if !seen[u] {
						seen[u] = true
						halo = append(halo, u)
					}
				}
			}
		}
		sort.Slice(halo, func(i, j int) bool { return halo[i] < halo[j] })

		for l, v := range own {
			localOf[v] = NodeID(l)
		}
		for h, v := range halo {
			localOf[v] = NodeID(len(own) + h)
		}
		n := len(own) + len(halo)

		// Local CSR: owned rows carry their full (remapped, re-sorted)
		// adjacency; halo rows are empty — a halo node's own
		// neighbourhood lives in its owning shard.
		lg := &CSR{NumNodes: n, RowPtr: make([]int64, n+1), Col: make([]NodeID, 0, arcs)}
		for l, v := range own {
			row := make([]NodeID, 0, g.Degree(v))
			for _, u := range g.Neighbors(v) {
				row = append(row, localOf[u])
			}
			sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
			lg.Col = append(lg.Col, row...)
			lg.RowPtr[l+1] = int64(len(lg.Col))
		}
		for l := len(own); l < n; l++ {
			lg.RowPtr[l+1] = lg.RowPtr[l]
		}

		feats := tensor.New(n, d.Features.Cols)
		labels := make([]int32, n)
		fill := func(l int, v NodeID) {
			copy(feats.Row(l), d.Features.Row(int(v)))
			labels[l] = d.Labels[v]
		}
		for l, v := range own {
			fill(l, v)
		}
		for h, v := range halo {
			fill(len(own)+h, v)
		}

		sm := &ShardMap{Shard: s, K: k, Owned: own, Halo: halo}
		var localSplits [3][]NodeID
		for si := range splits {
			ref := perShard[s][si]
			locals := make([]NodeID, len(ref.locals))
			for j, v := range ref.locals {
				locals[j] = localOf[v]
			}
			localSplits[si] = locals
		}
		sm.TrainRank, sm.ValRank, sm.TestRank = perShard[s][0].ranks, perShard[s][1].ranks, perShard[s][2].ranks
		if len(localSplits[0]) == 0 {
			return nil, nil, fmt.Errorf("graph: shard %d has no training nodes (lower -k or change the partitioner/seed)", s)
		}

		spec := d.Spec
		spec.Name = fmt.Sprintf("%s#shard%d/%d", d.Spec.Name, s, k)
		sds := &Dataset{
			Spec:       spec,
			Graph:      lg,
			Features:   feats,
			FeatDtype:  d.FeatDtype,
			Labels:     labels,
			NumClasses: d.NumClasses,
			TrainIdx:   localSplits[0],
			ValIdx:     localSplits[1],
			TestIdx:    localSplits[2],
		}
		if err := sds.Validate(); err != nil {
			return nil, nil, fmt.Errorf("graph: shard %d invalid: %w", s, err)
		}
		st := ComputeStats(sds)
		st.Shard = &ShardStats{Index: s, Count: k, Owned: len(own), Halo: len(halo), CutArcs: cutArcs}
		builds[s] = shardBuild{ds: sds, sm: sm, stats: st}
		man.Shards = append(man.Shards, ShardEntry{
			Index: s, File: shardFileName(base, s), Owned: len(own), Halo: len(halo),
			Arcs: arcs, CutArcs: cutArcs,
			Train: len(localSplits[0]), Val: len(localSplits[1]), Test: len(localSplits[2]),
		})
	}
	if err := man.Validate(); err != nil {
		return nil, nil, fmt.Errorf("graph: built inconsistent manifest: %w", err)
	}
	return builds, man, nil
}

// shardFileName names shard s of a set with the given base stem.
func shardFileName(base string, s int) string {
	return fmt.Sprintf("%s.shard%d.argograph", base, s)
}

// WriteShardSet partitions d into opt.K shards and writes them under
// dir as base.shard<i>.argograph. Shard 0 additionally carries the
// manifest section and is the handle OpenShardSet takes. Writes are
// atomic per file; the encoding is canonical, so sharding the same
// dataset twice produces byte-identical files. Returns the manifest and
// the written paths, shard order.
func WriteShardSet(d *Dataset, dir, base string, opt ShardOptions) (*ShardManifest, []string, error) {
	p, err := opt.partition(d.Graph)
	if err != nil {
		return nil, nil, err
	}
	builds, man, err := buildShards(d, p, opt, base)
	if err != nil {
		return nil, nil, err
	}
	manJSON, err := json.Marshal(man)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: encoding shard manifest: %w", err)
	}
	paths := make([]string, len(builds))
	for s, b := range builds {
		extras := []section{{secShardMap, encodeShardMap(b.sm)}}
		if s == 0 {
			extras = append(extras, section{secManifest, manJSON})
		}
		st := b.stats
		raw, err := encodeDatasetV2Extra(b.ds, &st, extras)
		if err != nil {
			return nil, nil, err
		}
		path := filepath.Join(dir, man.Shards[s].File)
		if err := saveAtomic(path, func(w io.Writer) error {
			_, werr := w.Write(raw)
			return werr
		}); err != nil {
			return nil, nil, fmt.Errorf("graph: writing shard %d: %w", s, err)
		}
		paths[s] = path
	}
	return man, paths, nil
}

// ShardSet is an opened shard set: the manifest plus lazily opened
// per-shard stores. File-backed sets open each shard's store on first
// use (mmap on linux), so topology-only consumers — Validate, the
// halo-exchange planner, AssembleTopology — never touch feature bytes.
type ShardSet struct {
	Manifest ShardManifest
	dir      string
	lazies   []*LazyDataset
	maps     []*ShardMap
	inMemory bool
}

// OpenShardSet opens the shard set whose manifest-carrying store
// (shard 0, as written by WriteShardSet or `argo-data shard`) is at
// path. Sibling shard files are resolved relative to path's directory
// and opened lazily on first access. The caller must Close the set.
func OpenShardSet(path string) (*ShardSet, error) {
	lz, err := OpenLazy(path)
	if err != nil {
		return nil, err
	}
	man, ok, err := lz.ShardManifest()
	if err != nil {
		lz.Close()
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	if !ok {
		lz.Close()
		return nil, fmt.Errorf("graph: %s: not a shard-set handle (no manifest section; pass the .shard0 store)", path)
	}
	ss := &ShardSet{
		Manifest: *man,
		dir:      filepath.Dir(path),
		lazies:   make([]*LazyDataset, man.K),
		maps:     make([]*ShardMap, man.K),
	}
	// Slot the already-open handle under its manifest entry.
	base := filepath.Base(path)
	slot := -1
	for i, e := range man.Shards {
		if e.File == base {
			slot = i
			break
		}
	}
	if slot < 0 {
		lz.Close()
		return nil, fmt.Errorf("graph: %s: store is not listed in its own manifest", path)
	}
	ss.lazies[slot] = lz
	return ss, nil
}

// ShardSetFromDataset builds a shard set in memory, without touching
// disk — the path `argo-train -shards name#k` takes. The shard contents
// are identical to what WriteShardSet would store.
func ShardSetFromDataset(d *Dataset, opt ShardOptions) (*ShardSet, error) {
	p, err := opt.partition(d.Graph)
	if err != nil {
		return nil, err
	}
	base := d.Spec.Name
	if base == "" {
		base = "dataset"
	}
	builds, man, err := buildShards(d, p, opt, base)
	if err != nil {
		return nil, err
	}
	ss := &ShardSet{
		Manifest: *man,
		lazies:   make([]*LazyDataset, man.K),
		maps:     make([]*ShardMap, man.K),
		inMemory: true,
	}
	for s, b := range builds {
		ss.lazies[s] = lazyFromDatasetWithStats(b.ds, b.stats)
		ss.maps[s] = b.sm
	}
	return ss, nil
}

// K returns the number of shards in the set.
func (ss *ShardSet) K() int { return ss.Manifest.K }

// Spec returns the global dataset's spec.
func (ss *ShardSet) Spec() DatasetSpec { return ss.Manifest.Spec }

// Owner returns the shard owning global node v.
func (ss *ShardSet) Owner(v NodeID) (int, error) { return ss.Manifest.Owner(v) }

// Shard returns shard i's store, opening it lazily for file-backed
// sets. The set retains ownership; Close closes every opened shard.
func (ss *ShardSet) Shard(i int) (*LazyDataset, error) {
	if i < 0 || i >= ss.Manifest.K {
		return nil, fmt.Errorf("graph: shard %d of %d", i, ss.Manifest.K)
	}
	if ss.lazies[i] != nil {
		return ss.lazies[i], nil
	}
	lz, err := OpenLazy(filepath.Join(ss.dir, ss.Manifest.Shards[i].File))
	if err != nil {
		return nil, fmt.Errorf("graph: opening shard %d: %w", i, err)
	}
	ss.lazies[i] = lz
	return lz, nil
}

// ShardMap returns shard i's local↔global map, decoding the shardmap
// section on first use.
func (ss *ShardSet) ShardMap(i int) (*ShardMap, error) {
	if i < 0 || i >= ss.Manifest.K {
		return nil, fmt.Errorf("graph: shard %d of %d", i, ss.Manifest.K)
	}
	if ss.maps[i] != nil {
		return ss.maps[i], nil
	}
	lz, err := ss.Shard(i)
	if err != nil {
		return nil, err
	}
	b, err := lz.sectionBytes(secShardMap)
	if err != nil {
		return nil, fmt.Errorf("graph: shard %d: %w", i, err)
	}
	sm, err := decodeShardMapSection(b)
	if err != nil {
		return nil, fmt.Errorf("graph: shard %d: %w", i, err)
	}
	ss.maps[i] = sm
	return sm, nil
}

// Close closes every opened shard store.
func (ss *ShardSet) Close() error {
	var first error
	for i, lz := range ss.lazies {
		if lz == nil {
			continue
		}
		if err := lz.Close(); err != nil && first == nil {
			first = err
		}
		ss.lazies[i] = nil
	}
	return first
}

// Validate checks the shard set end to end using topology-only opens:
// the manifest itself, then every shard's map and local CSR against it
// — ownership coverage and disjointness (each global node owned by
// exactly one shard, every owned list agreeing with the manifest runs),
// halo consistency (halo nodes foreign, sorted, exactly the targets of
// the shard's cut arcs, with empty local rows), and the per-shard stats
// profile. Feature bytes are never read.
func (ss *ShardSet) Validate() error {
	m := &ss.Manifest
	if err := m.Validate(); err != nil {
		return err
	}
	for s := 0; s < m.K; s++ {
		e := m.Shards[s]
		sm, err := ss.ShardMap(s)
		if err != nil {
			return err
		}
		if sm.Shard != s || sm.K != m.K {
			return fmt.Errorf("graph: shard %d's map says shard %d of %d", s, sm.Shard, sm.K)
		}
		if len(sm.Owned) != e.Owned || len(sm.Halo) != e.Halo {
			return fmt.Errorf("graph: shard %d map has %d+%d nodes, manifest says %d+%d",
				s, len(sm.Owned), len(sm.Halo), e.Owned, e.Halo)
		}
		for j, v := range sm.Owned {
			if j > 0 && sm.Owned[j-1] >= v {
				return fmt.Errorf("graph: shard %d owned list not ascending at %d", s, j)
			}
			o, err := m.Owner(v)
			if err != nil {
				return fmt.Errorf("graph: shard %d: %w", s, err)
			}
			if o != s {
				return fmt.Errorf("graph: node %d in shard %d's owned list belongs to shard %d", v, s, o)
			}
		}
		for j, v := range sm.Halo {
			if j > 0 && sm.Halo[j-1] >= v {
				return fmt.Errorf("graph: shard %d halo list not ascending at %d", s, j)
			}
			o, err := m.Owner(v)
			if err != nil {
				return fmt.Errorf("graph: shard %d: %w", s, err)
			}
			if o == s {
				return fmt.Errorf("graph: shard %d lists owned node %d as halo", s, v)
			}
		}
		lz, err := ss.Shard(s)
		if err != nil {
			return err
		}
		if got := lz.FeatDtype().statsName(); got != m.FeatDtype {
			return fmt.Errorf("graph: shard %d stores %s features, manifest says %q",
				s, lz.FeatDtype(), m.FeatDtype)
		}
		lg, err := lz.Topology()
		if err != nil {
			return err
		}
		if lg.NumNodes != e.Owned+e.Halo {
			return fmt.Errorf("graph: shard %d CSR has %d nodes, want %d+%d", s, lg.NumNodes, e.Owned, e.Halo)
		}
		if lg.NumEdges() != e.Arcs {
			return fmt.Errorf("graph: shard %d CSR has %d arcs, manifest says %d", s, lg.NumEdges(), e.Arcs)
		}
		var cut int64
		haloTouched := make([]bool, len(sm.Halo))
		for l := 0; l < e.Owned; l++ {
			for _, u := range lg.Neighbors(NodeID(l)) {
				if int(u) >= e.Owned {
					cut++
					haloTouched[int(u)-e.Owned] = true
				}
			}
		}
		if cut != e.CutArcs {
			return fmt.Errorf("graph: shard %d has %d cut arcs, manifest says %d", s, cut, e.CutArcs)
		}
		for h := e.Owned; h < lg.NumNodes; h++ {
			if lg.Degree(NodeID(h)) != 0 {
				return fmt.Errorf("graph: shard %d halo node %d has a local adjacency row", s, h)
			}
			if !haloTouched[h-e.Owned] {
				return fmt.Errorf("graph: shard %d halo node %d (global %d) is referenced by no cut arc", s, h, sm.Halo[h-e.Owned])
			}
		}
		if st := lz.Stats(); st.Shard != nil {
			if st.Shard.Owned != e.Owned || st.Shard.Halo != e.Halo || st.Shard.CutArcs != e.CutArcs {
				return fmt.Errorf("graph: shard %d stats profile (%d/%d/%d) disagrees with manifest (%d/%d/%d)",
					s, st.Shard.Owned, st.Shard.Halo, st.Shard.CutArcs, e.Owned, e.Halo, e.CutArcs)
			}
		}
	}
	return nil
}

// AssembleTopology reconstructs the global CSR from the shards' local
// topologies and maps — topology-only opens, no feature bytes.
func (ss *ShardSet) AssembleTopology() (*CSR, error) {
	m := &ss.Manifest
	n := int(m.NumNodes)
	g := &CSR{NumNodes: n, RowPtr: make([]int64, n+1)}
	rows := make([][]NodeID, n)
	for s := 0; s < m.K; s++ {
		sm, err := ss.ShardMap(s)
		if err != nil {
			return nil, err
		}
		lz, err := ss.Shard(s)
		if err != nil {
			return nil, err
		}
		lg, err := lz.Topology()
		if err != nil {
			return nil, err
		}
		if lg.NumNodes != len(sm.Owned)+len(sm.Halo) {
			return nil, fmt.Errorf("graph: shard %d CSR and map disagree on node count", s)
		}
		for l, v := range sm.Owned {
			adj := lg.Neighbors(NodeID(l))
			row := make([]NodeID, len(adj))
			for j, u := range adj {
				gu, err := sm.GlobalID(u)
				if err != nil {
					return nil, err
				}
				row[j] = gu
			}
			sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
			if rows[v] != nil {
				return nil, fmt.Errorf("graph: node %d assembled from two shards", v)
			}
			rows[v] = row
		}
	}
	var total int64
	for v := range rows {
		total += int64(len(rows[v]))
		g.RowPtr[v+1] = total
	}
	g.Col = make([]NodeID, 0, total)
	for _, row := range rows {
		g.Col = append(g.Col, row...)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: assembled topology invalid: %w", err)
	}
	if g.NumEdges() != m.NumArcs {
		return nil, fmt.Errorf("graph: assembled %d arcs, manifest says %d", g.NumEdges(), m.NumArcs)
	}
	return g, nil
}

// assembleSplits reconstructs the global train/val/test lists in their
// original order from the shards' rank records.
func (ss *ShardSet) assembleSplits() (train, val, test []NodeID, err error) {
	m := &ss.Manifest
	out := [3][]NodeID{
		make([]NodeID, m.TrainCount),
		make([]NodeID, m.ValCount),
		make([]NodeID, m.TestCount),
	}
	filled := [3][]bool{
		make([]bool, m.TrainCount),
		make([]bool, m.ValCount),
		make([]bool, m.TestCount),
	}
	for s := 0; s < m.K; s++ {
		sm, err := ss.ShardMap(s)
		if err != nil {
			return nil, nil, nil, err
		}
		lz, err := ss.Shard(s)
		if err != nil {
			return nil, nil, nil, err
		}
		ltr, lva, lte, err := lz.Splits()
		if err != nil {
			return nil, nil, nil, err
		}
		for si, pair := range []struct {
			locals []NodeID
			ranks  []int64
		}{{ltr, sm.TrainRank}, {lva, sm.ValRank}, {lte, sm.TestRank}} {
			if len(pair.locals) != len(pair.ranks) {
				return nil, nil, nil, fmt.Errorf("graph: shard %d split %d has %d entries but %d ranks",
					s, si, len(pair.locals), len(pair.ranks))
			}
			for j, l := range pair.locals {
				gid, err := sm.GlobalID(l)
				if err != nil {
					return nil, nil, nil, err
				}
				r := pair.ranks[j]
				if r < 0 || r >= int64(len(out[si])) {
					return nil, nil, nil, fmt.Errorf("graph: shard %d split rank %d outside [0,%d)", s, r, len(out[si]))
				}
				if filled[si][r] {
					return nil, nil, nil, fmt.Errorf("graph: split rank %d assembled from two shards", r)
				}
				filled[si][r] = true
				out[si][r] = gid
			}
		}
	}
	for si := range filled {
		for r, ok := range filled[si] {
			if !ok {
				return nil, nil, nil, fmt.Errorf("graph: split %d rank %d covered by no shard", si, r)
			}
		}
	}
	return out[0], out[1], out[2], nil
}

// Skeleton reconstructs the global dataset's training scaffolding —
// topology, splits (in original order), spec, class count — without
// materialising any feature or label bytes. It is what the shard-aware
// trainer hands the engine: features and labels stay shard-resident and
// flow through the halo exchange instead.
func (ss *ShardSet) Skeleton() (*Dataset, error) {
	g, err := ss.AssembleTopology()
	if err != nil {
		return nil, err
	}
	train, val, test, err := ss.assembleSplits()
	if err != nil {
		return nil, err
	}
	dt, err := ParseFeatDtype(ss.Manifest.FeatDtype)
	if err != nil {
		return nil, err
	}
	return &Dataset{
		Spec:       ss.Manifest.Spec,
		Graph:      g,
		FeatDtype:  dt,
		NumClasses: ss.Manifest.NumClasses,
		TrainIdx:   train,
		ValIdx:     val,
		TestIdx:    test,
	}, nil
}

// AssembleDataset reconstructs the complete global dataset — the exact
// inverse of sharding. Reassembly is bit-exact: writing the assembled
// dataset produces the same bytes as writing the original.
func (ss *ShardSet) AssembleDataset() (*Dataset, error) {
	skel, err := ss.Skeleton()
	if err != nil {
		return nil, err
	}
	m := &ss.Manifest
	n := int(m.NumNodes)
	feats := tensor.New(n, m.FeatDim)
	labels := make([]int32, n)
	for s := 0; s < m.K; s++ {
		sm, err := ss.ShardMap(s)
		if err != nil {
			return nil, err
		}
		lz, err := ss.Shard(s)
		if err != nil {
			return nil, err
		}
		sf, err := lz.Features()
		if err != nil {
			return nil, err
		}
		sl, err := lz.Labels()
		if err != nil {
			return nil, err
		}
		if sf.Cols != m.FeatDim || sf.Rows < len(sm.Owned) || len(sl) < len(sm.Owned) {
			return nil, fmt.Errorf("graph: shard %d features/labels smaller than its owned set", s)
		}
		// Only owned rows are authoritative; halo rows are caches.
		for l, v := range sm.Owned {
			copy(feats.Row(int(v)), sf.Row(l))
			labels[v] = sl[l]
		}
	}
	skel.Features = feats
	skel.Labels = labels
	if err := skel.Validate(); err != nil {
		return nil, fmt.Errorf("graph: assembled dataset invalid: %w", err)
	}
	return skel, nil
}

// GlobalStats derives the global dataset's stats from the shards'
// stats sections alone — no topology or feature reads. Shard-local
// degrees of owned nodes equal their global degrees (owned rows carry
// full adjacency), so the shard histograms sum to the global one after
// removing the halo rows' zero-degree entries.
func (ss *ShardSet) GlobalStats() (Stats, error) {
	m := &ss.Manifest
	out := Stats{
		NumNodes:   m.NumNodes,
		NumArcs:    m.NumArcs,
		NumClasses: m.NumClasses,
		FeatRows:   int(m.NumNodes),
		FeatCols:   m.FeatDim,
		FeatDtype:  m.FeatDtype,
		TrainCount: m.TrainCount,
		ValCount:   m.ValCount,
		TestCount:  m.TestCount,
	}
	if m.NumNodes > 0 {
		out.AvgDegree = float64(m.NumArcs) / float64(m.NumNodes)
	}
	for s := 0; s < m.K; s++ {
		lz, err := ss.Shard(s)
		if err != nil {
			return Stats{}, err
		}
		st := lz.Stats()
		if st.MaxDegree > out.MaxDegree {
			out.MaxDegree = st.MaxDegree
		}
		for b, c := range st.DegreeHist {
			for len(out.DegreeHist) <= b {
				out.DegreeHist = append(out.DegreeHist, 0)
			}
			out.DegreeHist[b] += c
		}
		if len(out.DegreeHist) > 0 {
			out.DegreeHist[0] -= int64(m.Shards[s].Halo)
		}
	}
	for len(out.DegreeHist) > 0 && out.DegreeHist[len(out.DegreeHist)-1] == 0 {
		out.DegreeHist = out.DegreeHist[:len(out.DegreeHist)-1]
	}
	return out, nil
}

// ShardManifest decodes the manifest section, reporting ok=false when
// the store carries none (an ordinary, non-shard store).
func (l *LazyDataset) ShardManifest() (*ShardManifest, bool, error) {
	if _, found := findSection(l.sections, secManifest); !found {
		return nil, false, nil
	}
	b, err := l.sectionBytes(secManifest)
	if err != nil {
		return nil, true, err
	}
	if len(b) > maxJSONSection {
		return nil, true, fmt.Errorf("graph: manifest section of %d bytes", len(b))
	}
	var m ShardManifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, true, fmt.Errorf("graph: decoding shard manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, true, err
	}
	return &m, true, nil
}
