// Package graph provides the graph substrate for the ARGO reproduction:
// compressed sparse row (CSR) adjacency storage, synthetic power-law
// generators with planted community structure, the dataset registry that
// mirrors the paper's Table III, and graph partitioners for the data
// splitting ablation (paper §VII-A).
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a vertex. 32 bits comfortably covers every dataset the
// reproduction materialises (the full ogbn-papers100M appears only as
// analytic metadata, never as an in-memory graph).
type NodeID = int32

// CSR is a graph in compressed sparse row form. Neighbors of node v are
// Col[RowPtr[v]:RowPtr[v+1]], sorted ascending. The representation is
// directed; undirected graphs store both arc directions (see FromEdges
// with symmetrize=true).
type CSR struct {
	NumNodes int
	RowPtr   []int64
	Col      []NodeID
}

// NumEdges returns the number of stored arcs.
func (g *CSR) NumEdges() int64 { return g.RowPtr[g.NumNodes] }

// Degree returns the out-degree of v.
func (g *CSR) Degree(v NodeID) int {
	return int(g.RowPtr[v+1] - g.RowPtr[v])
}

// Neighbors returns the adjacency list of v, aliasing internal storage.
// Callers must not modify the returned slice.
func (g *CSR) Neighbors(v NodeID) []NodeID {
	return g.Col[g.RowPtr[v]:g.RowPtr[v+1]]
}

// HasEdge reports whether the arc u→v is present, via binary search.
func (g *CSR) HasEdge(u, v NodeID) bool {
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// Edge is a directed arc used by graph builders.
type Edge struct{ Src, Dst NodeID }

// FromEdges builds a CSR graph over numNodes vertices from an edge list.
// Self-loops and duplicate arcs are removed. If symmetrize is true the
// reverse of every arc is inserted as well, producing an undirected graph
// stored in both directions (the form GNN samplers consume).
func FromEdges(numNodes int, edges []Edge, symmetrize bool) (*CSR, error) {
	for _, e := range edges {
		if e.Src < 0 || int(e.Src) >= numNodes || e.Dst < 0 || int(e.Dst) >= numNodes {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.Src, e.Dst, numNodes)
		}
	}
	arcs := make([]Edge, 0, len(edges)*2)
	for _, e := range edges {
		if e.Src == e.Dst {
			continue
		}
		arcs = append(arcs, e)
		if symmetrize {
			arcs = append(arcs, Edge{e.Dst, e.Src})
		}
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].Src != arcs[j].Src {
			return arcs[i].Src < arcs[j].Src
		}
		return arcs[i].Dst < arcs[j].Dst
	})
	// Dedup in place.
	out := arcs[:0]
	for i, a := range arcs {
		if i > 0 && a == arcs[i-1] {
			continue
		}
		out = append(out, a)
	}
	arcs = out

	g := &CSR{
		NumNodes: numNodes,
		RowPtr:   make([]int64, numNodes+1),
		Col:      make([]NodeID, len(arcs)),
	}
	for _, a := range arcs {
		g.RowPtr[a.Src+1]++
	}
	for v := 0; v < numNodes; v++ {
		g.RowPtr[v+1] += g.RowPtr[v]
	}
	cursor := make([]int64, numNodes)
	copy(cursor, g.RowPtr[:numNodes])
	for _, a := range arcs {
		g.Col[cursor[a.Src]] = a.Dst
		cursor[a.Src]++
	}
	return g, nil
}

// Validate checks CSR structural invariants: monotone row pointers, sorted
// duplicate-free adjacency, in-range column indices. It is used by tests
// and the generators' self-checks.
func (g *CSR) Validate() error {
	if len(g.RowPtr) != g.NumNodes+1 {
		return fmt.Errorf("graph: RowPtr length %d, want %d", len(g.RowPtr), g.NumNodes+1)
	}
	if g.RowPtr[0] != 0 {
		return fmt.Errorf("graph: RowPtr[0] = %d", g.RowPtr[0])
	}
	for v := 0; v < g.NumNodes; v++ {
		if g.RowPtr[v+1] < g.RowPtr[v] {
			return fmt.Errorf("graph: RowPtr not monotone at %d", v)
		}
		// Bounds before slicing: Validate runs on untrusted decoded stores,
		// so an out-of-range row pointer must be an error, not a panic.
		if g.RowPtr[v+1] > int64(len(g.Col)) {
			return fmt.Errorf("graph: RowPtr[%d] = %d exceeds len(Col) %d", v+1, g.RowPtr[v+1], len(g.Col))
		}
		adj := g.Neighbors(NodeID(v))
		for i, u := range adj {
			if u < 0 || int(u) >= g.NumNodes {
				return fmt.Errorf("graph: node %d has out-of-range neighbor %d", v, u)
			}
			if i > 0 && adj[i-1] >= u {
				return fmt.Errorf("graph: node %d adjacency not sorted/unique", v)
			}
		}
	}
	if g.RowPtr[g.NumNodes] != int64(len(g.Col)) {
		return fmt.Errorf("graph: RowPtr end %d != len(Col) %d", g.RowPtr[g.NumNodes], len(g.Col))
	}
	return nil
}

// Reverse returns the transpose graph (every arc u→v becomes v→u). For
// symmetrized graphs Reverse is structurally identical to the input.
func (g *CSR) Reverse() *CSR {
	r := &CSR{
		NumNodes: g.NumNodes,
		RowPtr:   make([]int64, g.NumNodes+1),
		Col:      make([]NodeID, len(g.Col)),
	}
	for _, v := range g.Col {
		r.RowPtr[v+1]++
	}
	for v := 0; v < g.NumNodes; v++ {
		r.RowPtr[v+1] += r.RowPtr[v]
	}
	cursor := make([]int64, g.NumNodes)
	copy(cursor, r.RowPtr[:g.NumNodes])
	for u := 0; u < g.NumNodes; u++ {
		for _, v := range g.Neighbors(NodeID(u)) {
			r.Col[cursor[v]] = NodeID(u)
			cursor[v]++
		}
	}
	// Column lists built in increasing source order are already sorted.
	return r
}

// MaxDegree returns the largest out-degree in the graph.
func (g *CSR) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumNodes; v++ {
		if d := g.Degree(NodeID(v)); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the mean out-degree.
func (g *CSR) AvgDegree() float64 {
	if g.NumNodes == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(g.NumNodes)
}
