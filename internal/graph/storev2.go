package graph

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/bits"

	"argo/internal/tensor"
)

// The .argograph version-2 container: a sectioned layout that lets a
// reader materialise only the parts of a store it needs.
//
//	offset  size          field
//	0       8             magic "ARGOGRPH"
//	8       4             format version = 2
//	12      4             payload kind: 1 = Dataset, 2 = CSR
//	16      4             section count
//	20      4             CRC-32C of the section table bytes
//	24      8             total file size in bytes
//	32      32×count      section table
//	…       …             section payloads, back to back
//
// Each section-table entry is 32 bytes:
//
//	offset  size  field
//	0       4     section id (see sec* constants)
//	4       4     reserved, zero
//	8       8     section offset from the start of the file
//	16      8     section length in bytes
//	24      4     CRC-32C of the section payload
//	28      4     reserved, zero
//
// Sections are stored in ascending id order and are contiguous: the
// first starts immediately after the table and each next one starts
// exactly where the previous ended, with the last ending at the file
// size recorded in the header. Every byte of the file is therefore
// covered by exactly one checksum — the table CRC in the header or a
// section CRC in the table — so corruption anywhere is detected even by
// a reader that never decodes the damaged section's contents.
//
// The stats section (precomputed at write time, GNNAdvisor-style offline
// property extraction) gives topology- and metadata-only consumers the
// graph's shape — degree histogram, feature dims, split sizes — without
// touching the CSR or feature payloads at all.
const (
	storeVersion2 = 2

	secSpec     = 1 // DatasetSpec as JSON
	secStats    = 2 // Stats as JSON
	secCSR      = 3 // u64 numNodes, u64 numArcs, i64×(n+1) RowPtr, i32×arcs Col
	secFeatures = 4 // u64 rows, u64 cols, f32×(rows·cols) row-major
	secLabels   = 5 // u64 count, i32×count
	secSplits   = 6 // 3 × (u64 count, i32×count) train/val/test

	// Shard-set sections (PR 4). Both ride the extensible section table:
	// a reader that predates them still opens, verifies (CRC-only for the
	// ids it cannot decode), and trains from a shard store, because the
	// dataset sections above are untouched.
	secShardMap = 7 // binary local↔global node map of one shard (see ShardMap)
	secManifest = 8 // ShardManifest as JSON, carried by the manifest shard only

	// Half-precision features (PR 9). An fp16 store carries this section
	// INSTEAD of secFeatures — same u64 rows, u64 cols prefix, payload of
	// little-endian uint16 fp16 bits. The id is above the shard sections
	// so the table's strictly-ascending invariant holds with extras
	// present; old readers fail cleanly ("store has no features section")
	// rather than misdecoding, and old stores (always fp32) read
	// unchanged.
	secFeaturesF16 = 9 // u64 rows, u64 cols, u16×(rows·cols) fp16 bits, row-major

	sectionEntryLen = 32
	// A v2 store has at most a handful of known sections; a table
	// claiming more is corruption (future versions bump the format
	// version).
	maxSections = 64

	// JSON sections are small by construction; a multi-megabyte spec or
	// stats blob is a crafted store, not a real one.
	maxJSONSection = 1 << 20
)

// Sentinel errors for section-table validation. They are distinct (and
// detected before any section payload is decoded) so tooling can tell a
// structurally malformed table from ordinary payload corruption.
var (
	// ErrSectionOverlap: two section extents intersect.
	ErrSectionOverlap = errors.New("graph: .argograph section extents overlap")
	// ErrSectionBounds: a section extent runs outside the file.
	ErrSectionBounds = errors.New("graph: .argograph section extent out of bounds")
)

// Stats is the precomputed stats section of a v2 store: everything the
// registry, the tuner's warm-start matcher, and `argo-data inspect`
// need, readable without touching topology or feature bytes.
type Stats struct {
	NumNodes   int64   `json:"num_nodes"`
	NumArcs    int64   `json:"num_arcs"`
	NumClasses int     `json:"num_classes"`
	FeatRows   int     `json:"feat_rows"`
	FeatCols   int     `json:"feat_cols"`
	TrainCount int     `json:"train_count"`
	ValCount   int     `json:"val_count"`
	TestCount  int     `json:"test_count"`
	MaxDegree  int     `json:"max_degree"`
	AvgDegree  float64 `json:"avg_degree"`
	// DegreeHist[i] counts nodes whose out-degree has bit-length i:
	// bucket 0 is degree 0, bucket 1 is degree 1, bucket i≥2 covers
	// [2^(i−1), 2^i). Trailing empty buckets are trimmed.
	DegreeHist []int64 `json:"degree_hist"`
	// Shard carries the halo/ownership profile when this store is one
	// shard of a ShardSet; nil for ordinary stores, so their stats JSON
	// (and therefore their bytes) are unchanged from pre-shard writers.
	Shard *ShardStats `json:"shard,omitempty"`
	// FeatDtype is the feature element encoding: "fp16", or empty for
	// fp32, so pre-dtype stores' stats bytes are unchanged. The section
	// table is authoritative (the dtype decides which features section
	// exists); this copy makes the dtype visible to metadata-only readers.
	FeatDtype string `json:"feat_dtype,omitempty"`
}

// ShardStats is the per-shard profile embedded in a shard store's stats
// section: how much of the store is owned versus halo-cached, and how
// many arcs leave the partition (the halo-exchange traffic bound).
type ShardStats struct {
	Index   int   `json:"index"`    // this shard's index in the set
	Count   int   `json:"count"`    // number of shards in the set (k)
	Owned   int   `json:"owned"`    // nodes this shard owns
	Halo    int   `json:"halo"`     // 1-hop ghost nodes cached locally
	CutArcs int64 `json:"cut_arcs"` // arcs from owned nodes to halo nodes
}

// ComputeStats derives the stats section from a materialised dataset.
func ComputeStats(d *Dataset) Stats {
	s := Stats{
		NumNodes:   int64(d.Graph.NumNodes),
		NumArcs:    d.Graph.NumEdges(),
		NumClasses: d.NumClasses,
		FeatRows:   d.Features.Rows,
		FeatCols:   d.Features.Cols,
		TrainCount: len(d.TrainIdx),
		ValCount:   len(d.ValIdx),
		TestCount:  len(d.TestIdx),
		MaxDegree:  d.Graph.MaxDegree(),
		AvgDegree:  d.Graph.AvgDegree(),
		DegreeHist: degreeHist(d.Graph),
		FeatDtype:  d.FeatDtype.statsName(),
	}
	return s
}

// csrStats is ComputeStats for a bare-topology store.
func csrStats(g *CSR) Stats {
	return Stats{
		NumNodes:   int64(g.NumNodes),
		NumArcs:    g.NumEdges(),
		MaxDegree:  g.MaxDegree(),
		AvgDegree:  g.AvgDegree(),
		DegreeHist: degreeHist(g),
	}
}

func degreeHist(g *CSR) []int64 {
	hist := make([]int64, 0, 32)
	for v := 0; v < g.NumNodes; v++ {
		b := bits.Len(uint(g.Degree(NodeID(v))))
		for len(hist) <= b {
			hist = append(hist, 0)
		}
		hist[b]++
	}
	return hist
}

// sectionEntry is one decoded row of the section table.
type sectionEntry struct {
	ID     uint32
	Offset uint64
	Length uint64
	CRC    uint32
}

// SectionName returns the human-readable name of a section id, for
// `argo-data inspect` output.
func SectionName(id uint32) string {
	switch id {
	case secSpec:
		return "spec"
	case secStats:
		return "stats"
	case secCSR:
		return "csr"
	case secFeatures:
		return "features"
	case secLabels:
		return "labels"
	case secSplits:
		return "splits"
	case secShardMap:
		return "shardmap"
	case secManifest:
		return "manifest"
	case secFeaturesF16:
		return "features16"
	}
	return fmt.Sprintf("unknown(%d)", id)
}

// section is one (id, payload) pair handed to encodeSections.
type section struct {
	id      uint32
	payload []byte
}

// encodeSections lays out a v2 container from (id, payload) pairs and
// returns the full file bytes. Sections are written in the given order,
// back to back after the table.
func encodeSections(kind uint32, sections []section) []byte {
	tableLen := sectionEntryLen * len(sections)
	total := storeHeaderLen + tableLen
	for _, s := range sections {
		total += len(s.payload)
	}
	out := make([]byte, storeHeaderLen+tableLen, total)
	copy(out[:8], storeMagic)
	binary.LittleEndian.PutUint32(out[8:], storeVersion2)
	binary.LittleEndian.PutUint32(out[12:], kind)
	binary.LittleEndian.PutUint32(out[16:], uint32(len(sections)))
	binary.LittleEndian.PutUint64(out[24:], uint64(total))
	off := uint64(storeHeaderLen + tableLen)
	for i, s := range sections {
		e := out[storeHeaderLen+i*sectionEntryLen:]
		binary.LittleEndian.PutUint32(e[0:], s.id)
		binary.LittleEndian.PutUint64(e[8:], off)
		binary.LittleEndian.PutUint64(e[16:], uint64(len(s.payload)))
		binary.LittleEndian.PutUint32(e[24:], crc32.Checksum(s.payload, storeCRC))
		off += uint64(len(s.payload))
	}
	binary.LittleEndian.PutUint32(out[20:], crc32.Checksum(out[storeHeaderLen:storeHeaderLen+tableLen], storeCRC))
	for _, s := range sections {
		out = append(out, s.payload...)
	}
	return out
}

// encodeDatasetV2 serialises d as a sectioned v2 container.
func encodeDatasetV2(d *Dataset) ([]byte, error) {
	return encodeDatasetV2Extra(d, nil, nil)
}

// encodeDatasetV2Extra serialises d with an optional stats override (the
// shard writer embeds its halo profile) and optional extra sections with
// ids above secSplits, appended after the standard six in the given
// order. It is the single writer both ordinary stores and shard stores
// (and UpgradeStore's extra-section carry-through) go through, so the
// encoding stays canonical.
func encodeDatasetV2Extra(d *Dataset, statsOverride *Stats, extras []section) ([]byte, error) {
	specJSON, err := json.Marshal(d.Spec)
	if err != nil {
		return nil, fmt.Errorf("graph: encoding spec: %w", err)
	}
	st := ComputeStats(d)
	if statsOverride != nil {
		st = *statsOverride
	}
	// Whatever the override says, the stats dtype must describe the
	// features section actually written below.
	st.FeatDtype = d.FeatDtype.statsName()
	statsJSON, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("graph: encoding stats: %w", err)
	}
	var csr enc
	encodeCSR(&csr, d.Graph)
	var feats enc
	feats.u64(uint64(d.Features.Rows))
	feats.u64(uint64(d.Features.Cols))
	if d.FeatDtype == DtypeF16 {
		feats.halves(d.Features.Data)
	} else {
		feats.f32s(d.Features.Data)
	}
	var labels enc
	labels.u64(uint64(len(d.Labels)))
	labels.i32s(d.Labels)
	var splits enc
	for _, split := range [][]NodeID{d.TrainIdx, d.ValIdx, d.TestIdx} {
		splits.u64(uint64(len(split)))
		splits.i32s(split)
	}
	sections := []section{
		{secSpec, specJSON},
		{secStats, statsJSON},
		{secCSR, csr.buf},
		{secLabels, labels.buf},
		{secSplits, splits.buf},
	}
	if d.FeatDtype != DtypeF16 {
		// fp32: the features payload keeps its historical slot between csr
		// and labels, so pre-dtype stores are reproduced byte-for-byte.
		sections = append(sections[:3], append([]section{{secFeatures, feats.buf}}, sections[3:]...)...)
	}
	last := uint32(secSplits)
	for _, e := range extras {
		if e.id <= last || e.id >= secFeaturesF16 {
			return nil, fmt.Errorf("graph: extra section id %d outside (%d,%d) (ids must stay strictly ascending)", e.id, secSplits, secFeaturesF16)
		}
		last = e.id
		sections = append(sections, e)
	}
	if d.FeatDtype == DtypeF16 {
		// The fp16 features section id sits above the shard extras, so it
		// goes last to keep the table strictly ascending.
		sections = append(sections, section{secFeaturesF16, feats.buf})
	}
	return encodeSections(storeKindDataset, sections), nil
}

// encodeCSRv2 serialises a bare topology as a sectioned v2 container
// (stats + csr sections only).
func encodeCSRv2(g *CSR) ([]byte, error) {
	statsJSON, err := json.Marshal(csrStats(g))
	if err != nil {
		return nil, fmt.Errorf("graph: encoding stats: %w", err)
	}
	var csr enc
	encodeCSR(&csr, g)
	return encodeSections(storeKindCSR, []section{
		{secStats, statsJSON},
		{secCSR, csr.buf},
	}), nil
}

// header2 is the decoded fixed header of a v2 store.
type header2 struct {
	kind     uint32
	count    uint32
	tableCRC uint32
	fileSize uint64
}

// parseHeader2 validates the fixed 32-byte header of a v2 store.
// Version-1 headers are the caller's problem (see the dispatch in
// ReadDataset/OpenLazy); this reports the version so they can branch.
func parseHeader2(hdr []byte) (h header2, version uint32, err error) {
	if len(hdr) < storeHeaderLen {
		return h, 0, fmt.Errorf("graph: .argograph header truncated: %d bytes", len(hdr))
	}
	if string(hdr[:8]) != storeMagic {
		return h, 0, fmt.Errorf("graph: not an .argograph store (magic %q)", hdr[:8])
	}
	version = binary.LittleEndian.Uint32(hdr[8:])
	h.kind = binary.LittleEndian.Uint32(hdr[12:])
	h.count = binary.LittleEndian.Uint32(hdr[16:])
	h.tableCRC = binary.LittleEndian.Uint32(hdr[20:])
	h.fileSize = binary.LittleEndian.Uint64(hdr[24:])
	return h, version, nil
}

// parseSectionTable validates a v2 section table against the header and
// the true file size: table CRC, entry count, reserved fields, id order
// and uniqueness, and — before any section payload is decoded — that
// the extents are in bounds (ErrSectionBounds), non-overlapping
// (ErrSectionOverlap), and tile the file exactly.
func parseSectionTable(h header2, table []byte, fileSize int64) ([]sectionEntry, error) {
	if h.fileSize != uint64(fileSize) {
		return nil, fmt.Errorf("graph: header declares %d-byte store, file is %d bytes (truncated or padded)", h.fileSize, fileSize)
	}
	if h.count == 0 || h.count > maxSections {
		return nil, fmt.Errorf("graph: implausible section count %d", h.count)
	}
	need := int(h.count) * sectionEntryLen
	if len(table) < need {
		return nil, fmt.Errorf("graph: section table truncated: need %d bytes, have %d", need, len(table))
	}
	table = table[:need]
	if sum := crc32.Checksum(table, storeCRC); sum != h.tableCRC {
		return nil, fmt.Errorf("graph: section table checksum mismatch")
	}
	entries := make([]sectionEntry, h.count)
	next := uint64(storeHeaderLen + need)
	for i := range entries {
		e := table[i*sectionEntryLen:]
		entries[i] = sectionEntry{
			ID:     binary.LittleEndian.Uint32(e[0:]),
			Offset: binary.LittleEndian.Uint64(e[8:]),
			Length: binary.LittleEndian.Uint64(e[16:]),
			CRC:    binary.LittleEndian.Uint32(e[24:]),
		}
		s := entries[i]
		if i > 0 && s.ID <= entries[i-1].ID {
			return nil, fmt.Errorf("graph: section ids not strictly ascending (%d after %d)", s.ID, entries[i-1].ID)
		}
		// Bounds before overlap: length is checked against the file size
		// first so Offset+Length cannot wrap (both fit in the file).
		if s.Offset > uint64(fileSize) || s.Length > uint64(fileSize)-s.Offset {
			return nil, fmt.Errorf("%w: section %s at [%d,+%d) in %d-byte file",
				ErrSectionBounds, SectionName(s.ID), s.Offset, s.Length, fileSize)
		}
		if s.Offset < next {
			return nil, fmt.Errorf("%w: section %s at [%d,+%d) begins before byte %d",
				ErrSectionOverlap, SectionName(s.ID), s.Offset, s.Length, next)
		}
		if s.Offset > next {
			return nil, fmt.Errorf("graph: %d-byte gap before section %s (sections must be contiguous)",
				s.Offset-next, SectionName(s.ID))
		}
		next = s.Offset + s.Length
	}
	if next != uint64(fileSize) {
		return nil, fmt.Errorf("graph: %d trailing bytes after last section", uint64(fileSize)-next)
	}
	return entries, nil
}

// find returns the entry with the given section id, or false.
func findSection(entries []sectionEntry, id uint32) (sectionEntry, bool) {
	for _, e := range entries {
		if e.ID == id {
			return e, true
		}
	}
	return sectionEntry{}, false
}

// Section payload decoders. Each decoder consumes exactly its section's
// bytes; trailing bytes inside a section are corruption.

func decodeSpecSection(b []byte) (DatasetSpec, error) {
	var spec DatasetSpec
	if len(b) > maxJSONSection {
		return spec, fmt.Errorf("graph: spec section of %d bytes", len(b))
	}
	if err := json.Unmarshal(b, &spec); err != nil {
		return spec, fmt.Errorf("graph: decoding stored spec: %w", err)
	}
	return spec, nil
}

func decodeStatsSection(b []byte) (Stats, error) {
	var s Stats
	if len(b) > maxJSONSection {
		return s, fmt.Errorf("graph: stats section of %d bytes", len(b))
	}
	if err := json.Unmarshal(b, &s); err != nil {
		return s, fmt.Errorf("graph: decoding stored stats: %w", err)
	}
	return s, nil
}

func decodeCSRSection(b []byte) (*CSR, error) {
	d := dec{buf: b}
	g := decodeCSR(&d)
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("graph: %d trailing bytes in csr section", len(d.buf)-d.off)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: stored CSR invalid: %w", err)
	}
	return g, nil
}

func decodeFeaturesSection(b []byte) (*tensor.Matrix, error) {
	d := dec{buf: b}
	rows := int(d.u64())
	cols := int(d.u64())
	if d.err == nil && (rows < 0 || cols < 0 || rows > math.MaxInt32 || cols > math.MaxInt32 ||
		(cols > 0 && rows > d.remaining()/4/cols)) {
		return nil, fmt.Errorf("graph: feature block %dx%d exceeds section", rows, cols)
	}
	data := d.f32s(rows * cols)
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("graph: %d trailing bytes in features section", len(d.buf)-d.off)
	}
	return tensor.FromSlice(rows, cols, data), nil
}

// decodeFeaturesF16Section decodes a features16 section into a float32
// matrix. Decoding is exact (fp16 widens losslessly); non-finite bit
// patterns are rejected so a corrupted or crafted store cannot inject
// Inf/NaN into the kernels.
func decodeFeaturesF16Section(b []byte) (*tensor.Matrix, error) {
	d := dec{buf: b}
	rows := int(d.u64())
	cols := int(d.u64())
	if d.err == nil && (rows < 0 || cols < 0 || rows > math.MaxInt32 || cols > math.MaxInt32 ||
		(cols > 0 && rows > d.remaining()/2/cols)) {
		return nil, fmt.Errorf("graph: feature block %dx%d exceeds section", rows, cols)
	}
	data, err := d.halves(rows * cols)
	if d.err != nil {
		return nil, d.err
	}
	if err != nil {
		return nil, err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("graph: %d trailing bytes in features16 section", len(d.buf)-d.off)
	}
	return tensor.FromSlice(rows, cols, data), nil
}

func decodeLabelsSection(b []byte) ([]int32, error) {
	d := dec{buf: b}
	n := int(d.u64())
	if d.err == nil && (n < 0 || n > d.remaining()/4) {
		return nil, fmt.Errorf("graph: label block of %d exceeds section", n)
	}
	labels := d.i32s(n)
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("graph: %d trailing bytes in labels section", len(d.buf)-d.off)
	}
	return labels, nil
}

func decodeSplitsSection(b []byte) (train, val, test []NodeID, err error) {
	d := dec{buf: b}
	var splits [3][]NodeID
	for i := range splits {
		n := int(d.u64())
		if d.err == nil && (n < 0 || n > d.remaining()/4) {
			return nil, nil, nil, fmt.Errorf("graph: split of %d ids exceeds section", n)
		}
		splits[i] = d.i32s(n)
	}
	if d.err != nil {
		return nil, nil, nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, nil, nil, fmt.Errorf("graph: %d trailing bytes in splits section", len(d.buf)-d.off)
	}
	return splits[0], splits[1], splits[2], nil
}
