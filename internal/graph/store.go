package graph

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"argo/internal/tensor"
	"argo/internal/tensor/half"
)

// The .argograph version-1 container: a fixed 32-byte header followed by
// a single checksummed payload. Writers emit version 2 (the sectioned
// layout in storev2.go) since PR 3; v1 is retained read-only so every
// store ever written keeps loading through the same entry points.
//
//	offset  size  field
//	0       8     magic "ARGOGRPH"
//	8       4     format version (little-endian uint32)
//	12      4     payload kind: 1 = Dataset, 2 = CSR
//	16      8     payload length in bytes (v1)
//	24      4     CRC-32C (Castagnoli) of the payload (v1)
//	28      4     reserved, zero (v1)
//
// The v1 payload is a flat little-endian encoding (see encodeDataset /
// encodeCSR). Every multi-byte integer is little-endian; floats are stored
// as their IEEE-754 bit patterns, so features round-trip bit-exactly. The
// header checksum means corruption anywhere in the payload — a flipped
// bit, a truncated tail — is detected before any field is trusted.
const (
	storeMagic   = "ARGOGRPH"
	storeVersion = 1

	storeKindDataset = 1
	storeKindCSR     = 2

	storeHeaderLen = 32
)

// CRC-32C has hardware support on both amd64 and arm64, which keeps the
// integrity check far off the load critical path (multiple GB/s).
var storeCRC = crc32.MakeTable(crc32.Castagnoli)

// Write serialises the dataset in .argograph format (version 2, the
// sectioned layout: see storev2.go).
func (d *Dataset) Write(w io.Writer) error {
	if err := d.Validate(); err != nil {
		return fmt.Errorf("graph: refusing to write invalid dataset: %w", err)
	}
	b, err := encodeDatasetV2(d)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// writeV1 serialises the dataset in the legacy monolithic v1 format. It
// exists for the v1→v2 compatibility fixtures and tests; new stores are
// always written as v2.
func (d *Dataset) writeV1(w io.Writer) error {
	if err := d.Validate(); err != nil {
		return fmt.Errorf("graph: refusing to write invalid dataset: %w", err)
	}
	payload, err := encodeDataset(d)
	if err != nil {
		return err
	}
	return writeContainer(w, storeKindDataset, payload)
}

// Save writes the dataset to path in .argograph format. The file is
// written to a temporary sibling first and renamed into place, so readers
// never observe a torn store.
func (d *Dataset) Save(path string) error {
	return saveAtomic(path, func(w io.Writer) error { return d.Write(w) })
}

// ReadDataset deserialises a dataset written with Dataset.Write — either
// format version. The header, every checksum, and every structural
// invariant (CSR shape, label range, split bounds) are verified before
// the dataset is returned.
func ReadDataset(r io.Reader) (*Dataset, error) {
	version, full, err := sniffVersion(r)
	if err != nil {
		return nil, err
	}
	if version == storeVersion {
		return readDatasetV1(full)
	}
	data, err := io.ReadAll(full)
	if err != nil {
		return nil, fmt.Errorf("graph: reading .argograph store: %w", err)
	}
	lz, err := openLazySource(mmapSource{data}, nil)
	if err != nil {
		return nil, err
	}
	if lz.kind != storeKindDataset {
		return nil, fmt.Errorf("graph: .argograph payload kind %d, want %d", lz.kind, storeKindDataset)
	}
	return lz.Dataset()
}

// sniffVersion peeks the container version without losing bytes: the
// returned reader replays the consumed header before the rest of r.
func sniffVersion(r io.Reader) (version uint32, full io.Reader, err error) {
	var hdr [storeHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("graph: reading .argograph header: %w", err)
	}
	_, version, err = parseHeader2(hdr[:])
	if err != nil {
		return 0, nil, err
	}
	if version != storeVersion && version != storeVersion2 {
		return 0, nil, fmt.Errorf("graph: unsupported .argograph version %d (supported: %d, %d)", version, storeVersion, storeVersion2)
	}
	return version, io.MultiReader(bytes.NewReader(hdr[:]), r), nil
}

// readDatasetV1 decodes a complete legacy v1 dataset container.
func readDatasetV1(r io.Reader) (*Dataset, error) {
	payload, err := readContainer(r, storeKindDataset)
	if err != nil {
		return nil, err
	}
	d, err := decodeDataset(payload)
	if err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("graph: stored dataset invalid: %w", err)
	}
	return d, nil
}

// ReadSpec decodes only the DatasetSpec from a .argograph dataset store.
// In a v2 store that is the spec section (CRC-verified); in a v1 store
// the spec is the first payload field, so arbitrarily large stores
// yield their metadata without materialising topology or features. For
// v1 the header is validated but the payload checksum is NOT (it covers
// bytes this function never reads); use ReadDataset / argo-data verify
// for integrity.
func ReadSpec(r io.Reader) (DatasetSpec, error) {
	version, full, err := sniffVersion(r)
	if err != nil {
		return DatasetSpec{}, err
	}
	if version == storeVersion2 {
		data, err := io.ReadAll(full)
		if err != nil {
			return DatasetSpec{}, fmt.Errorf("graph: reading .argograph store: %w", err)
		}
		lz, err := openLazySource(mmapSource{data}, nil)
		if err != nil {
			return DatasetSpec{}, err
		}
		if lz.kind != storeKindDataset {
			return DatasetSpec{}, fmt.Errorf("graph: .argograph payload kind %d, want %d", lz.kind, storeKindDataset)
		}
		return lz.Spec(), nil
	}
	return readSpecV1(full)
}

func readSpecV1(r io.Reader) (DatasetSpec, error) {
	payloadLen, _, err := readHeader(r, storeKindDataset)
	if err != nil {
		return DatasetSpec{}, err
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return DatasetSpec{}, fmt.Errorf("graph: truncated .argograph payload: %w", err)
	}
	specLen := binary.LittleEndian.Uint32(lenBuf[:])
	if uint64(specLen)+4 > payloadLen || specLen > 1<<20 {
		return DatasetSpec{}, fmt.Errorf("graph: spec of %d bytes exceeds payload", specLen)
	}
	specJSON := make([]byte, specLen)
	if _, err := io.ReadFull(r, specJSON); err != nil {
		return DatasetSpec{}, fmt.Errorf("graph: truncated .argograph payload: %w", err)
	}
	var spec DatasetSpec
	if err := json.Unmarshal(specJSON, &spec); err != nil {
		return DatasetSpec{}, fmt.Errorf("graph: decoding stored spec: %w", err)
	}
	return spec, nil
}

// LoadSpec reads just the DatasetSpec from a .argograph store at path:
// the spec section of a v2 store, or the spec prefix of a v1 store (see
// ReadSpec for the v1 integrity caveat). Either way no topology or
// feature bytes are touched, so arbitrarily large stores resolve in
// microseconds.
func LoadSpec(path string) (DatasetSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return DatasetSpec{}, err
	}
	var hdr [storeHeaderLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		f.Close()
		return DatasetSpec{}, fmt.Errorf("graph: %s: reading .argograph header: %w", path, err)
	}
	_, version, err := parseHeader2(hdr[:])
	if err != nil {
		f.Close()
		return DatasetSpec{}, fmt.Errorf("graph: %s: %w", path, err)
	}
	if version == storeVersion {
		defer f.Close()
		spec, err := readSpecV1(io.MultiReader(bytes.NewReader(hdr[:]), f))
		if err != nil {
			return DatasetSpec{}, fmt.Errorf("graph: %s: %w", path, err)
		}
		return spec, nil
	}
	// v2 (and future-version rejection): the lazy opener works off
	// ReadAt/mmap, so the 32 bytes consumed above don't matter. It
	// takes ownership of f on success.
	lz, err := openLazyFile(f)
	if err != nil {
		f.Close()
		return DatasetSpec{}, fmt.Errorf("graph: %s: %w", path, err)
	}
	defer lz.Close()
	if lz.kind != storeKindDataset {
		return DatasetSpec{}, fmt.Errorf("graph: %s: .argograph payload kind %d, want %d", path, lz.kind, storeKindDataset)
	}
	return lz.Spec(), nil
}

// LoadStats reads the precomputed stats of the .argograph store at path.
// For v2 stores only the header, section table, and stats section are
// read; v1 stores (which predate the stats section) are decoded eagerly
// and their stats computed.
func LoadStats(path string) (Stats, error) {
	lz, err := OpenLazy(path)
	if err != nil {
		return Stats{}, err
	}
	defer lz.Close()
	return lz.Stats(), nil
}

// LoadDataset reads a .argograph dataset store from path, either format
// version, fully materialised and validated.
func LoadDataset(path string) (*Dataset, error) {
	lz, err := OpenLazy(path)
	if err != nil {
		return nil, err
	}
	defer lz.Close()
	d, err := lz.Dataset()
	if err != nil {
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	return d, nil
}

// Write serialises the CSR graph alone in .argograph v2 format (payload
// kind 2, stats + csr sections), for callers that persist topology
// without features or labels.
func (g *CSR) Write(w io.Writer) error {
	if err := g.Validate(); err != nil {
		return fmt.Errorf("graph: refusing to write invalid CSR: %w", err)
	}
	b, err := encodeCSRv2(g)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// writeV1 serialises the CSR in the legacy monolithic v1 format, for
// compatibility fixtures and tests.
func (g *CSR) writeV1(w io.Writer) error {
	if err := g.Validate(); err != nil {
		return fmt.Errorf("graph: refusing to write invalid CSR: %w", err)
	}
	var e enc
	encodeCSR(&e, g)
	return writeContainer(w, storeKindCSR, e.buf)
}

// Save writes the CSR graph to path, atomically (see Dataset.Save).
func (g *CSR) Save(path string) error {
	return saveAtomic(path, func(w io.Writer) error { return g.Write(w) })
}

// ReadCSR deserialises a graph written with CSR.Write, verifying the
// checksum and the CSR structural invariants. A v2 *dataset* store is
// accepted too: its csr section decodes without touching feature bytes,
// which is the point of the sectioned layout.
func ReadCSR(r io.Reader) (*CSR, error) {
	version, full, err := sniffVersion(r)
	if err != nil {
		return nil, err
	}
	if version == storeVersion {
		return readCSRV1(full)
	}
	data, err := io.ReadAll(full)
	if err != nil {
		return nil, fmt.Errorf("graph: reading .argograph store: %w", err)
	}
	lz, err := openLazySource(mmapSource{data}, nil)
	if err != nil {
		return nil, err
	}
	return lz.Topology()
}

// readCSRV1 decodes a complete legacy v1 CSR container.
func readCSRV1(r io.Reader) (*CSR, error) {
	payload, err := readContainer(r, storeKindCSR)
	if err != nil {
		return nil, err
	}
	d := dec{buf: payload}
	g := decodeCSR(&d)
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("graph: %d trailing payload bytes", len(d.buf)-d.off)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: stored CSR invalid: %w", err)
	}
	return g, nil
}

// LoadCSR reads the topology of the .argograph store at path. For a v2
// store of either kind only the header, table, stats, and csr sections
// are read — a topology-only consumer of a dataset store never
// materialises (or, under mmap, even faults in) its feature bytes.
func LoadCSR(path string) (*CSR, error) {
	lz, err := OpenLazy(path)
	if err != nil {
		return nil, err
	}
	defer lz.Close()
	g, err := lz.Topology()
	if err != nil {
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	return g, nil
}

// Validate checks every structural invariant the training stack relies
// on: a valid CSR, features covering every node, labels within the class
// range, and split indices in bounds and mutually disjoint. It is the
// gate both sides of the binary store go through.
func (d *Dataset) Validate() error {
	if d.Graph == nil {
		return fmt.Errorf("graph: dataset has no graph")
	}
	if err := d.Graph.Validate(); err != nil {
		return err
	}
	n := d.Graph.NumNodes
	if d.Features == nil {
		return fmt.Errorf("graph: dataset has no features")
	}
	if d.Features.Rows != n {
		return fmt.Errorf("graph: %d feature rows for %d nodes", d.Features.Rows, n)
	}
	if d.Features.Cols < 1 {
		return fmt.Errorf("graph: feature width %d", d.Features.Cols)
	}
	if len(d.Features.Data) != d.Features.Rows*d.Features.Cols {
		return fmt.Errorf("graph: feature storage %d for %dx%d", len(d.Features.Data), d.Features.Rows, d.Features.Cols)
	}
	if d.FeatDtype == DtypeF16 {
		// The fp16 invariant: every value exactly representable, so each
		// store/wire re-encode of this dataset is lossless.
		if err := d.validateF16Exact(); err != nil {
			return err
		}
	}
	if d.NumClasses < 1 {
		return fmt.Errorf("graph: %d classes", d.NumClasses)
	}
	if len(d.Labels) != n {
		return fmt.Errorf("graph: %d labels for %d nodes", len(d.Labels), n)
	}
	for v, c := range d.Labels {
		if c < 0 || int(c) >= d.NumClasses {
			return fmt.Errorf("graph: node %d label %d outside [0,%d)", v, c, d.NumClasses)
		}
	}
	seen := make([]bool, n)
	for _, split := range []struct {
		name string
		ids  []NodeID
	}{{"train", d.TrainIdx}, {"val", d.ValIdx}, {"test", d.TestIdx}} {
		for _, v := range split.ids {
			if v < 0 || int(v) >= n {
				return fmt.Errorf("graph: %s index %d outside [0,%d)", split.name, v, n)
			}
			if seen[v] {
				return fmt.Errorf("graph: node %d appears in two splits (train/test leakage)", v)
			}
			seen[v] = true
		}
	}
	if len(d.TrainIdx) == 0 {
		return fmt.Errorf("graph: empty training split")
	}
	return nil
}

// writeContainer frames payload with the .argograph header.
func writeContainer(w io.Writer, kind uint32, payload []byte) error {
	var hdr [storeHeaderLen]byte
	copy(hdr[:8], storeMagic)
	binary.LittleEndian.PutUint32(hdr[8:], storeVersion)
	binary.LittleEndian.PutUint32(hdr[12:], kind)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[24:], crc32.Checksum(payload, storeCRC))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readHeader reads and validates the fixed .argograph header, returning
// the declared payload length and checksum. Truncated input, a foreign
// or corrupted header, a version from the future, and the wrong payload
// kind are all distinct errors.
func readHeader(r io.Reader, wantKind uint32) (payloadLen uint64, checksum uint32, err error) {
	var hdr [storeHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("graph: reading .argograph header: %w", err)
	}
	if string(hdr[:8]) != storeMagic {
		return 0, 0, fmt.Errorf("graph: not an .argograph store (magic %q)", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != storeVersion {
		return 0, 0, fmt.Errorf("graph: unsupported .argograph version %d (supported: %d)", v, storeVersion)
	}
	if k := binary.LittleEndian.Uint32(hdr[12:]); k != wantKind {
		return 0, 0, fmt.Errorf("graph: .argograph payload kind %d, want %d", k, wantKind)
	}
	return binary.LittleEndian.Uint64(hdr[16:]), binary.LittleEndian.Uint32(hdr[24:]), nil
}

// readContainer reads the header via readHeader, then the payload,
// verifying its checksum before any field is trusted.
func readContainer(r io.Reader, wantKind uint32) ([]byte, error) {
	payloadLen, checksum, err := readHeader(r, wantKind)
	if err != nil {
		return nil, err
	}
	var payload []byte
	if payloadLen <= 1<<26 {
		// Sane sizes get a single allocation and one read.
		payload = make([]byte, payloadLen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("graph: truncated .argograph payload: %w", err)
		}
	} else {
		// A header declaring a huge payload is more likely corruption than
		// a 64MB+ graph: grow while reading instead of trusting the length
		// with one giant allocation, so corruption fails cleanly, not OOM.
		var err error
		payload, err = io.ReadAll(io.LimitReader(r, int64(payloadLen)))
		if err != nil {
			return nil, fmt.Errorf("graph: reading .argograph payload: %w", err)
		}
		if uint64(len(payload)) != payloadLen {
			return nil, fmt.Errorf("graph: truncated .argograph payload: %d of %d bytes", len(payload), payloadLen)
		}
	}
	if sum := crc32.Checksum(payload, storeCRC); sum != checksum {
		return nil, fmt.Errorf("graph: .argograph checksum mismatch (payload corrupted)")
	}
	return payload, nil
}

// saveAtomic writes via a temporary file in path's directory and renames
// it into place.
func saveAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	// CreateTemp's 0600 would make the store unreadable by other users;
	// stores are shared artifacts, so give them ordinary file permissions.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Payload layout (version 1, Dataset):
//
//	u32 specLen, specLen bytes  DatasetSpec as JSON
//	u32                         NumClasses
//	CSR block:
//	  u64 numNodes, u64 numArcs
//	  u64×(numNodes+1)          RowPtr
//	  u32×numArcs               Col
//	u64 featRows, u64 featCols
//	f32×(featRows·featCols)     Features, row-major IEEE-754 bits
//	u32×numNodes                Labels
//	3 × (u64 count, u32×count)  TrainIdx, ValIdx, TestIdx
func encodeDataset(d *Dataset) ([]byte, error) {
	specJSON, err := json.Marshal(d.Spec)
	if err != nil {
		return nil, fmt.Errorf("graph: encoding spec: %w", err)
	}
	var e enc
	e.u32(uint32(len(specJSON)))
	e.bytes(specJSON)
	e.u32(uint32(d.NumClasses))
	encodeCSR(&e, d.Graph)
	e.u64(uint64(d.Features.Rows))
	e.u64(uint64(d.Features.Cols))
	e.f32s(d.Features.Data)
	e.i32s(d.Labels)
	for _, split := range [][]NodeID{d.TrainIdx, d.ValIdx, d.TestIdx} {
		e.u64(uint64(len(split)))
		e.i32s(split)
	}
	return e.buf, nil
}

func decodeDataset(payload []byte) (*Dataset, error) {
	d := dec{buf: payload}
	specJSON := d.bytes(int(d.u32()))
	var spec DatasetSpec
	if d.err == nil {
		if err := json.Unmarshal(specJSON, &spec); err != nil {
			return nil, fmt.Errorf("graph: decoding stored spec: %w", err)
		}
	}
	numClasses := int(d.u32())
	g := decodeCSR(&d)
	// Every declared count is checked against the bytes actually present
	// before any allocation, with division (never multiplication) so a
	// crafted count cannot overflow past the guard.
	featRows := int(d.u64())
	featCols := int(d.u64())
	if d.err == nil && (featRows < 0 || featCols < 0 || featRows > math.MaxInt32 || featCols > math.MaxInt32 ||
		(featCols > 0 && featRows > d.remaining()/4/featCols)) {
		return nil, fmt.Errorf("graph: feature block %dx%d exceeds payload", featRows, featCols)
	}
	feats := d.f32s(featRows * featCols)
	labels := d.i32s(g.numNodesHint())
	var splits [3][]NodeID
	for i := range splits {
		n := int(d.u64())
		if d.err == nil && (n < 0 || n > d.remaining()/4) {
			return nil, fmt.Errorf("graph: split of %d ids exceeds payload", n)
		}
		splits[i] = d.i32s(n)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("graph: %d trailing payload bytes", len(d.buf)-d.off)
	}
	return &Dataset{
		Spec:       spec,
		Graph:      g,
		Features:   tensor.FromSlice(featRows, featCols, feats),
		Labels:     labels,
		NumClasses: numClasses,
		TrainIdx:   splits[0],
		ValIdx:     splits[1],
		TestIdx:    splits[2],
	}, nil
}

func encodeCSR(e *enc, g *CSR) {
	e.u64(uint64(g.NumNodes))
	e.u64(uint64(len(g.Col)))
	e.i64s(g.RowPtr)
	e.i32s(g.Col)
}

// nilCSR stands in for a graph that failed to decode, so downstream
// decode steps can keep consuming the error-latched dec without nil
// checks.
var nilCSR = &CSR{RowPtr: []int64{0}}

func decodeCSR(d *dec) *CSR {
	// As in decodeDataset: division-only bounds checks so declared counts
	// can neither overflow the guard nor drive an oversized allocation.
	numNodes := int(d.u64())
	numArcs := int(d.u64())
	if d.err == nil && (numNodes < 0 || numArcs < 0 ||
		numNodes >= math.MaxInt32 || numNodes+1 > d.remaining()/8) {
		d.fail(fmt.Errorf("graph: CSR of %d nodes exceeds payload", numNodes))
		return nilCSR
	}
	rowPtr := d.i64s(numNodes + 1)
	if d.err == nil && numArcs > d.remaining()/4 {
		d.fail(fmt.Errorf("graph: CSR of %d arcs exceeds payload", numArcs))
		return nilCSR
	}
	col := d.i32s(numArcs)
	if d.err != nil {
		return nilCSR
	}
	return &CSR{NumNodes: numNodes, RowPtr: rowPtr, Col: col}
}

func (g *CSR) numNodesHint() int {
	if g == nil {
		return 0
	}
	return g.NumNodes
}

// enc builds the little-endian payload. Slices are appended in one grow
// per field, keeping Save roughly memcpy-speed.
type enc struct{ buf []byte }

func (e *enc) grow(n int) []byte {
	off := len(e.buf)
	e.buf = append(e.buf, make([]byte, n)...)
	return e.buf[off:]
}

func (e *enc) u32(v uint32)   { binary.LittleEndian.PutUint32(e.grow(4), v) }
func (e *enc) u64(v uint64)   { binary.LittleEndian.PutUint64(e.grow(8), v) }
func (e *enc) bytes(b []byte) { e.buf = append(e.buf, b...) }
func (e *enc) i64s(xs []int64) {
	b := e.grow(8 * len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(x))
	}
}
func (e *enc) i32s(xs []int32) {
	b := e.grow(4 * len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(x))
	}
}
func (e *enc) f32s(xs []float32) {
	b := e.grow(4 * len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(x))
	}
}
func (e *enc) halves(xs []float32) {
	half.EncodeBytes(e.grow(2*len(xs)), xs)
}

// dec consumes the payload with a latched error: after the first failure
// every further read returns zero values, so decode code stays linear.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *dec) remaining() int { return len(d.buf) - d.off }

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > d.remaining() {
		d.fail(fmt.Errorf("graph: truncated payload: need %d bytes, have %d", n, d.remaining()))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *dec) bytes(n int) []byte { return d.take(n) }

func (d *dec) i64s(n int) []int64 {
	b := d.take(8 * n)
	if b == nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func (d *dec) i32s(n int) []int32 {
	b := d.take(4 * n)
	if b == nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func (d *dec) f32s(n int) []float32 {
	b := d.take(4 * n)
	if b == nil {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// halves decodes n little-endian fp16 values, widening exactly. Unlike
// f32s it also polices values: the store writer only ever emits finite
// fp16, so Inf/NaN bits here are corruption (or a crafted store) and
// get a hard error rather than a poisoned kernel input.
func (d *dec) halves(n int) ([]float32, error) {
	b := d.take(2 * n)
	if b == nil {
		return nil, nil
	}
	out := make([]float32, n)
	for i := range out {
		h := uint16(b[2*i]) | uint16(b[2*i+1])<<8
		if !half.IsFinite(h) {
			return nil, fmt.Errorf("graph: non-finite fp16 bits %#04x at element %d", h, i)
		}
		out[i] = half.FromBits(h)
	}
	return out, nil
}
