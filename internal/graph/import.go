package graph

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"argo/internal/tensor"
)

// ImportOptions configures ImportEdgeList — the real-dataset on-ramp
// that turns an edge-list/CSV dump into a trainable .argograph dataset
// without any external dependency.
type ImportOptions struct {
	// Name labels the imported dataset (spec name; default "imported").
	Name string
	// Directed keeps arcs as listed. The default symmetrises: every
	// edge u–v becomes the arcs u→v and v→u, matching the synthetic
	// generator's undirected convention.
	Directed bool
	// FeatDim sizes the synthesised feature rows when no feature file
	// is supplied (default 16; ignored when Features is non-nil).
	FeatDim int
	// NumClasses sizes the synthesised label space when no label file
	// is supplied (default 4; ignored when Labels is non-nil).
	NumClasses int
	// TrainFrac is the training split fraction (default 0.5); val and
	// test each take half the remainder.
	TrainFrac float64
	// Seed drives label/feature synthesis and the split shuffle.
	Seed int64
	// Hidden records the model hidden width in the spec (default 32).
	Hidden int
	// Labels, when non-nil, reads a "node,label" CSV covering every
	// node (see ParseLabelsCSV).
	Labels io.Reader
	// Features, when non-nil, reads a "node,f0,f1,..." CSV covering
	// every node (see ParseFeaturesCSV).
	Features io.Reader
}

// maxImportNodes bounds the node space an imported file may claim, so a
// stray huge id cannot drive a gigabyte allocation from one bad line.
const maxImportNodes = 1 << 28

// importLines iterates the meaningful lines of an edge-list/CSV file:
// blank lines and #/%-prefixed comments are skipped, fields split on
// commas and/or whitespace. A first data line that does not start with
// an integer is treated as a CSV header and skipped.
func importLines(r io.Reader, fn func(lineNo int, fields []string) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	sawData := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool {
			return r == ',' || r == ';' || r == ' ' || r == '\t'
		})
		if len(fields) == 0 {
			continue
		}
		if !sawData {
			if _, err := strconv.ParseInt(fields[0], 10, 64); err != nil {
				continue // header row
			}
			sawData = true
		}
		if err := fn(lineNo, fields); err != nil {
			return err
		}
	}
	return sc.Err()
}

// parseNode parses a node id field with the import bounds applied.
func parseNode(field string, lineNo int) (int64, error) {
	v, err := strconv.ParseInt(field, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("graph: line %d: node id %q is not an integer", lineNo, field)
	}
	if v < 0 {
		return 0, fmt.Errorf("graph: line %d: negative node id %d", lineNo, v)
	}
	if v >= maxImportNodes {
		return 0, fmt.Errorf("graph: line %d: node id %d exceeds the import limit (%d)", lineNo, v, maxImportNodes)
	}
	return v, nil
}

// ImportEdgeList reads an edge list (two integer node ids per line,
// comma- and/or whitespace-separated, extra fields such as weights
// ignored; #/% comments and a CSV header row skipped) and builds a
// complete, validated Dataset over it. Node ids need not be contiguous:
// the node space is [0, maxID]. Self-loops and duplicate edges are
// dropped, and unless opt.Directed is set every edge is symmetrised.
//
// Labels and features come from the optional CSV readers in opt; when
// absent they are synthesised deterministically from opt.Seed (uniform
// labels over NumClasses, class-centroid features — the same family the
// synthetic generator uses), so any raw edge list becomes a runnable
// benchmark workload.
func ImportEdgeList(r io.Reader, opt ImportOptions) (*Dataset, error) {
	if opt.Name == "" {
		opt.Name = "imported"
	}
	if opt.FeatDim < 1 {
		opt.FeatDim = 16
	}
	if opt.NumClasses < 2 {
		opt.NumClasses = 4
	}
	if opt.TrainFrac <= 0 || opt.TrainFrac >= 1 {
		opt.TrainFrac = 0.5
	}
	if opt.Hidden < 1 {
		opt.Hidden = 32
	}

	type arc struct{ u, v int64 }
	var arcs []arc
	maxID := int64(-1)
	err := importLines(r, func(lineNo int, fields []string) error {
		if len(fields) < 2 {
			return fmt.Errorf("graph: line %d: want at least two fields (src dst), got %d", lineNo, len(fields))
		}
		u, err := parseNode(fields[0], lineNo)
		if err != nil {
			return err
		}
		v, err := parseNode(fields[1], lineNo)
		if err != nil {
			return err
		}
		if u == v {
			return nil // drop self-loops
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		arcs = append(arcs, arc{u, v})
		if !opt.Directed {
			arcs = append(arcs, arc{v, u})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if maxID < 0 {
		return nil, fmt.Errorf("graph: edge list contains no edges")
	}
	n := int(maxID + 1)

	// Dedup and build the CSR: count per row, fill, then sort+compact
	// each adjacency.
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].u != arcs[j].u {
			return arcs[i].u < arcs[j].u
		}
		return arcs[i].v < arcs[j].v
	})
	g := &CSR{NumNodes: n, RowPtr: make([]int64, n+1)}
	g.Col = make([]NodeID, 0, len(arcs))
	for i, a := range arcs {
		if i > 0 && arcs[i-1] == a {
			continue
		}
		g.Col = append(g.Col, NodeID(a.v))
		g.RowPtr[a.u+1]++
	}
	for v := 0; v < n; v++ {
		g.RowPtr[v+1] += g.RowPtr[v]
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: imported topology invalid: %w", err)
	}

	rng := rand.New(rand.NewSource(opt.Seed + 1))
	var labels []int32
	numClasses := opt.NumClasses
	if opt.Labels != nil {
		labels, numClasses, err = ParseLabelsCSV(opt.Labels, n)
		if err != nil {
			return nil, err
		}
	} else {
		labels = make([]int32, n)
		for v := range labels {
			labels[v] = int32(rng.Intn(numClasses))
		}
	}
	var feats *tensor.Matrix
	if opt.Features != nil {
		feats, err = ParseFeaturesCSV(opt.Features, n)
		if err != nil {
			return nil, err
		}
	} else {
		feats = communityFeatures(rng, labels, numClasses, opt.FeatDim, 0.8)
	}
	train, val, test := split(rng, n, opt.TrainFrac)

	// The spec records undirected edges for symmetrised imports (each
	// edge stored as two arcs) and raw arcs for directed ones.
	specEdges := g.NumEdges()
	if !opt.Directed {
		specEdges /= 2
	}
	ds := &Dataset{
		Spec: DatasetSpec{
			Name:          opt.Name,
			ScaledNodes:   n,
			ScaledEdges:   specEdges,
			ScaledF0:      feats.Cols,
			ScaledHidden:  opt.Hidden,
			ScaledClasses: numClasses,
			TrainFrac:     opt.TrainFrac,
		},
		Graph:      g,
		Features:   feats,
		Labels:     labels,
		NumClasses: numClasses,
		TrainIdx:   train,
		ValIdx:     val,
		TestIdx:    test,
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("graph: imported dataset invalid: %w", err)
	}
	return ds, nil
}

// ParseLabelsCSV reads "node,label" lines (comments/header skipped) and
// returns a dense label vector over n nodes plus the class count
// (max label + 1). Every node must be covered exactly once.
func ParseLabelsCSV(r io.Reader, n int) ([]int32, int, error) {
	labels := make([]int32, n)
	seen := make([]bool, n)
	covered := 0
	maxLabel := int32(-1)
	err := importLines(r, func(lineNo int, fields []string) error {
		if len(fields) < 2 {
			return fmt.Errorf("graph: line %d: want node,label", lineNo)
		}
		v, err := parseNode(fields[0], lineNo)
		if err != nil {
			return err
		}
		if v >= int64(n) {
			return fmt.Errorf("graph: line %d: label for node %d outside the graph's %d nodes", lineNo, v, n)
		}
		lab, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil || lab < 0 {
			return fmt.Errorf("graph: line %d: label %q is not a non-negative integer", lineNo, fields[1])
		}
		if seen[v] {
			return fmt.Errorf("graph: line %d: node %d labelled twice", lineNo, v)
		}
		seen[v] = true
		covered++
		labels[v] = int32(lab)
		if int32(lab) > maxLabel {
			maxLabel = int32(lab)
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	if covered != n {
		return nil, 0, fmt.Errorf("graph: label file covers %d of %d nodes", covered, n)
	}
	return labels, int(maxLabel) + 1, nil
}

// ParseFeaturesCSV reads "node,f0,f1,..." lines (comments/header
// skipped) and returns the dense n×F feature matrix. Every node must be
// covered exactly once and every row must have the same width.
func ParseFeaturesCSV(r io.Reader, n int) (*tensor.Matrix, error) {
	var feats *tensor.Matrix
	seen := make([]bool, n)
	covered := 0
	err := importLines(r, func(lineNo int, fields []string) error {
		if len(fields) < 2 {
			return fmt.Errorf("graph: line %d: want node,f0,...", lineNo)
		}
		v, err := parseNode(fields[0], lineNo)
		if err != nil {
			return err
		}
		if v >= int64(n) {
			return fmt.Errorf("graph: line %d: features for node %d outside the graph's %d nodes", lineNo, v, n)
		}
		width := len(fields) - 1
		if feats == nil {
			feats = tensor.New(n, width)
		} else if width != feats.Cols {
			return fmt.Errorf("graph: line %d: %d feature values, earlier rows had %d", lineNo, width, feats.Cols)
		}
		if seen[v] {
			return fmt.Errorf("graph: line %d: node %d has two feature rows", lineNo, v)
		}
		seen[v] = true
		covered++
		row := feats.Row(int(v))
		for j, f := range fields[1:] {
			x, err := strconv.ParseFloat(f, 32)
			if err != nil {
				return fmt.Errorf("graph: line %d: feature value %q is not a number", lineNo, f)
			}
			row[j] = float32(x)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if covered != n {
		return nil, fmt.Errorf("graph: feature file covers %d of %d nodes", covered, n)
	}
	return feats, nil
}
