package graph

import (
	"fmt"
	"math/rand"

	"argo/internal/tensor"
)

// PaperStats records a dataset's full-scale statistics and GNN-layer
// dimensions exactly as the paper's Table III reports them. The analytic
// workload model in internal/platsim consumes these numbers directly; real
// execution uses scaled-down instances (see Scaled fields of DatasetSpec).
type PaperStats struct {
	Vertices int64
	Edges    int64
	F0       int // input feature length
	F1       int // hidden feature length
	F2       int // output length (number of classes)
}

// DatasetSpec describes one of the paper's four benchmark datasets plus
// the parameters of its scaled synthetic stand-in.
type DatasetSpec struct {
	Name  string
	Paper PaperStats

	// Scaled-instance parameters: the synthetic graph the real training
	// stack materialises. Degree distribution and feature dimensionality
	// mirror the original; sizes are reduced so the full test suite runs
	// on one core in seconds. The scale factor is documented per dataset
	// in DESIGN.md §2.
	ScaledNodes   int
	ScaledEdges   int64
	ScaledF0      int
	ScaledHidden  int
	ScaledClasses int
	Homophily     float64
	Exponent      float64
	TrainFrac     float64
}

// Scale returns a copy of the spec with the scaled-instance node and
// edge counts multiplied by factor (≥1). Feature dimensionality, class
// count, and the degree-distribution/homophily parameters are
// unchanged, so a scaled instance keeps the original's per-node shape
// while growing topology and features linearly — the knob that lets
// `argo-data gen -scale N` materialise a registry profile at
// 10×–1000× test size once and reopen it lazily thereafter. The name
// gains an "@xN" suffix so stores record their provenance.
func (s DatasetSpec) Scale(factor int) DatasetSpec {
	if factor <= 1 {
		return s
	}
	s.ScaledNodes *= factor
	s.ScaledEdges *= int64(factor)
	s.Name = fmt.Sprintf("%s@x%d", s.Name, factor)
	return s
}

// Registry lists the four benchmark datasets from Table III, in the
// paper's order.
var Registry = []DatasetSpec{
	{
		Name:          "flickr",
		Paper:         PaperStats{Vertices: 89_250, Edges: 899_756, F0: 500, F1: 128, F2: 7},
		ScaledNodes:   1_800,
		ScaledEdges:   18_000,
		ScaledF0:      64,
		ScaledHidden:  32,
		ScaledClasses: 7,
		Homophily:     0.55,
		Exponent:      2.3,
		TrainFrac:     0.5,
	},
	{
		Name:          "reddit",
		Paper:         PaperStats{Vertices: 232_965, Edges: 11_606_919, F0: 602, F1: 128, F2: 41},
		ScaledNodes:   2_400,
		ScaledEdges:   120_000,
		ScaledF0:      64,
		ScaledHidden:  32,
		ScaledClasses: 16,
		Homophily:     0.6,
		Exponent:      2.0,
		TrainFrac:     0.66,
	},
	{
		Name:          "ogbn-products",
		Paper:         PaperStats{Vertices: 2_449_029, Edges: 61_859_140, F0: 100, F1: 128, F2: 47},
		ScaledNodes:   4_000,
		ScaledEdges:   100_000,
		ScaledF0:      50,
		ScaledHidden:  32,
		ScaledClasses: 12,
		Homophily:     0.65,
		Exponent:      2.1,
		TrainFrac:     0.1,
	},
	{
		Name:          "ogbn-papers100M",
		Paper:         PaperStats{Vertices: 111_059_956, Edges: 1_615_685_872, F0: 128, F1: 128, F2: 172},
		ScaledNodes:   6_000,
		ScaledEdges:   90_000,
		ScaledF0:      64,
		ScaledHidden:  32,
		ScaledClasses: 16,
		Homophily:     0.5,
		Exponent:      2.2,
		TrainFrac:     0.012,
	},
}

// Spec returns the registry entry with the given name.
func Spec(name string) (DatasetSpec, error) {
	for _, s := range Registry {
		if s.Name == name {
			return s, nil
		}
	}
	return DatasetSpec{}, fmt.Errorf("graph: unknown dataset %q", name)
}

// Dataset is a materialised (scaled) dataset: graph topology, node
// features, labels, and index splits — everything the training engine
// needs.
type Dataset struct {
	Spec     DatasetSpec
	Graph    *CSR
	Features *tensor.Matrix // NumNodes × F0
	// FeatDtype is the storage/wire encoding of Features (fp32 default,
	// so pre-dtype code and stores are unchanged). Kernels always see
	// float32; a DtypeF16 dataset holds only fp16-exact values — Validate
	// enforces it, ConvertFeatures establishes it.
	FeatDtype  FeatDtype
	Labels     []int32
	NumClasses int
	TrainIdx   []NodeID
	ValIdx     []NodeID
	TestIdx    []NodeID
}

// Build materialises the scaled synthetic instance of spec with the given
// seed. Features are community centroids plus Gaussian noise, which makes
// the classification task learnable and the convergence curves in the
// Fig. 9 reproduction non-trivial.
func Build(spec DatasetSpec, seed int64) (*Dataset, error) {
	g, labels, err := Generate(GenSpec{
		NumNodes:   spec.ScaledNodes,
		NumEdges:   spec.ScaledEdges,
		NumClasses: spec.ScaledClasses,
		Exponent:   spec.Exponent,
		MinDegree:  2,
		Homophily:  spec.Homophily,
		Seed:       seed,
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 1))
	feats := communityFeatures(rng, labels, spec.ScaledClasses, spec.ScaledF0, 0.8)

	train, val, test := split(rng, spec.ScaledNodes, spec.TrainFrac)
	return &Dataset{
		Spec:       spec,
		Graph:      g,
		Features:   feats,
		Labels:     labels,
		NumClasses: spec.ScaledClasses,
		TrainIdx:   train,
		ValIdx:     val,
		TestIdx:    test,
	}, nil
}

// BuildByName is Build for a registry name.
func BuildByName(name string, seed int64) (*Dataset, error) {
	spec, err := Spec(name)
	if err != nil {
		return nil, err
	}
	return Build(spec, seed)
}

// communityFeatures draws per-class centroids on the unit hypercube corners
// and adds Gaussian noise with the given standard deviation.
func communityFeatures(rng *rand.Rand, labels []int32, classes, dim int, noise float64) *tensor.Matrix {
	centroids := tensor.New(classes, dim)
	for i := range centroids.Data {
		if rng.Float64() < 0.5 {
			centroids.Data[i] = 1
		} else {
			centroids.Data[i] = -1
		}
	}
	feats := tensor.New(len(labels), dim)
	for v, c := range labels {
		row := feats.Row(v)
		cen := centroids.Row(int(c))
		for j := range row {
			row[j] = cen[j] + float32(rng.NormFloat64()*noise)
		}
	}
	return feats
}

// split shuffles node IDs and carves train/val/test index sets. Validation
// and test each take half of what remains after the training fraction.
func split(rng *rand.Rand, n int, trainFrac float64) (train, val, test []NodeID) {
	perm := rng.Perm(n)
	nTrain := int(float64(n) * trainFrac)
	if nTrain < 1 {
		nTrain = 1
	}
	rest := n - nTrain
	nVal := rest / 2
	ids := make([]NodeID, n)
	for i, p := range perm {
		ids[i] = NodeID(p)
	}
	return ids[:nTrain], ids[nTrain : nTrain+nVal], ids[nTrain+nVal:]
}
