package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustFromEdges(t *testing.T, n int, edges []Edge, sym bool) *CSR {
	t.Helper()
	g, err := FromEdges(n, edges, sym)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromEdgesBasic(t *testing.T) {
	g := mustFromEdges(t, 4, []Edge{{0, 1}, {1, 2}, {2, 3}}, false)
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(3) != 0 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(3))
	}
	if !g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Fatal("directed edges wrong")
	}
}

func TestFromEdgesSymmetrize(t *testing.T) {
	g := mustFromEdges(t, 3, []Edge{{0, 1}, {1, 2}}, true)
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(2, 1) {
		t.Fatal("symmetrize missing reverse arcs")
	}
}

func TestFromEdgesRemovesSelfLoopsAndDuplicates(t *testing.T) {
	g := mustFromEdges(t, 3, []Edge{{0, 0}, {0, 1}, {0, 1}, {1, 0}}, false)
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 (dedup + self-loop removal)", g.NumEdges())
	}
}

func TestFromEdgesOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 5}}, false); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := FromEdges(2, []Edge{{-1, 0}}, false); err == nil {
		t.Fatal("expected negative-node error")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := mustFromEdges(t, 5, []Edge{{0, 4}, {0, 2}, {0, 1}, {0, 3}}, false)
	adj := g.Neighbors(0)
	for i := 1; i < len(adj); i++ {
		if adj[i-1] >= adj[i] {
			t.Fatalf("adjacency not sorted: %v", adj)
		}
	}
}

func TestReverse(t *testing.T) {
	g := mustFromEdges(t, 4, []Edge{{0, 1}, {0, 2}, {3, 1}}, false)
	r := g.Reverse()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 0) || !r.HasEdge(1, 3) {
		t.Fatal("Reverse missing arcs")
	}
	if r.NumEdges() != g.NumEdges() {
		t.Fatal("Reverse changed arc count")
	}
}

// Property: for symmetrized graphs, Reverse is structurally identical.
func TestQuickReverseOfSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		var edges []Edge
		for i := 0; i < n*2; i++ {
			edges = append(edges, Edge{NodeID(rng.Intn(n)), NodeID(rng.Intn(n))})
		}
		g, err := FromEdges(n, edges, true)
		if err != nil {
			return false
		}
		r := g.Reverse()
		if r.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < n; v++ {
			a, b := g.Neighbors(NodeID(v)), r.Neighbors(NodeID(v))
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: sum of degrees equals arc count, and HasEdge agrees with
// Neighbors membership.
func TestQuickDegreeSumAndHasEdge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		var edges []Edge
		for i := 0; i < n*3; i++ {
			edges = append(edges, Edge{NodeID(rng.Intn(n)), NodeID(rng.Intn(n))})
		}
		g, err := FromEdges(n, edges, false)
		if err != nil {
			return false
		}
		var sum int64
		for v := 0; v < n; v++ {
			sum += int64(g.Degree(NodeID(v)))
			for _, u := range g.Neighbors(NodeID(v)) {
				if !g.HasEdge(NodeID(v), u) {
					return false
				}
			}
		}
		return sum == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAvgDegree(t *testing.T) {
	g := mustFromEdges(t, 4, []Edge{{0, 1}, {0, 2}, {0, 3}, {1, 2}}, false)
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
	if g.AvgDegree() != 1.0 {
		t.Fatalf("AvgDegree = %v", g.AvgDegree())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := mustFromEdges(t, 3, []Edge{{0, 1}, {1, 2}}, false)
	g.Col[0] = 99
	if err := g.Validate(); err == nil {
		t.Fatal("Validate must catch out-of-range column")
	}
}
