package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Partition assigns every node to one of k parts. It is the output of the
// data-splitting strategies discussed in paper §VII-A: ARGO's default
// random split versus a METIS-style balanced edge-cut partitioner
// (substituted here by a greedy BFS-grown partitioner, see DESIGN.md §2).
type Partition struct {
	K      int
	Assign []int32 // len NumNodes, values in [0,K)
}

// RandomPartition splits nodes into k parts uniformly at random — ARGO's
// default strategy, with negligible partitioning cost.
func RandomPartition(g *CSR, k int, rng *rand.Rand) *Partition {
	p := &Partition{K: k, Assign: make([]int32, g.NumNodes)}
	for v := range p.Assign {
		p.Assign[v] = int32(rng.Intn(k))
	}
	return p
}

// GreedyPartition grows k balanced parts by repeated BFS (a cheap
// stand-in for METIS: it trades noticeable partitioning time for a much
// lower edge cut). It is fully deterministic: BFS seeds are taken in
// descending-degree order with ties broken by ascending node id, and the
// BFS itself expands adjacency lists in their stored (sorted) order —
// the same graph always yields the same partition, which is what lets
// shard sets round-trip byte-stably and `argo-data shard` be
// reproducible across runs. (The previous implementation seeded from a
// random permutation, so equal-degree nodes could land in different
// parts run to run.)
func GreedyPartition(g *CSR, k int) *Partition {
	p := &Partition{K: k, Assign: make([]int32, g.NumNodes)}
	for v := range p.Assign {
		p.Assign[v] = -1
	}
	target := (g.NumNodes + k - 1) / k
	order := make([]int, g.NumNodes)
	for v := range order {
		order[v] = v
	}
	sort.SliceStable(order, func(i, j int) bool {
		di, dj := g.Degree(NodeID(order[i])), g.Degree(NodeID(order[j]))
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	cursor := 0
	nextSeed := func() NodeID {
		for cursor < len(order) {
			v := NodeID(order[cursor])
			cursor++
			if p.Assign[v] < 0 {
				return v
			}
		}
		return -1
	}
	queue := make([]NodeID, 0, target)
	for part := 0; part < k; part++ {
		size := 0
		queue = queue[:0]
		if s := nextSeed(); s >= 0 {
			p.Assign[s] = int32(part)
			queue = append(queue, s)
			size++
		}
		for size < target && (len(queue) > 0 || cursor < len(order)) {
			if len(queue) == 0 {
				s := nextSeed()
				if s < 0 {
					break
				}
				p.Assign[s] = int32(part)
				queue = append(queue, s)
				size++
				continue
			}
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				if size >= target {
					break
				}
				if p.Assign[u] < 0 {
					p.Assign[u] = int32(part)
					queue = append(queue, u)
					size++
				}
			}
		}
	}
	// Any stragglers (disconnected remnants) go to the smallest part.
	sizes := make([]int, k)
	for _, a := range p.Assign {
		if a >= 0 {
			sizes[a]++
		}
	}
	for v := range p.Assign {
		if p.Assign[v] < 0 {
			best := 0
			for i := 1; i < k; i++ {
				if sizes[i] < sizes[best] {
					best = i
				}
			}
			p.Assign[v] = int32(best)
			sizes[best]++
		}
	}
	return p
}

// EdgeCut returns the number of arcs crossing part boundaries.
func (p *Partition) EdgeCut(g *CSR) int64 {
	var cut int64
	for v := 0; v < g.NumNodes; v++ {
		for _, u := range g.Neighbors(NodeID(v)) {
			if p.Assign[v] != p.Assign[u] {
				cut++
			}
		}
	}
	return cut
}

// Balance returns max part size divided by ideal part size (1.0 is
// perfectly balanced).
func (p *Partition) Balance(g *CSR) float64 {
	sizes := make([]int, p.K)
	for _, a := range p.Assign {
		sizes[a]++
	}
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	ideal := float64(g.NumNodes) / float64(p.K)
	if ideal == 0 {
		return 1
	}
	return float64(max) / ideal
}

// Validate checks that every node is assigned to a part in [0, K).
func (p *Partition) Validate() error {
	for v, a := range p.Assign {
		if a < 0 || int(a) >= p.K {
			return fmt.Errorf("graph: node %d assigned to invalid part %d", v, a)
		}
	}
	return nil
}
