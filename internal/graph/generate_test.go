package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestGenerateBasicShape(t *testing.T) {
	g, labels, err := Generate(GenSpec{
		NumNodes: 500, NumEdges: 3000, NumClasses: 5,
		Exponent: 2.1, MinDegree: 2, Homophily: 0.6, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes != 500 || len(labels) != 500 {
		t.Fatalf("shape wrong: %d nodes, %d labels", g.NumNodes, len(labels))
	}
	// Symmetrized: roughly 2× the undirected target, minus dedup losses.
	if g.NumEdges() < 3000 || g.NumEdges() > 6200 {
		t.Fatalf("arc count %d outside plausible range", g.NumEdges())
	}
	for _, l := range labels {
		if l < 0 || l >= 5 {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := GenSpec{NumNodes: 300, NumEdges: 1500, NumClasses: 4, Seed: 42, Homophily: 0.5}
	g1, l1, err1 := Generate(spec)
	g2, l2, err2 := Generate(spec)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed must give same edge count")
	}
	for i := range g1.Col {
		if g1.Col[i] != g2.Col[i] {
			t.Fatal("same seed must give identical topology")
		}
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("same seed must give identical labels")
		}
	}
}

func TestGenerateSeedChangesGraph(t *testing.T) {
	spec := GenSpec{NumNodes: 300, NumEdges: 1500, NumClasses: 4, Homophily: 0.5}
	spec.Seed = 1
	g1, _, _ := Generate(spec)
	spec.Seed = 2
	g2, _, _ := Generate(spec)
	same := g1.NumEdges() == g2.NumEdges()
	if same {
		for i := range g1.Col {
			if g1.Col[i] != g2.Col[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestGenerateHomophily(t *testing.T) {
	g, labels, err := Generate(GenSpec{
		NumNodes: 1000, NumEdges: 8000, NumClasses: 4,
		Homophily: 0.8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var intra, total int64
	for v := 0; v < g.NumNodes; v++ {
		for _, u := range g.Neighbors(NodeID(v)) {
			total++
			if labels[v] == labels[u] {
				intra++
			}
		}
	}
	frac := float64(intra) / float64(total)
	// Homophily 0.8 with 4 classes: intra fraction ≈ 0.8 + 0.2/4 = 0.85.
	if frac < 0.7 {
		t.Fatalf("intra-class edge fraction %.2f too low for homophily 0.8", frac)
	}
	// Sanity: a homophily-0 graph should be near 1/numClasses.
	g0, l0, _ := Generate(GenSpec{NumNodes: 1000, NumEdges: 8000, NumClasses: 4, Homophily: 0, Seed: 3})
	intra, total = 0, 0
	for v := 0; v < g0.NumNodes; v++ {
		for _, u := range g0.Neighbors(NodeID(v)) {
			total++
			if l0[v] == l0[u] {
				intra++
			}
		}
	}
	if f0 := float64(intra) / float64(total); f0 > 0.4 {
		t.Fatalf("homophily-0 intra fraction %.2f unexpectedly high", f0)
	}
}

func TestGenerateHeavyTail(t *testing.T) {
	g, _, err := Generate(GenSpec{
		NumNodes: 2000, NumEdges: 16000, NumClasses: 2,
		Exponent: 2.0, MinDegree: 2, Homophily: 0.3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A power-law graph's max degree should far exceed its mean.
	if float64(g.MaxDegree()) < 5*g.AvgDegree() {
		t.Fatalf("degree distribution not heavy-tailed: max %d avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestGenerateInvalidSpec(t *testing.T) {
	if _, _, err := Generate(GenSpec{NumNodes: 0, NumEdges: 10}); err == nil {
		t.Fatal("expected error for 0 nodes")
	}
	if _, _, err := Generate(GenSpec{NumNodes: 10, NumEdges: 0}); err == nil {
		t.Fatal("expected error for 0 edges")
	}
}

func TestAliasSamplerDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	s := newAliasSampler(weights)
	rng := rand.New(rand.NewSource(5))
	counts := make([]int, 4)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[s.Sample(rng)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("alias sampler index %d: got %.3f want %.3f", i, got, want)
		}
	}
}

func TestAliasSamplerUniform(t *testing.T) {
	s := newAliasSampler([]float64{5, 5})
	rng := rand.New(rand.NewSource(6))
	c := 0
	for i := 0; i < 10000; i++ {
		c += s.Sample(rng)
	}
	if c < 4500 || c > 5500 {
		t.Fatalf("uniform sampler biased: %d/10000", c)
	}
}
