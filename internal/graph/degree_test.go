package graph

import (
	"reflect"
	"testing"
)

// star(k) builds a graph where node 0 has degree k and the leaves have
// degree 1 — the simplest skew fixture.
func degreeFixture(t *testing.T) *CSR {
	t.Helper()
	// Degrees (out): 0→3, 1→2, 2→2, 3→1, 4→0.
	g, err := FromEdges(5, []Edge{
		{0, 1}, {0, 2}, {0, 3},
		{1, 2},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTopDegreeOrderAndTieBreak(t *testing.T) {
	g := degreeFixture(t)
	// Symmetrized degrees: 0→3, 1→2, 2→2, 3→1, 4→0.
	got := TopDegree(g, 5)
	want := []NodeID{0, 1, 2, 3, 4} // ties (1,2) break ascending by id
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopDegree = %v, want %v", got, want)
	}
	if top2 := TopDegree(g, 2); !reflect.DeepEqual(top2, want[:2]) {
		t.Fatalf("TopDegree(2) = %v, want %v", top2, want[:2])
	}
}

func TestTopDegreeClamps(t *testing.T) {
	g := degreeFixture(t)
	if got := TopDegree(g, 0); got != nil {
		t.Fatalf("TopDegree(0) = %v, want nil", got)
	}
	if got := TopDegree(g, -3); got != nil {
		t.Fatalf("TopDegree(-3) = %v, want nil", got)
	}
	if got := TopDegree(g, 99); len(got) != g.NumNodes {
		t.Fatalf("TopDegree(99) returned %d nodes, want %d", len(got), g.NumNodes)
	}
}

func TestTopDegreeDeterministic(t *testing.T) {
	ds, err := BuildByName("flickr", 7)
	if err != nil {
		t.Fatal(err)
	}
	a := TopDegree(ds.Graph, 64)
	b := TopDegree(ds.Graph, 64)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("TopDegree is not deterministic")
	}
	for i := 1; i < len(a); i++ {
		di, dj := ds.Graph.Degree(a[i-1]), ds.Graph.Degree(a[i])
		if di < dj || (di == dj && a[i-1] >= a[i]) {
			t.Fatalf("rank %d out of order: node %d (deg %d) before node %d (deg %d)", i, a[i-1], di, a[i], dj)
		}
	}
}

func TestHubCount(t *testing.T) {
	cases := []struct {
		n    int
		frac float64
		want int
	}{
		{0, 0.5, 0},
		{100, 0, 0},
		{100, -1, 0},
		{100, 0.01, 1},
		{100, 0.001, 1}, // non-zero fraction on a non-empty graph selects ≥1
		{100, 0.25, 25},
		{100, 1, 100},
		{100, 7, 100},
	}
	for _, c := range cases {
		if got := HubCount(c.n, c.frac); got != c.want {
			t.Errorf("HubCount(%d, %g) = %d, want %d", c.n, c.frac, got, c.want)
		}
	}
	s := Stats{NumNodes: 2000}
	if got := s.HubCount(0.01); got != 20 {
		t.Errorf("Stats.HubCount(0.01) = %d, want 20", got)
	}
}
