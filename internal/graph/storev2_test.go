package graph

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// v2TestBytes returns a valid v2 dataset store plus its parsed section
// table, for tests that craft corruptions.
func v2TestBytes(t testing.TB) ([]byte, []sectionEntry) {
	t.Helper()
	ds := storeTestDataset(t)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	h, version, err := parseHeader2(b)
	if err != nil || version != storeVersion2 {
		t.Fatalf("parseHeader2: version %d, err %v", version, err)
	}
	entries, err := parseSectionTable(h, b[storeHeaderLen:], int64(len(b)))
	if err != nil {
		t.Fatal(err)
	}
	return b, entries
}

// rewriteTable mutates one table entry and fixes the table CRC so the
// corruption under test is the *extents*, not the checksum.
func rewriteTable(b []byte, idx int, mutate func(entry []byte)) []byte {
	out := append([]byte(nil), b...)
	count := int(binary.LittleEndian.Uint32(out[16:]))
	mutate(out[storeHeaderLen+idx*sectionEntryLen:])
	table := out[storeHeaderLen : storeHeaderLen+count*sectionEntryLen]
	binary.LittleEndian.PutUint32(out[20:], crc32.Checksum(table, storeCRC))
	return out
}

// Overlapping section extents must surface as ErrSectionOverlap — a
// distinct error, raised before any section payload is decoded — not as
// a generic decode failure.
func TestSectionTableOverlapDistinctError(t *testing.T) {
	b, entries := v2TestBytes(t)
	// Pull the features section 8 bytes into the csr section.
	var featIdx int
	for i, e := range entries {
		if e.ID == secFeatures {
			featIdx = i
		}
	}
	mut := rewriteTable(b, featIdx, func(e []byte) {
		off := binary.LittleEndian.Uint64(e[8:])
		binary.LittleEndian.PutUint64(e[8:], off-8)
		binary.LittleEndian.PutUint64(e[16:], binary.LittleEndian.Uint64(e[16:])+8)
	})
	_, err := ReadDataset(bytes.NewReader(mut))
	if !errors.Is(err, ErrSectionOverlap) {
		t.Fatalf("overlapping extents: got %v, want ErrSectionOverlap", err)
	}
	// The same distinct error must come out of the file-based verify path.
	path := filepath.Join(t.TempDir(), "overlap.argograph")
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyStore(path); !errors.Is(err, ErrSectionOverlap) {
		t.Fatalf("VerifyStore on overlap: got %v, want ErrSectionOverlap", err)
	}
}

func TestSectionTableOutOfBoundsDistinctError(t *testing.T) {
	b, entries := v2TestBytes(t)
	last := len(entries) - 1
	mut := rewriteTable(b, last, func(e []byte) {
		binary.LittleEndian.PutUint64(e[16:], binary.LittleEndian.Uint64(e[16:])+1<<32)
	})
	_, err := ReadDataset(bytes.NewReader(mut))
	if !errors.Is(err, ErrSectionBounds) {
		t.Fatalf("out-of-bounds extent: got %v, want ErrSectionBounds", err)
	}
}

func TestSectionTableGapRejected(t *testing.T) {
	b, entries := v2TestBytes(t)
	// Shrinking a middle section's length leaves a gap before the next.
	var csrIdx int
	for i, e := range entries {
		if e.ID == secCSR {
			csrIdx = i
		}
	}
	mut := rewriteTable(b, csrIdx, func(e []byte) {
		binary.LittleEndian.PutUint64(e[16:], binary.LittleEndian.Uint64(e[16:])-8)
	})
	if _, err := ReadDataset(bytes.NewReader(mut)); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("gapped sections accepted: %v", err)
	}
}

func TestSectionTableChecksumGuardsExtents(t *testing.T) {
	b, _ := v2TestBytes(t)
	// Mutating the table without fixing its CRC is caught by the header CRC.
	mut := append([]byte(nil), b...)
	mut[storeHeaderLen+8] ^= 1
	if _, err := ReadDataset(bytes.NewReader(mut)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("tampered table accepted: %v", err)
	}
}

// A corrupted section payload must fail exactly when that section is
// materialised — and only that section.
func TestV2SectionCorruptionIsolated(t *testing.T) {
	b, entries := v2TestBytes(t)
	var feat sectionEntry
	for _, e := range entries {
		if e.ID == secFeatures {
			feat = e
		}
	}
	mut := append([]byte(nil), b...)
	mut[feat.Offset+feat.Length/2] ^= 0x10
	lz, err := openLazySource(mmapSource{mut}, nil)
	if err != nil {
		t.Fatalf("open with corrupt features section: %v (spec/stats are intact)", err)
	}
	if _, err := lz.Topology(); err != nil {
		t.Fatalf("topology with corrupt features section: %v", err)
	}
	if _, err := lz.Features(); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt features section materialised: %v", err)
	}
}

// Golden v1 fixture: bytes written by the version-1 encoder (checked in,
// never regenerated) must load through the v2 entry points with every
// field bit-identical to a fresh build, and the retained v1 encoder must
// still reproduce the file byte-for-byte.
func TestGoldenV1FixtureLoadsThroughV2EntryPoints(t *testing.T) {
	const fixture = "testdata/golden-v1.argograph"
	want := storeTestDataset(t)
	got, err := LoadDataset(fixture)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("golden v1 fixture did not load bit-identically through LoadDataset")
	}
	raw, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	// Reader-based entry point too.
	got2, err := ReadDataset(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got2) {
		t.Fatal("golden v1 fixture did not load through ReadDataset")
	}
	// Spec fast path.
	spec, err := LoadSpec(fixture)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, want.Spec) {
		t.Fatalf("LoadSpec on v1 fixture = %+v", spec)
	}
	// Encoder stability: today's v1 writer reproduces yesterday's bytes.
	var again bytes.Buffer
	if err := want.writeV1(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, again.Bytes()) {
		t.Fatal("v1 encoder no longer reproduces the golden fixture bytes")
	}
}

// Upgrade is idempotent: v1 → v2 loads identically, and upgrading a v2
// store rewrites it byte-for-byte (so every section CRC is unchanged).
func TestUpgradeStoreIdempotent(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "v1.argograph")
	raw, err := os.ReadFile("testdata/golden-v1.argograph")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(src, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	up := filepath.Join(dir, "v2.argograph")
	srcVersion, _, err := UpgradeStore(src, up)
	if err != nil {
		t.Fatal(err)
	}
	if srcVersion != 1 {
		t.Fatalf("source version %d, want 1", srcVersion)
	}
	want, err := LoadDataset(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(up)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("upgraded store loads differently from the v1 original")
	}
	// Second upgrade: byte-identical output, same CRCs.
	up2 := filepath.Join(dir, "v2-again.argograph")
	srcVersion, identical, err := UpgradeStore(up, up2)
	if err != nil {
		t.Fatal(err)
	}
	if srcVersion != 2 {
		t.Fatalf("source version %d, want 2", srcVersion)
	}
	if !identical {
		t.Fatal("v2→v2 upgrade did not report byte-identical output")
	}
	b1, err := os.ReadFile(up)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(up2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("upgrading a v2 store is not byte-idempotent")
	}
	// In-place upgrade works too (the source handle is closed before
	// the atomic rename, so this is portable beyond linux).
	if _, identical, err := UpgradeStore(up, up); err != nil || !identical {
		t.Fatalf("in-place upgrade: identical=%v err=%v", identical, err)
	}
	b3, err := os.ReadFile(up)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b3) {
		t.Fatal("in-place upgrade changed the bytes")
	}
}

// A stats section that disagrees with the real topology is corruption,
// and every entry point that decodes the CSR — Topology, Dataset, and
// therefore VerifyStore — must catch it, not just the topology-only
// path.
func TestLyingStatsSectionRejectedEverywhere(t *testing.T) {
	b, entries := v2TestBytes(t)
	var stats sectionEntry
	for _, e := range entries {
		if e.ID == secStats {
			stats = e
		}
	}
	sec := b[stats.Offset : stats.Offset+stats.Length]
	// 400 → 401 keeps the JSON the same length, so only CRCs need fixing.
	fixed := bytes.Replace(sec, []byte(`"num_nodes":400`), []byte(`"num_nodes":401`), 1)
	if bytes.Equal(sec, fixed) {
		t.Fatal("test setup: num_nodes field not found in stats JSON")
	}
	mut := append([]byte(nil), b...)
	copy(mut[stats.Offset:], fixed)
	var statsIdx int
	for i, e := range entries {
		if e.ID == secStats {
			statsIdx = i
		}
	}
	mut = rewriteTable(mut, statsIdx, func(e []byte) {
		binary.LittleEndian.PutUint32(e[24:], crc32.Checksum(fixed, storeCRC))
	})
	if _, err := ReadDataset(bytes.NewReader(mut)); err == nil || !strings.Contains(err.Error(), "disagrees with stats") {
		t.Fatalf("ReadDataset accepted lying stats: %v", err)
	}
	path := filepath.Join(t.TempDir(), "lying.argograph")
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyStore(path); err == nil || !strings.Contains(err.Error(), "disagrees with stats") {
		t.Fatalf("VerifyStore accepted lying stats: %v", err)
	}
	if _, err := LoadCSR(path); err == nil || !strings.Contains(err.Error(), "disagrees with stats") {
		t.Fatalf("LoadCSR accepted lying stats: %v", err)
	}
}

// Future section ids are accepted by the table parser (the layout is
// extensible without a version bump), but they are still covered by
// verification — and upgrade refuses to rewrite what it would have to
// drop.
func TestUnknownSectionVerifiedAndNotDropped(t *testing.T) {
	ds := storeTestDataset(t)
	specJSON, _ := json.Marshal(ds.Spec)
	statsJSON, _ := json.Marshal(ComputeStats(ds))
	var csr enc
	encodeCSR(&csr, ds.Graph)
	var feats enc
	feats.u64(uint64(ds.Features.Rows))
	feats.u64(uint64(ds.Features.Cols))
	feats.f32s(ds.Features.Data)
	var labels enc
	labels.u64(uint64(len(ds.Labels)))
	labels.i32s(ds.Labels)
	var splits enc
	for _, split := range [][]NodeID{ds.TrainIdx, ds.ValIdx, ds.TestIdx} {
		splits.u64(uint64(len(split)))
		splits.i32s(split)
	}
	// Id 63 is unknown to this version of the code (7 and 8 are the
	// shard sections now); the promise under test is that a store
	// carrying a section id from the future still loads and verifies.
	future := []byte("future section payload")
	b := encodeSections(storeKindDataset, []section{
		{secSpec, specJSON},
		{secStats, statsJSON},
		{secCSR, csr.buf},
		{secFeatures, feats.buf},
		{secLabels, labels.buf},
		{secSplits, splits.buf},
		{63, future},
	})
	path := filepath.Join(t.TempDir(), "future.argograph")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	// The store loads (unknown sections are simply not materialised)…
	if _, err := LoadDataset(path); err != nil {
		t.Fatalf("store with extra section failed to load: %v", err)
	}
	// …verifies clean…
	if _, err := VerifyStore(path); err != nil {
		t.Fatalf("store with extra section failed verify: %v", err)
	}
	// …and verify catches corruption inside the unknown section, which
	// no decode path would ever touch.
	mut := append([]byte(nil), b...)
	mut[len(mut)-3] ^= 0x01
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyStore(path); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt unknown section passed verify: %v", err)
	}
	// Upgrade must refuse rather than silently drop the section.
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := UpgradeStore(path, filepath.Join(t.TempDir(), "out.argograph")); err == nil || !strings.Contains(err.Error(), "cannot re-encode") {
		t.Fatalf("upgrade silently handled an unknown section: %v", err)
	}
}

// The stats section must agree with the materialised dataset — it is
// precomputed at write time and trusted by metadata-only consumers.
func TestStatsSectionMatchesDataset(t *testing.T) {
	ds := storeTestDataset(t)
	path := filepath.Join(t.TempDir(), "stats.argograph")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	st, err := LoadStats(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, ComputeStats(ds)) {
		t.Fatalf("stored stats %+v != computed %+v", st, ComputeStats(ds))
	}
	if st.NumNodes != int64(ds.Graph.NumNodes) || st.NumArcs != ds.Graph.NumEdges() ||
		st.NumClasses != ds.NumClasses || st.TrainCount != len(ds.TrainIdx) {
		t.Fatalf("stats disagree with dataset: %+v", st)
	}
	var total int64
	for _, c := range st.DegreeHist {
		total += c
	}
	if total != int64(ds.Graph.NumNodes) {
		t.Fatalf("degree histogram sums to %d, want %d", total, ds.Graph.NumNodes)
	}
}

// CSR-kind v2 stores round-trip and expose stats.
func TestCSRStoreV2RoundTripWithStats(t *testing.T) {
	ds := storeTestDataset(t)
	path := filepath.Join(t.TempDir(), "topo.argograph")
	if err := ds.Graph.Save(path); err != nil {
		t.Fatal(err)
	}
	lz, err := OpenLazy(path)
	if err != nil {
		t.Fatal(err)
	}
	defer lz.Close()
	if lz.Kind() != "csr" || lz.Version() != 2 {
		t.Fatalf("kind %s version %d", lz.Kind(), lz.Version())
	}
	if got := lz.Stats().NumArcs; got != ds.Graph.NumEdges() {
		t.Fatalf("stats arcs %d, want %d", got, ds.Graph.NumEdges())
	}
	g, err := lz.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds.Graph, g) {
		t.Fatal("CSR did not round-trip through the v2 store")
	}
	// A bare-topology store has no dataset to materialise.
	if _, err := lz.Dataset(); err == nil {
		t.Fatal("Dataset() succeeded on a bare CSR store")
	}
}

// FuzzReadSectionTable drives the v2 container parser with arbitrary
// bytes: crafted section tables (overlaps, wild offsets, huge counts)
// must produce errors, never panics or giant allocations, and anything
// accepted must satisfy every invariant.
func FuzzReadSectionTable(f *testing.F) {
	valid, entries := v2TestBytes(f)
	f.Add(valid)
	f.Add(valid[:storeHeaderLen])
	f.Add(valid[:storeHeaderLen+3*sectionEntryLen])
	f.Add(valid[:len(valid)-7])
	// Seed an overlap and an out-of-bounds extent so the fuzzer starts
	// near the interesting rejection paths.
	var featIdx int
	for i, e := range entries {
		if e.ID == secFeatures {
			featIdx = i
		}
	}
	f.Add(rewriteTable(valid, featIdx, func(e []byte) {
		binary.LittleEndian.PutUint64(e[8:], binary.LittleEndian.Uint64(e[8:])-16)
	}))
	f.Add(rewriteTable(valid, 0, func(e []byte) {
		binary.LittleEndian.PutUint64(e[16:], 1<<50)
	}))
	// A header claiming the maximum section count over an empty body.
	hugeCount := append([]byte(nil), valid[:storeHeaderLen]...)
	binary.LittleEndian.PutUint32(hugeCount[16:], 1<<30)
	f.Add(hugeCount)
	f.Fuzz(func(t *testing.T, data []byte) {
		lz, err := openLazySource(mmapSource{data}, nil)
		if err != nil {
			return
		}
		// Accepted: every materialisation must either succeed with a
		// valid structure or fail cleanly.
		if g, err := lz.Topology(); err == nil {
			if err := g.Validate(); err != nil {
				t.Fatalf("accepted topology fails validation: %v", err)
			}
		}
		if lz.kind == storeKindDataset {
			if d, err := lz.Dataset(); err == nil {
				if err := d.Validate(); err != nil {
					t.Fatalf("accepted dataset fails validation: %v", err)
				}
			}
		}
	})
}
