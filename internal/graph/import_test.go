package graph

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

func TestImportEdgeListBasics(t *testing.T) {
	in := `# a comment line
src,dst
0,1
1,2
2 3
3	0
0,2
0,1
4;1
% matrix-market style comment
`
	ds, err := ImportEdgeList(strings.NewReader(in), ImportOptions{Name: "web", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Spec.Name != "web" || ds.Graph.NumNodes != 5 {
		t.Fatalf("spec %+v, %d nodes", ds.Spec, ds.Graph.NumNodes)
	}
	// 6 distinct undirected edges → 12 arcs (duplicate 0-1 deduped).
	if ds.Graph.NumEdges() != 12 {
		t.Fatalf("%d arcs, want 12", ds.Graph.NumEdges())
	}
	// Symmetry: u→v implies v→u.
	for v := 0; v < ds.Graph.NumNodes; v++ {
		for _, u := range ds.Graph.Neighbors(NodeID(v)) {
			found := false
			for _, w := range ds.Graph.Neighbors(u) {
				if int(w) == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("arc %d→%d has no reverse", v, u)
			}
		}
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	// Synthesised defaults.
	if ds.Features.Cols != 16 || ds.NumClasses != 4 {
		t.Fatalf("defaults: %d-wide features, %d classes", ds.Features.Cols, ds.NumClasses)
	}

	// Determinism: the same input and seed produce identical datasets.
	again, err := ImportEdgeList(strings.NewReader(in), ImportOptions{Name: "web", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Features.Equal(again.Features) {
		t.Fatal("synthesised features not deterministic")
	}
	for i := range ds.Labels {
		if ds.Labels[i] != again.Labels[i] {
			t.Fatal("synthesised labels not deterministic")
		}
	}
	for i := range ds.TrainIdx {
		if ds.TrainIdx[i] != again.TrainIdx[i] {
			t.Fatal("split shuffle not deterministic")
		}
	}
}

func TestImportEdgeListDirected(t *testing.T) {
	ds, err := ImportEdgeList(strings.NewReader("0 1\n1 2\n"), ImportOptions{Directed: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Graph.NumEdges() != 2 {
		t.Fatalf("%d arcs, want 2 (directed)", ds.Graph.NumEdges())
	}
	if len(ds.Graph.Neighbors(1)) != 1 || ds.Graph.Neighbors(1)[0] != 2 {
		t.Fatalf("node 1 adjacency %v", ds.Graph.Neighbors(1))
	}
	// Directed specs record raw arcs; symmetrised specs record edges.
	if ds.Spec.ScaledEdges != 2 {
		t.Fatalf("directed spec records %d edges, want 2", ds.Spec.ScaledEdges)
	}
}

func TestImportWithLabelAndFeatureCSVs(t *testing.T) {
	edges := "0 1\n1 2\n2 0\n"
	labels := "node,label\n0,1\n2,0\n1,1\n"
	feats := "0,0.5,-1\n1,2,3\n2,-0.25,4\n"
	ds, err := ImportEdgeList(strings.NewReader(edges), ImportOptions{
		Seed:     1,
		Labels:   strings.NewReader(labels),
		Features: strings.NewReader(feats),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumClasses != 2 {
		t.Fatalf("%d classes, want 2 (max label + 1)", ds.NumClasses)
	}
	if ds.Labels[0] != 1 || ds.Labels[1] != 1 || ds.Labels[2] != 0 {
		t.Fatalf("labels %v", ds.Labels)
	}
	if ds.Features.Cols != 2 {
		t.Fatalf("feature width %d, want 2", ds.Features.Cols)
	}
	if row := ds.Features.Row(2); row[0] != -0.25 || row[1] != 4 {
		t.Fatalf("node 2 features %v", row)
	}
}

func TestImportRejectsBadInput(t *testing.T) {
	cases := map[string]struct {
		edges string
		opt   ImportOptions
	}{
		"empty":            {"", ImportOptions{}},
		"only comments":    {"# nothing\n", ImportOptions{}},
		"one field":        {"0 1\n7\n", ImportOptions{}},
		"negative id":      {"0 -3\n", ImportOptions{}},
		"non-integer":      {"0 1\n2 x\n", ImportOptions{}},
		"huge id":          {"0 999999999999\n", ImportOptions{}},
		"label twice":      {"0 1\n", ImportOptions{Labels: strings.NewReader("0,1\n0,1\n1,0\n")}},
		"label missing":    {"0 1\n", ImportOptions{Labels: strings.NewReader("0,1\n")}},
		"label oob node":   {"0 1\n", ImportOptions{Labels: strings.NewReader("0,0\n1,0\n9,0\n")}},
		"feat width skew":  {"0 1\n", ImportOptions{Features: strings.NewReader("0,1,2\n1,3\n")}},
		"feat non-number":  {"0 1\n", ImportOptions{Features: strings.NewReader("0,a\n1,2\n")}},
		"feat missing row": {"0 1\n", ImportOptions{Features: strings.NewReader("0,1\n")}},
	}
	for name, c := range cases {
		if _, err := ImportEdgeList(strings.NewReader(c.edges), c.opt); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// An imported dataset must be a first-class store citizen: save,
// verify, reload, and shard like any generated workload.
func TestImportedDatasetRoundTripsAndShards(t *testing.T) {
	var sb strings.Builder
	for v := 0; v < 60; v++ {
		fmt.Fprintf(&sb, "%d %d\n", v, (v+1)%60)
		fmt.Fprintf(&sb, "%d %d\n", v, (v+7)%60)
	}
	ds, err := ImportEdgeList(strings.NewReader(sb.String()), ImportOptions{Name: "ring", Seed: 2, TrainFrac: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ring.argograph")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyStore(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Features.Equal(ds.Features) || loaded.Graph.NumEdges() != ds.Graph.NumEdges() {
		t.Fatal("imported store did not round-trip")
	}
	ss, err := ShardSetFromDataset(ds, ShardOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if err := ss.Validate(); err != nil {
		t.Fatal(err)
	}
	back, err := ss.AssembleDataset()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Features.Equal(ds.Features) {
		t.Fatal("sharding an imported dataset is not invertible")
	}
}
