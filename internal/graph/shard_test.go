package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func shardTestDataset(t *testing.T) *Dataset {
	t.Helper()
	spec := DatasetSpec{
		Name:        "shardtest",
		ScaledNodes: 300, ScaledEdges: 1800,
		ScaledF0: 12, ScaledHidden: 8, ScaledClasses: 4,
		Homophily: 0.6, Exponent: 2.2, TrainFrac: 0.5,
	}
	ds, err := Build(spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func writeTestShards(t *testing.T, ds *Dataset, k int) (dir string, paths []string, man *ShardManifest) {
	t.Helper()
	dir = t.TempDir()
	man, paths, err := WriteShardSet(ds, dir, "shardtest", ShardOptions{K: k})
	if err != nil {
		t.Fatal(err)
	}
	return dir, paths, man
}

func encodeBytes(t *testing.T, d *Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Sharding and reassembly are exact inverses, and both directions are
// byte-stable: sharding the same dataset twice produces identical
// files, and sharding the reassembled dataset reproduces the originals
// byte for byte. This is the acceptance gate for `argo-data shard`.
func TestShardSetRoundTripByteStable(t *testing.T) {
	ds := shardTestDataset(t)
	_, paths, _ := writeTestShards(t, ds, 4)

	// Same input, second run: every file byte-identical.
	dir2 := t.TempDir()
	if _, paths2, err := WriteShardSet(ds, dir2, "shardtest", ShardOptions{K: 4}); err != nil {
		t.Fatal(err)
	} else {
		for i := range paths {
			a, _ := os.ReadFile(paths[i])
			b, _ := os.ReadFile(paths2[i])
			if !bytes.Equal(a, b) {
				t.Fatalf("shard %d not byte-stable across identical runs", i)
			}
		}
	}

	ss, err := OpenShardSet(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if err := ss.Validate(); err != nil {
		t.Fatal(err)
	}
	asm, err := ss.AssembleDataset()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeBytes(t, asm), encodeBytes(t, ds)) {
		t.Fatal("assembled dataset does not re-encode to the original bytes")
	}

	// Shard the reassembly: files must reproduce the originals exactly.
	dir3 := t.TempDir()
	_, paths3, err := WriteShardSet(asm, dir3, "shardtest", ShardOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range paths {
		a, _ := os.ReadFile(paths[i])
		b, _ := os.ReadFile(paths3[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("shard %d of the reassembled dataset differs from the original shard", i)
		}
	}
}

// Every shard is an ordinary v2 dataset store: it verifies end to end
// (the shard sections are CRC-checked without being decoded) and loads
// through the plain LoadDataset entry point — the forward-compat
// promise that lets pre-shard readers handle shard stores.
func TestShardStoresArePlainStores(t *testing.T) {
	ds := shardTestDataset(t)
	_, paths, man := writeTestShards(t, ds, 3)
	for i, p := range paths {
		check, err := VerifyStore(p)
		if err != nil {
			t.Fatalf("shard %d failed verify: %v", i, err)
		}
		want := []string{"spec", "stats", "csr", "features", "labels", "splits", "shardmap"}
		if i == 0 {
			want = append(want, "manifest")
		}
		var names []string
		for _, s := range check.Sections {
			names = append(names, s.Name)
		}
		if !reflect.DeepEqual(names, want) {
			t.Fatalf("shard %d sections %v, want %v", i, names, want)
		}
		local, err := LoadDataset(p)
		if err != nil {
			t.Fatalf("shard %d failed plain load: %v", i, err)
		}
		if local.Graph.NumNodes != man.Shards[i].Owned+man.Shards[i].Halo {
			t.Fatalf("shard %d has %d local nodes, manifest says %d+%d",
				i, local.Graph.NumNodes, man.Shards[i].Owned, man.Shards[i].Halo)
		}
		st, err := LoadStats(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Shard == nil || st.Shard.Index != i || st.Shard.Count != 3 ||
			st.Shard.Owned != man.Shards[i].Owned || st.Shard.Halo != man.Shards[i].Halo ||
			st.Shard.CutArcs != man.Shards[i].CutArcs {
			t.Fatalf("shard %d stats profile %+v disagrees with manifest entry %+v", i, st.Shard, man.Shards[i])
		}
	}
}

// Validate and AssembleTopology are topology-only: no shard's feature
// section is materialised, which is what lets a halo-exchange planner
// run over out-of-core stores.
func TestShardValidateIsTopologyOnly(t *testing.T) {
	ds := shardTestDataset(t)
	_, paths, _ := writeTestShards(t, ds, 4)
	ss, err := OpenShardSet(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if err := ss.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.AssembleTopology(); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Skeleton(); err != nil {
		t.Fatal(err)
	}
	for i, lz := range ss.lazies {
		if lz == nil {
			t.Fatalf("shard %d never opened during validation", i)
		}
		if lz.feats != nil {
			t.Fatalf("shard %d's features were materialised by a topology-only pass", i)
		}
	}
}

// The in-memory constructor produces exactly the shards the file writer
// stores, so `argo-train -shards name#k` and a pre-sharded store train
// identically.
func TestShardSetFromDatasetMatchesFiles(t *testing.T) {
	ds := shardTestDataset(t)
	_, paths, man := writeTestShards(t, ds, 3)
	mem, err := ShardSetFromDataset(ds, ShardOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if !reflect.DeepEqual(*man, mem.Manifest) {
		t.Fatalf("in-memory manifest differs from written one:\n%+v\n%+v", mem.Manifest, *man)
	}
	for i := range paths {
		onDisk, err := LoadDataset(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		lz, err := mem.Shard(i)
		if err != nil {
			t.Fatal(err)
		}
		inMem, err := lz.Dataset()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeBytes(t, onDisk), encodeBytes(t, inMem)) {
			t.Fatalf("shard %d differs between file and in-memory construction", i)
		}
	}
}

// Owner resolution agrees with the shard maps, and LocalID/GlobalID are
// inverses over every shard's node space.
func TestShardOwnerAndLocalGlobalMaps(t *testing.T) {
	ds := shardTestDataset(t)
	ss, err := ShardSetFromDataset(ds, ShardOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	ownerOf := make([]int, ds.Graph.NumNodes)
	for v := 0; v < ds.Graph.NumNodes; v++ {
		o, err := ss.Owner(NodeID(v))
		if err != nil {
			t.Fatal(err)
		}
		ownerOf[v] = o
	}
	counted := 0
	for s := 0; s < ss.K(); s++ {
		sm, err := ss.ShardMap(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range sm.Owned {
			if ownerOf[v] != s {
				t.Fatalf("node %d owned by shard %d per map, %d per manifest", v, s, ownerOf[v])
			}
			counted++
		}
		for l := 0; l < len(sm.Owned)+len(sm.Halo); l++ {
			g, err := sm.GlobalID(NodeID(l))
			if err != nil {
				t.Fatal(err)
			}
			if back := sm.LocalID(g); back != NodeID(l) {
				t.Fatalf("shard %d: local %d → global %d → local %d", s, l, g, back)
			}
		}
		if sm.LocalID(NodeID(ds.Graph.NumNodes+5)) != -1 {
			t.Fatal("LocalID resolved a node outside the graph")
		}
	}
	if counted != ds.Graph.NumNodes {
		t.Fatalf("shards own %d of %d nodes", counted, ds.Graph.NumNodes)
	}
	if _, err := ss.Owner(-1); err == nil {
		t.Fatal("Owner accepted a negative node id")
	}
}

// GlobalStats, derived purely from the shards' stats sections, must
// equal the stats computed from the materialised global dataset.
func TestShardGlobalStatsMatchComputed(t *testing.T) {
	ds := shardTestDataset(t)
	ss, err := ShardSetFromDataset(ds, ShardOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	got, err := ss.GlobalStats()
	if err != nil {
		t.Fatal(err)
	}
	if want := ComputeStats(ds); !reflect.DeepEqual(got, want) {
		t.Fatalf("global stats from shards:\n%+v\nwant:\n%+v", got, want)
	}
}

// The random partitioner shards too, and records itself in the
// manifest; unknown partitioners and degenerate shard counts fail fast.
func TestShardOptionsPartitioners(t *testing.T) {
	ds := shardTestDataset(t)
	ss, err := ShardSetFromDataset(ds, ShardOptions{K: 2, Partitioner: "random", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if ss.Manifest.Partitioner != "random" || ss.Manifest.Seed != 5 {
		t.Fatalf("manifest records %q/%d", ss.Manifest.Partitioner, ss.Manifest.Seed)
	}
	if err := ss.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := ShardSetFromDataset(ds, ShardOptions{K: 2, Partitioner: "metis"}); err == nil {
		t.Fatal("unknown partitioner accepted")
	}
	if _, err := ShardSetFromDataset(ds, ShardOptions{K: 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := ShardSetFromDataset(ds, ShardOptions{K: ds.Graph.NumNodes + 1}); err == nil {
		t.Fatal("k > nodes accepted")
	}
}

// Opening a non-shard store as a shard set fails with a clear message,
// and a corrupted manifest section is caught by its CRC.
func TestOpenShardSetRejectsNonShardAndCorruptStores(t *testing.T) {
	ds := shardTestDataset(t)
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.argograph")
	if err := ds.Save(plain); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShardSet(plain); err == nil || !strings.Contains(err.Error(), "no manifest section") {
		t.Fatalf("plain store opened as shard set: %v", err)
	}

	_, paths, _ := writeTestShards(t, ds, 2)
	raw, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x40 // inside the manifest JSON, the last section
	if err := os.WriteFile(paths[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenShardSet(paths[0]); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt manifest not caught: %v", err)
	}
}

// UpgradeStore carries the shard sections through a rewrite untouched:
// upgrading a shard store in place is byte-idempotent, halo profile and
// manifest included.
func TestUpgradeStorePreservesShardSections(t *testing.T) {
	ds := shardTestDataset(t)
	_, paths, _ := writeTestShards(t, ds, 2)
	for i, p := range paths {
		before, _ := os.ReadFile(p)
		version, identical, err := UpgradeStore(p, p)
		if err != nil {
			t.Fatalf("shard %d upgrade: %v", i, err)
		}
		if version != 2 || !identical {
			t.Fatalf("shard %d upgrade not byte-idempotent (v%d, identical=%v)", i, version, identical)
		}
		after, _ := os.ReadFile(p)
		if !bytes.Equal(before, after) {
			t.Fatalf("shard %d bytes changed by upgrade", i)
		}
	}
}

// A shard set whose partition starves any shard of training nodes is
// refused at write time rather than failing mid-train.
func TestShardSetRefusesTrainStarvedShards(t *testing.T) {
	spec := DatasetSpec{
		Name:        "starve",
		ScaledNodes: 40, ScaledEdges: 160,
		ScaledF0: 4, ScaledHidden: 4, ScaledClasses: 2,
		Homophily: 0.6, Exponent: 2.2, TrainFrac: 0.05, // 2 train nodes
	}
	ds, err := Build(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ShardSetFromDataset(ds, ShardOptions{K: 8}); err == nil ||
		!(strings.Contains(err.Error(), "training nodes") || strings.Contains(err.Error(), "owns no nodes")) {
		t.Fatalf("train-starved sharding accepted: %v", err)
	}
}

// The manifest cost accessors are the exchange planner's input: totals
// must agree with the per-shard entries, and the replica aggregation
// must follow the engine's shard→replica mapping (s mod n).
func TestManifestCostAccessors(t *testing.T) {
	ds := shardTestDataset(t)
	ss, err := ShardSetFromDataset(ds, ShardOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	m := &ss.Manifest
	var want int64
	for _, e := range m.Shards {
		want += e.CutArcs
	}
	if got := m.TotalCutArcs(); got != want || got == 0 {
		t.Fatalf("TotalCutArcs %d, want %d (non-zero)", got, want)
	}
	frac := m.EdgeCutFraction()
	if frac <= 0 || frac >= 1 {
		t.Fatalf("EdgeCutFraction %v", frac)
	}
	if frac != float64(want)/float64(m.NumArcs) {
		t.Fatalf("EdgeCutFraction %v inconsistent with totals", frac)
	}
	for _, n := range []int{1, 2, 3, 4, 7} {
		cuts := m.ReplicaCutArcs(n)
		if len(cuts) != n {
			t.Fatalf("ReplicaCutArcs(%d) has %d entries", n, len(cuts))
		}
		var sum int64
		for _, c := range cuts {
			sum += c
		}
		if sum != want {
			t.Fatalf("ReplicaCutArcs(%d) sums to %d, want %d", n, sum, want)
		}
	}
	// Shard s lands on replica s mod n.
	cuts := m.ReplicaCutArcs(3)
	var manual [3]int64
	for s, e := range m.Shards {
		manual[s%3] += e.CutArcs
	}
	for r := range manual {
		if cuts[r] != manual[r] {
			t.Fatalf("replica %d cut %d, want %d", r, cuts[r], manual[r])
		}
	}
	if m.ReplicaCutArcs(0) != nil {
		t.Fatal("ReplicaCutArcs(0) should be nil")
	}
}
