package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"argo/internal/platform"
)

// recordingSource wraps a sectionSource and records every byte range
// read through it, so tests can prove which parts of a store a given
// access path touches.
type recordingSource struct {
	inner sectionSource
	reads [][2]uint64 // {offset, length}
}

func (r *recordingSource) view(off, n uint64) ([]byte, error) {
	r.reads = append(r.reads, [2]uint64{off, n})
	return r.inner.view(off, n)
}

func (r *recordingSource) size() int64 { return r.inner.size() }

// touched reports whether any recorded read intersects [off, off+n).
func (r *recordingSource) touched(off, n uint64) bool {
	for _, rd := range r.reads {
		if rd[0] < off+n && off < rd[0]+rd[1] {
			return true
		}
	}
	return false
}

func sectionExtent(t *testing.T, lz *LazyDataset, id uint32) (uint64, uint64) {
	t.Helper()
	e, ok := findSection(lz.sections, id)
	if !ok {
		t.Fatalf("store has no section %s", SectionName(id))
	}
	return e.Offset, e.Length
}

// The acceptance property of the sectioned format: opening a store and
// reading its spec and stats touches no CSR or feature bytes;
// materialising topology touches CSR but still no feature bytes.
// Features are read only when asked for.
func TestLazyOpenReadsOnlyMetadataSections(t *testing.T) {
	ds := storeTestDataset(t)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	rec := &recordingSource{inner: mmapSource{buf.Bytes()}}
	lz, err := openLazySource(rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Spec and stats are already decoded; consuming them reads nothing.
	if lz.Spec().Name != ds.Spec.Name {
		t.Fatalf("spec name %q", lz.Spec().Name)
	}
	if lz.Stats().NumNodes != int64(ds.Graph.NumNodes) {
		t.Fatalf("stats nodes %d", lz.Stats().NumNodes)
	}
	csrOff, csrLen := sectionExtent(t, lz, secCSR)
	featOff, featLen := sectionExtent(t, lz, secFeatures)
	labOff, labLen := sectionExtent(t, lz, secLabels)
	if rec.touched(csrOff, csrLen) {
		t.Fatal("opening the store read CSR bytes")
	}
	if rec.touched(featOff, featLen) {
		t.Fatal("opening the store read feature bytes")
	}
	if rec.touched(labOff, labLen) {
		t.Fatal("opening the store read label bytes")
	}

	// Topology-only consumers (samplers, partitioners, inspect) pay for
	// the CSR section and nothing else.
	g, err := lz.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds.Graph, g) {
		t.Fatal("lazy topology differs from original")
	}
	if !rec.touched(csrOff, csrLen) {
		t.Fatal("Topology did not read the CSR section")
	}
	if rec.touched(featOff, featLen) {
		t.Fatal("Topology read feature bytes")
	}

	// Features materialise on demand — and only then.
	m, err := lz.Features()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds.Features, m) {
		t.Fatal("lazy features differ from original")
	}
	if !rec.touched(featOff, featLen) {
		t.Fatal("Features did not read the features section")
	}

	// Full materialisation through the same handle equals the original.
	full, err := lz.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, full) {
		t.Fatal("lazy-assembled dataset differs from original")
	}
}

// File-level check of the same property: LoadCSR on a v2 *dataset*
// store extracts topology without materialising features, and the
// result matches the eager load.
func TestLoadCSRFromDatasetStore(t *testing.T) {
	ds := storeTestDataset(t)
	path := filepath.Join(t.TempDir(), "ds.argograph")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	g, err := LoadCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds.Graph, g) {
		t.Fatal("LoadCSR on dataset store differs from original topology")
	}
}

// A v2 store with a corrupt features section still serves topology —
// proof that LoadCSR never touches feature bytes even on-disk.
func TestLoadCSRIgnoresCorruptFeatureSection(t *testing.T) {
	ds := storeTestDataset(t)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	lzProbe, err := openLazySource(mmapSource{b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	featOff, featLen := sectionExtent(t, lzProbe, secFeatures)
	mut := append([]byte(nil), b...)
	mut[featOff+featLen/2] ^= 0x08
	path := filepath.Join(t.TempDir(), "corrupt-feat.argograph")
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadCSR(path)
	if err != nil {
		t.Fatalf("LoadCSR failed on a store whose only damage is in features: %v", err)
	}
	if !reflect.DeepEqual(ds.Graph, g) {
		t.Fatal("topology mismatch")
	}
	// The eager load, which does decode features, must reject the store.
	if _, err := LoadDataset(path); err == nil {
		t.Fatal("LoadDataset accepted a corrupt features section")
	}
}

// OpenLazy over a v1 file degrades to an eager decode behind the same
// API: same data, stats computed, accessors all work.
func TestOpenLazyV1Fallback(t *testing.T) {
	want := storeTestDataset(t)
	lz, err := OpenLazy("testdata/golden-v1.argograph")
	if err != nil {
		t.Fatal(err)
	}
	defer lz.Close()
	if lz.Version() != 1 || lz.AccessMode() != "eager" {
		t.Fatalf("version %d access %s", lz.Version(), lz.AccessMode())
	}
	if lz.Stats().NumNodes != int64(want.Graph.NumNodes) {
		t.Fatalf("v1 stats nodes %d", lz.Stats().NumNodes)
	}
	g, err := lz.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Graph, g) {
		t.Fatal("v1 lazy topology differs")
	}
	d, err := lz.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, d) {
		t.Fatal("v1 lazy dataset differs")
	}
}

// OpenLazy on linux serves sections from an mmap; everywhere it must
// report a coherent access mode and produce identical data.
func TestOpenLazyFileAccessMode(t *testing.T) {
	ds := storeTestDataset(t)
	path := filepath.Join(t.TempDir(), "mapped.argograph")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	lz, err := OpenLazy(path)
	if err != nil {
		t.Fatal(err)
	}
	defer lz.Close()
	if platform.MmapSupported {
		if !lz.Mapped() || lz.AccessMode() != "mmap" {
			t.Fatalf("expected mmap access on this platform, got %s", lz.AccessMode())
		}
	} else if lz.AccessMode() != "pread" {
		t.Fatalf("expected pread fallback, got %s", lz.AccessMode())
	}
	d, err := lz.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, d) {
		t.Fatal("mapped dataset differs from original")
	}
}

func TestLazyFromDataset(t *testing.T) {
	ds := storeTestDataset(t)
	lz := LazyFromDataset(ds)
	defer lz.Close()
	if lz.AccessMode() != "memory" {
		t.Fatalf("access mode %s", lz.AccessMode())
	}
	d, err := lz.Dataset()
	if err != nil {
		t.Fatal(err)
	}
	if d != ds {
		t.Fatal("LazyFromDataset did not return the wrapped dataset")
	}
	train, _, _, err := lz.Splits()
	if err != nil {
		t.Fatal(err)
	}
	if len(train) != len(ds.TrainIdx) {
		t.Fatalf("splits %d train ids, want %d", len(train), len(ds.TrainIdx))
	}
}

// Concurrent materialisation through one handle must be race-free (the
// race CI job runs this with -race).
func TestLazyConcurrentAccess(t *testing.T) {
	ds := storeTestDataset(t)
	path := filepath.Join(t.TempDir(), "conc.argograph")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	lz, err := OpenLazy(path)
	if err != nil {
		t.Fatal(err)
	}
	defer lz.Close()
	done := make(chan error, 4)
	go func() { _, err := lz.Topology(); done <- err }()
	go func() { _, err := lz.Features(); done <- err }()
	go func() { _, err := lz.Labels(); done <- err }()
	go func() { _, _, _, err := lz.Splits(); done <- err }()
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if _, err := lz.Dataset(); err != nil {
		t.Fatal(err)
	}
}

// FeatureRow must return the same bits as the materialised matrix, on
// every access mode: section-backed (pre-materialisation), cached
// matrix (post-Features), and eager wrap.
func TestFeatureRowMatchesFullDecode(t *testing.T) {
	ds := storeTestDataset(t)
	path := filepath.Join(t.TempDir(), "rows.argograph")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	lz, err := OpenLazy(path)
	if err != nil {
		t.Fatal(err)
	}
	defer lz.Close()
	if lz.FeatureDim() != ds.Features.Cols || lz.NumFeatureRows() != ds.Features.Rows {
		t.Fatalf("feature shape %dx%d, want %dx%d",
			lz.NumFeatureRows(), lz.FeatureDim(), ds.Features.Rows, ds.Features.Cols)
	}
	buf := make([]float32, 0, lz.FeatureDim())
	for _, i := range []int{0, 1, ds.Features.Rows / 2, ds.Features.Rows - 1} {
		row, err := lz.FeatureRow(i, buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(row, ds.Features.Row(i)) {
			t.Fatalf("section-backed row %d differs", i)
		}
	}
	if _, err := lz.FeatureRow(-1, nil); err == nil {
		t.Fatal("row -1 accepted")
	}
	if _, err := lz.FeatureRow(ds.Features.Rows, nil); err == nil {
		t.Fatal("row past the end accepted")
	}
	// After full materialisation the accessor serves from the cached
	// matrix; values are unchanged.
	if _, err := lz.Features(); err != nil {
		t.Fatal(err)
	}
	row, err := lz.FeatureRow(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(row, ds.Features.Row(2)) {
		t.Fatal("matrix-backed row differs")
	}
	// Eager wrap (registry-built workloads) flows through the same API.
	wrapped := LazyFromDataset(ds)
	row, err = wrapped.FeatureRow(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(row, ds.Features.Row(3)) {
		t.Fatal("eager-wrapped row differs")
	}
}

// The serving-path acceptance property: gathering the features of a
// k-hop neighborhood row by row touches only those rows' bytes — the
// full feature matrix is never materialised. This is what lets an
// inference server answer queries against a store much larger than RAM.
func TestFeatureRowKHopGatherNeverMaterialisesMatrix(t *testing.T) {
	ds := storeTestDataset(t)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	rec := &recordingSource{inner: mmapSource{buf.Bytes()}}
	lz, err := openLazySource(rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A 2-hop frontier from a handful of targets, exactly what the
	// inference gather walks.
	g, err := lz.Topology()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[NodeID]bool{}
	frontier := []NodeID{0, 7, 13}
	for _, v := range frontier {
		seen[v] = true
	}
	for hop := 0; hop < 2; hop++ {
		var next []NodeID
		for _, v := range frontier {
			for _, u := range g.Neighbors(v) {
				if !seen[u] {
					seen[u] = true
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	if len(seen) == ds.Graph.NumNodes {
		t.Fatalf("degenerate test: 2-hop frontier covers all %d nodes", len(seen))
	}
	readsBefore := len(rec.reads)
	scratch := make([]float32, lz.FeatureDim())
	for v := range seen {
		row, err := lz.FeatureRow(int(v), scratch)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(row, ds.Features.Row(int(v))) {
			t.Fatalf("row %d differs", v)
		}
	}
	featOff, featLen := sectionExtent(t, lz, secFeatures)
	rowBytes := uint64(lz.FeatureDim()) * 4
	var featureBytes uint64
	for _, rd := range rec.reads[readsBefore:] {
		if rd[0] < featOff || rd[0]+rd[1] > featOff+featLen {
			t.Fatalf("gather read [%d,+%d) outside the features section", rd[0], rd[1])
		}
		featureBytes += rd[1]
	}
	// One 16-byte header check plus one row read per gathered node, with
	// scratch reuse: nothing proportional to the full matrix.
	want := 16 + rowBytes*uint64(len(seen))
	if featureBytes != want {
		t.Fatalf("gather read %d feature bytes, want exactly %d (%d rows)", featureBytes, want, len(seen))
	}
	if featureBytes >= featLen {
		t.Fatalf("gather read %d of %d feature-section bytes — matrix was materialised", featureBytes, featLen)
	}
}
