package graph

import (
	"testing"
)

func TestRegistryMatchesTableIII(t *testing.T) {
	want := map[string]PaperStats{
		"flickr":          {89_250, 899_756, 500, 128, 7},
		"reddit":          {232_965, 11_606_919, 602, 128, 41},
		"ogbn-products":   {2_449_029, 61_859_140, 100, 128, 47},
		"ogbn-papers100M": {111_059_956, 1_615_685_872, 128, 128, 172},
	}
	if len(Registry) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(Registry), len(want))
	}
	for _, spec := range Registry {
		w, ok := want[spec.Name]
		if !ok {
			t.Fatalf("unexpected dataset %q", spec.Name)
		}
		if spec.Paper != w {
			t.Fatalf("%s paper stats = %+v, want %+v", spec.Name, spec.Paper, w)
		}
	}
}

func TestSpecLookup(t *testing.T) {
	if _, err := Spec("reddit"); err != nil {
		t.Fatal(err)
	}
	if _, err := Spec("nope"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestBuildDataset(t *testing.T) {
	ds, err := BuildByName("flickr", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Graph.NumNodes != ds.Spec.ScaledNodes {
		t.Fatalf("graph size %d != spec %d", ds.Graph.NumNodes, ds.Spec.ScaledNodes)
	}
	if ds.Features.Rows != ds.Spec.ScaledNodes || ds.Features.Cols != ds.Spec.ScaledF0 {
		t.Fatalf("features %dx%d", ds.Features.Rows, ds.Features.Cols)
	}
	if len(ds.Labels) != ds.Spec.ScaledNodes {
		t.Fatal("labels length mismatch")
	}
	total := len(ds.TrainIdx) + len(ds.ValIdx) + len(ds.TestIdx)
	if total != ds.Spec.ScaledNodes {
		t.Fatalf("splits cover %d of %d nodes", total, ds.Spec.ScaledNodes)
	}
	// Splits must be disjoint.
	seen := make(map[NodeID]bool, total)
	for _, set := range [][]NodeID{ds.TrainIdx, ds.ValIdx, ds.TestIdx} {
		for _, v := range set {
			if seen[v] {
				t.Fatalf("node %d appears in two splits", v)
			}
			seen[v] = true
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := BuildByName("ogbn-products", 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildByName("ogbn-products", 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("same seed gave different graphs")
	}
	if a.Features.MaxAbsDiff(b.Features) != 0 {
		t.Fatal("same seed gave different features")
	}
	for i := range a.TrainIdx {
		if a.TrainIdx[i] != b.TrainIdx[i] {
			t.Fatal("same seed gave different splits")
		}
	}
}

func TestFeaturesAreClassSeparable(t *testing.T) {
	ds, err := BuildByName("flickr", 2)
	if err != nil {
		t.Fatal(err)
	}
	// Nearest-centroid classification on raw features should beat chance
	// by a wide margin — this is what makes convergence curves meaningful.
	classes := ds.NumClasses
	dim := ds.Features.Cols
	centroids := make([][]float64, classes)
	counts := make([]int, classes)
	for c := range centroids {
		centroids[c] = make([]float64, dim)
	}
	for v, c := range ds.Labels {
		row := ds.Features.Row(v)
		for j, x := range row {
			centroids[c][j] += float64(x)
		}
		counts[c]++
	}
	for c := range centroids {
		if counts[c] == 0 {
			continue
		}
		for j := range centroids[c] {
			centroids[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for v, lbl := range ds.Labels {
		row := ds.Features.Row(v)
		best, bestD := -1, 0.0
		for c := range centroids {
			var d float64
			for j, x := range row {
				diff := float64(x) - centroids[c][j]
				d += diff * diff
			}
			if best < 0 || d < bestD {
				best, bestD = c, d
			}
		}
		if int32(best) == lbl {
			correct++
		}
	}
	acc := float64(correct) / float64(len(ds.Labels))
	chance := 1.0 / float64(classes)
	if acc < 3*chance {
		t.Fatalf("nearest-centroid accuracy %.3f not separable (chance %.3f)", acc, chance)
	}
}

func TestScaledSizesAreTestFriendly(t *testing.T) {
	for _, spec := range Registry {
		if spec.ScaledNodes > 10_000 || spec.ScaledEdges > 200_000 {
			t.Fatalf("%s scaled instance too large for 1-core test runs", spec.Name)
		}
		if spec.ScaledClasses < 2 {
			t.Fatalf("%s needs ≥2 classes", spec.Name)
		}
	}
}
