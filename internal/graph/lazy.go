package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"

	"argo/internal/platform"
	"argo/internal/tensor"
	"argo/internal/tensor/half"
)

// LazyDataset is an opened .argograph v2 store that materialises
// sections on demand. Open reads only the header, section table, spec,
// and stats — a few hundred bytes regardless of store size — so a
// papers100M-class file yields its metadata in microseconds. Each
// section is read (and CRC-verified) the first time a consumer asks for
// it: samplers and partitioners that call Topology never pay for
// feature bytes, and `argo-data inspect` pays for nothing but the
// prefix.
//
// On linux the file is mmap'd, so "reading" a section is first-touch
// page faulting against the page cache and an out-of-RAM store can be
// traversed section by section; elsewhere a portable ReadAt fallback
// preserves the same laziness with one copy per touched section.
//
// A LazyDataset opened over a version-1 store degrades gracefully: the
// whole payload is decoded eagerly (v1 has no section offsets) and the
// accessors serve from memory. Callers see one API either way.
type LazyDataset struct {
	path     string
	version  uint32
	kind     uint32
	mapped   bool // true when backed by an mmap, not ReadAt
	spec     DatasetSpec
	stats    Stats
	sections []sectionEntry
	// featDtype is the store's feature encoding, decided by which
	// features section the table carries (v1 and pre-dtype v2: fp32).
	featDtype FeatDtype

	src   sectionSource
	close func() error

	mu     sync.Mutex
	graph  *CSR
	feats  *tensor.Matrix
	labels []int32
	splits *[3][]NodeID

	// featRowsChecked records that the features section's row/col header
	// has been validated against the stats section, so FeatureRow can
	// slice straight into the payload on every later call.
	featRowsChecked bool

	// eager holds the fully decoded dataset for v1 stores (and caches
	// the assembled one for v2).
	eager *Dataset
}

// sectionSource serves byte ranges of the underlying store.
type sectionSource interface {
	// view returns the store bytes in [off, off+n). The returned slice
	// may alias an mmap and must not be modified or retained past Close.
	view(off, n uint64) ([]byte, error)
	size() int64
}

// mmapSource serves ranges out of a memory-mapped (or in-memory) image.
type mmapSource struct{ data []byte }

func (m mmapSource) view(off, n uint64) ([]byte, error) {
	if off+n > uint64(len(m.data)) {
		return nil, fmt.Errorf("graph: section [%d,+%d) outside %d-byte store", off, n, len(m.data))
	}
	return m.data[off : off+n], nil
}

func (m mmapSource) size() int64 { return int64(len(m.data)) }

// readAtSource is the portable fallback: each view is one pread.
type readAtSource struct {
	r  io.ReaderAt
	sz int64
}

func (s readAtSource) view(off, n uint64) ([]byte, error) {
	if off+n > uint64(s.sz) {
		return nil, fmt.Errorf("graph: section [%d,+%d) outside %d-byte store", off, n, s.sz)
	}
	buf := make([]byte, n)
	if _, err := s.r.ReadAt(buf, int64(off)); err != nil {
		return nil, fmt.Errorf("graph: reading section bytes: %w", err)
	}
	return buf, nil
}

func (s readAtSource) size() int64 { return s.sz }

// OpenLazy opens the .argograph store at path for lazy section access.
// The caller owns the returned dataset and must Close it.
func OpenLazy(path string) (*LazyDataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	lz, err := openLazyFile(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	lz.path = path
	return lz, nil
}

func openLazyFile(f *os.File) (*LazyDataset, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if data, err := platform.MapFile(f); err == nil {
		lz, err := openLazySource(mmapSource{data}, func() error {
			unmapErr := platform.Unmap(data)
			if closeErr := f.Close(); closeErr != nil {
				return closeErr
			}
			return unmapErr
		})
		if err != nil {
			platform.Unmap(data)
			return nil, err
		}
		lz.mapped = true
		return lz, nil
	}
	// No mmap (non-linux, or an exotic file): pread-per-section fallback.
	return openLazySource(readAtSource{r: f, sz: fi.Size()}, f.Close)
}

// openLazySource reads the prefix (header, section table, spec, stats)
// and leaves everything else untouched. It is the seam the
// counting-reader tests instrument to prove CSR and feature bytes are
// never read by metadata-only consumers.
func openLazySource(src sectionSource, closeFn func() error) (*LazyDataset, error) {
	hdr, err := src.view(0, storeHeaderLen)
	if err != nil {
		return nil, fmt.Errorf("graph: reading .argograph header: %w", err)
	}
	h, version, err := parseHeader2(hdr)
	if err != nil {
		return nil, err
	}
	switch version {
	case storeVersion:
		return openLazyV1(src, closeFn, h.kind)
	case storeVersion2:
	default:
		return nil, fmt.Errorf("graph: unsupported .argograph version %d (supported: %d, %d)", version, storeVersion, storeVersion2)
	}
	if h.kind != storeKindDataset && h.kind != storeKindCSR {
		return nil, fmt.Errorf("graph: unknown .argograph payload kind %d", h.kind)
	}
	if h.count > maxSections {
		return nil, fmt.Errorf("graph: implausible section count %d", h.count)
	}
	table, err := src.view(storeHeaderLen, uint64(h.count)*sectionEntryLen)
	if err != nil {
		return nil, fmt.Errorf("graph: reading section table: %w", err)
	}
	entries, err := parseSectionTable(h, table, src.size())
	if err != nil {
		return nil, err
	}
	lz := &LazyDataset{
		version:  storeVersion2,
		kind:     h.kind,
		sections: entries,
		src:      src,
		close:    closeFn,
	}
	statsB, err := lz.sectionBytes(secStats)
	if err != nil {
		return nil, err
	}
	if lz.stats, err = decodeStatsSection(statsB); err != nil {
		return nil, err
	}
	if h.kind == storeKindDataset {
		specB, err := lz.sectionBytes(secSpec)
		if err != nil {
			return nil, err
		}
		if lz.spec, err = decodeSpecSection(specB); err != nil {
			return nil, err
		}
		// The section table is authoritative for the feature dtype; the
		// stats copy exists for metadata-only readers and must agree.
		if _, f16 := findSection(entries, secFeaturesF16); f16 {
			if _, f32 := findSection(entries, secFeatures); f32 {
				return nil, fmt.Errorf("graph: store carries both features and features16 sections")
			}
			lz.featDtype = DtypeF16
		}
		statsDtype, err := ParseFeatDtype(lz.stats.FeatDtype)
		if err != nil {
			return nil, err
		}
		if statsDtype != lz.featDtype {
			return nil, fmt.Errorf("graph: stats dtype %q disagrees with the %s features section the table carries",
				lz.stats.FeatDtype, lz.featDtype)
		}
	}
	return lz, nil
}

// openLazyV1 is the read-compat shim: v1 stores have one monolithic
// checksummed payload, so laziness is impossible and the store is
// decoded eagerly behind the same API.
func openLazyV1(src sectionSource, closeFn func() error, kind uint32) (*LazyDataset, error) {
	all, err := src.view(0, uint64(src.size()))
	if err != nil {
		return nil, err
	}
	lz := &LazyDataset{version: storeVersion, kind: kind, close: closeFn}
	switch kind {
	case storeKindDataset:
		d, err := readDatasetV1(bytes.NewReader(all))
		if err != nil {
			return nil, err
		}
		lz.spec = d.Spec
		lz.stats = ComputeStats(d)
		lz.eager = d
		lz.graph = d.Graph
	case storeKindCSR:
		g, err := readCSRV1(bytes.NewReader(all))
		if err != nil {
			return nil, err
		}
		lz.stats = csrStats(g)
		lz.graph = g
	default:
		return nil, fmt.Errorf("graph: unknown .argograph payload kind %d", kind)
	}
	return lz, nil
}

// Close releases the mapping / file handle. Accessors must not be
// called after Close; slices already returned (features, labels) remain
// valid because decoding copies out of the mapping.
func (l *LazyDataset) Close() error {
	if l.close == nil {
		return nil
	}
	err := l.close()
	l.close = nil
	l.src = nil
	return err
}

// Version reports the store format version (1 or 2).
func (l *LazyDataset) Version() int { return int(l.version) }

// Mapped reports whether the store is served by an mmap (linux) rather
// than the ReadAt fallback or an eager v1 decode.
func (l *LazyDataset) Mapped() bool { return l.mapped }

// AccessMode describes how sections are served: "memory" for a wrapped
// in-memory dataset, "eager" for a v1 store (no section table to be
// lazy over), "mmap" for a mapped v2 store, "pread" for the portable
// fallback.
func (l *LazyDataset) AccessMode() string {
	switch {
	case l.path == "" && l.src == nil:
		return "memory"
	case l.version == storeVersion:
		return "eager"
	case l.mapped:
		return "mmap"
	default:
		return "pread"
	}
}

// Kind reports the payload kind ("dataset" or "csr").
func (l *LazyDataset) Kind() string {
	if l.kind == storeKindCSR {
		return "csr"
	}
	return "dataset"
}

// Spec returns the stored DatasetSpec (zero for bare-CSR stores). Read
// at open time; costs nothing.
func (l *LazyDataset) Spec() DatasetSpec { return l.spec }

// FeatDtype reports the store's feature encoding (section table; costs
// nothing). Feature accessors always return float32 regardless.
func (l *LazyDataset) FeatDtype() FeatDtype { return l.featDtype }

// Stats returns the precomputed stats section. Read at open time.
func (l *LazyDataset) Stats() Stats { return l.stats }

// SectionInfo describes one section for tooling output.
type SectionInfo struct {
	Name   string
	Offset uint64
	Length uint64
	CRC    uint32
}

// Sections lists the store's sections in file order. Empty for v1.
func (l *LazyDataset) Sections() []SectionInfo {
	out := make([]SectionInfo, len(l.sections))
	for i, e := range l.sections {
		out[i] = SectionInfo{Name: SectionName(e.ID), Offset: e.Offset, Length: e.Length, CRC: e.CRC}
	}
	return out
}

// verifyAllSections CRC-checks every section in the table — including
// ids this version of the code does not understand, which lazy
// materialisation would otherwise never touch. It is what makes
// `argo-data verify`'s "corruption anywhere is detected" claim hold on
// stores carrying future section kinds. No-op for v1 (the eager decode
// already verified the single payload checksum).
func (l *LazyDataset) verifyAllSections() error {
	for _, e := range l.sections {
		b, err := l.src.view(e.Offset, e.Length)
		if err != nil {
			return err
		}
		if sum := crc32.Checksum(b, storeCRC); sum != e.CRC {
			return fmt.Errorf("graph: %s section checksum mismatch (payload corrupted)", SectionName(e.ID))
		}
	}
	return nil
}

// sectionBytes returns the (CRC-verified) payload of the section with
// the given id. This is the only place lazy materialisation reads
// section payload bytes.
func (l *LazyDataset) sectionBytes(id uint32) ([]byte, error) {
	e, ok := findSection(l.sections, id)
	if !ok {
		return nil, fmt.Errorf("graph: store has no %s section", SectionName(id))
	}
	b, err := l.src.view(e.Offset, e.Length)
	if err != nil {
		return nil, err
	}
	if sum := crc32.Checksum(b, storeCRC); sum != e.CRC {
		return nil, fmt.Errorf("graph: %s section checksum mismatch (payload corrupted)", SectionName(id))
	}
	return b, nil
}

// Topology materialises (and caches) the CSR topology. Feature, label,
// and split bytes are not touched.
func (l *LazyDataset) Topology() (*CSR, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.topologyLocked()
}

func (l *LazyDataset) topologyLocked() (*CSR, error) {
	if l.graph != nil {
		return l.graph, nil
	}
	b, err := l.sectionBytes(secCSR)
	if err != nil {
		return nil, err
	}
	g, err := decodeCSRSection(b)
	if err != nil {
		return nil, err
	}
	// Metadata-only consumers trust the stats section sight unseen, so
	// the moment the real topology is decoded it must agree — a lying
	// stats section is corruption, whichever accessor finds it first.
	if int64(g.NumNodes) != l.stats.NumNodes || g.NumEdges() != l.stats.NumArcs {
		return nil, fmt.Errorf("graph: csr section (%d nodes, %d arcs) disagrees with stats (%d, %d)",
			g.NumNodes, g.NumEdges(), l.stats.NumNodes, l.stats.NumArcs)
	}
	l.graph = g
	return g, nil
}

// Features materialises (and caches) the node-feature matrix.
func (l *LazyDataset) Features() (*tensor.Matrix, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.featuresLocked()
}

func (l *LazyDataset) featuresLocked() (*tensor.Matrix, error) {
	if l.feats != nil {
		return l.feats, nil
	}
	if l.eager != nil {
		l.feats = l.eager.Features
		return l.feats, nil
	}
	var m *tensor.Matrix
	if l.featDtype == DtypeF16 {
		b, err := l.sectionBytes(secFeaturesF16)
		if err != nil {
			return nil, err
		}
		if m, err = decodeFeaturesF16Section(b); err != nil {
			return nil, err
		}
	} else {
		b, err := l.sectionBytes(secFeatures)
		if err != nil {
			return nil, err
		}
		if m, err = decodeFeaturesSection(b); err != nil {
			return nil, err
		}
	}
	if m.Rows != l.stats.FeatRows || m.Cols != l.stats.FeatCols {
		return nil, fmt.Errorf("graph: features section %dx%d disagrees with stats %dx%d",
			m.Rows, m.Cols, l.stats.FeatRows, l.stats.FeatCols)
	}
	l.feats = m
	return m, nil
}

// FeatureDim returns the feature width (stats section; costs nothing).
func (l *LazyDataset) FeatureDim() int { return l.stats.FeatCols }

// NumFeatureRows returns the feature row count (stats section).
func (l *LazyDataset) NumFeatureRows() int { return l.stats.FeatRows }

// FeatureRow reads the single feature row i into dst without
// materialising the features section. dst is grown as needed and the
// filled slice returned, so a caller with a pooled buffer pays no
// allocation. On an mmap-backed store the read is one row-sized slice of
// the mapping; on the ReadAt fallback it is one pread. Already
// materialised features (eager stores, or after Features was called)
// are served from the cached matrix.
//
// Row reads deliberately skip the section CRC: verifying it would read
// every feature byte, which is exactly what the row-granular path
// exists to avoid. `argo-data verify` remains the integrity gate.
func (l *LazyDataset) FeatureRow(i int, dst []float32) ([]float32, error) {
	cols := l.stats.FeatCols
	if i < 0 || i >= l.stats.FeatRows {
		return nil, fmt.Errorf("graph: feature row %d outside [0,%d)", i, l.stats.FeatRows)
	}
	if cap(dst) < cols {
		dst = make([]float32, cols)
	}
	dst = dst[:cols]

	l.mu.Lock()
	if l.feats == nil && l.eager != nil {
		l.feats = l.eager.Features
	}
	if m := l.feats; m != nil {
		l.mu.Unlock()
		if m.Cols != cols || i >= m.Rows {
			return nil, fmt.Errorf("graph: features matrix %dx%d disagrees with stats %dx%d",
				m.Rows, m.Cols, l.stats.FeatRows, cols)
		}
		copy(dst, m.Row(i))
		return dst, nil
	}
	src := l.src
	if src == nil {
		l.mu.Unlock()
		return nil, fmt.Errorf("graph: store is closed")
	}
	secID := uint32(secFeatures)
	elem := uint64(4)
	if l.featDtype == DtypeF16 {
		secID = secFeaturesF16
		elem = 2
	}
	e, ok := findSection(l.sections, secID)
	if !ok {
		l.mu.Unlock()
		return nil, fmt.Errorf("graph: store has no %s section", SectionName(secID))
	}
	if !l.featRowsChecked {
		// First row read: validate the 16-byte section prefix (rows, cols)
		// against the stats the whole row-offset arithmetic trusts.
		hdr, err := src.view(e.Offset, 16)
		if err != nil {
			l.mu.Unlock()
			return nil, err
		}
		rows := binary.LittleEndian.Uint64(hdr[0:])
		c := binary.LittleEndian.Uint64(hdr[8:])
		if rows != uint64(l.stats.FeatRows) || c != uint64(cols) {
			l.mu.Unlock()
			return nil, fmt.Errorf("graph: %s section %dx%d disagrees with stats %dx%d",
				SectionName(secID), rows, c, l.stats.FeatRows, cols)
		}
		if e.Length != 16+elem*rows*c {
			l.mu.Unlock()
			return nil, fmt.Errorf("graph: %s section is %d bytes, want %d for %dx%d",
				SectionName(secID), e.Length, 16+elem*rows*c, rows, c)
		}
		l.featRowsChecked = true
	}
	l.mu.Unlock()

	// Row payload: section prefix (16 bytes) then row-major elements.
	// fp16 rows widen exactly through the half kernel, so a row read and
	// a materialised-matrix read return identical bits.
	off := e.Offset + 16 + uint64(i)*uint64(cols)*elem
	b, err := src.view(off, uint64(cols)*elem)
	if err != nil {
		return nil, err
	}
	if l.featDtype == DtypeF16 {
		half.DecodeBytes(dst, b)
		return dst, nil
	}
	for k := range dst {
		dst[k] = math.Float32frombits(binary.LittleEndian.Uint32(b[k*4:]))
	}
	return dst, nil
}

// Labels materialises (and caches) the label vector.
func (l *LazyDataset) Labels() ([]int32, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.labelsLocked()
}

func (l *LazyDataset) labelsLocked() ([]int32, error) {
	if l.labels != nil {
		return l.labels, nil
	}
	if l.eager != nil {
		l.labels = l.eager.Labels
		return l.labels, nil
	}
	b, err := l.sectionBytes(secLabels)
	if err != nil {
		return nil, err
	}
	labels, err := decodeLabelsSection(b)
	if err != nil {
		return nil, err
	}
	l.labels = labels
	return labels, nil
}

// Splits materialises (and caches) the train/val/test index sets.
func (l *LazyDataset) Splits() (train, val, test []NodeID, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.splitsLocked()
}

func (l *LazyDataset) splitsLocked() (train, val, test []NodeID, err error) {
	if l.splits != nil {
		return l.splits[0], l.splits[1], l.splits[2], nil
	}
	if l.eager != nil {
		l.splits = &[3][]NodeID{l.eager.TrainIdx, l.eager.ValIdx, l.eager.TestIdx}
		return l.splits[0], l.splits[1], l.splits[2], nil
	}
	b, err := l.sectionBytes(secSplits)
	if err != nil {
		return nil, nil, nil, err
	}
	tr, va, te, err := decodeSplitsSection(b)
	if err != nil {
		return nil, nil, nil, err
	}
	l.splits = &[3][]NodeID{tr, va, te}
	return tr, va, te, nil
}

// Dataset materialises every section into a validated *Dataset — the
// eager endpoint of the lazy API. The result is cached.
func (l *LazyDataset) Dataset() (*Dataset, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.eager != nil {
		return l.eager, nil
	}
	if l.kind != storeKindDataset {
		return nil, fmt.Errorf("graph: store holds a bare CSR, not a dataset")
	}
	g, err := l.topologyLocked()
	if err != nil {
		return nil, err
	}
	feats, err := l.featuresLocked()
	if err != nil {
		return nil, err
	}
	labels, err := l.labelsLocked()
	if err != nil {
		return nil, err
	}
	train, val, test, err := l.splitsLocked()
	if err != nil {
		return nil, err
	}
	d := &Dataset{
		Spec:       l.spec,
		Graph:      g,
		Features:   feats,
		FeatDtype:  l.featDtype,
		Labels:     labels,
		NumClasses: l.stats.NumClasses,
		TrainIdx:   train,
		ValIdx:     val,
		TestIdx:    test,
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("graph: stored dataset invalid: %w", err)
	}
	l.eager = d
	return d, nil
}

// LazyFromDataset wraps an already materialised dataset in the lazy
// API, so registry-built workloads and file-backed ones flow through
// one code path in callers.
func LazyFromDataset(d *Dataset) *LazyDataset {
	return lazyFromDatasetWithStats(d, ComputeStats(d))
}

// lazyFromDatasetWithStats is LazyFromDataset for callers that already
// hold the dataset's stats (the in-memory shard constructor computes
// per-shard stats once in buildShards).
func lazyFromDatasetWithStats(d *Dataset, st Stats) *LazyDataset {
	return &LazyDataset{
		version:   storeVersion2,
		kind:      storeKindDataset,
		spec:      d.Spec,
		stats:     st,
		featDtype: d.FeatDtype,
		eager:     d,
		graph:     d.Graph,
	}
}
