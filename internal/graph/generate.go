package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// GenSpec parameterises the synthetic power-law community generator.
//
// The generator is a Chung–Lu style configuration model with planted
// communities: node degrees follow a truncated power law (matching the
// heavy-tailed degree distributions of Flickr/Reddit/OGB graphs), and each
// edge endpoint pair is drawn degree-proportionally, biased to stay within
// the same community with probability Homophily. Community structure gives
// the datasets learnable labels so the reproduction's convergence
// experiments (paper Fig. 9) are meaningful.
type GenSpec struct {
	NumNodes   int
	NumEdges   int64   // undirected edge count target; stored arcs ≈ 2×
	NumClasses int     // number of planted communities (== label classes)
	Exponent   float64 // power-law exponent for expected degrees (e.g. 2.1)
	MinDegree  float64 // minimum expected degree
	Homophily  float64 // probability an edge stays within its community
	Seed       int64
}

// Generate materialises the graph and node labels for spec.
func Generate(spec GenSpec) (*CSR, []int32, error) {
	if spec.NumNodes <= 1 || spec.NumEdges <= 0 {
		return nil, nil, fmt.Errorf("graph: invalid GenSpec %+v", spec)
	}
	if spec.NumClasses < 1 {
		spec.NumClasses = 1
	}
	if spec.Exponent <= 1 {
		spec.Exponent = 2.1
	}
	if spec.MinDegree <= 0 {
		spec.MinDegree = 1
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	labels := make([]int32, spec.NumNodes)
	for v := range labels {
		labels[v] = int32(rng.Intn(spec.NumClasses))
	}

	// Expected degrees: w_i = MinDegree * u^(-1/(exponent-1)) (Pareto),
	// capped so no node exceeds ~sqrt(sum) (standard Chung–Lu cap).
	weights := make([]float64, spec.NumNodes)
	var wsum float64
	for v := range weights {
		u := rng.Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		w := spec.MinDegree * math.Pow(u, -1/(spec.Exponent-1))
		cap := math.Sqrt(float64(2*spec.NumEdges)) * 2
		if w > cap {
			w = cap
		}
		weights[v] = w
		wsum += w
	}

	// Per-class alias samplers over degree weights.
	global := newAliasSampler(weights)
	perClass := make([]*aliasSampler, spec.NumClasses)
	classNodes := make([][]NodeID, spec.NumClasses)
	for c := 0; c < spec.NumClasses; c++ {
		classNodes[c] = nil
	}
	for v, c := range labels {
		classNodes[c] = append(classNodes[c], NodeID(v))
	}
	for c := 0; c < spec.NumClasses; c++ {
		w := make([]float64, len(classNodes[c]))
		for i, v := range classNodes[c] {
			w[i] = weights[v]
		}
		if len(w) > 0 {
			perClass[c] = newAliasSampler(w)
		}
	}

	edges := make([]Edge, 0, spec.NumEdges)
	attempts := int64(0)
	maxAttempts := spec.NumEdges * 20
	for int64(len(edges)) < spec.NumEdges && attempts < maxAttempts {
		attempts++
		src := NodeID(global.Sample(rng))
		var dst NodeID
		if rng.Float64() < spec.Homophily {
			c := labels[src]
			if s := perClass[c]; s != nil && len(classNodes[c]) > 1 {
				dst = classNodes[c][s.Sample(rng)]
			} else {
				dst = NodeID(global.Sample(rng))
			}
		} else {
			dst = NodeID(global.Sample(rng))
		}
		if src == dst {
			continue
		}
		edges = append(edges, Edge{src, dst})
	}

	g, err := FromEdges(spec.NumNodes, edges, true)
	if err != nil {
		return nil, nil, err
	}
	return g, labels, nil
}

// aliasSampler draws indices proportional to a fixed weight vector in O(1)
// per sample (Walker's alias method).
type aliasSampler struct {
	prob  []float64
	alias []int
}

func newAliasSampler(weights []float64) *aliasSampler {
	n := len(weights)
	s := &aliasSampler{prob: make([]float64, n), alias: make([]int, n)}
	if n == 0 {
		return s
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		s.prob[l] = scaled[l]
		s.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, i := range large {
		s.prob[i] = 1
		s.alias[i] = i
	}
	for _, i := range small {
		s.prob[i] = 1
		s.alias[i] = i
	}
	return s
}

// Sample draws one index.
func (s *aliasSampler) Sample(rng *rand.Rand) int {
	i := rng.Intn(len(s.prob))
	if rng.Float64() < s.prob[i] {
		return i
	}
	return s.alias[i]
}
