package graph

import (
	"bytes"
	"fmt"
	"io"
	"os"
)

// knownSection reports whether this version of the code understands the
// section id (and can therefore carry it through a rewrite). The shard
// sections are position-independent, so UpgradeStore preserves their
// raw bytes rather than re-encoding them.
func knownSection(id uint32) bool { return id >= secSpec && id <= secFeaturesF16 }

// UpgradeStore rewrites the .argograph store at src in format v2 at dst
// (dst may equal src; the write is atomic either way). Both payload
// kinds upgrade. A v2 source carrying a section id this code cannot
// re-encode is refused rather than silently stripped. The source handle
// is closed before the destination is written, so an in-place upgrade
// never renames over an open file (Windows forbids that). Returns the
// source's format version and whether the rewrite changed the bytes —
// the v2 writer is canonical, so upgrading an already-v2 store normally
// reproduces it byte-for-byte (identical == true) and the operation is
// idempotent with every section CRC unchanged.
func UpgradeStore(src, dst string) (srcVersion int, identical bool, err error) {
	lz, err := OpenLazy(src)
	if err != nil {
		return 0, false, err
	}
	// Extra sections beyond the six dataset ones (the shard sections)
	// are position-independent, so they are carried through raw — copied
	// out of the mapping, which is released before dst is written. Ids
	// this version has never heard of are refused rather than dropped.
	var extras []section
	for _, e := range lz.sections {
		if !knownSection(e.ID) {
			lz.Close()
			return 0, false, fmt.Errorf("graph: %s: has a %s section this version cannot re-encode; upgrading would drop it", src, SectionName(e.ID))
		}
		// features16 is not an extra: like the fp32 features section it is
		// re-encoded from the decoded dataset (the canonical writer places
		// it itself).
		if e.ID > secSplits && e.ID != secFeaturesF16 {
			raw, err := lz.sectionBytes(e.ID)
			if err != nil {
				lz.Close()
				return 0, false, fmt.Errorf("graph: %s: %w", src, err)
			}
			extras = append(extras, section{e.ID, append([]byte(nil), raw...)})
		}
	}
	srcVersion = lz.Version()
	var srcRaw []byte
	var statsOverride *Stats
	if srcVersion >= 2 {
		// Snapshot the source bytes before an in-place rewrite so the
		// idempotence claim can be checked rather than assumed. The
		// decoded stats are reused verbatim so a shard store's halo
		// profile survives the rewrite.
		if srcRaw, err = os.ReadFile(src); err != nil {
			lz.Close()
			return 0, false, err
		}
		st := lz.Stats()
		statsOverride = &st
	}
	var d *Dataset
	var g *CSR
	switch lz.kind {
	case storeKindDataset:
		d, err = lz.Dataset()
	case storeKindCSR:
		if len(extras) > 0 {
			err = fmt.Errorf("bare-CSR store carries shard sections; refusing to rewrite")
		} else {
			g, err = lz.Topology()
		}
	default:
		err = fmt.Errorf("unknown .argograph payload kind %d", lz.kind)
	}
	closeErr := lz.Close()
	if err != nil {
		return 0, false, fmt.Errorf("graph: %s: %w", src, err)
	}
	if closeErr != nil {
		return 0, false, closeErr
	}
	if d != nil {
		raw, encErr := encodeDatasetV2Extra(d, statsOverride, extras)
		if encErr != nil {
			return 0, false, encErr
		}
		err = saveAtomic(dst, func(w io.Writer) error {
			_, werr := w.Write(raw)
			return werr
		})
	} else {
		err = g.Save(dst)
	}
	if err != nil {
		return 0, false, err
	}
	if srcRaw != nil {
		dstRaw, err := os.ReadFile(dst)
		if err != nil {
			return 0, false, err
		}
		identical = bytes.Equal(srcRaw, dstRaw)
	}
	return srcVersion, identical, nil
}

// ConvertStore rewrites the dataset store at src with its features
// re-encoded in the requested dtype at dst (dst may equal src; the
// write is atomic either way). Narrowing to fp16 rounds each feature
// value once to nearest-even and refuses non-finite or out-of-range
// inputs (see Dataset.ConvertFeatures); widening to fp32 is exact.
// Converting a store already in the requested dtype reproduces it
// byte-for-byte (identical == true) — fp16 decode is exact and the v2
// writer is canonical — so the operation is idempotent. Shard stores
// are refused: the set-wide dtype lives in the manifest, so convert the
// base store and re-shard instead.
func ConvertStore(src, dst string, dt FeatDtype) (from FeatDtype, identical bool, err error) {
	lz, err := OpenLazy(src)
	if err != nil {
		return 0, false, err
	}
	if lz.kind != storeKindDataset {
		lz.Close()
		return 0, false, fmt.Errorf("graph: %s: bare-CSR store has no features to convert", src)
	}
	for _, e := range lz.sections {
		if e.ID == secShardMap || e.ID == secManifest {
			lz.Close()
			return 0, false, fmt.Errorf("graph: %s: is a shard store; convert the base store and re-shard", src)
		}
		if !knownSection(e.ID) {
			lz.Close()
			return 0, false, fmt.Errorf("graph: %s: has a %s section this version cannot re-encode", src, SectionName(e.ID))
		}
	}
	from = lz.FeatDtype()
	srcRaw, err := os.ReadFile(src)
	if err != nil {
		lz.Close()
		return 0, false, err
	}
	d, err := lz.Dataset()
	closeErr := lz.Close()
	if err != nil {
		return 0, false, fmt.Errorf("graph: %s: %w", src, err)
	}
	if closeErr != nil {
		return 0, false, closeErr
	}
	if err := d.ConvertFeatures(dt); err != nil {
		return 0, false, fmt.Errorf("graph: %s: %w", src, err)
	}
	raw, err := encodeDatasetV2Extra(d, nil, nil)
	if err != nil {
		return 0, false, err
	}
	if err := saveAtomic(dst, func(w io.Writer) error {
		_, werr := w.Write(raw)
		return werr
	}); err != nil {
		return 0, false, err
	}
	return from, bytes.Equal(srcRaw, raw), nil
}

// StoreCheck summarises a fully verified store for tooling output.
type StoreCheck struct {
	Version   int
	Kind      string
	FeatDtype FeatDtype
	Stats     Stats
	Sections  []SectionInfo
}

// VerifyStore checks the .argograph store at path end to end, in
// trust-nothing order: header, then (v2) the section table — where
// overlapping extents surface as ErrSectionOverlap and out-of-file
// extents as ErrSectionBounds, both before a single payload byte is
// decoded — then every section checksum (including sections with ids
// this code does not decode), then a full decode with every structural
// invariant (Dataset.Validate / CSR.Validate, plus the stats
// cross-check in topologyLocked).
func VerifyStore(path string) (*StoreCheck, error) {
	lz, err := OpenLazy(path)
	if err != nil {
		return nil, err
	}
	defer lz.Close()
	check := &StoreCheck{
		Version:   lz.Version(),
		Kind:      lz.Kind(),
		FeatDtype: lz.FeatDtype(),
		Stats:     lz.Stats(),
		Sections:  lz.Sections(),
	}
	if err := lz.verifyAllSections(); err != nil {
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	if lz.kind == storeKindDataset {
		if _, err := lz.Dataset(); err != nil {
			return nil, fmt.Errorf("graph: %s: %w", path, err)
		}
	} else {
		if _, err := lz.Topology(); err != nil {
			return nil, fmt.Errorf("graph: %s: %w", path, err)
		}
	}
	return check, nil
}
