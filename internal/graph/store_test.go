package graph

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func storeTestDataset(t testing.TB) *Dataset {
	t.Helper()
	spec := DatasetSpec{
		Name:        "store-unit",
		Paper:       PaperStats{Vertices: 400, Edges: 3000, F0: 10, F1: 8, F2: 5},
		ScaledNodes: 400, ScaledEdges: 3000,
		ScaledF0: 10, ScaledHidden: 8, ScaledClasses: 5,
		Homophily: 0.6, Exponent: 2.2, TrainFrac: 0.5,
	}
	ds, err := Build(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestDatasetStoreRoundTrip(t *testing.T) {
	ds := storeTestDataset(t)
	path := filepath.Join(t.TempDir(), "store.argograph")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, back) {
		t.Fatal("dataset did not round-trip bit-exactly through the binary store")
	}
}

func TestCSRStoreRoundTrip(t *testing.T) {
	ds := storeTestDataset(t)
	path := filepath.Join(t.TempDir(), "topo.argograph")
	if err := ds.Graph.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds.Graph, back) {
		t.Fatal("CSR did not round-trip through the binary store")
	}
}

// The golden header pins the on-disk framing: any accidental change to
// the magic, version, or field layout shows up as a corrupted prefix
// here rather than as silent incompatibility discovered by a user.
func TestStoreGoldenHeader(t *testing.T) {
	ds := storeTestDataset(t)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) < storeHeaderLen {
		t.Fatalf("store shorter than its header: %d bytes", len(b))
	}
	if got := string(b[:8]); got != "ARGOGRPH" {
		t.Fatalf("magic %q", got)
	}
	if v := binary.LittleEndian.Uint32(b[8:]); v != 2 {
		t.Fatalf("version %d, want 2", v)
	}
	if k := binary.LittleEndian.Uint32(b[12:]); k != storeKindDataset {
		t.Fatalf("kind %d, want %d", k, storeKindDataset)
	}
	if n := binary.LittleEndian.Uint32(b[16:]); n != 6 {
		t.Fatalf("section count %d, want 6 (spec/stats/csr/features/labels/splits)", n)
	}
	if sz := binary.LittleEndian.Uint64(b[24:]); int(sz) != len(b) {
		t.Fatalf("declared file size %d, actual %d", sz, len(b))
	}
	// Writes are deterministic: the same dataset encodes to the same bytes.
	// Upgrade idempotence and the bench-smoke byte-stability gate in CI
	// both lean on this.
	var again bytes.Buffer
	if err := ds.Write(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, again.Bytes()) {
		t.Fatal("two writes of the same dataset differ")
	}
}

// The v1 writer is kept (read-compat fixtures); its framing stays pinned
// too so old stores remain decodable forever.
func TestStoreGoldenHeaderV1(t *testing.T) {
	ds := storeTestDataset(t)
	var buf bytes.Buffer
	if err := ds.writeV1(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if v := binary.LittleEndian.Uint32(b[8:]); v != 1 {
		t.Fatalf("version %d, want 1", v)
	}
	if l := binary.LittleEndian.Uint64(b[16:]); int(l) != len(b)-storeHeaderLen {
		t.Fatalf("declared payload %d, actual %d", l, len(b)-storeHeaderLen)
	}
}

func TestStoreRejectsForeignMagic(t *testing.T) {
	ds := storeTestDataset(t)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	copy(b, "NOTAGRPH")
	if _, err := ReadDataset(bytes.NewReader(b)); err == nil || !strings.Contains(err.Error(), "not an .argograph") {
		t.Fatalf("foreign magic accepted: %v", err)
	}
}

func TestStoreRejectsFutureVersion(t *testing.T) {
	ds := storeTestDataset(t)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	binary.LittleEndian.PutUint32(b[8:], storeVersion2+1)
	if _, err := ReadDataset(bytes.NewReader(b)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version accepted: %v", err)
	}
}

func TestStoreRejectsWrongKind(t *testing.T) {
	ds := storeTestDataset(t)
	var buf bytes.Buffer
	if err := ds.Graph.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDataset(bytes.NewReader(buf.Bytes())); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("CSR store read as dataset: %v", err)
	}
}

func TestStoreRejectsCorruptedPayload(t *testing.T) {
	ds := storeTestDataset(t)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Flip one bit in each third of the payload.
	for _, at := range []int{storeHeaderLen + 3, storeHeaderLen + (len(b)-storeHeaderLen)/2, len(b) - 1} {
		mut := append([]byte(nil), b...)
		mut[at] ^= 0x40
		if _, err := ReadDataset(bytes.NewReader(mut)); err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("flipped bit at %d accepted: %v", at, err)
		}
	}
}

func TestStoreRejectsTruncation(t *testing.T) {
	ds := storeTestDataset(t)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Every truncation point must produce an error, never a panic or a
	// silently short dataset: inside the header, right at its end, and
	// through the payload.
	cuts := []int{0, 1, 7, storeHeaderLen - 1, storeHeaderLen, storeHeaderLen + 1,
		storeHeaderLen + (len(b)-storeHeaderLen)/3, len(b) - 1}
	for _, cut := range cuts {
		if _, err := ReadDataset(bytes.NewReader(b[:cut])); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", cut, len(b))
		}
	}
}

func TestStoreRejectsTrailingBytes(t *testing.T) {
	ds := storeTestDataset(t)
	var buf bytes.Buffer
	if err := ds.writeV1(&buf); err != nil {
		t.Fatal(err)
	}
	// Padding the payload while fixing up the header length and checksum
	// must still be rejected: version-1 payloads are exactly sized.
	b := append(buf.Bytes(), 0, 0, 0, 0)
	binary.LittleEndian.PutUint64(b[16:], uint64(len(b)-storeHeaderLen))
	binary.LittleEndian.PutUint32(b[24:], crc32.Checksum(b[storeHeaderLen:], storeCRC))
	if _, err := ReadDataset(bytes.NewReader(b)); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("padded payload accepted: %v", err)
	}
}

func TestLoadDatasetMissingFile(t *testing.T) {
	if _, err := LoadDataset(filepath.Join(t.TempDir(), "absent.argograph")); !os.IsNotExist(err) {
		t.Fatalf("missing file: %v", err)
	}
}

func TestWriteRejectsInvalidDataset(t *testing.T) {
	ds := storeTestDataset(t)
	ds.Labels[0] = int32(ds.NumClasses) + 3
	var buf bytes.Buffer
	if err := ds.Write(&buf); err == nil {
		t.Fatal("out-of-range label written to store")
	}
}

func TestValidateCatchesSplitOutOfRange(t *testing.T) {
	ds := storeTestDataset(t)
	ds.ValIdx = append(ds.ValIdx, NodeID(ds.Graph.NumNodes))
	if err := ds.Validate(); err == nil {
		t.Fatal("out-of-range val index passed Validate")
	}
}

// FuzzReadDataset drives the decoder with arbitrary bytes: it must
// reject or accept, never panic or over-allocate, and anything it
// accepts must satisfy every dataset invariant.
func FuzzReadDataset(f *testing.F) {
	ds := storeTestDataset(f)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:storeHeaderLen])
	f.Add([]byte("ARGOGRPH"))
	f.Add([]byte{})
	// The legacy v1 encoding goes through its own decode path; seed it too.
	var v1 bytes.Buffer
	if err := ds.writeV1(&v1); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v1.Bytes()[:len(v1.Bytes())/2])
	// The fp16 encoding decodes through its own section path; seed it too.
	var f16 bytes.Buffer
	if err := f16TestDataset(f).Write(&f16); err != nil {
		f.Fatal(err)
	}
	f.Add(f16.Bytes())
	f.Add(f16.Bytes()[:len(f16.Bytes())/2])
	// A header declaring a huge payload over a tiny body.
	huge := append([]byte(nil), valid[:storeHeaderLen]...)
	binary.LittleEndian.PutUint64(huge[16:], 1<<60)
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadDataset(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted dataset fails validation: %v", err)
		}
	})
}

// A crafted store whose declared counts are near MaxInt64 must be
// rejected, not panic in makeslice: the length guards must be
// overflow-proof (they divide, never multiply).
func TestStoreRejectsOverflowingCounts(t *testing.T) {
	craft := func(kind uint32, payload []byte) []byte {
		var buf bytes.Buffer
		if err := writeContainer(&buf, kind, payload); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	// CSR payload: numNodes=1, numArcs=2^62+1, a plausible rowPtr, no cols.
	var e enc
	e.u64(1)
	e.u64(1<<62 + 1)
	e.i64s([]int64{0, 0})
	if _, err := ReadCSR(bytes.NewReader(craft(storeKindCSR, e.buf))); err == nil {
		t.Fatal("2^62+1 arcs accepted")
	}
	// Dataset payload: empty spec JSON, tiny CSR, then a feature block and
	// split counts that would overflow n*4 / rows*cols*4 guards.
	for _, counts := range [][2]uint64{
		{1<<62 + 1, 1},     // featRows overflow
		{1 << 31, 1 << 31}, // featRows*featCols overflow
	} {
		var p enc
		p.u32(2)
		p.bytes([]byte("{}"))
		p.u32(1) // numClasses
		p.u64(0)
		p.u64(0) // empty CSR
		p.i64s([]int64{0})
		p.u64(counts[0])
		p.u64(counts[1])
		if _, err := ReadDataset(bytes.NewReader(craft(storeKindDataset, p.buf))); err == nil {
			t.Fatalf("feature block %d x %d accepted", counts[0], counts[1])
		}
	}
	// Split count overflow: valid empty feature block, then a huge count.
	var p enc
	p.u32(2)
	p.bytes([]byte("{}"))
	p.u32(1)
	p.u64(0)
	p.u64(0)
	p.i64s([]int64{0})
	p.u64(0)
	p.u64(0)         // 0x0 features
	p.u64(1<<62 + 1) // train split count
	if _, err := ReadDataset(bytes.NewReader(craft(storeKindDataset, p.buf))); err == nil {
		t.Fatal("2^62+1 split ids accepted")
	}
}

// V1 stores have no section table; ReadSpec serves their spec from the
// payload prefix, so a reader holding only the head of a giant v1 store
// still resolves its metadata.
func TestReadSpecPrefixOnly(t *testing.T) {
	ds := storeTestDataset(t)
	var buf bytes.Buffer
	if err := ds.writeV1(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	spec, err := ReadSpec(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, ds.Spec) {
		t.Fatalf("ReadSpec = %+v, want %+v", spec, ds.Spec)
	}
	// The spec must decode even when everything after it is absent —
	// that is the point of the prefix read.
	const specPrefix = storeHeaderLen + 4
	specLen := int(binary.LittleEndian.Uint32(b[storeHeaderLen:]))
	if _, err := ReadSpec(bytes.NewReader(b[:specPrefix+specLen])); err != nil {
		t.Fatalf("prefix-only read failed: %v", err)
	}
	// But a store truncated inside the spec must be rejected.
	if _, err := ReadSpec(bytes.NewReader(b[:specPrefix+specLen/2])); err == nil {
		t.Fatal("truncated spec accepted")
	}
	if _, err := ReadSpec(bytes.NewReader([]byte("ARGOGRPH"))); err == nil {
		t.Fatal("bare magic accepted")
	}
}

// A checksum-valid store whose RowPtr points past Col must be rejected
// by Validate, never panic in Neighbors.
func TestStoreRejectsRowPtrPastCol(t *testing.T) {
	var e enc
	e.u64(1) // numNodes
	e.u64(0) // numArcs
	e.i64s([]int64{0, 100})
	var buf bytes.Buffer
	if err := writeContainer(&buf, storeKindCSR, e.buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCSR(bytes.NewReader(buf.Bytes())); err == nil || !strings.Contains(err.Error(), "exceeds len(Col)") {
		t.Fatalf("RowPtr past Col accepted: %v", err)
	}
}

func TestValidateCatchesOverlappingSplits(t *testing.T) {
	ds := storeTestDataset(t)
	ds.ValIdx[0] = ds.TrainIdx[0]
	if err := ds.Validate(); err == nil || !strings.Contains(err.Error(), "two splits") {
		t.Fatalf("overlapping splits passed Validate: %v", err)
	}
}

func TestSaveProducesWorldReadableStore(t *testing.T) {
	ds := storeTestDataset(t)
	path := filepath.Join(t.TempDir(), "perm.argograph")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Fatalf("store saved with mode %v, want 0644", fi.Mode().Perm())
	}
}
