package graph

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"argo/internal/tensor"
	"argo/internal/tensor/half"
)

// f16TestDataset is storeTestDataset rounded to fp16 storage — the
// rounding happens exactly once here, so every value is fp16-exact and
// all later encode/decode hops must be lossless.
func f16TestDataset(t testing.TB) *Dataset {
	t.Helper()
	ds := storeTestDataset(t)
	if err := ds.ConvertFeatures(DtypeF16); err != nil {
		t.Fatal(err)
	}
	return ds
}

// An fp16 dataset round-trips bit-exactly through the store: the single
// rounding at ConvertFeatures is the only lossy step anywhere.
func TestF16StoreRoundTrip(t *testing.T) {
	ds := f16TestDataset(t)
	if ds.FeatDtype != DtypeF16 {
		t.Fatalf("dtype %v after conversion", ds.FeatDtype)
	}
	path := filepath.Join(t.TempDir(), "f16.argograph")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, back) {
		t.Fatal("fp16 dataset did not round-trip bit-exactly")
	}
	// Row-granular reads decode the same bits.
	lz, err := OpenLazy(path)
	if err != nil {
		t.Fatal(err)
	}
	defer lz.Close()
	if lz.FeatDtype() != DtypeF16 {
		t.Fatalf("lazy dtype %v", lz.FeatDtype())
	}
	for _, i := range []int{0, 1, ds.Features.Rows / 2, ds.Features.Rows - 1} {
		row, err := lz.FeatureRow(i, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(row, ds.Features.Row(i)) {
			t.Fatalf("fp16 row %d differs", i)
		}
	}
}

// The fp16 container framing, pinned like TestStoreGoldenHeader: still
// six sections, with features16 replacing features (and written last,
// so ascending section ids are preserved), and the features payload
// exactly half the fp32 store's.
func TestF16StoreGoldenSections(t *testing.T) {
	f32 := storeTestDataset(t)
	f16 := f16TestDataset(t)
	var b32, b16 bytes.Buffer
	if err := f32.Write(&b32); err != nil {
		t.Fatal(err)
	}
	if err := f16.Write(&b16); err != nil {
		t.Fatal(err)
	}
	b := b16.Bytes()
	if n := binary.LittleEndian.Uint32(b[16:]); n != 6 {
		t.Fatalf("section count %d, want 6", n)
	}
	lz, err := openLazySource(mmapSource{b}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, s := range lz.Sections() {
		names = append(names, s.Name)
	}
	want := []string{"spec", "stats", "csr", "labels", "splits", "features16"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("sections %v, want %v", names, want)
	}
	if _, ok := findSection(lz.sections, secFeatures); ok {
		t.Fatal("fp16 store still carries an fp32 features section")
	}
	_, len16 := sectionExtent(t, lz, secFeaturesF16)
	rows, cols := f16.Features.Rows, f16.Features.Cols
	if want := uint64(16 + rows*cols*2); len16 != want {
		t.Fatalf("features16 section %d bytes, want %d", len16, want)
	}
	if b16.Len() >= b32.Len() {
		t.Fatalf("fp16 store %d bytes, fp32 %d — no size win", b16.Len(), b32.Len())
	}
	// Deterministic writes, like the fp32 golden test pins.
	var again bytes.Buffer
	if err := f16.Write(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, again.Bytes()) {
		t.Fatal("two writes of the same fp16 dataset differ")
	}
}

// ConvertFeatures is a single RTNE rounding: every stored value is the
// nearest fp16, and re-converting is the identity.
func TestConvertFeaturesRoundsOnceAndIsIdempotent(t *testing.T) {
	ds := storeTestDataset(t)
	ref := ds.Features.Clone()
	if err := ds.ConvertFeatures(DtypeF16); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.Features.Rows; i++ {
		got, orig := ds.Features.Row(i), ref.Row(i)
		for j := range got {
			if want := half.Round(orig[j]); math.Float32bits(got[j]) != math.Float32bits(want) {
				t.Fatalf("row %d col %d: %v, want round(%v)=%v", i, j, got[j], orig[j], want)
			}
		}
	}
	snap := ds.Features.Clone()
	if err := ds.ConvertFeatures(DtypeF16); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds.Features, snap) {
		t.Fatal("second fp16 conversion changed already-exact values")
	}
	// Back to fp32 is a pure relabel: the widened values are unchanged.
	if err := ds.ConvertFeatures(DtypeF32); err != nil {
		t.Fatal(err)
	}
	if ds.FeatDtype != DtypeF32 || !reflect.DeepEqual(ds.Features, snap) {
		t.Fatal("fp32 relabel changed feature values")
	}
}

func TestConvertFeaturesRejectsUnrepresentable(t *testing.T) {
	for _, bad := range []float32{float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)), 65520, -1e9} {
		ds := storeTestDataset(t)
		ds.Features.Row(3)[1] = bad
		if err := ds.ConvertFeatures(DtypeF16); err == nil {
			t.Fatalf("value %v accepted by fp16 conversion", bad)
		}
	}
}

// ConvertStore on disk: fp32→fp16 matches an in-memory conversion
// byte for byte, converting an already-fp16 store is byte-idempotent,
// and fp16→fp32 widens to exactly the rounded values.
func TestConvertStoreIdempotent(t *testing.T) {
	dir := t.TempDir()
	src32 := filepath.Join(dir, "a32.argograph")
	if err := storeTestDataset(t).Save(src32); err != nil {
		t.Fatal(err)
	}
	dst16 := filepath.Join(dir, "a16.argograph")
	from, identical, err := ConvertStore(src32, dst16, DtypeF16)
	if err != nil {
		t.Fatal(err)
	}
	if from != DtypeF32 || identical {
		t.Fatalf("fp32→fp16: from=%v identical=%v", from, identical)
	}
	wantPath := filepath.Join(dir, "want16.argograph")
	if err := f16TestDataset(t).Save(wantPath); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(dst16)
	want, _ := os.ReadFile(wantPath)
	if !bytes.Equal(got, want) {
		t.Fatal("on-disk conversion differs from in-memory ConvertFeatures+Save")
	}
	// fp16→fp16 rewrites the same bytes (and says so).
	again := filepath.Join(dir, "again16.argograph")
	if from, identical, err = ConvertStore(dst16, again, DtypeF16); err != nil {
		t.Fatal(err)
	}
	if from != DtypeF16 || !identical {
		t.Fatalf("fp16→fp16: from=%v identical=%v", from, identical)
	}
	rewritten, _ := os.ReadFile(again)
	if !bytes.Equal(rewritten, got) {
		t.Fatal("fp16→fp16 conversion is not byte-idempotent")
	}
	// fp16→fp32 widens losslessly.
	back32 := filepath.Join(dir, "back32.argograph")
	if _, _, err := ConvertStore(dst16, back32, DtypeF32); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDataset(back32)
	if err != nil {
		t.Fatal(err)
	}
	f16 := f16TestDataset(t)
	if back.FeatDtype != DtypeF32 || !reflect.DeepEqual(back.Features, f16.Features) {
		t.Fatal("fp16→fp32 widening does not match the rounded values")
	}
}

// Sharding an fp16 dataset keeps every shard store fp16 and every owned
// row bit-exact — the invariant the wire format's losslessness rests on.
func TestF16ShardRoundTripBitExact(t *testing.T) {
	ds := f16TestDataset(t)
	dir := t.TempDir()
	man, paths, err := WriteShardSet(ds, dir, "f16", ShardOptions{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if man.FeatDtype != "fp16" {
		t.Fatalf("manifest dtype %q, want fp16", man.FeatDtype)
	}
	ss, err := OpenShardSet(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if err := ss.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ss.K(); i++ {
		lz, err := ss.Shard(i)
		if err != nil {
			t.Fatal(err)
		}
		if lz.FeatDtype() != DtypeF16 {
			t.Fatalf("shard %d dtype %v", i, lz.FeatDtype())
		}
		sm, err := ss.ShardMap(i)
		if err != nil {
			t.Fatal(err)
		}
		for local := 0; local < lz.NumFeatureRows(); local++ {
			global, err := sm.GlobalID(NodeID(local))
			if err != nil {
				t.Fatal(err)
			}
			row, err := lz.FeatureRow(local, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(row, ds.Features.Row(int(global))) {
				t.Fatalf("shard %d local row %d (global %d) differs", i, local, global)
			}
		}
	}
}

// The fp16 twin of TestFeatureRowKHopGatherNeverMaterialisesMatrix:
// row-granular reads on an fp16 store touch exactly the gathered rows'
// 2-byte-per-value extents — half the fp32 traffic, and never the
// whole section.
func TestF16FeatureRowNeverMaterialisesMatrix(t *testing.T) {
	ds := f16TestDataset(t)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	rec := &recordingSource{inner: mmapSource{buf.Bytes()}}
	lz, err := openLazySource(rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := []int{0, 7, 13, 200, ds.Features.Rows - 1}
	readsBefore := len(rec.reads)
	scratch := make([]float32, lz.FeatureDim())
	for _, i := range rows {
		row, err := lz.FeatureRow(i, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(row, ds.Features.Row(i)) {
			t.Fatalf("row %d differs", i)
		}
	}
	featOff, featLen := sectionExtent(t, lz, secFeaturesF16)
	var featureBytes uint64
	for _, rd := range rec.reads[readsBefore:] {
		if rd[0] < featOff || rd[0]+rd[1] > featOff+featLen {
			t.Fatalf("read [%d,+%d) outside the features16 section", rd[0], rd[1])
		}
		featureBytes += rd[1]
	}
	want := 16 + uint64(lz.FeatureDim())*2*uint64(len(rows))
	if featureBytes != want {
		t.Fatalf("read %d feature bytes, want exactly %d (%d fp16 rows + header)", featureBytes, want, len(rows))
	}
	if featureBytes >= featLen {
		t.Fatal("fp16 row reads materialised the features section")
	}
}

// Validate rejects fp16 sections whose values are corrupt: non-finite
// bits, and (through VerifyStore) a payload whose row extent lies.
func TestF16ValidateRejectsNonFinite(t *testing.T) {
	ds := f16TestDataset(t)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	ds.Features.Row(5)[2] = float32(math.Inf(1))
	if err := ds.Validate(); err == nil {
		t.Fatal("fp16 dataset with +Inf passed validation")
	}
	ds.Features.Row(5)[2] = 1.0 + 1e-4 // not fp16-exact
	if err := ds.Validate(); err == nil {
		t.Fatal("fp16 dataset with a non-fp16-exact value passed validation")
	}
}

// The rounding report on a hand-built matrix: fp16 has 10 fraction
// bits, so 1+2⁻¹¹ sits exactly halfway between 1 and 1+2⁻¹⁰ and
// nearest-even rounds it to 1 — error exactly 2⁻¹¹ — while powers of
// two and small integers are exact.
func TestF16RoundingReportKnownMatrix(t *testing.T) {
	const half11 = 1.0 / 2048 // 2⁻¹¹
	m := tensor.New(2, 3)
	copy(m.Row(0), []float32{1 + half11, 2, 0.5})
	copy(m.Row(1), []float32{1, 3, 0.25})
	st := F16RoundingReport(m)
	if st.Rows != 2 || st.Cols != 3 {
		t.Fatalf("shape %dx%d", st.Rows, st.Cols)
	}
	wantMax := []float64{half11, 0, 0}
	wantMean := []float64{half11 / 2, 0, 0}
	for j := range wantMax {
		if st.MaxErr[j] != wantMax[j] {
			t.Fatalf("col %d max err %g, want %g", j, st.MaxErr[j], wantMax[j])
		}
		if st.MeanErr[j] != wantMean[j] {
			t.Fatalf("col %d mean err %g, want %g", j, st.MeanErr[j], wantMean[j])
		}
	}
	if st.WorstCol != 0 || st.WorstErr != half11 || st.OverallMax != half11 {
		t.Fatalf("worst col %d err %g", st.WorstCol, st.WorstErr)
	}
	if want := half11 / 6; st.MeanAbs != want {
		t.Fatalf("matrix mean err %g, want %g", st.MeanAbs, want)
	}
	// The reported deltas are exactly what conversion applies: after
	// ConvertFeatures the same matrix reports all zeros.
	ds := f16TestDataset(t)
	if zero := F16RoundingReport(ds.Features); zero.OverallMax != 0 || zero.MeanAbs != 0 {
		t.Fatalf("converted matrix still reports rounding error %g", zero.OverallMax)
	}
}
