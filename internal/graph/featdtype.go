package graph

import (
	"fmt"
	"math"

	"argo/internal/tensor"
	"argo/internal/tensor/half"
)

// FeatDtype selects the on-disk (and on-wire) element type of the
// node-feature matrix. Kernels always compute in float32; the dtype
// only decides how feature bytes are stored and shipped, with fp16
// decoded exactly at the gather boundary.
type FeatDtype uint8

const (
	// DtypeF32 is the default full-precision encoding (4 bytes/element).
	DtypeF32 FeatDtype = iota
	// DtypeF16 stores features as IEEE binary16 (2 bytes/element).
	// Datasets carrying this dtype hold only fp16-exact values (the
	// convert step rounds once and Validate enforces it), so every
	// store/wire re-encode after conversion is lossless.
	DtypeF16
)

// String returns the CLI/JSON name of the dtype.
func (t FeatDtype) String() string {
	if t == DtypeF16 {
		return "fp16"
	}
	return "fp32"
}

// Size returns the dtype's bytes per feature element.
func (t FeatDtype) Size() int {
	if t == DtypeF16 {
		return 2
	}
	return 4
}

// statsName is the dtype's stats/manifest JSON value: empty for fp32,
// so pre-dtype stores' JSON sections — and therefore their bytes — are
// reproduced unchanged by the canonical writer.
func (t FeatDtype) statsName() string {
	if t == DtypeF16 {
		return "fp16"
	}
	return ""
}

// ParseFeatDtype parses a -feat-dtype flag or a stats/manifest JSON
// value. The empty string is fp32 (pre-dtype stores).
func ParseFeatDtype(s string) (FeatDtype, error) {
	switch s {
	case "", "fp32", "f32", "float32":
		return DtypeF32, nil
	case "fp16", "f16", "float16", "half":
		return DtypeF16, nil
	}
	return DtypeF32, fmt.Errorf("graph: unknown feature dtype %q (fp32, fp16)", s)
}

// ConvertFeatures re-types the dataset's feature matrix in place.
// Widening to fp32 only changes the tag (fp16 values are already exact
// in float32). Narrowing to fp16 rounds every value to the nearest
// fp16 — a one-time precision loss — and refuses non-finite inputs and
// values beyond the fp16 range (|v| > 65504), which would silently
// saturate to ±Inf. After a successful narrow the matrix satisfies the
// fp16-exactness invariant Validate checks, so the conversion is
// idempotent and every later encode is lossless.
func (d *Dataset) ConvertFeatures(t FeatDtype) error {
	if t == d.FeatDtype {
		return nil
	}
	if t == DtypeF16 {
		for i, v := range d.Features.Data {
			f64 := float64(v)
			if math.IsNaN(f64) || math.IsInf(f64, 0) || math.Abs(f64) > half.MaxValue {
				return fmt.Errorf("graph: feature value %v at flat index %d not representable in fp16", v, i)
			}
			d.Features.Data[i] = half.Round(v)
		}
	}
	d.FeatDtype = t
	return nil
}

// F16RoundingStats quantifies the one-time precision loss of narrowing
// a feature matrix to fp16: per-column max and mean absolute rounding
// error, plus the worst column overall. Computed on the fp32 values
// BEFORE conversion (afterwards every value is fp16-exact and the
// report would be all zeros).
type F16RoundingStats struct {
	Rows, Cols int
	MaxErr     []float64 // per-column max |fp16(v) − v|
	MeanErr    []float64 // per-column mean |fp16(v) − v|
	WorstCol   int       // column with the largest max error
	WorstErr   float64   // that column's max error
	OverallMax float64   // == WorstErr; kept for report symmetry
	MeanAbs    float64   // mean |fp16(v) − v| over the whole matrix
}

// F16RoundingReport measures what ConvertFeatures(DtypeF16) would do to
// each column of m. Rounding uses the same nearest-even Round as the
// conversion itself, so the reported errors are exactly the deltas the
// converted store will carry.
func F16RoundingReport(m *tensor.Matrix) F16RoundingStats {
	st := F16RoundingStats{
		Rows:    m.Rows,
		Cols:    m.Cols,
		MaxErr:  make([]float64, m.Cols),
		MeanErr: make([]float64, m.Cols),
	}
	if m.Rows == 0 || m.Cols == 0 {
		return st
	}
	var total float64
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			e := math.Abs(float64(half.Round(v)) - float64(v))
			st.MeanErr[j] += e
			total += e
			if e > st.MaxErr[j] {
				st.MaxErr[j] = e
			}
		}
	}
	for j := range st.MeanErr {
		st.MeanErr[j] /= float64(m.Rows)
		if st.MaxErr[j] > st.WorstErr {
			st.WorstErr = st.MaxErr[j]
			st.WorstCol = j
		}
	}
	st.OverallMax = st.WorstErr
	st.MeanAbs = total / float64(m.Rows*m.Cols)
	return st
}

// validateF16Exact checks the fp16 dataset invariant: every feature
// value finite and bit-exactly representable in fp16.
func (d *Dataset) validateF16Exact() error {
	for i, v := range d.Features.Data {
		h := half.Bits(v)
		if !half.IsFinite(h) || half.FromBits(h) != v {
			return fmt.Errorf("graph: fp16 dataset holds non-fp16 value %v at flat index %d (run ConvertFeatures)", v, i)
		}
	}
	return nil
}
