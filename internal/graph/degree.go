package graph

import "sort"

// TopDegree returns the k highest-out-degree nodes of g as a
// degree-ranked list: degree descending, ascending node id on ties, so
// the ranking is a pure function of the topology. It is the selection
// behind the serving layer's hub set — the rows a two-tier cache pins
// and the nodes whose activations are precomputed — and complements the
// degree histogram the v2 store's Stats section carries: the histogram
// sizes the hub set without touching topology bytes, TopDegree names
// its members once the CSR is open. k is clamped to [0, NumNodes].
func TopDegree(g *CSR, k int) []NodeID {
	if k <= 0 || g.NumNodes == 0 {
		return nil
	}
	if k > g.NumNodes {
		k = g.NumNodes
	}
	ids := make([]NodeID, g.NumNodes)
	for v := range ids {
		ids[v] = NodeID(v)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := g.Degree(ids[i]), g.Degree(ids[j])
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	return ids[:k:k]
}

// HubCount converts a top-degree fraction into a node count: the number
// of nodes in the top frac of n, at least 1 when frac > 0 and n > 0 (a
// non-empty hub request on a non-empty graph always selects something).
// Out-of-range fractions clamp to [0, 1].
func HubCount(n int, frac float64) int {
	if n <= 0 || frac <= 0 {
		return 0
	}
	if frac >= 1 {
		return n
	}
	k := int(frac * float64(n))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// HubCount is HubCount(NumNodes, frac) computed from the stats section
// alone — a lazy or sharded store can size its hub set (pin count,
// precompute budget) without materialising any topology bytes.
func (s *Stats) HubCount(frac float64) int {
	return HubCount(int(s.NumNodes), frac)
}
