package graph

import (
	"math/rand"
	"testing"
)

func testGraph(t *testing.T) *CSR {
	t.Helper()
	g, _, err := Generate(GenSpec{
		NumNodes: 800, NumEdges: 6000, NumClasses: 4,
		Homophily: 0.7, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRandomPartitionValid(t *testing.T) {
	g := testGraph(t)
	p := RandomPartition(g, 4, rand.New(rand.NewSource(1)))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if b := p.Balance(g); b > 1.25 {
		t.Fatalf("random partition badly imbalanced: %.2f", b)
	}
}

func TestGreedyPartitionValidAndBalanced(t *testing.T) {
	g := testGraph(t)
	p := GreedyPartition(g, 4, rand.New(rand.NewSource(2)))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if b := p.Balance(g); b > 1.15 {
		t.Fatalf("greedy partition imbalance %.2f exceeds 1.15", b)
	}
}

// The §VII-A trade-off: the METIS-style partitioner must achieve a lower
// edge cut than random splitting.
func TestGreedyBeatsRandomEdgeCut(t *testing.T) {
	g := testGraph(t)
	rng := rand.New(rand.NewSource(3))
	randomCut := RandomPartition(g, 4, rng).EdgeCut(g)
	greedyCut := GreedyPartition(g, 4, rng).EdgeCut(g)
	if greedyCut >= randomCut {
		t.Fatalf("greedy cut %d not below random cut %d", greedyCut, randomCut)
	}
}

func TestEdgeCutBounds(t *testing.T) {
	g := testGraph(t)
	p := RandomPartition(g, 2, rand.New(rand.NewSource(4)))
	cut := p.EdgeCut(g)
	if cut < 0 || cut > g.NumEdges() {
		t.Fatalf("edge cut %d out of [0, %d]", cut, g.NumEdges())
	}
	// Single part: no cut at all.
	p1 := RandomPartition(g, 1, rand.New(rand.NewSource(5)))
	if p1.EdgeCut(g) != 0 {
		t.Fatal("k=1 partition must have zero edge cut")
	}
}

func TestPartitionValidateCatchesBadAssignment(t *testing.T) {
	g := testGraph(t)
	p := RandomPartition(g, 2, rand.New(rand.NewSource(6)))
	p.Assign[0] = 9
	if err := p.Validate(); err == nil {
		t.Fatal("Validate must reject out-of-range part")
	}
}
