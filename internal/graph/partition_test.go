package graph

import (
	"math/rand"
	"testing"
)

func testGraph(t *testing.T) *CSR {
	t.Helper()
	g, _, err := Generate(GenSpec{
		NumNodes: 800, NumEdges: 6000, NumClasses: 4,
		Homophily: 0.7, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRandomPartitionValid(t *testing.T) {
	g := testGraph(t)
	p := RandomPartition(g, 4, rand.New(rand.NewSource(1)))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if b := p.Balance(g); b > 1.25 {
		t.Fatalf("random partition badly imbalanced: %.2f", b)
	}
}

func TestGreedyPartitionValidAndBalanced(t *testing.T) {
	g := testGraph(t)
	p := GreedyPartition(g, 4)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if b := p.Balance(g); b > 1.15 {
		t.Fatalf("greedy partition imbalance %.2f exceeds 1.15", b)
	}
}

// The §VII-A trade-off: the METIS-style partitioner must achieve a lower
// edge cut than random splitting.
func TestGreedyBeatsRandomEdgeCut(t *testing.T) {
	g := testGraph(t)
	rng := rand.New(rand.NewSource(3))
	rp := RandomPartition(g, 4, rng)
	if err := rp.Validate(); err != nil {
		t.Fatal(err)
	}
	gp := GreedyPartition(g, 4)
	if err := gp.Validate(); err != nil {
		t.Fatal(err)
	}
	if gp.EdgeCut(g) >= rp.EdgeCut(g) {
		t.Fatalf("greedy cut %d not below random cut %d", gp.EdgeCut(g), rp.EdgeCut(g))
	}
}

// GreedyPartition is deterministic by construction (degree-ordered
// seeds, ties broken by node id, sorted-adjacency BFS): on the golden
// seed-21 graph the edge cut and balance are pinned exactly. A change
// in either is a behaviour change in the partitioner and must be
// deliberate — update the constants together with DESIGN rationale,
// not to silence the test.
func TestGreedyPartitionGoldenCutAndBalance(t *testing.T) {
	g := testGraph(t)
	p := GreedyPartition(g, 4)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	const goldenCut, goldenBalance = 5434, 1.0
	if cut := p.EdgeCut(g); cut != goldenCut {
		t.Fatalf("golden edge cut drifted: %d, want %d", cut, goldenCut)
	}
	if b := p.Balance(g); b != goldenBalance {
		t.Fatalf("golden balance drifted: %v, want %v", b, goldenBalance)
	}
	// Two runs over the same graph must agree element-wise — the
	// determinism fix this test guards (the old implementation seeded
	// BFS from a random permutation, so equal-degree nodes could swap
	// parts between runs).
	q := GreedyPartition(g, 4)
	for v := range p.Assign {
		if p.Assign[v] != q.Assign[v] {
			t.Fatalf("node %d assigned to %d then %d across identical runs", v, p.Assign[v], q.Assign[v])
		}
	}
}

func TestEdgeCutBounds(t *testing.T) {
	g := testGraph(t)
	p := RandomPartition(g, 2, rand.New(rand.NewSource(4)))
	cut := p.EdgeCut(g)
	if cut < 0 || cut > g.NumEdges() {
		t.Fatalf("edge cut %d out of [0, %d]", cut, g.NumEdges())
	}
	// Single part: no cut at all.
	p1 := RandomPartition(g, 1, rand.New(rand.NewSource(5)))
	if p1.EdgeCut(g) != 0 {
		t.Fatal("k=1 partition must have zero edge cut")
	}
}

func TestPartitionValidateCatchesBadAssignment(t *testing.T) {
	g := testGraph(t)
	p := RandomPartition(g, 2, rand.New(rand.NewSource(6)))
	p.Assign[0] = 9
	if err := p.Validate(); err == nil {
		t.Fatal("Validate must reject out-of-range part")
	}
}
