package serve

import (
	"container/list"
	"sync"

	"argo/internal/graph"
)

// protectedFraction of the byte budget backs the protected segment; the
// rest is probation (the classic buffer-pool midpoint split).
const protectedFraction = 0.8

// midpoint is the midpoint policy: a segmented LRU in the style of the
// MySQL/InnoDB buffer pool. New rows enter a probation segment; only a
// second touch promotes them into the protected segment (bounded at
// protectedFraction of the budget, demoting its own tail back to
// probation when it overflows). Eviction drains the probation tail
// first, so a one-pass scan — whose rows are touched exactly once —
// churns through probation without ever displacing the re-referenced
// hot set sitting in protected.
type midpoint struct {
	mu        sync.Mutex
	capBytes  int64
	protCap   int64
	used      int64
	protUsed  int64
	probation *list.List // front = most recently used
	protected *list.List
	items     map[graph.NodeID]*list.Element

	ctr cacheCounters
}

type mpEntry struct {
	id        graph.NodeID
	row       []float32
	protected bool
}

func newMidpoint(cfg CacheConfig) (Cache, error) {
	return &midpoint{
		capBytes:  cfg.CapBytes,
		protCap:   int64(float64(cfg.CapBytes) * protectedFraction),
		probation: list.New(),
		protected: list.New(),
		items:     make(map[graph.NodeID]*list.Element),
	}, nil
}

func (c *midpoint) Get(id graph.NodeID, dst []float32) ([]float32, bool) {
	c.mu.Lock()
	el, ok := c.items[id]
	if !ok {
		c.mu.Unlock()
		c.ctr.misses.Add(1)
		return nil, false
	}
	ent := el.Value.(*mpEntry)
	if ent.protected {
		c.protected.MoveToFront(el)
	} else {
		// Second touch: promote out of probation.
		c.probation.Remove(el)
		ent.protected = true
		c.items[id] = c.protected.PushFront(ent)
		c.protUsed += entrySize(ent.row)
		c.balance()
	}
	dst = copyRow(dst, ent.row)
	c.mu.Unlock()
	c.ctr.hits.Add(1)
	return dst, true
}

// balance demotes the protected tail into probation until the protected
// segment fits its share of the budget.
func (c *midpoint) balance() {
	for c.protUsed > c.protCap {
		tail := c.protected.Back()
		if tail == nil {
			break
		}
		ent := tail.Value.(*mpEntry)
		c.protected.Remove(tail)
		ent.protected = false
		c.items[ent.id] = c.probation.PushFront(ent)
		c.protUsed -= entrySize(ent.row)
	}
}

func (c *midpoint) Put(id graph.NodeID, row []float32) {
	size := entrySize(row)
	if c.capBytes <= 0 || size > c.capBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[id]; ok {
		ent := el.Value.(*mpEntry)
		if len(ent.row) != len(row) {
			delta := size - entrySize(ent.row)
			c.used += delta
			if ent.protected {
				c.protUsed += delta
			}
			ent.row = make([]float32, len(row))
			copy(ent.row, row)
			c.balance()
		}
		// A Put is a write-back, not a reference: no promotion, no
		// recency bump — only Get moves rows between segments.
	} else {
		own := make([]float32, len(row))
		copy(own, row)
		c.items[id] = c.probation.PushFront(&mpEntry{id: id, row: own})
		c.used += size
	}
	for c.used > c.capBytes {
		tail := c.probation.Back()
		seg := c.probation
		if tail == nil {
			tail = c.protected.Back()
			seg = c.protected
		}
		if tail == nil {
			break
		}
		ent := tail.Value.(*mpEntry)
		seg.Remove(tail)
		delete(c.items, ent.id)
		sz := entrySize(ent.row)
		c.used -= sz
		if ent.protected {
			c.protUsed -= sz
		}
		c.ctr.evictions.Add(1)
	}
}

func (c *midpoint) Stats() CacheStats {
	c.mu.Lock()
	s := CacheStats{
		Policy:    PolicyMidpoint,
		CapBytes:  c.capBytes,
		UsedBytes: c.used,
		Entries:   c.probation.Len() + c.protected.Len(),
	}
	c.mu.Unlock()
	c.ctr.snapshot(&s)
	return s
}

func (c *midpoint) Close() error { return nil }
