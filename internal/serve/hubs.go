package serve

import (
	"fmt"

	"argo/internal/graph"
	"argo/internal/sampler"
)

// hubChunk bounds how many hub targets one precompute pass gathers, so
// precomputing a large hub set never materialises a frontier bigger
// than ~hubChunk times the average k-hop neighborhood.
const hubChunk = 128

// HubStore holds precomputed per-layer activations for a hub set —
// typically the top-degree nodes (graph.TopDegree), whose deep
// frontiers dominate gather cost on a power-law graph. acts[j] maps a
// hub to its activation after j model layers: acts[L] is the hub's
// logits (a hub target is answered outright, no gather at all), and
// acts[1..L-1] are the values injected into interior layer inputs so a
// gather pruned at hubs (sampler.SamplePruned) stays bit-identical to
// the unpruned pass. acts[0] would be the raw feature row and is not
// stored — the feature path already supplies it exactly.
//
// The store is immutable after construction, so reads need no locking.
// All methods are nil-receiver safe (a nil store knows no hubs).
type HubStore struct {
	acts  []map[graph.NodeID][]float32
	nodes []graph.NodeID
	bytes int64
}

// Len returns the number of hub nodes.
func (h *HubStore) Len() int {
	if h == nil {
		return 0
	}
	return len(h.nodes)
}

// Layers returns the model depth the store was computed for.
func (h *HubStore) Layers() int {
	if h == nil {
		return 0
	}
	return len(h.acts) - 1
}

// Bytes returns the stored activation payload size.
func (h *HubStore) Bytes() int64 {
	if h == nil {
		return 0
	}
	return h.bytes
}

// Nodes returns the hub set in precompute (degree-rank) order. Callers
// must not mutate it.
func (h *HubStore) Nodes() []graph.NodeID {
	if h == nil {
		return nil
	}
	return h.nodes
}

// Contains reports whether id is a hub — the pruning predicate handed
// to sampler.SamplePruned.
func (h *HubStore) Contains(id graph.NodeID) bool {
	if h == nil {
		return false
	}
	_, ok := h.acts[len(h.acts)-1][id]
	return ok
}

// Activation returns id's stored activation entering layer `layer`
// (i.e. its output after `layer` layers), or false if id is not a hub
// or the layer is out of the stored range.
func (h *HubStore) Activation(layer int, id graph.NodeID) ([]float32, bool) {
	if h == nil || layer < 1 || layer >= len(h.acts) {
		return nil, false
	}
	a, ok := h.acts[layer][id]
	return a, ok
}

// Logits returns id's stored final-layer output, or false if id is not
// a hub.
func (h *HubStore) Logits(id graph.NodeID) ([]float32, bool) {
	if h == nil {
		return nil, false
	}
	a, ok := h.acts[len(h.acts)-1][id]
	return a, ok
}

// HubStats is the /statz snapshot of the hub layer.
type HubStats struct {
	Nodes  int   `json:"nodes"`
	Layers int   `json:"layers"`
	Bytes  int64 `json:"bytes"`
	// Hits counts predictions answered from stored hub logits with no
	// gather at all.
	Hits int64 `json:"hits"`
}

// PrecomputeHubs computes and stores per-layer activations for the
// given hub nodes, then attaches the store to the inferencer: from the
// next Predict on, gathers are pruned at hubs and hub targets are
// answered from stored logits. The per-layer values come from prefix
// passes of the model itself — a j-block full-neighborhood gather fed
// through the first j layers (nn.GNN.InferReuse) — so every stored
// activation carries exactly the bits a direct inference would compute;
// the serving path stays bit-identical to DirectPredict. Feature rows
// stream through the same cache as live traffic, so precompute doubles
// as a cache warm-up for exactly the rows hub-adjacent queries re-fetch.
//
// Cost is one full gather per model layer over the hub set (chunked);
// it runs once at server start. An empty hub set detaches the store.
func (inf *Inferencer) PrecomputeHubs(hubs []graph.NodeID) (*HubStore, error) {
	inf.mu.Lock()
	defer inf.mu.Unlock()
	if len(hubs) == 0 {
		inf.hubs = nil
		return nil, nil
	}
	for _, v := range hubs {
		if v < 0 || int(v) >= inf.graph.NumNodes {
			return nil, fmt.Errorf("serve: hub node %d outside [0,%d)", v, inf.graph.NumNodes)
		}
	}
	L := inf.model.NumLayers()
	hs := &HubStore{
		acts:  make([]map[graph.NodeID][]float32, L+1),
		nodes: append([]graph.NodeID(nil), hubs...),
	}
	bufs := inf.model.Buffers()
	for j := 1; j <= L; j++ {
		hs.acts[j] = make(map[graph.NodeID][]float32, len(hubs))
		fn := sampler.NewFullNeighbor(inf.graph, j)
		for start := 0; start < len(hubs); start += hubChunk {
			end := start + hubChunk
			if end > len(hubs) {
				end = len(hubs)
			}
			chunk := hubs[start:end]
			mb := fn.Sample(nil, chunk)
			x0, err := inf.gatherFeatures(mb.InputNodes())
			if err != nil {
				return nil, err
			}
			out := inf.model.InferReuse(inf.pool, mb, x0, nil)
			for i, v := range chunk {
				row := append([]float32(nil), out.Row(i)...)
				hs.acts[j][v] = row
				hs.bytes += int64(len(row)) * 4
			}
			bufs.Put(out)
			bufs.Put(x0)
		}
	}
	inf.hubs = hs
	return hs, nil
}

// Hubs returns the attached hub store (nil when hub serving is off).
func (inf *Inferencer) Hubs() *HubStore { return inf.hubs }

// HubStats reports the hub layer counters (zero value when detached).
func (inf *Inferencer) HubStats() HubStats {
	hs := inf.hubs
	if hs == nil {
		return HubStats{}
	}
	return HubStats{
		Nodes:  hs.Len(),
		Layers: hs.Layers(),
		Bytes:  hs.Bytes(),
		Hits:   inf.hubHits.Load(),
	}
}
