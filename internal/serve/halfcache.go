package serve

import (
	"math"
	"sync"

	"argo/internal/graph"
	"argo/internal/tensor/half"
)

// halfCache fronts any policy cache with fp16 row packing: each stored
// row carries two fp16 values per float32 backing element, so the same
// byte budget holds roughly twice the rows. It is installed only over
// fp16 feature sources, whose rows are fp16-exact by the store
// invariant — packing is then lossless, and a Get returns the very bits
// a Put received, preserving served==direct bit-parity. The inner
// policy never knows: it sees ordinary (shorter) float32 rows, so
// admission, pinning, and byte accounting all work unchanged.
type halfCache struct {
	inner  Cache
	dim    int // unpacked row width
	packed int // float32 elements per stored row (2 fp16 each)
	// scratch packed-row buffers; Get/Put must stay concurrency-safe
	// without serialising on a single buffer.
	pool sync.Pool
}

// packedRowLen returns the float32 elements an fp16-packed row of the
// given width occupies (two values per element, odd tail padded).
func packedRowLen(dim int) int { return (dim + 1) / 2 }

// newHalfCache wraps inner with fp16 packing for rows of width dim.
func newHalfCache(inner Cache, dim int) Cache {
	hc := &halfCache{inner: inner, dim: dim, packed: packedRowLen(dim)}
	hc.pool.New = func() any {
		buf := make([]float32, hc.packed)
		return &buf
	}
	return hc
}

// pack encodes row (len dim) into buf (len packed): two fp16 bit
// patterns per float32 element, little end first, odd tail zero-padded.
func (c *halfCache) pack(buf, row []float32) {
	for i := range buf {
		lo := uint32(half.Bits(row[2*i]))
		var hi uint32
		if 2*i+1 < len(row) {
			hi = uint32(half.Bits(row[2*i+1]))
		}
		buf[i] = math.Float32frombits(lo | hi<<16)
	}
}

// unpack widens buf back into dst (len dim).
func (c *halfCache) unpack(dst, buf []float32) {
	for i, v := range buf {
		bits := math.Float32bits(v)
		dst[2*i] = half.FromBits(uint16(bits))
		if 2*i+1 < len(dst) {
			dst[2*i+1] = half.FromBits(uint16(bits >> 16))
		}
	}
}

func (c *halfCache) Get(id graph.NodeID, dst []float32) ([]float32, bool) {
	bufp := c.pool.Get().(*[]float32)
	row, ok := c.inner.Get(id, *bufp)
	if !ok || len(row) != c.packed {
		c.pool.Put(bufp)
		return nil, false
	}
	*bufp = row
	if cap(dst) < c.dim {
		dst = make([]float32, c.dim)
	}
	dst = dst[:c.dim]
	c.unpack(dst, row)
	c.pool.Put(bufp)
	return dst, true
}

func (c *halfCache) Put(id graph.NodeID, row []float32) {
	if len(row) != c.dim {
		return
	}
	bufp := c.pool.Get().(*[]float32)
	buf := (*bufp)[:c.packed]
	c.pack(buf, row)
	c.inner.Put(id, buf)
	c.pool.Put(bufp)
}

func (c *halfCache) Stats() CacheStats { return c.inner.Stats() }

func (c *halfCache) Close() error { return c.inner.Close() }

// FeatureSourceDtype reports a feature source's storage dtype through
// its optional FeatDtype method; sources without one serve fp32.
func FeatureSourceDtype(src FeatureSource) graph.FeatDtype {
	if d, ok := src.(interface{ FeatDtype() graph.FeatDtype }); ok {
		return d.FeatDtype()
	}
	return graph.DtypeF32
}

// StoredRowBytes returns the cache-resident payload size of one feature
// row of the given width under the given storage dtype (fp16 rows are
// packed two values per float32 element).
func StoredRowBytes(dim int, dt graph.FeatDtype) int64 {
	if dt == graph.DtypeF16 {
		return int64(packedRowLen(dim)) * 4
	}
	return int64(dim) * 4
}

// EffectiveRowCapacity returns how many feature rows of the given width
// a cache byte budget holds under the given storage dtype, counting the
// per-entry overhead the policies charge. It is pure arithmetic — the
// byte-stable capacity figure argo-bench -serve reports, which makes
// the fp16 packing win (~2× rows per budget) visible without running
// traffic.
func EffectiveRowCapacity(capBytes int64, dim int, dt graph.FeatDtype) int64 {
	if capBytes <= 0 || dim <= 0 {
		return 0
	}
	return capBytes / (StoredRowBytes(dim, dt) + cacheEntryOverheadBytes)
}
