package serve

import (
	"math"
	"testing"

	"argo/internal/graph"
	"argo/internal/tensor"
	"argo/internal/tensor/half"
)

// Packing is lossless over fp16-exact rows: a Get returns the very bits
// a Put received, for even and odd widths.
func TestHalfCacheLosslessRoundTrip(t *testing.T) {
	for _, dim := range []int{1, 2, 3, 8, 17} {
		c := newHalfCache(NewFeatureCache(1<<20), dim)
		row := make([]float32, dim)
		for i := range row {
			row[i] = half.Round(float32(i)*0.37 - 2.5)
		}
		c.Put(5, row)
		got, ok := c.Get(5, nil)
		if !ok {
			t.Fatalf("dim %d: packed row missing", dim)
		}
		for i := range row {
			if math.Float32bits(got[i]) != math.Float32bits(row[i]) {
				t.Fatalf("dim %d: element %d round-tripped %v -> %v", dim, i, row[i], got[i])
			}
		}
		// Negative zero, subnormals, and the range extremes survive too.
		edge := make([]float32, dim)
		edge[0] = float32(math.Copysign(0, -1))
		if dim > 1 {
			edge[1] = half.FromBits(0x0001) // smallest positive subnormal
		}
		if dim > 2 {
			edge[2] = -65504
		}
		c.Put(6, edge)
		got, ok = c.Get(6, nil)
		if !ok {
			t.Fatal("edge row missing")
		}
		for i := range edge {
			if math.Float32bits(got[i]) != math.Float32bits(edge[i]) {
				t.Fatalf("dim %d: edge element %d round-tripped %#08x -> %#08x",
					dim, i, math.Float32bits(edge[i]), math.Float32bits(got[i]))
			}
		}
		if c.Close() != nil {
			t.Fatal("close")
		}
	}
}

// The packing win: under one byte budget the packed cache holds ~2× the
// rows of the plain cache, and EffectiveRowCapacity predicts both.
func TestHalfCacheCapacityWin(t *testing.T) {
	const dim = 64
	const capBytes = int64(40 * (dim*4 + cacheEntryOverheadBytes)) // 40 fp32 rows
	row := make([]float32, dim)
	for i := range row {
		row[i] = half.Round(float32(i) * 0.25)
	}
	fill := func(c Cache) int {
		for id := graph.NodeID(0); id < 1000; id++ {
			c.Put(id, row)
		}
		return c.Stats().Entries
	}
	plain := fill(NewFeatureCache(capBytes))
	packed := fill(newHalfCache(NewFeatureCache(capBytes), dim))
	if int64(plain) != EffectiveRowCapacity(capBytes, dim, graph.DtypeF32) {
		t.Fatalf("plain entries %d, predicted %d", plain, EffectiveRowCapacity(capBytes, dim, graph.DtypeF32))
	}
	if int64(packed) != EffectiveRowCapacity(capBytes, dim, graph.DtypeF16) {
		t.Fatalf("packed entries %d, predicted %d", packed, EffectiveRowCapacity(capBytes, dim, graph.DtypeF16))
	}
	if float64(packed) < 1.5*float64(plain) {
		t.Fatalf("packed cache holds %d rows vs %d plain — no capacity win", packed, plain)
	}
}

// Width-mismatched rows are refused rather than stored corrupt, and a
// packed-width mismatch inside the inner cache misses cleanly.
func TestHalfCacheWidthGuard(t *testing.T) {
	inner := NewFeatureCache(1 << 20)
	c := newHalfCache(inner, 4)
	c.Put(1, make([]float32, 3)) // wrong width: dropped
	if _, ok := c.Get(1, nil); ok {
		t.Fatal("mismatched-width row was cached")
	}
	inner.Put(2, make([]float32, 7)) // foreign entry of the wrong packed width
	if _, ok := c.Get(2, nil); ok {
		t.Fatal("wrong packed width served")
	}
}

// Dtype detection: tagged sources report their dtype, untagged default
// to fp32.
func TestFeatureSourceDtype(t *testing.T) {
	m := tensor.New(3, 2)
	if dt := FeatureSourceDtype(NewMatrixFeatureSource(m)); dt != graph.DtypeF32 {
		t.Fatalf("plain matrix source dtype %v", dt)
	}
	if dt := FeatureSourceDtype(NewMatrixFeatureSourceDtype(m, graph.DtypeF16)); dt != graph.DtypeF16 {
		t.Fatalf("tagged matrix source dtype %v", dt)
	}
}
