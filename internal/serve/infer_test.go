package serve

import (
	"math"
	"path/filepath"
	"testing"

	"argo/internal/datasets"
	"argo/internal/graph"
	"argo/internal/nn"
)

// serveFixture builds the tiny dataset, writes it to a store file, and
// trains nothing — a seeded model is enough for bit-match testing.
func serveFixture(t *testing.T) (*graph.Dataset, *nn.GNN, string) {
	t.Helper()
	ds, err := datasets.Build("tiny", 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := nn.NewModel(nn.ModelSpec{
		Kind: nn.KindSAGE,
		Dims: []int{ds.Features.Cols, 8, 8, ds.NumClasses},
		Seed: 7,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tiny.argograph")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	return ds, m, path
}

func logitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// The acceptance pin: a prediction served through the full stack (lazy
// row reads, hot-node cache, any batch composition, any worker count)
// must bit-match a direct single-batch forward pass on the materialised
// dataset.
func TestServedPredictionBitMatchesDirect(t *testing.T) {
	ds, m, path := serveFixture(t)
	lz, err := graph.OpenLazy(path)
	if err != nil {
		t.Fatal(err)
	}
	defer lz.Close()
	g, err := lz.Topology()
	if err != nil {
		t.Fatal(err)
	}
	inf, err := NewInferencer(InferencerOptions{
		Model:    m,
		Graph:    g,
		Features: NewLazyFeatureSource(lz),
		Cache:    NewFeatureCache(1 << 16),
		Workers:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes := []graph.NodeID{0, 17, 42, 99, 119}
	direct, err := DirectPredict(m, ds, nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Whole batch at once.
	served, err := inf.Predict(nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range nodes {
		if served[i].Label != direct[i].Label || !logitsEqual(served[i].Logits, direct[i].Logits) {
			t.Fatalf("node %d: served %v != direct %v", nodes[i], served[i], direct[i])
		}
	}
	// One node at a time, cache now warm: still bit-identical.
	for i, v := range nodes {
		solo, err := inf.Predict([]graph.NodeID{v})
		if err != nil {
			t.Fatal(err)
		}
		if !logitsEqual(solo[0].Logits, direct[i].Logits) {
			t.Fatalf("node %d: solo prediction diverges from direct", v)
		}
	}
	if s := inf.CacheStats(); s.Hits == 0 {
		t.Fatal("warm repeat queries should have hit the cache")
	}
}

// The sharded path must serve the same bits as the single-store path.
func TestShardedServingBitMatchesDirect(t *testing.T) {
	ds, m, _ := serveFixture(t)
	dir := t.TempDir()
	_, paths, err := graph.WriteShardSet(ds, dir, "tiny", graph.ShardOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := graph.OpenShardSet(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	g, err := ss.AssembleTopology()
	if err != nil {
		t.Fatal(err)
	}
	feats, err := NewShardFeatureSource(ss)
	if err != nil {
		t.Fatal(err)
	}
	inf, err := NewInferencer(InferencerOptions{Model: m, Graph: g, Features: feats})
	if err != nil {
		t.Fatal(err)
	}
	nodes := []graph.NodeID{3, 60, 118}
	direct, err := DirectPredict(m, ds, nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	served, err := inf.Predict(nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range nodes {
		if !logitsEqual(served[i].Logits, direct[i].Logits) {
			t.Fatalf("node %d: sharded serving diverges from direct", nodes[i])
		}
	}
}

func TestNewInferencerRejectsDimMismatch(t *testing.T) {
	ds, _, _ := serveFixture(t)
	wrong, err := nn.NewModel(nn.ModelSpec{Kind: nn.KindSAGE, Dims: []int{ds.Features.Cols + 1, 4, ds.NumClasses}, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewInferencer(InferencerOptions{
		Model:    wrong,
		Graph:    ds.Graph,
		Features: NewMatrixFeatureSource(ds.Features),
	})
	if err == nil {
		t.Fatal("feature-dim mismatch must be rejected")
	}
}
