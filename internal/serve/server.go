package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"argo/internal/graph"
)

// maxPredictNodes bounds one request's node list so a single caller
// cannot force an unbounded gather.
const maxPredictNodes = 4096

// PredictRequest is the /v1/predict body.
type PredictRequest struct {
	Nodes []graph.NodeID `json:"nodes"`
}

// PredictResponse is the /v1/predict answer: one prediction per
// requested node, in request order.
type PredictResponse struct {
	Predictions []Prediction `json:"predictions"`
}

// StatzResponse is the /statz answer.
type StatzResponse struct {
	Model         string       `json:"model"`
	Layers        int          `json:"layers"`
	NumNodes      int          `json:"num_nodes"`
	NumClasses    int          `json:"num_classes"`
	UptimeSeconds float64      `json:"uptime_seconds"`
	Requests      int64        `json:"http_requests"`
	CachePolicy   string       `json:"cache_policy,omitempty"`
	Cache         CacheStats   `json:"cache"`
	Hubs          HubStats     `json:"hubs"`
	Batcher       BatcherStats `json:"batcher"`
}

// Server is the HTTP face of the serving stack: it owns a batcher over
// an inferencer and exposes /v1/predict, /healthz, and /statz.
type Server struct {
	inf     *Inferencer
	batcher *Batcher
	mux     *http.ServeMux
	kind    string
	started time.Time
	reqs    atomic.Int64
}

// NewServer wires the handler around an inferencer. modelKind is a
// label for /statz (e.g. "sage"). Most callers should use New, which
// assembles the cache, hub store, and batcher from options; NewServer
// remains for pre-built inferencers.
func NewServer(inf *Inferencer, cfg BatcherConfig, modelKind string) *Server {
	s := &Server{
		inf:     inf,
		batcher: NewBatcher(inf, cfg),
		mux:     http.NewServeMux(),
		kind:    modelKind,
		started: time.Now(),
	}
	s.mux.HandleFunc("/v1/predict", s.handlePredict)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statz", s.handleStatz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Batcher exposes the batcher (benchmarks drive it directly to measure
// the serving stack without HTTP overhead).
func (s *Server) Batcher() *Batcher { return s.batcher }

// Inferencer exposes the wrapped inferencer (benchmarks and tests
// reach through it for cache and hub statistics).
func (s *Server) Inferencer() *Inferencer { return s.inf }

// Close drains the batcher — in-flight requests finish, new predict
// calls get 503 — then closes the cache. Call after
// http.Server.Shutdown.
func (s *Server) Close() {
	s.batcher.Close()
	if s.inf.cache != nil {
		_ = s.inf.cache.Close()
	}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	s.reqs.Add(1)
	var req PredictRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Nodes) == 0 {
		httpError(w, http.StatusBadRequest, "nodes is empty")
		return
	}
	if len(req.Nodes) > maxPredictNodes {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("too many nodes (%d > %d)", len(req.Nodes), maxPredictNodes))
		return
	}
	preds, err := s.batcher.Predict(req.Nodes)
	switch {
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	case errors.Is(err, ErrBadRequest):
		httpError(w, http.StatusBadRequest, err.Error())
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{Predictions: preds})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	cache := s.inf.CacheStats()
	writeJSON(w, http.StatusOK, StatzResponse{
		Model:         s.kind,
		Layers:        s.inf.model.NumLayers(),
		NumNodes:      s.inf.NumNodes(),
		NumClasses:    s.inf.NumClasses(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		Requests:      s.reqs.Load(),
		CachePolicy:   cache.Policy,
		Cache:         cache,
		Hubs:          s.inf.HubStats(),
		Batcher:       s.batcher.Stats(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
