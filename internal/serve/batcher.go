package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"argo/internal/graph"
)

// ErrClosed is returned by Batcher.Predict once Close has begun:
// in-flight requests are answered, new ones are refused.
var ErrClosed = errors.New("serve: batcher closed")

// ErrBadRequest wraps client mistakes (out-of-range node ids) so the
// HTTP layer can answer 400 instead of 500.
var ErrBadRequest = errors.New("serve: bad request")

// BatcherConfig tunes the micro-batching policy.
type BatcherConfig struct {
	// Window is how long a batch may wait after its first request before
	// it is flushed. Zero (or negative) disables coalescing: every
	// request is flushed as soon as the collector picks it up.
	Window time.Duration
	// MaxNodes flushes a batch as soon as its unique node count reaches
	// this cap (a single over-sized request still runs in one batch).
	// Zero means no size cap.
	MaxNodes int
}

// Batcher coalesces concurrent Predict calls into shared forward
// passes. Requests arriving within one window (or until the size cap)
// are merged: their node sets are deduplicated, one forward pass runs,
// and each caller gets back exactly its own nodes' predictions. Because
// the gather is full-neighborhood and the kernels have fixed reduction
// order, coalescing is invisible in the results — only in the latency.
type Batcher struct {
	inf  *Inferencer
	cfg  BatcherConfig
	reqs chan *batchRequest
	quit chan struct{} // closed by Close to start the drain
	done chan struct{} // closed by the collector after the drain

	closeOnce sync.Once

	mu    sync.Mutex
	stats batcherCounters
}

type batcherCounters struct {
	requests, batches, nodesServed     int64
	flushWindow, flushSize, flushDrain int64
	maxBatchNodes                      int
	latencySumMicros, latencyMaxMicros int64
}

// BatcherStats is a snapshot of the batcher counters for /statz.
type BatcherStats struct {
	Requests          int64   `json:"requests"`
	Batches           int64   `json:"batches"`
	NodesServed       int64   `json:"nodes_served"`
	FlushWindow       int64   `json:"flush_window"`
	FlushSize         int64   `json:"flush_size"`
	FlushDrain        int64   `json:"flush_drain"`
	MaxBatchNodes     int     `json:"max_batch_nodes"`
	MeanBatchNodes    float64 `json:"mean_batch_nodes"`
	MeanLatencyMicros float64 `json:"mean_latency_micros"`
	MaxLatencyMicros  int64   `json:"max_latency_micros"`
}

type batchRequest struct {
	nodes []graph.NodeID
	reply chan batchReply
	enq   time.Time
}

type batchReply struct {
	preds []Prediction
	err   error
}

// NewBatcher starts the collector goroutine. Call Close to drain it.
func NewBatcher(inf *Inferencer, cfg BatcherConfig) *Batcher {
	b := &Batcher{
		inf:  inf,
		cfg:  cfg,
		reqs: make(chan *batchRequest, 256),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	go b.collect()
	return b
}

// Predict submits nodes for classification and blocks until the batch
// containing them has run. The result has one prediction per requested
// node, in request order (duplicates within a request are answered from
// the same forward-pass row).
func (b *Batcher) Predict(nodes []graph.NodeID) ([]Prediction, error) {
	if len(nodes) == 0 {
		return nil, nil
	}
	n := b.inf.NumNodes()
	for _, v := range nodes {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("%w: node %d outside [0,%d)", ErrBadRequest, v, n)
		}
	}
	r := &batchRequest{nodes: nodes, reply: make(chan batchReply, 1), enq: time.Now()}
	select {
	case <-b.done:
		return nil, ErrClosed
	default:
	}
	select {
	case b.reqs <- r:
	case <-b.done:
		return nil, ErrClosed
	}
	select {
	case rep := <-r.reply:
		return rep.preds, rep.err
	case <-b.done:
		// The collector exited. If this request made the drain flush its
		// reply is already buffered; otherwise it was never picked up.
		select {
		case rep := <-r.reply:
			return rep.preds, rep.err
		default:
			return nil, ErrClosed
		}
	}
}

// Close drains the batcher: queued and in-flight requests are answered,
// then the collector exits. Safe to call more than once. Predict calls
// racing Close either join the drain flush or get ErrClosed.
func (b *Batcher) Close() {
	b.closeOnce.Do(func() { close(b.quit) })
	<-b.done
}

// Stats returns a snapshot of the batcher counters.
func (b *Batcher) Stats() BatcherStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.stats
	s := BatcherStats{
		Requests:         c.requests,
		Batches:          c.batches,
		NodesServed:      c.nodesServed,
		FlushWindow:      c.flushWindow,
		FlushSize:        c.flushSize,
		FlushDrain:       c.flushDrain,
		MaxBatchNodes:    c.maxBatchNodes,
		MaxLatencyMicros: c.latencyMaxMicros,
	}
	if c.batches > 0 {
		s.MeanBatchNodes = float64(c.nodesServed) / float64(c.batches)
	}
	if c.requests > 0 {
		s.MeanLatencyMicros = float64(c.latencySumMicros) / float64(c.requests)
	}
	return s
}

const (
	flushCauseWindow = iota
	flushCauseSize
	flushCauseDrain
)

func (b *Batcher) collect() {
	defer close(b.done)
	var (
		pending []*batchRequest
		unique  = make(map[graph.NodeID]struct{})
		timer   *time.Timer
	)
	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
		}
	}
	flush := func(cause int) {
		stopTimer()
		if len(pending) > 0 {
			b.runBatch(pending, cause)
			pending = nil
			unique = make(map[graph.NodeID]struct{})
		}
	}
	add := func(r *batchRequest) {
		pending = append(pending, r)
		for _, v := range r.nodes {
			unique[v] = struct{}{}
		}
		switch {
		case b.cfg.MaxNodes > 0 && len(unique) >= b.cfg.MaxNodes:
			flush(flushCauseSize)
		case b.cfg.Window <= 0:
			// No coalescing window: an empty queue means nobody to wait
			// for — flush immediately.
			flush(flushCauseWindow)
		case timer == nil:
			timer = time.NewTimer(b.cfg.Window)
		}
	}
	for {
		var timerC <-chan time.Time
		if timer != nil {
			timerC = timer.C
		}
		select {
		case r := <-b.reqs:
			add(r)
		case <-timerC:
			timer = nil
			flush(flushCauseWindow)
		case <-b.quit:
			// Drain: absorb everything already queued, answer it, exit.
			for {
				select {
				case r := <-b.reqs:
					pending = append(pending, r)
				default:
					flush(flushCauseDrain)
					return
				}
			}
		}
	}
}

// runBatch deduplicates the pending requests' nodes (first-seen order),
// runs one forward pass, and fans the rows back out per request.
func (b *Batcher) runBatch(pending []*batchRequest, cause int) {
	index := make(map[graph.NodeID]int)
	var nodes []graph.NodeID
	for _, r := range pending {
		for _, v := range r.nodes {
			if _, ok := index[v]; !ok {
				index[v] = len(nodes)
				nodes = append(nodes, v)
			}
		}
	}
	preds, err := b.inf.Predict(nodes)
	now := time.Now()

	b.mu.Lock()
	b.stats.batches++
	b.stats.requests += int64(len(pending))
	b.stats.nodesServed += int64(len(nodes))
	if len(nodes) > b.stats.maxBatchNodes {
		b.stats.maxBatchNodes = len(nodes)
	}
	switch cause {
	case flushCauseWindow:
		b.stats.flushWindow++
	case flushCauseSize:
		b.stats.flushSize++
	case flushCauseDrain:
		b.stats.flushDrain++
	}
	for _, r := range pending {
		lat := now.Sub(r.enq).Microseconds()
		b.stats.latencySumMicros += lat
		if lat > b.stats.latencyMaxMicros {
			b.stats.latencyMaxMicros = lat
		}
	}
	b.mu.Unlock()

	for _, r := range pending {
		if err != nil {
			r.reply <- batchReply{err: err}
			continue
		}
		out := make([]Prediction, len(r.nodes))
		for i, v := range r.nodes {
			out[i] = preds[index[v]]
		}
		r.reply <- batchReply{preds: out}
	}
}
