package serve

import (
	"fmt"
	"time"

	"argo/internal/graph"
	"argo/internal/nn"
)

// Source bundles what a server serves from: the topology the gather
// walks and the feature rows it reads. The two must describe the same
// store (same node universe, feature dim matching the model).
type Source struct {
	Graph    *graph.CSR
	Features FeatureSource
}

// Option configures New.
type Option func(*serverConfig)

type serverConfig struct {
	cache      Cache
	policy     string
	cacheBytes int64
	tailPolicy string
	hubPin     float64
	precompute float64
	workers    int
	batch      BatcherConfig
}

// WithCache installs a pre-built cache instance, overriding WithPolicy,
// WithCacheBytes, and WithHubPin. The server takes ownership (Close
// closes it).
func WithCache(c Cache) Option { return func(cfg *serverConfig) { cfg.cache = c } }

// WithPolicy selects the cache replacement policy by registry name
// (default lru; see Policies for the built-ins).
func WithPolicy(name string) Option { return func(cfg *serverConfig) { cfg.policy = name } }

// WithCacheBytes sets the cache byte budget. 0 (the default) disables
// row caching entirely.
func WithCacheBytes(n int64) Option { return func(cfg *serverConfig) { cfg.cacheBytes = n } }

// WithTailPolicy selects the policy managing the twotier cache's
// unpinned tail (default tinylfu). Ignored by single-tier policies.
func WithTailPolicy(name string) Option { return func(cfg *serverConfig) { cfg.tailPolicy = name } }

// WithHubPin pins the top frac (0..1] of nodes by degree into the
// cache's pinned tier. Only the twotier policy has one; other policies
// ignore the pin set.
func WithHubPin(frac float64) Option { return func(cfg *serverConfig) { cfg.hubPin = frac } }

// WithPrecomputeHubs precomputes per-layer activations for the top frac
// (0..1] of nodes by degree at construction time, so hub frontiers are
// pruned from every gather and hub targets answer from stored logits —
// bit-identical to direct inference (see PrecomputeHubs).
func WithPrecomputeHubs(frac float64) Option {
	return func(cfg *serverConfig) { cfg.precompute = frac }
}

// WithWorkers bounds the tensor worker pool (default 1;
// performance-only, never changes served bits).
func WithWorkers(n int) Option { return func(cfg *serverConfig) { cfg.workers = n } }

// WithBatchWindow sets how long the micro-batcher holds a request open
// for coalescing (default: no batching window).
func WithBatchWindow(d time.Duration) Option { return func(cfg *serverConfig) { cfg.batch.Window = d } }

// WithBatchMaxNodes caps the coalesced batch size, flushing early when
// reached.
func WithBatchMaxNodes(n int) Option { return func(cfg *serverConfig) { cfg.batch.MaxNodes = n } }

// New assembles the serving stack — cache, inferencer, hub store,
// micro-batcher, HTTP handler — from a source, a checkpointed model,
// and functional options. It replaces the positional
// NewInferencer/NewServer pair (both retained for compatibility):
//
//	srv, err := serve.New(serve.Source{Graph: g, Features: feats}, model,
//	        serve.WithPolicy(serve.PolicyTwoTier),
//	        serve.WithCacheBytes(4<<20),
//	        serve.WithHubPin(0.01),
//	        serve.WithPrecomputeHubs(0.01))
func New(src Source, model *nn.GNN, opts ...Option) (*Server, error) {
	if model == nil {
		return nil, fmt.Errorf("serve: model is required")
	}
	if src.Graph == nil || src.Features == nil {
		return nil, fmt.Errorf("serve: source graph and features are required")
	}
	cfg := serverConfig{policy: PolicyLRU}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.hubPin < 0 || cfg.hubPin > 1 || cfg.precompute < 0 || cfg.precompute > 1 {
		return nil, fmt.Errorf("serve: hub fractions must be in [0,1]: pin=%g precompute=%g", cfg.hubPin, cfg.precompute)
	}
	cache := cfg.cache
	if cache == nil && cfg.cacheBytes > 0 {
		var pinned []graph.NodeID
		if cfg.hubPin > 0 {
			pinned = graph.TopDegree(src.Graph, graph.HubCount(src.Graph.NumNodes, cfg.hubPin))
		}
		// An fp16 source's rows are fp16-exact, so the cache stores them
		// packed (two values per float32 element): the policy budgets
		// against the packed row size and the same byte budget holds
		// roughly twice the rows, losslessly.
		dt := FeatureSourceDtype(src.Features)
		var err error
		cache, err = NewCache(cfg.policy, CacheConfig{
			CapBytes:   cfg.cacheBytes,
			RowBytes:   StoredRowBytes(src.Features.Dim(), dt),
			Pinned:     pinned,
			TailPolicy: cfg.tailPolicy,
		})
		if err != nil {
			return nil, err
		}
		if dt == graph.DtypeF16 {
			cache = newHalfCache(cache, src.Features.Dim())
		}
	}
	inf, err := NewInferencer(InferencerOptions{
		Model:    model,
		Graph:    src.Graph,
		Features: src.Features,
		Cache:    cache,
		Workers:  cfg.workers,
	})
	if err != nil {
		return nil, err
	}
	if cfg.precompute > 0 {
		hubs := graph.TopDegree(src.Graph, graph.HubCount(src.Graph.NumNodes, cfg.precompute))
		if _, err := inf.PrecomputeHubs(hubs); err != nil {
			return nil, err
		}
	}
	return NewServer(inf, cfg.batch, string(model.Spec.Kind)), nil
}
