package serve

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"argo/internal/graph"
)

func testRow(id graph.NodeID, dim int) []float32 {
	row := make([]float32, dim)
	for i := range row {
		row[i] = float32(id)*100 + float32(i)
	}
	return row
}

func TestPolicyRegistry(t *testing.T) {
	want := []string{PolicyLRU, PolicyMidpoint, PolicyTinyLFU, PolicyTwoTier}
	got := Policies()
	for _, name := range want {
		found := false
		for _, g := range got {
			if g == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("Policies() = %v, missing %q", got, name)
		}
	}
	if _, err := NewCache("clock", CacheConfig{CapBytes: 1024}); err == nil {
		t.Fatal("unknown policy did not error")
	}
	if err := RegisterPolicy(PolicyLRU, func(CacheConfig) (Cache, error) { return nil, nil }); err == nil {
		t.Fatal("duplicate registration did not error")
	}
	if err := RegisterPolicy("", func(CacheConfig) (Cache, error) { return nil, nil }); err == nil {
		t.Fatal("empty name did not error")
	}
	if err := RegisterPolicy("nilfactory", nil); err == nil {
		t.Fatal("nil factory did not error")
	}
}

// Every policy must satisfy the Cache contract basics: round-trip,
// copy-out (no aliasing), stats accounting, Close.
func TestPolicyContract(t *testing.T) {
	const dim = 8
	for _, name := range Policies() {
		t.Run(name, func(t *testing.T) {
			c, err := NewCache(name, CacheConfig{
				CapBytes: 1 << 20,
				RowBytes: dim * 4,
				Pinned:   []graph.NodeID{1, 2},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if _, ok := c.Get(1, nil); ok {
				t.Fatal("hit on empty cache")
			}
			row := testRow(1, dim)
			c.Put(1, row)
			got, ok := c.Get(1, nil)
			if !ok || !reflect.DeepEqual(got, row) {
				t.Fatalf("Get after Put = %v, %v", got, ok)
			}
			got[0] = -999
			again, ok := c.Get(1, nil)
			if !ok || again[0] == -999 {
				t.Fatal("Get aliases cache-owned storage")
			}
			s := c.Stats()
			if s.Policy != name {
				t.Fatalf("Stats().Policy = %q, want %q", s.Policy, name)
			}
			if s.Hits < 2 || s.Misses < 1 || s.Entries != 1 || s.UsedBytes <= 0 {
				t.Fatalf("stats off: %+v", s)
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// A disabled cache (zero budget) must miss and stay empty under every
// policy.
func TestPolicyDisabled(t *testing.T) {
	for _, name := range Policies() {
		c, err := NewCache(name, CacheConfig{CapBytes: 0})
		if err != nil {
			t.Fatal(err)
		}
		c.Put(1, testRow(1, 4))
		if _, ok := c.Get(1, nil); ok {
			t.Fatalf("%s: hit on a disabled cache", name)
		}
		if s := c.Stats(); s.Entries != 0 || s.UsedBytes != 0 {
			t.Fatalf("%s: disabled cache holds data: %+v", name, s)
		}
	}
}

// scanCache replays a serving access pattern: a hot set referenced
// repeatedly (hot rows recur across overlapping frontiers within a
// round, so each sees several Gets between scans) interleaved with
// one-pass scan traffic, Get-then-Put on miss exactly as
// gatherFeatures does.
func scanCache(c Cache, hot []graph.NodeID, rounds, scanLen, dim int) {
	scan := graph.NodeID(10000)
	for r := 0; r < rounds; r++ {
		for rep := 0; rep < 3; rep++ {
			for _, id := range hot {
				if _, ok := c.Get(id, nil); !ok {
					c.Put(id, testRow(id, dim))
				}
			}
		}
		for i := 0; i < scanLen; i++ {
			if _, ok := c.Get(scan, nil); !ok {
				c.Put(scan, testRow(scan, dim))
			}
			scan++
		}
	}
}

// TestScanResistance is the point of the redesign: under tinylfu and
// midpoint a long one-pass scan must NOT flush the re-referenced hot
// set, while plain lru — the old behaviour — demonstrably loses it.
func TestScanResistance(t *testing.T) {
	const dim = 8
	hot := []graph.NodeID{1, 2, 3, 4, 5, 6, 7, 8}
	// Budget for ~16 rows: the hot set fits, the scan does not.
	cap := int64(16) * (dim*4 + cacheEntryOverheadBytes)

	resident := func(c Cache) int {
		n := 0
		for _, id := range hot {
			if _, ok := c.Get(id, nil); ok {
				n++
			}
		}
		return n
	}

	for _, name := range []string{PolicyTinyLFU, PolicyMidpoint} {
		c, err := NewCache(name, CacheConfig{CapBytes: cap, RowBytes: dim * 4})
		if err != nil {
			t.Fatal(err)
		}
		scanCache(c, hot, 40, 64, dim)
		if n := resident(c); n != len(hot) {
			t.Errorf("%s: scan evicted the hot set: %d/%d resident", name, n, len(hot))
		}
	}

	lru, _ := NewCache(PolicyLRU, CacheConfig{CapBytes: cap})
	scanCache(lru, hot, 40, 64, dim)
	if n := resident(lru); n == len(hot) {
		t.Error("lru unexpectedly scan-resistant; the tinylfu/midpoint assertions prove nothing")
	}
}

// TestTinyLFUAdmissionCounts pins that rejected candidates are counted
// and never stored.
func TestTinyLFUAdmissionCounts(t *testing.T) {
	const dim = 8
	cap := int64(4) * (dim*4 + cacheEntryOverheadBytes)
	c, err := NewCache(PolicyTinyLFU, CacheConfig{CapBytes: cap, RowBytes: dim * 4})
	if err != nil {
		t.Fatal(err)
	}
	// Build frequency for the resident set.
	for r := 0; r < 10; r++ {
		for id := graph.NodeID(0); id < 4; id++ {
			if _, ok := c.Get(id, nil); !ok {
				c.Put(id, testRow(id, dim))
			}
		}
	}
	// Cold candidates must bounce off the admission filter.
	for id := graph.NodeID(100); id < 130; id++ {
		c.Get(id, nil)
		c.Put(id, testRow(id, dim))
	}
	s := c.Stats()
	if s.Rejections == 0 {
		t.Fatalf("no admission rejections recorded: %+v", s)
	}
	if s.Entries != 4 {
		t.Fatalf("entries = %d, want the 4 hot rows", s.Entries)
	}
	if s.UsedBytes > s.CapBytes {
		t.Fatalf("over budget: %+v", s)
	}
}

// TestMidpointPromotion pins segment mechanics: a once-touched row sits
// in probation and a new-arrival wave evicts it; a twice-touched row is
// protected and survives the same wave.
func TestMidpointPromotion(t *testing.T) {
	const dim = 8
	cap := int64(8) * (dim*4 + cacheEntryOverheadBytes)
	c, err := NewCache(PolicyMidpoint, CacheConfig{CapBytes: cap})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(1, testRow(1, dim)) // probation only
	c.Put(2, testRow(2, dim))
	c.Get(2, nil) // promoted to protected
	for id := graph.NodeID(50); id < 70; id++ {
		c.Put(id, testRow(id, dim))
	}
	if _, ok := c.Get(1, nil); ok {
		t.Error("once-touched row survived a probation flush")
	}
	if _, ok := c.Get(2, nil); !ok {
		t.Error("protected row lost to one-touch arrivals")
	}
}

// TestTwoTierPinningAndBudget pins the two-tier invariants: pinned rows
// are never evicted no matter the traffic, and the combined byte budget
// holds across tiers with the pinned tier at most half.
func TestTwoTierPinningAndBudget(t *testing.T) {
	const dim = 8
	rowBytes := int64(dim * 4)
	pinned := []graph.NodeID{1, 2, 3, 4}
	cap := int64(20) * (rowBytes + cacheEntryOverheadBytes)
	c, err := NewCache(PolicyTwoTier, CacheConfig{
		CapBytes: cap,
		RowBytes: rowBytes,
		Pinned:   pinned,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range pinned {
		c.Put(id, testRow(id, dim))
	}
	// Hostile traffic: a large scan plus repeated references that would
	// dominate any recency or frequency order.
	for r := 0; r < 20; r++ {
		for id := graph.NodeID(100); id < 200; id++ {
			if _, ok := c.Get(id, nil); !ok {
				c.Put(id, testRow(id, dim))
			}
		}
	}
	for _, id := range pinned {
		got, ok := c.Get(id, nil)
		if !ok {
			t.Fatalf("pinned node %d evicted", id)
		}
		if !reflect.DeepEqual(got, testRow(id, dim)) {
			t.Fatalf("pinned node %d row corrupted", id)
		}
	}
	s := c.Stats()
	if s.UsedBytes > s.CapBytes {
		t.Fatalf("combined tiers over budget: %+v", s)
	}
	if s.PinnedEntries != len(pinned) {
		t.Fatalf("pinned entries = %d, want %d", s.PinnedEntries, len(pinned))
	}
	if s.PinnedBytes > cap/2 {
		t.Fatalf("pinned tier exceeds half the budget: %+v", s)
	}
	if s.Hits == 0 || s.Misses == 0 {
		t.Fatalf("tier stats not merged: %+v", s)
	}
}

// TestTwoTierPinnedOverflowFallsToTail: pinned ids beyond the reserved
// budget still get cached (in the tail) rather than dropped.
func TestTwoTierPinnedOverflowFallsToTail(t *testing.T) {
	const dim = 8
	rowBytes := int64(dim * 4)
	// Budget for 4 rows total → pinned reserve covers ~2 of 4 pinned ids.
	cap := int64(4) * (rowBytes + cacheEntryOverheadBytes)
	c, err := NewCache(PolicyTwoTier, CacheConfig{
		CapBytes: cap,
		RowBytes: rowBytes,
		Pinned:   []graph.NodeID{1, 2, 3, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := graph.NodeID(1); id <= 4; id++ {
		c.Put(id, testRow(id, dim))
	}
	s := c.Stats()
	if s.PinnedBytes > cap/2 {
		t.Fatalf("pinned reserve overflowed: %+v", s)
	}
	if s.Entries <= s.PinnedEntries {
		t.Fatalf("overflow pinned ids were dropped, not tailed: %+v", s)
	}
}

// TestCacheConcurrentStats drives Get/Put/Stats from many goroutines on
// every policy — the counter-synchronization fix; run with -race.
func TestCacheConcurrentStats(t *testing.T) {
	const dim = 8
	for _, name := range Policies() {
		c, err := NewCache(name, CacheConfig{
			CapBytes: 1 << 16,
			RowBytes: dim * 4,
			Pinned:   []graph.NodeID{0, 1, 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(seed graph.NodeID) {
				defer wg.Done()
				var buf []float32
				for i := 0; i < 500; i++ {
					id := (seed*500 + graph.NodeID(i)) % 97
					if _, ok := c.Get(id, buf); !ok {
						c.Put(id, testRow(id, dim))
					}
				}
			}(graph.NodeID(w))
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := c.Stats()
				if s.UsedBytes > s.CapBytes {
					panic(fmt.Sprintf("%s: over budget mid-flight: %+v", name, s))
				}
			}
		}()
		wg.Wait()
		c.Close()
	}
}
