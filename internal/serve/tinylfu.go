package serve

import (
	"container/list"
	"sync"

	"argo/internal/graph"
)

// cmSketch is the frequency half of TinyLFU admission: a 4-row
// count-min sketch of 8-bit counters with periodic halving, so recent
// popularity dominates and one-off scan traffic decays to noise. The
// hashing is a fixed Murmur-style finaliser plus Kirsch-Mitzenmacher
// double hashing — no per-process seed — so a replayed request stream
// produces bit-identical admission decisions (the -stable bench and the
// CI hit-rate gate rely on that).
type cmSketch struct {
	rows    [cmDepth][]uint8
	mask    uint64
	samples int64 // increments since the last halving
	window  int64 // halve when samples reaches this
}

const cmDepth = 4

func newCMSketch(entries int) *cmSketch {
	if entries < 1 {
		entries = 1
	}
	width := 1
	for width < entries*8 {
		width <<= 1
	}
	if width < 1024 {
		width = 1024
	}
	s := &cmSketch{mask: uint64(width - 1), window: int64(entries) * 10}
	if s.window < 10240 {
		s.window = 10240
	}
	for i := range s.rows {
		s.rows[i] = make([]uint8, width)
	}
	return s
}

// mix is the splitmix64 finaliser: a deterministic avalanche of the
// 32-bit node id into 64 well-distributed bits.
func mix(id graph.NodeID) uint64 {
	x := uint64(uint32(id))
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func (s *cmSketch) index(h uint64, row int) uint64 {
	// Kirsch-Mitzenmacher: two halves of one hash generate all rows.
	return (h + uint64(row)*(h>>32|1)) & s.mask
}

// touch records one observation of id, halving every counter once the
// sample window fills (the aging that keeps the sketch tracking recent
// frequency rather than all-time frequency).
func (s *cmSketch) touch(id graph.NodeID) {
	h := mix(id)
	for i := range s.rows {
		c := &s.rows[i][s.index(h, i)]
		if *c < 255 {
			*c++
		}
	}
	s.samples++
	if s.samples >= s.window {
		for i := range s.rows {
			for j := range s.rows[i] {
				s.rows[i][j] >>= 1
			}
		}
		s.samples >>= 1
	}
}

// estimate returns the sketch's (over-)estimate of id's frequency.
func (s *cmSketch) estimate(id graph.NodeID) uint8 {
	h := mix(id)
	est := uint8(255)
	for i := range s.rows {
		if c := s.rows[i][s.index(h, i)]; c < est {
			est = c
		}
	}
	return est
}

// tinyLFU is the tinylfu policy: LRU victim ordering guarded by
// frequency-sketch admission. Every Get — hit or miss — records the id
// in the sketch; a Put that would force an eviction is admitted only if
// the candidate's estimated frequency exceeds the LRU victim's. A
// one-pass scan therefore bounces off the admission filter (each scan
// row has frequency ~1, the resident hot set more) instead of flushing
// the cache — the scan resistance plain LRU lacks.
type tinyLFU struct {
	mu       sync.Mutex
	capBytes int64
	used     int64
	ll       *list.List
	items    map[graph.NodeID]*list.Element
	sketch   *cmSketch

	ctr cacheCounters
}

func newTinyLFU(cfg CacheConfig) (Cache, error) {
	rowBytes := cfg.RowBytes
	if rowBytes <= 0 {
		rowBytes = 256
	}
	entries := int(cfg.CapBytes / (rowBytes + cacheEntryOverheadBytes))
	return &tinyLFU{
		capBytes: cfg.CapBytes,
		ll:       list.New(),
		items:    make(map[graph.NodeID]*list.Element),
		sketch:   newCMSketch(entries),
	}, nil
}

func (c *tinyLFU) Get(id graph.NodeID, dst []float32) ([]float32, bool) {
	c.mu.Lock()
	c.sketch.touch(id)
	el, ok := c.items[id]
	if !ok {
		c.mu.Unlock()
		c.ctr.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	dst = copyRow(dst, el.Value.(*cacheEntry).row)
	c.mu.Unlock()
	c.ctr.hits.Add(1)
	return dst, true
}

func (c *tinyLFU) Put(id graph.NodeID, row []float32) {
	size := entrySize(row)
	if c.capBytes <= 0 || size > c.capBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[id]; ok {
		ent := el.Value.(*cacheEntry)
		if len(ent.row) != len(row) {
			c.used -= entrySize(ent.row)
			ent.row = make([]float32, len(row))
			copy(ent.row, row)
			c.used += size
		}
		c.ll.MoveToFront(el)
		return
	}
	// Admission: evictions only happen in the candidate's favour. While
	// over budget, compare the candidate against the current LRU victim;
	// a candidate the sketch ranks no higher is rejected outright.
	for c.used+size > c.capBytes {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		victim := tail.Value.(*cacheEntry)
		if c.sketch.estimate(id) <= c.sketch.estimate(victim.id) {
			c.ctr.rejections.Add(1)
			return
		}
		c.ll.Remove(tail)
		delete(c.items, victim.id)
		c.used -= entrySize(victim.row)
		c.ctr.evictions.Add(1)
	}
	own := make([]float32, len(row))
	copy(own, row)
	c.items[id] = c.ll.PushFront(&cacheEntry{id: id, row: own})
	c.used += size
}

func (c *tinyLFU) Stats() CacheStats {
	c.mu.Lock()
	s := CacheStats{
		Policy:    PolicyTinyLFU,
		CapBytes:  c.capBytes,
		UsedBytes: c.used,
		Entries:   c.ll.Len(),
	}
	c.mu.Unlock()
	c.ctr.snapshot(&s)
	return s
}

func (c *tinyLFU) Close() error { return nil }
