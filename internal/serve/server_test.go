package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func serverFixture(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	ds, m, _ := serveFixture(t)
	inf, err := NewInferencer(InferencerOptions{
		Model:    m,
		Graph:    ds.Graph,
		Features: NewMatrixFeatureSource(ds.Features),
		Cache:    NewFeatureCache(1 << 16),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(inf, BatcherConfig{}, "sage")
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func TestServerPredictEndpoint(t *testing.T) {
	_, ts := serverFixture(t)
	body := `{"nodes":[0,5,119]}`
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Predictions) != 3 {
		t.Fatalf("%d predictions, want 3", len(pr.Predictions))
	}
	for i, want := range []int{0, 5, 119} {
		p := pr.Predictions[i]
		if int(p.Node) != want {
			t.Fatalf("prediction %d is for node %d, want %d", i, p.Node, want)
		}
		if p.Label < 0 || p.Label >= len(p.Logits) || len(p.Logits) == 0 {
			t.Fatalf("prediction %d malformed: %+v", i, p)
		}
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	_, ts := serverFixture(t)
	cases := []struct {
		name, body string
		wantCode   int
	}{
		{"garbage", "not json", http.StatusBadRequest},
		{"empty nodes", `{"nodes":[]}`, http.StatusBadRequest},
		{"out of range", `{"nodes":[100000]}`, http.StatusBadRequest},
		{"negative", `{"nodes":[-1]}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != c.wantCode {
			t.Fatalf("%s: status %d, want %d", c.name, resp.StatusCode, c.wantCode)
		}
		if e["error"] == "" {
			t.Fatalf("%s: error body missing", c.name)
		}
	}
	// GET on a POST endpoint.
	resp, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET predict: status %d", resp.StatusCode)
	}
}

func TestServerHealthAndStatz(t *testing.T) {
	_, ts := serverFixture(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(buf.String()) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, buf.String())
	}
	// Serve one query so the counters move.
	pr, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(`{"nodes":[1,2]}`))
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	resp, err = http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatzResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Model != "sage" || st.NumNodes != 120 || st.NumClasses != 3 || st.Layers != 3 {
		t.Fatalf("statz shape wrong: %+v", st)
	}
	if st.Requests != 1 || st.Batcher.Requests != 1 || st.Batcher.Batches != 1 {
		t.Fatalf("statz counters wrong: %+v", st)
	}
	if st.Cache.Misses == 0 {
		t.Fatal("cache counters did not move")
	}
}

func TestServerDrainingReturns503(t *testing.T) {
	srv, ts := serverFixture(t)
	srv.Close()
	resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(`{"nodes":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server: status %d, want 503", resp.StatusCode)
	}
}
