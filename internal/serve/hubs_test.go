package serve

import (
	"testing"

	"argo/internal/datasets"
	"argo/internal/graph"
	"argo/internal/nn"
)

// TestHubServingBitMatchesDirect is the exactness gate on the
// precomputed-hub path: for every model kind, predictions served
// through pruned gathers + activation injection + stored hub logits
// must bit-match DirectPredict — for hub targets, hub-adjacent targets,
// and targets far from any hub alike.
func TestHubServingBitMatchesDirect(t *testing.T) {
	ds, err := datasets.Build("tiny", 1)
	if err != nil {
		t.Fatal(err)
	}
	hubs := graph.TopDegree(ds.Graph, 12)
	// Mix hub targets with ordinary ones.
	nodes := append([]graph.NodeID{0, 17, 42, 99, 119}, hubs[0], hubs[5])

	for _, kind := range []nn.ModelKind{nn.KindSAGE, nn.KindGCN, nn.KindGIN} {
		m, err := nn.NewModel(nn.ModelSpec{
			Kind: kind,
			Dims: []int{ds.Features.Cols, 8, 8, ds.NumClasses},
			Seed: 7,
		}, nn.Degrees(ds.Graph))
		if err != nil {
			t.Fatal(err)
		}
		direct, err := DirectPredict(m, ds, nodes, 1)
		if err != nil {
			t.Fatal(err)
		}
		cache, err := NewCache(PolicyTwoTier, CacheConfig{
			CapBytes: 1 << 16,
			RowBytes: int64(ds.Features.Cols) * 4,
			Pinned:   hubs,
		})
		if err != nil {
			t.Fatal(err)
		}
		inf, err := NewInferencer(InferencerOptions{
			Model:    m,
			Graph:    ds.Graph,
			Features: NewMatrixFeatureSource(ds.Features),
			Cache:    cache,
			Workers:  3,
		})
		if err != nil {
			t.Fatal(err)
		}
		hs, err := inf.PrecomputeHubs(hubs)
		if err != nil {
			t.Fatal(err)
		}
		if hs.Len() != len(hubs) || hs.Layers() != m.NumLayers() || hs.Bytes() <= 0 {
			t.Fatalf("%s: hub store misshapen: len=%d layers=%d bytes=%d", kind, hs.Len(), hs.Layers(), hs.Bytes())
		}
		served, err := inf.Predict(nodes)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range nodes {
			if served[i].Label != direct[i].Label || !logitsEqual(served[i].Logits, direct[i].Logits) {
				t.Fatalf("%s: node %d: hub-served %v != direct %v", kind, v, served[i], direct[i])
			}
		}
		// Solo queries, including a pure hub query (no gather at all).
		for i, v := range nodes {
			solo, err := inf.Predict([]graph.NodeID{v})
			if err != nil {
				t.Fatal(err)
			}
			if !logitsEqual(solo[0].Logits, direct[i].Logits) {
				t.Fatalf("%s: node %d: solo hub-served prediction diverges from direct", kind, v)
			}
		}
		if st := inf.HubStats(); st.Hits == 0 || st.Nodes != len(hubs) {
			t.Fatalf("%s: hub stats not tracking: %+v", kind, st)
		}
	}
}

// TestPrecomputeHubsValidates pins the edge cases: out-of-range hubs
// are rejected, and an empty set detaches hub serving.
func TestPrecomputeHubsValidates(t *testing.T) {
	ds, m, _ := serveFixture(t)
	inf, err := NewInferencer(InferencerOptions{
		Model:    m,
		Graph:    ds.Graph,
		Features: NewMatrixFeatureSource(ds.Features),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inf.PrecomputeHubs([]graph.NodeID{graph.NodeID(ds.Graph.NumNodes)}); err == nil {
		t.Fatal("out-of-range hub accepted")
	}
	if _, err := inf.PrecomputeHubs(graph.TopDegree(ds.Graph, 4)); err != nil {
		t.Fatal(err)
	}
	if inf.Hubs() == nil {
		t.Fatal("hub store not attached")
	}
	if _, err := inf.PrecomputeHubs(nil); err != nil {
		t.Fatal(err)
	}
	if inf.Hubs() != nil {
		t.Fatal("empty hub set did not detach the store")
	}
}

// TestHubServingPrunesGather: with every 1-hop neighbour of the target
// precomputed, the deep gather collapses — the input frontier is just
// the target and its hubs, not the 2-hop ball.
func TestHubServingPrunesGather(t *testing.T) {
	ds, m, _ := serveFixture(t)
	inf, err := NewInferencer(InferencerOptions{
		Model:    m,
		Graph:    ds.Graph,
		Features: NewMatrixFeatureSource(ds.Features),
	})
	if err != nil {
		t.Fatal(err)
	}
	hubs := graph.TopDegree(ds.Graph, 24)
	if _, err := inf.PrecomputeHubs(hubs); err != nil {
		t.Fatal(err)
	}
	known := inf.Hubs().Contains
	target := []graph.NodeID{hubs[0]}
	mb := inf.gather.SamplePruned(target, known)
	if got := mb.Stats.SampledEdges; got != 0 {
		t.Fatalf("hub target still gathered %d edges", got)
	}
	full := inf.gather.Sample(nil, target)
	if full.Stats.SampledEdges == 0 {
		t.Fatal("fixture hub has no frontier; the assertion above is vacuous")
	}
}
