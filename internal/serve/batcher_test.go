package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"argo/internal/graph"
)

func batcherFixture(t *testing.T, cfg BatcherConfig) (*Batcher, *Inferencer, func()) {
	t.Helper()
	ds, m, _ := serveFixture(t)
	inf, err := NewInferencer(InferencerOptions{
		Model:    m,
		Graph:    ds.Graph,
		Features: NewMatrixFeatureSource(ds.Features),
	})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(inf, cfg)
	return b, inf, b.Close
}

// Determinism across batch compositions: three requests coalesced into
// one batch produce exactly the logits each would get alone.
func TestBatcherCoalescedMatchesSolo(t *testing.T) {
	reqs := [][]graph.NodeID{{1, 2, 3}, {3, 50}, {100}}
	// Reference: each request served alone (window 0 → no coalescing).
	solo, _, closeSolo := batcherFixture(t, BatcherConfig{})
	want := make([][]Prediction, len(reqs))
	for i, r := range reqs {
		p, err := solo.Predict(r)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p
	}
	closeSolo()
	// Coalesced: a wide window, concurrent submission, one shared pass.
	b, _, closeB := batcherFixture(t, BatcherConfig{Window: 200 * time.Millisecond})
	defer closeB()
	got := make([][]Prediction, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r []graph.NodeID) {
			defer wg.Done()
			got[i], errs[i] = b.Predict(r)
		}(i, r)
	}
	wg.Wait()
	for i := range reqs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if len(got[i]) != len(want[i]) {
			t.Fatalf("request %d: %d predictions, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			if got[i][j].Node != want[i][j].Node || !logitsEqual(got[i][j].Logits, want[i][j].Logits) {
				t.Fatalf("request %d node %d: coalesced logits differ from solo", i, want[i][j].Node)
			}
		}
	}
	s := b.Stats()
	if s.Requests != 3 {
		t.Fatalf("requests = %d, want 3", s.Requests)
	}
	if s.Batches >= 3 {
		t.Fatalf("batches = %d: nothing was coalesced", s.Batches)
	}
	// Node 3 appears in two requests but is forwarded once per batch.
	if s.NodesServed >= 7 {
		t.Fatalf("nodes served = %d: cross-request dedup did not happen", s.NodesServed)
	}
	if s.MeanLatencyMicros <= 0 {
		t.Fatal("latency accounting missing")
	}
}

// The size cap flushes without waiting for the window.
func TestBatcherSizeCapFlushes(t *testing.T) {
	b, _, closeB := batcherFixture(t, BatcherConfig{Window: time.Hour, MaxNodes: 2})
	defer closeB()
	done := make(chan error, 1)
	go func() {
		_, err := b.Predict([]graph.NodeID{4, 5, 6}) // one request over the cap: one batch
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("size-capped batch never flushed (window is an hour)")
	}
	s := b.Stats()
	if s.FlushSize != 1 || s.FlushWindow != 0 {
		t.Fatalf("flush causes size=%d window=%d, want 1/0", s.FlushSize, s.FlushWindow)
	}
	if s.MaxBatchNodes != 3 {
		t.Fatalf("max batch nodes = %d, want 3 (oversized request still runs whole)", s.MaxBatchNodes)
	}
}

// The window flushes a sub-cap batch.
func TestBatcherWindowFlushes(t *testing.T) {
	b, _, closeB := batcherFixture(t, BatcherConfig{Window: 10 * time.Millisecond, MaxNodes: 1000})
	defer closeB()
	start := time.Now()
	if _, err := b.Predict([]graph.NodeID{8}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("window flush took %v", elapsed)
	}
	if s := b.Stats(); s.FlushWindow != 1 {
		t.Fatalf("flush causes = %+v, want one window flush", s)
	}
}

// Graceful drain: queued work is answered, later calls are refused.
func TestBatcherDrain(t *testing.T) {
	b, _, _ := batcherFixture(t, BatcherConfig{Window: time.Hour, MaxNodes: 1000})
	// Enqueue directly so the request is provably in flight before Close
	// (an hour window guarantees it cannot flush on its own).
	r := &batchRequest{nodes: []graph.NodeID{9}, reply: make(chan batchReply, 1), enq: time.Now()}
	b.reqs <- r
	b.Close()
	rep := <-r.reply
	if rep.err != nil {
		t.Fatalf("in-flight request must be answered during drain, got %v", rep.err)
	}
	if len(rep.preds) != 1 || rep.preds[0].Node != 9 {
		t.Fatalf("drain flush answered %+v", rep.preds)
	}
	if s := b.Stats(); s.FlushDrain != 1 {
		t.Fatalf("flush causes = %+v, want one drain flush", s)
	}
	if _, err := b.Predict([]graph.NodeID{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Predict = %v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

func TestBatcherRejectsOutOfRange(t *testing.T) {
	b, inf, closeB := batcherFixture(t, BatcherConfig{})
	defer closeB()
	if _, err := b.Predict([]graph.NodeID{graph.NodeID(inf.NumNodes())}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("out-of-range node: %v, want ErrBadRequest", err)
	}
	if _, err := b.Predict([]graph.NodeID{-1}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("negative node: %v, want ErrBadRequest", err)
	}
	if p, err := b.Predict(nil); p != nil || err != nil {
		t.Fatal("empty request should be a cheap no-op")
	}
}

// Duplicate nodes within one request are answered from the same row.
func TestBatcherDuplicateNodesInRequest(t *testing.T) {
	b, _, closeB := batcherFixture(t, BatcherConfig{})
	defer closeB()
	p, err := b.Predict([]graph.NodeID{5, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 || p[0].Node != 5 || p[1].Node != 5 || !logitsEqual(p[0].Logits, p[1].Logits) {
		t.Fatalf("duplicate handling wrong: %+v", p)
	}
}
