// Package serve is ARGO's inference subsystem: a checkpoint-backed GNN
// prediction server over a lazy or sharded .argograph store. Training
// (the rest of the repo) produces a checkpoint; this package answers
// node-classification queries against it at user-traffic scale, with a
// per-request full-neighborhood k-hop gather, cross-request
// micro-batching, and a policy-driven hot-node locality layer. The
// locality layer exploits query skew: real query streams are
// Zipf-distributed (a small popular set absorbs most traffic), so the
// rows those queries' neighborhoods keep re-fetching should stay
// resident while the long tail pays the store read. But a deep
// full-neighborhood gather is also a scan — each request touches
// hundreds of one-off frontier rows — so plain recency caching lets
// the tail flush the hot set. The Cache interface and its Policy
// registry make the replacement policy pluggable (lru, tinylfu,
// midpoint, twotier), and a HubStore of precomputed per-layer hub
// activations short-circuits the deepest gathers entirely.
package serve

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"argo/internal/graph"
)

// cacheEntryOverheadBytes approximates the per-entry bookkeeping cost
// (list element, map slot, header) charged against the cache budget, so
// a byte budget remains honest for narrow feature rows.
const cacheEntryOverheadBytes = 64

// Cache is the serving layer's row-cache contract: a byte-bounded,
// concurrency-safe map from global node id to that node's feature row.
// Get copies into dst (grown as needed) so callers never alias cached
// storage; Put copies the row into cache-owned storage. Stats must be
// safe to call concurrently with Get/Put — /statz polls it while
// Predict traffic is in flight. Close releases any policy-owned
// resources; every implementation here is memory-only, so it exists for
// symmetry with future disk-backed tiers.
type Cache interface {
	Get(id graph.NodeID, dst []float32) ([]float32, bool)
	Put(id graph.NodeID, row []float32)
	Stats() CacheStats
	Close() error
}

// CacheConfig parameterises a policy factory.
type CacheConfig struct {
	// CapBytes bounds the whole cache (all tiers), counting row
	// payloads plus cacheEntryOverheadBytes per entry. <= 0 disables
	// caching: Get always misses, Put is a no-op.
	CapBytes int64
	// RowBytes is the expected payload size of one row (feature dim ×
	// 4), the hint the two-tier policy uses to budget its pinned tier
	// before any row arrives. 0 means unknown.
	RowBytes int64
	// Pinned lists node ids the two-tier policy pins above its tail —
	// in priority order (degree-ranked, from graph.TopDegree). Ignored
	// by single-tier policies.
	Pinned []graph.NodeID
	// TailPolicy names the policy managing the two-tier cache's
	// unpinned tail (default tinylfu). Ignored by single-tier policies.
	TailPolicy string
}

// PolicyFactory builds a Cache from a config.
type PolicyFactory func(cfg CacheConfig) (Cache, error)

// Built-in cache policy names.
const (
	PolicyLRU      = "lru"      // plain recency (the pre-policy behaviour)
	PolicyTinyLFU  = "tinylfu"  // frequency-sketch admission over an LRU victim order
	PolicyMidpoint = "midpoint" // segmented LRU: probation + protected
	PolicyTwoTier  = "twotier"  // pinned top-degree rows above a policy-managed tail
)

var (
	policyMu  sync.RWMutex
	policyReg = map[string]PolicyFactory{}
)

func init() {
	MustRegisterPolicy(PolicyLRU, func(cfg CacheConfig) (Cache, error) {
		return NewFeatureCache(cfg.CapBytes), nil
	})
	MustRegisterPolicy(PolicyTinyLFU, newTinyLFU)
	MustRegisterPolicy(PolicyMidpoint, newMidpoint)
	MustRegisterPolicy(PolicyTwoTier, newTwoTier)
}

// RegisterPolicy adds a named cache policy to the registry. Names are
// case-insensitive and must be unique; registering an empty name, a nil
// factory, or a duplicate is an error.
func RegisterPolicy(name string, f PolicyFactory) error {
	name = strings.ToLower(strings.TrimSpace(name))
	if name == "" {
		return fmt.Errorf("serve: empty policy name")
	}
	if f == nil {
		return fmt.Errorf("serve: nil factory for policy %q", name)
	}
	policyMu.Lock()
	defer policyMu.Unlock()
	if _, dup := policyReg[name]; dup {
		return fmt.Errorf("serve: policy %q already registered", name)
	}
	policyReg[name] = f
	return nil
}

// MustRegisterPolicy is RegisterPolicy, panicking on error — for use
// from package init functions.
func MustRegisterPolicy(name string, f PolicyFactory) {
	if err := RegisterPolicy(name, f); err != nil {
		panic(err)
	}
}

// Policies lists the registered cache policy names in sorted order.
func Policies() []string {
	policyMu.RLock()
	defer policyMu.RUnlock()
	names := make([]string, 0, len(policyReg))
	for n := range policyReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewCache instantiates a registered cache policy by name.
func NewCache(policy string, cfg CacheConfig) (Cache, error) {
	policyMu.RLock()
	f, ok := policyReg[strings.ToLower(strings.TrimSpace(policy))]
	policyMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("serve: unknown cache policy %q (registered: %s)", policy, strings.Join(Policies(), ", "))
	}
	return f(cfg)
}

// cacheCounters is the hit/miss accounting every policy shares. The
// fields are atomic so the hot Get path can count without extending its
// critical section and Stats can snapshot concurrently with traffic —
// /statz polls Stats while Predict goroutines stream Gets.
type cacheCounters struct {
	hits, misses, evictions, rejections atomic.Int64
}

func (c *cacheCounters) snapshot(s *CacheStats) {
	s.Hits = c.hits.Load()
	s.Misses = c.misses.Load()
	s.Evictions = c.evictions.Load()
	s.Rejections = c.rejections.Load()
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
}

// CacheStats is a point-in-time snapshot of a cache's counters, shaped
// for /statz JSON. Pinned* and Rejections are zero for policies without
// a pinned tier or an admission filter.
type CacheStats struct {
	Policy        string  `json:"policy,omitempty"`
	CapBytes      int64   `json:"cap_bytes"`
	UsedBytes     int64   `json:"used_bytes"`
	Entries       int     `json:"entries"`
	PinnedEntries int     `json:"pinned_entries,omitempty"`
	PinnedBytes   int64   `json:"pinned_bytes,omitempty"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	Evictions     int64   `json:"evictions"`
	Rejections    int64   `json:"rejections,omitempty"`
	HitRate       float64 `json:"hit_rate"`
}

// FeatureCache is the lru policy: a byte-bounded LRU cache of feature
// rows keyed by global node id. It predates the Cache interface and is
// retained under its original name so existing callers keep compiling;
// new code should obtain caches through NewCache or serve.New options.
type FeatureCache struct {
	mu       sync.Mutex
	capBytes int64
	used     int64
	ll       *list.List // front = most recently used
	items    map[graph.NodeID]*list.Element

	ctr cacheCounters
}

type cacheEntry struct {
	id  graph.NodeID
	row []float32
}

// NewFeatureCache returns a cache bounded at capBytes (counting row
// payloads plus a fixed per-entry overhead). capBytes <= 0 disables
// caching: Get always misses and Put is a no-op.
func NewFeatureCache(capBytes int64) *FeatureCache {
	return &FeatureCache{
		capBytes: capBytes,
		ll:       list.New(),
		items:    make(map[graph.NodeID]*list.Element),
	}
}

func entrySize(row []float32) int64 {
	return int64(len(row))*4 + cacheEntryOverheadBytes
}

// copyRow copies a cached row into dst, growing it as needed — the
// copy-out every policy's Get shares, so callers can never alias (and
// never mutate) cache-owned storage.
func copyRow(dst, row []float32) []float32 {
	if cap(dst) < len(row) {
		dst = make([]float32, len(row))
	}
	dst = dst[:len(row)]
	copy(dst, row)
	return dst
}

// Get copies node id's cached row into dst (grown as needed) and
// returns it, or (nil, false) on a miss.
func (c *FeatureCache) Get(id graph.NodeID, dst []float32) ([]float32, bool) {
	c.mu.Lock()
	el, ok := c.items[id]
	if !ok {
		c.mu.Unlock()
		c.ctr.misses.Add(1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	dst = copyRow(dst, el.Value.(*cacheEntry).row)
	c.mu.Unlock()
	c.ctr.hits.Add(1)
	return dst, true
}

// Put inserts (or refreshes) node id's row, copying it into
// cache-owned storage, then evicts from the LRU tail until the byte
// budget holds. A row larger than the whole budget is not cached.
func (c *FeatureCache) Put(id graph.NodeID, row []float32) {
	size := entrySize(row)
	if c.capBytes <= 0 || size > c.capBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[id]; ok {
		// Refresh. The row bytes are normally a pure function of the
		// node id, but a caller may legitimately re-Put after a store
		// swap or dim change — so re-check the length, re-copy into
		// owned storage when it differs, and re-charge the byte
		// accounting rather than silently keeping a stale-width row.
		ent := el.Value.(*cacheEntry)
		if len(ent.row) != len(row) {
			c.used -= entrySize(ent.row)
			ent.row = make([]float32, len(row))
			copy(ent.row, row)
			c.used += size
		}
		c.ll.MoveToFront(el)
	} else {
		own := make([]float32, len(row))
		copy(own, row)
		c.items[id] = c.ll.PushFront(&cacheEntry{id: id, row: own})
		c.used += size
	}
	for c.used > c.capBytes {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		ent := tail.Value.(*cacheEntry)
		c.ll.Remove(tail)
		delete(c.items, ent.id)
		c.used -= entrySize(ent.row)
		c.ctr.evictions.Add(1)
	}
}

// Stats returns a snapshot of the counters.
func (c *FeatureCache) Stats() CacheStats {
	c.mu.Lock()
	s := CacheStats{
		Policy:    PolicyLRU,
		CapBytes:  c.capBytes,
		UsedBytes: c.used,
		Entries:   c.ll.Len(),
	}
	c.mu.Unlock()
	c.ctr.snapshot(&s)
	return s
}

// Close implements Cache; the LRU holds no external resources.
func (c *FeatureCache) Close() error { return nil }
