// Package serve is ARGO's inference subsystem: a checkpoint-backed GNN
// prediction server over a lazy or sharded .argograph store. Training
// (the rest of the repo) produces a checkpoint; this package answers
// node-classification queries against it at user-traffic scale, with a
// per-request full-neighborhood k-hop gather, cross-request
// micro-batching, and an LRU hot-node feature cache. The cache exploits
// query skew: real query streams are Zipf-distributed (a small popular
// set absorbs most traffic), so the rows those queries' neighborhoods
// keep re-fetching stay resident while the long tail pays the store
// read.
package serve

import (
	"container/list"
	"sync"

	"argo/internal/graph"
)

// cacheEntryOverheadBytes approximates the per-entry bookkeeping cost
// (list element, map slot, header) charged against the cache budget, so
// a byte budget remains honest for narrow feature rows.
const cacheEntryOverheadBytes = 64

// FeatureCache is a byte-bounded LRU cache of feature rows keyed by
// global node id. It is safe for concurrent use; hit/miss/eviction
// counters feed the server's /statz endpoint.
type FeatureCache struct {
	mu       sync.Mutex
	capBytes int64
	used     int64
	ll       *list.List // front = most recently used
	items    map[graph.NodeID]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	id  graph.NodeID
	row []float32
}

// NewFeatureCache returns a cache bounded at capBytes (counting row
// payloads plus a fixed per-entry overhead). capBytes <= 0 disables
// caching: Get always misses and Put is a no-op.
func NewFeatureCache(capBytes int64) *FeatureCache {
	return &FeatureCache{
		capBytes: capBytes,
		ll:       list.New(),
		items:    make(map[graph.NodeID]*list.Element),
	}
}

func entrySize(row []float32) int64 {
	return int64(len(row))*4 + cacheEntryOverheadBytes
}

// Get copies node id's cached row into dst (grown as needed) and
// returns it, or (nil, false) on a miss. The copy means callers can
// never alias — and never mutate — cached storage.
func (c *FeatureCache) Get(id graph.NodeID, dst []float32) ([]float32, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[id]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	row := el.Value.(*cacheEntry).row
	if cap(dst) < len(row) {
		dst = make([]float32, len(row))
	}
	dst = dst[:len(row)]
	copy(dst, row)
	return dst, true
}

// Put inserts (or refreshes) node id's row, copying it into
// cache-owned storage, then evicts from the LRU tail until the byte
// budget holds. A row larger than the whole budget is not cached.
func (c *FeatureCache) Put(id graph.NodeID, row []float32) {
	size := entrySize(row)
	if c.capBytes <= 0 || size > c.capBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[id]; ok {
		// Refresh. The row bytes are normally a pure function of the
		// node id, but a caller may legitimately re-Put after a store
		// swap or dim change — so re-check the length, re-copy into
		// owned storage when it differs, and re-charge the byte
		// accounting rather than silently keeping a stale-width row.
		ent := el.Value.(*cacheEntry)
		if len(ent.row) != len(row) {
			c.used -= entrySize(ent.row)
			ent.row = make([]float32, len(row))
			copy(ent.row, row)
			c.used += size
		}
		c.ll.MoveToFront(el)
	} else {
		own := make([]float32, len(row))
		copy(own, row)
		c.items[id] = c.ll.PushFront(&cacheEntry{id: id, row: own})
		c.used += size
	}
	for c.used > c.capBytes {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		ent := tail.Value.(*cacheEntry)
		c.ll.Remove(tail)
		delete(c.items, ent.id)
		c.used -= entrySize(ent.row)
		c.evictions++
	}
}

// CacheStats is a point-in-time snapshot of the cache counters, shaped
// for /statz JSON.
type CacheStats struct {
	CapBytes  int64   `json:"cap_bytes"`
	UsedBytes int64   `json:"used_bytes"`
	Entries   int     `json:"entries"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

// Stats returns a snapshot of the counters.
func (c *FeatureCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		CapBytes:  c.capBytes,
		UsedBytes: c.used,
		Entries:   c.ll.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}
