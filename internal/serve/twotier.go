package serve

import (
	"sync"

	"argo/internal/graph"
)

// twoTier is the twotier policy: a pinned tier of top-degree rows above
// a policy-managed tail. High-degree nodes appear in a constant
// fraction of all k-hop frontiers — on a power-law graph they are the
// most re-fetched rows by construction — so the pinned tier stores them
// permanently (never evicted, whatever the request stream does) while
// the tail cache chases the residual, flatter distribution with its own
// policy (default tinylfu). The pinned set comes from
// graph.TopDegree via CacheConfig.Pinned; its budget is bounded at half
// the total so the tail always retains room to adapt.
type twoTier struct {
	capBytes  int64
	reserve   int64 // byte budget carved out for the pinned tier
	pinnedSet map[graph.NodeID]bool

	mu         sync.Mutex
	pinned     map[graph.NodeID][]float32
	pinnedUsed int64

	tail Cache
	ctr  cacheCounters // pinned-tier hits/misses only; tail keeps its own
}

func newTwoTier(cfg CacheConfig) (Cache, error) {
	reserve := cfg.CapBytes / 2
	if cfg.RowBytes > 0 {
		if want := int64(len(cfg.Pinned)) * (cfg.RowBytes + cacheEntryOverheadBytes); want < reserve {
			reserve = want
		}
	}
	if len(cfg.Pinned) == 0 {
		reserve = 0
	}
	tailPolicy := cfg.TailPolicy
	if tailPolicy == "" {
		tailPolicy = PolicyTinyLFU
	}
	tail, err := NewCache(tailPolicy, CacheConfig{
		CapBytes: cfg.CapBytes - reserve,
		RowBytes: cfg.RowBytes,
	})
	if err != nil {
		return nil, err
	}
	set := make(map[graph.NodeID]bool, len(cfg.Pinned))
	for _, id := range cfg.Pinned {
		set[id] = true
	}
	return &twoTier{
		capBytes:  cfg.CapBytes,
		reserve:   reserve,
		pinnedSet: set,
		pinned:    make(map[graph.NodeID][]float32, len(cfg.Pinned)),
		tail:      tail,
	}, nil
}

func (c *twoTier) Get(id graph.NodeID, dst []float32) ([]float32, bool) {
	if c.pinnedSet[id] {
		c.mu.Lock()
		row, ok := c.pinned[id]
		if ok {
			dst = copyRow(dst, row)
			c.mu.Unlock()
			c.ctr.hits.Add(1)
			return dst, true
		}
		c.mu.Unlock()
		// A pinned id not yet resident falls through to the tail — it
		// may have been Put there before the pinned tier saw it, and
		// counting the miss is the tail's job either way.
	}
	return c.tail.Get(id, dst)
}

func (c *twoTier) Put(id graph.NodeID, row []float32) {
	if c.pinnedSet[id] {
		size := entrySize(row)
		c.mu.Lock()
		if old, ok := c.pinned[id]; ok {
			if len(old) != len(row) {
				c.pinnedUsed += size - entrySize(old)
				c.pinned[id] = append([]float32(nil), row...)
			}
			c.mu.Unlock()
			return
		}
		if c.pinnedUsed+size <= c.reserve {
			c.pinned[id] = append([]float32(nil), row...)
			c.pinnedUsed += size
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
		// Pinned budget exhausted (RowBytes hint was low, or the pinned
		// list outsizes half the cache): overflow ids live in the tail.
	}
	c.tail.Put(id, row)
}

func (c *twoTier) Stats() CacheStats {
	ts := c.tail.Stats()
	c.mu.Lock()
	s := CacheStats{
		Policy:        PolicyTwoTier,
		CapBytes:      c.capBytes,
		UsedBytes:     c.pinnedUsed + ts.UsedBytes,
		Entries:       len(c.pinned) + ts.Entries,
		PinnedEntries: len(c.pinned),
		PinnedBytes:   c.pinnedUsed,
	}
	c.mu.Unlock()
	c.ctr.snapshot(&s)
	s.Hits += ts.Hits
	s.Misses += ts.Misses
	s.Evictions = ts.Evictions
	s.Rejections = ts.Rejections
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	} else {
		s.HitRate = 0
	}
	return s
}

func (c *twoTier) Close() error { return c.tail.Close() }
