package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"argo/internal/graph"
	"argo/internal/nn"
	"argo/internal/sampler"
	"argo/internal/tensor"
)

// FeatureSource serves single feature rows by global node id — the
// row-granular seam the serving path reads through, so a store much
// larger than RAM can back an inference server. Implementations must be
// safe for concurrent use.
type FeatureSource interface {
	// Row copies node id's feature row into dst (grown as needed) and
	// returns it.
	Row(id graph.NodeID, dst []float32) ([]float32, error)
	// Dim returns the feature width.
	Dim() int
}

// lazySource reads rows straight from a LazyDataset section
// (mmap slice or pread per row; never the whole matrix).
type lazySource struct{ lz *graph.LazyDataset }

func (s lazySource) Row(id graph.NodeID, dst []float32) ([]float32, error) {
	return s.lz.FeatureRow(int(id), dst)
}

func (s lazySource) Dim() int { return s.lz.FeatureDim() }

// FeatDtype reports the store's feature dtype (see FeatureSourceDtype);
// an fp16 store gets packed cache storage for ~2× rows per byte budget.
func (s lazySource) FeatDtype() graph.FeatDtype { return s.lz.FeatDtype() }

// NewLazyFeatureSource serves rows from an opened store.
func NewLazyFeatureSource(lz *graph.LazyDataset) FeatureSource { return lazySource{lz} }

// shardSource routes each row read to the shard that owns the node,
// through that shard store's own row-granular reader. Only the
// shardmap sections are materialised up front; feature bytes are read
// row by row on demand.
type shardSource struct {
	ss   *graph.ShardSet
	maps []*graph.ShardMap
	dim  int
	dt   graph.FeatDtype
}

// NewShardFeatureSource builds a row source over a shard set.
func NewShardFeatureSource(ss *graph.ShardSet) (FeatureSource, error) {
	dt, err := graph.ParseFeatDtype(ss.Manifest.FeatDtype)
	if err != nil {
		return nil, err
	}
	src := &shardSource{ss: ss, dim: ss.Manifest.FeatDim, dt: dt, maps: make([]*graph.ShardMap, ss.K())}
	for i := 0; i < ss.K(); i++ {
		sm, err := ss.ShardMap(i)
		if err != nil {
			return nil, err
		}
		src.maps[i] = sm
	}
	return src, nil
}

func (s *shardSource) Row(id graph.NodeID, dst []float32) ([]float32, error) {
	owner, err := s.ss.Owner(id)
	if err != nil {
		return nil, err
	}
	local := s.maps[owner].LocalID(id)
	if local < 0 {
		return nil, fmt.Errorf("serve: node %d not mapped by its owning shard %d", id, owner)
	}
	lz, err := s.ss.Shard(owner)
	if err != nil {
		return nil, err
	}
	return lz.FeatureRow(int(local), dst)
}

func (s *shardSource) Dim() int { return s.dim }

// FeatDtype reports the shard set's manifest-wide feature dtype.
func (s *shardSource) FeatDtype() graph.FeatDtype { return s.dt }

// matrixSource serves rows from a materialised feature matrix — the
// reference path the bit-match gates compare against, and the fast path
// for stores small enough to hold in memory.
type matrixSource struct {
	m  *tensor.Matrix
	dt graph.FeatDtype
}

// NewMatrixFeatureSource serves rows from an in-memory matrix.
func NewMatrixFeatureSource(m *tensor.Matrix) FeatureSource {
	return matrixSource{m: m, dt: graph.DtypeF32}
}

// NewMatrixFeatureSourceDtype is NewMatrixFeatureSource with an
// explicit storage dtype tag — for matrices materialised from (or
// converted to) an fp16 store, whose values are fp16-exact, so the
// serving cache may pack them. Tagging a matrix that holds non-fp16
// values as fp16 would make cached reads lossy; callers own that
// invariant (Dataset.ConvertFeatures establishes it).
func NewMatrixFeatureSourceDtype(m *tensor.Matrix, dt graph.FeatDtype) FeatureSource {
	return matrixSource{m: m, dt: dt}
}

// FeatDtype reports the tagged storage dtype.
func (s matrixSource) FeatDtype() graph.FeatDtype { return s.dt }

func (s matrixSource) Row(id graph.NodeID, dst []float32) ([]float32, error) {
	if id < 0 || int(id) >= s.m.Rows {
		return nil, fmt.Errorf("serve: feature row %d outside [0,%d)", id, s.m.Rows)
	}
	if cap(dst) < s.m.Cols {
		dst = make([]float32, s.m.Cols)
	}
	dst = dst[:s.m.Cols]
	copy(dst, s.m.Row(int(id)))
	return dst, nil
}

func (s matrixSource) Dim() int { return s.m.Cols }

// Prediction is one node's answer: the argmax label plus the raw logits
// (so callers can threshold or rank themselves).
type Prediction struct {
	Node   graph.NodeID `json:"node"`
	Label  int          `json:"label"`
	Logits []float32    `json:"logits"`
}

// Inferencer answers node-classification queries: a deterministic
// full-neighborhood k-hop gather feeding one forward pass of the
// checkpointed model. Feature rows come from the FeatureSource through
// the optional hot-node cache. Predict calls are serialised internally
// (the model caches per-batch activations), which is exactly how the
// micro-batcher drives it — one coalesced batch at a time.
type Inferencer struct {
	mu     sync.Mutex
	model  *nn.GNN
	graph  *graph.CSR
	gather *sampler.FullNeighbor
	feats  FeatureSource
	cache  Cache
	hubs   *HubStore
	pool   *tensor.Pool
	// scratch row reused across gathers (Predict is serialised).
	scratch []float32

	hubHits atomic.Int64
}

// InferencerOptions configures NewInferencer.
type InferencerOptions struct {
	Model    *nn.GNN
	Graph    *graph.CSR
	Features FeatureSource
	// Cache, when non-nil, fronts Features with a hot-node row cache
	// (any registered policy; see NewCache).
	Cache Cache
	// Workers bounds the tensor worker pool (default 1). Per-row kernel
	// results are worker-count-independent, so this is performance-only.
	Workers int
}

// NewInferencer validates the pieces and builds an inferencer.
func NewInferencer(opt InferencerOptions) (*Inferencer, error) {
	if opt.Model == nil || opt.Graph == nil || opt.Features == nil {
		return nil, fmt.Errorf("serve: model, graph, and features are required")
	}
	if opt.Features.Dim() != opt.Model.Spec.Dims[0] {
		return nil, fmt.Errorf("serve: feature dim %d, model expects %d", opt.Features.Dim(), opt.Model.Spec.Dims[0])
	}
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	return &Inferencer{
		model:   opt.Model,
		graph:   opt.Graph,
		gather:  sampler.NewFullNeighbor(opt.Graph, opt.Model.NumLayers()),
		feats:   opt.Features,
		cache:   opt.Cache,
		pool:    tensor.NewPool(workers),
		scratch: make([]float32, opt.Features.Dim()),
	}, nil
}

// NumNodes returns the served graph's node count (for request
// validation).
func (inf *Inferencer) NumNodes() int { return inf.graph.NumNodes }

// NumClasses returns the model's output width.
func (inf *Inferencer) NumClasses() int { return inf.model.Spec.Dims[len(inf.model.Spec.Dims)-1] }

// Predict runs one forward pass for the given nodes (which must be
// unique and in range) and returns one prediction per node, in order.
// Logits are a pure function of (model, graph, features, node): batch
// composition cannot change them — and neither can hub serving: with a
// HubStore attached the gather is pruned at hubs and their stored
// per-layer activations are injected back (or, for hub targets, the
// stored logits returned outright), bit-identical to the full pass.
func (inf *Inferencer) Predict(nodes []graph.NodeID) ([]Prediction, error) {
	if len(nodes) == 0 {
		return nil, nil
	}
	inf.mu.Lock()
	defer inf.mu.Unlock()
	var known func(graph.NodeID) bool
	if inf.hubs != nil {
		known = inf.hubs.Contains
	}
	mb := inf.gather.SamplePruned(nodes, known)
	x0, err := inf.gatherFeatures(mb.InputNodes())
	if err != nil {
		return nil, err
	}
	var inject func(int, *tensor.Matrix)
	if inf.hubs != nil {
		inject = func(li int, x *tensor.Matrix) {
			if li == 0 {
				// Layer-0 inputs are raw feature rows; the gather
				// already supplied hub rows exactly.
				return
			}
			for j, v := range mb.Blocks[li].SrcNodes {
				if a, ok := inf.hubs.Activation(li, v); ok {
					copy(x.Row(j), a)
				}
			}
		}
	}
	// The fused forward-only pass: bit-identical logits to Forward
	// without materialising the intermediate aggregation matrices, and
	// every per-batch matrix recycled through the model's pool, so a
	// steady-state Predict allocates only the returned predictions.
	logits := inf.model.InferReuse(inf.pool, mb, x0, inject)
	preds := make([]Prediction, len(nodes))
	for i, v := range nodes {
		row := logits.Row(i)
		if hl, ok := inf.hubs.Logits(v); ok {
			// Hub target: its pruned row holds garbage (its frontier was
			// never gathered); the stored logits are the exact answer.
			row = hl
			inf.hubHits.Add(1)
		}
		preds[i] = Prediction{Node: v, Label: argmax(row), Logits: append([]float32(nil), row...)}
	}
	bufs := inf.model.Buffers()
	bufs.Put(logits)
	bufs.Put(x0)
	return preds, nil
}

// gatherFeatures assembles the layer-0 input matrix row by row through
// the cache. Only rows absent from the cache touch the FeatureSource.
// The matrix draws from the model's buffer pool; Predict returns it once
// the pass completes.
func (inf *Inferencer) gatherFeatures(ids []graph.NodeID) (*tensor.Matrix, error) {
	dim := inf.feats.Dim()
	x0 := inf.model.Buffers().Get(len(ids), dim)
	for i, v := range ids {
		dst := x0.Row(i)
		if inf.cache != nil {
			if _, ok := inf.cache.Get(v, dst); ok {
				continue
			}
		}
		row, err := inf.feats.Row(v, inf.scratch)
		if err != nil {
			inf.model.Buffers().Put(x0)
			return nil, err
		}
		inf.scratch = row
		copy(dst, row)
		if inf.cache != nil {
			inf.cache.Put(v, row)
		}
	}
	return x0, nil
}

// CacheStats reports the hot-node cache counters (zero value when no
// cache is configured).
func (inf *Inferencer) CacheStats() CacheStats {
	if inf.cache == nil {
		return CacheStats{}
	}
	return inf.cache.Stats()
}

// argmax returns the index of the row's maximum (first on ties, so the
// label is deterministic).
func argmax(row []float32) int {
	best := 0
	for i, v := range row {
		if v > row[best] {
			best = i
		}
	}
	return best
}

// DirectPredict is the reference path the serving stack is pinned
// against: a single-batch forward pass on a fully materialised dataset,
// no cache, no batcher, no row-granular reads. CI asserts a served
// prediction bit-matches this for the same checkpoint and store.
func DirectPredict(m *nn.GNN, ds *graph.Dataset, nodes []graph.NodeID, workers int) ([]Prediction, error) {
	inf, err := NewInferencer(InferencerOptions{
		Model:    m,
		Graph:    ds.Graph,
		Features: NewMatrixFeatureSource(ds.Features),
		Workers:  workers,
	})
	if err != nil {
		return nil, err
	}
	return inf.Predict(nodes)
}
