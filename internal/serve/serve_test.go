package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"argo/internal/graph"
)

// TestNewAssemblesStack: serve.New with the full option surface builds
// a working server whose /statz echoes the policy and hub layer, and
// whose predictions bit-match direct inference.
func TestNewAssemblesStack(t *testing.T) {
	ds, m, _ := serveFixture(t)
	srv, err := New(Source{Graph: ds.Graph, Features: NewMatrixFeatureSource(ds.Features)}, m,
		WithPolicy(PolicyTwoTier),
		WithCacheBytes(1<<16),
		WithHubPin(0.05),
		WithPrecomputeHubs(0.05),
		WithWorkers(2),
		WithBatchWindow(time.Millisecond),
		WithBatchMaxNodes(64),
	)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer func() { ts.Close(); srv.Close() }()

	nodes := []graph.NodeID{0, 17, 42, 99, 119}
	direct, err := DirectPredict(m, ds, nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	served, err := srv.Batcher().Predict(nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range nodes {
		if !logitsEqual(served[i].Logits, direct[i].Logits) {
			t.Fatalf("node %d: options-built server diverges from direct", nodes[i])
		}
	}

	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatzResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.CachePolicy != PolicyTwoTier || st.Cache.Policy != PolicyTwoTier {
		t.Fatalf("statz does not echo the policy: %+v", st)
	}
	if st.Hubs.Nodes == 0 || st.Hubs.Layers != m.NumLayers() || st.Hubs.Bytes <= 0 {
		t.Fatalf("statz hub layer missing: %+v", st.Hubs)
	}
	if st.Model != "sage" {
		t.Fatalf("model kind not derived from the spec: %q", st.Model)
	}
}

func TestNewValidates(t *testing.T) {
	ds, m, _ := serveFixture(t)
	src := Source{Graph: ds.Graph, Features: NewMatrixFeatureSource(ds.Features)}
	if _, err := New(src, nil); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := New(Source{}, m); err == nil {
		t.Fatal("empty source accepted")
	}
	if _, err := New(src, m, WithCacheBytes(1<<16), WithPolicy("clock")); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := New(src, m, WithPrecomputeHubs(1.5)); err == nil {
		t.Fatal("out-of-range hub fraction accepted")
	}
	// No cache options at all: a server with caching disabled.
	srv, err := New(src, m)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if s := srv.Inferencer().CacheStats(); s.CapBytes != 0 {
		t.Fatalf("cache built without a budget: %+v", s)
	}
	if _, err := srv.Batcher().Predict([]graph.NodeID{3}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentPredictAndStatz races live Predict traffic against
// /statz polling across every policy — the synchronization fix for the
// cache counters; meaningful under -race.
func TestConcurrentPredictAndStatz(t *testing.T) {
	ds, m, _ := serveFixture(t)
	for _, policy := range Policies() {
		srv, err := New(Source{Graph: ds.Graph, Features: NewMatrixFeatureSource(ds.Features)}, m,
			WithPolicy(policy),
			WithCacheBytes(1<<14),
			WithHubPin(0.05),
			WithPrecomputeHubs(0.05),
		)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		var wg sync.WaitGroup
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					node := (seed*25 + i) % ds.Graph.NumNodes
					resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
						strings.NewReader(`{"nodes":[`+strconv.Itoa(node)+`]}`))
					if err == nil {
						resp.Body.Close()
					}
				}
			}(w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := http.Get(ts.URL + "/statz")
				if err == nil {
					var st StatzResponse
					_ = json.NewDecoder(resp.Body).Decode(&st)
					resp.Body.Close()
				}
			}
		}()
		wg.Wait()
		ts.Close()
		srv.Close()
	}
}
