package serve

import (
	"testing"
)

func row(vals ...float32) []float32 { return vals }

func TestFeatureCacheHitMissEvict(t *testing.T) {
	// Two 4-float rows fit; the third evicts the LRU one.
	capBytes := 2 * (4*4 + cacheEntryOverheadBytes)
	c := NewFeatureCache(int64(capBytes))
	if _, ok := c.Get(1, nil); ok {
		t.Fatal("empty cache must miss")
	}
	c.Put(1, row(1, 1, 1, 1))
	c.Put(2, row(2, 2, 2, 2))
	got, ok := c.Get(1, nil)
	if !ok || got[0] != 1 {
		t.Fatalf("hit on 1: ok=%v got=%v", ok, got)
	}
	// 1 is now MRU; inserting 3 must evict 2.
	c.Put(3, row(3, 3, 3, 3))
	if _, ok := c.Get(2, nil); ok {
		t.Fatal("2 should have been evicted")
	}
	if _, ok := c.Get(1, nil); !ok {
		t.Fatal("1 should have survived (recently used)")
	}
	if _, ok := c.Get(3, nil); !ok {
		t.Fatal("3 should be cached")
	}
	s := c.Stats()
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	if s.Hits != 3 || s.Misses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 3/2", s.Hits, s.Misses)
	}
	if s.Entries != 2 || s.UsedBytes > s.CapBytes {
		t.Fatalf("entries=%d used=%d cap=%d", s.Entries, s.UsedBytes, s.CapBytes)
	}
}

func TestFeatureCacheCopiesBothWays(t *testing.T) {
	c := NewFeatureCache(1 << 20)
	src := row(1, 2, 3)
	c.Put(7, src)
	src[0] = 99 // caller mutates its slice after Put
	got, ok := c.Get(7, nil)
	if !ok || got[0] != 1 {
		t.Fatalf("cache must own its storage: got %v", got)
	}
	got[1] = 99 // caller mutates the returned slice
	again, _ := c.Get(7, nil)
	if again[1] != 2 {
		t.Fatalf("Get must return a copy: got %v", again)
	}
	// dst reuse path.
	dst := make([]float32, 3)
	out, ok := c.Get(7, dst)
	if !ok || &out[0] != &dst[0] {
		t.Fatal("Get should fill the provided dst when it fits")
	}
}

func TestFeatureCacheDisabledAndOversized(t *testing.T) {
	off := NewFeatureCache(0)
	off.Put(1, row(1))
	if _, ok := off.Get(1, nil); ok {
		t.Fatal("capBytes<=0 must disable caching")
	}
	small := NewFeatureCache(8) // smaller than any entry
	small.Put(1, row(1))
	if s := small.Stats(); s.Entries != 0 {
		t.Fatal("oversized rows must not be cached")
	}
}

func TestFeatureCacheRefreshBumpsRecency(t *testing.T) {
	capBytes := 2 * (4 + cacheEntryOverheadBytes)
	c := NewFeatureCache(int64(capBytes))
	c.Put(1, row(1))
	c.Put(2, row(2))
	c.Put(1, row(1)) // refresh: 1 becomes MRU without growing the cache
	c.Put(3, row(3)) // must evict 2, not 1
	if _, ok := c.Get(1, nil); !ok {
		t.Fatal("refreshed entry evicted")
	}
	if _, ok := c.Get(2, nil); ok {
		t.Fatal("LRU entry survived")
	}
	if s := c.Stats(); s.Entries != 2 {
		t.Fatalf("entries = %d, want 2", s.Entries)
	}
}

func TestFeatureCacheRefreshRechargesChangedRow(t *testing.T) {
	// A refresh with a different row length must replace the stored
	// bytes and re-charge the byte accounting, not silently keep the
	// stale-width row.
	c := NewFeatureCache(1 << 20)
	c.Put(1, row(1, 2))
	before := c.Stats().UsedBytes
	c.Put(1, row(7, 8, 9, 10)) // store swap: same id, wider row
	got, ok := c.Get(1, nil)
	if !ok {
		t.Fatal("refreshed entry missing")
	}
	if len(got) != 4 || got[0] != 7 || got[3] != 10 {
		t.Fatalf("refreshed row = %v, want [7 8 9 10]", got)
	}
	after := c.Stats().UsedBytes
	if want := before + 2*4; after != want {
		t.Fatalf("used bytes = %d, want %d (re-charged for 2 extra floats)", after, want)
	}
	// Same-length refresh keeps accounting unchanged.
	c.Put(1, row(7, 8, 9, 10))
	if c.Stats().UsedBytes != after {
		t.Fatalf("same-length refresh changed used bytes: %d != %d", c.Stats().UsedBytes, after)
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("entries = %d, want 1", s.Entries)
	}
}

func TestFeatureCacheRefreshGrowthCanEvict(t *testing.T) {
	// Growing a row on refresh can push the cache over budget; the
	// evict loop must then trim from the tail, never the refreshed
	// (now most-recent) entry itself.
	capBytes := 2*(4+cacheEntryOverheadBytes) + 3*4
	c := NewFeatureCache(int64(capBytes))
	c.Put(1, row(1))
	c.Put(2, row(2))
	c.Put(2, row(2, 2, 2, 2, 2)) // grow MRU entry beyond what both fit
	if _, ok := c.Get(1, nil); ok {
		t.Fatal("tail entry should have been evicted to fund the growth")
	}
	got, ok := c.Get(2, nil)
	if !ok || len(got) != 5 {
		t.Fatalf("grown entry = %v, ok=%v; want the 5-float row", got, ok)
	}
	if s := c.Stats(); s.UsedBytes > s.CapBytes {
		t.Fatalf("used %d exceeds cap %d after refresh-evict", s.UsedBytes, s.CapBytes)
	}
}
