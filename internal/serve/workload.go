package serve

import (
	"fmt"
	"math/rand"

	"argo/internal/graph"
)

// Generator yields one query node per call. Implementations are seeded
// and deterministic; they are NOT safe for concurrent use — give each
// load-generating worker its own (differently seeded) generator.
type Generator interface {
	Next() graph.NodeID
	Name() string
}

type zipfGen struct {
	z *rand.Zipf
}

// NewZipfGenerator returns a Zipf(s)-skewed query stream: node v is
// drawn with probability ∝ 1/(v+1)^s, so a small popular set absorbs
// most of the traffic. Popularity is assigned by node id — arbitrary
// but fixed, and deliberately independent of graph structure: it models
// user-facing query skew (some entities are simply asked about more),
// which is the locality the hot-node feature cache converts into hits.
// s must be > 1.
func NewZipfGenerator(g *graph.CSR, seed int64, s float64) (Generator, error) {
	if s <= 1 {
		return nil, fmt.Errorf("serve: zipf skew must be > 1, got %g", s)
	}
	if g.NumNodes == 0 {
		return nil, fmt.Errorf("serve: empty graph")
	}
	rng := rand.New(rand.NewSource(seed))
	return &zipfGen{z: rand.NewZipf(rng, s, 1, uint64(g.NumNodes-1))}, nil
}

func (z *zipfGen) Next() graph.NodeID { return graph.NodeID(z.z.Uint64()) }
func (z *zipfGen) Name() string       { return "zipf" }

type uniformGen struct {
	rng *rand.Rand
	n   int
}

// NewUniformGenerator returns an unskewed query stream — the baseline
// the cache hit-rate comparison is made against.
func NewUniformGenerator(numNodes int, seed int64) (Generator, error) {
	if numNodes == 0 {
		return nil, fmt.Errorf("serve: empty graph")
	}
	return &uniformGen{rng: rand.New(rand.NewSource(seed)), n: numNodes}, nil
}

func (u *uniformGen) Next() graph.NodeID { return graph.NodeID(u.rng.Intn(u.n)) }
func (u *uniformGen) Name() string       { return "uniform" }

// NextBatch draws size distinct nodes from gen (predict requests carry
// unique node lists). Requires size <= the graph's node count.
func NextBatch(gen Generator, size int) []graph.NodeID {
	out := make([]graph.NodeID, 0, size)
	seen := make(map[graph.NodeID]struct{}, size)
	for len(out) < size {
		v := gen.Next()
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
