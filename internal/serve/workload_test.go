package serve

import (
	"testing"

	"argo/internal/datasets"
	"argo/internal/graph"
)

func TestGeneratorsAreSeededAndDeterministic(t *testing.T) {
	ds, err := datasets.Build("tiny", 1)
	if err != nil {
		t.Fatal(err)
	}
	za, err := NewZipfGenerator(ds.Graph, 42, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	zb, _ := NewZipfGenerator(ds.Graph, 42, 1.2)
	ua, _ := NewUniformGenerator(ds.Graph.NumNodes, 42)
	ub, _ := NewUniformGenerator(ds.Graph.NumNodes, 42)
	for i := 0; i < 200; i++ {
		if za.Next() != zb.Next() {
			t.Fatal("zipf generator not deterministic for a fixed seed")
		}
		if ua.Next() != ub.Next() {
			t.Fatal("uniform generator not deterministic for a fixed seed")
		}
	}
}

// The property the cache benchmark rests on: a Zipf stream concentrates
// its queries on far fewer distinct nodes than a uniform one.
func TestZipfStreamIsSkewed(t *testing.T) {
	ds, err := datasets.Build("tiny", 1)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 2000
	distinct := func(gen Generator) int {
		seen := make(map[graph.NodeID]struct{})
		for i := 0; i < draws; i++ {
			v := gen.Next()
			if v < 0 || int(v) >= ds.Graph.NumNodes {
				t.Fatalf("generated node %d out of range", v)
			}
			seen[v] = struct{}{}
		}
		return len(seen)
	}
	z, err := NewZipfGenerator(ds.Graph, 7, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	u, _ := NewUniformGenerator(ds.Graph.NumNodes, 7)
	zd, ud := distinct(z), distinct(u)
	if zd >= ud {
		t.Fatalf("zipf touched %d distinct nodes, uniform %d: no skew", zd, ud)
	}
}

func TestZipfGeneratorRejectsBadSkew(t *testing.T) {
	ds, err := datasets.Build("tiny", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewZipfGenerator(ds.Graph, 1, 1.0); err == nil {
		t.Fatal("s <= 1 must be rejected")
	}
}

func TestNextBatchIsUnique(t *testing.T) {
	ds, err := datasets.Build("tiny", 1)
	if err != nil {
		t.Fatal(err)
	}
	z, err := NewZipfGenerator(ds.Graph, 3, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	batch := NextBatch(z, 16)
	if len(batch) != 16 {
		t.Fatalf("batch size %d", len(batch))
	}
	seen := make(map[graph.NodeID]struct{})
	for _, v := range batch {
		if _, ok := seen[v]; ok {
			t.Fatalf("duplicate node %d in batch", v)
		}
		seen[v] = struct{}{}
	}
}
