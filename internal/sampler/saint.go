package sampler

import (
	"math/rand"

	"argo/internal/graph"
)

// SaintRW implements a GraphSAINT-style random-walk sampler (Zeng et al.,
// cited as [18] in the paper): each batch target roots WalksPerRoot random
// walks of length WalkLen; the union of visited nodes induces the batch
// subgraph. Walk-based sampling preserves community structure while
// bounding subgraph size linearly in the batch size.
type SaintRW struct {
	Graph        *graph.CSR
	WalksPerRoot int
	WalkLen      int
	Layers       int
}

// NewSaintRW returns a random-walk sampler with the GraphSAINT paper's
// typical configuration shape.
func NewSaintRW(g *graph.CSR, walksPerRoot, walkLen, layers int) *SaintRW {
	return &SaintRW{Graph: g, WalksPerRoot: walksPerRoot, WalkLen: walkLen, Layers: layers}
}

// Name implements Sampler.
func (s *SaintRW) Name() string { return "saint-rw" }

// NumLayers implements Sampler.
func (s *SaintRW) NumLayers() int { return s.Layers }

// Sample implements Sampler.
func (s *SaintRW) Sample(rng *rand.Rand, targets []graph.NodeID) *MiniBatch {
	local := make(map[graph.NodeID]int32, len(targets)*s.WalksPerRoot*s.WalkLen/2)
	nodes := make([]graph.NodeID, 0, len(targets)*4)
	add := func(v graph.NodeID) {
		if _, ok := local[v]; !ok {
			local[v] = int32(len(nodes))
			nodes = append(nodes, v)
		}
	}
	for _, v := range targets {
		add(v)
	}
	numTargets := len(nodes)

	for _, root := range targets {
		for w := 0; w < s.WalksPerRoot; w++ {
			cur := root
			for step := 0; step < s.WalkLen; step++ {
				adj := s.Graph.Neighbors(cur)
				if len(adj) == 0 {
					break
				}
				cur = adj[rng.Intn(len(adj))]
				add(cur)
			}
		}
	}

	sub := induce(s.Graph, nodes, local, numTargets)
	mb := &MiniBatch{Targets: targets, Sub: sub}
	mb.Stats.InputNodes = int64(len(nodes))
	mb.Stats.SampledEdges = int64(sub.NumEdges()) * int64(s.Layers)
	mb.Stats.LayerEdges = make([]int64, s.Layers)
	for l := range mb.Stats.LayerEdges {
		mb.Stats.LayerEdges[l] = int64(sub.NumEdges())
	}
	return mb
}
