package sampler

import (
	"math/rand"

	"argo/internal/graph"
)

// ShaDow implements the ShaDow-GNN sampler (Zeng et al., the paper's
// ShaDow Sampler): for each target node it extracts a localized subgraph
// by L'-hop fanout expansion (paper setting: fanouts [10, 5]) and the GNN
// then runs all of its layers on the induced subgraph, decoupling model
// depth from sampling depth and avoiding neighbour explosion.
//
// The per-batch subgraph is the union of the per-target localized node
// sets with induced edges; the first len(targets) local nodes are the
// readout rows.
type ShaDow struct {
	Graph   *graph.CSR
	Fanouts []int // localized-subgraph expansion fanouts, e.g. [10, 5]
	Layers  int   // number of GNN layers run on the subgraph
}

// NewShaDow returns a ShaDow sampler with the paper's defaults for a
// three-layer model: expansion fanouts [10, 5].
func NewShaDow(g *graph.CSR, fanouts []int, layers int) *ShaDow {
	return &ShaDow{Graph: g, Fanouts: fanouts, Layers: layers}
}

// Name implements Sampler.
func (sh *ShaDow) Name() string { return "shadow" }

// NumLayers implements Sampler.
func (sh *ShaDow) NumLayers() int { return sh.Layers }

// Sample implements Sampler.
func (sh *ShaDow) Sample(rng *rand.Rand, targets []graph.NodeID) *MiniBatch {
	// Hop expansion with dedup across the whole batch: targets first.
	local := make(map[graph.NodeID]int32, len(targets)*4)
	nodes := make([]graph.NodeID, 0, len(targets)*4)
	for _, v := range targets {
		if _, ok := local[v]; !ok {
			local[v] = int32(len(nodes))
			nodes = append(nodes, v)
		}
	}
	numTargets := len(nodes)

	frontier := nodes
	scratch := make([]graph.NodeID, maxFanout(sh.Fanouts))
	for _, fanout := range sh.Fanouts {
		next := make([]graph.NodeID, 0, len(frontier)*fanout/2)
		for _, v := range frontier {
			for _, u := range sampleNeighbors(sh.Graph, v, fanout, scratch, rng) {
				if _, ok := local[u]; !ok {
					local[u] = int32(len(nodes))
					nodes = append(nodes, u)
					next = append(next, u)
				}
			}
		}
		frontier = next
	}

	// Induce the subgraph: keep every arc whose endpoints are both in the
	// localized node set.
	sub := &Subgraph{
		Nodes:      nodes,
		NumTargets: numTargets,
		RowPtr:     make([]int32, len(nodes)+1),
	}
	sub.Col = make([]int32, 0, len(nodes)*4)
	for i, v := range nodes {
		for _, u := range sh.Graph.Neighbors(v) {
			if j, ok := local[u]; ok {
				sub.Col = append(sub.Col, j)
			}
		}
		sub.RowPtr[i+1] = int32(len(sub.Col))
	}

	mb := &MiniBatch{Targets: targets, Sub: sub}
	mb.Stats.InputNodes = int64(len(nodes))
	mb.Stats.SampledEdges = int64(len(sub.Col)) * int64(sh.Layers)
	mb.Stats.LayerEdges = make([]int64, sh.Layers)
	for l := range mb.Stats.LayerEdges {
		mb.Stats.LayerEdges[l] = int64(len(sub.Col))
	}
	return mb
}

func maxFanout(fanouts []int) int {
	m := 0
	for _, f := range fanouts {
		if f > m {
			m = f
		}
	}
	return m
}
