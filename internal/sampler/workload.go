package sampler

import (
	"math/rand"

	"argo/internal/graph"
)

// EpochWorkload samples one full epoch over train with the given
// per-process mini-batch layout and returns the accumulated workload
// statistics. It reproduces the measurement behind the paper's Fig. 6:
// with numProcs processes the global batch globalBatch is split into
// globalBatch/numProcs per process, and because smaller batches share
// fewer neighbours the total SampledEdges grows with numProcs even though
// the set of target nodes is identical.
func EpochWorkload(s Sampler, train []graph.NodeID, globalBatch, numProcs int, seed int64) Stats {
	if numProcs < 1 {
		numProcs = 1
	}
	perProc := globalBatch / numProcs
	if perProc < 1 {
		perProc = 1
	}
	var total Stats
	rng := rand.New(rand.NewSource(seed))
	// Split target nodes evenly across processes (the Multi-Process
	// Engine's random even split), then batch within each process.
	parts := make([][]graph.NodeID, numProcs)
	for i, v := range train {
		parts[i%numProcs] = append(parts[i%numProcs], v)
	}
	for _, part := range parts {
		for lo := 0; lo < len(part); lo += perProc {
			hi := lo + perProc
			if hi > len(part) {
				hi = len(part)
			}
			mb := s.Sample(rng, part[lo:hi])
			total.Accumulate(mb.Stats)
		}
	}
	return total
}
