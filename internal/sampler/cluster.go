package sampler

import (
	"math/rand"

	"argo/internal/graph"
)

// Cluster implements a Cluster-GCN-style sampler (Chiang et al., cited as
// [17] in the paper's sampling-algorithm survey): the graph is partitioned
// offline into clusters, and a mini-batch's subgraph is the union of the
// clusters containing the batch targets, with all induced edges. Because
// cluster interiors are dense, most of a node's neighbourhood survives
// into the batch at a cost independent of model depth.
//
// This adaptation keeps ARGO's target-driven batching: the provided
// targets lead the node list (readout rows), followed by the remaining
// members of their clusters.
type Cluster struct {
	Graph  *graph.CSR
	Part   *graph.Partition
	Layers int

	members [][]graph.NodeID // cluster id → node list
	// MaxClusterNodes bounds how many cluster members join a batch
	// subgraph (0 = unbounded); large clusters are subsampled to keep
	// batch cost predictable.
	MaxClusterNodes int
}

// NewCluster partitions g into numClusters parts (greedy BFS partitioner,
// the repo's METIS stand-in — deterministic, so a given graph always
// yields the same clusters) and returns the sampler.
func NewCluster(g *graph.CSR, numClusters, layers int) *Cluster {
	part := graph.GreedyPartition(g, numClusters)
	c := &Cluster{Graph: g, Part: part, Layers: layers, MaxClusterNodes: 2048}
	c.members = make([][]graph.NodeID, numClusters)
	for v, p := range part.Assign {
		c.members[p] = append(c.members[p], graph.NodeID(v))
	}
	return c
}

// Name implements Sampler.
func (c *Cluster) Name() string { return "cluster" }

// NumLayers implements Sampler.
func (c *Cluster) NumLayers() int { return c.Layers }

// Sample implements Sampler.
func (c *Cluster) Sample(rng *rand.Rand, targets []graph.NodeID) *MiniBatch {
	local := make(map[graph.NodeID]int32, len(targets)*4)
	nodes := make([]graph.NodeID, 0, len(targets)*4)
	add := func(v graph.NodeID) {
		if _, ok := local[v]; !ok {
			local[v] = int32(len(nodes))
			nodes = append(nodes, v)
		}
	}
	for _, v := range targets {
		add(v)
	}
	numTargets := len(nodes)

	// Pull in the targets' clusters (subsampled if oversized).
	seen := map[int32]bool{}
	budget := c.MaxClusterNodes
	for _, v := range targets {
		p := c.Part.Assign[v]
		if seen[p] {
			continue
		}
		seen[p] = true
		mem := c.members[p]
		if budget > 0 && len(mem) > budget {
			for _, idx := range rng.Perm(len(mem))[:budget] {
				add(mem[idx])
			}
		} else {
			for _, u := range mem {
				add(u)
			}
		}
	}

	sub := induce(c.Graph, nodes, local, numTargets)
	mb := &MiniBatch{Targets: targets, Sub: sub}
	mb.Stats.InputNodes = int64(len(nodes))
	mb.Stats.SampledEdges = int64(sub.NumEdges()) * int64(c.Layers)
	mb.Stats.LayerEdges = make([]int64, c.Layers)
	for l := range mb.Stats.LayerEdges {
		mb.Stats.LayerEdges[l] = int64(sub.NumEdges())
	}
	return mb
}

// induce builds the induced subgraph over nodes (local gives each node's
// local index; the first numTargets nodes are the readout rows).
func induce(g *graph.CSR, nodes []graph.NodeID, local map[graph.NodeID]int32, numTargets int) *Subgraph {
	sub := &Subgraph{
		Nodes:      nodes,
		NumTargets: numTargets,
		RowPtr:     make([]int32, len(nodes)+1),
	}
	sub.Col = make([]int32, 0, len(nodes)*4)
	for i, v := range nodes {
		for _, u := range g.Neighbors(v) {
			if j, ok := local[u]; ok {
				sub.Col = append(sub.Col, j)
			}
		}
		sub.RowPtr[i+1] = int32(len(sub.Col))
	}
	return sub
}
