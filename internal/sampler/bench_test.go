package sampler

import (
	"math/rand"
	"testing"

	"argo/internal/graph"
)

func benchGraph(b *testing.B) *graph.CSR {
	b.Helper()
	g, _, err := graph.Generate(graph.GenSpec{
		NumNodes: 4000, NumEdges: 100_000, NumClasses: 8,
		Homophily: 0.6, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkNeighborSample(b *testing.B) {
	g := benchGraph(b)
	ns := NewNeighbor(g, []int{15, 10, 5})
	rng := rand.New(rand.NewSource(2))
	targets := someTargets(g, 128, rng)
	b.ReportAllocs()
	var edges int64
	for i := 0; i < b.N; i++ {
		mb := ns.Sample(rng, targets)
		edges = mb.Stats.SampledEdges
	}
	b.ReportMetric(float64(edges), "edges/batch")
}

func BenchmarkShaDowSample(b *testing.B) {
	g := benchGraph(b)
	sh := NewShaDow(g, []int{10, 5}, 3)
	rng := rand.New(rand.NewSource(3))
	targets := someTargets(g, 64, rng)
	b.ReportAllocs()
	var nodes int64
	for i := 0; i < b.N; i++ {
		mb := sh.Sample(rng, targets)
		nodes = mb.Stats.InputNodes
	}
	b.ReportMetric(float64(nodes), "subgraph_nodes")
}

func BenchmarkEpochWorkload(b *testing.B) {
	g := benchGraph(b)
	ns := NewNeighbor(g, []int{15, 10, 5})
	targets := someTargets(g, 1024, rand.New(rand.NewSource(4)))
	for i := 0; i < b.N; i++ {
		EpochWorkload(ns, targets, 256, 4, 5)
	}
}
