package sampler

import (
	"math/rand"
	"reflect"
	"testing"

	"argo/internal/graph"
)

// allNodes returns [0, n) as a node list.
func allNodes(n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

// TestPartitionFullSetMatchesNeighbor: with every node allowed, the
// filtered reservoir consumes the rng in the same pattern as the plain
// sampler, so the produced mini-batches are bit-identical.
func TestPartitionFullSetMatchesNeighbor(t *testing.T) {
	g, _ := sampleGraph(t, 3)
	fanouts := []int{10, 5}
	ns := NewNeighbor(g, fanouts)
	ps := NewPartition(g, fanouts, allNodes(g.NumNodes))
	if ps.AllowedCount() != g.NumNodes {
		t.Fatalf("allowed %d nodes, want %d", ps.AllowedCount(), g.NumNodes)
	}

	for trial := 0; trial < 5; trial++ {
		seed := int64(100 + trial)
		targets := someTargets(g, 24, rand.New(rand.NewSource(seed)))
		a := ns.Sample(rand.New(rand.NewSource(seed)), targets)
		b := ps.Sample(rand.New(rand.NewSource(seed)), targets)
		if !reflect.DeepEqual(a.Blocks, b.Blocks) {
			t.Fatalf("trial %d: full-set partition blocks differ from neighbor blocks", trial)
		}
	}
}

// TestPartitionBoundsFrontier: no sampled source node ever leaves the
// allowed set, at any layer.
func TestPartitionBoundsFrontier(t *testing.T) {
	g, _ := sampleGraph(t, 4)
	rng := rand.New(rand.NewSource(9))

	// Allow an arbitrary half of the graph, then make sure the targets
	// are inside it.
	allowed := make([]graph.NodeID, 0, g.NumNodes/2)
	for v := 0; v < g.NumNodes; v += 2 {
		allowed = append(allowed, graph.NodeID(v))
	}
	ps := NewPartition(g, []int{15, 10, 5}, allowed)
	targets := allowed[:32]

	mb := ps.Sample(rng, targets)
	for li, b := range mb.Blocks {
		if err := b.Validate(); err != nil {
			t.Fatalf("block %d: %v", li, err)
		}
		for _, v := range b.SrcNodes {
			if !ps.Allowed(v) {
				t.Fatalf("block %d: source node %d outside allowed set", li, v)
			}
		}
	}
	if mb.Stats.InputNodes > int64(ps.AllowedCount()) {
		t.Fatalf("input nodes %d exceed allowed set %d", mb.Stats.InputNodes, ps.AllowedCount())
	}
}

// TestPartitionDeterministic: same seed, same targets, same batch.
func TestPartitionDeterministic(t *testing.T) {
	g, _ := sampleGraph(t, 5)
	allowed := make([]graph.NodeID, 0, g.NumNodes)
	for v := 0; v < g.NumNodes; v++ {
		if v%3 != 0 {
			allowed = append(allowed, graph.NodeID(v))
		}
	}
	ps := NewPartition(g, []int{10, 5}, allowed)
	targets := allowed[10:42]

	a := ps.Sample(rand.New(rand.NewSource(7)), targets)
	b := ps.Sample(rand.New(rand.NewSource(7)), targets)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different mini-batches")
	}
	c := ps.Sample(rand.New(rand.NewSource(8)), targets)
	if reflect.DeepEqual(a.Blocks, c.Blocks) {
		t.Fatal("different seeds produced identical blocks (suspicious)")
	}
}

// TestPartitionShardSets: allowed sets built from a real partition's
// owned+halo lists keep every frontier shard-resident.
func TestPartitionShardSets(t *testing.T) {
	g, _ := sampleGraph(t, 6)
	parts := graph.GreedyPartition(g, 4)
	owned := make([][]graph.NodeID, 4)
	for v, p := range parts.Assign {
		owned[p] = append(owned[p], graph.NodeID(v))
	}
	for s := 0; s < 4; s++ {
		halo := map[graph.NodeID]bool{}
		for _, v := range owned[s] {
			for _, u := range g.Neighbors(v) {
				if parts.Assign[u] != int32(s) {
					halo[u] = true
				}
			}
		}
		haloList := make([]graph.NodeID, 0, len(halo))
		for u := range halo {
			haloList = append(haloList, u)
		}
		ps := NewPartition(g, []int{10, 5}, owned[s], haloList)
		n := len(owned[s])
		if n > 16 {
			n = 16
		}
		mb := ps.Sample(rand.New(rand.NewSource(int64(s))), owned[s][:n])
		for li, b := range mb.Blocks {
			for _, v := range b.SrcNodes {
				if !ps.Allowed(v) {
					t.Fatalf("shard %d block %d: node %d escaped owned+halo", s, li, v)
				}
			}
		}
	}
}
