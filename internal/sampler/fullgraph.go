package sampler

import (
	"math/rand"

	"argo/internal/graph"
)

// FullGraph is the no-sampling baseline from the paper's §II-B
// background: every "batch" aggregates over the entire graph, so with the
// batch size set to the whole training set the model updates once per
// epoch. The paper dismisses it for large graphs — unacceptable memory
// cost and slower convergence than mini-batch training — and this
// implementation exists to demonstrate exactly that comparison (see
// TestFullGraphConvergesSlower).
type FullGraph struct {
	Graph  *graph.CSR
	Layers int
}

// NewFullGraph returns a full-graph "sampler" for an L-layer model.
func NewFullGraph(g *graph.CSR, layers int) *FullGraph {
	return &FullGraph{Graph: g, Layers: layers}
}

// Name implements Sampler.
func (f *FullGraph) Name() string { return "fullgraph" }

// NumLayers implements Sampler.
func (f *FullGraph) NumLayers() int { return f.Layers }

// Sample implements Sampler: the subgraph is the whole graph, relabelled
// so the targets lead the node list.
func (f *FullGraph) Sample(_ *rand.Rand, targets []graph.NodeID) *MiniBatch {
	n := f.Graph.NumNodes
	local := make(map[graph.NodeID]int32, n)
	nodes := make([]graph.NodeID, 0, n)
	for _, v := range targets {
		if _, ok := local[v]; !ok {
			local[v] = int32(len(nodes))
			nodes = append(nodes, v)
		}
	}
	numTargets := len(nodes)
	for v := 0; v < n; v++ {
		if _, ok := local[graph.NodeID(v)]; !ok {
			local[graph.NodeID(v)] = int32(len(nodes))
			nodes = append(nodes, graph.NodeID(v))
		}
	}
	sub := induce(f.Graph, nodes, local, numTargets)
	mb := &MiniBatch{Targets: targets, Sub: sub}
	mb.Stats.InputNodes = int64(n)
	mb.Stats.SampledEdges = f.Graph.NumEdges() * int64(f.Layers)
	mb.Stats.LayerEdges = make([]int64, f.Layers)
	for l := range mb.Stats.LayerEdges {
		mb.Stats.LayerEdges[l] = f.Graph.NumEdges()
	}
	return mb
}
