package sampler

import (
	"math/rand"
	"testing"
	"testing/quick"

	"argo/internal/graph"
)

func sampleGraph(t testing.TB, seed int64) (*graph.CSR, []int32) {
	t.Helper()
	g, labels, err := graph.Generate(graph.GenSpec{
		NumNodes: 600, NumEdges: 5000, NumClasses: 4,
		Homophily: 0.6, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, labels
}

func someTargets(g *graph.CSR, n int, rng *rand.Rand) []graph.NodeID {
	targets := make([]graph.NodeID, 0, n)
	seen := map[graph.NodeID]bool{}
	for len(targets) < n {
		v := graph.NodeID(rng.Intn(g.NumNodes))
		if !seen[v] {
			seen[v] = true
			targets = append(targets, v)
		}
	}
	return targets
}

func TestNeighborBlockStructure(t *testing.T) {
	g, _ := sampleGraph(t, 1)
	ns := NewNeighbor(g, []int{15, 10, 5})
	rng := rand.New(rand.NewSource(2))
	targets := someTargets(g, 32, rng)
	mb := ns.Sample(rng, targets)

	if len(mb.Blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(mb.Blocks))
	}
	for li := range mb.Blocks {
		if err := mb.Blocks[li].Validate(); err != nil {
			t.Fatalf("block %d: %v", li, err)
		}
	}
	// The output block's destinations are exactly the targets.
	top := mb.Blocks[len(mb.Blocks)-1]
	if top.NumDst != len(targets) {
		t.Fatalf("top block has %d dst, want %d", top.NumDst, len(targets))
	}
	for i, v := range targets {
		if top.SrcNodes[i] != v {
			t.Fatalf("dst %d is %d, want target %d", i, top.SrcNodes[i], v)
		}
	}
	// Chaining: each block's src set is the next-inner block's dst set.
	for li := len(mb.Blocks) - 1; li > 0; li-- {
		outer, inner := mb.Blocks[li], mb.Blocks[li-1]
		if inner.NumDst != outer.NumSrc() {
			t.Fatalf("layer %d: inner dst %d != outer src %d", li, inner.NumDst, outer.NumSrc())
		}
		for i, v := range outer.SrcNodes {
			if inner.SrcNodes[i] != v {
				t.Fatalf("layer %d: src/dst chain broken at %d", li, i)
			}
		}
	}
	if int64(len(mb.InputNodes())) != mb.Stats.InputNodes {
		t.Fatal("Stats.InputNodes mismatch")
	}
}

func TestNeighborFanoutRespected(t *testing.T) {
	g, _ := sampleGraph(t, 3)
	fanouts := []int{7, 4, 2}
	ns := NewNeighbor(g, fanouts)
	rng := rand.New(rand.NewSource(4))
	mb := ns.Sample(rng, someTargets(g, 16, rng))
	// Blocks are in forward order; fanouts[0] applies to the layer
	// touching the targets, i.e. the LAST block.
	for bi, b := range mb.Blocks {
		f := fanouts[len(fanouts)-1-bi]
		for i := 0; i < b.NumDst; i++ {
			n := len(b.Neighbors(i))
			if n > f {
				t.Fatalf("block %d dst %d sampled %d > fanout %d", bi, i, n, f)
			}
			deg := g.Degree(b.SrcNodes[i])
			if deg <= f && n != deg {
				t.Fatalf("block %d dst %d: degree %d ≤ fanout but sampled %d", bi, i, deg, n)
			}
		}
	}
}

func TestNeighborSampledNeighborsAreRealAndDistinct(t *testing.T) {
	g, _ := sampleGraph(t, 5)
	ns := NewNeighbor(g, []int{5, 5})
	rng := rand.New(rand.NewSource(6))
	mb := ns.Sample(rng, someTargets(g, 24, rng))
	for _, b := range mb.Blocks {
		for i := 0; i < b.NumDst; i++ {
			v := b.SrcNodes[i]
			seen := map[int32]bool{}
			for _, li := range b.Neighbors(i) {
				if seen[li] {
					t.Fatalf("dst %d sampled local neighbor %d twice", i, li)
				}
				seen[li] = true
				u := b.SrcNodes[li]
				if !g.HasEdge(v, u) {
					t.Fatalf("sampled non-edge %d→%d", v, u)
				}
			}
		}
	}
}

func TestNeighborDedupSharesNodes(t *testing.T) {
	g, _ := sampleGraph(t, 7)
	rng1 := rand.New(rand.NewSource(8))
	rng2 := rand.New(rand.NewSource(8))
	targets := someTargets(g, 64, rand.New(rand.NewSource(9)))

	dedup := NewNeighbor(g, []int{10, 10})
	nodedup := &Neighbor{Graph: g, Fanouts: []int{10, 10}, Dedup: false}
	a := dedup.Sample(rng1, targets)
	b := nodedup.Sample(rng2, targets)
	if a.Stats.InputNodes >= b.Stats.InputNodes {
		t.Fatalf("dedup input nodes %d not below no-dedup %d", a.Stats.InputNodes, b.Stats.InputNodes)
	}
}

// The Fig. 5/6 property: splitting the same targets into smaller batches
// increases total sampled input nodes (less shared-neighbour reuse).
func TestWorkloadInflationWithSmallerBatches(t *testing.T) {
	g, _ := sampleGraph(t, 10)
	ns := NewNeighbor(g, []int{15, 10, 5})
	train := someTargets(g, 512, rand.New(rand.NewSource(11)))

	big := EpochWorkload(ns, train, 256, 1, 12)
	small := EpochWorkload(ns, train, 256, 8, 12)
	if small.InputNodes <= big.InputNodes {
		t.Fatalf("8-process input nodes %d not above 1-process %d", small.InputNodes, big.InputNodes)
	}
}

func TestNeighborDeterministicWithSeed(t *testing.T) {
	g, _ := sampleGraph(t, 13)
	ns := NewNeighbor(g, []int{5, 5})
	targets := someTargets(g, 16, rand.New(rand.NewSource(14)))
	a := ns.Sample(rand.New(rand.NewSource(15)), targets)
	b := ns.Sample(rand.New(rand.NewSource(15)), targets)
	if a.Stats.SampledEdges != b.Stats.SampledEdges {
		t.Fatal("same seed, different edge counts")
	}
	for li := range a.Blocks {
		ab, bb := a.Blocks[li], b.Blocks[li]
		if len(ab.Col) != len(bb.Col) {
			t.Fatal("same seed, different blocks")
		}
		for i := range ab.Col {
			if ab.Col[i] != bb.Col[i] {
				t.Fatal("same seed, different sampled columns")
			}
		}
	}
}

// Property: block invariants hold for arbitrary batch sizes and fanouts.
func TestQuickNeighborInvariants(t *testing.T) {
	g, _ := sampleGraph(t, 17)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fanouts := []int{1 + rng.Intn(8), 1 + rng.Intn(8)}
		ns := NewNeighbor(g, fanouts)
		targets := someTargets(g, 1+rng.Intn(40), rng)
		mb := ns.Sample(rng, targets)
		for _, b := range mb.Blocks {
			if b.Validate() != nil {
				return false
			}
		}
		var sum int64
		for _, e := range mb.Stats.LayerEdges {
			sum += e
		}
		return sum == mb.Stats.SampledEdges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleNeighborsLowDegreeTakesAll(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}}, false)
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]graph.NodeID, 10)
	got := sampleNeighbors(g, 0, 10, scratch, rand.New(rand.NewSource(1)))
	if len(got) != 2 {
		t.Fatalf("expected full adjacency, got %v", got)
	}
	// Zero-degree node: no neighbours, no panic.
	if got := sampleNeighbors(g, 3, 10, scratch, rand.New(rand.NewSource(1))); len(got) != 0 {
		t.Fatalf("expected empty, got %v", got)
	}
}

func TestStatsAccumulate(t *testing.T) {
	var s Stats
	s.Accumulate(Stats{InputNodes: 3, SampledEdges: 5, LayerEdges: []int64{2, 3}})
	s.Accumulate(Stats{InputNodes: 1, SampledEdges: 7, LayerEdges: []int64{3, 4}})
	if s.InputNodes != 4 || s.SampledEdges != 12 {
		t.Fatalf("accumulate totals wrong: %+v", s)
	}
	if s.LayerEdges[0] != 5 || s.LayerEdges[1] != 7 {
		t.Fatalf("layer accumulation wrong: %v", s.LayerEdges)
	}
}
