package sampler

import (
	"math/rand"

	"argo/internal/graph"
)

// FullNeighbor is the deterministic inference-time counterpart of
// Neighbor: every layer aggregates over a destination's ENTIRE
// neighborhood, in CSR (ascending id) order, with shared sources
// deduplicated within the batch. Because no sampling happens, the
// produced blocks — and therefore a model's forward pass over them —
// are a pure function of (graph, targets): a node's logits are
// bit-identical whether it is queried alone or coalesced into a batch
// with arbitrary other nodes. That invariance is what lets the serving
// path micro-batch cross-request queries and still bit-match a direct
// single-batch forward pass.
type FullNeighbor struct {
	Graph  *graph.CSR
	Layers int
}

// NewFullNeighbor returns a full-neighborhood gatherer feeding an
// L-layer model.
func NewFullNeighbor(g *graph.CSR, layers int) *FullNeighbor {
	return &FullNeighbor{Graph: g, Layers: layers}
}

// Name implements Sampler.
func (f *FullNeighbor) Name() string { return "fullneighbor" }

// NumLayers implements Sampler.
func (f *FullNeighbor) NumLayers() int { return f.Layers }

// Sample implements Sampler. The rng is ignored — the gather is
// deterministic — and may be nil.
func (f *FullNeighbor) Sample(_ *rand.Rand, targets []graph.NodeID) *MiniBatch {
	return f.SamplePruned(targets, nil)
}

// SamplePruned is Sample with frontier pruning at known nodes: a
// destination for which known returns true is not expanded — its
// adjacency row is empty and its neighborhood contributes nothing to
// the next layer's frontier. Known nodes still appear as source rows
// (other destinations aggregate over them), so the caller must inject
// their activations into the layer input before the model consumes it
// (nn.GNN.InferReuse is that seam). This is how precomputed hub
// embeddings short-circuit deep gathers: a hub's k-hop frontier — the
// scan that makes full-neighborhood serving cache-hostile — is never
// walked, because the hub's layer output is already known. Because
// full-neighborhood aggregation makes every node's per-layer activation
// a pure function of (model, graph, features, node), injecting the
// precomputed value is bit-identical to recomputing it. known may be
// nil (no pruning); targets themselves are pruned too when known, so
// callers wanting their logits must answer those targets from the
// precomputed store instead of the returned batch.
func (f *FullNeighbor) SamplePruned(targets []graph.NodeID, known func(graph.NodeID) bool) *MiniBatch {
	mb := &MiniBatch{Targets: targets}
	mb.Blocks = make([]Block, f.Layers)
	mb.Stats.LayerEdges = make([]int64, f.Layers)
	dst := targets
	for li := f.Layers - 1; li >= 0; li-- {
		b := buildFullBlock(f.Graph, dst, known)
		mb.Blocks[li] = b
		mb.Stats.LayerEdges[li] = int64(b.NumEdges())
		mb.Stats.SampledEdges += int64(b.NumEdges())
		dst = b.SrcNodes
	}
	mb.Stats.InputNodes = int64(len(mb.Blocks[0].SrcNodes))
	return mb
}

// buildFullBlock is buildBlock without the reservoir: every neighbour of
// every dst, in adjacency order, deduplicated across the batch. A dst
// for which known returns true gets an empty adjacency row (see
// SamplePruned); known may be nil.
func buildFullBlock(g *graph.CSR, dst []graph.NodeID, known func(graph.NodeID) bool) Block {
	b := Block{NumDst: len(dst)}
	b.SrcNodes = make([]graph.NodeID, len(dst), len(dst)*2)
	copy(b.SrcNodes, dst)
	b.RowPtr = make([]int32, len(dst)+1)
	local := make(map[graph.NodeID]int32, len(dst)*2)
	for i, v := range dst {
		local[v] = int32(i)
	}
	for i, v := range dst {
		if known == nil || !known(v) {
			for _, u := range g.Neighbors(v) {
				j, ok := local[u]
				if !ok {
					j = int32(len(b.SrcNodes))
					b.SrcNodes = append(b.SrcNodes, u)
					local[u] = j
				}
				b.Col = append(b.Col, j)
			}
		}
		b.RowPtr[i+1] = int32(len(b.Col))
	}
	return b
}
