// Package sampler implements the two mini-batch GNN sampling algorithms
// the paper evaluates: layered Neighbor Sampling (GraphSAGE-style fanout
// sampling producing message-flow-graph blocks) and ShaDow sampling
// (localized L'-hop subgraph extraction). Both deduplicate shared
// neighbours within a batch, which is the mechanism behind the paper's
// Fig. 5/6 workload-inflation effect: smaller mini-batches share fewer
// neighbours, so the total sampled workload per epoch grows with the
// number of ARGO processes.
package sampler

import (
	"fmt"

	"argo/internal/graph"
)

// Block is one layer of a message-flow graph (the analogue of a DGL MFG).
// SrcNodes holds global node IDs; by construction its first NumDst entries
// are the destination nodes themselves, so a destination's own previous-
// layer representation is always available to the model (GraphSAGE concat,
// GCN self term). Adjacency is stored dst-major in local src indices.
type Block struct {
	SrcNodes []graph.NodeID // global IDs; SrcNodes[:NumDst] are the dst nodes
	NumDst   int
	RowPtr   []int32 // len NumDst+1
	Col      []int32 // local indices into SrcNodes
}

// NumSrc returns the number of source nodes feeding this block.
func (b *Block) NumSrc() int { return len(b.SrcNodes) }

// NumEdges returns the number of sampled message edges in the block.
func (b *Block) NumEdges() int { return len(b.Col) }

// Neighbors returns the local src indices aggregated by local dst i.
func (b *Block) Neighbors(i int) []int32 {
	return b.Col[b.RowPtr[i]:b.RowPtr[i+1]]
}

// Validate checks the block's structural invariants.
func (b *Block) Validate() error {
	if b.NumDst > len(b.SrcNodes) {
		return fmt.Errorf("sampler: block has %d dst > %d src", b.NumDst, len(b.SrcNodes))
	}
	if len(b.RowPtr) != b.NumDst+1 || b.RowPtr[0] != 0 {
		return fmt.Errorf("sampler: bad RowPtr")
	}
	for i := 0; i < b.NumDst; i++ {
		if b.RowPtr[i+1] < b.RowPtr[i] {
			return fmt.Errorf("sampler: RowPtr not monotone at %d", i)
		}
	}
	if int(b.RowPtr[b.NumDst]) != len(b.Col) {
		return fmt.Errorf("sampler: RowPtr end %d != len(Col) %d", b.RowPtr[b.NumDst], len(b.Col))
	}
	for _, c := range b.Col {
		if c < 0 || int(c) >= len(b.SrcNodes) {
			return fmt.Errorf("sampler: column %d out of range", c)
		}
	}
	return nil
}

// Subgraph is a ShaDow-sampled induced subgraph in local CSR form. The
// first NumTargets nodes are the batch targets (readout rows).
type Subgraph struct {
	Nodes      []graph.NodeID // global IDs; Nodes[:NumTargets] are targets
	NumTargets int
	RowPtr     []int32
	Col        []int32 // local indices into Nodes
}

// NumEdges returns the induced arc count.
func (s *Subgraph) NumEdges() int { return len(s.Col) }

// Neighbors returns the local adjacency of local node i.
func (s *Subgraph) Neighbors(i int) []int32 {
	return s.Col[s.RowPtr[i]:s.RowPtr[i+1]]
}

// Validate checks the subgraph's structural invariants.
func (s *Subgraph) Validate() error {
	n := len(s.Nodes)
	if s.NumTargets > n {
		return fmt.Errorf("sampler: subgraph has %d targets > %d nodes", s.NumTargets, n)
	}
	if len(s.RowPtr) != n+1 || s.RowPtr[0] != 0 {
		return fmt.Errorf("sampler: bad subgraph RowPtr")
	}
	for i := 0; i < n; i++ {
		if s.RowPtr[i+1] < s.RowPtr[i] {
			return fmt.Errorf("sampler: subgraph RowPtr not monotone at %d", i)
		}
	}
	if int(s.RowPtr[n]) != len(s.Col) {
		return fmt.Errorf("sampler: subgraph RowPtr end mismatch")
	}
	for _, c := range s.Col {
		if c < 0 || int(c) >= n {
			return fmt.Errorf("sampler: subgraph column %d out of range", c)
		}
	}
	return nil
}

// MiniBatch is one sampled unit of work: either a stack of blocks
// (Neighbor Sampling) or an induced subgraph (ShaDow), never both.
type MiniBatch struct {
	Targets []graph.NodeID
	Blocks  []Block   // forward order: Blocks[0] is consumed by GNN layer 0
	Sub     *Subgraph // non-nil for ShaDow batches
	Stats   Stats
}

// InputNodes returns the global IDs whose features must be gathered to
// run the model on this batch.
func (mb *MiniBatch) InputNodes() []graph.NodeID {
	if mb.Sub != nil {
		return mb.Sub.Nodes
	}
	if len(mb.Blocks) == 0 {
		return mb.Targets
	}
	return mb.Blocks[0].SrcNodes
}

// Stats accumulates the sampling workload of a batch (or an epoch, via
// Accumulate). SampledEdges is the quantity the paper plots in Fig. 6.
type Stats struct {
	InputNodes   int64
	SampledEdges int64
	LayerEdges   []int64
}

// Accumulate adds other into s, summing layer counts positionally.
func (s *Stats) Accumulate(other Stats) {
	s.InputNodes += other.InputNodes
	s.SampledEdges += other.SampledEdges
	for len(s.LayerEdges) < len(other.LayerEdges) {
		s.LayerEdges = append(s.LayerEdges, 0)
	}
	for i, e := range other.LayerEdges {
		s.LayerEdges[i] += e
	}
}
