package sampler

import (
	"reflect"
	"testing"

	"argo/internal/graph"
)

func fullNeighborGraph(t *testing.T) *graph.CSR {
	t.Helper()
	g, err := graph.FromEdges(8, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3},
		{Src: 3, Dst: 4}, {Src: 4, Dst: 5}, {Src: 5, Dst: 6}, {Src: 6, Dst: 7},
		{Src: 1, Dst: 7}, {Src: 2, Dst: 6},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Every neighbour must appear, in CSR order, at every layer; blocks
// validate; and the gather is deterministic without an rng.
func TestFullNeighborGatherIsCompleteAndDeterministic(t *testing.T) {
	g := fullNeighborGraph(t)
	fn := NewFullNeighbor(g, 2)
	targets := []graph.NodeID{3, 0}
	mb := fn.Sample(nil, targets)
	if len(mb.Blocks) != 2 {
		t.Fatalf("%d blocks", len(mb.Blocks))
	}
	for li, b := range mb.Blocks {
		if err := b.Validate(); err != nil {
			t.Fatalf("block %d: %v", li, err)
		}
		for i := 0; i < b.NumDst; i++ {
			v := b.SrcNodes[i]
			var got []graph.NodeID
			for _, j := range b.Neighbors(i) {
				got = append(got, b.SrcNodes[j])
			}
			want := g.Neighbors(v)
			if !reflect.DeepEqual(got, append([]graph.NodeID(nil), want...)) {
				t.Fatalf("layer %d dst %d: neighbours %v, want %v", li, v, got, want)
			}
		}
	}
	again := fn.Sample(nil, targets)
	if !reflect.DeepEqual(mb.Blocks, again.Blocks) {
		t.Fatal("full-neighbor gather is not deterministic")
	}
}

// The serving invariance: a target's layer structure (its neighbour
// global-id lists at every layer) is independent of which other targets
// share the batch.
func TestFullNeighborBatchCompositionInvariance(t *testing.T) {
	g := fullNeighborGraph(t)
	fn := NewFullNeighbor(g, 2)
	neighborsOf := func(mb *MiniBatch, li, dstIdx int) []graph.NodeID {
		b := mb.Blocks[li]
		var out []graph.NodeID
		for _, j := range b.Neighbors(dstIdx) {
			out = append(out, b.SrcNodes[j])
		}
		return out
	}
	alone := fn.Sample(nil, []graph.NodeID{5})
	batched := fn.Sample(nil, []graph.NodeID{2, 5, 7})
	for li := range alone.Blocks {
		// Node 5 is dst 0 alone, dst 1 in the batch.
		if !reflect.DeepEqual(neighborsOf(alone, li, 0), neighborsOf(batched, li, 1)) {
			t.Fatalf("layer %d: node 5's neighbourhood depends on batch composition", li)
		}
	}
}
