package sampler

import (
	"math/rand"

	"argo/internal/graph"
)

// Sampler produces a MiniBatch for a set of target nodes. Implementations
// must be safe for concurrent use from multiple sampling workers as long
// as each call receives its own *rand.Rand.
type Sampler interface {
	// Sample builds the mini-batch for the given targets.
	Sample(rng *rand.Rand, targets []graph.NodeID) *MiniBatch
	// Name identifies the algorithm ("neighbor", "shadow").
	Name() string
	// NumLayers returns how many GNN layers the produced batches feed.
	NumLayers() int
}

// Neighbor implements layered neighbor sampling (Hamilton et al., the
// paper's Neighbor Sampler). For an L-layer model with Fanouts
// [f_L, ..., f_1] it repeats L times: for every node in the current
// frontier, sample up to f distinct neighbours; the union (deduplicated
// when Dedup is true) becomes the next frontier.
//
// Dedup is exported so the workload-inflation ablation can switch the
// shared-neighbour reuse off; production use always sets it true.
type Neighbor struct {
	Graph   *graph.CSR
	Fanouts []int // Fanouts[0] applies to the layer touching the targets
	Dedup   bool
}

// NewNeighbor returns a deduplicating neighbor sampler. The paper's
// configuration is fanouts [15, 10, 5] for a three-layer model.
func NewNeighbor(g *graph.CSR, fanouts []int) *Neighbor {
	return &Neighbor{Graph: g, Fanouts: fanouts, Dedup: true}
}

// Name implements Sampler.
func (ns *Neighbor) Name() string { return "neighbor" }

// NumLayers implements Sampler.
func (ns *Neighbor) NumLayers() int { return len(ns.Fanouts) }

// Sample implements Sampler. Blocks are returned in forward order:
// Blocks[0] consumes raw features, Blocks[L-1] produces target outputs.
func (ns *Neighbor) Sample(rng *rand.Rand, targets []graph.NodeID) *MiniBatch {
	mb := &MiniBatch{Targets: targets}
	mb.Blocks = make([]Block, len(ns.Fanouts))
	mb.Stats.LayerEdges = make([]int64, len(ns.Fanouts))

	dst := targets
	// Build from the output layer inwards: block index L-1 down to 0.
	for li := len(ns.Fanouts) - 1; li >= 0; li-- {
		fanout := ns.Fanouts[len(ns.Fanouts)-1-li]
		b := buildBlock(ns.Graph, dst, fanout, ns.Dedup, rng, sampleNeighbors)
		mb.Blocks[li] = b
		mb.Stats.LayerEdges[li] = int64(b.NumEdges())
		mb.Stats.SampledEdges += int64(b.NumEdges())
		dst = b.SrcNodes
	}
	mb.Stats.InputNodes = int64(len(mb.Blocks[0].SrcNodes))
	return mb
}

// pickFunc draws up to fanout neighbours of v into scratch (capacity ≥
// fanout). Implementations must be deterministic functions of (v, rng
// state) so the produced blocks depend only on the job seed.
type pickFunc func(g *graph.CSR, v graph.NodeID, fanout int, scratch []graph.NodeID, rng *rand.Rand) []graph.NodeID

// buildBlock samples up to fanout distinct neighbours for every dst node
// (via pick) and compacts the result into a Block. With dedup enabled,
// source nodes shared between destinations are stored once (the reuse
// the paper's Fig. 5 illustrates); without it every occurrence is
// materialised.
func buildBlock(g *graph.CSR, dst []graph.NodeID, fanout int, dedup bool, rng *rand.Rand, pick pickFunc) Block {
	b := Block{NumDst: len(dst)}
	b.SrcNodes = make([]graph.NodeID, len(dst), len(dst)+len(dst)*fanout/2)
	copy(b.SrcNodes, dst)
	b.RowPtr = make([]int32, len(dst)+1)

	var local map[graph.NodeID]int32
	if dedup {
		local = make(map[graph.NodeID]int32, len(dst)*2)
		for i, v := range dst {
			local[v] = int32(i)
		}
	}
	scratch := make([]graph.NodeID, fanout)
	b.Col = make([]int32, 0, len(dst)*fanout/2)
	for i, v := range dst {
		picked := pick(g, v, fanout, scratch, rng)
		for _, u := range picked {
			var idx int32
			if dedup {
				j, ok := local[u]
				if !ok {
					j = int32(len(b.SrcNodes))
					b.SrcNodes = append(b.SrcNodes, u)
					local[u] = j
				}
				idx = j
			} else {
				idx = int32(len(b.SrcNodes))
				b.SrcNodes = append(b.SrcNodes, u)
			}
			b.Col = append(b.Col, idx)
		}
		b.RowPtr[i+1] = int32(len(b.Col))
	}
	return b
}

// sampleNeighbors draws up to fanout distinct neighbours of v into
// scratch, which must have capacity ≥ fanout. If v's degree is at most
// fanout, all neighbours are returned (no sampling).
func sampleNeighbors(g *graph.CSR, v graph.NodeID, fanout int, scratch []graph.NodeID, rng *rand.Rand) []graph.NodeID {
	adj := g.Neighbors(v)
	if len(adj) <= fanout {
		return adj
	}
	// Reservoir sampling over the adjacency list: distinct by
	// construction, O(degree) time, no allocation.
	out := scratch[:fanout]
	copy(out, adj[:fanout])
	for i := fanout; i < len(adj); i++ {
		j := rng.Intn(i + 1)
		if j < fanout {
			out[j] = adj[i]
		}
	}
	return out
}
