package sampler

import (
	"math/bits"
	"math/rand"

	"argo/internal/graph"
)

// Partition implements partition-local neighbor sampling (the
// Cluster-GCN regime from "Accurate, Efficient and Scalable Training of
// GNNs", PAPERS.md): layered neighbor sampling identical to Neighbor,
// except the frontier is bounded to an allowed node set — a shard's
// owned rows plus its 1-hop halo. Neighbours outside the set are
// skipped as if the edge did not exist, so a replica's mini-batches
// only ever reference rows resident on (or haloed to) its shard and
// the per-batch halo exchange shrinks to the boundary rows actually
// touched.
//
// Sampling is a deterministic function of (targets, rng state): the
// filtered reservoir consumes randomness only for allowed neighbours
// beyond the fanout, and when every neighbour of every frontier node is
// allowed it consumes the rng in exactly the same pattern as Neighbor,
// producing bit-identical blocks.
type Partition struct {
	Graph   *graph.CSR
	Fanouts []int // Fanouts[0] applies to the layer touching the targets
	Dedup   bool

	allowed []uint64 // bitset over global node ids
}

// NewPartition returns a deduplicating partition-local sampler over the
// global topology g, restricted to the given allowed node sets
// (typically a ShardMap's Owned and Halo lists; duplicates are fine).
func NewPartition(g *graph.CSR, fanouts []int, allowed ...[]graph.NodeID) *Partition {
	ps := &Partition{
		Graph:   g,
		Fanouts: fanouts,
		Dedup:   true,
		allowed: make([]uint64, (int(g.NumNodes)+63)/64),
	}
	for _, set := range allowed {
		for _, v := range set {
			ps.allowed[v>>6] |= 1 << (uint(v) & 63)
		}
	}
	return ps
}

// Allowed reports whether node v is inside the partition-local set.
func (ps *Partition) Allowed(v graph.NodeID) bool {
	return ps.allowed[v>>6]&(1<<(uint(v)&63)) != 0
}

// AllowedCount returns the number of nodes in the allowed set.
func (ps *Partition) AllowedCount() int {
	n := 0
	for _, w := range ps.allowed {
		n += bits.OnesCount64(w)
	}
	return n
}

// Name implements Sampler.
func (ps *Partition) Name() string { return "partition" }

// NumLayers implements Sampler.
func (ps *Partition) NumLayers() int { return len(ps.Fanouts) }

// Sample implements Sampler. Targets must lie inside the allowed set
// (the engine draws them from the shard's owned train nodes); frontier
// expansion never leaves the set.
func (ps *Partition) Sample(rng *rand.Rand, targets []graph.NodeID) *MiniBatch {
	mb := &MiniBatch{Targets: targets}
	mb.Blocks = make([]Block, len(ps.Fanouts))
	mb.Stats.LayerEdges = make([]int64, len(ps.Fanouts))

	dst := targets
	for li := len(ps.Fanouts) - 1; li >= 0; li-- {
		fanout := ps.Fanouts[len(ps.Fanouts)-1-li]
		b := buildBlock(ps.Graph, dst, fanout, ps.Dedup, rng, ps.pick)
		mb.Blocks[li] = b
		mb.Stats.LayerEdges[li] = int64(b.NumEdges())
		mb.Stats.SampledEdges += int64(b.NumEdges())
		dst = b.SrcNodes
	}
	mb.Stats.InputNodes = int64(len(mb.Blocks[0].SrcNodes))
	return mb
}

// pick draws up to fanout distinct allowed neighbours of v via a
// filtered reservoir. For the k-th allowed neighbour (1-based) beyond
// the fanout it draws rng.Intn(k) — exactly the stream sampleNeighbors
// draws when nothing is filtered — and it consumes no randomness when
// at most fanout neighbours are allowed.
func (ps *Partition) pick(g *graph.CSR, v graph.NodeID, fanout int, scratch []graph.NodeID, rng *rand.Rand) []graph.NodeID {
	adj := g.Neighbors(v)
	out := scratch[:0]
	seen := 0
	for _, u := range adj {
		if !ps.Allowed(u) {
			continue
		}
		seen++
		if len(out) < fanout {
			out = append(out, u)
			continue
		}
		if j := rng.Intn(seen); j < fanout {
			out[j] = u
		}
	}
	return out
}
