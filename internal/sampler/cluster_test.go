package sampler

import (
	"math/rand"
	"testing"

	"argo/internal/graph"
)

func TestClusterSamplerStructure(t *testing.T) {
	g, _ := sampleGraph(t, 40)
	cs := NewCluster(g, 8, 3)
	rng := rand.New(rand.NewSource(2))
	targets := someTargets(g, 12, rng)
	mb := cs.Sample(rng, targets)

	if mb.Sub == nil {
		t.Fatal("cluster batches carry a Subgraph")
	}
	if err := mb.Sub.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, v := range targets {
		if mb.Sub.Nodes[i] != v {
			t.Fatalf("target %d not at position %d", v, i)
		}
	}
	if cs.Name() != "cluster" || cs.NumLayers() != 3 {
		t.Fatal("metadata wrong")
	}
}

// Every non-target node in the batch must belong to a target's cluster.
func TestClusterSamplerPullsWholeClusters(t *testing.T) {
	g, _ := sampleGraph(t, 41)
	cs := NewCluster(g, 6, 2)
	cs.MaxClusterNodes = 0 // unbounded: exact cluster unions
	rng := rand.New(rand.NewSource(4))
	targets := someTargets(g, 5, rng)
	mb := cs.Sample(rng, targets)

	targetClusters := map[int32]bool{}
	for _, v := range targets {
		targetClusters[cs.Part.Assign[v]] = true
	}
	// Membership check: every batch node is in a target cluster...
	for _, v := range mb.Sub.Nodes {
		if !targetClusters[cs.Part.Assign[v]] {
			t.Fatalf("node %d from cluster %d not in target clusters", v, cs.Part.Assign[v])
		}
	}
	// ...and every member of every target cluster is in the batch.
	want := 0
	for p := range targetClusters {
		want += len(cs.members[p])
	}
	if len(mb.Sub.Nodes) != want {
		t.Fatalf("batch has %d nodes, cluster union has %d", len(mb.Sub.Nodes), want)
	}
}

func TestClusterSamplerSubsamplesHugeClusters(t *testing.T) {
	g, _ := sampleGraph(t, 42)
	cs := NewCluster(g, 2, 2) // two big clusters (~300 nodes each)
	cs.MaxClusterNodes = 50
	rng := rand.New(rand.NewSource(6))
	targets := someTargets(g, 4, rng)
	mb := cs.Sample(rng, targets)
	// At most: targets + 2 clusters × 50 subsampled members.
	if len(mb.Sub.Nodes) > 4+2*50 {
		t.Fatalf("subsampling bound violated: %d nodes", len(mb.Sub.Nodes))
	}
}

func TestClusterInducedEdgesReal(t *testing.T) {
	g, _ := sampleGraph(t, 43)
	cs := NewCluster(g, 8, 2)
	rng := rand.New(rand.NewSource(8))
	mb := cs.Sample(rng, someTargets(g, 8, rng))
	for i := range mb.Sub.Nodes {
		for _, j := range mb.Sub.Neighbors(i) {
			if !g.HasEdge(mb.Sub.Nodes[i], mb.Sub.Nodes[j]) {
				t.Fatal("induced non-edge")
			}
		}
	}
}

func TestSaintRWStructure(t *testing.T) {
	g, _ := sampleGraph(t, 44)
	srw := NewSaintRW(g, 3, 4, 2)
	rng := rand.New(rand.NewSource(9))
	targets := someTargets(g, 10, rng)
	mb := srw.Sample(rng, targets)
	if err := mb.Sub.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, v := range targets {
		if mb.Sub.Nodes[i] != v {
			t.Fatalf("target %d not leading the node list", v)
		}
	}
	if srw.Name() != "saint-rw" || srw.NumLayers() != 2 {
		t.Fatal("metadata wrong")
	}
}

// Walk-visited nodes bound: targets + walks × length.
func TestSaintRWSizeBound(t *testing.T) {
	g, _ := sampleGraph(t, 45)
	srw := NewSaintRW(g, 2, 5, 2)
	rng := rand.New(rand.NewSource(10))
	targets := someTargets(g, 6, rng)
	mb := srw.Sample(rng, targets)
	bound := len(targets) * (1 + 2*5)
	if len(mb.Sub.Nodes) > bound {
		t.Fatalf("subgraph has %d nodes, walk bound %d", len(mb.Sub.Nodes), bound)
	}
}

// Walks follow edges: every non-target node must be reachable from some
// target within WalkLen hops (weak check: it has an in-batch neighbour).
func TestSaintRWConnectivity(t *testing.T) {
	g, _ := sampleGraph(t, 46)
	srw := NewSaintRW(g, 4, 3, 2)
	rng := rand.New(rand.NewSource(11))
	targets := someTargets(g, 6, rng)
	mb := srw.Sample(rng, targets)
	isTarget := map[graph.NodeID]bool{}
	for _, v := range targets {
		isTarget[v] = true
	}
	for i, v := range mb.Sub.Nodes {
		if isTarget[v] {
			continue
		}
		if len(mb.Sub.Neighbors(i)) == 0 {
			// A walked-to node always has at least the edge it was
			// reached through, unless that predecessor was dropped —
			// impossible since walks only add nodes.
			t.Fatalf("walk node %d is isolated in the subgraph", v)
		}
	}
}

func TestSaintRWDeterministic(t *testing.T) {
	g, _ := sampleGraph(t, 47)
	srw := NewSaintRW(g, 3, 4, 2)
	targets := someTargets(g, 8, rand.New(rand.NewSource(12)))
	a := srw.Sample(rand.New(rand.NewSource(13)), targets)
	b := srw.Sample(rand.New(rand.NewSource(13)), targets)
	if len(a.Sub.Nodes) != len(b.Sub.Nodes) {
		t.Fatal("same seed, different subgraphs")
	}
	for i := range a.Sub.Nodes {
		if a.Sub.Nodes[i] != b.Sub.Nodes[i] {
			t.Fatal("same seed, different node order")
		}
	}
}

func TestFullGraphSampler(t *testing.T) {
	g, _ := sampleGraph(t, 50)
	fg := NewFullGraph(g, 2)
	rng := rand.New(rand.NewSource(14))
	targets := someTargets(g, 7, rng)
	mb := fg.Sample(rng, targets)
	if err := mb.Sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(mb.Sub.Nodes) != g.NumNodes {
		t.Fatalf("full graph batch has %d nodes, want %d", len(mb.Sub.Nodes), g.NumNodes)
	}
	if int64(mb.Sub.NumEdges()) != g.NumEdges() {
		t.Fatalf("induced %d edges, graph has %d", mb.Sub.NumEdges(), g.NumEdges())
	}
	for i, v := range targets {
		if mb.Sub.Nodes[i] != v {
			t.Fatal("targets must lead the node list")
		}
	}
	if fg.Name() != "fullgraph" || fg.NumLayers() != 2 {
		t.Fatal("metadata wrong")
	}
}
