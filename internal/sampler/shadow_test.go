package sampler

import (
	"math/rand"
	"testing"
	"testing/quick"

	"argo/internal/graph"
)

func TestShaDowSubgraphStructure(t *testing.T) {
	g, _ := sampleGraph(t, 20)
	sh := NewShaDow(g, []int{10, 5}, 3)
	rng := rand.New(rand.NewSource(21))
	targets := someTargets(g, 16, rng)
	mb := sh.Sample(rng, targets)

	if mb.Sub == nil || mb.Blocks != nil {
		t.Fatal("ShaDow batches must carry a Subgraph, not Blocks")
	}
	if err := mb.Sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if mb.Sub.NumTargets != len(targets) {
		t.Fatalf("NumTargets = %d, want %d", mb.Sub.NumTargets, len(targets))
	}
	for i, v := range targets {
		if mb.Sub.Nodes[i] != v {
			t.Fatalf("target %d not at subgraph position %d", v, i)
		}
	}
}

func TestShaDowInducedEdgesAreReal(t *testing.T) {
	g, _ := sampleGraph(t, 22)
	sh := NewShaDow(g, []int{5, 3}, 2)
	rng := rand.New(rand.NewSource(23))
	mb := sh.Sample(rng, someTargets(g, 8, rng))
	sub := mb.Sub
	for i := range sub.Nodes {
		v := sub.Nodes[i]
		for _, lj := range sub.Neighbors(i) {
			u := sub.Nodes[lj]
			if !g.HasEdge(v, u) {
				t.Fatalf("induced non-edge %d→%d", v, u)
			}
		}
	}
}

// ShaDow must include *every* arc between included nodes (it is an induced
// subgraph, not a sampled one).
func TestShaDowInducedCompleteness(t *testing.T) {
	g, _ := sampleGraph(t, 24)
	sh := NewShaDow(g, []int{4, 3}, 2)
	rng := rand.New(rand.NewSource(25))
	mb := sh.Sample(rng, someTargets(g, 8, rng))
	sub := mb.Sub
	inSet := make(map[graph.NodeID]int32, len(sub.Nodes))
	for i, v := range sub.Nodes {
		inSet[v] = int32(i)
	}
	for i, v := range sub.Nodes {
		want := 0
		for _, u := range g.Neighbors(v) {
			if _, ok := inSet[u]; ok {
				want++
			}
		}
		if got := len(sub.Neighbors(i)); got != want {
			t.Fatalf("node %d induced degree %d, want %d", v, got, want)
		}
	}
}

// The ShaDow selling point: subgraph size is bounded by the expansion
// fanouts regardless of model depth (no neighbour explosion).
func TestShaDowBoundedByFanouts(t *testing.T) {
	g, _ := sampleGraph(t, 26)
	rng := rand.New(rand.NewSource(27))
	targets := someTargets(g, 10, rng)
	sh := NewShaDow(g, []int{4, 3}, 3)
	mb := sh.Sample(rng, targets)
	// Worst case: 10 targets × (1 + 4 + 4·3) = 170 nodes.
	bound := len(targets) * (1 + 4 + 4*3)
	if len(mb.Sub.Nodes) > bound {
		t.Fatalf("subgraph has %d nodes, bound %d", len(mb.Sub.Nodes), bound)
	}
}

func TestShaDowDuplicateTargets(t *testing.T) {
	g, _ := sampleGraph(t, 28)
	sh := NewShaDow(g, []int{3, 2}, 2)
	rng := rand.New(rand.NewSource(29))
	v := graph.NodeID(5)
	mb := sh.Sample(rng, []graph.NodeID{v, v, v})
	if mb.Sub.NumTargets != 1 {
		t.Fatalf("duplicate targets must collapse: NumTargets = %d", mb.Sub.NumTargets)
	}
}

func TestShaDowStats(t *testing.T) {
	g, _ := sampleGraph(t, 30)
	layers := 3
	sh := NewShaDow(g, []int{5, 3}, layers)
	rng := rand.New(rand.NewSource(31))
	mb := sh.Sample(rng, someTargets(g, 12, rng))
	if mb.Stats.InputNodes != int64(len(mb.Sub.Nodes)) {
		t.Fatal("InputNodes must equal subgraph size")
	}
	// The GNN touches every induced edge once per layer.
	want := int64(mb.Sub.NumEdges()) * int64(layers)
	if mb.Stats.SampledEdges != want {
		t.Fatalf("SampledEdges = %d, want %d", mb.Stats.SampledEdges, want)
	}
	if len(mb.Stats.LayerEdges) != layers {
		t.Fatalf("LayerEdges has %d entries, want %d", len(mb.Stats.LayerEdges), layers)
	}
}

// Property: subgraph invariants hold for arbitrary targets/fanouts, and
// targets always lead the node list.
func TestQuickShaDowInvariants(t *testing.T) {
	g, _ := sampleGraph(t, 32)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sh := NewShaDow(g, []int{1 + rng.Intn(6), 1 + rng.Intn(4)}, 2)
		targets := someTargets(g, 1+rng.Intn(20), rng)
		mb := sh.Sample(rng, targets)
		if mb.Sub.Validate() != nil {
			return false
		}
		for i, v := range targets {
			if mb.Sub.Nodes[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestShaDowNameAndLayers(t *testing.T) {
	g, _ := sampleGraph(t, 33)
	sh := NewShaDow(g, []int{10, 5}, 3)
	if sh.Name() != "shadow" || sh.NumLayers() != 3 {
		t.Fatal("metadata wrong")
	}
	ns := NewNeighbor(g, []int{15, 10, 5})
	if ns.Name() != "neighbor" || ns.NumLayers() != 3 {
		t.Fatal("metadata wrong")
	}
}
