package sampler

import (
	"reflect"
	"testing"

	"argo/internal/graph"
)

// SamplePruned with a nil predicate must be exactly Sample.
func TestSamplePrunedNilIsSample(t *testing.T) {
	g := fullNeighborGraph(t)
	fn := NewFullNeighbor(g, 2)
	targets := []graph.NodeID{3, 0}
	a := fn.Sample(nil, targets)
	b := fn.SamplePruned(targets, nil)
	if !reflect.DeepEqual(a.Blocks, b.Blocks) {
		t.Fatal("SamplePruned(nil) diverges from Sample")
	}
}

// A known node must appear as a source (others aggregate over it) but
// never as an expanded destination: empty adjacency row, none of its
// neighbours pulled into the next frontier on its account.
func TestSamplePrunedStopsFrontierAtKnownNodes(t *testing.T) {
	g := fullNeighborGraph(t)
	fn := NewFullNeighbor(g, 2)
	hub := graph.NodeID(2) // degree-4 node on this fixture
	known := func(v graph.NodeID) bool { return v == hub }
	mb := fn.SamplePruned([]graph.NodeID{3, 0}, known)
	for li, b := range mb.Blocks {
		if err := b.Validate(); err != nil {
			t.Fatalf("block %d: %v", li, err)
		}
		for i := 0; i < b.NumDst; i++ {
			v := b.SrcNodes[i]
			nbrs := b.Neighbors(i)
			if v == hub {
				if len(nbrs) != 0 {
					t.Fatalf("layer %d: pruned hub %d has %d neighbours, want 0", li, v, len(nbrs))
				}
				continue
			}
			var got []graph.NodeID
			for _, j := range nbrs {
				got = append(got, b.SrcNodes[j])
			}
			want := append([]graph.NodeID(nil), g.Neighbors(v)...)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("layer %d dst %d: neighbours %v, want %v (pruning must not disturb unknown rows)", li, v, got, want)
			}
		}
	}
	// The hub is adjacent to target 3, so it must still be a source of
	// the top block — present for aggregation, just not expanded.
	top := mb.Blocks[len(mb.Blocks)-1]
	found := false
	for _, v := range top.SrcNodes {
		if v == hub {
			found = true
		}
	}
	if !found {
		t.Fatal("pruned hub missing from the source set it is aggregated from")
	}
	// Pruning shrinks the gathered frontier on this fixture.
	full := fn.Sample(nil, []graph.NodeID{3, 0})
	if got, was := len(mb.Blocks[0].SrcNodes), len(full.Blocks[0].SrcNodes); got >= was {
		t.Fatalf("pruned input frontier %d not smaller than full %d", got, was)
	}
	if mb.Stats.SampledEdges >= full.Stats.SampledEdges {
		t.Fatalf("pruned edges %d not fewer than full %d", mb.Stats.SampledEdges, full.Stats.SampledEdges)
	}
}

// A known target is itself pruned: the caller answers it from the
// precomputed store, so the gather must not walk its frontier.
func TestSamplePrunedKnownTargetNotExpanded(t *testing.T) {
	g := fullNeighborGraph(t)
	fn := NewFullNeighbor(g, 2)
	known := func(v graph.NodeID) bool { return v == 3 }
	mb := fn.SamplePruned([]graph.NodeID{3}, known)
	for li, b := range mb.Blocks {
		if b.NumEdges() != 0 {
			t.Fatalf("layer %d: %d edges gathered for a fully known target", li, b.NumEdges())
		}
		if len(b.SrcNodes) != 1 || b.SrcNodes[0] != 3 {
			t.Fatalf("layer %d: src %v, want just the target", li, b.SrcNodes)
		}
	}
}
