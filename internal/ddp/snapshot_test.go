package ddp

import (
	"testing"

	"argo/internal/graph"
)

// TestHaloStatsSub: Sub inverts Add field by field.
func TestHaloStatsSub(t *testing.T) {
	a := HaloStats{LocalRows: 10, RemoteRows: 4, RemoteBytes: 320, WireBytes: 400, Messages: 3, GradRows: 2}
	b := HaloStats{LocalRows: 3, RemoteRows: 1, RemoteBytes: 80, WireBytes: 96, Messages: 1, GradRows: 1}
	sum := a
	sum.Add(b)
	sum.Sub(b)
	if sum != a {
		t.Fatalf("Add then Sub is not identity: %+v vs %+v", sum, a)
	}
}

// TestHaloExchangeSnapshot: Snapshot returns the delta since the last
// call while the cumulative counters keep growing untouched.
func TestHaloExchangeSnapshot(t *testing.T) {
	ex := twoReplicaExchange(t, 100)
	defer ex.Close()

	ids := []graph.NodeID{0, 1, 2, 3, 4}
	if _, err := ex.GatherFeatures(0, ids); err != nil {
		t.Fatal(err)
	}
	afterFirst := ex.TotalStats()
	first := ex.Snapshot()
	if first != afterFirst {
		t.Fatalf("first snapshot %+v should equal the cumulative total %+v", first, afterFirst)
	}

	// A quiet interval snapshots as zero.
	if quiet := ex.Snapshot(); quiet != (HaloStats{}) {
		t.Fatalf("idle interval snapshot is non-zero: %+v", quiet)
	}

	// More traffic: the next snapshot carries only the new interval.
	if _, err := ex.TargetLabels(1, ids); err != nil {
		t.Fatal(err)
	}
	second := ex.Snapshot()
	want := ex.TotalStats()
	want.Sub(afterFirst)
	if second != want {
		t.Fatalf("interval snapshot %+v, want %+v", second, want)
	}

	// The cumulative view never reset.
	total := ex.TotalStats()
	check := afterFirst
	check.Add(second)
	if total != check {
		t.Fatalf("cumulative total %+v lost history (want %+v)", total, check)
	}
}
