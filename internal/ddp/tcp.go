package ddp

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPTransport frames batched exchange messages over loopback TCP: one
// listener per replica, one persistent connection per (caller, callee)
// pair, length-prefixed frames in both directions. Every replica still
// lives in this process — the point is the seam: the exact bytes this
// transport moves are what a true multi-host deployment would move, and
// the loss parity tests prove the batched protocol carries training
// bit-exactly through a real socket round-trip.
type TCPTransport struct {
	mu        sync.Mutex
	listeners []net.Listener
	addrs     []string
	conns     map[[2]int]*tcpConn
	handlers  []Handler
	closed    bool
	serving   sync.WaitGroup
}

// tcpConn is one caller→callee connection, serialised by its own lock
// so concurrent calls from a replica's sampling workers interleave
// frame-atomically.
type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
}

// NewTCPTransport returns an unbound loopback-TCP transport.
func NewTCPTransport() *TCPTransport {
	return &TCPTransport{conns: make(map[[2]int]*tcpConn)}
}

// Bind implements Transport: it starts one loopback listener per
// replica and serves inbound frames on accepted connections.
func (t *TCPTransport) Bind(handlers []Handler) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.handlers != nil {
		return fmt.Errorf("ddp: tcp transport already bound")
	}
	if len(handlers) == 0 {
		return fmt.Errorf("ddp: tcp transport bound with no handlers")
	}
	for r := range handlers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.closeLocked()
			return fmt.Errorf("ddp: replica %d listener: %w", r, err)
		}
		t.listeners = append(t.listeners, ln)
		t.addrs = append(t.addrs, ln.Addr().String())
		t.serving.Add(1)
		go t.acceptLoop(ln, handlers[r])
	}
	t.handlers = handlers
	return nil
}

// acceptLoop serves one replica's listener until Close.
func (t *TCPTransport) acceptLoop(ln net.Listener, h Handler) {
	defer t.serving.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.serving.Add(1)
		go func() {
			defer t.serving.Done()
			defer conn.Close()
			for {
				payload, err := readFrame(conn)
				if err != nil {
					return // peer hung up (or Close tore the conn down)
				}
				var resp *Response
				req, err := decodeRequest(payload)
				if err == nil {
					resp, err = h(req)
				}
				if werr := writeFrame(conn, encodeResponse(resp, err)); werr != nil {
					return
				}
			}
		}()
	}
}

// Call implements Transport.
func (t *TCPTransport) Call(to int, req *Request) (*Response, error) {
	conn, err := t.dial(req.From, to)
	if err != nil {
		return nil, err
	}
	conn.mu.Lock()
	defer conn.mu.Unlock()
	if err := writeFrame(conn.c, encodeRequest(req)); err != nil {
		return nil, fmt.Errorf("ddp: tcp call to replica %d: %w", to, err)
	}
	payload, err := readFrame(conn.c)
	if err != nil {
		return nil, fmt.Errorf("ddp: tcp response from replica %d: %w", to, err)
	}
	return decodeResponse(payload)
}

// dial returns the persistent (from, to) connection, creating it on
// first use.
func (t *TCPTransport) dial(from, to int) (*tcpConn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("ddp: tcp transport is closed")
	}
	if t.handlers == nil {
		return nil, fmt.Errorf("ddp: tcp transport not bound")
	}
	if to < 0 || to >= len(t.addrs) {
		return nil, fmt.Errorf("ddp: call to replica %d of %d", to, len(t.addrs))
	}
	key := [2]int{from, to}
	if c, ok := t.conns[key]; ok {
		return c, nil
	}
	c, err := net.Dial("tcp", t.addrs[to])
	if err != nil {
		return nil, fmt.Errorf("ddp: dialing replica %d: %w", to, err)
	}
	tc := &tcpConn{c: c}
	t.conns[key] = tc
	return tc, nil
}

// Name implements Transport.
func (t *TCPTransport) Name() string { return "tcp" }

// Addrs returns the per-replica listen addresses (empty before Bind).
func (t *TCPTransport) Addrs() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.addrs))
	copy(out, t.addrs)
	return out
}

// Close implements Transport: it tears down every listener and
// connection and waits for the serve goroutines to drain.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	err := t.closeLocked()
	t.mu.Unlock()
	t.serving.Wait()
	return err
}

func (t *TCPTransport) closeLocked() error {
	if t.closed {
		return nil
	}
	t.closed = true
	var first error
	for _, ln := range t.listeners {
		if err := ln.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, c := range t.conns {
		if err := c.c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("ddp: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("ddp: frame length %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
