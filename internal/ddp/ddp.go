// Package ddp provides the inter-replica communication layer of the
// ARGO Multi-Process Engine — the role PyTorch DistributedDataParallel
// plays in the paper, extended with the sharded-training exchange the
// HyScale-GNN direction needs.
//
// Three facilities live here:
//
//   - Gradient synchronisation. Replicas compute gradients over their
//     share of the global mini-batch; AllReduceMeanWeighted averages
//     them (weighted by share size, so the result equals the gradient
//     of the mean loss over the *global* batch) and writes the
//     consensus back into every replica.
//
//   - The halo exchange. In a sharded run every global node is owned by
//     exactly one replica; HaloExchange routes feature-row and label
//     lookups to owners in *batched* messages — at most one message per
//     (peer, call), planned with the shard manifest's cut-arc counts —
//     and counts the traffic per directed replica pair. The reverse
//     path (ScatterGradients/CollectGradients) routes halo-row gradient
//     contributions back to owners, the building block for
//     partition-local sampling.
//
//   - The transport seam. Transport carries the batched messages:
//     InprocTransport is a direct function call for replicas sharing an
//     address space; TCPTransport frames the identical messages over
//     loopback sockets, proving the protocol works across address
//     spaces. Both are selected by name through NewTransport, and both
//     carry training bit-exactly (the engine's parity tests pin batched
//     == per-row losses).
package ddp

import (
	"fmt"

	"argo/internal/nn"
)

// AllReduceMeanWeighted averages gradients across replicas in place.
// paramSets[r] is replica r's parameter list; all replicas must have the
// same architecture (same parameter count and shapes, in the same order).
// weights[r] is the number of examples replica r's gradient averaged over
// (its mini-batch share); a zero weight means the replica sat out this
// iteration. After the call every replica holds identical gradients.
func AllReduceMeanWeighted(paramSets [][]*nn.Param, weights []float64) error {
	n := len(paramSets)
	if n == 0 {
		return fmt.Errorf("ddp: no replicas")
	}
	if len(weights) != n {
		return fmt.Errorf("ddp: %d weights for %d replicas", len(weights), n)
	}
	var totalW float64
	for _, w := range weights {
		if w < 0 {
			return fmt.Errorf("ddp: negative weight %v", w)
		}
		totalW += w
	}
	if totalW == 0 {
		return fmt.Errorf("ddp: all replica weights are zero")
	}
	numParams := len(paramSets[0])
	for r := 1; r < n; r++ {
		if len(paramSets[r]) != numParams {
			return fmt.Errorf("ddp: replica %d has %d params, want %d", r, len(paramSets[r]), numParams)
		}
	}
	for p := 0; p < numParams; p++ {
		ref := paramSets[0][p].Grad
		for r := 1; r < n; r++ {
			g := paramSets[r][p].Grad
			if g.Rows != ref.Rows || g.Cols != ref.Cols {
				return fmt.Errorf("ddp: replica %d param %d shape mismatch", r, p)
			}
		}
		// Weighted sum in float64 for a deterministic, replica-order-
		// independent reduction, then broadcast.
		acc := make([]float64, len(ref.Data))
		for r := 0; r < n; r++ {
			w := weights[r]
			if w == 0 {
				continue
			}
			for k, v := range paramSets[r][p].Grad.Data {
				acc[k] += w * float64(v)
			}
		}
		inv := 1 / totalW
		for k := range acc {
			ref.Data[k] = float32(acc[k] * inv)
		}
		for r := 1; r < n; r++ {
			copy(paramSets[r][p].Grad.Data, ref.Data)
		}
	}
	return nil
}

// AllReduceMean is AllReduceMeanWeighted with equal weights.
func AllReduceMean(paramSets [][]*nn.Param) error {
	w := make([]float64, len(paramSets))
	for i := range w {
		w[i] = 1
	}
	return AllReduceMeanWeighted(paramSets, w)
}

// MaxWeightDivergence returns the largest absolute elementwise difference
// between any replica's weights and replica 0's. The multi-process engine
// asserts this stays 0: identical init + identical averaged gradients +
// identical optimizer steps keep replicas bit-equal.
func MaxWeightDivergence(paramSets [][]*nn.Param) float64 {
	var max float64
	for r := 1; r < len(paramSets); r++ {
		for p := range paramSets[0] {
			if d := paramSets[0][p].W.MaxAbsDiff(paramSets[r][p].W); d > max {
				max = d
			}
		}
	}
	return max
}
