package ddp

import (
	"fmt"
	"sync"
	"testing"

	"argo/internal/graph"
)

// twoReplicaExchange owns even nodes on replica 0 and odd nodes on
// replica 1; feature rows are [v, 10v], labels are v mod 3.
func twoReplicaExchange(t *testing.T, n int) *HaloExchange {
	t.Helper()
	owner := func(v graph.NodeID) (int, error) {
		if v < 0 || int(v) >= n {
			return 0, fmt.Errorf("node %d out of range", v)
		}
		return int(v) % 2, nil
	}
	serveFeat := make([]func(graph.NodeID) ([]float32, error), 2)
	serveLabel := make([]func(graph.NodeID) (int32, error), 2)
	for r := 0; r < 2; r++ {
		r := r
		serveFeat[r] = func(v graph.NodeID) ([]float32, error) {
			if int(v)%2 != r {
				return nil, fmt.Errorf("replica %d asked for foreign node %d", r, v)
			}
			return []float32{float32(v), float32(10 * v)}, nil
		}
		serveLabel[r] = func(v graph.NodeID) (int32, error) {
			if int(v)%2 != r {
				return 0, fmt.Errorf("replica %d asked for foreign label %d", r, v)
			}
			return v % 3, nil
		}
	}
	ex, err := NewHaloExchange(2, 2, owner, serveFeat, serveLabel)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

func TestHaloExchangeGatherAndAccounting(t *testing.T) {
	ex := twoReplicaExchange(t, 100)
	ids := []graph.NodeID{0, 1, 2, 3, 4} // 3 even (local to r0), 2 odd (remote)
	m, err := ex.GatherFeatures(0, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ids {
		row := m.Row(i)
		if row[0] != float32(v) || row[1] != float32(10*v) {
			t.Fatalf("row %d = %v", i, row)
		}
	}
	labels, err := ex.TargetLabels(0, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ids {
		if labels[i] != v%3 {
			t.Fatalf("label %d = %d", v, labels[i])
		}
	}
	st := ex.Stats()[0]
	// Features: 3 local + 2 remote (2 floats each); labels: 3 local + 2
	// remote (4 bytes each).
	if st.LocalRows != 6 || st.RemoteRows != 4 {
		t.Fatalf("stats %+v", st)
	}
	if want := int64(2*2*4 + 2*4); st.RemoteBytes != want {
		t.Fatalf("remote bytes %d, want %d", st.RemoteBytes, want)
	}
	if total := ex.TotalStats(); total != st {
		t.Fatalf("total %+v != only replica's stats %+v", total, st)
	}
}

func TestHaloExchangeErrors(t *testing.T) {
	ex := twoReplicaExchange(t, 10)
	if _, err := ex.GatherFeatures(0, []graph.NodeID{50}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := ex.GatherFeatures(7, []graph.NodeID{0}); err == nil {
		t.Fatal("bad replica index accepted")
	}
	if _, err := ex.TargetLabels(-1, []graph.NodeID{0}); err == nil {
		t.Fatal("negative replica index accepted")
	}
	if _, err := NewHaloExchange(0, 2, nil, nil, nil); err == nil {
		t.Fatal("zero replicas accepted")
	}
	if _, err := NewHaloExchange(2, 2, nil, nil, nil); err == nil {
		t.Fatal("nil owner accepted")
	}
}

// The exchange is called concurrently by every replica each iteration;
// the counters must stay exact under contention (this test is the race
// detector's target too).
func TestHaloExchangeConcurrent(t *testing.T) {
	ex := twoReplicaExchange(t, 1000)
	ids := make([]graph.NodeID, 100)
	for i := range ids {
		ids[i] = graph.NodeID(i)
	}
	var wg sync.WaitGroup
	const iters = 20
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := ex.GatherFeatures(r, ids); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	total := ex.TotalStats()
	if got, want := total.LocalRows+total.RemoteRows, int64(2*iters*len(ids)); got != want {
		t.Fatalf("counted %d rows, want %d", got, want)
	}
	if total.RemoteRows != int64(iters*len(ids)) {
		t.Fatalf("remote rows %d, want %d (each replica owns half)", total.RemoteRows, iters*len(ids))
	}
}
