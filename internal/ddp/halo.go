package ddp

import (
	"fmt"
	"sync"

	"argo/internal/graph"
	"argo/internal/tensor"
)

// HaloExchange routes feature-row and label requests between training
// replicas in a sharded run: every global node is owned by exactly one
// replica, and a replica gathering a mini-batch pulls foreign rows
// through the exchange instead of from a global feature matrix. In this
// single-machine reproduction the "network" is a function call into the
// owning replica's shard-resident store; the per-replica traffic
// accounting is the quantity a real multi-node transport would move, so
// the exchange doubles as the communication model for the HyScale-GNN
// direction.
//
// The exchange is safe for concurrent use by all replicas (the engine
// runs one goroutine per replica per iteration); the serve functions it
// is built over must be read-only, which shard-materialised matrices
// are.
type HaloExchange struct {
	owner      func(graph.NodeID) (int, error)
	serveFeat  []func(graph.NodeID) ([]float32, error)
	serveLabel []func(graph.NodeID) (int32, error)
	featDim    int

	mu    sync.Mutex
	stats []HaloStats
}

// HaloStats counts one replica's exchange traffic.
type HaloStats struct {
	LocalRows   int64 // feature rows served from the replica's own shards
	RemoteRows  int64 // feature rows fetched from other replicas
	RemoteBytes int64 // bytes those remote rows (and labels) represent
}

// Add accumulates other into s.
func (s *HaloStats) Add(other HaloStats) {
	s.LocalRows += other.LocalRows
	s.RemoteRows += other.RemoteRows
	s.RemoteBytes += other.RemoteBytes
}

// NewHaloExchange builds an exchange over numReplicas replicas. owner
// maps a global node to its owning replica; serveFeat[r]/serveLabel[r]
// return the feature row / label of a node replica r owns.
func NewHaloExchange(
	numReplicas, featDim int,
	owner func(graph.NodeID) (int, error),
	serveFeat []func(graph.NodeID) ([]float32, error),
	serveLabel []func(graph.NodeID) (int32, error),
) (*HaloExchange, error) {
	if numReplicas < 1 {
		return nil, fmt.Errorf("ddp: %d replicas", numReplicas)
	}
	if featDim < 1 {
		return nil, fmt.Errorf("ddp: feature dim %d", featDim)
	}
	if owner == nil || len(serveFeat) != numReplicas || len(serveLabel) != numReplicas {
		return nil, fmt.Errorf("ddp: exchange needs an owner map and %d feature/label servers", numReplicas)
	}
	return &HaloExchange{
		owner:      owner,
		serveFeat:  serveFeat,
		serveLabel: serveLabel,
		featDim:    featDim,
		stats:      make([]HaloStats, numReplicas),
	}, nil
}

// Replicas returns the number of participating replicas.
func (h *HaloExchange) Replicas() int { return len(h.stats) }

// FeatDim returns the feature width the exchange serves.
func (h *HaloExchange) FeatDim() int { return h.featDim }

// GatherFeatures assembles the feature matrix for ids on behalf of
// replica r: rows owned by r are copied locally, foreign rows travel
// through the exchange and are counted as remote traffic. Row order
// follows ids exactly, so the result is bit-identical to gathering from
// the global feature matrix.
func (h *HaloExchange) GatherFeatures(r int, ids []graph.NodeID) (*tensor.Matrix, error) {
	if r < 0 || r >= len(h.stats) {
		return nil, fmt.Errorf("ddp: replica %d of %d", r, len(h.stats))
	}
	out := tensor.New(len(ids), h.featDim)
	var st HaloStats
	for i, v := range ids {
		o, err := h.owner(v)
		if err != nil {
			return nil, err
		}
		if o < 0 || o >= len(h.serveFeat) {
			return nil, fmt.Errorf("ddp: node %d owned by replica %d of %d", v, o, len(h.serveFeat))
		}
		row, err := h.serveFeat[o](v)
		if err != nil {
			return nil, fmt.Errorf("ddp: replica %d fetching node %d from replica %d: %w", r, v, o, err)
		}
		if len(row) != h.featDim {
			return nil, fmt.Errorf("ddp: node %d served %d-wide row, want %d", v, len(row), h.featDim)
		}
		copy(out.Row(i), row)
		if o == r {
			st.LocalRows++
		} else {
			st.RemoteRows++
			st.RemoteBytes += int64(h.featDim) * 4
		}
	}
	h.mu.Lock()
	h.stats[r].Add(st)
	h.mu.Unlock()
	return out, nil
}

// TargetLabels resolves the labels for ids on behalf of replica r,
// counting foreign lookups as remote traffic (4 bytes each).
func (h *HaloExchange) TargetLabels(r int, ids []graph.NodeID) ([]int32, error) {
	if r < 0 || r >= len(h.stats) {
		return nil, fmt.Errorf("ddp: replica %d of %d", r, len(h.stats))
	}
	out := make([]int32, len(ids))
	var st HaloStats
	for i, v := range ids {
		o, err := h.owner(v)
		if err != nil {
			return nil, err
		}
		if o < 0 || o >= len(h.serveLabel) {
			return nil, fmt.Errorf("ddp: node %d owned by replica %d of %d", v, o, len(h.serveLabel))
		}
		lab, err := h.serveLabel[o](v)
		if err != nil {
			return nil, fmt.Errorf("ddp: replica %d fetching label %d from replica %d: %w", r, v, o, err)
		}
		out[i] = lab
		if o != r {
			st.RemoteRows++
			st.RemoteBytes += 4
		} else {
			st.LocalRows++
		}
	}
	h.mu.Lock()
	h.stats[r].Add(st)
	h.mu.Unlock()
	return out, nil
}

// Stats returns a copy of the per-replica traffic counters.
func (h *HaloExchange) Stats() []HaloStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]HaloStats, len(h.stats))
	copy(out, h.stats)
	return out
}

// TotalStats sums the per-replica counters.
func (h *HaloExchange) TotalStats() HaloStats {
	var total HaloStats
	for _, s := range h.Stats() {
		total.Add(s)
	}
	return total
}
