package ddp

import (
	"fmt"
	"sort"
	"sync"

	"argo/internal/graph"
	"argo/internal/tensor"
	"argo/internal/tensor/half"
)

// HaloExchange routes feature-row, label, and halo-gradient traffic
// between training replicas in a sharded run: every global node is
// owned by exactly one replica, and a replica gathering a mini-batch
// pulls foreign rows through the exchange instead of from a global
// feature matrix. All traffic is *batched*: a gather sends at most one
// message per (peer, call) — grouped by owner, carried by the pluggable
// Transport — instead of one lookup per row, which is what keeps the
// protocol viable once shards live on different hosts. Row order in the
// results follows the requested ids exactly, so the batched gather is
// bit-identical to gathering from the global feature matrix (and to the
// per-row exchange it replaced).
//
// The reverse path (ScatterGradients / CollectGradients) routes
// halo-row gradient contributions back to their owning replicas with
// the same per-peer batching — the building block a partition-local
// sampler needs to train without ever assembling the global topology.
//
// The exchange is safe for concurrent use by all replicas (the engine
// overlaps each replica's halo fetches with its compute); the serve
// functions it is built over must be read-only, which shard-materialised
// matrices are.
type HaloExchange struct {
	owner      func(graph.NodeID) (int, error)
	serveFeat  []func(graph.NodeID) ([]float32, error)
	serveLabel []func(graph.NodeID) (int32, error)
	featDim    int
	tr         Transport
	plan       *ExchangePlan
	wireDtype  graph.FeatDtype

	mu       sync.Mutex
	stats    []HaloStats
	peers    [][]PeerCounts // [from][to] remote traffic matrix
	lastSnap HaloStats      // cumulative total at the previous Snapshot call

	gmu sync.Mutex
	// grads[owner][from] holds the partial sums contributed by replica
	// `from` to nodes owned by `owner`. Keeping sources separate and
	// reducing them in ascending replica order at collect time makes
	// the accumulated floats independent of message arrival order —
	// the same bit-reproducibility the forward path gets for free.
	grads [][]map[graph.NodeID][]float32
}

// HaloStats counts one replica's exchange traffic. RemoteBytes is the
// *logical* volume — the float32 bytes the moved rows represent,
// independent of wire encoding — while WireBytes is what the framed
// messages actually occupy on the wire (length prefix, headers, ids,
// and dtype-encoded payloads). With an fp32 wire the two differ only by
// framing overhead; with an fp16 wire WireBytes is roughly half.
type HaloStats struct {
	LocalRows   int64 // feature rows + labels served from the replica's own shards
	RemoteRows  int64 // feature rows + labels fetched from other replicas
	RemoteBytes int64 // logical float32 bytes remote rows, labels, and gradients represent
	WireBytes   int64 // framed bytes the batched messages occupy on the wire
	Messages    int64 // batched request messages sent (the per-peer count)
	GradRows    int64 // halo-gradient rows routed to other replicas
}

// Add accumulates other into s.
func (s *HaloStats) Add(other HaloStats) {
	s.LocalRows += other.LocalRows
	s.RemoteRows += other.RemoteRows
	s.RemoteBytes += other.RemoteBytes
	s.WireBytes += other.WireBytes
	s.Messages += other.Messages
	s.GradRows += other.GradRows
}

// Sub subtracts other from s. Used to turn two cumulative readings into
// an interval delta (e.g. per-epoch curves).
func (s *HaloStats) Sub(other HaloStats) {
	s.LocalRows -= other.LocalRows
	s.RemoteRows -= other.RemoteRows
	s.RemoteBytes -= other.RemoteBytes
	s.WireBytes -= other.WireBytes
	s.Messages -= other.Messages
	s.GradRows -= other.GradRows
}

// PeerCounts is the traffic volume of one directed (from, to) replica
// pair.
type PeerCounts struct {
	Rows      int64 `json:"rows"`       // feature/label/gradient rows moved
	Bytes     int64 `json:"bytes"`      // logical float32 bytes those rows represent
	WireBytes int64 `json:"wire_bytes"` // framed bytes on the wire
	Messages  int64 `json:"messages"`   // batched messages sent
}

// Add accumulates other into c.
func (c *PeerCounts) Add(other PeerCounts) {
	c.Rows += other.Rows
	c.Bytes += other.Bytes
	c.WireBytes += other.WireBytes
	c.Messages += other.Messages
}

// PeerTraffic is one edge of the exchange's directed traffic matrix.
type PeerTraffic struct {
	From int `json:"from"`
	To   int `json:"to"`
	PeerCounts
}

// SortPeerTraffic orders traffic rows deterministically: ascending
// From, then ascending To — the serialization order -loss-json and the
// Report promise.
func SortPeerTraffic(rows []PeerTraffic) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].From != rows[j].From {
			return rows[i].From < rows[j].From
		}
		return rows[i].To < rows[j].To
	})
}

// ExchangeStats is a run-level traffic summary: the totals plus the
// directed per-peer matrix, with peers in deterministic (From, To)
// order. It is what core.Trainer accumulates across auto-tuner
// re-launches and what argo.Report serialises.
type ExchangeStats struct {
	Transport   string        `json:"transport,omitempty"`
	LocalRows   int64         `json:"local_rows"`
	RemoteRows  int64         `json:"remote_rows"`
	RemoteBytes int64         `json:"remote_bytes"`
	WireBytes   int64         `json:"wire_bytes"`
	Messages    int64         `json:"messages"`
	GradRows    int64         `json:"grad_rows,omitempty"`
	Peers       []PeerTraffic `json:"peers,omitempty"`
}

// ExchangePlan sizes the exchange's per-peer batch buffers from the
// shard manifest's cut-arc counts — the planner input a multi-node
// deployment would use to provision links before moving any feature
// bytes.
type ExchangePlan struct {
	// CutArcs[r] is the total cut-arc count of the shards replica r
	// owns (graph.ShardManifest.ReplicaCutArcs).
	CutArcs []int64
	// Total is the shard set's whole edge cut.
	Total int64
}

// PlanFromCuts builds a plan from per-replica cut-arc counts.
func PlanFromCuts(cuts []int64) *ExchangePlan {
	p := &ExchangePlan{CutArcs: cuts}
	for _, c := range cuts {
		p.Total += c
	}
	return p
}

// batchHint estimates how many foreign ids one gather by replica r
// sends to one peer, for buffer preallocation. Cut arcs bound the
// distinct halo nodes a replica can ever reference; a mini-batch
// touches a fraction of them, so a conservative per-call hint divides
// by the peer count (capped to keep pathological manifests from
// over-allocating).
func (p *ExchangePlan) batchHint(r, numReplicas int) int {
	if p == nil || r < 0 || r >= len(p.CutArcs) || numReplicas < 2 {
		return 0
	}
	h := int(p.CutArcs[r]) / (numReplicas - 1)
	const maxHint = 1 << 16
	if h > maxHint {
		h = maxHint
	}
	return h
}

// ExchangeOptions configures NewHaloExchangeOpts.
type ExchangeOptions struct {
	// Transport carries the batched messages. Nil defaults to the
	// in-process transport.
	Transport Transport
	// Plan supplies per-replica cut-arc counts for buffer sizing; nil
	// means no preallocation hints.
	Plan *ExchangePlan
	// WireDtype selects the wire encoding of float payloads (feature
	// responses and gradient pushes). The engine negotiates it from the
	// store dtype: an fp16 store's rows are fp16-exact, so shipping them
	// as fp16 bits is lossless and every transport stays bit-identical.
	// With DtypeF16 the exchange also quantises gradient contributions
	// (clamp to the finite fp16 range, round to nearest-even) on every
	// path — local and remote alike — before any accumulation, keeping
	// training deterministic across transports and shard counts. The
	// zero value is the full-precision fp32 wire.
	WireDtype graph.FeatDtype
}

// NewHaloExchange builds an exchange over numReplicas replicas with the
// in-process transport. owner maps a global node to its owning replica;
// serveFeat[r]/serveLabel[r] return the feature row / label of a node
// replica r owns.
func NewHaloExchange(
	numReplicas, featDim int,
	owner func(graph.NodeID) (int, error),
	serveFeat []func(graph.NodeID) ([]float32, error),
	serveLabel []func(graph.NodeID) (int32, error),
) (*HaloExchange, error) {
	return NewHaloExchangeOpts(numReplicas, featDim, owner, serveFeat, serveLabel, ExchangeOptions{})
}

// NewHaloExchangeOpts is NewHaloExchange with an explicit transport and
// plan. The exchange owns the transport: Close closes it.
func NewHaloExchangeOpts(
	numReplicas, featDim int,
	owner func(graph.NodeID) (int, error),
	serveFeat []func(graph.NodeID) ([]float32, error),
	serveLabel []func(graph.NodeID) (int32, error),
	opt ExchangeOptions,
) (*HaloExchange, error) {
	if numReplicas < 1 {
		return nil, fmt.Errorf("ddp: %d replicas", numReplicas)
	}
	if featDim < 1 {
		return nil, fmt.Errorf("ddp: feature dim %d", featDim)
	}
	if owner == nil || len(serveFeat) != numReplicas || len(serveLabel) != numReplicas {
		return nil, fmt.Errorf("ddp: exchange needs an owner map and %d feature/label servers", numReplicas)
	}
	tr := opt.Transport
	if tr == nil {
		tr = NewInprocTransport()
	}
	h := &HaloExchange{
		owner:      owner,
		serveFeat:  serveFeat,
		serveLabel: serveLabel,
		featDim:    featDim,
		tr:         tr,
		plan:       opt.Plan,
		wireDtype:  opt.WireDtype,
		stats:      make([]HaloStats, numReplicas),
		grads:      make([][]map[graph.NodeID][]float32, numReplicas),
	}
	for o := range h.grads {
		h.grads[o] = make([]map[graph.NodeID][]float32, numReplicas)
	}
	h.peers = make([][]PeerCounts, numReplicas)
	for r := range h.peers {
		h.peers[r] = make([]PeerCounts, numReplicas)
	}
	handlers := make([]Handler, numReplicas)
	for r := 0; r < numReplicas; r++ {
		r := r
		handlers[r] = func(req *Request) (*Response, error) { return h.handle(r, req) }
	}
	if err := tr.Bind(handlers); err != nil {
		return nil, err
	}
	return h, nil
}

// handle answers one batched request on behalf of owning replica o.
func (h *HaloExchange) handle(o int, req *Request) (*Response, error) {
	switch req.Kind {
	case MsgFeatures:
		// Echo the requested dtype so the response payload travels in the
		// negotiated encoding whichever transport frames it.
		resp := &Response{Dtype: req.Dtype, Feat: make([]float32, len(req.IDs)*h.featDim)}
		for i, v := range req.IDs {
			row, err := h.serveFeat[o](v)
			if err != nil {
				return nil, fmt.Errorf("ddp: replica %d serving node %d: %w", o, v, err)
			}
			if len(row) != h.featDim {
				return nil, fmt.Errorf("ddp: node %d served %d-wide row, want %d", v, len(row), h.featDim)
			}
			copy(resp.Feat[i*h.featDim:], row)
		}
		return resp, nil
	case MsgLabels:
		resp := &Response{Labels: make([]int32, len(req.IDs))}
		for i, v := range req.IDs {
			lab, err := h.serveLabel[o](v)
			if err != nil {
				return nil, fmt.Errorf("ddp: replica %d serving label %d: %w", o, v, err)
			}
			resp.Labels[i] = lab
		}
		return resp, nil
	case MsgGradients:
		if len(req.Grad) != len(req.IDs)*h.featDim {
			return nil, fmt.Errorf("ddp: gradient message carries %d values for %d ids (dim %d)",
				len(req.Grad), len(req.IDs), h.featDim)
		}
		if req.From < 0 || req.From >= len(h.stats) {
			return nil, fmt.Errorf("ddp: gradient message from replica %d of %d", req.From, len(h.stats))
		}
		h.accumGradients(o, req.From, req.IDs, req.Grad)
		return &Response{}, nil
	}
	return nil, fmt.Errorf("ddp: unknown message kind %d", req.Kind)
}

// accumGradients adds row-major gradient values for ids into owner o's
// partial-sum buffer for source replica `from`. Within one (o, from)
// pair accumulation follows the source's own call order; sources only
// mix at collect time, in replica order.
func (h *HaloExchange) accumGradients(o, from int, ids []graph.NodeID, grad []float32) {
	h.gmu.Lock()
	defer h.gmu.Unlock()
	buf := h.grads[o][from]
	if buf == nil {
		buf = make(map[graph.NodeID][]float32)
		h.grads[o][from] = buf
	}
	for i, v := range ids {
		row := buf[v]
		if row == nil {
			row = make([]float32, h.featDim)
			buf[v] = row
		}
		src := grad[i*h.featDim : (i+1)*h.featDim]
		for j := range row {
			row[j] += src[j]
		}
	}
}

// Replicas returns the number of participating replicas.
func (h *HaloExchange) Replicas() int { return len(h.stats) }

// FeatDim returns the feature width the exchange serves.
func (h *HaloExchange) FeatDim() int { return h.featDim }

// TransportName reports which transport carries the exchange.
func (h *HaloExchange) TransportName() string { return h.tr.Name() }

// Plan returns the exchange's planner input (nil when built without
// one).
func (h *HaloExchange) Plan() *ExchangePlan { return h.plan }

// WireDtype reports the negotiated wire encoding of float payloads.
func (h *HaloExchange) WireDtype() graph.FeatDtype { return h.wireDtype }

// quantizeF16 rounds xs to fp16 in place, clamping to the finite fp16
// range first so out-of-range magnitudes saturate to ±65504 instead of
// overflowing to ±Inf. NaN passes through (as it would in fp32).
func quantizeF16(xs []float32) {
	for i, v := range xs {
		if v > half.MaxValue {
			v = half.MaxValue
		} else if v < -half.MaxValue {
			v = -half.MaxValue
		}
		xs[i] = half.Round(v)
	}
}

// Close releases the transport. The exchange must not be used after
// Close.
func (h *HaloExchange) Close() error { return h.tr.Close() }

// peerBatch collects the ids one call sends to one peer, plus their
// positions in the caller's id list so responses scatter back in order.
type peerBatch struct {
	ids []graph.NodeID
	pos []int
}

// routeForeign partitions ids by owner: local ids are handed to the
// local callback in order; foreign ids are appended to per-peer batches
// (allocated with the plan's size hint on first use).
func (h *HaloExchange) routeForeign(r int, ids []graph.NodeID, local func(i int, v graph.NodeID) error) ([]peerBatch, error) {
	batches := make([]peerBatch, len(h.stats))
	for i, v := range ids {
		o, err := h.owner(v)
		if err != nil {
			return nil, err
		}
		if o < 0 || o >= len(h.stats) {
			return nil, fmt.Errorf("ddp: node %d owned by replica %d of %d", v, o, len(h.stats))
		}
		if o == r {
			if err := local(i, v); err != nil {
				return nil, err
			}
			continue
		}
		b := &batches[o]
		if b.ids == nil {
			hint := h.plan.batchHint(r, len(h.stats))
			b.ids = make([]graph.NodeID, 0, hint)
			b.pos = make([]int, 0, hint)
		}
		b.ids = append(b.ids, v)
		b.pos = append(b.pos, i)
	}
	return batches, nil
}

// GatherFeatures assembles the feature matrix for ids on behalf of
// replica r: rows owned by r are copied locally, foreign rows travel in
// one batched message per owning peer. Row order follows ids exactly,
// so the result is bit-identical to gathering from the global feature
// matrix.
func (h *HaloExchange) GatherFeatures(r int, ids []graph.NodeID) (*tensor.Matrix, error) {
	if r < 0 || r >= len(h.stats) {
		return nil, fmt.Errorf("ddp: replica %d of %d", r, len(h.stats))
	}
	out := tensor.New(len(ids), h.featDim)
	var st HaloStats
	batches, err := h.routeForeign(r, ids, func(i int, v graph.NodeID) error {
		row, err := h.serveFeat[r](v)
		if err != nil {
			return fmt.Errorf("ddp: replica %d reading own node %d: %w", r, v, err)
		}
		if len(row) != h.featDim {
			return fmt.Errorf("ddp: node %d served %d-wide row, want %d", v, len(row), h.featDim)
		}
		copy(out.Row(i), row)
		st.LocalRows++
		return nil
	})
	if err != nil {
		return nil, err
	}
	perPeer := make([]PeerCounts, len(h.stats))
	for p := range batches {
		b := &batches[p]
		if len(b.ids) == 0 {
			continue
		}
		req := &Request{From: r, Kind: MsgFeatures, Dtype: h.wireDtype, IDs: b.ids}
		resp, err := h.tr.Call(p, req)
		if err != nil {
			return nil, fmt.Errorf("ddp: replica %d fetching %d rows from replica %d: %w", r, len(b.ids), p, err)
		}
		if len(resp.Feat) != len(b.ids)*h.featDim {
			return nil, fmt.Errorf("ddp: replica %d answered %d values for %d rows", p, len(resp.Feat), len(b.ids))
		}
		for i, pos := range b.pos {
			copy(out.Row(pos), resp.Feat[i*h.featDim:(i+1)*h.featDim])
		}
		rows, bytes := int64(len(b.ids)), int64(len(b.ids))*int64(h.featDim)*4
		wire := req.wireSize() + resp.wireSize()
		st.RemoteRows += rows
		st.RemoteBytes += bytes
		st.WireBytes += wire
		st.Messages++
		perPeer[p] = PeerCounts{Rows: rows, Bytes: bytes, WireBytes: wire, Messages: 1}
	}
	h.record(r, st, perPeer)
	return out, nil
}

// TargetLabels resolves the labels for ids on behalf of replica r, with
// foreign labels batched into one message per owning peer (4 bytes per
// remote label).
func (h *HaloExchange) TargetLabels(r int, ids []graph.NodeID) ([]int32, error) {
	if r < 0 || r >= len(h.stats) {
		return nil, fmt.Errorf("ddp: replica %d of %d", r, len(h.stats))
	}
	out := make([]int32, len(ids))
	var st HaloStats
	batches, err := h.routeForeign(r, ids, func(i int, v graph.NodeID) error {
		lab, err := h.serveLabel[r](v)
		if err != nil {
			return fmt.Errorf("ddp: replica %d reading own label %d: %w", r, v, err)
		}
		out[i] = lab
		st.LocalRows++
		return nil
	})
	if err != nil {
		return nil, err
	}
	perPeer := make([]PeerCounts, len(h.stats))
	for p := range batches {
		b := &batches[p]
		if len(b.ids) == 0 {
			continue
		}
		req := &Request{From: r, Kind: MsgLabels, Dtype: h.wireDtype, IDs: b.ids}
		resp, err := h.tr.Call(p, req)
		if err != nil {
			return nil, fmt.Errorf("ddp: replica %d fetching %d labels from replica %d: %w", r, len(b.ids), p, err)
		}
		if len(resp.Labels) != len(b.ids) {
			return nil, fmt.Errorf("ddp: replica %d answered %d labels for %d ids", p, len(resp.Labels), len(b.ids))
		}
		for i, pos := range b.pos {
			out[pos] = resp.Labels[i]
		}
		rows, bytes := int64(len(b.ids)), int64(len(b.ids))*4
		wire := req.wireSize() + resp.wireSize()
		st.RemoteRows += rows
		st.RemoteBytes += bytes
		st.WireBytes += wire
		st.Messages++
		perPeer[p] = PeerCounts{Rows: rows, Bytes: bytes, WireBytes: wire, Messages: 1}
	}
	h.record(r, st, perPeer)
	return out, nil
}

// ScatterGradients routes per-row gradient contributions back to the
// rows' owners on behalf of replica r — the reverse exchange. grads
// must be len(ids)×featDim; row i is the contribution to node ids[i].
// Contributions to r's own nodes accumulate locally; foreign rows
// travel in one batched message per owning peer and accumulate there.
// Owners drain their buffers with CollectGradients.
func (h *HaloExchange) ScatterGradients(r int, ids []graph.NodeID, grads *tensor.Matrix) error {
	if r < 0 || r >= len(h.stats) {
		return fmt.Errorf("ddp: replica %d of %d", r, len(h.stats))
	}
	if grads == nil || grads.Rows != len(ids) || grads.Cols != h.featDim {
		return fmt.Errorf("ddp: gradient matrix must be %d×%d", len(ids), h.featDim)
	}
	var st HaloStats
	var localIDs []graph.NodeID
	var localRows []int
	batches, err := h.routeForeign(r, ids, func(i int, v graph.NodeID) error {
		localIDs = append(localIDs, v)
		localRows = append(localRows, i)
		return nil
	})
	if err != nil {
		return err
	}
	if len(localIDs) > 0 {
		flat := make([]float32, 0, len(localIDs)*h.featDim)
		for _, i := range localRows {
			flat = append(flat, grads.Row(i)...)
		}
		// With an fp16 wire, local contributions are quantised exactly
		// like remote ones — before any accumulation — so the collected
		// sums do not depend on which replica a contribution came from,
		// and therefore not on the shard count or transport either.
		if h.wireDtype == graph.DtypeF16 {
			quantizeF16(flat)
		}
		h.accumGradients(r, r, localIDs, flat)
		st.LocalRows += int64(len(localIDs))
	}
	perPeer := make([]PeerCounts, len(h.stats))
	for p := range batches {
		b := &batches[p]
		if len(b.ids) == 0 {
			continue
		}
		flat := make([]float32, 0, len(b.ids)*h.featDim)
		for _, pos := range b.pos {
			flat = append(flat, grads.Row(pos)...)
		}
		// Quantise before transport so the fp16 wire encode is exact:
		// the bits the peer accumulates match what an inproc call hands
		// over directly.
		if h.wireDtype == graph.DtypeF16 {
			quantizeF16(flat)
		}
		req := &Request{From: r, Kind: MsgGradients, Dtype: h.wireDtype, IDs: b.ids, Grad: flat}
		resp, err := h.tr.Call(p, req)
		if err != nil {
			return fmt.Errorf("ddp: replica %d scattering %d gradient rows to replica %d: %w", r, len(b.ids), p, err)
		}
		rows, bytes := int64(len(b.ids)), int64(len(b.ids))*int64(h.featDim)*4
		wire := req.wireSize() + resp.wireSize()
		st.GradRows += rows
		st.RemoteBytes += bytes
		st.WireBytes += wire
		st.Messages++
		perPeer[p] = PeerCounts{Rows: rows, Bytes: bytes, WireBytes: wire, Messages: 1}
	}
	h.record(r, st, perPeer)
	return nil
}

// CollectGradients drains the halo-gradient contributions accumulated
// for replica r's owned nodes and clears the buffer. The result is
// fully deterministic — nodes in ascending order, each row the sum of
// the per-source partial buffers reduced in ascending replica order —
// regardless of message arrival timing. It returns nil, nil when
// nothing accumulated.
func (h *HaloExchange) CollectGradients(r int) ([]graph.NodeID, *tensor.Matrix, error) {
	if r < 0 || r >= len(h.stats) {
		return nil, nil, fmt.Errorf("ddp: replica %d of %d", r, len(h.stats))
	}
	h.gmu.Lock()
	bufs := h.grads[r]
	h.grads[r] = make([]map[graph.NodeID][]float32, len(h.stats))
	h.gmu.Unlock()
	seen := make(map[graph.NodeID]bool)
	var ids []graph.NodeID
	for _, buf := range bufs {
		for v := range buf {
			if !seen[v] {
				seen[v] = true
				ids = append(ids, v)
			}
		}
	}
	if len(ids) == 0 {
		return nil, nil, nil
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := tensor.New(len(ids), h.featDim)
	for i, v := range ids {
		row := out.Row(i)
		for from := range bufs {
			if partial := bufs[from][v]; partial != nil {
				for j := range row {
					row[j] += partial[j]
				}
			}
		}
	}
	return ids, out, nil
}

// record folds one call's counters into the shared stats under the lock.
func (h *HaloExchange) record(r int, st HaloStats, perPeer []PeerCounts) {
	h.mu.Lock()
	h.stats[r].Add(st)
	for p := range perPeer {
		if perPeer[p] != (PeerCounts{}) {
			h.peers[r][p].Add(perPeer[p])
		}
	}
	h.mu.Unlock()
}

// Stats returns a copy of the per-replica traffic counters.
func (h *HaloExchange) Stats() []HaloStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]HaloStats, len(h.stats))
	copy(out, h.stats)
	return out
}

// TotalStats sums the per-replica counters.
func (h *HaloExchange) TotalStats() HaloStats {
	var total HaloStats
	for _, s := range h.Stats() {
		total.Add(s)
	}
	return total
}

// Snapshot returns the traffic accumulated since the previous Snapshot
// call (or since construction, for the first call) and advances the
// snapshot mark. The cumulative counters reported by Stats, TotalStats,
// and Summary are untouched, so run totals and interval curves (e.g.
// per-epoch traffic) can be read from the same exchange.
func (h *HaloExchange) Snapshot() HaloStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	var total HaloStats
	for _, s := range h.stats {
		total.Add(s)
	}
	delta := total
	delta.Sub(h.lastSnap)
	h.lastSnap = total
	return delta
}

// PeerTraffic returns the non-zero edges of the directed traffic
// matrix in deterministic (From, To) order. The Rows of every edge sum
// to TotalStats().RemoteRows + GradRows: every remote row travels
// exactly one edge.
func (h *HaloExchange) PeerTraffic() []PeerTraffic {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []PeerTraffic
	for from := range h.peers {
		for to, c := range h.peers[from] {
			if c != (PeerCounts{}) {
				out = append(out, PeerTraffic{From: from, To: to, PeerCounts: c})
			}
		}
	}
	return out
}

// Summary assembles the exchange's ExchangeStats snapshot.
func (h *HaloExchange) Summary() ExchangeStats {
	total := h.TotalStats()
	return ExchangeStats{
		Transport:   h.tr.Name(),
		LocalRows:   total.LocalRows,
		RemoteRows:  total.RemoteRows,
		RemoteBytes: total.RemoteBytes,
		WireBytes:   total.WireBytes,
		Messages:    total.Messages,
		GradRows:    total.GradRows,
		Peers:       h.PeerTraffic(),
	}
}
