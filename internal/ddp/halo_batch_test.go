package ddp

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"argo/internal/graph"
	"argo/internal/tensor"
	"argo/internal/tensor/half"
)

// modExchange owns node v on replica v%n; features are [v, 10v, -v],
// labels v%7.
func modExchange(t *testing.T, replicas int, tr Transport, plan *ExchangePlan) *HaloExchange {
	t.Helper()
	const featDim = 3
	owner := func(v graph.NodeID) (int, error) {
		if v < 0 || v >= 10_000 {
			return 0, fmt.Errorf("node %d out of range", v)
		}
		return int(v) % replicas, nil
	}
	serveFeat := make([]func(graph.NodeID) ([]float32, error), replicas)
	serveLabel := make([]func(graph.NodeID) (int32, error), replicas)
	for r := 0; r < replicas; r++ {
		r := r
		serveFeat[r] = func(v graph.NodeID) ([]float32, error) {
			if int(v)%replicas != r {
				return nil, fmt.Errorf("replica %d asked for foreign node %d", r, v)
			}
			return []float32{float32(v), float32(10 * v), float32(-v)}, nil
		}
		serveLabel[r] = func(v graph.NodeID) (int32, error) {
			if int(v)%replicas != r {
				return 0, fmt.Errorf("replica %d asked for foreign label %d", r, v)
			}
			return v % 7, nil
		}
	}
	ex, err := NewHaloExchangeOpts(replicas, featDim, owner, serveFeat, serveLabel,
		ExchangeOptions{Transport: tr, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

// modExchangeWire is modExchange with an explicit wire dtype. The served
// values ([v, 10v, -v] for the small ids tests use, labels v%7) are
// fp16-exact, so an fp16 wire is lossless over them — mirroring the real
// negotiation, which only enables the fp16 wire over fp16 stores.
func modExchangeWire(t *testing.T, replicas int, tr Transport, dt graph.FeatDtype) *HaloExchange {
	t.Helper()
	base := modExchange(t, replicas, nil, nil)
	base.Close()
	ex, err := NewHaloExchangeOpts(replicas, base.featDim, base.owner, base.serveFeat, base.serveLabel,
		ExchangeOptions{Transport: tr, WireDtype: dt})
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

// The fp16 wire must gather bit-identically to the fp32 wire (the
// served values are fp16-exact), move measurably fewer wire bytes, and
// quantise gradients identically on every transport.
func TestHaloExchangeF16Wire(t *testing.T) {
	ids := []graph.NodeID{5, 0, 17, 3, 8, 100, 41}
	ref := modExchange(t, 3, nil, nil)
	defer ref.Close()
	want, err := ref.GatherFeatures(0, ids)
	if err != nil {
		t.Fatal(err)
	}
	refWire := ref.Stats()[0].WireBytes
	for _, name := range []string{"inproc", "tcp"} {
		t.Run(name, func(t *testing.T) {
			tr, err := NewTransport(name)
			if err != nil {
				t.Fatal(err)
			}
			ex := modExchangeWire(t, 3, tr, graph.DtypeF16)
			defer ex.Close()
			if ex.WireDtype() != graph.DtypeF16 {
				t.Fatalf("wire dtype %v", ex.WireDtype())
			}
			got, err := ex.GatherFeatures(0, ids)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.Data {
				if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
					t.Fatalf("fp16 wire gather differs from fp32 at %d: %v vs %v", i, got.Data[i], want.Data[i])
				}
			}
			st := ex.Stats()[0]
			if st.RemoteBytes != ref.Stats()[0].RemoteBytes {
				t.Fatalf("logical bytes changed with wire dtype: %d vs %d", st.RemoteBytes, ref.Stats()[0].RemoteBytes)
			}
			if st.WireBytes >= refWire {
				t.Fatalf("fp16 wire bytes %d not below fp32's %d", st.WireBytes, refWire)
			}

			// Gradients quantise on every path: non-fp16-exact values round
			// to nearest-even, out-of-range magnitudes saturate to ±65504 —
			// for the local node 0 exactly as for the remote node 1.
			g := tensor.New(2, 3)
			copy(g.Row(0), []float32{1.0 / 3.0, 1e6, -1e9}) // node 0, local to replica 0
			copy(g.Row(1), []float32{1.0 / 3.0, 1e6, -1e9}) // node 1, owned by replica 1
			if err := ex.ScatterGradients(0, []graph.NodeID{0, 1}, g); err != nil {
				t.Fatal(err)
			}
			wantRow := []float32{half.Round(1.0 / 3.0), 65504, -65504}
			for _, r := range []int{0, 1} {
				ids, out, err := ex.CollectGradients(r)
				if err != nil {
					t.Fatal(err)
				}
				if len(ids) != 1 || ids[0] != graph.NodeID(r) {
					t.Fatalf("replica %d collected %v", r, ids)
				}
				for j, w := range wantRow {
					if math.Float32bits(out.Row(0)[j]) != math.Float32bits(w) {
						t.Fatalf("replica %d grad[%d] = %v, want %v", r, j, out.Row(0)[j], w)
					}
				}
			}
		})
	}
}

// One gather sends at most one message per foreign peer, regardless of
// how many rows each peer owns — the batching contract.
func TestHaloExchangeBatchesPerPeer(t *testing.T) {
	ex := modExchange(t, 3, nil, PlanFromCuts([]int64{30, 30, 30}))
	defer ex.Close()
	ids := []graph.NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11} // 4 per owner
	m, err := ex.GatherFeatures(0, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ids {
		if row := m.Row(i); row[0] != float32(v) || row[1] != float32(10*v) || row[2] != float32(-v) {
			t.Fatalf("row %d = %v", i, row)
		}
	}
	st := ex.Stats()[0]
	if st.LocalRows != 4 || st.RemoteRows != 8 {
		t.Fatalf("stats %+v", st)
	}
	if st.Messages != 2 {
		t.Fatalf("%d messages for a 2-peer gather (want one per foreign peer)", st.Messages)
	}
	if _, err := ex.TargetLabels(0, ids); err != nil {
		t.Fatal(err)
	}
	if st = ex.Stats()[0]; st.Messages != 4 {
		t.Fatalf("%d messages after labels gather, want 4", st.Messages)
	}
	peers := ex.PeerTraffic()
	if len(peers) != 2 {
		t.Fatalf("peer traffic %v", peers)
	}
	// Wire bytes per peer: the features round-trip is a 34-byte request
	// (4 prefix + 14 header + 4 ids) plus a 62-byte response (4 + 10 +
	// 12 fp32 values); the labels round-trip is 34 + 30.
	const wirePerPeer = (34 + 62) + (34 + 30)
	for i, want := range []PeerTraffic{
		{From: 0, To: 1, PeerCounts: PeerCounts{Rows: 8, Bytes: 4*3*4 + 4*4, WireBytes: wirePerPeer, Messages: 2}},
		{From: 0, To: 2, PeerCounts: PeerCounts{Rows: 8, Bytes: 4*3*4 + 4*4, WireBytes: wirePerPeer, Messages: 2}},
	} {
		if peers[i] != want {
			t.Fatalf("peer %d = %+v, want %+v", i, peers[i], want)
		}
	}
}

// The identical exchange over loopback TCP must produce bit-identical
// matrices, labels, and traffic counters as the in-process transport.
func TestHaloExchangeTCPMatchesInproc(t *testing.T) {
	ids := []graph.NodeID{5, 0, 17, 3, 3, 8, 100, 41}
	inproc := modExchange(t, 3, nil, nil)
	defer inproc.Close()
	tcp := modExchange(t, 3, NewTCPTransport(), nil)
	defer tcp.Close()
	for r := 0; r < 3; r++ {
		a, err := inproc.GatherFeatures(r, ids)
		if err != nil {
			t.Fatal(err)
		}
		b, err := tcp.GatherFeatures(r, ids)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Data {
			if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
				t.Fatalf("replica %d: matrices differ at %d", r, i)
			}
		}
		la, err := inproc.TargetLabels(r, ids)
		if err != nil {
			t.Fatal(err)
		}
		lb, err := tcp.TargetLabels(r, ids)
		if err != nil {
			t.Fatal(err)
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("replica %d: labels differ at %d", r, i)
			}
		}
	}
	if a, b := inproc.TotalStats(), tcp.TotalStats(); a != b {
		t.Fatalf("traffic diverged between transports: %+v vs %+v", a, b)
	}
	ap, bp := inproc.PeerTraffic(), tcp.PeerTraffic()
	if len(ap) != len(bp) {
		t.Fatalf("peer rows %d vs %d", len(ap), len(bp))
	}
	for i := range ap {
		if ap[i] != bp[i] {
			t.Fatalf("peer traffic %d: %+v vs %+v", i, ap[i], bp[i])
		}
	}
	if inproc.TransportName() != "inproc" || tcp.TransportName() != "tcp" {
		t.Fatalf("transport names %q/%q", inproc.TransportName(), tcp.TransportName())
	}
}

// The reverse path: gradients scattered from every replica accumulate
// at the rows' owners, identically on both transports, and collecting
// drains the buffer deterministically (ascending node order).
func TestGradientExchange(t *testing.T) {
	for _, name := range []string{"inproc", "tcp"} {
		t.Run(name, func(t *testing.T) {
			tr, err := NewTransport(name)
			if err != nil {
				t.Fatal(err)
			}
			ex := modExchange(t, 2, tr, nil)
			defer ex.Close()
			// Replica 0 contributes to nodes {0,1,2,3}, replica 1 to
			// {1,2}: node 1 and 2 accumulate two contributions each.
			scatter := func(r int, ids []graph.NodeID, scale float32) {
				g := tensor.New(len(ids), 3)
				for i, v := range ids {
					g.Row(i)[0] = scale * float32(v)
					g.Row(i)[1] = scale
					g.Row(i)[2] = -scale
				}
				if err := ex.ScatterGradients(r, ids, g); err != nil {
					t.Fatal(err)
				}
			}
			scatter(0, []graph.NodeID{0, 1, 2, 3}, 1)
			scatter(1, []graph.NodeID{1, 2}, 2)

			ids0, g0, err := ex.CollectGradients(0)
			if err != nil {
				t.Fatal(err)
			}
			if want := []graph.NodeID{0, 2}; len(ids0) != 2 || ids0[0] != want[0] || ids0[1] != want[1] {
				t.Fatalf("replica 0 owns gradients for %v, want %v", ids0, want)
			}
			// Node 2: 1·2 from replica 0 plus 2·2 from replica 1.
			if g0.Row(1)[0] != 2+4 || g0.Row(1)[1] != 1+2 || g0.Row(1)[2] != -1-2 {
				t.Fatalf("node 2 accumulated %v", g0.Row(1))
			}
			if g0.Row(0)[0] != 0 || g0.Row(0)[1] != 1 {
				t.Fatalf("node 0 accumulated %v", g0.Row(0))
			}
			ids1, g1, err := ex.CollectGradients(1)
			if err != nil {
				t.Fatal(err)
			}
			if len(ids1) != 2 || ids1[0] != 1 || ids1[1] != 3 {
				t.Fatalf("replica 1 owns gradients for %v", ids1)
			}
			if g1.Row(0)[0] != 1+2 || g1.Row(0)[1] != 1+2 {
				t.Fatalf("node 1 accumulated %v", g1.Row(0))
			}
			// Collect drains: a second collect is empty.
			if ids, g, err := ex.CollectGradients(0); err != nil || ids != nil || g != nil {
				t.Fatalf("second collect returned %v %v %v", ids, g, err)
			}

			total := ex.TotalStats()
			// Replica 0 sent 2 foreign rows (1,3), replica 1 sent 1 (2).
			if total.GradRows != 3 {
				t.Fatalf("grad rows %d, want 3", total.GradRows)
			}
			if total.RemoteRows != 0 {
				t.Fatalf("gradient scatter counted as remote feature rows: %+v", total)
			}
			var peerRows int64
			for _, p := range ex.PeerTraffic() {
				peerRows += p.Rows
			}
			if peerRows != total.GradRows {
				t.Fatalf("peer matrix rows %d, want %d (every routed row travels one edge)", peerRows, total.GradRows)
			}

			// Shape errors are rejected.
			if err := ex.ScatterGradients(0, []graph.NodeID{1}, tensor.New(2, 3)); err == nil {
				t.Fatal("row-count mismatch accepted")
			}
			if err := ex.ScatterGradients(0, []graph.NodeID{1}, tensor.New(1, 2)); err == nil {
				t.Fatal("width mismatch accepted")
			}
			if err := ex.ScatterGradients(7, nil, tensor.New(0, 3)); err == nil {
				t.Fatal("bad replica accepted")
			}
		})
	}
}

// Accumulated gradients must be bit-reproducible no matter how message
// arrival interleaves: per-source partial sums are reduced in replica
// order at collect time, so concurrent scatters from many replicas
// always sum identically.
func TestGradientAccumulationOrderIndependent(t *testing.T) {
	run := func() *tensor.Matrix {
		ex := modExchange(t, 4, NewTCPTransport(), nil)
		defer ex.Close()
		var wg sync.WaitGroup
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				// Every replica contributes irrational-ish floats to the
				// same owner-0 nodes, so summation order is observable.
				ids := []graph.NodeID{0, 4, 8}
				g := tensor.New(len(ids), 3)
				for i := range ids {
					for j := 0; j < 3; j++ {
						g.Row(i)[j] = float32(math.Sqrt(float64(r+2))) * float32(i+j+1) * 0.1
					}
				}
				if err := ex.ScatterGradients(r, ids, g); err != nil {
					t.Error(err)
				}
			}(r)
		}
		wg.Wait()
		_, out, err := ex.CollectGradients(0)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run()
	for trial := 0; trial < 5; trial++ {
		got := run()
		for i := range ref.Data {
			if math.Float32bits(ref.Data[i]) != math.Float32bits(got.Data[i]) {
				t.Fatalf("trial %d: accumulated gradients not bit-reproducible at %d (%v vs %v)",
					trial, i, ref.Data[i], got.Data[i])
			}
		}
	}
}

// Summary assembles totals + deterministically ordered peers.
func TestExchangeSummary(t *testing.T) {
	ex := modExchange(t, 3, nil, nil)
	defer ex.Close()
	ids := []graph.NodeID{0, 1, 2}
	for r := 2; r >= 0; r-- { // call order must not affect peer order
		if _, err := ex.GatherFeatures(r, ids); err != nil {
			t.Fatal(err)
		}
	}
	s := ex.Summary()
	if s.Transport != "inproc" {
		t.Fatalf("transport %q", s.Transport)
	}
	if s.LocalRows != 3 || s.RemoteRows != 6 || s.Messages != 6 {
		t.Fatalf("summary %+v", s)
	}
	if len(s.Peers) != 6 {
		t.Fatalf("%d peer edges, want 6", len(s.Peers))
	}
	for i := 1; i < len(s.Peers); i++ {
		a, b := s.Peers[i-1], s.Peers[i]
		if a.From > b.From || (a.From == b.From && a.To >= b.To) {
			t.Fatalf("peers not in deterministic order: %+v before %+v", a, b)
		}
	}
}

// The plan's buffer hint must never change results — only allocation.
func TestExchangePlanIsBehaviourNeutral(t *testing.T) {
	ids := []graph.NodeID{9, 4, 2, 7, 7, 1}
	withPlan := modExchange(t, 2, nil, PlanFromCuts([]int64{1 << 40, 0}))
	defer withPlan.Close()
	without := modExchange(t, 2, nil, nil)
	defer without.Close()
	a, err := withPlan.GatherFeatures(0, ids)
	if err != nil {
		t.Fatal(err)
	}
	b, err := without.GatherFeatures(0, ids)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("plan changed gather results at %d", i)
		}
	}
	if sa, sb := withPlan.TotalStats(), without.TotalStats(); sa != sb {
		t.Fatalf("plan changed traffic accounting: %+v vs %+v", sa, sb)
	}
	if p := PlanFromCuts([]int64{6, 4}); p.Total != 10 {
		t.Fatalf("plan total %d", p.Total)
	}
}
