package ddp

import (
	"encoding/binary"
	"fmt"
	"math"

	"argo/internal/graph"
	"argo/internal/tensor/half"
)

// MsgKind discriminates the batched exchange messages.
type MsgKind uint8

const (
	// MsgFeatures requests the feature rows of a batch of owned nodes.
	MsgFeatures MsgKind = iota + 1
	// MsgLabels requests the labels of a batch of owned nodes.
	MsgLabels
	// MsgGradients pushes halo-row gradient contributions to the owner
	// (the reverse path; the response is an empty acknowledgement).
	MsgGradients
)

func (k MsgKind) String() string {
	switch k {
	case MsgFeatures:
		return "features"
	case MsgLabels:
		return "labels"
	case MsgGradients:
		return "gradients"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Request is one batched exchange message: everything replica From needs
// from one peer for one gather (or scatter) call. Batching requests per
// (peer, iteration) — instead of one lookup per row — is what makes the
// exchange viable across address spaces: the message count per epoch
// drops from O(remote rows) to O(peers · iterations).
type Request struct {
	From int
	Kind MsgKind
	// Dtype selects the wire encoding of float payloads: the request's
	// own Grad values, and the Feat values the responder sends back.
	// Negotiated once from the store dtype (DtypeF16 halves both); fp16
	// payload values must already be fp16-exact — the exchange quantises
	// gradients before any transport sees them — so the encoding is
	// lossless and transports stay bit-identical.
	Dtype graph.FeatDtype
	IDs   []graph.NodeID
	// Grad carries len(IDs)·featDim float32 gradient values, row-major,
	// for MsgGradients; nil otherwise.
	Grad []float32
}

// Response answers one Request. Exactly one payload field is set,
// matching the request's kind; a MsgGradients response is empty.
type Response struct {
	// Dtype is the wire encoding of Feat (echoed from the request).
	Dtype graph.FeatDtype
	// Feat holds len(IDs)·featDim float32 feature values, row-major.
	Feat []float32
	// Labels holds len(IDs) labels.
	Labels []int32
}

// wireSize returns the bytes req occupies on the wire — the length
// prefix plus the encodeRequest payload. It is pure arithmetic (no
// encode), and computed identically whichever transport carries the
// message, so wire-byte accounting is transport-invariant;
// TestWireSizeMatchesEncoding pins it to the codec.
func (req *Request) wireSize() int64 {
	return 4 + 14 + 4*int64(len(req.IDs)) + int64(req.Dtype.Size())*int64(len(req.Grad))
}

// wireSize returns the bytes resp occupies on the wire (length prefix
// plus the ok-status encodeResponse payload).
func (resp *Response) wireSize() int64 {
	return 4 + 10 + int64(resp.Dtype.Size())*int64(len(resp.Feat)) + 4*int64(len(resp.Labels))
}

// Handler answers batched requests on behalf of one replica. Handlers
// must be safe for concurrent use: with overlap enabled, a peer's
// sampling workers issue fetches while its trainer computes.
type Handler func(req *Request) (*Response, error)

// Transport moves batched exchange messages between replicas. The
// in-process implementation is a direct function call; the TCP
// implementation frames the same messages over loopback sockets,
// proving the seam works across address spaces. A transport is bound
// once (by the exchange, which supplies one handler per replica) and
// then carries concurrent Calls from any replica.
type Transport interface {
	// Bind installs the per-replica handlers. Called exactly once,
	// before any Call.
	Bind(handlers []Handler) error
	// Call delivers req to replica `to` and returns its response.
	Call(to int, req *Request) (*Response, error)
	// Name identifies the transport ("inproc", "tcp").
	Name() string
	// Close releases the transport's resources. Calls after Close fail.
	Close() error
}

// NewTransport builds a registered transport by name. The empty name
// defaults to the in-process transport.
func NewTransport(name string) (Transport, error) {
	switch name {
	case "", "inproc":
		return NewInprocTransport(), nil
	case "tcp":
		return NewTCPTransport(), nil
	}
	return nil, fmt.Errorf("ddp: unknown transport %q (inproc, tcp)", name)
}

// InprocTransport delivers batched messages by direct function call —
// the transport for replicas sharing one address space. The batching
// still happens (message counts match the TCP transport exactly), so
// in-process runs measure the same traffic a multi-node run would put
// on the wire.
type InprocTransport struct {
	handlers []Handler
	closed   bool
}

// NewInprocTransport returns an unbound in-process transport.
func NewInprocTransport() *InprocTransport { return &InprocTransport{} }

// Bind implements Transport.
func (t *InprocTransport) Bind(handlers []Handler) error {
	if t.handlers != nil {
		return fmt.Errorf("ddp: inproc transport already bound")
	}
	if len(handlers) == 0 {
		return fmt.Errorf("ddp: inproc transport bound with no handlers")
	}
	t.handlers = handlers
	return nil
}

// Call implements Transport.
func (t *InprocTransport) Call(to int, req *Request) (*Response, error) {
	if t.closed {
		return nil, fmt.Errorf("ddp: inproc transport is closed")
	}
	if to < 0 || to >= len(t.handlers) {
		return nil, fmt.Errorf("ddp: call to replica %d of %d", to, len(t.handlers))
	}
	return t.handlers[to](req)
}

// Name implements Transport.
func (t *InprocTransport) Name() string { return "inproc" }

// Close implements Transport.
func (t *InprocTransport) Close() error {
	t.closed = true
	return nil
}

// Wire format (shared by every cross-address-space transport): a frame
// is a little-endian u32 payload length followed by the payload. The
// request payload is
//
//	u8 kind | u8 dtype | u32 from | u32 len(ids) | ids as i32 |
//	  u32 len(grad) | grad (f32, or fp16 bits when dtype is fp16)
//
// and the response payload is
//
//	u8 status (0 ok, 1 error) |
//	  ok:    u8 dtype | u32 len(feat) | feat (f32 or fp16 by dtype) |
//	         u32 len(labels) | labels as i32
//	  error: utf-8 message (the rest of the frame)
//
// The dtype byte makes every frame self-describing, so a decoder never
// needs out-of-band negotiation state to size the float payload. Counts
// always name logical float32 values; dtype only selects their byte
// encoding. maxFrame bounds a frame so a corrupt length prefix cannot
// drive an allocation by itself.
const maxFrame = 1 << 30

// appendFloats appends xs in the dtype's wire encoding. fp16 encoding
// rounds to nearest-even; callers guarantee fp16-exact values (features
// come from an fp16 store, gradients are pre-quantised), so on this
// code's paths the round is an identity and the wire is lossless.
func appendFloats(b []byte, dt graph.FeatDtype, xs []float32) []byte {
	if dt == graph.DtypeF16 {
		off := len(b)
		b = append(b, make([]byte, 2*len(xs))...)
		half.EncodeBytes(b[off:], xs)
		return b
	}
	for _, x := range xs {
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(x))
	}
	return b
}

// decodeFloats widens n dtype-encoded values from b. Mirroring the f32
// path, fp16 bit patterns are decoded as-is (non-finite included) —
// payload hygiene is the store and exchange layers' job, not the codec's.
func decodeFloats(b []byte, dt graph.FeatDtype, n int) []float32 {
	out := make([]float32, n)
	if dt == graph.DtypeF16 {
		half.DecodeBytes(out, b[:2*n])
		return out
	}
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// wireDtype validates a frame's dtype byte.
func wireDtype(b byte) (graph.FeatDtype, error) {
	dt := graph.FeatDtype(b)
	if dt != graph.DtypeF32 && dt != graph.DtypeF16 {
		return 0, fmt.Errorf("ddp: unknown wire dtype %d", b)
	}
	return dt, nil
}

// encodeRequest serialises req into a frame payload (without the length
// prefix).
func encodeRequest(req *Request) []byte {
	elem := req.Dtype.Size()
	b := make([]byte, 0, 10+4*len(req.IDs)+4+elem*len(req.Grad))
	b = append(b, byte(req.Kind), byte(req.Dtype))
	b = binary.LittleEndian.AppendUint32(b, uint32(req.From))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(req.IDs)))
	for _, v := range req.IDs {
		b = binary.LittleEndian.AppendUint32(b, uint32(v))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(req.Grad)))
	return appendFloats(b, req.Dtype, req.Grad)
}

// decodeRequest parses a frame payload produced by encodeRequest.
func decodeRequest(b []byte) (*Request, error) {
	if len(b) < 10 {
		return nil, fmt.Errorf("ddp: request frame of %d bytes", len(b))
	}
	req := &Request{Kind: MsgKind(b[0]), From: int(binary.LittleEndian.Uint32(b[2:6]))}
	if req.Kind != MsgFeatures && req.Kind != MsgLabels && req.Kind != MsgGradients {
		return nil, fmt.Errorf("ddp: unknown message kind %d", b[0])
	}
	var err error
	if req.Dtype, err = wireDtype(b[1]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(b[6:10]))
	off := 10
	if n < 0 || n > (len(b)-off)/4 {
		return nil, fmt.Errorf("ddp: request claims %d ids beyond its frame", n)
	}
	if n > 0 {
		req.IDs = make([]graph.NodeID, n)
		for i := range req.IDs {
			req.IDs[i] = graph.NodeID(binary.LittleEndian.Uint32(b[off : off+4]))
			off += 4
		}
	}
	if len(b)-off < 4 {
		return nil, fmt.Errorf("ddp: request frame truncated before gradient payload")
	}
	g := int(binary.LittleEndian.Uint32(b[off : off+4]))
	off += 4
	elem := req.Dtype.Size()
	if g < 0 || g > (len(b)-off)/elem {
		return nil, fmt.Errorf("ddp: request claims %d gradient values beyond its frame", g)
	}
	if g > 0 {
		req.Grad = decodeFloats(b[off:], req.Dtype, g)
		off += elem * g
	}
	if off != len(b) {
		return nil, fmt.Errorf("ddp: %d trailing bytes in request frame", len(b)-off)
	}
	return req, nil
}

// encodeResponse serialises resp (or an error) into a frame payload.
func encodeResponse(resp *Response, herr error) []byte {
	if herr != nil {
		msg := herr.Error()
		b := make([]byte, 0, 1+len(msg))
		b = append(b, 1)
		return append(b, msg...)
	}
	elem := resp.Dtype.Size()
	b := make([]byte, 0, 10+elem*len(resp.Feat)+4*len(resp.Labels))
	b = append(b, 0, byte(resp.Dtype))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(resp.Feat)))
	b = appendFloats(b, resp.Dtype, resp.Feat)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(resp.Labels)))
	for _, l := range resp.Labels {
		b = binary.LittleEndian.AppendUint32(b, uint32(l))
	}
	return b
}

// decodeResponse parses a frame payload produced by encodeResponse. A
// remote handler error comes back as a non-nil error.
func decodeResponse(b []byte) (*Response, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("ddp: empty response frame")
	}
	if b[0] == 1 {
		return nil, fmt.Errorf("ddp: remote handler: %s", string(b[1:]))
	}
	if b[0] != 0 {
		return nil, fmt.Errorf("ddp: unknown response status %d", b[0])
	}
	if len(b) < 6 {
		return nil, fmt.Errorf("ddp: response frame of %d bytes", len(b))
	}
	resp := &Response{}
	var err error
	if resp.Dtype, err = wireDtype(b[1]); err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(b[2:6]))
	off := 6
	elem := resp.Dtype.Size()
	if n < 0 || n > (len(b)-off)/elem {
		return nil, fmt.Errorf("ddp: response claims %d feature values beyond its frame", n)
	}
	if n > 0 {
		resp.Feat = decodeFloats(b[off:], resp.Dtype, n)
		off += elem * n
	}
	if len(b)-off < 4 {
		return nil, fmt.Errorf("ddp: response frame truncated before labels")
	}
	l := int(binary.LittleEndian.Uint32(b[off : off+4]))
	off += 4
	if l < 0 || l > (len(b)-off)/4 {
		return nil, fmt.Errorf("ddp: response claims %d labels beyond its frame", l)
	}
	if l > 0 {
		resp.Labels = make([]int32, l)
		for i := range resp.Labels {
			resp.Labels[i] = int32(binary.LittleEndian.Uint32(b[off : off+4]))
			off += 4
		}
	}
	if off != len(b) {
		return nil, fmt.Errorf("ddp: %d trailing bytes in response frame", len(b)-off)
	}
	return resp, nil
}
