package ddp

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"argo/internal/graph"
)

// Wire codec round-trips: every message kind, empty and full payloads,
// and float bit-patterns that a text encoding would mangle.
func TestWireCodecRoundTrip(t *testing.T) {
	reqs := []*Request{
		{From: 0, Kind: MsgFeatures, IDs: []graph.NodeID{1, 2, 3}},
		{From: 3, Kind: MsgLabels, IDs: []graph.NodeID{0}},
		{From: 1, Kind: MsgGradients, IDs: []graph.NodeID{7, 9},
			Grad: []float32{1.5, -0.25, float32(math.Inf(1)), math.Float32frombits(0x7fc00001)}},
		{From: 2, Kind: MsgFeatures},
		// fp16 wire: payload values are fp16-exact (as the exchange
		// guarantees), so the narrow encoding must still be bit-exact.
		{From: 1, Kind: MsgGradients, Dtype: graph.DtypeF16, IDs: []graph.NodeID{4, 5},
			Grad: []float32{1.5, -0.25, 65504, -6.103515625e-05}},
		{From: 0, Kind: MsgFeatures, Dtype: graph.DtypeF16, IDs: []graph.NodeID{11}},
	}
	for i, req := range reqs {
		got, err := decodeRequest(encodeRequest(req))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if got.From != req.From || got.Kind != req.Kind || got.Dtype != req.Dtype || !reflect.DeepEqual(got.IDs, req.IDs) {
			t.Fatalf("request %d round-tripped to %+v", i, got)
		}
		if len(got.Grad) != len(req.Grad) {
			t.Fatalf("request %d gradient length %d, want %d", i, len(got.Grad), len(req.Grad))
		}
		for j := range req.Grad {
			if math.Float32bits(got.Grad[j]) != math.Float32bits(req.Grad[j]) {
				t.Fatalf("request %d gradient %d not bit-exact", i, j)
			}
		}
	}
	resps := []*Response{
		{Feat: []float32{1, 2, 3, 4}},
		{Labels: []int32{-1, 0, 7}},
		{},
		{Dtype: graph.DtypeF16, Feat: []float32{0.5, -2048, 0.0999755859375}},
	}
	for i, resp := range resps {
		got, err := decodeResponse(encodeResponse(resp, nil))
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if got.Dtype != resp.Dtype || len(got.Feat) != len(resp.Feat) || len(got.Labels) != len(resp.Labels) {
			t.Fatalf("response %d round-tripped to %+v", i, got)
		}
		for j := range resp.Feat {
			if math.Float32bits(got.Feat[j]) != math.Float32bits(resp.Feat[j]) {
				t.Fatalf("response %d feat %d not bit-exact", i, j)
			}
		}
		for j := range resp.Labels {
			if got.Labels[j] != resp.Labels[j] {
				t.Fatalf("response %d label %d differs", i, j)
			}
		}
	}
	if _, err := decodeResponse(encodeResponse(nil, fmt.Errorf("shard went away"))); err == nil {
		t.Fatal("remote error response decoded without error")
	}
}

// Malformed frames must error, never panic or over-allocate.
func TestWireCodecRejectsMalformed(t *testing.T) {
	good := encodeRequest(&Request{From: 0, Kind: MsgFeatures, IDs: []graph.NodeID{1, 2}})
	bad := [][]byte{
		nil,
		{},
		good[:5],
		append(append([]byte{}, good...), 0xee), // trailing byte
		{99, 0, 0, 0, 0, 0, 0, 0, 0, 0},         // unknown kind
		{byte(MsgFeatures), 7, 0, 0, 0, 0, 0, 0, 0, 0},             // unknown wire dtype
		{byte(MsgFeatures), 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f}, // id count beyond frame
	}
	for i, b := range bad {
		if _, err := decodeRequest(b); err == nil {
			t.Fatalf("malformed request %d accepted", i)
		}
	}
	goodResp := encodeResponse(&Response{Feat: []float32{1}}, nil)
	badResp := [][]byte{
		nil,
		{},
		{2},
		goodResp[:3],
		append(append([]byte{}, goodResp...), 0xee),
		{0, 9, 0, 0, 0, 0, 0, 0, 0, 0}, // unknown wire dtype
		{0, 0, 0xff, 0xff, 0xff, 0x7f}, // feat count beyond frame
	}
	for i, b := range badResp {
		if _, err := decodeResponse(b); err == nil {
			t.Fatalf("malformed response %d accepted", i)
		}
	}
}

// wireSize is pure arithmetic over the message fields; the codec is the
// ground truth. The two must never drift, or WireBytes accounting lies.
func TestWireSizeMatchesEncoding(t *testing.T) {
	reqs := []*Request{
		{Kind: MsgFeatures},
		{Kind: MsgFeatures, IDs: []graph.NodeID{1, 2, 3}},
		{Kind: MsgFeatures, Dtype: graph.DtypeF16, IDs: []graph.NodeID{1, 2, 3}},
		{Kind: MsgGradients, IDs: []graph.NodeID{1, 2}, Grad: make([]float32, 10)},
		{Kind: MsgGradients, Dtype: graph.DtypeF16, IDs: []graph.NodeID{1, 2}, Grad: make([]float32, 10)},
	}
	for i, req := range reqs {
		if got, want := int64(len(encodeRequest(req)))+4, req.wireSize(); got != want {
			t.Fatalf("request %d: encoded+prefix %d bytes, wireSize %d", i, got, want)
		}
	}
	resps := []*Response{
		{},
		{Feat: make([]float32, 6)},
		{Dtype: graph.DtypeF16, Feat: make([]float32, 6)},
		{Labels: make([]int32, 4)},
		{Dtype: graph.DtypeF16, Feat: make([]float32, 7), Labels: make([]int32, 3)},
	}
	for i, resp := range resps {
		if got, want := int64(len(encodeResponse(resp, nil)))+4, resp.wireSize(); got != want {
			t.Fatalf("response %d: encoded+prefix %d bytes, wireSize %d", i, got, want)
		}
	}
}

// echoHandlers answer features as [id, id+0.5] and labels as id%5, so
// transport behaviour is observable independent of the exchange.
func echoHandlers(n, featDim int) []Handler {
	handlers := make([]Handler, n)
	for r := 0; r < n; r++ {
		handlers[r] = func(req *Request) (*Response, error) {
			switch req.Kind {
			case MsgFeatures:
				resp := &Response{Feat: make([]float32, len(req.IDs)*featDim)}
				for i, v := range req.IDs {
					resp.Feat[i*featDim] = float32(v)
					resp.Feat[i*featDim+1] = float32(v) + 0.5
				}
				return resp, nil
			case MsgLabels:
				resp := &Response{Labels: make([]int32, len(req.IDs))}
				for i, v := range req.IDs {
					resp.Labels[i] = v % 5
				}
				return resp, nil
			}
			return nil, fmt.Errorf("handler rejects %s", req.Kind)
		}
	}
	return handlers
}

// Both transports must carry the same messages to the same answers.
func TestTransportsAgree(t *testing.T) {
	for _, name := range []string{"inproc", "tcp"} {
		t.Run(name, func(t *testing.T) {
			tr, err := NewTransport(name)
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			if tr.Name() != name {
				t.Fatalf("transport named %q", tr.Name())
			}
			if err := tr.Bind(echoHandlers(3, 2)); err != nil {
				t.Fatal(err)
			}
			resp, err := tr.Call(2, &Request{From: 0, Kind: MsgFeatures, IDs: []graph.NodeID{4, 9}})
			if err != nil {
				t.Fatal(err)
			}
			want := []float32{4, 4.5, 9, 9.5}
			if !reflect.DeepEqual(resp.Feat, want) {
				t.Fatalf("feat %v, want %v", resp.Feat, want)
			}
			labels, err := tr.Call(1, &Request{From: 2, Kind: MsgLabels, IDs: []graph.NodeID{7}})
			if err != nil {
				t.Fatal(err)
			}
			if len(labels.Labels) != 1 || labels.Labels[0] != 2 {
				t.Fatalf("labels %v", labels.Labels)
			}
			// A handler error must come back as a Call error on both
			// transports (over TCP it crosses the wire as a status frame).
			if _, err := tr.Call(0, &Request{From: 1, Kind: MsgGradients}); err == nil {
				t.Fatal("handler error swallowed")
			}
			// The connection must survive an errored request.
			if _, err := tr.Call(0, &Request{From: 1, Kind: MsgLabels, IDs: []graph.NodeID{1}}); err != nil {
				t.Fatalf("call after handler error: %v", err)
			}
			if _, err := tr.Call(9, &Request{From: 0, Kind: MsgLabels}); err == nil {
				t.Fatal("out-of-range peer accepted")
			}
		})
	}
}

// Concurrent calls from many goroutines must interleave frame-atomically.
func TestTCPTransportConcurrentCalls(t *testing.T) {
	tr := NewTCPTransport()
	defer tr.Close()
	if err := tr.Bind(echoHandlers(2, 2)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := graph.NodeID(g*100 + i)
				resp, err := tr.Call(g%2, &Request{From: 1 - g%2, Kind: MsgFeatures, IDs: []graph.NodeID{id}})
				if err != nil {
					errs <- err
					return
				}
				if resp.Feat[0] != float32(id) || resp.Feat[1] != float32(id)+0.5 {
					errs <- fmt.Errorf("goroutine %d got %v for id %d", g, resp.Feat, id)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTransportLifecycle(t *testing.T) {
	if _, err := NewTransport("carrier-pigeon"); err == nil {
		t.Fatal("unknown transport accepted")
	}
	tr, err := NewTransport("")
	if err != nil || tr.Name() != "inproc" {
		t.Fatalf("default transport: %v (%v)", tr, err)
	}
	for _, name := range []string{"inproc", "tcp"} {
		tr, err := NewTransport(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Call(0, &Request{Kind: MsgLabels}); err == nil {
			t.Fatalf("%s: call before Bind accepted", name)
		}
		if err := tr.Bind(nil); err == nil {
			t.Fatalf("%s: empty Bind accepted", name)
		}
		if err := tr.Bind(echoHandlers(1, 2)); err != nil {
			t.Fatal(err)
		}
		if err := tr.Bind(echoHandlers(1, 2)); err == nil {
			t.Fatalf("%s: double Bind accepted", name)
		}
		if err := tr.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
		if _, err := tr.Call(0, &Request{Kind: MsgLabels}); err == nil {
			t.Fatalf("%s: call after Close accepted", name)
		}
		if err := tr.Close(); err != nil {
			t.Fatalf("%s: second close: %v", name, err)
		}
	}
}
