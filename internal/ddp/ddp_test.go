package ddp

import (
	"math"
	"math/rand"
	"testing"

	"argo/internal/nn"
)

func replicas(t *testing.T, n int) [][]*nn.Param {
	t.Helper()
	sets := make([][]*nn.Param, n)
	for r := range sets {
		m, err := nn.NewModel(nn.ModelSpec{Kind: nn.KindSAGE, Dims: []int{4, 6, 3}, Seed: 7}, nil)
		if err != nil {
			t.Fatal(err)
		}
		sets[r] = m.Params()
	}
	return sets
}

func TestAllReduceMeanAverages(t *testing.T) {
	sets := replicas(t, 3)
	for r := range sets {
		for _, p := range sets[r] {
			p.Grad.Fill(float32(r + 1)) // grads 1, 2, 3 → mean 2
		}
	}
	if err := AllReduceMean(sets); err != nil {
		t.Fatal(err)
	}
	for r := range sets {
		for _, p := range sets[r] {
			for _, v := range p.Grad.Data {
				if v != 2 {
					t.Fatalf("replica %d grad %v, want 2", r, v)
				}
			}
		}
	}
}

func TestAllReduceWeighted(t *testing.T) {
	sets := replicas(t, 2)
	for _, p := range sets[0] {
		p.Grad.Fill(1)
	}
	for _, p := range sets[1] {
		p.Grad.Fill(4)
	}
	// Weights 3 and 1: mean = (3·1 + 1·4)/4 = 1.75.
	if err := AllReduceMeanWeighted(sets, []float64{3, 1}); err != nil {
		t.Fatal(err)
	}
	for _, p := range sets[1] {
		for _, v := range p.Grad.Data {
			if math.Abs(float64(v)-1.75) > 1e-6 {
				t.Fatalf("weighted mean = %v, want 1.75", v)
			}
		}
	}
}

func TestAllReduceZeroWeightReplicaSitsOut(t *testing.T) {
	sets := replicas(t, 2)
	for _, p := range sets[0] {
		p.Grad.Fill(5)
	}
	for _, p := range sets[1] {
		p.Grad.Fill(999) // must be ignored
	}
	if err := AllReduceMeanWeighted(sets, []float64{2, 0}); err != nil {
		t.Fatal(err)
	}
	for r := range sets {
		for _, p := range sets[r] {
			for _, v := range p.Grad.Data {
				if v != 5 {
					t.Fatalf("replica %d got %v, want 5", r, v)
				}
			}
		}
	}
}

func TestAllReduceErrors(t *testing.T) {
	if err := AllReduceMean(nil); err == nil {
		t.Fatal("expected error for no replicas")
	}
	sets := replicas(t, 2)
	if err := AllReduceMeanWeighted(sets, []float64{1}); err == nil {
		t.Fatal("expected weight-count error")
	}
	if err := AllReduceMeanWeighted(sets, []float64{1, -1}); err == nil {
		t.Fatal("expected negative-weight error")
	}
	if err := AllReduceMeanWeighted(sets, []float64{0, 0}); err == nil {
		t.Fatal("expected all-zero-weight error")
	}
	short := [][]*nn.Param{sets[0], sets[1][:1]}
	if err := AllReduceMean(short); err == nil {
		t.Fatal("expected param-count error")
	}
}

// The replica-consistency property: same init, synced grads, same
// optimizer → weights stay bit-identical across steps.
func TestReplicasStayConsistent(t *testing.T) {
	sets := replicas(t, 4)
	opts := make([]*nn.Adam, 4)
	for r := range opts {
		opts[r] = nn.NewAdam(0.01)
	}
	rng := rand.New(rand.NewSource(9))
	for step := 0; step < 20; step++ {
		for r := range sets {
			for _, p := range sets[r] {
				for k := range p.Grad.Data {
					p.Grad.Data[k] = float32(rng.NormFloat64()) // divergent raw grads
				}
			}
		}
		if err := AllReduceMean(sets); err != nil {
			t.Fatal(err)
		}
		for r := range sets {
			opts[r].Step(sets[r])
		}
		if d := MaxWeightDivergence(sets); d != 0 {
			t.Fatalf("step %d: replicas diverged by %v", step, d)
		}
	}
}

func TestMaxWeightDivergenceDetects(t *testing.T) {
	sets := replicas(t, 2)
	if MaxWeightDivergence(sets) != 0 {
		t.Fatal("fresh replicas must be identical")
	}
	sets[1][0].W.Data[0] += 0.5
	if d := MaxWeightDivergence(sets); math.Abs(d-0.5) > 1e-6 {
		t.Fatalf("divergence = %v, want 0.5", d)
	}
}
