// Package platform encodes the two evaluation machines from the paper's
// Table II and provides the virtual-core allocator the Core-Binder uses.
// The machines are *models*: the reproduction runs on commodity hardware,
// so the specs parameterise the discrete-event simulator in
// internal/platsim rather than describe the host.
package platform

import (
	"fmt"
	"sync"
)

// Spec describes a multi-socket machine (paper Table II, plus the derived
// microarchitectural constants the simulator needs).
type Spec struct {
	Name           string
	Sockets        int
	CoresPerSocket int
	FreqGHz        float64
	LLCMB          float64
	MemGB          int
	// PeakBWGBs is the aggregate DRAM bandwidth across all sockets.
	PeakBWGBs float64
	// UPIGBs is the total cross-socket interconnect bandwidth (Table II
	// context; the simulator folds its effect into NUMAPenalty).
	UPIGBs float64
	// NUMAPenalty scales the bandwidth lost to remote (UPI) accesses:
	// with data interleaved over k sockets, a fraction (k−1)/k of traffic
	// crosses sockets and effective bandwidth becomes
	// socketBW·k / (1 + (k−1)/k · NUMAPenalty). This is the effect that
	// flattens ARGO's scaling past 64 cores on the four-socket machine
	// (paper §IX).
	NUMAPenalty float64
	// PerCoreBWGBs is the DRAM bandwidth one core can sustain on the
	// mixed streaming/irregular access patterns of GNN training.
	PerCoreBWGBs float64
}

// TotalCores returns Sockets × CoresPerSocket.
func (s Spec) TotalCores() int { return s.Sockets * s.CoresPerSocket }

// SocketBWGBs returns one socket's DRAM bandwidth.
func (s Spec) SocketBWGBs() float64 { return s.PeakBWGBs / float64(s.Sockets) }

// EffectiveBW returns the platform bandwidth available to workloads whose
// cores span the given number of sockets: the local bandwidth of those
// sockets, discounted by the NUMA penalty on the remote-access fraction.
// It is monotone in socketsUsed but sub-linear — the §IX UPI bottleneck.
func (s Spec) EffectiveBW(socketsUsed int) float64 {
	if socketsUsed < 1 {
		socketsUsed = 1
	}
	if socketsUsed > s.Sockets {
		socketsUsed = s.Sockets
	}
	bw := s.SocketBWGBs() * float64(socketsUsed)
	remoteFrac := float64(socketsUsed-1) / float64(socketsUsed)
	return bw / (1 + remoteFrac*s.NUMAPenalty)
}

// IceLake4S models the paper's four-socket Intel Xeon 8380H machine.
var IceLake4S = Spec{
	Name:           "Ice Lake 8380H (4S)",
	Sockets:        4,
	CoresPerSocket: 28,
	FreqGHz:        2.9,
	LLCMB:          154,
	MemGB:          384,
	PeakBWGBs:      275,
	UPIGBs:         125,
	NUMAPenalty:    0.8,
	PerCoreBWGBs:   13,
}

// SapphireRapids2S models the paper's two-socket Intel Xeon 6430L machine.
var SapphireRapids2S = Spec{
	Name:           "Sapphire Rapids 6430L (2S)",
	Sockets:        2,
	CoresPerSocket: 32,
	FreqGHz:        2.1,
	LLCMB:          120,
	MemGB:          1024,
	PeakBWGBs:      563,
	UPIGBs:         250,
	NUMAPenalty:    0.35,
	PerCoreBWGBs:   12,
}

// CoreID identifies one virtual core.
type CoreID int

// Allocator hands out disjoint virtual cores, socket-contiguously — the
// placement the Core-Binder requests so each GNN process's memory stays
// mostly socket-local. It is safe for concurrent use.
type Allocator struct {
	spec Spec
	mu   sync.Mutex
	used []bool
}

// NewAllocator returns an allocator over all cores of spec.
func NewAllocator(spec Spec) *Allocator {
	return &Allocator{spec: spec, used: make([]bool, spec.TotalCores())}
}

// Spec returns the machine description.
func (a *Allocator) Spec() Spec { return a.spec }

// Free returns how many cores are unallocated.
func (a *Allocator) Free() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, u := range a.used {
		if !u {
			n++
		}
	}
	return n
}

// Allocate reserves k cores, preferring a contiguous run within one
// socket, falling back to the lowest-numbered free cores.
func (a *Allocator) Allocate(k int) ([]CoreID, error) {
	if k <= 0 {
		return nil, fmt.Errorf("platform: allocate %d cores", k)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	// First pass: contiguous run inside a single socket.
	per := a.spec.CoresPerSocket
	if k <= per {
		for s := 0; s < a.spec.Sockets; s++ {
			base := s * per
			run := 0
			for i := 0; i < per; i++ {
				if a.used[base+i] {
					run = 0
					continue
				}
				run++
				if run == k {
					out := make([]CoreID, k)
					for j := 0; j < k; j++ {
						idx := base + i - k + 1 + j
						a.used[idx] = true
						out[j] = CoreID(idx)
					}
					return out, nil
				}
			}
		}
	}
	// Fallback: any free cores.
	var out []CoreID
	for i, u := range a.used {
		if !u {
			out = append(out, CoreID(i))
			if len(out) == k {
				break
			}
		}
	}
	if len(out) < k {
		return nil, fmt.Errorf("platform: %d cores requested, %d free", k, len(out))
	}
	for _, c := range out {
		a.used[c] = true
	}
	return out, nil
}

// Release returns cores to the pool. Releasing a free core is an error.
func (a *Allocator) Release(cores []CoreID) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, c := range cores {
		if c < 0 || int(c) >= len(a.used) {
			return fmt.Errorf("platform: release invalid core %d", c)
		}
		if !a.used[c] {
			return fmt.Errorf("platform: double release of core %d", c)
		}
	}
	for _, c := range cores {
		a.used[c] = false
	}
	return nil
}

// SocketOf returns the socket a core belongs to.
func (a *Allocator) SocketOf(c CoreID) int { return int(c) / a.spec.CoresPerSocket }

// SocketsSpanned counts the distinct sockets covered by cores.
func (a *Allocator) SocketsSpanned(cores []CoreID) int {
	seen := map[int]bool{}
	for _, c := range cores {
		seen[a.SocketOf(c)] = true
	}
	return len(seen)
}
