package platform

import "errors"

// ErrNoMmap is returned by MapFile on platforms without mmap support;
// callers are expected to fall back to io.ReaderAt on the open file.
var ErrNoMmap = errors.New("platform: mmap not supported on this platform")
