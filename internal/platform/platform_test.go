package platform

import "testing"

func TestSpecsMatchTableII(t *testing.T) {
	if IceLake4S.TotalCores() != 112 || IceLake4S.Sockets != 4 {
		t.Fatalf("Ice Lake: %d cores, %d sockets", IceLake4S.TotalCores(), IceLake4S.Sockets)
	}
	if IceLake4S.PeakBWGBs != 275 || IceLake4S.FreqGHz != 2.9 || IceLake4S.MemGB != 384 {
		t.Fatal("Ice Lake Table II constants wrong")
	}
	if SapphireRapids2S.TotalCores() != 64 || SapphireRapids2S.Sockets != 2 {
		t.Fatalf("SPR: %d cores", SapphireRapids2S.TotalCores())
	}
	if SapphireRapids2S.PeakBWGBs != 563 || SapphireRapids2S.MemGB != 1024 {
		t.Fatal("SPR Table II constants wrong")
	}
}

func TestEffectiveBW(t *testing.T) {
	// One socket: local bandwidth only.
	if bw := IceLake4S.EffectiveBW(1); bw != IceLake4S.SocketBWGBs() {
		t.Fatalf("1-socket BW = %v", bw)
	}
	// Four sockets on Ice Lake: UPI-capped below peak (paper §IX).
	bw4 := IceLake4S.EffectiveBW(4)
	if bw4 >= IceLake4S.PeakBWGBs {
		t.Fatalf("4-socket Ice Lake BW %v should be UPI-capped below peak %v", bw4, IceLake4S.PeakBWGBs)
	}
	// Monotone non-decreasing in sockets used.
	prev := 0.0
	for s := 1; s <= 4; s++ {
		bw := IceLake4S.EffectiveBW(s)
		if bw < prev {
			t.Fatalf("EffectiveBW not monotone at %d sockets", s)
		}
		prev = bw
	}
	// Out-of-range inputs clamp.
	if IceLake4S.EffectiveBW(0) != IceLake4S.EffectiveBW(1) {
		t.Fatal("clamp low failed")
	}
	if IceLake4S.EffectiveBW(9) != IceLake4S.EffectiveBW(4) {
		t.Fatal("clamp high failed")
	}
}

func TestAllocatorContiguousSingleSocket(t *testing.T) {
	a := NewAllocator(IceLake4S)
	cores, err := a.Allocate(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(cores) != 8 || a.SocketsSpanned(cores) != 1 {
		t.Fatalf("8-core allocation spans %d sockets", a.SocketsSpanned(cores))
	}
	if a.Free() != 104 {
		t.Fatalf("Free = %d", a.Free())
	}
}

func TestAllocatorPrefersEmptySockets(t *testing.T) {
	a := NewAllocator(SapphireRapids2S)
	first, _ := a.Allocate(30)
	second, err := a.Allocate(30)
	if err != nil {
		t.Fatal(err)
	}
	// 30 won't fit in socket 0's remaining 2 cores; must land on socket 1.
	if a.SocketsSpanned(second) != 1 || a.SocketOf(second[0]) == a.SocketOf(first[0]) {
		t.Fatal("second allocation should use the empty socket")
	}
}

func TestAllocatorExhaustionAndRelease(t *testing.T) {
	a := NewAllocator(SapphireRapids2S)
	all, err := a.Allocate(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Allocate(1); err == nil {
		t.Fatal("over-allocation must fail")
	}
	if err := a.Release(all); err != nil {
		t.Fatal(err)
	}
	if a.Free() != 64 {
		t.Fatal("release did not return cores")
	}
	if err := a.Release(all[:1]); err == nil {
		t.Fatal("double release must fail")
	}
	if err := a.Release([]CoreID{999}); err == nil {
		t.Fatal("invalid release must fail")
	}
}

func TestAllocateZeroFails(t *testing.T) {
	a := NewAllocator(IceLake4S)
	if _, err := a.Allocate(0); err == nil {
		t.Fatal("zero allocation must fail")
	}
}

func TestAllocatorSpansSocketsWhenNeeded(t *testing.T) {
	a := NewAllocator(SapphireRapids2S)
	cores, err := a.Allocate(40) // more than one socket's 32
	if err != nil {
		t.Fatal(err)
	}
	if a.SocketsSpanned(cores) != 2 {
		t.Fatalf("40-core allocation spans %d sockets, want 2", a.SocketsSpanned(cores))
	}
}
