//go:build !linux

package platform

import "os"

// MmapSupported reports whether MapFile uses a real memory map on this
// platform. Non-linux builds use the portable ReadAt fallback instead.
const MmapSupported = false

// MapFile always fails on non-linux platforms; the graph store falls
// back to pread-style section reads, which preserve laziness (only the
// byte ranges of touched sections are read) at the cost of one copy.
func MapFile(*os.File) ([]byte, error) { return nil, ErrNoMmap }

// Unmap is a no-op on platforms without mmap.
func Unmap([]byte) error { return nil }
