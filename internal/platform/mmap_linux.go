//go:build linux

package platform

import (
	"fmt"
	"os"
	"syscall"
)

// MmapSupported reports whether MapFile uses a real memory map on this
// platform. On linux it does; elsewhere callers fall back to ReadAt.
const MmapSupported = true

// MapFile maps the whole of f read-only into memory. The returned slice
// aliases the page cache: bytes become resident on first touch, so a
// multi-GB .argograph store can be opened without reading (or allocating)
// more than the pages actually dereferenced. The caller must Unmap the
// slice before closing or truncating the file.
func MapFile(f *os.File) ([]byte, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size <= 0 {
		return nil, fmt.Errorf("platform: cannot mmap empty file %s", f.Name())
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("platform: file %s too large to mmap (%d bytes)", f.Name(), size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("platform: mmap %s: %w", f.Name(), err)
	}
	// The access pattern over a sectioned store is sequential within each
	// section; MADV_WILLNEED would defeat laziness, so advise nothing and
	// let first-touch faulting pay only for the sections used.
	return b, nil
}

// Unmap releases a mapping returned by MapFile.
func Unmap(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}
