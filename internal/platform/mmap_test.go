package platform

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestMapFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	want := bytes.Repeat([]byte("argograph!"), 1000)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b, err := MapFile(f)
	if !MmapSupported {
		if err == nil {
			t.Fatal("MapFile succeeded on a platform that reports no mmap support")
		}
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, want) {
		t.Fatalf("mapped %d bytes differ from file contents", len(b))
	}
	if err := Unmap(b); err != nil {
		t.Fatal(err)
	}
}

func TestMapFileEmpty(t *testing.T) {
	if !MmapSupported {
		t.Skip("no mmap on this platform")
	}
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := MapFile(f); err == nil {
		t.Fatal("mapped an empty file")
	}
}

func TestUnmapNil(t *testing.T) {
	if err := Unmap(nil); err != nil {
		t.Fatal(err)
	}
}
