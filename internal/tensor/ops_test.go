package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMatMul is the reference implementation the kernels are checked
// against.
func naiveMatMul(a, b *Matrix) *Matrix {
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += float64(a.At(i, k)) * float64(b.At(k, j))
			}
			c.Set(i, j, float32(s))
		}
	}
	return c
}

func transpose(m *Matrix) *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pool := NewPool(3)
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(17), 1+rng.Intn(17), 1+rng.Intn(17)
		a, b := randomMatrix(rng, m, k), randomMatrix(rng, k, n)
		got := New(m, n)
		MatMul(pool, got, a, b)
		want := naiveMatMul(a, b)
		if got.MaxAbsDiff(want) > 1e-4 {
			t.Fatalf("trial %d: MatMul diff %g", trial, got.MaxAbsDiff(want))
		}
	}
}

func TestMatMulBTAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pool := NewPool(2)
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(13), 1+rng.Intn(13), 1+rng.Intn(13)
		a, b := randomMatrix(rng, m, k), randomMatrix(rng, n, k)
		got := New(m, n)
		MatMulBT(pool, got, a, b)
		want := naiveMatMul(a, transpose(b))
		if got.MaxAbsDiff(want) > 1e-4 {
			t.Fatalf("trial %d: MatMulBT diff %g", trial, got.MaxAbsDiff(want))
		}
	}
}

func TestMatMulATAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pool := NewPool(4)
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(13), 1+rng.Intn(13), 1+rng.Intn(13)
		a, b := randomMatrix(rng, k, m), randomMatrix(rng, k, n)
		got := New(m, n)
		MatMulAT(pool, got, a, b)
		want := naiveMatMul(transpose(a), b)
		if got.MaxAbsDiff(want) > 1e-4 {
			t.Fatalf("trial %d: MatMulAT diff %g", trial, got.MaxAbsDiff(want))
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	pool := NewPool(1)
	cases := []func(){
		func() { MatMul(pool, New(2, 2), New(2, 3), New(2, 2)) },
		func() { MatMulBT(pool, New(2, 2), New(2, 3), New(2, 2)) },
		func() { MatMulAT(pool, New(2, 2), New(3, 2), New(2, 2)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected shape panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestMatMulWorkerInvariance is the key determinism property: the result
// must not depend on the pool's worker count.
func TestMatMulWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b := randomMatrix(rng, 31, 17), randomMatrix(rng, 17, 23)
	ref := New(31, 23)
	MatMul(NewPool(1), ref, a, b)
	for _, w := range []int{2, 3, 5, 8, 64} {
		got := New(31, 23)
		MatMul(NewPool(w), got, a, b)
		if !got.Equal(ref) {
			t.Fatalf("workers=%d produced different result", w)
		}
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ, checked through the three kernel variants.
func TestQuickMatMulTransposeIdentity(t *testing.T) {
	pool := NewPool(2)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(9), 1+rng.Intn(9), 1+rng.Intn(9)
		a, b := randomMatrix(rng, m, k), randomMatrix(rng, k, n)
		ab := New(m, n)
		MatMul(pool, ab, a, b)
		// Bᵀ·Aᵀ via MatMulBT(Bᵀ, A) ... compute directly with naive.
		btat := naiveMatMul(transpose(b), transpose(a))
		return transpose(ab).MaxAbsDiff(btat) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: ColSum(A) + ColSum(B) == ColSum(A+B).
func TestQuickColSumLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(9), 1+rng.Intn(9)
		a, b := randomMatrix(rng, r, c), randomMatrix(rng, r, c)
		sa, sb := make([]float32, c), make([]float32, c)
		ColSum(sa, a)
		ColSum(sb, b)
		Add(a, b)
		sum := make([]float32, c)
		ColSum(sum, a)
		for j := range sum {
			if math.Abs(float64(sum[j]-(sa[j]+sb[j]))) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAddAndAddScaled(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{10, 20, 30})
	Add(a, b)
	want := []float32{11, 22, 33}
	for i, v := range want {
		if a.Data[i] != v {
			t.Fatalf("Add: got %v want %v", a.Data, want)
		}
	}
	AddScaled(a, -1, b)
	for i, v := range []float32{1, 2, 3} {
		if a.Data[i] != v {
			t.Fatalf("AddScaled: got %v", a.Data)
		}
	}
}

func TestScale(t *testing.T) {
	m := FromSlice(1, 2, []float32{2, -4})
	Scale(m, 0.5)
	if m.Data[0] != 1 || m.Data[1] != -2 {
		t.Fatalf("Scale: %v", m.Data)
	}
}

func TestAddRowVector(t *testing.T) {
	m := New(2, 2)
	AddRowVector(m, []float32{1, 2})
	if m.At(0, 0) != 1 || m.At(1, 1) != 2 {
		t.Fatalf("AddRowVector: %v", m.Data)
	}
}

func TestReLUForwardBackward(t *testing.T) {
	src := FromSlice(1, 4, []float32{-1, 0, 2, -3})
	dst := New(1, 4)
	ReLU(dst, src)
	want := []float32{0, 0, 2, 0}
	for i, v := range want {
		if dst.Data[i] != v {
			t.Fatalf("ReLU: %v", dst.Data)
		}
	}
	grad := FromSlice(1, 4, []float32{5, 6, 7, 8})
	out := New(1, 4)
	ReLUBackward(out, grad, dst)
	wantG := []float32{0, 0, 7, 0}
	for i, v := range wantG {
		if out.Data[i] != v {
			t.Fatalf("ReLUBackward: %v", out.Data)
		}
	}
}

func TestSoftmaxRows(t *testing.T) {
	src := FromSlice(2, 3, []float32{1, 1, 1, 1000, 0, -1000})
	dst := New(2, 3)
	SoftmaxRows(dst, src)
	for j := 0; j < 3; j++ {
		if math.Abs(float64(dst.At(0, j))-1.0/3) > 1e-5 {
			t.Fatalf("uniform softmax wrong: %v", dst.Row(0))
		}
	}
	// Extreme logits must not produce NaN/Inf and must concentrate mass.
	if dst.At(1, 0) < 0.999 {
		t.Fatalf("softmax should concentrate: %v", dst.Row(1))
	}
	for _, v := range dst.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("softmax produced NaN/Inf")
		}
	}
}

// Property: softmax rows always sum to 1 and are non-negative.
func TestQuickSoftmaxSimplex(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMatrix(rng, 1+rng.Intn(5), 2+rng.Intn(8))
		out := New(m.Rows, m.Cols)
		SoftmaxRows(out, m)
		for i := 0; i < out.Rows; i++ {
			var sum float64
			for _, v := range out.Row(i) {
				if v < 0 {
					return false
				}
				sum += float64(v)
			}
			if math.Abs(sum-1) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestArgMaxRows(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 5, 2, 7, 0, 7})
	idx := make([]int, 2)
	ArgMaxRows(idx, m)
	if idx[0] != 1 {
		t.Fatalf("ArgMaxRows row0 = %d", idx[0])
	}
	if idx[1] != 0 { // ties resolve to the first maximum
		t.Fatalf("ArgMaxRows tie must pick first: %d", idx[1])
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromSlice(1, 2, []float32{3, 4})
	if n := FrobeniusNorm(m); math.Abs(n-5) > 1e-9 {
		t.Fatalf("FrobeniusNorm = %v", n)
	}
}

func TestColSumLengthPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ColSum(make([]float32, 3), New(2, 2))
}

func TestSoftmaxRowsDegenerateShapes(t *testing.T) {
	// 0 columns: nothing to normalise; must not panic (the old code
	// indexed row[0] unconditionally). 0 rows: trivially a no-op.
	for _, tc := range []struct{ rows, cols int }{{0, 3}, {3, 0}, {0, 0}} {
		src := New(tc.rows, tc.cols)
		dst := New(tc.rows, tc.cols)
		SoftmaxRows(dst, src) // must not panic
	}
}

func TestArgMaxRowsDegenerateShapes(t *testing.T) {
	// 0 rows: no output. 0 columns: no maximum exists; every slot gets
	// the -1 sentinel (the old code indexed row[0] and panicked).
	ArgMaxRows([]int{}, New(0, 4))
	dst := []int{7, 7, 7}
	ArgMaxRows(dst, New(3, 0))
	for i, v := range dst {
		if v != -1 {
			t.Fatalf("dst[%d] = %d, want -1 for a zero-column matrix", i, v)
		}
	}
}
