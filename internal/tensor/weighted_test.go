package tensor

import (
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// checkBounds asserts the structural invariants every split must hold:
// starts at 0, ends at n, strictly increasing.
func checkBounds(t *testing.T, bounds []int, n int) {
	t.Helper()
	if len(bounds) < 2 && n > 0 {
		t.Fatalf("bounds %v too short for n=%d", bounds, n)
	}
	if bounds[0] != 0 || bounds[len(bounds)-1] != n {
		t.Fatalf("bounds %v must span [0,%d]", bounds, n)
	}
	for k := 1; k < len(bounds); k++ {
		if bounds[k] <= bounds[k-1] {
			t.Fatalf("bounds %v not strictly increasing at %d", bounds, k)
		}
	}
}

func TestSplitWeightedUniformEqualsEqualCount(t *testing.T) {
	for _, cost := range []func(int) int{nil, func(int) int { return 3 }} {
		bounds := SplitWeighted(100, 4, cost)
		checkBounds(t, bounds, 100)
		if len(bounds) != 5 {
			t.Fatalf("uniform cost: bounds %v, want 4 chunks", bounds)
		}
		for k := 1; k < len(bounds); k++ {
			if sz := bounds[k] - bounds[k-1]; sz != 25 {
				t.Fatalf("uniform cost: chunk %d has %d items, want 25 (%v)", k-1, sz, bounds)
			}
		}
	}
}

func TestSplitWeightedDegenerateInputs(t *testing.T) {
	if got := SplitWeighted(0, 4, nil); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("n=0: %v", got)
	}
	if got := SplitWeighted(-3, 4, nil); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("n<0: %v", got)
	}
	if got := SplitWeighted(5, 1, nil); !reflect.DeepEqual(got, []int{0, 5}) {
		t.Fatalf("parts=1: %v", got)
	}
	if got := SplitWeighted(5, 0, nil); !reflect.DeepEqual(got, []int{0, 5}) {
		t.Fatalf("parts=0: %v", got)
	}
	// parts > n clamps to n: one item per chunk.
	got := SplitWeighted(3, 16, nil)
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Fatalf("parts>n: %v", got)
	}
	// All-zero (and negative) costs fall back to equal-count chunks.
	zero := SplitWeighted(100, 4, func(int) int { return 0 })
	neg := SplitWeighted(100, 4, func(int) int { return -7 })
	uniform := SplitWeighted(100, 4, nil)
	if !reflect.DeepEqual(zero, uniform) || !reflect.DeepEqual(neg, uniform) {
		t.Fatalf("zero/negative cost %v / %v, want uniform %v", zero, neg, uniform)
	}
}

func TestSplitWeightedHubGetsOwnChunk(t *testing.T) {
	// One hub carrying ~97% of the total cost: the hub's chunk should
	// hold (essentially) only the hub, and the light rows spread over
	// the remaining chunks instead of serialising behind it.
	n, hub := 1000, 500
	cost := func(i int) int {
		if i == hub {
			return 100000
		}
		return 3
	}
	bounds := SplitWeighted(n, 8, cost)
	checkBounds(t, bounds, n)
	for k := 1; k < len(bounds); k++ {
		lo, hi := bounds[k-1], bounds[k]
		if lo <= hub && hub < hi {
			// The chunk containing the hub must end right after it —
			// no light rows queued behind the heavy one.
			if hi != hub+1 {
				t.Fatalf("hub chunk [%d,%d) extends past the hub row %d: %v", lo, hi, hub, bounds)
			}
			return
		}
	}
	t.Fatalf("no chunk contains the hub: %v", bounds)
}

func TestSplitWeightedBalancesPowerLawCost(t *testing.T) {
	// On a skewed cost vector, the weighted split's max chunk cost must
	// beat the equal-count split's.
	rng := rand.New(rand.NewSource(1))
	n := 4096
	cost := make([]int, n)
	for i := range cost {
		cost[i] = 1
		if rng.Float64() < 0.01 {
			cost[i] = 1 + rng.Intn(2000) // hub
		}
	}
	costFn := func(i int) int { return cost[i] }
	maxChunk := func(bounds []int) int64 {
		var worst int64
		for k := 1; k < len(bounds); k++ {
			var s int64
			for i := bounds[k-1]; i < bounds[k]; i++ {
				s += int64(cost[i])
			}
			if s > worst {
				worst = s
			}
		}
		return worst
	}
	weighted := SplitWeighted(n, 8, costFn)
	equal := SplitWeighted(n, 8, nil)
	checkBounds(t, weighted, n)
	if w, e := maxChunk(weighted), maxChunk(equal); w >= e {
		t.Fatalf("weighted max chunk cost %d not better than equal-count %d", w, e)
	}
}

func TestSplitWeightedDeterministic(t *testing.T) {
	cost := func(i int) int { return (i*i)%97 + 1 }
	a := SplitWeighted(1000, 16, cost)
	for r := 0; r < 10; r++ {
		if b := SplitWeighted(1000, 16, cost); !reflect.DeepEqual(a, b) {
			t.Fatalf("run %d differs: %v vs %v", r, a, b)
		}
	}
}

func TestParallelWeightedCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(workers)
		n := 1003
		hits := make([]int32, n)
		p.ParallelWeighted(n, func(i int) int { return i % 13 }, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestParallelWeightedDeterministicChunking(t *testing.T) {
	// For a fixed worker count, the set of (lo,hi) chunks handed to fn
	// must be identical across dispatches — the property that keeps
	// per-chunk float reductions bit-stable under work-stealing.
	p := NewPool(4)
	cost := func(i int) int { return 1 + i%29 }
	collect := func() map[[2]int]bool {
		var mu sync.Mutex
		chunks := make(map[[2]int]bool)
		p.ParallelWeighted(777, cost, func(lo, hi int) {
			mu.Lock()
			chunks[[2]int{lo, hi}] = true
			mu.Unlock()
		})
		return chunks
	}
	first := collect()
	for r := 0; r < 20; r++ {
		if got := collect(); !reflect.DeepEqual(got, first) {
			t.Fatalf("dispatch %d produced different chunks: %v vs %v", r, got, first)
		}
	}
}

func TestParallelWeightedDegenerate(t *testing.T) {
	p := NewPool(4)
	called := false
	p.ParallelWeighted(0, nil, func(lo, hi int) { called = true })
	if called {
		t.Fatal("n=0 must not invoke fn")
	}
	p.ParallelWeighted(1, nil, func(lo, hi int) {
		called = true
		if lo != 0 || hi != 1 {
			t.Fatalf("n=1: got [%d,%d)", lo, hi)
		}
	})
	if !called {
		t.Fatal("n=1 must invoke fn once")
	}
}

func TestParallelChunksEmptyAndSerial(t *testing.T) {
	p := NewPool(4)
	p.ParallelChunks(nil, func(lo, hi int) { t.Fatal("nil bounds must be a no-op") })
	p.ParallelChunks([]int{0}, func(lo, hi int) { t.Fatal("single-bound must be a no-op") })
	// Workers=1 runs chunks in order.
	var got []int
	NewPool(1).ParallelChunks([]int{0, 2, 5, 9}, func(lo, hi int) { got = append(got, lo, hi) })
	if !reflect.DeepEqual(got, []int{0, 2, 2, 5, 5, 9}) {
		t.Fatalf("serial chunk order: %v", got)
	}
}

// TestParallelWeightedConcurrentDispatch exercises the shared bounds
// scratch pool from many goroutines at once; run with -race.
func TestParallelWeightedConcurrentDispatch(t *testing.T) {
	p := NewPool(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 500 + g*37
			sum := make([]int64, n)
			for r := 0; r < 25; r++ {
				p.ParallelWeighted(n, func(i int) int { return i%7 + 1 }, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt64(&sum[i], 1)
					}
				})
			}
			for i, s := range sum {
				if s != 25 {
					t.Errorf("goroutine %d: index %d visited %d times, want 25", g, i, s)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
