package half

import (
	"math"
	"math/rand"
	"testing"
)

// refBits is an independent rounds-to-nearest-even reference built on
// float64 arithmetic instead of bit tricks, so the two implementations
// can only agree by both being right.
func refBits(f float32) uint16 {
	v := float64(f)
	sign := uint16(0)
	if math.Signbit(v) {
		sign = 0x8000
	}
	v = math.Abs(v)
	switch {
	case math.IsNaN(v):
		return sign | 0x7e00
	case v >= 65520: // nearest-even tips [65520, +Inf) over to Inf
		return sign | 0x7c00
	case v < math.Ldexp(1, -14): // subnormal band: units of 2^-24
		m := math.RoundToEven(math.Ldexp(v, 24))
		if m >= 1024 { // rounded up into the smallest normal
			return sign | 0x0400
		}
		return sign | uint16(m)
	default:
		exp := int(math.Floor(math.Log2(v)))
		// Floating-point log2 can land one off at power-of-two
		// boundaries; renormalise.
		for math.Ldexp(1, exp+1) <= v {
			exp++
		}
		for math.Ldexp(1, exp) > v {
			exp--
		}
		m := math.RoundToEven(math.Ldexp(v, 10-exp)) // in [1024, 2048]
		if m >= 2048 {
			m = 1024
			exp++
		}
		if exp > 15 {
			return sign | 0x7c00
		}
		return sign | uint16(exp+15)<<10 | uint16(int(m)-1024)
	}
}

// Every fp16 bit pattern must decode to float32 and re-encode to
// itself: FromBits is exact and Bits is its left inverse. NaNs compare
// on NaN-ness, not payload.
func TestExhaustiveRoundTrip(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		bits := uint16(h)
		f := FromBits(bits)
		back := Bits(f)
		if bits&0x7fff > infBits { // NaN: payload may canonicalise
			if !math.IsNaN(float64(f)) || back&0x7fff <= infBits {
				t.Fatalf("NaN pattern %#04x: decode %v re-encode %#04x", bits, f, back)
			}
			continue
		}
		if back != bits {
			t.Fatalf("pattern %#04x: decode %v re-encode %#04x", bits, f, back)
		}
	}
}

// FromBits must produce the exact real value: cross-check normals and
// subnormals against float64 ldexp arithmetic.
func TestFromBitsExact(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		bits := uint16(h)
		mag := bits & 0x7fff
		if mag >= infBits {
			continue
		}
		var want float64
		if mag < 0x0400 {
			want = math.Ldexp(float64(mag), -24)
		} else {
			exp := int(mag>>10) - 15
			want = math.Ldexp(1+float64(mag&0x3ff)/1024, exp)
		}
		if bits&0x8000 != 0 {
			want = -want
		}
		if got := float64(FromBits(bits)); got != want {
			t.Fatalf("pattern %#04x: FromBits %v, want %v", bits, got, want)
		}
	}
}

// Bits must agree with the float64 reference on deterministic random
// floats across the full exponent range, plus the boundary cases that
// break naive implementations.
func TestBitsMatchesReference(t *testing.T) {
	check := func(f float32) {
		t.Helper()
		got, want := Bits(f), refBits(f)
		if got&0x7fff > infBits && want&0x7fff > infBits {
			return // both NaN
		}
		if got != want {
			t.Fatalf("Bits(%v) = %#04x, want %#04x", f, got, want)
		}
	}
	for _, f := range []float32{
		0, float32(math.Copysign(0, -1)), 1, -1, 0.5, 2, 65504, -65504,
		65505, 65519, 65520, 65536, -65536, 1e38, float32(math.Inf(1)),
		float32(math.Inf(-1)), float32(math.NaN()),
		6.1035156e-05,  // smallest fp16 normal
		6.0975552e-05,  // just below it
		5.9604645e-08,  // smallest fp16 subnormal
		2.9802322e-08,  // half the smallest subnormal: ties to zero
		2.9802326e-08,  // just above: rounds to the smallest subnormal
		1e-45,          // smallest float32 subnormal: flushes to zero
		1.0009765625,   // 1 + 2^-10: exactly representable
		1.00048828125,  // 1 + 2^-11: tie, rounds to even (1.0)
		1.000488281255, // just above the tie: rounds up
	} {
		check(f)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200000; i++ {
		// Exponents beyond fp16's range exercise overflow and flush.
		f := float32(math.Ldexp(rng.Float64()*2-1, rng.Intn(40)-20))
		check(f)
	}
}

// The round trip through Round must be within half a ULP of the source
// (nearest rounding), and idempotent: rounded values are fp16-exact.
func TestRoundErrorBoundAndIdempotence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100000; i++ {
		f := float32(rng.NormFloat64() * 4) // the synthesis value range
		r := Round(f)
		// ULP of r in fp16: 2^(exp-10) for normals, 2^-24 in the
		// subnormal band.
		exp := math.Ilogb(float64(r))
		if r == 0 || exp < -14 {
			exp = -14
		}
		ulp := math.Ldexp(1, exp-10)
		if diff := math.Abs(float64(f) - float64(r)); diff > ulp/2 {
			t.Fatalf("Round(%v) = %v: error %g exceeds half ULP %g", f, r, diff, ulp/2)
		}
		if again := Round(r); again != r {
			t.Fatalf("Round not idempotent: %v → %v", r, again)
		}
	}
}

func TestSliceAndByteKernels(t *testing.T) {
	src := []float32{0, 1, -2.5, 65504, 3.14159, -6.1e-5, 1e-7}
	hs := make([]uint16, len(src))
	Encode(hs, src)
	dec := make([]float32, len(src))
	Decode(dec, hs)
	bytes := make([]byte, 2*len(src))
	EncodeBytes(bytes, src)
	decB := make([]float32, len(src))
	DecodeBytes(decB, bytes)
	for i := range src {
		if dec[i] != Round(src[i]) || decB[i] != dec[i] {
			t.Fatalf("index %d: slice %v, bytes %v, want %v", i, dec[i], decB[i], Round(src[i]))
		}
		if bytes[2*i] != byte(hs[i]) || bytes[2*i+1] != byte(hs[i]>>8) {
			t.Fatalf("index %d: byte encoding is not little-endian uint16", i)
		}
	}
}

func TestIsFinite(t *testing.T) {
	cases := map[uint16]bool{
		0x0000: true, 0x8000: true, 0x7bff: true, 0xfbff: true,
		0x7c00: false, 0xfc00: false, 0x7e00: false, 0x7c01: false,
	}
	for bits, want := range cases {
		if got := IsFinite(bits); got != want {
			t.Fatalf("IsFinite(%#04x) = %v, want %v", bits, got, want)
		}
	}
}
