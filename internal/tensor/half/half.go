// Package half implements IEEE 754 binary16 ("fp16") conversion for the
// compressed feature path: fp16 in the store and on the halo wire, fp32
// in every kernel. The scalar converts are branch-light bit
// manipulations (no lookup tables, no float comparisons beyond the
// range splits), the slice kernels are their straight-line loops, and
// the byte kernels fix the wire encoding as little-endian uint16.
//
// Encode (Bits) rounds to nearest-even — the IEEE default — so a
// float32 survives fp32→fp16→fp32 unchanged exactly when it is fp16-
// representable. Decode (FromBits) is exact: every finite fp16 value,
// subnormals included, maps to the float32 with the same real value.
// That asymmetry is what the store leans on: converting a dataset to
// fp16 rounds once, and every later decode/re-encode of the rounded
// values is lossless, which makes fp16 stores byte-idempotent under
// convert and bit-identical across shard/reassembly and transports.
package half

import "math"

const (
	// MaxValue is the largest finite fp16 value (0x7bff = 65504).
	MaxValue = 65504.0
	// infBits is the fp16 bit pattern of +Inf (exponent all-ones,
	// mantissa zero); any magnitude ≥ infBits is non-finite.
	infBits = 0x7c00
)

// Bits converts a float32 to its fp16 bit pattern, rounding to
// nearest-even. Overflow saturates to ±Inf; NaN stays NaN; values below
// the smallest subnormal flush to signed zero. The conversion is pure
// integer arithmetic on the float32 bits: one range split for
// Inf/NaN/overflow, one for the subnormal band, and a magic-number add
// in each branch that makes the hardware's float rounding perform the
// fp16 rounding.
func Bits(f float32) uint16 {
	x := math.Float32bits(f)
	sign := uint16(x>>16) & 0x8000
	x &= 0x7fffffff
	switch {
	case x >= 0x47800000: // |f| ≥ 65536: overflow, Inf, or NaN
		if x > 0x7f800000 { // NaN: keep a quiet-NaN payload bit
			return sign | infBits | 0x0200
		}
		return sign | infBits
	case x < 0x38800000: // |f| < 2^-14: fp16 subnormal (or zero)
		// Adding 0.5 as a float aligns the mantissa so the float adder
		// performs the shift-and-round into the subnormal significand.
		m := math.Float32bits(math.Float32frombits(x) + 0.5)
		return sign | uint16(m-0x3f000000)
	default:
		// Normal range: rebias the exponent, then add 0xfff plus the
		// round bit's neighbour so truncation rounds to nearest-even.
		x -= (127 - 15) << 23
		x += 0xfff + ((x >> 13) & 1)
		return sign | uint16(x>>13)
	}
}

// FromBits converts an fp16 bit pattern to float32 exactly. Normals
// rebias, subnormals renormalise through one float subtract, Inf/NaN
// widen their exponent; no finite input loses value.
func FromBits(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	mag := uint32(h & 0x7fff)
	switch {
	case mag >= infBits: // Inf or NaN
		return math.Float32frombits(sign | 0x7f800000 | (mag&0x03ff)<<13)
	case mag >= 0x0400: // normal
		return math.Float32frombits(sign | (mag<<13 + (127-15)<<23))
	case mag == 0:
		return math.Float32frombits(sign)
	default: // subnormal: value = mag × 2^-24
		// Interpreting mag with a 2^-14 exponent and subtracting the
		// bias constant renormalises without a loop over leading zeros.
		f := math.Float32frombits(0x38800000|mag<<13) - math.Float32frombits(0x38800000)
		return math.Float32frombits(sign | math.Float32bits(f))
	}
}

// IsFinite reports whether the fp16 bit pattern is a finite value.
func IsFinite(h uint16) bool { return h&0x7fff < infBits }

// Encode rounds each float32 in src into dst. Panics if dst is shorter
// than src (standard slice-kernel contract).
func Encode(dst []uint16, src []float32) {
	_ = dst[:len(src)]
	for i, v := range src {
		dst[i] = Bits(v)
	}
}

// Decode widens each fp16 bit pattern in src into dst exactly.
func Decode(dst []float32, src []uint16) {
	_ = dst[:len(src)]
	for i, h := range src {
		dst[i] = FromBits(h)
	}
}

// EncodeBytes rounds src into dst as little-endian uint16 — the store
// section and wire payload encoding. dst needs 2*len(src) bytes.
func EncodeBytes(dst []byte, src []float32) {
	_ = dst[:2*len(src)]
	for i, v := range src {
		h := Bits(v)
		dst[2*i] = byte(h)
		dst[2*i+1] = byte(h >> 8)
	}
}

// DecodeBytes widens little-endian uint16 bytes into dst exactly.
// src needs 2*len(dst) bytes.
func DecodeBytes(dst []float32, src []byte) {
	_ = src[:2*len(dst)]
	for i := range dst {
		dst[i] = FromBits(uint16(src[2*i]) | uint16(src[2*i+1])<<8)
	}
}

// Round is the fp32→fp16→fp32 round trip: the nearest fp16-
// representable value. Converting a feature matrix through Round is
// what makes an fp16 store's decoded values exact thereafter.
func Round(f float32) float32 { return FromBits(Bits(f)) }
