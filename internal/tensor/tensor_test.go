package tensor

import (
	"math/rand"
	"testing"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

func TestNewShape(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New must zero the data")
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative shape")
		}
	}()
	New(-1, 2)
}

func TestFromSlice(t *testing.T) {
	d := []float32{1, 2, 3, 4, 5, 6}
	m := FromSlice(2, 3, d)
	if m.At(0, 0) != 1 || m.At(1, 2) != 6 {
		t.Fatalf("FromSlice layout wrong: %v", m)
	}
	m.Set(1, 0, 9)
	if d[3] != 9 {
		t.Fatal("FromSlice must alias the input slice")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 3, make([]float32, 5))
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 1, 7)
	if m.At(0, 1) != 7 {
		t.Fatal("At/Set disagree")
	}
	r := m.Row(0)
	r[0] = 5
	if m.At(0, 0) != 5 {
		t.Fatal("Row must alias storage")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New(2, 2)
	m.Fill(3)
	c := m.Clone()
	c.Set(0, 0, 1)
	if m.At(0, 0) != 3 {
		t.Fatal("Clone must deep-copy")
	}
	if !c.Equal(m) == (c.At(0, 0) == m.At(0, 0)) {
		t.Fatal("Equal inconsistent with element diff")
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(2, 2)
	a.Fill(4)
	b := New(2, 2)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Fatal("CopyFrom mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape-mismatch panic")
		}
	}()
	b.CopyFrom(New(3, 2))
}

func TestZeroFill(t *testing.T) {
	m := New(2, 3)
	m.Fill(2.5)
	for _, v := range m.Data {
		if v != 2.5 {
			t.Fatal("Fill failed")
		}
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestEqualShapes(t *testing.T) {
	if New(2, 3).Equal(New(3, 2)) {
		t.Fatal("different shapes must not be Equal")
	}
	a, b := New(2, 2), New(2, 2)
	if !a.Equal(b) {
		t.Fatal("zero matrices must be Equal")
	}
	b.Set(1, 1, 1e-9)
	if a.Equal(b) {
		t.Fatal("Equal must be exact")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a, b := New(2, 2), New(2, 2)
	b.Set(0, 1, -3)
	if d := a.MaxAbsDiff(b); d != 3 {
		t.Fatalf("MaxAbsDiff = %v, want 3", d)
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := FromSlice(1, 2, []float32{1, 2})
	if got := small.String(); got != "Matrix(1x2)[1 2]" {
		t.Fatalf("String() = %q", got)
	}
	large := New(100, 100)
	if got := large.String(); got != "Matrix(100x100)" {
		t.Fatalf("large String() = %q", got)
	}
}
