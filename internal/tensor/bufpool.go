package tensor

import "sync"

// BufPool recycles Matrix backing storage across batches. Training and
// serving process one batch after another with the same layer shapes, so
// every per-batch matrix (aggregation buffers, activations, gradient
// scratch) can come out of a pool instead of the heap — in steady state
// the hot path performs zero matrix allocations.
//
// Buffers are keyed by column count: a layer's row count varies with the
// batch while its feature width is fixed, so same-width buffers are
// interchangeable (the backing slice is grown once to the largest batch
// and reused thereafter). Get returns zeroed storage, preserving New's
// semantics for accumulation kernels.
//
// A nil *BufPool is valid and falls back to plain allocation: Get
// behaves like New and Put is a no-op. That keeps pooling an opt-in for
// code (and tests) that construct layers directly.
//
// BufPool is safe for concurrent use. The one ownership rule: after Put,
// the caller must not touch the matrix again — the same storage may be
// handed to the next Get.
type BufPool struct {
	mu    sync.Mutex
	byCol map[int]*sync.Pool
}

// NewBufPool returns an empty buffer pool.
func NewBufPool() *BufPool {
	return &BufPool{byCol: make(map[int]*sync.Pool)}
}

func (bp *BufPool) pool(cols int) *sync.Pool {
	bp.mu.Lock()
	p := bp.byCol[cols]
	if p == nil {
		p = &sync.Pool{}
		bp.byCol[cols] = p
	}
	bp.mu.Unlock()
	return p
}

// Get returns a zeroed rows×cols matrix, reusing pooled storage of the
// same width when available. On a nil pool it is exactly New.
func (bp *BufPool) Get(rows, cols int) *Matrix {
	if bp == nil {
		return New(rows, cols)
	}
	v := bp.pool(cols).Get()
	if v == nil {
		return New(rows, cols)
	}
	m := v.(*Matrix)
	need := rows * cols
	if cap(m.Data) < need {
		m.Data = make([]float32, need)
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:need]
	m.Zero()
	return m
}

// Put returns m's storage to the pool for reuse by a later same-width
// Get. Put accepts matrices from any source (not just Get), tolerates
// nil, and ignores zero-width matrices. The caller must not use m after
// Put.
func (bp *BufPool) Put(m *Matrix) {
	if bp == nil || m == nil || m.Cols <= 0 || cap(m.Data) == 0 {
		return
	}
	bp.pool(m.Cols).Put(m)
}
