package tensor

import (
	"sync/atomic"
	"testing"
)

func TestNewPoolClampsWorkers(t *testing.T) {
	if NewPool(0).Workers() != 1 || NewPool(-5).Workers() != 1 {
		t.Fatal("worker count must clamp to 1")
	}
	if NewPool(7).Workers() != 7 {
		t.Fatal("worker count not preserved")
	}
}

func TestNilPoolActsSerial(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatal("nil pool must report 1 worker")
	}
}

func TestParallelRangeCoversAllIndices(t *testing.T) {
	for _, w := range []int{1, 2, 3, 7, 100} {
		for _, n := range []int{0, 1, 2, 5, 17, 100} {
			seen := make([]int32, n)
			NewPool(w).ParallelRange(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("w=%d n=%d index %d visited %d times", w, n, i, c)
				}
			}
		}
	}
}

func TestParallelRangeChunkCountBounded(t *testing.T) {
	var calls int32
	NewPool(4).ParallelRange(100, func(lo, hi int) {
		atomic.AddInt32(&calls, 1)
	})
	if calls > 4 {
		t.Fatalf("expected at most 4 chunks, got %d", calls)
	}
}

func TestParallelRangeZeroItems(t *testing.T) {
	called := false
	NewPool(4).ParallelRange(0, func(lo, hi int) { called = true })
	if called {
		t.Fatal("fn must not run for n=0")
	}
}
