package tensor

import "sync"

// Pool is a bounded worker pool used to parallelise kernels. A Pool with
// Workers == 1 executes everything inline, which keeps single-core runs
// free of goroutine overhead and makes results reproducible regardless of
// scheduling.
//
// A Pool models the "cores" assigned to a stage (sampling cores or
// training cores in ARGO's terminology): a kernel dispatched on a Pool
// never uses more concurrent goroutines than Workers.
type Pool struct {
	workers int
}

// NewPool returns a pool that runs kernels on at most workers goroutines.
// workers < 1 is treated as 1.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// ParallelRange splits [0, n) into at most Workers contiguous chunks and
// invokes fn(lo, hi) for each chunk, blocking until all complete. Chunk
// boundaries depend only on n and Workers, so floating-point reductions
// that stay within a chunk are deterministic for a fixed worker count.
func (p *Pool) ParallelRange(n int, fn func(lo, hi int)) {
	w := p.Workers()
	if n <= 0 {
		return
	}
	if w == 1 || n == 1 {
		fn(0, n)
		return
	}
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
