package tensor

import (
	"sync"
	"sync/atomic"
)

// Pool is a bounded worker pool used to parallelise kernels. A Pool with
// Workers == 1 executes everything inline, which keeps single-core runs
// free of goroutine overhead and makes results reproducible regardless of
// scheduling.
//
// A Pool models the "cores" assigned to a stage (sampling cores or
// training cores in ARGO's terminology): a kernel dispatched on a Pool
// never uses more concurrent goroutines than Workers.
type Pool struct {
	workers int
}

// NewPool returns a pool that runs kernels on at most workers goroutines.
// workers < 1 is treated as 1.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// ParallelRange splits [0, n) into at most Workers contiguous chunks and
// invokes fn(lo, hi) for each chunk, blocking until all complete. Chunk
// boundaries depend only on n and Workers, so floating-point reductions
// that stay within a chunk are deterministic for a fixed worker count.
func (p *Pool) ParallelRange(n int, fn func(lo, hi int)) {
	w := p.Workers()
	if n <= 0 {
		return
	}
	if w == 1 || n == 1 {
		fn(0, n)
		return
	}
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// StealFactor oversubscribes the work-stealing dispatch: a weighted range
// is cut into up to StealFactor chunks per worker, so a worker that lands
// on a heavy chunk (a hub row, an OS preemption) does not stall the whole
// kernel — the remaining chunks drain through the shared counter.
const StealFactor = 4

// AppendSplitWeighted appends chunk boundaries for [0, n) to dst such
// that each chunk carries approximately total/parts of the summed
// per-item cost, and returns the extended slice. The boundaries are a
// running prefix sum cut at the cost quantiles: chunk k is
// [b[k], b[k+1]), b[0] == 0, b[len-1] == n, strictly increasing (empty
// chunks are elided, so heavily skewed costs may yield fewer than parts
// chunks — a single hub row heavier than the quantile width gets a chunk
// of its own and nothing else).
//
// cost(i) must be stable across calls; negative costs count as 0. A nil
// cost, or an all-zero total, falls back to equal-count chunks. The
// result depends only on (n, parts, cost) — never on scheduling — which
// is what keeps weighted kernels bit-deterministic: rows never migrate
// between chunks for a fixed worker count.
func AppendSplitWeighted(dst []int, n, parts int, cost func(i int) int) []int {
	dst = append(dst, 0)
	if n <= 0 {
		return dst
	}
	if parts > n {
		parts = n
	}
	if parts <= 1 {
		return append(dst, n)
	}
	var total int64
	if cost != nil {
		for i := 0; i < n; i++ {
			if c := cost(i); c > 0 {
				total += int64(c)
			}
		}
	}
	if total == 0 {
		// Uniform (or unknown) cost: equal-count chunks.
		chunk := (n + parts - 1) / parts
		for lo := chunk; lo < n; lo += chunk {
			dst = append(dst, lo)
		}
		return append(dst, n)
	}
	var acc int64
	k := 1
	for i := 0; i < n && k < parts; i++ {
		if c := cost(i); c > 0 {
			acc += int64(c)
		}
		// Crossing one or more cost quantiles ends the chunk after row i.
		// A hub row can cross several at once; the boundary is appended
		// only once (strictly increasing), which is exactly the "hub gets
		// its own chunk" behaviour.
		cut := false
		for k < parts && acc*int64(parts) >= total*int64(k) {
			cut = true
			k++
		}
		if cut && i+1 < n && i+1 > dst[len(dst)-1] {
			dst = append(dst, i+1)
		}
	}
	return append(dst, n)
}

// SplitWeighted is AppendSplitWeighted into a fresh slice.
func SplitWeighted(n, parts int, cost func(i int) int) []int {
	return AppendSplitWeighted(make([]int, 0, parts+1), n, parts, cost)
}

// ParallelChunks dispatches the chunks described by bounds (as produced
// by SplitWeighted: bounds[k] to bounds[k+1] is chunk k) over the pool's
// workers with work-stealing: workers pull the next chunk index from a
// shared atomic counter, so a worker stuck on an expensive chunk never
// blocks the others from draining the rest. Which worker runs a chunk is
// scheduling-dependent, but chunk contents are not — callers that keep
// per-row reductions inside fn get bit-identical results regardless of
// stealing order.
func (p *Pool) ParallelChunks(bounds []int, fn func(lo, hi int)) {
	nc := len(bounds) - 1
	if nc <= 0 {
		return
	}
	w := p.Workers()
	if w > nc {
		w = nc
	}
	if w == 1 {
		for c := 0; c < nc; c++ {
			fn(bounds[c], bounds[c+1])
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				c := int(atomic.AddInt64(&next, 1)) - 1
				if c >= nc {
					return
				}
				fn(bounds[c], bounds[c+1])
			}
		}()
	}
	wg.Wait()
}

// boundsScratch recycles the small boundary slices ParallelWeighted cuts
// per dispatch, so weighted kernels stay allocation-free in steady state.
var boundsScratch = sync.Pool{New: func() any { return new([]int) }}

// ParallelWeighted splits [0, n) into cost-balanced chunks (up to
// StealFactor per worker; see AppendSplitWeighted) and dispatches them
// with work-stealing. cost(i) is the relative weight of item i — for
// graph aggregation, the row's degree — and a nil cost means uniform.
// Per-item results are bit-identical to a serial run as long as fn keeps
// each item's reduction inside one invocation, because chunk boundaries
// are a pure function of (n, Workers, cost).
func (p *Pool) ParallelWeighted(n int, cost func(i int) int, fn func(lo, hi int)) {
	w := p.Workers()
	if n <= 0 {
		return
	}
	if w == 1 || n == 1 {
		fn(0, n)
		return
	}
	sp := boundsScratch.Get().(*[]int)
	bounds := AppendSplitWeighted((*sp)[:0], n, w*StealFactor, cost)
	p.ParallelChunks(bounds, fn)
	*sp = bounds[:0]
	boundsScratch.Put(sp)
}
