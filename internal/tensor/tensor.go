// Package tensor provides dense float32 matrices and the parallel kernels
// the GNN training stack is built on. It is a deliberately small substrate:
// row-major matrices, blocked matrix multiplication parallelised over a
// bounded worker pool, and the handful of elementwise and reduction kernels
// backpropagation needs.
//
// Everything is deterministic: kernels never reorder floating-point
// reductions across calls with the same worker count, and random
// initialisation takes an explicit source.
package tensor

import "fmt"

// Matrix is a dense row-major float32 matrix. The zero value is an empty
// matrix; use New to allocate one with a shape.
type Matrix struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols, row-major
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data as a rows×cols matrix without copying.
// The slice length must equal rows*cols.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d values for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src into m. The shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Zero sets every element of m to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Equal reports whether m and other have the same shape and identical
// elements.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		if other.Data[i] != v {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference between m
// and other. The shapes must match.
func (m *Matrix) MaxAbsDiff(other *Matrix) float64 {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	var max float64
	for i, v := range m.Data {
		d := float64(v - other.Data[i])
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// String renders small matrices for debugging; large matrices are
// summarised by shape.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%g", m.At(i, j))
		}
	}
	return s + "]"
}
