package tensor

import (
	"sync"
	"testing"
)

func TestBufPoolGetReturnsZeroedReusedStorage(t *testing.T) {
	bp := NewBufPool()
	m := bp.Get(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("Get(3,4) shape: %d×%d len=%d", m.Rows, m.Cols, len(m.Data))
	}
	for i := range m.Data {
		m.Data[i] = float32(i + 1)
	}
	bp.Put(m)
	// Same width, fewer rows: storage reused, contents zeroed.
	n := bp.Get(2, 4)
	if n.Rows != 2 || n.Cols != 4 || len(n.Data) != 8 {
		t.Fatalf("Get(2,4) shape: %d×%d len=%d", n.Rows, n.Cols, len(n.Data))
	}
	for i, v := range n.Data {
		if v != 0 {
			t.Fatalf("reused buffer not zeroed at %d: %v", i, n.Data)
		}
	}
}

func TestBufPoolGrowsForLargerBatch(t *testing.T) {
	bp := NewBufPool()
	bp.Put(bp.Get(2, 4))
	m := bp.Get(100, 4)
	if m.Rows != 100 || len(m.Data) != 400 {
		t.Fatalf("grown buffer shape: %d×%d len=%d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("grown buffer not zeroed at %d", i)
		}
	}
}

func TestBufPoolNilAndDegenerate(t *testing.T) {
	var bp *BufPool
	m := bp.Get(2, 3) // nil pool behaves like New
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("nil pool Get: %d×%d", m.Rows, m.Cols)
	}
	bp.Put(m)                   // no-op, must not panic
	NewBufPool().Put(nil)       // nil matrix tolerated
	NewBufPool().Put(&Matrix{}) // zero-width ignored
	z := NewBufPool().Get(0, 5)
	if z.Rows != 0 || z.Cols != 5 || len(z.Data) != 0 {
		t.Fatalf("zero-row Get: %d×%d len=%d", z.Rows, z.Cols, len(z.Data))
	}
}

func TestBufPoolWidthsDoNotMix(t *testing.T) {
	bp := NewBufPool()
	a := bp.Get(4, 8)
	aData := &a.Data[0]
	bp.Put(a)
	// A different width must never receive the width-8 storage. (The
	// converse — that a same-width Get reuses it — is sync.Pool's call:
	// the pool may drop items under memory pressure or the race
	// detector, so reuse itself is not asserted here.)
	b := bp.Get(4, 16)
	if len(b.Data) != 64 {
		t.Fatalf("Get(4,16) len=%d", len(b.Data))
	}
	if &b.Data[0] == aData {
		t.Fatal("width-16 Get aliased width-8 storage")
	}
	c := bp.Get(4, 8)
	if c.Rows != 4 || c.Cols != 8 || len(c.Data) != 32 {
		t.Fatalf("width-8 Get shape: %d×%d len=%d", c.Rows, c.Cols, len(c.Data))
	}
}

// TestBufPoolConcurrent hammers one pool from many goroutines; run with
// -race to verify the locking.
func TestBufPoolConcurrent(t *testing.T) {
	bp := NewBufPool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 200; r++ {
				m := bp.Get(1+r%7, 4+g%3)
				for i := range m.Data {
					if m.Data[i] != 0 {
						t.Errorf("dirty buffer from concurrent Get")
						return
					}
					m.Data[i] = 1
				}
				bp.Put(m)
			}
		}(g)
	}
	wg.Wait()
}
