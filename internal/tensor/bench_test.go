package tensor

import (
	"math/rand"
	"testing"
)

func benchMatrices(b *testing.B, m, k, n int) (*Matrix, *Matrix, *Matrix) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	return randomMatrix(rng, m, k), randomMatrix(rng, k, n), New(m, n)
}

func BenchmarkMatMul128(b *testing.B) {
	a, x, dst := benchMatrices(b, 128, 128, 128)
	pool := NewPool(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(pool, dst, a, x)
	}
}

func BenchmarkMatMul128Parallel4(b *testing.B) {
	a, x, dst := benchMatrices(b, 128, 128, 128)
	pool := NewPool(4)
	for i := 0; i < b.N; i++ {
		MatMul(pool, dst, a, x)
	}
}

func BenchmarkMatMulBT128(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a, x := randomMatrix(rng, 128, 128), randomMatrix(rng, 128, 128)
	dst := New(128, 128)
	pool := NewPool(1)
	for i := 0; i < b.N; i++ {
		MatMulBT(pool, dst, a, x)
	}
}

func BenchmarkSoftmaxRows(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(rng, 1024, 47)
	out := New(1024, 47)
	for i := 0; i < b.N; i++ {
		SoftmaxRows(out, m)
	}
}

func BenchmarkReLU(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	m := randomMatrix(rng, 1024, 128)
	out := New(1024, 128)
	for i := 0; i < b.N; i++ {
		ReLU(out, m)
	}
}
