package tensor

import (
	"fmt"
	"math"
)

// MatMul computes dst = a·b, parallelised over row blocks of a on pool
// with work-stealing dispatch (row results are per-row, so stealing
// never reorders a reduction). Shapes: a is m×k, b is k×n, dst is m×n.
// dst must not alias a or b.
func MatMul(pool *Pool, dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	k, n := a.Cols, b.Cols
	pool.ParallelWeighted(a.Rows, nil, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.Data[i*k : (i+1)*k]
			dr := dst.Data[i*n : (i+1)*n]
			for j := range dr {
				dr[j] = 0
			}
			// ikj loop order: stream b rows, accumulate into dst row.
			for p, av := range ar {
				if av == 0 {
					continue
				}
				br := b.Data[p*n : (p+1)*n]
				for j, bv := range br {
					dr[j] += av * bv
				}
			}
		}
	})
}

// MatMulBT computes dst = a·bᵀ. Shapes: a is m×k, b is n×k, dst is m×n.
func MatMulBT(pool *Pool, dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulBT shape mismatch (%dx%d)·(%dx%d)T->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	k, n := a.Cols, b.Rows
	pool.ParallelWeighted(a.Rows, nil, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.Data[i*k : (i+1)*k]
			dr := dst.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				br := b.Data[j*k : (j+1)*k]
				var sum float32
				for p, av := range ar {
					sum += av * br[p]
				}
				dr[j] = sum
			}
		}
	})
}

// MatMulAT computes dst = aᵀ·b. Shapes: a is k×m, b is k×n, dst is m×n.
// The parallel split is over columns of a (rows of dst) so partial sums
// never race.
func MatMulAT(pool *Pool, dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulAT shape mismatch (%dx%d)T·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	m, n := a.Cols, b.Cols
	pool.ParallelWeighted(m, nil, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dr := dst.Data[i*n : (i+1)*n]
			for j := range dr {
				dr[j] = 0
			}
			for p := 0; p < a.Rows; p++ {
				av := a.Data[p*m+i]
				if av == 0 {
					continue
				}
				br := b.Data[p*n : (p+1)*n]
				for j, bv := range br {
					dr[j] += av * bv
				}
			}
		}
	})
}

// Add computes dst += src elementwise. Shapes must match.
func Add(dst, src *Matrix) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("tensor: Add shape mismatch")
	}
	for i, v := range src.Data {
		dst.Data[i] += v
	}
}

// AddScaled computes dst += alpha*src elementwise. Shapes must match.
func AddScaled(dst *Matrix, alpha float32, src *Matrix) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("tensor: AddScaled shape mismatch")
	}
	for i, v := range src.Data {
		dst.Data[i] += alpha * v
	}
}

// Scale multiplies every element of m by alpha.
func Scale(m *Matrix, alpha float32) {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
}

// AddRowVector adds the length-Cols vector v to every row of dst.
func AddRowVector(dst *Matrix, v []float32) {
	if len(v) != dst.Cols {
		panic("tensor: AddRowVector length mismatch")
	}
	for i := 0; i < dst.Rows; i++ {
		row := dst.Row(i)
		for j, b := range v {
			row[j] += b
		}
	}
}

// ColSum accumulates the column sums of m into dst (len Cols). dst is
// overwritten.
func ColSum(dst []float32, m *Matrix) {
	if len(dst) != m.Cols {
		panic("tensor: ColSum length mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dst[j] += v
		}
	}
}

// ReLU computes dst = max(src, 0) elementwise. dst and src may alias.
func ReLU(dst, src *Matrix) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("tensor: ReLU shape mismatch")
	}
	for i, v := range src.Data {
		if v > 0 {
			dst.Data[i] = v
		} else {
			dst.Data[i] = 0
		}
	}
}

// ReLUBackward computes dGrad = grad where act > 0 else 0, writing into
// dst. act must be the ReLU *output* (or input; they share sign).
func ReLUBackward(dst, grad, act *Matrix) {
	if dst.Rows != grad.Rows || dst.Cols != grad.Cols || act.Rows != grad.Rows || act.Cols != grad.Cols {
		panic("tensor: ReLUBackward shape mismatch")
	}
	for i, g := range grad.Data {
		if act.Data[i] > 0 {
			dst.Data[i] = g
		} else {
			dst.Data[i] = 0
		}
	}
}

// SoftmaxRows computes a numerically-stable row-wise softmax of src into
// dst. dst and src may alias. Degenerate shapes (no rows, or no columns
// — an empty predict batch) are a no-op rather than a panic.
func SoftmaxRows(dst, src *Matrix) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("tensor: SoftmaxRows shape mismatch")
	}
	if src.Cols == 0 {
		return
	}
	for i := 0; i < src.Rows; i++ {
		in := src.Row(i)
		out := dst.Row(i)
		max := in[0]
		for _, v := range in[1:] {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range in {
			e := math.Exp(float64(v - max))
			out[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range out {
			out[j] *= inv
		}
	}
}

// ArgMaxRows writes the index of the maximum element of each row of m into
// dst (len Rows). A zero-column matrix has no maximum: every dst entry is
// set to -1 instead of panicking.
func ArgMaxRows(dst []int, m *Matrix) {
	if len(dst) != m.Rows {
		panic("tensor: ArgMaxRows length mismatch")
	}
	if m.Cols == 0 {
		for i := range dst {
			dst[i] = -1
		}
		return
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		best, bestV := 0, row[0]
		for j, v := range row[1:] {
			if v > bestV {
				best, bestV = j+1, v
			}
		}
		dst[i] = best
	}
}

// FrobeniusNorm returns the Frobenius norm of m.
func FrobeniusNorm(m *Matrix) float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}
