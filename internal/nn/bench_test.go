package nn

import (
	"math/rand"
	"testing"

	"argo/internal/graph"
	"argo/internal/sampler"
	"argo/internal/tensor"
)

// benchBatch builds the benchmark workload: a full-neighbor batch over a
// power-law graph, so per-row aggregation cost is heavily skewed (hubs)
// — the regime the weighted chunking targets.
func benchBatch(b *testing.B, layers int) (*sampler.MiniBatch, *tensor.Matrix) {
	b.Helper()
	g, _ := powerLawGraph(b, 20000, 200000)
	targets := make([]graph.NodeID, 1024)
	for i := range targets {
		targets[i] = graph.NodeID(i * 3)
	}
	mb := sampler.NewFullNeighbor(g, layers).Sample(nil, targets)
	x0 := randFeatures(len(mb.InputNodes()), 64, 7)
	return mb, x0
}

// benchAggregate measures just the skew-sensitive stage: the SAGE
// concat-mean aggregation over a power-law block, dispatched either with
// fixed equal-count chunks (the old ParallelRange) or cost-weighted
// work-stealing chunks (ParallelWeighted). At 1 worker the two are
// identical; at 8 the fixed split serialises behind whichever chunk got
// the hubs.
func benchAggregate(b *testing.B, workers int, weighted bool) {
	mb, x0 := benchBatch(b, 1)
	adj := BlockAdj{B: &mb.Blocks[0]}
	numDst := adj.NumDst()
	l := NewSAGELayer(rand.New(rand.NewSource(1)), 64, 32, true)
	concat := tensor.New(numDst, 2*l.InDim)
	pool := tensor.NewPool(workers)
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			l.aggConcatRow(concat.Row(i), adj, x0, i)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if weighted {
			pool.ParallelWeighted(numDst, adjCost(adj), body)
		} else {
			pool.ParallelRange(numDst, body)
		}
	}
}

func BenchmarkAggregatePowerLawFixed1(b *testing.B)    { benchAggregate(b, 1, false) }
func BenchmarkAggregatePowerLawWeighted1(b *testing.B) { benchAggregate(b, 1, true) }
func BenchmarkAggregatePowerLawFixed8(b *testing.B)    { benchAggregate(b, 8, false) }
func BenchmarkAggregatePowerLawWeighted8(b *testing.B) { benchAggregate(b, 8, true) }

// benchForward measures a full 2-layer model forward pass in steady
// state: pooled buffers, weighted dispatch. allocs/op is the pooling
// gate — per-batch matrix storage must come from the pool, so the
// reported count stays a small constant (dispatch closures), not O(batch).
func benchForward(b *testing.B, kind ModelKind, workers int) {
	mb, x0 := benchBatch(b, 2)
	var degrees []int
	if kind == KindGCN {
		degrees = make([]int, 20000)
		for i := range degrees {
			degrees[i] = i % 50
		}
	}
	m, err := NewModel(ModelSpec{Kind: kind, Dims: []int{64, 32, 8}, Seed: 1}, degrees)
	if err != nil {
		b.Fatal(err)
	}
	pool := tensor.NewPool(workers)
	m.Forward(pool, mb, x0) // warm the buffer pool
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		m.Forward(pool, mb, x0)
	}
}

func BenchmarkSAGEForwardPooled1(b *testing.B) { benchForward(b, KindSAGE, 1) }
func BenchmarkSAGEForwardPooled8(b *testing.B) { benchForward(b, KindSAGE, 8) }
func BenchmarkGCNForwardPooled8(b *testing.B)  { benchForward(b, KindGCN, 8) }

// BenchmarkSAGEInferFused measures the serving path: fused
// gather+aggregate+matmul per row, no intermediate concat matrix.
func BenchmarkSAGEInferFused8(b *testing.B) {
	mb, x0 := benchBatch(b, 2)
	m, err := NewModel(ModelSpec{Kind: KindSAGE, Dims: []int{64, 32, 8}, Seed: 1}, nil)
	if err != nil {
		b.Fatal(err)
	}
	pool := tensor.NewPool(8)
	m.Buffers().Put(m.Infer(pool, mb, x0)) // warm the buffer pool
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		m.Buffers().Put(m.Infer(pool, mb, x0))
	}
}

// BenchmarkTrainStepPooled1 is the end-to-end steady-state gate: gather,
// forward, loss, backward, recycle — allocs/op must stay a small
// constant.
func BenchmarkTrainStepPooled1(b *testing.B) {
	g, labels := powerLawGraph(b, 20000, 200000)
	feats := randFeatures(g.NumNodes, 64, 7)
	targets := make([]graph.NodeID, 1024)
	batchLabels := make([]int32, len(targets))
	for i := range targets {
		targets[i] = graph.NodeID(i * 3)
		batchLabels[i] = labels[targets[i]]
	}
	mb := sampler.NewFullNeighbor(g, 2).Sample(nil, targets)
	m, err := NewModel(ModelSpec{Kind: KindSAGE, Dims: []int{64, 32, 8}, Seed: 1}, nil)
	if err != nil {
		b.Fatal(err)
	}
	pool := tensor.NewPool(1)
	bufs := m.Buffers()
	step := func() {
		x0 := GatherPooled(bufs, feats, mb.InputNodes())
		logits := m.Forward(pool, mb, x0)
		_, dLogits := SoftmaxCrossEntropyPooled(bufs, logits, batchLabels)
		dX := m.Backward(pool, dLogits)
		bufs.Put(dX)
		bufs.Put(dLogits)
		bufs.Put(x0)
		m.ZeroGrad()
	}
	step() // warm the buffer pool
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		step()
	}
}
