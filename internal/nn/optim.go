package nn

import (
	"math"

	"argo/internal/tensor"
)

// Adam is the Adam optimizer (Kingma & Ba). Replicas that see identical
// gradient sequences take bit-identical steps, which the multi-process
// engine's consistency guarantee builds on.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	step int
	m, v []*tensor.Matrix
}

// NewAdam returns an Adam optimizer with the usual defaults
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one update to params from their accumulated gradients.
// State slots are allocated lazily on first use and keyed positionally,
// so the same parameter slice must be passed every step.
func (a *Adam) Step(params []*Param) {
	if a.m == nil {
		a.m = make([]*tensor.Matrix, len(params))
		a.v = make([]*tensor.Matrix, len(params))
		for i, p := range params {
			a.m[i] = tensor.New(p.W.Rows, p.W.Cols)
			a.v[i] = tensor.New(p.W.Rows, p.W.Cols)
		}
	}
	if len(a.m) != len(params) {
		panic("nn: Adam.Step param count changed")
	}
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range params {
		m, v := a.m[i], a.v[i]
		b1, b2 := float32(a.Beta1), float32(a.Beta2)
		for k, g := range p.Grad.Data {
			m.Data[k] = b1*m.Data[k] + (1-b1)*g
			v.Data[k] = b2*v.Data[k] + (1-b2)*g*g
			mHat := float64(m.Data[k]) / bc1
			vHat := float64(v.Data[k]) / bc2
			p.W.Data[k] -= float32(a.LR * mHat / (math.Sqrt(vHat) + a.Eps))
		}
	}
}

// SGD is plain stochastic gradient descent, used by tests that need the
// simplest possible update rule.
type SGD struct{ LR float64 }

// Step applies one SGD update.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		tensor.AddScaled(p.W, float32(-s.LR), p.Grad)
	}
}

// Optimizer is satisfied by Adam and SGD.
type Optimizer interface {
	Step(params []*Param)
}
