package nn

import (
	"math"
	"math/rand"

	"argo/internal/tensor"
)

// Layer is one GNN layer: Forward caches whatever Backward needs, so each
// layer instance belongs to exactly one model replica and processes one
// batch at a time (matching how the training engine drives it).
type Layer interface {
	Forward(pool *tensor.Pool, adj Adj, x *tensor.Matrix) *tensor.Matrix
	// Backward consumes the gradient w.r.t. the layer output and returns
	// the gradient w.r.t. the layer input, accumulating parameter grads.
	Backward(pool *tensor.Pool, adj Adj, dOut *tensor.Matrix) *tensor.Matrix
	Params() []*Param
}

// SAGELayer implements GraphSAGE (paper Eq. 2 and 3):
//
//	a_v = h_v ∥ Mean({h_u : u ∈ N(v)})
//	h'_v = ReLU(a_v·W + b)
//
// The concatenated input has width 2·inDim. ReLU is skipped on the output
// layer (Relu=false).
type SAGELayer struct {
	InDim, OutDim int
	Relu          bool
	Weight        *Param // 2·InDim × OutDim
	Bias          *Param // 1 × OutDim

	// cached activations from the last Forward
	x      *tensor.Matrix // layer input (numSrc × InDim)
	concat *tensor.Matrix // numDst × 2·InDim
	out    *tensor.Matrix // numDst × OutDim (post-activation)
}

// NewSAGELayer constructs a GraphSAGE layer with Xavier-initialised
// weights.
func NewSAGELayer(rng *rand.Rand, inDim, outDim int, relu bool) *SAGELayer {
	l := &SAGELayer{
		InDim: inDim, OutDim: outDim, Relu: relu,
		Weight: NewParam("sage.weight", 2*inDim, outDim),
		Bias:   NewParam("sage.bias", 1, outDim),
	}
	XavierUniform(rng, l.Weight)
	return l
}

// Params implements Layer.
func (l *SAGELayer) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// Forward implements Layer.
func (l *SAGELayer) Forward(pool *tensor.Pool, adj Adj, x *tensor.Matrix) *tensor.Matrix {
	numDst := adj.NumDst()
	l.x = x
	l.concat = tensor.New(numDst, 2*l.InDim)
	in := l.InDim
	pool.ParallelRange(numDst, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := l.concat.Row(i)
			// Self half: destination's own previous-layer state (dst is a
			// prefix of src, so row i of x is destination i).
			copy(row[:in], x.Row(i))
			// Neighbour half: mean aggregation.
			nbrs := adj.Neighbors(i)
			if len(nbrs) == 0 {
				continue
			}
			agg := row[in:]
			for _, j := range nbrs {
				src := x.Row(int(j))
				for k, v := range src {
					agg[k] += v
				}
			}
			invDeg := float32(1) / float32(len(nbrs))
			for k := range agg {
				agg[k] *= invDeg
			}
		}
	})
	l.out = tensor.New(numDst, l.OutDim)
	tensor.MatMul(pool, l.out, l.concat, l.Weight.W)
	tensor.AddRowVector(l.out, l.Bias.W.Data)
	if l.Relu {
		tensor.ReLU(l.out, l.out)
	}
	return l.out
}

// Backward implements Layer.
func (l *SAGELayer) Backward(pool *tensor.Pool, adj Adj, dOut *tensor.Matrix) *tensor.Matrix {
	numDst := adj.NumDst()
	dZ := dOut
	if l.Relu {
		dZ = tensor.New(dOut.Rows, dOut.Cols)
		tensor.ReLUBackward(dZ, dOut, l.out)
	}
	// Parameter gradients.
	dW := tensor.New(l.Weight.W.Rows, l.Weight.W.Cols)
	tensor.MatMulAT(pool, dW, l.concat, dZ)
	tensor.Add(l.Weight.Grad, dW)
	db := make([]float32, l.OutDim)
	tensor.ColSum(db, dZ)
	for k, v := range db {
		l.Bias.Grad.Data[k] += v
	}
	// Input gradient through the concat.
	dConcat := tensor.New(numDst, 2*l.InDim)
	tensor.MatMulBT(pool, dConcat, dZ, l.Weight.W)
	dX := tensor.New(adj.NumSrc(), l.InDim)
	in := l.InDim
	// Self half maps straight onto the dst prefix; the neighbour half
	// scatter-adds through the mean. The scatter runs serially because
	// multiple destinations may share a source row.
	for i := 0; i < numDst; i++ {
		dRow := dConcat.Row(i)
		self := dX.Row(i)
		for k := 0; k < in; k++ {
			self[k] += dRow[k]
		}
		nbrs := adj.Neighbors(i)
		if len(nbrs) == 0 {
			continue
		}
		invDeg := float32(1) / float32(len(nbrs))
		dAgg := dRow[in:]
		for _, j := range nbrs {
			dst := dX.Row(int(j))
			for k, v := range dAgg {
				dst[k] += v * invDeg
			}
		}
	}
	return dX
}

// GCNLayer implements the graph convolutional layer (paper Eq. 1 and 3)
// with the standard self-loop-augmented symmetric normalisation:
//
//	a_v = Σ_{u∈N(v)} h_u / sqrt((D(v)+1)(D(u)+1)) + h_v / (D(v)+1)
//	h'_v = ReLU(a_v·W + b)
//
// D are *global* graph degrees (supplied at construction), matching how
// sampled-GCN implementations normalise: the sampled block is an unbiased
// structural sample but the normalisation constants come from the graph.
type GCNLayer struct {
	InDim, OutDim int
	Relu          bool
	Weight        *Param
	Bias          *Param
	InvSqrtDeg    []float32 // 1/sqrt(D(v)+1) indexed by global node ID

	x   *tensor.Matrix
	agg *tensor.Matrix
	out *tensor.Matrix
}

// NewGCNLayer constructs a GCN layer. degrees must hold the global degree
// of every node in the training graph.
func NewGCNLayer(rng *rand.Rand, inDim, outDim int, relu bool, degrees []int) *GCNLayer {
	l := &GCNLayer{
		InDim: inDim, OutDim: outDim, Relu: relu,
		Weight:     NewParam("gcn.weight", inDim, outDim),
		Bias:       NewParam("gcn.bias", 1, outDim),
		InvSqrtDeg: make([]float32, len(degrees)),
	}
	for v, d := range degrees {
		l.InvSqrtDeg[v] = float32(1 / math.Sqrt(float64(d)+1))
	}
	XavierUniform(rng, l.Weight)
	return l
}

// Params implements Layer.
func (l *GCNLayer) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// Forward implements Layer.
func (l *GCNLayer) Forward(pool *tensor.Pool, adj Adj, x *tensor.Matrix) *tensor.Matrix {
	numDst := adj.NumDst()
	l.x = x
	l.agg = tensor.New(numDst, l.InDim)
	pool.ParallelRange(numDst, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := l.InvSqrtDeg[adj.DstGlobal(i)]
			row := l.agg.Row(i)
			// Self term: h_v/(D(v)+1) = c_v · c_v · h_v.
			self := x.Row(i)
			cSelf := ci * ci
			for k, v := range self {
				row[k] = v * cSelf
			}
			for _, j := range adj.Neighbors(i) {
				c := ci * l.InvSqrtDeg[adj.SrcGlobal(int(j))]
				src := x.Row(int(j))
				for k, v := range src {
					row[k] += v * c
				}
			}
		}
	})
	l.out = tensor.New(numDst, l.OutDim)
	tensor.MatMul(pool, l.out, l.agg, l.Weight.W)
	tensor.AddRowVector(l.out, l.Bias.W.Data)
	if l.Relu {
		tensor.ReLU(l.out, l.out)
	}
	return l.out
}

// Backward implements Layer.
func (l *GCNLayer) Backward(pool *tensor.Pool, adj Adj, dOut *tensor.Matrix) *tensor.Matrix {
	numDst := adj.NumDst()
	dZ := dOut
	if l.Relu {
		dZ = tensor.New(dOut.Rows, dOut.Cols)
		tensor.ReLUBackward(dZ, dOut, l.out)
	}
	dW := tensor.New(l.Weight.W.Rows, l.Weight.W.Cols)
	tensor.MatMulAT(pool, dW, l.agg, dZ)
	tensor.Add(l.Weight.Grad, dW)
	db := make([]float32, l.OutDim)
	tensor.ColSum(db, dZ)
	for k, v := range db {
		l.Bias.Grad.Data[k] += v
	}
	dAgg := tensor.New(numDst, l.InDim)
	tensor.MatMulBT(pool, dAgg, dZ, l.Weight.W)
	dX := tensor.New(adj.NumSrc(), l.InDim)
	for i := 0; i < numDst; i++ {
		ci := l.InvSqrtDeg[adj.DstGlobal(i)]
		dRow := dAgg.Row(i)
		self := dX.Row(i)
		cSelf := ci * ci
		for k, v := range dRow {
			self[k] += v * cSelf
		}
		for _, j := range adj.Neighbors(i) {
			c := ci * l.InvSqrtDeg[adj.SrcGlobal(int(j))]
			dst := dX.Row(int(j))
			for k, v := range dRow {
				dst[k] += v * c
			}
		}
	}
	return dX
}
