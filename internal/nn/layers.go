package nn

import (
	"fmt"
	"math"
	"math/rand"

	"argo/internal/tensor"
)

// Layer is one GNN layer: Forward caches whatever Backward needs, so each
// layer instance belongs to exactly one model replica and processes one
// batch at a time (matching how the training engine drives it). A layer's
// Forward output is valid until that layer's next Forward or Infer call —
// with buffer pooling the storage is recycled into the next batch.
type Layer interface {
	Forward(pool *tensor.Pool, adj Adj, x *tensor.Matrix) *tensor.Matrix
	// Backward consumes the gradient w.r.t. the layer output and returns
	// the gradient w.r.t. the layer input, accumulating parameter grads.
	Backward(pool *tensor.Pool, adj Adj, dOut *tensor.Matrix) *tensor.Matrix
	// Infer is the fused forward-only path: same bit-exact math as
	// Forward, but it neither caches activations for Backward nor
	// materialises the intermediate aggregation matrix — each row is
	// aggregated into per-worker scratch and multiplied straight into
	// the output tile.
	Infer(pool *tensor.Pool, adj Adj, x *tensor.Matrix) *tensor.Matrix
	Params() []*Param
}

// bufferedLayer is the seam NewModel uses to thread one shared BufPool
// through every layer of a replica.
type bufferedLayer interface {
	setBufPool(bp *tensor.BufPool)
}

// adjCost returns the per-destination aggregation cost for weighted
// chunking: 1 (the self term) plus the row's sampled degree. Hub rows
// get proportionally narrower chunks, so a skewed batch no longer
// serialises behind the worker that owns the hub.
func adjCost(adj Adj) func(i int) int {
	return func(i int) int { return 1 + len(adj.Neighbors(i)) }
}

// reluRowInPlace applies ReLU to one row with the exact comparison
// tensor.ReLU uses (v > 0 keeps v, everything else — including NaN and
// -0 — becomes +0), so fused inference stays bit-identical to Forward.
func reluRowInPlace(row []float32) {
	for j, v := range row {
		if !(v > 0) {
			row[j] = 0
		}
	}
}

// denseRowMulAdd computes out = row·W + bias with MatMul's exact ikj
// reduction order (zero the output, skip zero inputs, stream W rows),
// followed by AddRowVector's bias add — the fused per-row equivalent of
// the unfused MatMul+AddRowVector pair.
func denseRowMulAdd(out, row []float32, w *tensor.Matrix, bias []float32) {
	for j := range out {
		out[j] = 0
	}
	n := w.Cols
	for p, av := range row {
		if av == 0 {
			continue
		}
		wr := w.Data[p*n : (p+1)*n]
		for j, wv := range wr {
			out[j] += av * wv
		}
	}
	for j, b := range bias {
		out[j] += b
	}
}

// SAGELayer implements GraphSAGE (paper Eq. 2 and 3):
//
//	a_v = h_v ∥ Mean({h_u : u ∈ N(v)})
//	h'_v = ReLU(a_v·W + b)
//
// The concatenated input has width 2·inDim. ReLU is skipped on the output
// layer (Relu=false).
type SAGELayer struct {
	InDim, OutDim int
	Relu          bool
	Weight        *Param // 2·InDim × OutDim
	Bias          *Param // 1 × OutDim

	bufs *tensor.BufPool // nil → plain allocation
	db   []float32       // bias-gradient scratch

	// cached activations from the last Forward
	x      *tensor.Matrix // layer input (numSrc × InDim)
	concat *tensor.Matrix // numDst × 2·InDim
	out    *tensor.Matrix // numDst × OutDim (post-activation)
}

// NewSAGELayer constructs a GraphSAGE layer with Xavier-initialised
// weights.
func NewSAGELayer(rng *rand.Rand, inDim, outDim int, relu bool) *SAGELayer {
	l := &SAGELayer{
		InDim: inDim, OutDim: outDim, Relu: relu,
		Weight: NewParam("sage.weight", 2*inDim, outDim),
		Bias:   NewParam("sage.bias", 1, outDim),
	}
	XavierUniform(rng, l.Weight)
	return l
}

// Params implements Layer.
func (l *SAGELayer) Params() []*Param { return []*Param{l.Weight, l.Bias} }

func (l *SAGELayer) setBufPool(bp *tensor.BufPool) { l.bufs = bp }

// aggConcatRow fills row (width 2·InDim, zeroed) with destination i's
// concatenated self state and mean-aggregated neighbourhood.
func (l *SAGELayer) aggConcatRow(row []float32, adj Adj, x *tensor.Matrix, i int) {
	in := l.InDim
	// Self half: destination's own previous-layer state (dst is a
	// prefix of src, so row i of x is destination i).
	copy(row[:in], x.Row(i))
	// Neighbour half: mean aggregation.
	nbrs := adj.Neighbors(i)
	if len(nbrs) == 0 {
		return
	}
	agg := row[in:]
	for _, j := range nbrs {
		src := x.Row(int(j))
		for k, v := range src {
			agg[k] += v
		}
	}
	invDeg := float32(1) / float32(len(nbrs))
	for k := range agg {
		agg[k] *= invDeg
	}
}

// Forward implements Layer.
func (l *SAGELayer) Forward(pool *tensor.Pool, adj Adj, x *tensor.Matrix) *tensor.Matrix {
	numDst := adj.NumDst()
	l.x = x
	// Recycle the previous batch's activations: the layer processes one
	// batch at a time, so by the time Forward runs again the prior
	// output has been consumed.
	l.bufs.Put(l.concat)
	l.bufs.Put(l.out)
	l.concat = l.bufs.Get(numDst, 2*l.InDim)
	pool.ParallelWeighted(numDst, adjCost(adj), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			l.aggConcatRow(l.concat.Row(i), adj, x, i)
		}
	})
	l.out = l.bufs.Get(numDst, l.OutDim)
	tensor.MatMul(pool, l.out, l.concat, l.Weight.W)
	tensor.AddRowVector(l.out, l.Bias.W.Data)
	if l.Relu {
		tensor.ReLU(l.out, l.out)
	}
	return l.out
}

// Infer implements Layer: fused aggregate→matmul with per-worker scratch
// instead of a materialised numDst×2·InDim concat matrix.
func (l *SAGELayer) Infer(pool *tensor.Pool, adj Adj, x *tensor.Matrix) *tensor.Matrix {
	numDst := adj.NumDst()
	out := l.bufs.Get(numDst, l.OutDim)
	w, bias := l.Weight.W, l.Bias.W.Data
	pool.ParallelWeighted(numDst, adjCost(adj), func(lo, hi int) {
		scratch := l.bufs.Get(1, 2*l.InDim)
		row := scratch.Data
		for i := lo; i < hi; i++ {
			for k := range row {
				row[k] = 0
			}
			l.aggConcatRow(row, adj, x, i)
			dr := out.Row(i)
			denseRowMulAdd(dr, row, w, bias)
			if l.Relu {
				reluRowInPlace(dr)
			}
		}
		l.bufs.Put(scratch)
	})
	return out
}

// Backward implements Layer.
func (l *SAGELayer) Backward(pool *tensor.Pool, adj Adj, dOut *tensor.Matrix) *tensor.Matrix {
	numDst := adj.NumDst()
	dZ := dOut
	if l.Relu {
		dZ = l.bufs.Get(dOut.Rows, dOut.Cols)
		tensor.ReLUBackward(dZ, dOut, l.out)
	}
	// Parameter gradients.
	dW := l.bufs.Get(l.Weight.W.Rows, l.Weight.W.Cols)
	tensor.MatMulAT(pool, dW, l.concat, dZ)
	tensor.Add(l.Weight.Grad, dW)
	l.bufs.Put(dW)
	if cap(l.db) < l.OutDim {
		l.db = make([]float32, l.OutDim)
	}
	db := l.db[:l.OutDim]
	tensor.ColSum(db, dZ)
	for k, v := range db {
		l.Bias.Grad.Data[k] += v
	}
	// Input gradient through the concat.
	dConcat := l.bufs.Get(numDst, 2*l.InDim)
	tensor.MatMulBT(pool, dConcat, dZ, l.Weight.W)
	if l.Relu {
		l.bufs.Put(dZ)
	}
	dX := l.bufs.Get(adj.NumSrc(), l.InDim)
	in := l.InDim
	// Self half maps straight onto the dst prefix; the neighbour half
	// scatter-adds through the mean. The scatter runs serially because
	// multiple destinations may share a source row.
	for i := 0; i < numDst; i++ {
		dRow := dConcat.Row(i)
		self := dX.Row(i)
		for k := 0; k < in; k++ {
			self[k] += dRow[k]
		}
		nbrs := adj.Neighbors(i)
		if len(nbrs) == 0 {
			continue
		}
		invDeg := float32(1) / float32(len(nbrs))
		dAgg := dRow[in:]
		for _, j := range nbrs {
			dst := dX.Row(int(j))
			for k, v := range dAgg {
				dst[k] += v * invDeg
			}
		}
	}
	l.bufs.Put(dConcat)
	return dX
}

// GCNLayer implements the graph convolutional layer (paper Eq. 1 and 3)
// with the standard self-loop-augmented symmetric normalisation:
//
//	a_v = Σ_{u∈N(v)} h_u / sqrt((D(v)+1)(D(u)+1)) + h_v / (D(v)+1)
//	h'_v = ReLU(a_v·W + b)
//
// D are *global* graph degrees (supplied at construction), matching how
// sampled-GCN implementations normalise: the sampled block is an unbiased
// structural sample but the normalisation constants come from the graph.
type GCNLayer struct {
	InDim, OutDim int
	Relu          bool
	Weight        *Param
	Bias          *Param
	InvSqrtDeg    []float32 // 1/sqrt(D(v)+1) indexed by global node ID

	bufs *tensor.BufPool
	db   []float32

	x   *tensor.Matrix
	agg *tensor.Matrix
	out *tensor.Matrix
}

// NewGCNLayer constructs a GCN layer. degrees must hold the global degree
// of every node in the training graph.
func NewGCNLayer(rng *rand.Rand, inDim, outDim int, relu bool, degrees []int) *GCNLayer {
	l := &GCNLayer{
		InDim: inDim, OutDim: outDim, Relu: relu,
		Weight:     NewParam("gcn.weight", inDim, outDim),
		Bias:       NewParam("gcn.bias", 1, outDim),
		InvSqrtDeg: make([]float32, len(degrees)),
	}
	for v, d := range degrees {
		l.InvSqrtDeg[v] = float32(1 / math.Sqrt(float64(d)+1))
	}
	XavierUniform(rng, l.Weight)
	return l
}

// Params implements Layer.
func (l *GCNLayer) Params() []*Param { return []*Param{l.Weight, l.Bias} }

func (l *GCNLayer) setBufPool(bp *tensor.BufPool) { l.bufs = bp }

// checkAdj validates that every global node id the batch references is
// covered by the normalisation table, so a model built for a smaller
// graph fails with a diagnosable error instead of an index-out-of-range
// panic deep inside the aggregation kernel. The scan is O(numSrc) — the
// same order as the gather that built the batch — and covers the dst
// prefix too (destinations are a prefix of the sources by the Adj
// contract).
func (l *GCNLayer) checkAdj(adj Adj) {
	n := len(l.InvSqrtDeg)
	for j, numSrc := 0, adj.NumSrc(); j < numSrc; j++ {
		if id := int(adj.SrcGlobal(j)); id < 0 || id >= n {
			panic(fmt.Sprintf("nn: GCN normalisation table covers %d global nodes but the batch references node %d; the model was constructed with degrees for a smaller graph than it is being run on", n, id))
		}
	}
}

// aggRow fills row (width InDim, zeroed) with destination i's normalised
// self + neighbour sum.
func (l *GCNLayer) aggRow(row []float32, adj Adj, x *tensor.Matrix, i int) {
	ci := l.InvSqrtDeg[adj.DstGlobal(i)]
	// Self term: h_v/(D(v)+1) = c_v · c_v · h_v.
	self := x.Row(i)
	cSelf := ci * ci
	for k, v := range self {
		row[k] = v * cSelf
	}
	for _, j := range adj.Neighbors(i) {
		c := ci * l.InvSqrtDeg[adj.SrcGlobal(int(j))]
		src := x.Row(int(j))
		for k, v := range src {
			row[k] += v * c
		}
	}
}

// Forward implements Layer.
func (l *GCNLayer) Forward(pool *tensor.Pool, adj Adj, x *tensor.Matrix) *tensor.Matrix {
	l.checkAdj(adj)
	numDst := adj.NumDst()
	l.x = x
	l.bufs.Put(l.agg)
	l.bufs.Put(l.out)
	l.agg = l.bufs.Get(numDst, l.InDim)
	pool.ParallelWeighted(numDst, adjCost(adj), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			l.aggRow(l.agg.Row(i), adj, x, i)
		}
	})
	l.out = l.bufs.Get(numDst, l.OutDim)
	tensor.MatMul(pool, l.out, l.agg, l.Weight.W)
	tensor.AddRowVector(l.out, l.Bias.W.Data)
	if l.Relu {
		tensor.ReLU(l.out, l.out)
	}
	return l.out
}

// Infer implements Layer (fused, forward-only; see SAGELayer.Infer).
func (l *GCNLayer) Infer(pool *tensor.Pool, adj Adj, x *tensor.Matrix) *tensor.Matrix {
	l.checkAdj(adj)
	numDst := adj.NumDst()
	out := l.bufs.Get(numDst, l.OutDim)
	w, bias := l.Weight.W, l.Bias.W.Data
	pool.ParallelWeighted(numDst, adjCost(adj), func(lo, hi int) {
		scratch := l.bufs.Get(1, l.InDim)
		row := scratch.Data
		for i := lo; i < hi; i++ {
			l.aggRow(row, adj, x, i)
			dr := out.Row(i)
			denseRowMulAdd(dr, row, w, bias)
			if l.Relu {
				reluRowInPlace(dr)
			}
		}
		l.bufs.Put(scratch)
	})
	return out
}

// Backward implements Layer.
func (l *GCNLayer) Backward(pool *tensor.Pool, adj Adj, dOut *tensor.Matrix) *tensor.Matrix {
	numDst := adj.NumDst()
	dZ := dOut
	if l.Relu {
		dZ = l.bufs.Get(dOut.Rows, dOut.Cols)
		tensor.ReLUBackward(dZ, dOut, l.out)
	}
	dW := l.bufs.Get(l.Weight.W.Rows, l.Weight.W.Cols)
	tensor.MatMulAT(pool, dW, l.agg, dZ)
	tensor.Add(l.Weight.Grad, dW)
	l.bufs.Put(dW)
	if cap(l.db) < l.OutDim {
		l.db = make([]float32, l.OutDim)
	}
	db := l.db[:l.OutDim]
	tensor.ColSum(db, dZ)
	for k, v := range db {
		l.Bias.Grad.Data[k] += v
	}
	dAgg := l.bufs.Get(numDst, l.InDim)
	tensor.MatMulBT(pool, dAgg, dZ, l.Weight.W)
	if l.Relu {
		l.bufs.Put(dZ)
	}
	dX := l.bufs.Get(adj.NumSrc(), l.InDim)
	for i := 0; i < numDst; i++ {
		ci := l.InvSqrtDeg[adj.DstGlobal(i)]
		dRow := dAgg.Row(i)
		self := dX.Row(i)
		cSelf := ci * ci
		for k, v := range dRow {
			self[k] += v * cSelf
		}
		for _, j := range adj.Neighbors(i) {
			c := ci * l.InvSqrtDeg[adj.SrcGlobal(int(j))]
			dst := dX.Row(int(j))
			for k, v := range dRow {
				dst[k] += v * c
			}
		}
	}
	l.bufs.Put(dAgg)
	return dX
}
