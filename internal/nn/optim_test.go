package nn

import (
	"math"
	"math/rand"
	"testing"
)

// quadratic loss f(w) = Σ w², gradient 2w.
func quadGrad(p *Param) {
	for k, w := range p.W.Data {
		p.Grad.Data[k] = 2 * w
	}
}

func TestAdamMinimisesQuadratic(t *testing.T) {
	p := NewParam("w", 1, 4)
	copy(p.W.Data, []float32{1, -2, 3, -0.5})
	opt := NewAdam(0.1)
	for i := 0; i < 300; i++ {
		quadGrad(p)
		opt.Step([]*Param{p})
	}
	for k, w := range p.W.Data {
		if math.Abs(float64(w)) > 1e-2 {
			t.Fatalf("w[%d] = %v did not converge to 0", k, w)
		}
	}
}

func TestSGDMinimisesQuadratic(t *testing.T) {
	p := NewParam("w", 1, 2)
	copy(p.W.Data, []float32{4, -4})
	opt := &SGD{LR: 0.1}
	for i := 0; i < 100; i++ {
		quadGrad(p)
		opt.Step([]*Param{p})
	}
	for _, w := range p.W.Data {
		if math.Abs(float64(w)) > 1e-3 {
			t.Fatalf("SGD did not converge: %v", p.W.Data)
		}
	}
}

// Two Adam instances fed identical gradient sequences must take
// bit-identical steps (the multi-process replica-consistency foundation).
func TestAdamDeterministicAcrossReplicas(t *testing.T) {
	mk := func() (*Param, *Adam) {
		p := NewParam("w", 2, 3)
		copy(p.W.Data, []float32{1, 2, 3, 4, 5, 6})
		return p, NewAdam(0.01)
	}
	p1, o1 := mk()
	p2, o2 := mk()
	grads := []float32{0.5, -0.1, 0.3, 0.9, -0.7, 0.2}
	for step := 0; step < 50; step++ {
		for k := range grads {
			g := grads[k] * float32(step%3+1)
			p1.Grad.Data[k] = g
			p2.Grad.Data[k] = g
		}
		o1.Step([]*Param{p1})
		o2.Step([]*Param{p2})
	}
	if p1.W.MaxAbsDiff(p2.W) != 0 {
		t.Fatal("identical gradient streams produced different weights")
	}
}

func TestAdamBiasCorrectionFirstStep(t *testing.T) {
	// After one step with gradient g, Adam moves by ≈ lr·sign(g).
	p := NewParam("w", 1, 1)
	p.Grad.Data[0] = 0.3
	opt := NewAdam(0.1)
	opt.Step([]*Param{p})
	if math.Abs(float64(p.W.Data[0])+0.1) > 1e-3 {
		t.Fatalf("first Adam step = %v, want ≈ -lr", p.W.Data[0])
	}
}

func TestAdamParamCountChangePanics(t *testing.T) {
	p := NewParam("w", 1, 1)
	opt := NewAdam(0.1)
	opt.Step([]*Param{p})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when param count changes")
		}
	}()
	opt.Step([]*Param{p, NewParam("x", 1, 1)})
}

func TestOptimizersImplementInterface(t *testing.T) {
	var _ Optimizer = NewAdam(0.1)
	var _ Optimizer = &SGD{LR: 0.1}
	// XavierUniform stays within its bound.
	p := NewParam("w", 10, 10)
	XavierUniform(rand.New(rand.NewSource(11)), p)
	bound := float32(math.Sqrt(6.0 / 20))
	for _, v := range p.W.Data {
		if v > bound || v < -bound {
			t.Fatalf("Xavier value %v outside ±%v", v, bound)
		}
	}
}
