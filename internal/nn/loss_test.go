package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"argo/internal/tensor"
)

func TestSoftmaxCrossEntropyUniform(t *testing.T) {
	logits := tensor.New(2, 4) // all-zero logits → uniform distribution
	loss, grad := SoftmaxCrossEntropy(logits, []int32{0, 3})
	want := math.Log(4)
	if math.Abs(loss-want) > 1e-6 {
		t.Fatalf("loss = %v, want ln(4) = %v", loss, want)
	}
	// grad = (0.25 - onehot)/2.
	if math.Abs(float64(grad.At(0, 0))-(0.25-1)/2) > 1e-6 {
		t.Fatalf("grad[0,0] = %v", grad.At(0, 0))
	}
	if math.Abs(float64(grad.At(0, 1))-0.25/2) > 1e-6 {
		t.Fatalf("grad[0,1] = %v", grad.At(0, 1))
	}
}

func TestSoftmaxCrossEntropyPerfectPrediction(t *testing.T) {
	logits := tensor.FromSlice(1, 3, []float32{100, 0, 0})
	loss, _ := SoftmaxCrossEntropy(logits, []int32{0})
	if loss > 1e-6 {
		t.Fatalf("confident correct prediction should have ~0 loss, got %v", loss)
	}
	lossWrong, _ := SoftmaxCrossEntropy(logits, []int32{1})
	if lossWrong < 10 {
		t.Fatalf("confident wrong prediction should have large loss, got %v", lossWrong)
	}
}

// Property: every gradient row sums to zero (softmax-CE identity).
func TestQuickCrossEntropyGradRowsSumZero(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(6), 2+rng.Intn(6)
		logits := tensor.New(rows, cols)
		for i := range logits.Data {
			logits.Data[i] = float32(rng.NormFloat64() * 3)
		}
		labels := make([]int32, rows)
		for i := range labels {
			labels[i] = int32(rng.Intn(cols))
		}
		_, grad := SoftmaxCrossEntropy(logits, labels)
		for i := 0; i < rows; i++ {
			var sum float64
			for _, v := range grad.Row(i) {
				sum += float64(v)
			}
			if math.Abs(sum) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Finite-difference check of the loss gradient itself.
func TestCrossEntropyGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	logits := tensor.New(3, 4)
	for i := range logits.Data {
		logits.Data[i] = float32(rng.NormFloat64())
	}
	labels := []int32{1, 0, 3}
	_, grad := SoftmaxCrossEntropy(logits.Clone(), labels)
	const eps = 1e-2
	for k := 0; k < len(logits.Data); k++ {
		lp := logits.Clone()
		lp.Data[k] += eps
		lossP, _ := SoftmaxCrossEntropy(lp, labels)
		lm := logits.Clone()
		lm.Data[k] -= eps
		lossM, _ := SoftmaxCrossEntropy(lm, labels)
		numeric := (lossP - lossM) / (2 * eps)
		if math.Abs(numeric-float64(grad.Data[k])) > 1e-3 {
			t.Fatalf("grad[%d]: numeric %v analytic %v", k, numeric, grad.Data[k])
		}
	}
}

func TestSoftmaxCrossEntropyLabelMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SoftmaxCrossEntropy(tensor.New(2, 3), []int32{0})
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice(3, 2, []float32{
		2, 1, // pred 0
		0, 5, // pred 1
		3, 4, // pred 1
	})
	if acc := Accuracy(logits, []int32{0, 1, 0}); math.Abs(acc-2.0/3) > 1e-9 {
		t.Fatalf("Accuracy = %v", acc)
	}
	if Accuracy(tensor.New(0, 2), nil) != 0 {
		t.Fatal("empty accuracy must be 0")
	}
}
