// Package nn is the deep-learning substrate of the reproduction: GNN
// layers (GCN and GraphSAGE per the paper's Eqs. 1–3) with hand-derived
// backward passes, softmax cross-entropy loss, parameter initialisation,
// and the Adam optimizer. It replaces the PyTorch stack the paper builds
// on; gradients are exact (finite-difference checked in the tests), which
// is what makes the semantics-preservation experiments meaningful.
package nn

import (
	"math"
	"math/rand"

	"argo/internal/tensor"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Matrix
	Grad *tensor.Matrix
}

// NewParam allocates a zeroed parameter and gradient of the given shape.
func NewParam(name string, rows, cols int) *Param {
	return &Param{Name: name, W: tensor.New(rows, cols), Grad: tensor.New(rows, cols)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// XavierUniform fills p.W with the Glorot/Xavier uniform distribution
// U(−a, a), a = sqrt(6/(fanIn+fanOut)), using the provided source so
// replicas initialised from the same seed are bit-identical.
func XavierUniform(rng *rand.Rand, p *Param) {
	fanIn, fanOut := p.W.Rows, p.W.Cols
	a := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range p.W.Data {
		p.W.Data[i] = float32((rng.Float64()*2 - 1) * a)
	}
}
