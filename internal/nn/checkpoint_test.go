package nn

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func checkpointModel(t *testing.T, seed int64) *GNN {
	t.Helper()
	m, err := NewModel(ModelSpec{Kind: KindSAGE, Dims: []int{6, 8, 3}, Seed: seed}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCheckpointRoundTrip(t *testing.T) {
	src := checkpointModel(t, 1)
	// Perturb so we are not just round-tripping the seed.
	rng := rand.New(rand.NewSource(2))
	for _, p := range src.Params() {
		for i := range p.W.Data {
			p.W.Data[i] += float32(rng.NormFloat64())
		}
	}
	blob, err := src.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}
	dst := checkpointModel(t, 99) // different init
	if WeightsEqual(src, dst) {
		t.Fatal("models should differ before restore")
	}
	if err := dst.LoadCheckpoint(bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}
	if !WeightsEqual(src, dst) {
		t.Fatal("restore did not reproduce the weights")
	}
}

func TestCheckpointRejectsArchMismatch(t *testing.T) {
	src := checkpointModel(t, 1)
	blob, err := src.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}
	gcn, err := NewModel(ModelSpec{Kind: KindGCN, Dims: []int{6, 8, 3}, Seed: 1}, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := gcn.LoadCheckpoint(bytes.NewReader(blob)); err == nil {
		t.Fatal("kind mismatch must be rejected")
	}
	wide, err := NewModel(ModelSpec{Kind: KindSAGE, Dims: []int{6, 16, 3}, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := wide.LoadCheckpoint(bytes.NewReader(blob)); err == nil {
		t.Fatal("dim mismatch must be rejected")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	m := checkpointModel(t, 1)
	if err := m.LoadCheckpoint(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage must be rejected")
	}
}

func TestWeightsEqual(t *testing.T) {
	a := checkpointModel(t, 5)
	b := checkpointModel(t, 5)
	if !WeightsEqual(a, b) {
		t.Fatal("same-seed models must be equal")
	}
	b.Params()[0].W.Data[0] += 1
	if WeightsEqual(a, b) {
		t.Fatal("perturbed models must differ")
	}
}

// The producer/consumer contract of the serving path: argo-train writes
// a checkpoint file, argo-serve reconstructs the model from it alone.
func TestCheckpointFileRoundTrip(t *testing.T) {
	src := checkpointModel(t, 1)
	rng := rand.New(rand.NewSource(3))
	for _, p := range src.Params() {
		for i := range p.W.Data {
			p.W.Data[i] += float32(rng.NormFloat64())
		}
	}
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := src.SaveCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	// Explicit-arch load into a fresh replica.
	dst := checkpointModel(t, 42)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.LoadCheckpoint(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if !WeightsEqual(src, dst) {
		t.Fatal("save -> load did not reproduce the weights")
	}
	// Self-describing load: architecture reconstructed from the file.
	auto, err := LoadModelFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Spec.Kind != src.Spec.Kind || len(auto.Spec.Dims) != len(src.Spec.Dims) {
		t.Fatalf("reconstructed spec %v, want %v", auto.Spec, src.Spec)
	}
	if !WeightsEqual(src, auto) {
		t.Fatal("LoadModelFile did not reproduce the weights")
	}
	// Atomicity: no temp siblings left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("checkpoint dir has %d entries, want 1", len(entries))
	}
}

func TestLoadModelGCNNeedsDegrees(t *testing.T) {
	gcn, err := NewModel(ModelSpec{Kind: KindGCN, Dims: []int{4, 5, 2}, Seed: 1}, []int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := gcn.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(bytes.NewReader(blob), nil); err == nil {
		t.Fatal("GCN checkpoint without degrees must be rejected")
	}
	back, err := LoadModel(bytes.NewReader(blob), []int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !WeightsEqual(gcn, back) {
		t.Fatal("GCN LoadModel did not reproduce the weights")
	}
}
