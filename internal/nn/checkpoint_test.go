package nn

import (
	"bytes"
	"math/rand"
	"testing"
)

func checkpointModel(t *testing.T, seed int64) *GNN {
	t.Helper()
	m, err := NewModel(ModelSpec{Kind: KindSAGE, Dims: []int{6, 8, 3}, Seed: seed}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCheckpointRoundTrip(t *testing.T) {
	src := checkpointModel(t, 1)
	// Perturb so we are not just round-tripping the seed.
	rng := rand.New(rand.NewSource(2))
	for _, p := range src.Params() {
		for i := range p.W.Data {
			p.W.Data[i] += float32(rng.NormFloat64())
		}
	}
	blob, err := src.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}
	dst := checkpointModel(t, 99) // different init
	if WeightsEqual(src, dst) {
		t.Fatal("models should differ before restore")
	}
	if err := dst.LoadCheckpoint(bytes.NewReader(blob)); err != nil {
		t.Fatal(err)
	}
	if !WeightsEqual(src, dst) {
		t.Fatal("restore did not reproduce the weights")
	}
}

func TestCheckpointRejectsArchMismatch(t *testing.T) {
	src := checkpointModel(t, 1)
	blob, err := src.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}
	gcn, err := NewModel(ModelSpec{Kind: KindGCN, Dims: []int{6, 8, 3}, Seed: 1}, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := gcn.LoadCheckpoint(bytes.NewReader(blob)); err == nil {
		t.Fatal("kind mismatch must be rejected")
	}
	wide, err := NewModel(ModelSpec{Kind: KindSAGE, Dims: []int{6, 16, 3}, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := wide.LoadCheckpoint(bytes.NewReader(blob)); err == nil {
		t.Fatal("dim mismatch must be rejected")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	m := checkpointModel(t, 1)
	if err := m.LoadCheckpoint(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage must be rejected")
	}
}

func TestWeightsEqual(t *testing.T) {
	a := checkpointModel(t, 5)
	b := checkpointModel(t, 5)
	if !WeightsEqual(a, b) {
		t.Fatal("same-seed models must be equal")
	}
	b.Params()[0].W.Data[0] += 1
	if WeightsEqual(a, b) {
		t.Fatal("perturbed models must differ")
	}
}
