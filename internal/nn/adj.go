package nn

import (
	"argo/internal/graph"
	"argo/internal/sampler"
)

// Adj is the adjacency view GNN layers aggregate over. Both sampled-block
// (Neighbor Sampling) and induced-subgraph (ShaDow) batches satisfy it.
// By construction the destination nodes are a prefix of the source nodes,
// so x[:NumDst] is always the destinations' own previous-layer state.
type Adj interface {
	NumDst() int
	NumSrc() int
	// Neighbors returns the local source indices aggregated by local
	// destination i.
	Neighbors(i int) []int32
	// SrcGlobal and DstGlobal map local indices to global node IDs
	// (used for degree-based GCN normalisation).
	SrcGlobal(j int) graph.NodeID
	DstGlobal(i int) graph.NodeID
}

// BlockAdj adapts a sampler.Block to the Adj interface.
type BlockAdj struct{ B *sampler.Block }

// NumDst implements Adj.
func (a BlockAdj) NumDst() int { return a.B.NumDst }

// NumSrc implements Adj.
func (a BlockAdj) NumSrc() int { return a.B.NumSrc() }

// Neighbors implements Adj.
func (a BlockAdj) Neighbors(i int) []int32 { return a.B.Neighbors(i) }

// SrcGlobal implements Adj.
func (a BlockAdj) SrcGlobal(j int) graph.NodeID { return a.B.SrcNodes[j] }

// DstGlobal implements Adj.
func (a BlockAdj) DstGlobal(i int) graph.NodeID { return a.B.SrcNodes[i] }

// SubAdj adapts a sampler.Subgraph to the Adj interface: every subgraph
// node is both a source and a destination at every layer.
type SubAdj struct{ S *sampler.Subgraph }

// NumDst implements Adj.
func (a SubAdj) NumDst() int { return len(a.S.Nodes) }

// NumSrc implements Adj.
func (a SubAdj) NumSrc() int { return len(a.S.Nodes) }

// Neighbors implements Adj.
func (a SubAdj) Neighbors(i int) []int32 { return a.S.Neighbors(i) }

// SrcGlobal implements Adj.
func (a SubAdj) SrcGlobal(j int) graph.NodeID { return a.S.Nodes[j] }

// DstGlobal implements Adj.
func (a SubAdj) DstGlobal(i int) graph.NodeID { return a.S.Nodes[i] }
