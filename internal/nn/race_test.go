//go:build race

package nn

// raceEnabled reports that this build runs under the race detector,
// where sync.Pool intentionally drops items (to surface races), making
// allocation-threshold assertions meaningless.
const raceEnabled = true
