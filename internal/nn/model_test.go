package nn

import (
	"math/rand"
	"testing"

	"argo/internal/graph"
	"argo/internal/sampler"
	"argo/internal/tensor"
)

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(ModelSpec{Kind: KindSAGE, Dims: []int{5}}, nil); err == nil {
		t.Fatal("expected error for too-short dims")
	}
	if _, err := NewModel(ModelSpec{Kind: KindGCN, Dims: []int{5, 3}}, nil); err == nil {
		t.Fatal("GCN without degrees must error")
	}
	if _, err := NewModel(ModelSpec{Kind: "mlp", Dims: []int{5, 3}}, nil); err == nil {
		t.Fatal("unknown kind must error")
	}
}

func TestModelReplicaDeterminism(t *testing.T) {
	spec := ModelSpec{Kind: KindSAGE, Dims: []int{4, 8, 3}, Seed: 42}
	a, err := NewModel(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewModel(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) || len(pa) != 4 { // 2 layers × (W, b)
		t.Fatalf("param counts: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i].W.MaxAbsDiff(pb[i].W) != 0 {
			t.Fatalf("param %d differs across replicas with same seed", i)
		}
	}
	c, _ := NewModel(ModelSpec{Kind: KindSAGE, Dims: []int{4, 8, 3}, Seed: 43}, nil)
	if pa[0].W.MaxAbsDiff(c.Params()[0].W) == 0 {
		t.Fatal("different seeds must give different init")
	}
}

func TestForwardShapes(t *testing.T) {
	g, _, err := graph.Generate(graph.GenSpec{NumNodes: 60, NumEdges: 400, NumClasses: 3, Seed: 3, Homophily: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	feats := tensor.New(g.NumNodes, 6)
	targets := []graph.NodeID{0, 2, 4}

	ns := sampler.NewNeighbor(g, []int{3, 3})
	mb := ns.Sample(rng, targets)
	m, _ := NewModel(ModelSpec{Kind: KindSAGE, Dims: []int{6, 5, 4}, Seed: 5}, nil)
	out := m.Forward(tensor.NewPool(1), mb, Gather(feats, mb.InputNodes()))
	if out.Rows != 3 || out.Cols != 4 {
		t.Fatalf("neighbor forward shape %dx%d, want 3x4", out.Rows, out.Cols)
	}

	sh := sampler.NewShaDow(g, []int{3, 2}, 2)
	mbs := sh.Sample(rng, targets)
	out2 := m.Forward(tensor.NewPool(1), mbs, Gather(feats, mbs.InputNodes()))
	if out2.Rows != 3 || out2.Cols != 4 {
		t.Fatalf("shadow forward shape %dx%d, want 3x4", out2.Rows, out2.Cols)
	}
}

func TestForwardBlockLayerMismatchPanics(t *testing.T) {
	g, _, _ := graph.Generate(graph.GenSpec{NumNodes: 30, NumEdges: 150, NumClasses: 2, Seed: 6, Homophily: 0.5})
	rng := rand.New(rand.NewSource(7))
	ns := sampler.NewNeighbor(g, []int{3}) // one block
	mb := ns.Sample(rng, []graph.NodeID{1})
	m, _ := NewModel(ModelSpec{Kind: KindSAGE, Dims: []int{4, 5, 2}, Seed: 8}, nil) // two layers
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on block/layer mismatch")
		}
	}()
	m.Forward(tensor.NewPool(1), mb, tensor.New(mb.Blocks[0].NumSrc(), 4))
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	m, _ := NewModel(ModelSpec{Kind: KindSAGE, Dims: []int{4, 2}, Seed: 1}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Backward(tensor.NewPool(1), tensor.New(1, 2))
}

func TestGather(t *testing.T) {
	feats := tensor.FromSlice(3, 2, []float32{1, 2, 3, 4, 5, 6})
	out := Gather(feats, []graph.NodeID{2, 0})
	want := []float32{5, 6, 1, 2}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("Gather = %v", out.Data)
		}
	}
}

func TestDegrees(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}}, false)
	if err != nil {
		t.Fatal(err)
	}
	d := Degrees(g)
	if d[0] != 2 || d[1] != 0 || d[2] != 0 {
		t.Fatalf("Degrees = %v", d)
	}
}

func TestZeroGrad(t *testing.T) {
	m, _ := NewModel(ModelSpec{Kind: KindSAGE, Dims: []int{3, 2}, Seed: 2}, nil)
	m.Params()[0].Grad.Fill(5)
	m.ZeroGrad()
	for _, p := range m.Params() {
		for _, v := range p.Grad.Data {
			if v != 0 {
				t.Fatal("ZeroGrad left residue")
			}
		}
	}
}
