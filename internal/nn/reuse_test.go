package nn

import (
	"math"
	"math/rand"
	"testing"

	"argo/internal/graph"
	"argo/internal/sampler"
	"argo/internal/tensor"
)

// precomputeActivations runs one j-layer prefix pass per depth and
// returns acts[j][hub] = the hub's layer-j activation (acts[0] is the
// raw feature row, acts[L] the logits) — the recipe the serving layer's
// hub precompute follows.
func precomputeActivations(t *testing.T, m *GNN, g *graph.CSR, feats *tensor.Matrix, hubs []graph.NodeID) []map[graph.NodeID][]float32 {
	t.Helper()
	pool := tensor.NewPool(1)
	acts := make([]map[graph.NodeID][]float32, m.NumLayers()+1)
	acts[0] = make(map[graph.NodeID][]float32, len(hubs))
	for _, h := range hubs {
		acts[0][h] = append([]float32(nil), feats.Row(int(h))...)
	}
	for j := 1; j <= m.NumLayers(); j++ {
		fn := sampler.NewFullNeighbor(g, j)
		mb := fn.Sample(nil, hubs)
		x0 := Gather(feats, mb.InputNodes())
		out := m.InferReuse(pool, mb, x0, nil)
		acts[j] = make(map[graph.NodeID][]float32, len(hubs))
		for i, h := range hubs {
			acts[j][h] = append([]float32(nil), out.Row(i)...)
		}
		m.Buffers().Put(out)
	}
	return acts
}

// TestInferReusePrefixPass pins the prefix contract: a batch with fewer
// blocks than the model has layers runs exactly that prefix, and an
// L-block batch is plain Infer.
func TestInferReusePrefixPass(t *testing.T) {
	g, _ := powerLawGraph(t, 200, 1600)
	feats := randFeatures(g.NumNodes, 7, 2)
	targets := []graph.NodeID{3, 50, 120}
	m, err := NewModel(ModelSpec{Kind: KindSAGE, Dims: []int{7, 6, 5}, Seed: 11}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := tensor.NewPool(1)

	// Full-depth prefix == Infer.
	mb := sampler.NewFullNeighbor(g, 2).Sample(nil, targets)
	x0 := Gather(feats, mb.InputNodes())
	want := m.Infer(pool, mb, x0)
	got := m.InferReuse(pool, mb, Gather(feats, mb.InputNodes()), nil)
	if !bitsEqual(want, got) {
		t.Fatal("L-block InferReuse diverges from Infer")
	}

	// A 1-block prefix yields layer-1 activations: feeding them, plus a
	// 1-block gather from the targets, through the REMAINING layer must
	// reproduce the full-depth logits. (Composable prefixes are what let
	// the hub precompute build layer k from stored layer k-1 state.)
	mb1 := sampler.NewFullNeighbor(g, 1).Sample(nil, mb.Blocks[1].SrcNodes)
	a1 := m.InferReuse(pool, mb1, Gather(feats, mb1.InputNodes()), nil)
	top := &sampler.MiniBatch{Targets: targets, Blocks: mb.Blocks[1:]}
	tail := &GNN{Spec: m.Spec, Layers: m.Layers[1:], bufs: m.bufs}
	got2 := tail.InferReuse(pool, top, a1, nil)
	if !bitsEqual(want, got2) {
		t.Fatal("prefix + remainder does not compose to the full pass")
	}
}

// TestInferReuseInjectionBitIdentity is the exactness gate behind
// precomputed-hub serving: prune the gather at a hub set, inject the
// hubs' stored per-layer activations, and the served logits must be
// bit-identical to a direct full pass — for every model kind.
func TestInferReuseInjectionBitIdentity(t *testing.T) {
	g, _ := powerLawGraph(t, 300, 2400)
	feats := randFeatures(g.NumNodes, 7, 2)
	degrees := Degrees(g)
	hubs := graph.TopDegree(g, 12)
	hubSet := make(map[graph.NodeID]bool, len(hubs))
	for _, h := range hubs {
		hubSet[h] = true
	}
	known := func(v graph.NodeID) bool { return hubSet[v] }
	// Mix of plain targets and hub targets.
	targets := append([]graph.NodeID{0, 5, 17, 42, 99, 250}, hubs[0], hubs[3])

	for _, kind := range []ModelKind{KindSAGE, KindGCN, KindGIN} {
		m, err := NewModel(ModelSpec{Kind: kind, Dims: []int{7, 6, 5}, Seed: 11}, degrees)
		if err != nil {
			t.Fatal(err)
		}
		pool := tensor.NewPool(1)
		acts := precomputeActivations(t, m, g, feats, hubs)

		fn := sampler.NewFullNeighbor(g, m.NumLayers())
		full := fn.Sample(nil, targets)
		direct := m.Infer(pool, full, Gather(feats, full.InputNodes()))

		mb := fn.SamplePruned(targets, known)
		x0 := Gather(feats, mb.InputNodes())
		inject := func(li int, x *tensor.Matrix) {
			for j, v := range mb.Blocks[li].SrcNodes {
				if a, ok := acts[li][v]; ok {
					copy(x.Row(j), a)
				}
			}
		}
		out := m.InferReuse(pool, mb, x0, inject)
		// Hub targets were never expanded: their rows are answered from
		// the stored logits, exactly as the serving path does.
		for i, v := range targets {
			row := out.Row(i)
			if a, ok := acts[m.NumLayers()][v]; ok {
				row = a
			}
			for c := range row {
				if math.Float32bits(row[c]) != math.Float32bits(direct.Row(i)[c]) {
					t.Fatalf("%s: target %d logit %d: pruned+injected %v, direct %v",
						kind, v, c, row[c], direct.Row(i)[c])
				}
			}
		}
		m.Buffers().Put(out)
		m.Buffers().Put(direct)
	}
}

// TestInferReuseRejectsSubgraphInjection pins the contract that
// injection requires block batches.
func TestInferReuseRejectsSubgraphInjection(t *testing.T) {
	g, _ := powerLawGraph(t, 100, 600)
	feats := randFeatures(g.NumNodes, 7, 2)
	m, err := NewModel(ModelSpec{Kind: KindSAGE, Dims: []int{7, 6, 5}, Seed: 11}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh := sampler.NewShaDow(g, []int{3, 2}, 2)
	mb := sh.Sample(rand.New(rand.NewSource(1)), []graph.NodeID{1, 2})
	x0 := Gather(feats, mb.InputNodes())
	defer func() {
		if recover() == nil {
			t.Fatal("subgraph batch with inject did not panic")
		}
	}()
	m.InferReuse(tensor.NewPool(1), mb, x0, func(int, *tensor.Matrix) {})
}

func bitsEqual(a, b *tensor.Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			return false
		}
	}
	return true
}
