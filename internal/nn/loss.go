package nn

import (
	"math"

	"argo/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// against integer labels and the gradient w.r.t. the logits
// (softmax(logits) − onehot(labels)) / batch.
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int32) (float64, *tensor.Matrix) {
	return SoftmaxCrossEntropyPooled(nil, logits, labels)
}

// SoftmaxCrossEntropyPooled is SoftmaxCrossEntropy with the gradient
// matrix drawn from bufs (nil → plain allocation), so a training step
// that recycles the gradient after Backward allocates nothing.
func SoftmaxCrossEntropyPooled(bufs *tensor.BufPool, logits *tensor.Matrix, labels []int32) (float64, *tensor.Matrix) {
	if len(labels) != logits.Rows {
		panic("nn: label count != logit rows")
	}
	probs := bufs.Get(logits.Rows, logits.Cols)
	tensor.SoftmaxRows(probs, logits)
	var loss float64
	inv := 1 / float64(logits.Rows)
	for i, lbl := range labels {
		p := float64(probs.At(i, int(lbl)))
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
	}
	loss *= inv
	grad := probs
	for i, lbl := range labels {
		row := grad.Row(i)
		row[lbl] -= 1
		for k := range row {
			row[k] *= float32(inv)
		}
	}
	return loss, grad
}

// Accuracy returns the fraction of rows whose argmax equals the label.
func Accuracy(logits *tensor.Matrix, labels []int32) float64 {
	if logits.Rows == 0 {
		return 0
	}
	pred := make([]int, logits.Rows)
	tensor.ArgMaxRows(pred, logits)
	correct := 0
	for i, lbl := range labels {
		if int32(pred[i]) == lbl {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}
