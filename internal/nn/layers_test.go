package nn

import (
	"math"
	"math/rand"
	"testing"

	"argo/internal/graph"
	"argo/internal/sampler"
	"argo/internal/tensor"
)

// tinyBlock builds a hand-checkable block: 2 dst nodes, dst 0 aggregates
// src {2,3}, dst 1 aggregates src {2}.
func tinyBlock() *sampler.Block {
	return &sampler.Block{
		SrcNodes: []graph.NodeID{0, 1, 2, 3},
		NumDst:   2,
		RowPtr:   []int32{0, 2, 3},
		Col:      []int32{2, 3, 2},
	}
}

func TestSAGEForwardHandComputed(t *testing.T) {
	b := tinyBlock()
	l := &SAGELayer{
		InDim: 1, OutDim: 1, Relu: false,
		Weight: NewParam("w", 2, 1),
		Bias:   NewParam("b", 1, 1),
	}
	// W = [1; 1], bias 0 → output = self + mean(neighbors).
	l.Weight.W.Data[0], l.Weight.W.Data[1] = 1, 1
	x := tensor.FromSlice(4, 1, []float32{10, 20, 30, 40})
	out := l.Forward(tensor.NewPool(1), BlockAdj{B: b}, x)
	// dst0: self 10 + mean(30,40)=35 → 45; dst1: self 20 + 30 → 50.
	if out.At(0, 0) != 45 || out.At(1, 0) != 50 {
		t.Fatalf("SAGE forward = %v, want [45 50]", out.Data)
	}
}

func TestSAGEForwardNoNeighbors(t *testing.T) {
	b := &sampler.Block{
		SrcNodes: []graph.NodeID{0},
		NumDst:   1,
		RowPtr:   []int32{0, 0},
	}
	l := NewSAGELayer(rand.New(rand.NewSource(1)), 2, 3, true)
	x := tensor.FromSlice(1, 2, []float32{1, -1})
	out := l.Forward(tensor.NewPool(1), BlockAdj{B: b}, x)
	if out.Rows != 1 || out.Cols != 3 {
		t.Fatalf("shape %dx%d", out.Rows, out.Cols)
	}
	for _, v := range out.Data {
		if math.IsNaN(float64(v)) {
			t.Fatal("isolated node produced NaN")
		}
	}
}

func TestGCNForwardHandComputed(t *testing.T) {
	b := tinyBlock()
	degrees := []int{1, 1, 3, 1} // global degrees of nodes 0..3
	l := &GCNLayer{
		InDim: 1, OutDim: 1, Relu: false,
		Weight:     NewParam("w", 1, 1),
		Bias:       NewParam("b", 1, 1),
		InvSqrtDeg: make([]float32, 4),
	}
	for v, d := range degrees {
		l.InvSqrtDeg[v] = float32(1 / math.Sqrt(float64(d)+1))
	}
	l.Weight.W.Data[0] = 1
	x := tensor.FromSlice(4, 1, []float32{10, 20, 30, 40})
	out := l.Forward(tensor.NewPool(1), BlockAdj{B: b}, x)
	// dst0 (deg1): self 10/2 + 30/sqrt(2·4) + 40/sqrt(2·2) = 5+10.6066+20
	want0 := 10.0/2 + 30/math.Sqrt(8) + 40/math.Sqrt(4)
	// dst1 (deg1): self 20/2 + 30/sqrt(2·4)
	want1 := 20.0/2 + 30/math.Sqrt(8)
	if math.Abs(float64(out.At(0, 0))-want0) > 1e-4 || math.Abs(float64(out.At(1, 0))-want1) > 1e-4 {
		t.Fatalf("GCN forward = %v, want [%g %g]", out.Data, want0, want1)
	}
}

// modelLoss runs a fresh forward pass and returns the loss — the
// primitive for finite-difference gradient checking.
func modelLoss(m *GNN, pool *tensor.Pool, mb *sampler.MiniBatch, x0 *tensor.Matrix, labels []int32) float64 {
	logits := m.Forward(pool, mb, x0)
	loss, _ := SoftmaxCrossEntropy(logits, labels)
	return loss
}

// checkGradients compares analytic parameter gradients against central
// finite differences on a sample of entries.
func checkGradients(t *testing.T, m *GNN, mb *sampler.MiniBatch, x0 *tensor.Matrix, labels []int32) {
	t.Helper()
	pool := tensor.NewPool(1)
	m.ZeroGrad()
	logits := m.Forward(pool, mb, x0)
	_, dLogits := SoftmaxCrossEntropy(logits, labels)
	m.Backward(pool, dLogits)

	rng := rand.New(rand.NewSource(99))
	const eps = 1e-2
	checked, failures := 0, 0
	for _, p := range m.Params() {
		n := len(p.W.Data)
		samples := 8
		if samples > n {
			samples = n
		}
		for s := 0; s < samples; s++ {
			k := rng.Intn(n)
			orig := p.W.Data[k]
			p.W.Data[k] = orig + eps
			lp := modelLoss(m, pool, mb, x0, labels)
			p.W.Data[k] = orig - eps
			lm := modelLoss(m, pool, mb, x0, labels)
			p.W.Data[k] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(p.Grad.Data[k])
			if math.Abs(analytic) < 5e-4 && math.Abs(numeric) < 5e-4 {
				continue // both ~zero: uninformative in float32
			}
			checked++
			rel := math.Abs(numeric-analytic) / math.Max(math.Abs(numeric), math.Abs(analytic))
			if rel > 0.08 {
				failures++
				t.Logf("%s[%d]: analytic %g numeric %g rel %g", p.Name, k, analytic, numeric, rel)
			}
		}
	}
	if checked < 5 {
		t.Fatalf("gradient check exercised only %d entries", checked)
	}
	if failures > checked/10 {
		t.Fatalf("gradient check: %d/%d entries disagree", failures, checked)
	}
}

func gradCheckSetup(t *testing.T, kind ModelKind, useShadow bool) (*GNN, *sampler.MiniBatch, *tensor.Matrix, []int32) {
	t.Helper()
	g, labels, err := graph.Generate(graph.GenSpec{
		NumNodes: 80, NumEdges: 500, NumClasses: 3, Homophily: 0.5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	feats := tensor.New(g.NumNodes, 5)
	// GIN's unnormalised sum aggregation explodes activations on dense
	// subgraphs (real deployments add batch norm); small inputs keep the
	// float32 finite-difference numerics meaningful.
	scale := 1.0
	if kind == KindGIN {
		scale = 0.05
	}
	for i := range feats.Data {
		feats.Data[i] = float32(rng.NormFloat64() * scale)
	}
	targets := []graph.NodeID{1, 5, 9, 14, 23, 31}
	var mb *sampler.MiniBatch
	var layers int
	if useShadow {
		sh := sampler.NewShaDow(g, []int{4, 3}, 2)
		mb = sh.Sample(rng, targets)
		layers = 2
	} else {
		ns := sampler.NewNeighbor(g, []int{4, 3})
		mb = ns.Sample(rng, targets)
		layers = 2
	}
	_ = layers
	m, err := NewModel(ModelSpec{Kind: kind, Dims: []int{5, 6, 3}, Seed: 9}, Degrees(g))
	if err != nil {
		t.Fatal(err)
	}
	// Disable ReLU so the model is smooth: finite differences then check
	// the aggregation/concat/scatter plumbing exactly, without kink noise.
	// ReLU's own gradient is covered by tensor.ReLUBackward tests and by
	// TestGradientsSAGEWithReLU below.
	for _, l := range m.Layers {
		switch ll := l.(type) {
		case *SAGELayer:
			ll.Relu = false
		case *GCNLayer:
			ll.Relu = false
		case *GINLayer:
			ll.Relu = false
		}
	}
	x0 := Gather(feats, mb.InputNodes())
	batchLabels := make([]int32, len(targets))
	for i, v := range targets {
		batchLabels[i] = labels[v]
	}
	return m, mb, x0, batchLabels
}

func TestGradientsSAGENeighbor(t *testing.T) {
	m, mb, x0, labels := gradCheckSetup(t, KindSAGE, false)
	checkGradients(t, m, mb, x0, labels)
}

func TestGradientsGCNNeighbor(t *testing.T) {
	m, mb, x0, labels := gradCheckSetup(t, KindGCN, false)
	checkGradients(t, m, mb, x0, labels)
}

func TestGradientsSAGEShadow(t *testing.T) {
	m, mb, x0, labels := gradCheckSetup(t, KindSAGE, true)
	checkGradients(t, m, mb, x0, labels)
}

func TestGradientsGCNShadow(t *testing.T) {
	m, mb, x0, labels := gradCheckSetup(t, KindGCN, true)
	checkGradients(t, m, mb, x0, labels)
}

// One end-to-end check with ReLU enabled: neighbor-mode batches are small
// enough that kink noise in the finite differences stays below tolerance.
func TestGradientsSAGEWithReLU(t *testing.T) {
	m, mb, x0, labels := gradCheckSetup(t, KindSAGE, false)
	for _, l := range m.Layers {
		if sl, ok := l.(*SAGELayer); ok && sl.OutDim != 3 {
			sl.Relu = true
		}
	}
	checkGradients(t, m, mb, x0, labels)
}

// The forward pass must not depend on the pool's worker count.
func TestForwardWorkerInvariance(t *testing.T) {
	m1, mb, x0, _ := gradCheckSetup(t, KindSAGE, false)
	ref := m1.Forward(tensor.NewPool(1), mb, x0).Clone()
	for _, w := range []int{2, 4, 8} {
		got := m1.Forward(tensor.NewPool(w), mb, x0)
		if got.MaxAbsDiff(ref) != 0 {
			t.Fatalf("workers=%d changed forward output", w)
		}
	}
}

func TestBackwardAccumulatesAcrossBatches(t *testing.T) {
	m, mb, x0, labels := gradCheckSetup(t, KindSAGE, false)
	pool := tensor.NewPool(1)
	m.ZeroGrad()
	logits := m.Forward(pool, mb, x0)
	_, d := SoftmaxCrossEntropy(logits, labels)
	m.Backward(pool, d)
	g1 := m.Params()[0].Grad.Clone()
	// Second identical backward must double the accumulator.
	logits = m.Forward(pool, mb, x0)
	_, d = SoftmaxCrossEntropy(logits, labels)
	m.Backward(pool, d)
	g2 := m.Params()[0].Grad
	tensor.Scale(g1, 2)
	if g1.MaxAbsDiff(g2) > 1e-5 {
		t.Fatal("gradients must accumulate additively")
	}
}

func TestGINForwardHandComputed(t *testing.T) {
	b := tinyBlock()
	l := &GINLayer{
		InDim: 1, OutDim: 1, Relu: false, Epsilon: 0.5,
		Weight: NewParam("w", 1, 1),
		Bias:   NewParam("b", 1, 1),
	}
	l.Weight.W.Data[0] = 1
	x := tensor.FromSlice(4, 1, []float32{10, 20, 30, 40})
	out := l.Forward(tensor.NewPool(1), BlockAdj{B: b}, x)
	// dst0: 1.5·10 + (30+40) = 85; dst1: 1.5·20 + 30 = 60.
	if out.At(0, 0) != 85 || out.At(1, 0) != 60 {
		t.Fatalf("GIN forward = %v, want [85 60]", out.Data)
	}
}

func TestGradientsGINNeighbor(t *testing.T) {
	m, mb, x0, labels := gradCheckSetup(t, KindGIN, false)
	checkGradients(t, m, mb, x0, labels)
}

func TestGradientsGINShadow(t *testing.T) {
	m, mb, x0, labels := gradCheckSetup(t, KindGIN, true)
	checkGradients(t, m, mb, x0, labels)
}
