package nn

import (
	"fmt"
	"math/rand"

	"argo/internal/graph"
	"argo/internal/sampler"
	"argo/internal/tensor"
)

// ModelKind selects the GNN architecture.
type ModelKind string

// KindSAGE and KindGCN are the two architectures the paper evaluates;
// KindGIN is a model-zoo extension (Graph Isomorphism Network, GIN-0).
const (
	KindSAGE ModelKind = "sage"
	KindGCN  ModelKind = "gcn"
	KindGIN  ModelKind = "gin"
)

// ModelSpec describes a GNN model instance: architecture and layer
// dimensions. Dims has length L+1: input feature length, hidden widths,
// and the class count (the paper uses [f0, 128, 128, classes]).
type ModelSpec struct {
	Kind ModelKind
	Dims []int
	Seed int64
}

// GNN is a multi-layer GNN model replica. It owns its parameters and the
// per-batch activation cache (each layer caches its own inputs), so each
// ARGO process uses its own replica.
type GNN struct {
	Spec   ModelSpec
	Layers []Layer

	// cached between Forward and Backward
	lastBatch *sampler.MiniBatch
}

// NewModel builds a GNN replica. Replicas built with equal specs (same
// seed) have bit-identical initial parameters — the property the
// multi-process engine relies on. degrees is required for KindGCN
// (global degree array) and ignored for KindSAGE.
func NewModel(spec ModelSpec, degrees []int) (*GNN, error) {
	if len(spec.Dims) < 2 {
		return nil, fmt.Errorf("nn: model needs at least 2 dims, got %v", spec.Dims)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	m := &GNN{Spec: spec}
	numLayers := len(spec.Dims) - 1
	for l := 0; l < numLayers; l++ {
		relu := l < numLayers-1
		switch spec.Kind {
		case KindSAGE:
			m.Layers = append(m.Layers, NewSAGELayer(rng, spec.Dims[l], spec.Dims[l+1], relu))
		case KindGCN:
			if degrees == nil {
				return nil, fmt.Errorf("nn: GCN model requires global degrees")
			}
			m.Layers = append(m.Layers, NewGCNLayer(rng, spec.Dims[l], spec.Dims[l+1], relu, degrees))
		case KindGIN:
			m.Layers = append(m.Layers, NewGINLayer(rng, spec.Dims[l], spec.Dims[l+1], relu))
		default:
			return nil, fmt.Errorf("nn: unknown model kind %q", spec.Kind)
		}
	}
	return m, nil
}

// NumLayers returns the model depth.
func (m *GNN) NumLayers() int { return len(m.Layers) }

// Params returns all trainable parameters in a stable order.
func (m *GNN) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears all gradient accumulators.
func (m *GNN) ZeroGrad() {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// Forward runs the model on a sampled batch. x0 must hold the gathered
// input features for mb.InputNodes() (one row per input node, in order).
// It returns the logits for the batch targets.
func (m *GNN) Forward(pool *tensor.Pool, mb *sampler.MiniBatch, x0 *tensor.Matrix) *tensor.Matrix {
	m.lastBatch = mb
	x := x0
	if mb.Sub != nil {
		adj := SubAdj{S: mb.Sub}
		for _, l := range m.Layers {
			x = l.Forward(pool, adj, x)
		}
		// Readout: the first NumTargets subgraph rows are the targets.
		nt := mb.Sub.NumTargets
		return tensor.FromSlice(nt, x.Cols, x.Data[:nt*x.Cols])
	}
	if len(mb.Blocks) != len(m.Layers) {
		panic(fmt.Sprintf("nn: %d blocks for %d layers", len(mb.Blocks), len(m.Layers)))
	}
	for li, l := range m.Layers {
		x = l.Forward(pool, BlockAdj{B: &mb.Blocks[li]}, x)
	}
	return x
}

// Backward propagates dLogits (gradient w.r.t. Forward's return value)
// through the model, accumulating parameter gradients. It returns the
// gradient w.r.t. the gathered input features (rarely needed; exposed for
// testing).
func (m *GNN) Backward(pool *tensor.Pool, dLogits *tensor.Matrix) *tensor.Matrix {
	mb := m.lastBatch
	if mb == nil {
		panic("nn: Backward before Forward")
	}
	var grad *tensor.Matrix
	if mb.Sub != nil {
		// Expand target-row gradients to the full subgraph width.
		adj := SubAdj{S: mb.Sub}
		full := tensor.New(len(mb.Sub.Nodes), dLogits.Cols)
		copy(full.Data[:dLogits.Rows*dLogits.Cols], dLogits.Data)
		grad = full
		for li := len(m.Layers) - 1; li >= 0; li-- {
			grad = m.Layers[li].Backward(pool, adj, grad)
		}
		return grad
	}
	grad = dLogits
	for li := len(m.Layers) - 1; li >= 0; li-- {
		grad = m.Layers[li].Backward(pool, BlockAdj{B: &mb.Blocks[li]}, grad)
	}
	return grad
}

// Gather copies the feature rows of ids from feats into a new matrix —
// the memory-bound index_select the paper's Fig. 2 highlights.
func Gather(feats *tensor.Matrix, ids []graph.NodeID) *tensor.Matrix {
	out := tensor.New(len(ids), feats.Cols)
	for i, v := range ids {
		copy(out.Row(i), feats.Row(int(v)))
	}
	return out
}

// Degrees extracts the global degree array a GCN model needs.
func Degrees(g *graph.CSR) []int {
	d := make([]int, g.NumNodes)
	for v := range d {
		d[v] = g.Degree(graph.NodeID(v))
	}
	return d
}
