package nn

import (
	"fmt"
	"math/rand"

	"argo/internal/graph"
	"argo/internal/sampler"
	"argo/internal/tensor"
)

// ModelKind selects the GNN architecture.
type ModelKind string

// KindSAGE and KindGCN are the two architectures the paper evaluates;
// KindGIN is a model-zoo extension (Graph Isomorphism Network, GIN-0).
const (
	KindSAGE ModelKind = "sage"
	KindGCN  ModelKind = "gcn"
	KindGIN  ModelKind = "gin"
)

// ModelSpec describes a GNN model instance: architecture and layer
// dimensions. Dims has length L+1: input feature length, hidden widths,
// and the class count (the paper uses [f0, 128, 128, classes]).
type ModelSpec struct {
	Kind ModelKind
	Dims []int
	Seed int64
}

// GNN is a multi-layer GNN model replica. It owns its parameters, the
// per-batch activation cache (each layer caches its own inputs), and a
// shared buffer pool recycling every per-batch matrix, so each ARGO
// process uses its own replica and steady-state batches allocate no
// matrix storage.
type GNN struct {
	Spec   ModelSpec
	Layers []Layer

	// bufs recycles per-batch matrices across all layers of this
	// replica. Layers built by NewModel share it; callers gathering
	// input features may draw from (and return to) the same pool via
	// Buffers.
	bufs *tensor.BufPool

	// cached between Forward and Backward
	lastBatch *sampler.MiniBatch
}

// NewModel builds a GNN replica. Replicas built with equal specs (same
// seed) have bit-identical initial parameters — the property the
// multi-process engine relies on. degrees is required for KindGCN
// (global degree array) and ignored for KindSAGE.
func NewModel(spec ModelSpec, degrees []int) (*GNN, error) {
	if len(spec.Dims) < 2 {
		return nil, fmt.Errorf("nn: model needs at least 2 dims, got %v", spec.Dims)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	m := &GNN{Spec: spec, bufs: tensor.NewBufPool()}
	numLayers := len(spec.Dims) - 1
	for l := 0; l < numLayers; l++ {
		relu := l < numLayers-1
		switch spec.Kind {
		case KindSAGE:
			m.Layers = append(m.Layers, NewSAGELayer(rng, spec.Dims[l], spec.Dims[l+1], relu))
		case KindGCN:
			if degrees == nil {
				return nil, fmt.Errorf("nn: GCN model requires global degrees")
			}
			m.Layers = append(m.Layers, NewGCNLayer(rng, spec.Dims[l], spec.Dims[l+1], relu, degrees))
		case KindGIN:
			m.Layers = append(m.Layers, NewGINLayer(rng, spec.Dims[l], spec.Dims[l+1], relu))
		default:
			return nil, fmt.Errorf("nn: unknown model kind %q", spec.Kind)
		}
	}
	for _, l := range m.Layers {
		if bl, ok := l.(bufferedLayer); ok {
			bl.setBufPool(m.bufs)
		}
	}
	return m, nil
}

// NumLayers returns the model depth.
func (m *GNN) NumLayers() int { return len(m.Layers) }

// Buffers returns the replica's shared matrix buffer pool. Callers that
// gather per-batch inputs (feature matrices, input gradients) can Get
// from and Put back into it to keep the whole step allocation-free; a
// Put matrix must no longer be referenced by the caller.
func (m *GNN) Buffers() *tensor.BufPool { return m.bufs }

// Params returns all trainable parameters in a stable order.
func (m *GNN) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears all gradient accumulators.
func (m *GNN) ZeroGrad() {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// Forward runs the model on a sampled batch. x0 must hold the gathered
// input features for mb.InputNodes() (one row per input node, in order).
// It returns the logits for the batch targets.
func (m *GNN) Forward(pool *tensor.Pool, mb *sampler.MiniBatch, x0 *tensor.Matrix) *tensor.Matrix {
	m.lastBatch = mb
	x := x0
	if mb.Sub != nil {
		adj := SubAdj{S: mb.Sub}
		for _, l := range m.Layers {
			x = l.Forward(pool, adj, x)
		}
		// Readout: the first NumTargets subgraph rows are the targets.
		nt := mb.Sub.NumTargets
		return tensor.FromSlice(nt, x.Cols, x.Data[:nt*x.Cols])
	}
	if len(mb.Blocks) != len(m.Layers) {
		panic(fmt.Sprintf("nn: %d blocks for %d layers", len(mb.Blocks), len(m.Layers)))
	}
	for li, l := range m.Layers {
		x = l.Forward(pool, BlockAdj{B: &mb.Blocks[li]}, x)
	}
	return x
}

// Infer runs a fused forward-only pass: bit-identical logits to Forward
// (same per-row operation order) without caching activations or
// materialising the intermediate aggregation matrices — the serving
// path. The returned matrix draws from the model's buffer pool; callers
// done with it may Put it back via Buffers. Infer does not disturb the
// Forward/Backward activation cache.
func (m *GNN) Infer(pool *tensor.Pool, mb *sampler.MiniBatch, x0 *tensor.Matrix) *tensor.Matrix {
	if mb.Sub == nil && len(mb.Blocks) != len(m.Layers) {
		panic(fmt.Sprintf("nn: %d blocks for %d layers", len(mb.Blocks), len(m.Layers)))
	}
	return m.InferReuse(pool, mb, x0, nil)
}

// InferReuse is the activation-reuse variant of Infer: before each
// layer consumes its input, inject(layer, x) may overwrite rows of x
// with externally known activations — precomputed hub embeddings being
// the serving use. Row j of layer li's input corresponds to
// mb.Blocks[li].SrcNodes[j], so an injector that fills every known row
// makes a gather pruned at those nodes (sampler.SamplePruned)
// bit-identical to the unpruned pass: full-neighborhood aggregation
// makes each per-layer, per-node activation a pure function of (model,
// graph, features, node), so a stored value and a recomputed one carry
// the same bits. inject may be nil (plain fused inference).
//
// A batch gathered with fewer blocks than the model has layers runs
// only that prefix of layers — the hook precompute uses to read
// intermediate activations: an L'-block full gather followed by an
// L'-layer prefix pass yields exactly the targets' layer-L' outputs.
// Subgraph (ShaDow) batches support neither injection nor prefixing.
func (m *GNN) InferReuse(pool *tensor.Pool, mb *sampler.MiniBatch, x0 *tensor.Matrix, inject func(layer int, x *tensor.Matrix)) *tensor.Matrix {
	x := x0
	if mb.Sub != nil {
		if inject != nil {
			panic("nn: InferReuse injection requires a block batch, not a subgraph")
		}
		adj := SubAdj{S: mb.Sub}
		for _, l := range m.Layers {
			next := l.Infer(pool, adj, x)
			if x != x0 {
				m.bufs.Put(x)
			}
			x = next
		}
		nt := mb.Sub.NumTargets
		return tensor.FromSlice(nt, x.Cols, x.Data[:nt*x.Cols])
	}
	if len(mb.Blocks) > len(m.Layers) {
		panic(fmt.Sprintf("nn: %d blocks for %d layers", len(mb.Blocks), len(m.Layers)))
	}
	for li := range mb.Blocks {
		if inject != nil {
			inject(li, x)
		}
		next := m.Layers[li].Infer(pool, BlockAdj{B: &mb.Blocks[li]}, x)
		if x != x0 {
			m.bufs.Put(x)
		}
		x = next
	}
	return x
}

// Backward propagates dLogits (gradient w.r.t. Forward's return value)
// through the model, accumulating parameter gradients. It returns the
// gradient w.r.t. the gathered input features (rarely needed; exposed for
// testing). Intermediate layer gradients are recycled through the
// model's buffer pool; the returned matrix is the caller's to keep (or
// Put back via Buffers).
func (m *GNN) Backward(pool *tensor.Pool, dLogits *tensor.Matrix) *tensor.Matrix {
	mb := m.lastBatch
	if mb == nil {
		panic("nn: Backward before Forward")
	}
	grad := dLogits
	adjFor := func(li int) Adj { return BlockAdj{B: &mb.Blocks[li]} }
	if mb.Sub != nil {
		// Expand target-row gradients to the full subgraph width.
		adj := SubAdj{S: mb.Sub}
		full := m.bufs.Get(len(mb.Sub.Nodes), dLogits.Cols)
		copy(full.Data[:dLogits.Rows*dLogits.Cols], dLogits.Data)
		grad = full
		adjFor = func(int) Adj { return adj }
	}
	for li := len(m.Layers) - 1; li >= 0; li-- {
		next := m.Layers[li].Backward(pool, adjFor(li), grad)
		if grad != dLogits {
			m.bufs.Put(grad)
		}
		grad = next
	}
	return grad
}

// Gather copies the feature rows of ids from feats into a new matrix —
// the memory-bound index_select the paper's Fig. 2 highlights.
func Gather(feats *tensor.Matrix, ids []graph.NodeID) *tensor.Matrix {
	return GatherPooled(nil, feats, ids)
}

// GatherPooled is Gather with the output drawn from bufs (nil → plain
// allocation): recycling the gathered batch back into the same pool
// after the step makes the steady-state input gather allocation-free.
func GatherPooled(bufs *tensor.BufPool, feats *tensor.Matrix, ids []graph.NodeID) *tensor.Matrix {
	out := bufs.Get(len(ids), feats.Cols)
	for i, v := range ids {
		copy(out.Row(i), feats.Row(int(v)))
	}
	return out
}

// Degrees extracts the global degree array a GCN model needs.
func Degrees(g *graph.CSR) []int {
	d := make([]int, g.NumNodes)
	for v := range d {
		d[v] = g.Degree(graph.NodeID(v))
	}
	return d
}
