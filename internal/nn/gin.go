package nn

import (
	"math/rand"

	"argo/internal/tensor"
)

// GINLayer implements the Graph Isomorphism Network layer (Xu et al.,
// GIN-0 variant) as a model-zoo extension beyond the paper's GCN/SAGE
// pair:
//
//	a_v = (1+ε)·h_v + Σ_{u∈N(v)} h_u
//	h'_v = ReLU(a_v·W + b)
//
// Sum aggregation (no degree normalisation) gives GIN its injectivity;
// Epsilon weighs the self contribution (0 in the common GIN-0 setting).
type GINLayer struct {
	InDim, OutDim int
	Relu          bool
	Epsilon       float32
	Weight        *Param
	Bias          *Param

	bufs *tensor.BufPool
	db   []float32

	x   *tensor.Matrix
	agg *tensor.Matrix
	out *tensor.Matrix
}

// NewGINLayer constructs a GIN-0 layer with Xavier-initialised weights.
func NewGINLayer(rng *rand.Rand, inDim, outDim int, relu bool) *GINLayer {
	l := &GINLayer{
		InDim: inDim, OutDim: outDim, Relu: relu,
		Weight: NewParam("gin.weight", inDim, outDim),
		Bias:   NewParam("gin.bias", 1, outDim),
	}
	XavierUniform(rng, l.Weight)
	return l
}

// Params implements Layer.
func (l *GINLayer) Params() []*Param { return []*Param{l.Weight, l.Bias} }

func (l *GINLayer) setBufPool(bp *tensor.BufPool) { l.bufs = bp }

// aggRow fills row (width InDim) with destination i's weighted self state
// plus neighbour sum. Every element is assigned before accumulation, so
// the scratch row does not need pre-zeroing.
func (l *GINLayer) aggRow(row []float32, adj Adj, x *tensor.Matrix, i int) {
	selfW := 1 + l.Epsilon
	self := x.Row(i)
	for k, v := range self {
		row[k] = v * selfW
	}
	for _, j := range adj.Neighbors(i) {
		src := x.Row(int(j))
		for k, v := range src {
			row[k] += v
		}
	}
}

// Forward implements Layer.
func (l *GINLayer) Forward(pool *tensor.Pool, adj Adj, x *tensor.Matrix) *tensor.Matrix {
	numDst := adj.NumDst()
	l.x = x
	l.bufs.Put(l.agg)
	l.bufs.Put(l.out)
	l.agg = l.bufs.Get(numDst, l.InDim)
	pool.ParallelWeighted(numDst, adjCost(adj), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			l.aggRow(l.agg.Row(i), adj, x, i)
		}
	})
	l.out = l.bufs.Get(numDst, l.OutDim)
	tensor.MatMul(pool, l.out, l.agg, l.Weight.W)
	tensor.AddRowVector(l.out, l.Bias.W.Data)
	if l.Relu {
		tensor.ReLU(l.out, l.out)
	}
	return l.out
}

// Infer implements Layer (fused, forward-only; see SAGELayer.Infer).
func (l *GINLayer) Infer(pool *tensor.Pool, adj Adj, x *tensor.Matrix) *tensor.Matrix {
	numDst := adj.NumDst()
	out := l.bufs.Get(numDst, l.OutDim)
	w, bias := l.Weight.W, l.Bias.W.Data
	pool.ParallelWeighted(numDst, adjCost(adj), func(lo, hi int) {
		scratch := l.bufs.Get(1, l.InDim)
		row := scratch.Data
		for i := lo; i < hi; i++ {
			l.aggRow(row, adj, x, i)
			dr := out.Row(i)
			denseRowMulAdd(dr, row, w, bias)
			if l.Relu {
				reluRowInPlace(dr)
			}
		}
		l.bufs.Put(scratch)
	})
	return out
}

// Backward implements Layer.
func (l *GINLayer) Backward(pool *tensor.Pool, adj Adj, dOut *tensor.Matrix) *tensor.Matrix {
	numDst := adj.NumDst()
	dZ := dOut
	if l.Relu {
		dZ = l.bufs.Get(dOut.Rows, dOut.Cols)
		tensor.ReLUBackward(dZ, dOut, l.out)
	}
	dW := l.bufs.Get(l.Weight.W.Rows, l.Weight.W.Cols)
	tensor.MatMulAT(pool, dW, l.agg, dZ)
	tensor.Add(l.Weight.Grad, dW)
	l.bufs.Put(dW)
	if cap(l.db) < l.OutDim {
		l.db = make([]float32, l.OutDim)
	}
	db := l.db[:l.OutDim]
	tensor.ColSum(db, dZ)
	for k, v := range db {
		l.Bias.Grad.Data[k] += v
	}
	dAgg := l.bufs.Get(numDst, l.InDim)
	tensor.MatMulBT(pool, dAgg, dZ, l.Weight.W)
	if l.Relu {
		l.bufs.Put(dZ)
	}
	dX := l.bufs.Get(adj.NumSrc(), l.InDim)
	selfW := 1 + l.Epsilon
	for i := 0; i < numDst; i++ {
		dRow := dAgg.Row(i)
		self := dX.Row(i)
		for k, v := range dRow {
			self[k] += v * selfW
		}
		for _, j := range adj.Neighbors(i) {
			dst := dX.Row(int(j))
			for k, v := range dRow {
				dst[k] += v
			}
		}
	}
	l.bufs.Put(dAgg)
	return dX
}
