package nn

import (
	"math/rand"

	"argo/internal/tensor"
)

// GINLayer implements the Graph Isomorphism Network layer (Xu et al.,
// GIN-0 variant) as a model-zoo extension beyond the paper's GCN/SAGE
// pair:
//
//	a_v = (1+ε)·h_v + Σ_{u∈N(v)} h_u
//	h'_v = ReLU(a_v·W + b)
//
// Sum aggregation (no degree normalisation) gives GIN its injectivity;
// Epsilon weighs the self contribution (0 in the common GIN-0 setting).
type GINLayer struct {
	InDim, OutDim int
	Relu          bool
	Epsilon       float32
	Weight        *Param
	Bias          *Param

	x   *tensor.Matrix
	agg *tensor.Matrix
	out *tensor.Matrix
}

// NewGINLayer constructs a GIN-0 layer with Xavier-initialised weights.
func NewGINLayer(rng *rand.Rand, inDim, outDim int, relu bool) *GINLayer {
	l := &GINLayer{
		InDim: inDim, OutDim: outDim, Relu: relu,
		Weight: NewParam("gin.weight", inDim, outDim),
		Bias:   NewParam("gin.bias", 1, outDim),
	}
	XavierUniform(rng, l.Weight)
	return l
}

// Params implements Layer.
func (l *GINLayer) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// Forward implements Layer.
func (l *GINLayer) Forward(pool *tensor.Pool, adj Adj, x *tensor.Matrix) *tensor.Matrix {
	numDst := adj.NumDst()
	l.x = x
	l.agg = tensor.New(numDst, l.InDim)
	selfW := 1 + l.Epsilon
	pool.ParallelRange(numDst, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := l.agg.Row(i)
			self := x.Row(i)
			for k, v := range self {
				row[k] = v * selfW
			}
			for _, j := range adj.Neighbors(i) {
				src := x.Row(int(j))
				for k, v := range src {
					row[k] += v
				}
			}
		}
	})
	l.out = tensor.New(numDst, l.OutDim)
	tensor.MatMul(pool, l.out, l.agg, l.Weight.W)
	tensor.AddRowVector(l.out, l.Bias.W.Data)
	if l.Relu {
		tensor.ReLU(l.out, l.out)
	}
	return l.out
}

// Backward implements Layer.
func (l *GINLayer) Backward(pool *tensor.Pool, adj Adj, dOut *tensor.Matrix) *tensor.Matrix {
	numDst := adj.NumDst()
	dZ := dOut
	if l.Relu {
		dZ = tensor.New(dOut.Rows, dOut.Cols)
		tensor.ReLUBackward(dZ, dOut, l.out)
	}
	dW := tensor.New(l.Weight.W.Rows, l.Weight.W.Cols)
	tensor.MatMulAT(pool, dW, l.agg, dZ)
	tensor.Add(l.Weight.Grad, dW)
	db := make([]float32, l.OutDim)
	tensor.ColSum(db, dZ)
	for k, v := range db {
		l.Bias.Grad.Data[k] += v
	}
	dAgg := tensor.New(numDst, l.InDim)
	tensor.MatMulBT(pool, dAgg, dZ, l.Weight.W)
	dX := tensor.New(adj.NumSrc(), l.InDim)
	selfW := 1 + l.Epsilon
	for i := 0; i < numDst; i++ {
		dRow := dAgg.Row(i)
		self := dX.Row(i)
		for k, v := range dRow {
			self[k] += v * selfW
		}
		for _, j := range adj.Neighbors(i) {
			dst := dX.Row(int(j))
			for k, v := range dRow {
				dst[k] += v
			}
		}
	}
	return dX
}
