package nn

import (
	"math"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"argo/internal/graph"
	"argo/internal/sampler"
	"argo/internal/tensor"
)

// powerLawGraph builds a skewed test graph: a few hubs carry most of the
// edges, the regime the weighted kernels are built for.
func powerLawGraph(t testing.TB, nodes, edges int) (*graph.CSR, []int32) {
	t.Helper()
	g, labels, err := graph.Generate(graph.GenSpec{
		NumNodes:   nodes,
		NumEdges:   int64(edges),
		NumClasses: 5,
		Exponent:   2.1,
		MinDegree:  1,
		Homophily:  0.5,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, labels
}

func randFeatures(rows, cols int, seed int64) *tensor.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

// TestInferMatchesForwardBitwise pins the fused serving path to the
// training forward pass: identical logits, bit for bit, for every model
// kind, both batch layouts (blocks and subgraph), and any worker count.
func TestInferMatchesForwardBitwise(t *testing.T) {
	g, _ := powerLawGraph(t, 300, 2400)
	feats := randFeatures(g.NumNodes, 7, 2)
	targets := []graph.NodeID{0, 5, 17, 42, 99, 250}
	degrees := Degrees(g)
	rng := rand.New(rand.NewSource(9))

	samplers := map[string]sampler.Sampler{
		"neighbor":     sampler.NewNeighbor(g, []int{4, 4}),
		"fullneighbor": sampler.NewFullNeighbor(g, 2),
		"shadow":       sampler.NewShaDow(g, []int{3, 2}, 2),
	}
	for _, kind := range []ModelKind{KindSAGE, KindGCN, KindGIN} {
		m, err := NewModel(ModelSpec{Kind: kind, Dims: []int{7, 6, 5}, Seed: 11}, degrees)
		if err != nil {
			t.Fatal(err)
		}
		for name, s := range samplers {
			mb := s.Sample(rng, targets)
			x0 := Gather(feats, mb.InputNodes())
			for _, workers := range []int{1, 3, 8} {
				pool := tensor.NewPool(workers)
				fwd := m.Forward(pool, mb, x0)
				inf := m.Infer(pool, mb, x0)
				if fwd.Rows != inf.Rows || fwd.Cols != inf.Cols {
					t.Fatalf("%s/%s/w%d: shape %dx%d vs %dx%d", kind, name, workers,
						fwd.Rows, fwd.Cols, inf.Rows, inf.Cols)
				}
				for i := range fwd.Data {
					if math.Float32bits(fwd.Data[i]) != math.Float32bits(inf.Data[i]) {
						t.Fatalf("%s/%s/w%d: logit %d differs: %v vs %v",
							kind, name, workers, i, fwd.Data[i], inf.Data[i])
					}
				}
				m.Buffers().Put(inf)
			}
		}
	}
}

// TestForwardWeightedWorkerInvariance pins the weighted-chunk dispatch:
// logits are bit-identical across worker counts on a skewed batch (the
// per-row reduction never crosses a chunk boundary).
func TestForwardWeightedWorkerInvariance(t *testing.T) {
	g, _ := powerLawGraph(t, 400, 4000)
	feats := randFeatures(g.NumNodes, 8, 2)
	targets := make([]graph.NodeID, 50)
	for i := range targets {
		targets[i] = graph.NodeID(i * 7)
	}
	m, err := NewModel(ModelSpec{Kind: KindSAGE, Dims: []int{8, 6, 4}, Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fn := sampler.NewFullNeighbor(g, 2)
	mb := fn.Sample(nil, targets)
	x0 := Gather(feats, mb.InputNodes())
	ref := m.Forward(tensor.NewPool(1), mb, x0).Clone()
	for _, workers := range []int{2, 4, 8, 13} {
		out := m.Forward(tensor.NewPool(workers), mb, x0)
		for i := range ref.Data {
			if math.Float32bits(ref.Data[i]) != math.Float32bits(out.Data[i]) {
				t.Fatalf("workers=%d: logit %d differs: %v vs %v", workers, i, ref.Data[i], out.Data[i])
			}
		}
	}
}

// TestGCNOutOfRangeNodeFailsWithClearError: a GCN model built with
// degrees for a smaller graph must fail with a diagnosable message when
// run on a batch referencing nodes beyond the table — not an anonymous
// index-out-of-range deep inside the aggregation kernel.
func TestGCNOutOfRangeNodeFailsWithClearError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewGCNLayer(rng, 2, 2, false, []int{1, 2, 1}) // covers nodes 0..2
	b := &sampler.Block{
		SrcNodes: []graph.NodeID{0, 1, 5}, // node 5 is out of range
		NumDst:   2,
		RowPtr:   []int32{0, 1, 1},
		Col:      []int32{2},
	}
	x := tensor.New(3, 2)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a panic for an out-of-range global node")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T (%v), want the diagnostic string", r, r)
		}
		for _, want := range []string{"normalisation table covers 3", "node 5", "smaller graph"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("panic %q does not mention %q", msg, want)
			}
		}
	}()
	l.Forward(tensor.NewPool(1), BlockAdj{B: b}, x)
}

// TestSteadyStateStepIsMatrixAllocationFree drives full training steps
// (gather → forward → loss → backward → recycle) over a fixed batch and
// asserts the steady-state heap traffic is a small constant — interface
// boxing and dispatch closures, not matrices. An unpooled step allocates
// hundreds of KB per batch; the threshold below is two orders of
// magnitude under that.
func TestSteadyStateStepIsMatrixAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector makes sync.Pool drop items by design, so allocation thresholds do not hold")
	}
	g, labels := powerLawGraph(t, 500, 4000)
	feats := randFeatures(g.NumNodes, 32, 2)
	targets := make([]graph.NodeID, 64)
	for i := range targets {
		targets[i] = graph.NodeID(i * 5)
	}
	m, err := NewModel(ModelSpec{Kind: KindSAGE, Dims: []int{32, 16, 5}, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := tensor.NewPool(1)
	fn := sampler.NewFullNeighbor(g, 2)
	mb := fn.Sample(nil, targets)
	batchLabels := make([]int32, len(targets))
	for i, v := range targets {
		batchLabels[i] = labels[v]
	}
	bufs := m.Buffers()
	step := func() {
		x0 := GatherPooled(bufs, feats, mb.InputNodes())
		logits := m.Forward(pool, mb, x0)
		_, dLogits := SoftmaxCrossEntropyPooled(bufs, logits, batchLabels)
		dX := m.Backward(pool, dLogits)
		bufs.Put(dX)
		bufs.Put(dLogits)
		bufs.Put(x0)
		m.ZeroGrad()
	}
	for i := 0; i < 5; i++ {
		step() // warm the pools to the batch's high-water shapes
	}
	runtime.GC()
	var before, after runtime.MemStats
	const rounds = 50
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		step()
	}
	runtime.ReadMemStats(&after)
	perStep := (after.TotalAlloc - before.TotalAlloc) / rounds
	// One unpooled x0 alone is 64+ rows of k-hop inputs × 32 cols × 4B
	// ≈ 100KB+; the whole pooled step must stay far under a single
	// matrix.
	if perStep > 16*1024 {
		t.Fatalf("steady-state step allocates %d bytes, want < 16KB (matrices are leaking from the pool)", perStep)
	}
}
