package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
)

// checkpointState is the serialised form of a model's parameters.
type checkpointState struct {
	Kind   ModelKind
	Dims   []int
	Names  []string
	Shapes [][2]int
	Data   [][]float32
}

// SaveCheckpoint writes the model's parameters to w in a self-describing
// binary format (gob). The auto-tuner's re-launch flow and long-running
// training jobs use this to persist weights across process boundaries.
func (m *GNN) SaveCheckpoint(w io.Writer) error {
	st := checkpointState{Kind: m.Spec.Kind, Dims: m.Spec.Dims}
	for _, p := range m.Params() {
		st.Names = append(st.Names, p.Name)
		st.Shapes = append(st.Shapes, [2]int{p.W.Rows, p.W.Cols})
		data := make([]float32, len(p.W.Data))
		copy(data, p.W.Data)
		st.Data = append(st.Data, data)
	}
	return gob.NewEncoder(w).Encode(st)
}

// LoadCheckpoint restores parameters previously written by SaveCheckpoint
// into the model. The architecture (kind and dims) must match.
func (m *GNN) LoadCheckpoint(r io.Reader) error {
	var st checkpointState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("nn: decode checkpoint: %w", err)
	}
	if st.Kind != m.Spec.Kind {
		return fmt.Errorf("nn: checkpoint is a %s model, this is %s", st.Kind, m.Spec.Kind)
	}
	if len(st.Dims) != len(m.Spec.Dims) {
		return fmt.Errorf("nn: checkpoint has %d dims, model has %d", len(st.Dims), len(m.Spec.Dims))
	}
	for i, d := range st.Dims {
		if m.Spec.Dims[i] != d {
			return fmt.Errorf("nn: checkpoint dim %d is %d, model has %d", i, d, m.Spec.Dims[i])
		}
	}
	params := m.Params()
	if len(st.Data) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d tensors, model has %d", len(st.Data), len(params))
	}
	for i, p := range params {
		if st.Shapes[i] != [2]int{p.W.Rows, p.W.Cols} {
			return fmt.Errorf("nn: checkpoint tensor %d shape %v, want %dx%d", i, st.Shapes[i], p.W.Rows, p.W.Cols)
		}
		if len(st.Data[i]) != len(p.W.Data) {
			return fmt.Errorf("nn: checkpoint tensor %d has %d values", i, len(st.Data[i]))
		}
		copy(p.W.Data, st.Data[i])
	}
	return nil
}

// CheckpointBytes is a convenience wrapper returning the serialised model.
func (m *GNN) CheckpointBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := m.SaveCheckpoint(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WeightsEqual reports whether two models have bit-identical parameters.
func WeightsEqual(a, b *GNN) bool {
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		return false
	}
	for i := range pa {
		if pa[i].W.Rows != pb[i].W.Rows || pa[i].W.Cols != pb[i].W.Cols {
			return false
		}
		if pa[i].W.MaxAbsDiff(pb[i].W) != 0 {
			return false
		}
	}
	return true
}
