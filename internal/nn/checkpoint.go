package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// checkpointState is the serialised form of a model's parameters.
type checkpointState struct {
	Kind   ModelKind
	Dims   []int
	Names  []string
	Shapes [][2]int
	Data   [][]float32
}

// SaveCheckpoint writes the model's parameters to w in a self-describing
// binary format (gob). The auto-tuner's re-launch flow and long-running
// training jobs use this to persist weights across process boundaries.
func (m *GNN) SaveCheckpoint(w io.Writer) error {
	st := checkpointState{Kind: m.Spec.Kind, Dims: m.Spec.Dims}
	for _, p := range m.Params() {
		st.Names = append(st.Names, p.Name)
		st.Shapes = append(st.Shapes, [2]int{p.W.Rows, p.W.Cols})
		data := make([]float32, len(p.W.Data))
		copy(data, p.W.Data)
		st.Data = append(st.Data, data)
	}
	return gob.NewEncoder(w).Encode(st)
}

// LoadCheckpoint restores parameters previously written by SaveCheckpoint
// into the model. The architecture (kind and dims) must match.
func (m *GNN) LoadCheckpoint(r io.Reader) error {
	var st checkpointState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("nn: decode checkpoint: %w", err)
	}
	return m.applyCheckpoint(st)
}

func (m *GNN) applyCheckpoint(st checkpointState) error {
	if st.Kind != m.Spec.Kind {
		return fmt.Errorf("nn: checkpoint is a %s model, this is %s", st.Kind, m.Spec.Kind)
	}
	if len(st.Dims) != len(m.Spec.Dims) {
		return fmt.Errorf("nn: checkpoint has %d dims, model has %d", len(st.Dims), len(m.Spec.Dims))
	}
	for i, d := range st.Dims {
		if m.Spec.Dims[i] != d {
			return fmt.Errorf("nn: checkpoint dim %d is %d, model has %d", i, d, m.Spec.Dims[i])
		}
	}
	params := m.Params()
	if len(st.Data) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d tensors, model has %d", len(st.Data), len(params))
	}
	for i, p := range params {
		if st.Shapes[i] != [2]int{p.W.Rows, p.W.Cols} {
			return fmt.Errorf("nn: checkpoint tensor %d shape %v, want %dx%d", i, st.Shapes[i], p.W.Rows, p.W.Cols)
		}
		if len(st.Data[i]) != len(p.W.Data) {
			return fmt.Errorf("nn: checkpoint tensor %d has %d values", i, len(st.Data[i]))
		}
		copy(p.W.Data, st.Data[i])
	}
	return nil
}

// LoadModel reads a checkpoint and constructs the model it describes —
// the consumer side of SaveCheckpoint for processes (like the inference
// server) that don't know the architecture up front. degrees is required
// when the checkpoint holds a GCN model and ignored otherwise.
func LoadModel(r io.Reader, degrees []int) (*GNN, error) {
	var st checkpointState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("nn: decode checkpoint: %w", err)
	}
	m, err := NewModel(ModelSpec{Kind: st.Kind, Dims: st.Dims}, degrees)
	if err != nil {
		return nil, err
	}
	if err := m.applyCheckpoint(st); err != nil {
		return nil, err
	}
	return m, nil
}

// SaveCheckpointFile writes the model's checkpoint to path atomically
// (temporary sibling + rename, like .argograph saves), so a reader never
// observes a half-written checkpoint.
func (m *GNN) SaveCheckpointFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := m.SaveCheckpoint(tmp); err != nil {
		tmp.Close()
		return err
	}
	// Checkpoints are shared artifacts (trained here, served elsewhere):
	// give them ordinary file permissions, not CreateTemp's 0600.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadModelFile is LoadModel over a checkpoint file.
func LoadModelFile(path string, degrees []int) (*GNN, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := LoadModel(f, degrees)
	if err != nil {
		return nil, fmt.Errorf("nn: %s: %w", path, err)
	}
	return m, nil
}

// CheckpointBytes is a convenience wrapper returning the serialised model.
func (m *GNN) CheckpointBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := m.SaveCheckpoint(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WeightsEqual reports whether two models have bit-identical parameters.
func WeightsEqual(a, b *GNN) bool {
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		return false
	}
	for i := range pa {
		if pa[i].W.Rows != pb[i].W.Rows || pa[i].W.Cols != pb[i].W.Cols {
			return false
		}
		if pa[i].W.MaxAbsDiff(pb[i].W) != 0 {
			return false
		}
	}
	return true
}
