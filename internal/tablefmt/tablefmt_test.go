package tablefmt

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.Add("alpha", "1")
	tb.Add("beta")
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns must align: "value" column starts at the same offset.
	hdr := lines[1]
	row := lines[3]
	if strings.Index(hdr, "value") != strings.Index(row, "1") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableAddfFormatsMixedTypes(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.Addf("x", 3.14159, 42)
	if got := tb.Rows[0][1]; got != "3.142" {
		t.Fatalf("float cell = %q", got)
	}
	if got := tb.Rows[0][2]; got != "42" {
		t.Fatalf("int cell = %q", got)
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := New("t", "a", "b")
	tb.Add(`has,comma`, `has"quote`)
	csv := tb.CSV()
	want := "a,b\n\"has,comma\",\"has\"\"quote\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestF(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1.5:     "1.5",
		3.14159: "3.142",
		-2.5:    "-2.5",
		42.123:  "42.12",
		1234.56: "1234.6",
		10:      "10",
	}
	for v, want := range cases {
		if got := F(v); got != want {
			t.Fatalf("F(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(0.93); got != "0.93x" {
		t.Fatalf("Ratio = %q", got)
	}
	if got := Ratio(1.0); got != "1x" {
		t.Fatalf("Ratio = %q", got)
	}
}
