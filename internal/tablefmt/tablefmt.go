// Package tablefmt renders the experiment results as aligned text tables
// and CSV, the two output formats of cmd/argo-bench.
package tablefmt

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends one row. Short rows are padded with empty cells.
func (t *Table) Add(cells ...string) {
	for len(cells) < len(t.Headers) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Addf appends one row of formatted values.
func (t *Table) Addf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = F(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Add(row...)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	width := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", width[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing
// commas or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float compactly: three significant-ish decimals for small
// values, fewer for large ones.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 0:
		return "-" + F(-v)
	case v < 10:
		return trimZeros(fmt.Sprintf("%.3f", v))
	case v < 1000:
		return trimZeros(fmt.Sprintf("%.2f", v))
	default:
		return trimZeros(fmt.Sprintf("%.1f", v))
	}
}

// Ratio formats "0.93x"-style normalized values.
func Ratio(v float64) string { return trimZeros(fmt.Sprintf("%.2f", v)) + "x" }

func trimZeros(s string) string {
	if !strings.Contains(s, ".") {
		return s
	}
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}
