package anneal

import (
	"math/rand"
	"testing"

	"argo/internal/search"
)

func bowl(c search.Config) float64 {
	dn := float64(c.Procs - 6)
	ds := float64(c.SampleCores - 3)
	dt := float64(c.TrainCores - 7)
	return 10 + 0.5*dn*dn + 0.3*ds*ds + 0.2*dt*dt
}

func TestAnnealRespectsBudget(t *testing.T) {
	sp := search.DefaultSpace(64)
	res := Run(sp, search.ObjectiveFunc(bowl), 25, rand.New(rand.NewSource(1)), Options{})
	if res.Evals != 25 || len(res.History) != 25 {
		t.Fatalf("made %d evals, want 25", res.Evals)
	}
}

func TestAnnealZeroBudget(t *testing.T) {
	sp := search.DefaultSpace(64)
	res := Run(sp, search.ObjectiveFunc(bowl), 0, rand.New(rand.NewSource(1)), Options{})
	if res.Evals != 0 {
		t.Fatal("zero budget must not evaluate")
	}
}

func TestAnnealImprovesOverFirstSample(t *testing.T) {
	sp := search.DefaultSpace(112)
	worse := 0
	const trials = 20
	for seed := int64(0); seed < trials; seed++ {
		res := Run(sp, search.ObjectiveFunc(bowl), 35, rand.New(rand.NewSource(seed)), Options{})
		if res.BestTime > res.History[0].Time {
			t.Fatal("incumbent worse than first sample — impossible")
		}
		if res.BestTime == res.History[0].Time {
			worse++
		}
	}
	if worse > trials/2 {
		t.Fatalf("annealing failed to improve on the initial sample in %d/%d trials", worse, trials)
	}
}

func TestAnnealBestIsHistoryMinimum(t *testing.T) {
	sp := search.DefaultSpace(64)
	res := Run(sp, search.ObjectiveFunc(bowl), 20, rand.New(rand.NewSource(5)), Options{})
	min := res.History[0].Time
	for _, e := range res.History {
		if e.Time < min {
			min = e.Time
		}
	}
	if res.BestTime != min {
		t.Fatalf("BestTime %v != history min %v", res.BestTime, min)
	}
}

// On a smooth bowl, SA with a 5% budget should usually land within 2× of
// the optimum — but with visible run-to-run variance (that variance is
// exactly what Table IV/V report as ±stddev).
func TestAnnealQualityOnBowl(t *testing.T) {
	sp := search.DefaultSpace(112)
	opt := search.Exhaustive(sp, search.ObjectiveFunc(bowl)).BestTime
	var qualities []float64
	for seed := int64(0); seed < 10; seed++ {
		res := Run(sp, search.ObjectiveFunc(bowl), 35, rand.New(rand.NewSource(seed)), Options{})
		qualities = append(qualities, opt/res.BestTime)
	}
	var mean float64
	for _, q := range qualities {
		mean += q
	}
	mean /= float64(len(qualities))
	if mean < 0.6 {
		t.Fatalf("mean SA quality %.2f too poor", mean)
	}
}

func TestAnnealDeterministicForSeed(t *testing.T) {
	sp := search.DefaultSpace(64)
	a := Run(sp, search.ObjectiveFunc(bowl), 15, rand.New(rand.NewSource(9)), Options{})
	b := Run(sp, search.ObjectiveFunc(bowl), 15, rand.New(rand.NewSource(9)), Options{})
	if a.Best != b.Best || a.BestTime != b.BestTime {
		t.Fatal("same seed must reproduce the same search")
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatal("histories differ")
		}
	}
}
