// Package anneal implements the simulated-annealing search baseline the
// paper compares the auto-tuner against (Tables IV/V): a random global
// search with geometric cooling, run on the same evaluation budget as the
// Bayesian auto-tuner.
package anneal

import (
	"math"
	"math/rand"

	"argo/internal/search"
)

// Options tune the annealing schedule. Zero values select defaults.
type Options struct {
	StartTemp float64 // initial temperature on the relative-cost scale (default 0.3)
	EndTemp   float64 // final temperature (default 0.01)
}

// Run performs simulated annealing over sp with the given evaluation
// budget. Each step proposes a feasible one-dimension move; worse moves
// are accepted with probability exp(−Δ/T) where Δ is the relative cost
// increase and T cools geometrically from StartTemp to EndTemp.
func Run(sp search.Space, obj search.Objective, budget int, rng *rand.Rand, opts Options) search.Result {
	if opts.StartTemp <= 0 {
		opts.StartTemp = 0.3
	}
	if opts.EndTemp <= 0 {
		opts.EndTemp = 0.01
	}
	var res search.Result
	if budget <= 0 {
		return res
	}
	cur := sp.Random(rng)
	curY := obj.Evaluate(cur)
	res.Best, res.BestTime = cur, curY
	res.History = append(res.History, search.Eval{Config: cur, Time: curY})
	res.Evals = 1

	alpha := math.Pow(opts.EndTemp/opts.StartTemp, 1/math.Max(1, float64(budget-1)))
	temp := opts.StartTemp
	for res.Evals < budget {
		nbrs := sp.Neighbors(cur)
		var cand search.Config
		if len(nbrs) == 0 || rng.Float64() < 0.1 {
			// Occasional restart kick keeps the walk from being trapped
			// in a feasibility corner.
			cand = sp.Random(rng)
		} else {
			cand = nbrs[rng.Intn(len(nbrs))]
		}
		y := obj.Evaluate(cand)
		res.Evals++
		res.History = append(res.History, search.Eval{Config: cand, Time: y})
		if y < res.BestTime {
			res.Best, res.BestTime = cand, y
		}
		delta := (y - curY) / math.Max(curY, 1e-12)
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			cur, curY = cand, y
		}
		temp *= alpha
	}
	return res
}
