// Package anneal implements the simulated-annealing search baseline the
// paper compares the auto-tuner against (Tables IV/V): a random global
// search with geometric cooling, run on the same evaluation budget as the
// Bayesian auto-tuner.
//
// The core type is the stepwise Annealer, which exposes the propose /
// observe halves of each annealing step separately so a training runtime
// can interleave real epoch measurements with the walk. Run wraps it for
// offline use against a search.Objective.
package anneal

import (
	"math"
	"math/rand"
	"time"

	"argo/internal/search"
)

// Options tune the annealing schedule. Zero values select defaults.
type Options struct {
	StartTemp float64 // initial temperature on the relative-cost scale (default 0.3)
	EndTemp   float64 // final temperature (default 0.01)
}

func (o Options) withDefaults() Options {
	if o.StartTemp <= 0 {
		o.StartTemp = 0.3
	}
	if o.EndTemp <= 0 {
		o.EndTemp = 0.01
	}
	return o
}

// Annealer performs simulated annealing one proposal at a time. Each
// Next proposes a feasible configuration (a one-dimension move from the
// current point, with an occasional random restart kick); Observe records
// its measured cost, applies the Metropolis acceptance rule with
// probability exp(−Δ/T) on the relative cost increase Δ, and cools T
// geometrically from StartTemp to EndTemp over the evaluation budget.
type Annealer struct {
	sp     search.Space
	budget int
	rng    *rand.Rand
	opts   Options

	cur      search.Config
	curY     float64
	haveCur  bool
	observed int

	inc search.Incumbent

	temp, alpha float64
	overhead    time.Duration
}

// NewAnnealer builds an annealer over sp with the given evaluation budget.
func NewAnnealer(sp search.Space, budget int, rng *rand.Rand, opts Options) *Annealer {
	opts = opts.withDefaults()
	return &Annealer{
		sp:     sp,
		budget: budget,
		rng:    rng,
		opts:   opts,
		temp:   opts.StartTemp,
		alpha:  math.Pow(opts.EndTemp/opts.StartTemp, 1/math.Max(1, float64(budget-1))),
	}
}

// Next proposes the next configuration to evaluate. ok is false once the
// evaluation budget is exhausted.
func (a *Annealer) Next() (search.Config, bool) {
	start := time.Now()
	defer func() { a.overhead += time.Since(start) }()
	if a.observed >= a.budget {
		return search.Config{}, false
	}
	if !a.haveCur {
		return a.sp.Random(a.rng), true
	}
	nbrs := a.sp.Neighbors(a.cur)
	if len(nbrs) == 0 || a.rng.Float64() < 0.1 {
		// Occasional restart kick keeps the walk from being trapped in a
		// feasibility corner.
		return a.sp.Random(a.rng), true
	}
	return nbrs[a.rng.Intn(len(nbrs))], true
}

// Observe records an evaluated configuration and its cost, applying the
// acceptance rule and cooling the temperature. Non-finite costs (a
// crashed measurement) are rejected outright and excluded from the
// incumbent.
func (a *Annealer) Observe(c search.Config, y float64) {
	start := time.Now()
	defer func() { a.overhead += time.Since(start) }()
	a.observed++
	finite := search.IsFinite(y)
	a.inc.Observe(c, y)
	if !a.haveCur {
		if finite {
			a.cur, a.curY, a.haveCur = c, y, true
		}
		return
	}
	if finite {
		delta := (y - a.curY) / math.Max(a.curY, 1e-12)
		if delta <= 0 || a.rng.Float64() < math.Exp(-delta/a.temp) {
			a.cur, a.curY = c, y
		}
	}
	a.temp *= a.alpha
}

// Best returns the incumbent optimal configuration and its cost.
func (a *Annealer) Best() (search.Config, float64) { return a.inc.Best() }

// Observations returns how many costs have been recorded.
func (a *Annealer) Observations() int { return a.observed }

// Overhead returns the cumulative time spent proposing moves and applying
// the acceptance rule — the tuning overhead outside the objective itself.
func (a *Annealer) Overhead() time.Duration { return a.overhead }

// Run performs simulated annealing over sp with the given evaluation
// budget, driving an Annealer against obj.
func Run(sp search.Space, obj search.Objective, budget int, rng *rand.Rand, opts Options) search.Result {
	var res search.Result
	a := NewAnnealer(sp, budget, rng, opts)
	for {
		c, ok := a.Next()
		if !ok {
			break
		}
		y := obj.Evaluate(c)
		a.Observe(c, y)
		res.History = append(res.History, search.Eval{Config: c, Time: y})
		res.Evals++
	}
	res.Best, res.BestTime = a.Best()
	return res
}
