package bayesopt

import (
	"math"
	"math/rand"
	"testing"

	"argo/internal/anneal"
	"argo/internal/search"
)

// bowl is the smooth synthetic landscape used across the tuner tests.
func bowl(c search.Config) float64 {
	dn := float64(c.Procs - 6)
	ds := float64(c.SampleCores - 3)
	dt := float64(c.TrainCores - 7)
	return 10 + 0.5*dn*dn + 0.3*ds*ds + 0.2*dt*dt + 0.1*dn*ds
}

// noisyBowl adds deterministic pseudo-noise, mimicking epoch-time jitter.
func noisyBowl(c search.Config) float64 {
	h := c.Procs*73856093 ^ c.SampleCores*19349663 ^ c.TrainCores*83492791
	noise := float64(h%97)/97.0*0.4 - 0.2
	return bowl(c) + noise
}

func TestTunerRespectsBudget(t *testing.T) {
	sp := search.DefaultSpace(112)
	tu := NewTuner(sp, 35, 1)
	res := tu.Run(search.ObjectiveFunc(bowl))
	if res.Evals != 35 {
		t.Fatalf("tuner made %d evals, want 35", res.Evals)
	}
	if !tu.Done() {
		t.Fatal("tuner must report Done after the budget")
	}
}

func TestTunerNeverProposesInfeasibleOrDuplicate(t *testing.T) {
	sp := search.DefaultSpace(64)
	tu := NewTuner(sp, 20, 2)
	seen := map[search.Config]bool{}
	for !tu.Done() {
		c := tu.Next()
		if !sp.Feasible(c) {
			t.Fatalf("proposed infeasible %v", c)
		}
		if seen[c] {
			t.Fatalf("proposed duplicate %v", c)
		}
		seen[c] = true
		tu.Observe(c, bowl(c))
	}
}

// The paper's headline tuner claim: with a ~5% budget the tuner finds a
// configuration within 90% of the exhaustive optimum. Verified over
// multiple seeds on both space sizes.
func TestTunerFindsNearOptimal(t *testing.T) {
	for _, tc := range []struct {
		cores, budget int
	}{
		{112, 35},
		{64, 20},
	} {
		sp := search.DefaultSpace(tc.cores)
		opt := search.Exhaustive(sp, search.ObjectiveFunc(noisyBowl)).BestTime
		var worst float64 = 1
		for seed := int64(0); seed < 8; seed++ {
			tu := NewTuner(sp, tc.budget, seed)
			res := tu.Run(search.ObjectiveFunc(noisyBowl))
			q := opt / res.BestTime
			if q < worst {
				worst = q
			}
		}
		if worst < 0.90 {
			t.Fatalf("%d cores: worst-seed quality %.3f below 0.90", tc.cores, worst)
		}
	}
}

// The tuner must beat simulated annealing on average with equal budgets
// (the Table IV/V comparison).
func TestTunerBeatsAnnealingOnAverage(t *testing.T) {
	sp := search.DefaultSpace(112)
	const budget = 35
	var boSum, saSum float64
	const trials = 10
	for seed := int64(0); seed < trials; seed++ {
		bo := NewTuner(sp, budget, seed).Run(search.ObjectiveFunc(noisyBowl))
		sa := anneal.Run(sp, search.ObjectiveFunc(noisyBowl), budget, rand.New(rand.NewSource(seed)), anneal.Options{})
		boSum += bo.BestTime
		saSum += sa.BestTime
	}
	if boSum > saSum {
		t.Fatalf("BO mean best %.3f worse than SA mean best %.3f", boSum/trials, saSum/trials)
	}
}

// The acquisition ablation: random acquisition must not beat EI by a
// meaningful margin (and EI should usually win).
func TestRandomAcquisitionAblation(t *testing.T) {
	sp := search.DefaultSpace(112)
	var eiSum, randSum float64
	const trials = 8
	for seed := int64(0); seed < trials; seed++ {
		ei := NewTuner(sp, 25, seed)
		eiSum += ei.Run(search.ObjectiveFunc(noisyBowl)).BestTime
		rn := NewTuner(sp, 25, seed)
		rn.RandomAcquisition = true
		randSum += rn.Run(search.ObjectiveFunc(noisyBowl)).BestTime
	}
	if eiSum > randSum*1.02 {
		t.Fatalf("EI mean %.3f worse than random acquisition mean %.3f", eiSum/trials, randSum/trials)
	}
}

func TestTunerBestTracksIncumbent(t *testing.T) {
	sp := search.DefaultSpace(64)
	tu := NewTuner(sp, 15, 7)
	res := tu.Run(search.ObjectiveFunc(bowl))
	min := math.Inf(1)
	for _, e := range res.History {
		if e.Time < min {
			min = e.Time
		}
	}
	if res.BestTime != min {
		t.Fatalf("BestTime %v != history min %v", res.BestTime, min)
	}
	cfg, y := tu.Best()
	if y != res.BestTime || cfg != res.Best {
		t.Fatal("Best() disagrees with Run result")
	}
}

func TestTunerDeterministicForSeed(t *testing.T) {
	sp := search.DefaultSpace(64)
	a := NewTuner(sp, 12, 3).Run(search.ObjectiveFunc(bowl))
	b := NewTuner(sp, 12, 3).Run(search.ObjectiveFunc(bowl))
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatal("same seed must reproduce proposals")
		}
	}
}

func TestTunerOverheadTracked(t *testing.T) {
	sp := search.DefaultSpace(64)
	tu := NewTuner(sp, 10, 4)
	tu.Run(search.ObjectiveFunc(bowl))
	if tu.Overhead() <= 0 {
		t.Fatal("overhead must be measured")
	}
	if tu.Observations() != 10 {
		t.Fatalf("Observations = %d", tu.Observations())
	}
}

func TestTunerSmallBudget(t *testing.T) {
	sp := search.DefaultSpace(64)
	tu := NewTuner(sp, 1, 5)
	res := tu.Run(search.ObjectiveFunc(bowl))
	if res.Evals != 1 {
		t.Fatalf("budget-1 tuner made %d evals", res.Evals)
	}
}

// Failure injection: crashed epoch measurements (±Inf/NaN) must not
// poison the surrogate, must never become the incumbent, and the poisoned
// configuration must not be re-proposed.
func TestTunerSurvivesNonFiniteObservations(t *testing.T) {
	sp := search.DefaultSpace(112)
	tu := NewTuner(sp, 20, 5)
	var poisoned []search.Config
	for !tu.Done() {
		cfg := tu.Next()
		n := tu.Observations()
		switch {
		case n == 2:
			poisoned = append(poisoned, cfg)
			tu.Observe(cfg, math.Inf(1))
		case n == 7:
			poisoned = append(poisoned, cfg)
			tu.Observe(cfg, math.NaN())
		default:
			tu.Observe(cfg, bowl(cfg))
		}
	}
	best, bestY := tu.Best()
	if !isFinite(bestY) {
		t.Fatalf("incumbent time %v is not finite", bestY)
	}
	for _, p := range poisoned {
		if best == p {
			t.Fatal("a crashed configuration became the incumbent")
		}
	}
	// All proposals must have been unique, crashed ones included.
	seen := map[search.Config]bool{}
	for _, e := range tu.observedX {
		if seen[e] {
			t.Fatalf("configuration %v proposed twice", e)
		}
		seen[e] = true
	}
}

// With only non-finite observations, the tuner keeps proposing random
// configurations instead of crashing in the GP.
func TestTunerAllObservationsNonFinite(t *testing.T) {
	sp := search.DefaultSpace(64)
	tu := NewTuner(sp, 8, 6)
	for !tu.Done() {
		cfg := tu.Next()
		tu.Observe(cfg, math.Inf(1))
	}
	if tu.Observations() != 8 {
		t.Fatalf("made %d observations, want 8", tu.Observations())
	}
}
