package bayesopt

import (
	"testing"

	"argo/internal/search"
)

// BenchmarkTunerRun measures a full 35-probe online-tuning run over the
// 112-core space — the §VI-D overhead claim is that this is negligible
// next to GNN epoch times.
func BenchmarkTunerRun(b *testing.B) {
	sp := search.DefaultSpace(112)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tu := NewTuner(sp, 35, int64(i))
		tu.Run(search.ObjectiveFunc(bowl))
	}
}

func BenchmarkGPFitAndPredict(b *testing.B) {
	sp := search.DefaultSpace(112)
	tu := NewTuner(sp, 45, 1)
	// Pre-load 44 observations, then measure one full Next() (fit + EI
	// argmax over the space).
	for tu.Observations() < 44 {
		c := tu.Next()
		tu.Observe(c, bowl(c))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tu.Next()
	}
}
