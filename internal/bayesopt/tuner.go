package bayesopt

import (
	"math/rand"
	"time"

	"argo/internal/search"
)

// Tuner is ARGO's online auto-tuner (paper Algorithm 1). It proposes one
// configuration per training epoch: the first InitRandom proposals are
// random probes, after which a GP surrogate is refit to all observations
// and the next proposal maximises Expected Improvement over the whole
// feasible space (exact argmax — the space is small and discrete).
//
// The tuner is objective-agnostic: it never sees the platform, model or
// dataset, only (configuration, epoch-time) pairs, which is what lets
// ARGO adapt to any setup.
type Tuner struct {
	Space       search.Space
	NumSearches int // online-learning budget (Table VI)
	InitRandom  int // random probes before the GP takes over

	// RandomAcquisition degrades the tuner to random search while keeping
	// the rest of the loop identical — the acquisition ablation.
	RandomAcquisition bool

	rng        *rand.Rand
	candidates []search.Config
	observedX  []search.Config
	observedY  []float64
	seen       map[search.Config]bool

	best     search.Config
	bestY    float64
	haveBest bool
	overhead time.Duration // cumulative surrogate fit + acquisition time
}

// NewTuner builds a tuner over sp with the given online-learning budget.
func NewTuner(sp search.Space, numSearches int, seed int64) *Tuner {
	init := 5
	if init > numSearches/2 {
		init = numSearches / 2
	}
	if init < 1 {
		init = 1
	}
	return &Tuner{
		Space:       sp,
		NumSearches: numSearches,
		InitRandom:  init,
		rng:         rand.New(rand.NewSource(seed)),
		candidates:  sp.Enumerate(),
		seen:        map[search.Config]bool{},
	}
}

// Done reports whether the online-learning budget is exhausted.
func (t *Tuner) Done() bool { return len(t.observedX) >= t.NumSearches }

// Next proposes the configuration to run the next training epoch with.
func (t *Tuner) Next() search.Config {
	start := time.Now()
	defer func() { t.overhead += time.Since(start) }()

	if len(t.observedX) < t.InitRandom || t.RandomAcquisition {
		return t.randomUnseen()
	}
	// Fit only on finite observations: a crashed or timed-out epoch
	// measurement (±Inf/NaN) must not poison the surrogate.
	xs, ys := t.finiteObservations()
	if len(xs) < 2 {
		return t.randomUnseen()
	}
	g, err := fitGP(xs, ys)
	if err != nil {
		return t.randomUnseen()
	}
	bestEI := -1.0
	var bestCfg search.Config
	found := false
	for _, c := range t.candidates {
		if t.seen[c] {
			continue
		}
		mu, sigma := g.predict(t.normalize(c))
		if ei := expectedImprovement(mu, sigma, t.bestY); ei > bestEI {
			bestEI, bestCfg, found = ei, c, true
		}
	}
	if !found {
		return t.randomUnseen()
	}
	return bestCfg
}

// Observe records an evaluated configuration and its epoch time.
// Non-finite times (a crashed epoch) are recorded as seen — so the
// configuration is never proposed again — but excluded from the surrogate
// and from the incumbent.
func (t *Tuner) Observe(c search.Config, epochTime float64) {
	t.observedX = append(t.observedX, c)
	t.observedY = append(t.observedY, epochTime)
	t.seen[c] = true
	if !isFinite(epochTime) {
		return
	}
	if !t.haveBest || epochTime < t.bestY {
		t.best, t.bestY, t.haveBest = c, epochTime, true
	}
}

// finiteObservations filters the training set for the GP.
func (t *Tuner) finiteObservations() ([][]float64, []float64) {
	var xs [][]float64
	var ys []float64
	for i, y := range t.observedY {
		if isFinite(y) {
			xs = append(xs, t.normalize(t.observedX[i]))
			ys = append(ys, y)
		}
	}
	return xs, ys
}

func isFinite(v float64) bool { return search.IsFinite(v) }

// Best returns the incumbent optimal configuration and its epoch time
// (Algorithm 1's Tuner.get_opt).
func (t *Tuner) Best() (search.Config, float64) { return t.best, t.bestY }

// Observations returns how many configurations have been evaluated.
func (t *Tuner) Observations() int { return len(t.observedX) }

// Overhead returns the cumulative time spent fitting the surrogate and
// maximising the acquisition function — the auto-tuning overhead the
// paper profiles in §VI-D.
func (t *Tuner) Overhead() time.Duration { return t.overhead }

// Run drives the full online loop against obj: propose, evaluate, observe,
// for NumSearches rounds.
func (t *Tuner) Run(obj search.Objective) search.Result {
	var res search.Result
	for !t.Done() {
		c := t.Next()
		y := obj.Evaluate(c)
		t.Observe(c, y)
		res.History = append(res.History, search.Eval{Config: c, Time: y})
		res.Evals++
	}
	res.Best, res.BestTime = t.Best()
	return res
}

// randomUnseen draws a random feasible configuration not yet observed
// (falling back to any random one once the space is exhausted).
func (t *Tuner) randomUnseen() search.Config {
	if len(t.seen) >= len(t.candidates) {
		return t.Space.Random(t.rng)
	}
	for {
		c := t.Space.Random(t.rng)
		if !t.seen[c] {
			return c
		}
	}
}

// normalize maps a config into [0,1]^3 for the kernel.
func (t *Tuner) normalize(c search.Config) []float64 {
	sp := t.Space
	span := func(v, lo, hi int) float64 {
		if hi == lo {
			return 0
		}
		return float64(v-lo) / float64(hi-lo)
	}
	return []float64{
		span(c.Procs, sp.MinProcs, sp.MaxProcs),
		span(c.SampleCores, 1, sp.MaxSample),
		span(c.TrainCores, 1, sp.MaxTrain),
	}
}

func (t *Tuner) normalized() [][]float64 {
	out := make([][]float64, len(t.observedX))
	for i, c := range t.observedX {
		out[i] = t.normalize(c)
	}
	return out
}
