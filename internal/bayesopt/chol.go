// Package bayesopt implements ARGO's online auto-tuner: a Gaussian-process
// surrogate over the (n, s, t) configuration space with an Expected-
// Improvement acquisition function, trained online from epoch-time
// observations exactly as the paper's Algorithm 1 describes. It replaces
// the scikit-optimize dependency of the original implementation.
package bayesopt

import (
	"fmt"
	"math"
)

// cholesky computes the lower-triangular factor L of the symmetric
// positive-definite matrix a (row-major, n×n) so that L·Lᵀ = a. It fails
// if a is not positive definite.
func cholesky(a []float64, n int) ([]float64, error) {
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i*n+j]
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("bayesopt: matrix not positive definite at %d (%g)", i, sum)
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	return l, nil
}

// solveLower solves L·x = b for lower-triangular L.
func solveLower(l []float64, n int, b []float64) []float64 {
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i*n+k] * x[k]
		}
		x[i] = sum / l[i*n+i]
	}
	return x
}

// solveUpper solves Lᵀ·x = b for the transpose of lower-triangular L.
func solveUpper(l []float64, n int, b []float64) []float64 {
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k*n+i] * x[k]
		}
		x[i] = sum / l[i*n+i]
	}
	return x
}
