package bayesopt

import (
	"fmt"
	"math"
)

// gp is a Gaussian-process regressor with an ARD squared-exponential
// kernel over points in [0,1]^d and standardized targets. Hyperparameters
// (a shared length-scale and the noise level) are selected by maximising
// the log marginal likelihood over a small grid — cheap for the ≤45
// observations the online tuner accumulates, and robust enough to track
// the paper's "continuous plane" epoch-time landscapes.
type gp struct {
	x     [][]float64
	yMean float64
	yStd  float64

	ls  float64 // length-scale (shared across dims; inputs pre-normalised)
	sn2 float64 // noise variance on the standardized scale

	l     []float64 // Cholesky factor of K
	alpha []float64 // K⁻¹·y (standardized)
}

// kernel evaluates the SE kernel between two points.
func (g *gp) kernel(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		diff := (a[i] - b[i]) / g.ls
		d2 += diff * diff
	}
	return math.Exp(-0.5 * d2)
}

// fitGP fits the GP to (x, y), choosing hyperparameters by grid-searched
// log marginal likelihood.
func fitGP(x [][]float64, y []float64) (*gp, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return nil, fmt.Errorf("bayesopt: bad training set (%d points, %d targets)", n, len(y))
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)
	var variance float64
	for _, v := range y {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(n)
	std := math.Sqrt(variance)
	if std < 1e-12 {
		std = 1 // constant targets: any scale works
	}
	ys := make([]float64, n)
	for i, v := range y {
		ys[i] = (v - mean) / std
	}

	best := (*gp)(nil)
	bestLML := math.Inf(-1)
	for _, ls := range []float64{0.1, 0.2, 0.35, 0.6, 1.0} {
		for _, sn2 := range []float64{1e-4, 1e-3, 1e-2} {
			cand := &gp{x: x, yMean: mean, yStd: std, ls: ls, sn2: sn2}
			lml, err := cand.factorize(ys)
			if err != nil {
				continue
			}
			if lml > bestLML {
				bestLML = lml
				best = cand
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("bayesopt: GP fit failed for all hyperparameters")
	}
	return best, nil
}

// factorize builds K, Cholesky-factorises it, computes alpha, and returns
// the log marginal likelihood.
func (g *gp) factorize(ys []float64) (float64, error) {
	n := len(g.x)
	k := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := g.kernel(g.x[i], g.x[j])
			if i == j {
				v += g.sn2 + 1e-10
			}
			k[i*n+j] = v
			k[j*n+i] = v
		}
	}
	l, err := cholesky(k, n)
	if err != nil {
		return 0, err
	}
	g.l = l
	z := solveLower(l, n, ys)
	g.alpha = solveUpper(l, n, z)
	// LML = -0.5 yᵀα − Σ log L_ii − n/2 log 2π.
	var lml float64
	for i := range ys {
		lml -= 0.5 * ys[i] * g.alpha[i]
		lml -= math.Log(l[i*n+i])
	}
	lml -= 0.5 * float64(n) * math.Log(2*math.Pi)
	return lml, nil
}

// predict returns the posterior mean and standard deviation at point p,
// on the original (unstandardized) target scale.
func (g *gp) predict(p []float64) (mu, sigma float64) {
	n := len(g.x)
	ks := make([]float64, n)
	for i := range g.x {
		ks[i] = g.kernel(p, g.x[i])
	}
	var m float64
	for i := range ks {
		m += ks[i] * g.alpha[i]
	}
	v := solveLower(g.l, n, ks)
	var quad float64
	for _, vi := range v {
		quad += vi * vi
	}
	variance := 1 + g.sn2 - quad
	if variance < 1e-12 {
		variance = 1e-12
	}
	return g.yMean + m*g.yStd, math.Sqrt(variance) * g.yStd
}

// normCDF is the standard normal CDF.
func normCDF(z float64) float64 { return 0.5 * (1 + math.Erf(z/math.Sqrt2)) }

// normPDF is the standard normal density.
func normPDF(z float64) float64 { return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi) }

// expectedImprovement returns EI for *minimisation*: how much below the
// incumbent best the point is expected to land.
func expectedImprovement(mu, sigma, best float64) float64 {
	if sigma < 1e-12 {
		if mu < best {
			return best - mu
		}
		return 0
	}
	z := (best - mu) / sigma
	return (best-mu)*normCDF(z) + sigma*normPDF(z)
}
