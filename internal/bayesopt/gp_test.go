package bayesopt

import (
	"math"
	"math/rand"
	"testing"
)

func TestCholeskyKnownFactor(t *testing.T) {
	// A = [[4,2],[2,3]] → L = [[2,0],[1,sqrt2]].
	a := []float64{4, 2, 2, 3}
	l, err := cholesky(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 0, 1, math.Sqrt2}
	for i := range want {
		if math.Abs(l[i]-want[i]) > 1e-12 {
			t.Fatalf("L = %v, want %v", l, want)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := []float64{1, 2, 2, 1} // eigenvalues 3, -1
	if _, err := cholesky(a, 2); err == nil {
		t.Fatal("expected failure for indefinite matrix")
	}
}

func TestTriangularSolvesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 6
	// Build SPD A = M·Mᵀ + n·I.
	m := make([]float64, n*n)
	for i := range m {
		m[i] = rng.NormFloat64()
	}
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += m[i*n+k] * m[j*n+k]
			}
			a[i*n+j] = s
			if i == j {
				a[i*n+j] += float64(n)
			}
		}
	}
	l, err := cholesky(a, n)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	// Solve A·x = b via L then Lᵀ, check residual.
	x := solveUpper(l, n, solveLower(l, n, b))
	for i := 0; i < n; i++ {
		var got float64
		for j := 0; j < n; j++ {
			got += a[i*n+j] * x[j]
		}
		if math.Abs(got-b[i]) > 1e-9 {
			t.Fatalf("residual %g at row %d", got-b[i], i)
		}
	}
}

func TestGPInterpolatesTrainingPoints(t *testing.T) {
	x := [][]float64{{0.1}, {0.4}, {0.7}, {0.95}}
	y := []float64{3, 1, 2, 5}
	g, err := fitGP(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		mu, sigma := g.predict(x[i])
		if math.Abs(mu-y[i]) > 0.35*g.yStd {
			t.Fatalf("point %d: predicted %g, observed %g", i, mu, y[i])
		}
		if sigma < 0 {
			t.Fatal("negative posterior std")
		}
	}
}

func TestGPPredictsSmoothFunction(t *testing.T) {
	f := func(x float64) float64 { return 5 + 3*math.Sin(4*x) }
	var xs [][]float64
	var ys []float64
	for i := 0; i <= 10; i++ {
		x := float64(i) / 10
		xs = append(xs, []float64{x})
		ys = append(ys, f(x))
	}
	g, err := fitGP(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// Interpolation error at held-out midpoints.
	for i := 0; i < 10; i++ {
		x := float64(i)/10 + 0.05
		mu, _ := g.predict([]float64{x})
		if math.Abs(mu-f(x)) > 0.5 {
			t.Fatalf("at %.2f predicted %g, truth %g", x, mu, f(x))
		}
	}
}

func TestGPUncertaintyGrowsAwayFromData(t *testing.T) {
	x := [][]float64{{0.5, 0.5, 0.5}}
	y := []float64{1}
	g, err := fitGP(x, y)
	if err != nil {
		t.Fatal(err)
	}
	_, sigmaNear := g.predict([]float64{0.5, 0.5, 0.5})
	_, sigmaFar := g.predict([]float64{0, 0, 0})
	if sigmaFar <= sigmaNear {
		t.Fatalf("posterior std must grow away from data: near %g far %g", sigmaNear, sigmaFar)
	}
}

func TestGPConstantTargets(t *testing.T) {
	x := [][]float64{{0.1}, {0.5}, {0.9}}
	y := []float64{2, 2, 2}
	g, err := fitGP(x, y)
	if err != nil {
		t.Fatal(err)
	}
	mu, _ := g.predict([]float64{0.3})
	if math.Abs(mu-2) > 0.2 {
		t.Fatalf("constant GP predicted %g", mu)
	}
}

func TestFitGPErrors(t *testing.T) {
	if _, err := fitGP(nil, nil); err == nil {
		t.Fatal("expected error for empty data")
	}
	if _, err := fitGP([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for length mismatch")
	}
}

func TestExpectedImprovementProperties(t *testing.T) {
	// EI is non-negative and grows with uncertainty.
	if expectedImprovement(5, 1, 4) < 0 {
		t.Fatal("EI must be non-negative")
	}
	lo := expectedImprovement(5, 0.5, 4)
	hi := expectedImprovement(5, 2.0, 4)
	if hi <= lo {
		t.Fatalf("EI must grow with sigma: %g vs %g", lo, hi)
	}
	// Deterministic point strictly better than the incumbent: EI = gap.
	if ei := expectedImprovement(3, 0, 4); math.Abs(ei-1) > 1e-12 {
		t.Fatalf("deterministic EI = %g, want 1", ei)
	}
	// Deterministic point worse than the incumbent: EI = 0.
	if ei := expectedImprovement(5, 0, 4); ei != 0 {
		t.Fatalf("EI = %g, want 0", ei)
	}
}

func TestNormCDFAnchors(t *testing.T) {
	if math.Abs(normCDF(0)-0.5) > 1e-12 {
		t.Fatal("Φ(0) must be 0.5")
	}
	if normCDF(5) < 0.999 || normCDF(-5) > 0.001 {
		t.Fatal("Φ tails wrong")
	}
	if math.Abs(normPDF(0)-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Fatal("φ(0) wrong")
	}
}
