package platsim

import (
	"math"
	"testing"

	"argo/internal/platform"
	"argo/internal/search"
)

func TestObjectiveCachesAndIsDeterministic(t *testing.T) {
	sc := scenarioFor(t, DGL, platform.SapphireRapids2S, Neighbor, SAGE, "flickr")
	obj := NewObjective(sc)
	c := search.Config{Procs: 4, SampleCores: 2, TrainCores: 6}
	a := obj.Evaluate(c)
	b := obj.Evaluate(c)
	if a != b || a <= 0 {
		t.Fatalf("objective not deterministic: %v vs %v", a, b)
	}
}

func TestObjectiveInfeasibleIsInf(t *testing.T) {
	sc := scenarioFor(t, DGL, platform.SapphireRapids2S, Neighbor, SAGE, "flickr")
	obj := NewObjective(sc)
	if v := obj.Evaluate(search.Config{Procs: 8, SampleCores: 10, TrainCores: 10}); !math.IsInf(v, 1) {
		t.Fatalf("infeasible config must evaluate to +Inf, got %v", v)
	}
}

func TestObjectiveNoise(t *testing.T) {
	sc := scenarioFor(t, DGL, platform.SapphireRapids2S, Neighbor, SAGE, "flickr")
	clean := NewObjective(sc)
	c := search.Config{Procs: 2, SampleCores: 2, TrainCores: 4}
	base := clean.Evaluate(c)

	noisy := NewObjective(sc)
	noisy.NoiseFrac = 0.02
	noisy.NoiseSeed = 1
	v1 := noisy.Evaluate(c)
	if math.Abs(v1-base)/base > 0.02+1e-9 {
		t.Fatalf("noise exceeded bound: %v vs %v", v1, base)
	}
	if v1 == noisy.Evaluate(search.Config{Procs: 2, SampleCores: 2, TrainCores: 5}) {
		t.Fatal("distinct configs should get distinct noise")
	}
	// Same seed reproduces; different seed differs.
	again := NewObjective(sc)
	again.NoiseFrac = 0.02
	again.NoiseSeed = 1
	if again.Evaluate(c) != v1 {
		t.Fatal("noise must be deterministic per seed")
	}
	other := NewObjective(sc)
	other.NoiseFrac = 0.02
	other.NoiseSeed = 2
	if other.Evaluate(c) == v1 {
		t.Fatal("different seeds should jitter differently")
	}
}

func TestBaselineConfigBounds(t *testing.T) {
	for _, cores := range []int{2, 4, 8, 16, 64, 112} {
		s, tr := BaselineConfig(DGL, cores)
		if s < 1 || tr < 1 || s+tr != cores {
			t.Fatalf("cores=%d: s=%d t=%d", cores, s, tr)
		}
		if s > DGL.DefaultSample {
			t.Fatalf("cores=%d: s=%d exceeds recommended %d", cores, s, DGL.DefaultSample)
		}
	}
}

func TestBestWithBudgetImprovesWithBudget(t *testing.T) {
	sc := scenarioFor(t, DGL, platform.IceLake4S, Neighbor, SAGE, "ogbn-products")
	_, e16 := BestWithBudget(sc, 16)
	cfg64, e64 := BestWithBudget(sc, 64)
	if e64 >= e16 {
		t.Fatalf("64-core best %v not below 16-core best %v", e64, e16)
	}
	if cfg64.TotalCores() > 64 {
		t.Fatalf("best config %v exceeds the budget", cfg64)
	}
}
