package platsim

import (
	"fmt"
	"math"
	"sort"

	"argo/internal/platform"
	"argo/internal/trace"
)

// SimConfig is the process layout to simulate: ARGO's (n, s, t) triple,
// plus simulation controls.
type SimConfig struct {
	Procs       int
	SampleCores int
	TrainCores  int
	// MaxIters bounds the number of simulated iterations; the epoch time
	// is extrapolated from the steady-state per-iteration rate. 0 means
	// simulate the whole epoch.
	MaxIters int
	// Trace, when non-nil, receives every phase interval (Fig. 2).
	Trace *trace.Timeline
	// NoOverlap serialises sampling with training inside each process
	// (no pipeline): the behaviour of a naive engine without sampling
	// workers. Used by the overlap ablation bench.
	NoOverlap bool
	// NUMAAware models the paper's §IX future-work direction: replicate
	// the feature store on every socket so gathers stay local and the
	// UPI penalty disappears — at a memory cost of one feature copy per
	// socket. The platform then delivers its full local bandwidth.
	NUMAAware bool
}

// Metrics summarises one simulated epoch.
type Metrics struct {
	EpochSeconds    float64
	AvgBandwidthGBs float64 // achieved DRAM bandwidth over the epoch
	SampledEdges    float64 // total sampled edges per epoch (Fig. 6)
	SocketsUsed     int
	Iterations      int
}

// actor states.
const (
	stRunning = iota
	stBlocked // sampler with a full queue
	stWaiting // trainer waiting for a sampled batch
	stBarrier // trainer waiting at the sync barrier
	stDone
)

// trainerPhases is the default trainer phase chain; with NoOverlap a
// "sample" phase is prepended and no sampler actor runs.
var trainerPhases = []string{"gather", "aggregate", "dense", "backward"}

type simActor struct {
	proc    int
	sampler bool
	state   int
	phase   int // trainer: index into trainerPhases

	coreRem  float64 // seconds of (pool-parallel) core work remaining
	bytesRem float64 // bytes of DRAM traffic remaining
	memCap   float64 // bytes/s this actor's flow can sustain
	rate     float64 // current assigned memory rate

	itersDone  int // trainer: completed iterations; sampler: batches produced
	phaseStart float64
	phaseName  string
}

type simulator struct {
	sc    Scenario
	cfg   SimConfig
	work  IterWork
	sync  float64
	simIt int // iterations to simulate

	clock    float64
	actors   []*simActor
	queues   []int // sampled-batch queue depth per process
	barrier  int
	syncing  bool
	syncRem  float64
	syncFrom float64

	globalBW   float64 // bytes/s
	totalBytes float64
	iterTimes  []float64 // clock when iteration k completed (all procs)

	// per-phase precomputed durations
	sampleCoreT float64
	phaseNames  []string
	trainCoreT  []float64
	phaseBytes  []float64
	sampleCap   float64
	trainCap    float64
}

const queueCap = 2

// Simulate runs one epoch of the scenario under the given layout.
func Simulate(sc Scenario, cfg SimConfig) (Metrics, error) {
	if cfg.Procs < 1 || cfg.SampleCores < 1 || cfg.TrainCores < 1 {
		return Metrics{}, fmt.Errorf("platsim: invalid layout n=%d s=%d t=%d", cfg.Procs, cfg.SampleCores, cfg.TrainCores)
	}
	need := cfg.Procs * (cfg.SampleCores + cfg.TrainCores)
	if need > sc.Platform.TotalCores() {
		return Metrics{}, fmt.Errorf("platsim: layout needs %d cores, machine has %d", need, sc.Platform.TotalCores())
	}

	s := &simulator{sc: sc, cfg: cfg}
	s.work = sc.PerProcessWork(cfg.Procs)
	s.sync = sc.SyncSeconds(cfg.Procs)

	m := sc.IterationsPerEpoch()
	s.simIt = m
	if cfg.MaxIters > 0 && cfg.MaxIters < m {
		s.simIt = cfg.MaxIters
	}

	// Placement: socket-contiguous allocation per process, as the
	// Core-Binder does on real machines.
	alloc := platform.NewAllocator(sc.Platform)
	procSockets := make([]int, cfg.Procs)
	allSockets := map[int]bool{}
	for p := 0; p < cfg.Procs; p++ {
		cores, err := alloc.Allocate(cfg.SampleCores + cfg.TrainCores)
		if err != nil {
			return Metrics{}, err
		}
		procSockets[p] = alloc.SocketsSpanned(cores)
		for _, c := range cores {
			allSockets[alloc.SocketOf(c)] = true
		}
	}
	s.globalBW = sc.Platform.EffectiveBW(len(allSockets)) * 1e9
	if cfg.NUMAAware {
		// Socket-local feature replicas: no remote traffic, full local
		// bandwidth of the sockets in use.
		s.globalBW = sc.Platform.SocketBWGBs() * float64(len(allSockets)) * 1e9
	}

	lib := sc.Library
	perCore := sc.Platform.PerCoreBWGBs * 1e9
	// A single process's achievable bandwidth is capped at κ·peak
	// regardless of core count (first-touch NUMA placement, bounded
	// memory-level parallelism) — the mechanism behind the Fig. 1
	// baseline plateau. procSockets is kept for future placement-aware
	// refinements; all processes are symmetric by construction.
	_ = procSockets
	procCap := lib.ProcessBWFrac * sc.Platform.PeakBWGBs * 1e9
	s.sampleCap = math.Min(float64(cfg.SampleCores)*perCore, procCap)
	s.trainCap = math.Min(float64(cfg.TrainCores)*perCore, procCap)

	s.sampleCoreT = amdahl(s.work.SampleCore, cfg.SampleCores, lib.SamplerSerial[sc.Sampler])
	s.phaseNames = trainerPhases
	s.trainCoreT = []float64{
		0, // gather is pure memory traffic
		satTime(s.work.AggCore, cfg.TrainCores, cfg.Procs, lib.TrainSatCores, lib.TrainMachCores),
		satTime(s.work.DenseCore, cfg.TrainCores, cfg.Procs, lib.DenseSatCores, lib.DenseMachCores),
		satTime(s.work.BackCore, cfg.TrainCores, cfg.Procs, lib.TrainSatCores, lib.TrainMachCores) + lib.FixedIterCost,
	}
	s.phaseBytes = []float64{s.work.GatherBytes, s.work.AggBytes, s.work.DenseBytes, s.work.BackBytes}
	if cfg.NoOverlap {
		// Fold sampling into the trainer chain: no pipeline parallelism.
		s.phaseNames = append([]string{"sample"}, s.phaseNames...)
		s.trainCoreT = append([]float64{s.sampleCoreT}, s.trainCoreT...)
		s.phaseBytes = append([]float64{s.work.SampleBytes}, s.phaseBytes...)
	}

	s.queues = make([]int, cfg.Procs)
	for p := 0; p < cfg.Procs; p++ {
		if !cfg.NoOverlap {
			sa := &simActor{proc: p, sampler: true, memCap: s.sampleCap}
			s.startSample(sa)
			s.actors = append(s.actors, sa)
		}
		ta := &simActor{proc: p, sampler: false, state: stWaiting, memCap: s.trainCap}
		s.actors = append(s.actors, ta)
		if cfg.NoOverlap {
			s.startTrainerPhase(ta, 0)
		}
	}

	if err := s.run(); err != nil {
		return Metrics{}, err
	}

	// Steady-state extrapolation to the full epoch.
	tEnd := s.iterTimes[len(s.iterTimes)-1]
	epoch := tEnd
	if s.simIt < m {
		half := s.simIt / 2
		perIter := (tEnd - s.iterTimes[half-1]) / float64(s.simIt-half)
		epoch = tEnd + perIter*float64(m-s.simIt)
	}
	simBytes := s.totalBytes
	return Metrics{
		EpochSeconds:    epoch,
		AvgBandwidthGBs: simBytes / tEnd / 1e9,
		SampledEdges:    s.work.SampledEdges * float64(cfg.Procs) * float64(m),
		SocketsUsed:     len(allSockets),
		Iterations:      m,
	}, nil
}

func (s *simulator) startSample(a *simActor) {
	a.state = stRunning
	a.coreRem = s.sampleCoreT
	a.bytesRem = s.work.SampleBytes
	a.phaseStart = s.clock
	a.phaseName = "sample"
}

func (s *simulator) startTrainerPhase(a *simActor, phase int) {
	a.state = stRunning
	a.phase = phase
	a.coreRem = s.trainCoreT[phase]
	a.bytesRem = s.phaseBytes[phase]
	a.phaseStart = s.clock
	a.phaseName = s.phaseNames[phase]
}

// consume hands a sampled batch to a waiting trainer if one is queued.
func (s *simulator) tryConsume(a *simActor) bool {
	if s.queues[a.proc] == 0 {
		return false
	}
	s.queues[a.proc]--
	// Wake the sampler if it was waiting for queue space.
	for _, other := range s.actors {
		if other.sampler && other.proc == a.proc && other.state == stBlocked {
			s.startSample(other)
		}
	}
	s.startTrainerPhase(a, 0)
	return true
}

func (s *simulator) emit(a *simActor, name string, start, end float64) {
	if s.cfg.Trace == nil {
		return
	}
	actor := "trainer"
	if a.sampler {
		actor = "sampler"
	}
	s.cfg.Trace.Add(trace.Event{Proc: a.proc, Actor: actor, Phase: name, Start: start, End: end})
}

const timeEps = 1e-12

func (s *simulator) run() error {
	maxEvents := 200*s.simIt*s.cfg.Procs + 10000
	for events := 0; ; events++ {
		if events > maxEvents {
			return fmt.Errorf("platsim: event budget exhausted (livelock?)")
		}
		// Zero-time transitions first (immediate phase completions,
		// zero-cost sync release).
		if s.drainCompletions() {
			continue
		}
		if s.allTrainersDone() {
			return nil
		}
		// Assign memory rates by water-filling the platform bandwidth.
		s.assignRates()
		// Find the next component completion.
		dt := math.Inf(1)
		for _, a := range s.actors {
			if a.state != stRunning {
				continue
			}
			if a.coreRem > timeEps {
				dt = math.Min(dt, a.coreRem)
			}
			if a.bytesRem > timeEps && a.rate > 0 {
				dt = math.Min(dt, a.bytesRem/a.rate)
			}
		}
		if s.syncing && s.syncRem > timeEps {
			dt = math.Min(dt, s.syncRem)
		}
		if math.IsInf(dt, 1) {
			return fmt.Errorf("platsim: deadlock at t=%.6f", s.clock)
		}
		// Advance.
		s.clock += dt
		for _, a := range s.actors {
			if a.state != stRunning {
				continue
			}
			if a.coreRem > 0 {
				a.coreRem -= dt
			}
			if a.bytesRem > 0 && a.rate > 0 {
				adv := a.rate * dt
				if adv > a.bytesRem {
					adv = a.bytesRem
				}
				a.bytesRem -= adv
				s.totalBytes += adv
			}
		}
		if s.syncing {
			s.syncRem -= dt
		}
	}
}

// drainCompletions processes every actor whose current phase has finished
// and the sync barrier when it is due. Returns true if anything changed.
func (s *simulator) drainCompletions() bool {
	changed := false
	for _, a := range s.actors {
		if a.state != stRunning || a.coreRem > timeEps || a.bytesRem > timeEps {
			continue
		}
		changed = true
		s.emit(a, a.phaseName, a.phaseStart, s.clock)
		if a.sampler {
			s.queues[a.proc]++
			a.itersDone++
			// Wake the trainer if it was starved.
			for _, other := range s.actors {
				if !other.sampler && other.proc == a.proc && other.state == stWaiting {
					s.tryConsume(other)
				}
			}
			switch {
			case a.itersDone >= s.simIt:
				a.state = stDone
			case s.queues[a.proc] >= queueCap:
				a.state = stBlocked
			default:
				s.startSample(a)
			}
			continue
		}
		// Trainer phase chain.
		if a.phase < len(s.phaseNames)-1 {
			s.startTrainerPhase(a, a.phase+1)
			continue
		}
		a.state = stBarrier
		s.barrier++
		if s.barrier == s.cfg.Procs && !s.syncing {
			s.syncing = true
			s.syncRem = s.sync
			s.syncFrom = s.clock
		}
	}
	if s.syncing && s.syncRem <= timeEps {
		changed = true
		s.syncing = false
		s.barrier = 0
		for _, a := range s.actors {
			if a.sampler || a.state != stBarrier {
				continue
			}
			if s.sync > 0 {
				s.emit(a, "sync", s.syncFrom, s.clock)
			}
			a.itersDone++
			switch {
			case a.itersDone >= s.simIt:
				a.state = stDone
			case s.cfg.NoOverlap:
				s.startTrainerPhase(a, 0)
			default:
				if !s.tryConsume(a) {
					a.state = stWaiting
				}
			}
		}
		s.iterTimes = append(s.iterTimes, s.clock)
	}
	return changed
}

func (s *simulator) allTrainersDone() bool {
	for _, a := range s.actors {
		if !a.sampler && a.state != stDone {
			return false
		}
	}
	return true
}

// assignRates water-fills the platform's effective bandwidth across the
// active memory flows, respecting per-flow caps.
func (s *simulator) assignRates() {
	var active []*simActor
	for _, a := range s.actors {
		a.rate = 0
		if a.state == stRunning && a.bytesRem > timeEps {
			active = append(active, a)
		}
	}
	if len(active) == 0 {
		return
	}
	sort.Slice(active, func(i, j int) bool { return active[i].memCap < active[j].memCap })
	remaining := s.globalBW
	for i, a := range active {
		share := remaining / float64(len(active)-i)
		r := math.Min(a.memCap, share)
		a.rate = r
		remaining -= r
	}
}
