// Package platsim is the discrete-event performance simulator that stands
// in for the paper's two evaluation machines (DESIGN.md §2). It models the
// resources whose contention produces every effect the paper measures:
//
//   - per-process pipelines of sampling / gather / aggregate / dense /
//     backward / sync phases (the Fig. 2 phase alternation),
//   - a shared DRAM bandwidth pool with per-flow caps and water-filling
//     (why a single process stops scaling at ~16 cores, Fig. 1),
//   - NUMA sockets and UPI links (why ARGO flattens past 64 cores, §IX),
//   - saturating parallel efficiency per phase (why over-allocating
//     sampling or training cores back-fires, §V-A2),
//   - per-iteration synchronous-SGD cost growing with process count.
//
// Epoch times produced here drive the auto-tuner comparison (Tables IV–VI)
// and the scalability and end-to-end studies (Figs. 1, 6–8, 10–12).
package platsim

import "math"

// SamplerKind selects the sampling algorithm being simulated.
type SamplerKind string

// ModelKind selects the GNN architecture being simulated.
type ModelKind string

// The sampler/model combinations the paper evaluates, plus the two
// samplers its survey cites: GraphSAINT random walks ([18]) and
// Cluster-GCN ([17]), modelled after this repo's real implementations
// in internal/sampler so the strategy benchmark can sweep all four
// workload shapes.
const (
	Neighbor SamplerKind = "neighbor"
	Shadow   SamplerKind = "shadow"
	Saint    SamplerKind = "saint"
	ClusterK SamplerKind = "cluster"
	// PartLocal is partition-local neighbor sampling (the engine's
	// "local" regime): the frontier recursion is bounded to one
	// replica's owned + 1-hop halo nodes, shrinking the collision pool
	// and therefore the distinct-node workload per iteration.
	PartLocal SamplerKind = "partition"

	SAGE ModelKind = "sage"
	GCN  ModelKind = "gcn"
)

// Profile captures a GNN library's cost characteristics. The two profiles
// are calibrated so the *shape* of the paper's results holds: DGL has fast
// C++ kernels whose intra-process scaling saturates early (the Fig. 1
// plateau), and a well-parallelised neighbor sampler; PyG (the v2.0.3 the
// paper benchmarks) pays an order of magnitude more per unit of sampling
// and kernel work. Both libraries' ShaDow implementations are poorly
// parallelised within a process (the paper's explanation for ShaDow's
// large ARGO speedups: multi-processing is what parallelises them).
// EXPERIMENTS.md records where our calibration deviates from the paper.
type Profile struct {
	Name string

	// Sampling costs, in core-seconds per edge.
	SampleEdgeCost float64 // per sampled edge (neighbor expansion)
	ShadowEdgeCost float64 // per adjacency entry scanned during induction
	// SampleBytesPerEdge is DRAM traffic per sampled edge (CSR reads,
	// hash probes), in bytes.
	SampleBytesPerEdge float64
	// SamplerSerial is the Amdahl serial fraction of the sampling stage
	// within one process, per sampler kind. ShaDow is close to serial.
	SamplerSerial map[SamplerKind]float64

	// Training-phase parallelism is two-level. One process's sparse
	// training kernels stop scaling beyond ~TrainSatCores effective cores
	// (memory-latency bound aggregation/scatter; effective cores follow
	// K·(1−exp(−k/K))), which is why the single-process baseline flattens
	// at ~16 cores (Fig. 1). Independent processes each bring their own
	// saturation budget — ARGO's compute win — but the machine-level
	// concurrency cap TrainMachCores bounds the aggregate. Dense MLP
	// kernels have their own, later-saturating pair.
	TrainSatCores  float64
	TrainMachCores float64
	DenseSatCores  float64
	DenseMachCores float64
	// Kernel throughput per effective core.
	DenseGFPerCore float64
	AggGFPerCore   float64

	// ProcessBWFrac is κ: the fraction of the platform's peak DRAM
	// bandwidth a single process can sustain (first-touch NUMA placement,
	// bounded memory-level parallelism). Multi-processing wins because
	// each process brings its own κ-capped flow.
	ProcessBWFrac float64
	// MemAmplification scales feature-traffic bytes for cache-miss and
	// page-granularity amplification on irregular gathers.
	MemAmplification float64

	// FixedIterCost is the per-iteration, per-process framework overhead
	// (kernel launches, dataloader bookkeeping, Python dispatch for PyG)
	// that no amount of cores removes.
	FixedIterCost float64

	// Synchronous-SGD cost per iteration: SyncBase + SyncPerProc·n.
	SyncBase    float64
	SyncPerProc float64

	// DefaultSample is the library's officially recommended number of
	// sampling workers (the "Default" baseline in Tables IV/V).
	DefaultSample int
}

// DGL models Deep Graph Library v1.1 (paper baseline).
var DGL = Profile{
	Name:               "DGL",
	SampleEdgeCost:     90e-9,
	ShadowEdgeCost:     100e-9,
	SampleBytesPerEdge: 24,
	SamplerSerial: map[SamplerKind]float64{
		Neighbor: 0.08,
		Shadow:   0.70,
		// Random walks parallelise per root but the induction scan is
		// mostly serial; cluster lookup is cheap and the induction
		// dominates.
		Saint:    0.45,
		ClusterK: 0.35,
		// Same per-edge loop as Neighbor plus a branch-predictable
		// membership test; parallelises just as well.
		PartLocal: 0.08,
	},
	TrainSatCores:    6,
	TrainMachCores:   24,
	DenseSatCores:    24,
	DenseMachCores:   48,
	DenseGFPerCore:   18,
	AggGFPerCore:     2.5,
	ProcessBWFrac:    0.31,
	MemAmplification: 2.5,
	FixedIterCost:    4e-3,
	SyncBase:         0.8e-3,
	SyncPerProc:      0.25e-3,
	DefaultSample:    4,
}

// PyG models PyTorch-Geometric v2.0.3 (paper baseline): slow Python-side
// sampling, slow scatter-based kernels that do parallelise reasonably.
var PyG = Profile{
	Name:               "PyG",
	SampleEdgeCost:     800e-9,
	ShadowEdgeCost:     700e-9,
	SampleBytesPerEdge: 32,
	SamplerSerial: map[SamplerKind]float64{
		Neighbor:  0.12,
		Shadow:    0.85,
		Saint:     0.65,
		ClusterK:  0.55,
		PartLocal: 0.12,
	},
	TrainSatCores:    10,
	TrainMachCores:   16,
	DenseSatCores:    10,
	DenseMachCores:   16,
	DenseGFPerCore:   6.0,
	AggGFPerCore:     0.9,
	ProcessBWFrac:    0.30,
	MemAmplification: 2.0,
	FixedIterCost:    15e-3,
	SyncBase:         1.0e-3,
	SyncPerProc:      0.3e-3,
	DefaultSample:    4,
}

// amdahl returns the wall time of `work` core-seconds on k cores with the
// given serial fraction.
func amdahl(work float64, k int, serial float64) float64 {
	if k < 1 {
		k = 1
	}
	return work * (serial + (1-serial)/float64(k))
}

// satTime returns the wall time of `work` per-process core-seconds on k
// cores under the two-level saturation model: the process saturates at
// procK effective cores, and the aggregate over n symmetric processes is
// capped at machK — independent processes bypass per-process saturation
// (ARGO's compute win) but not the machine-level concurrency limit.
func satTime(work float64, k, n int, procK, machK float64) float64 {
	if k < 1 {
		k = 1
	}
	if n < 1 {
		n = 1
	}
	if procK <= 0 {
		return work / float64(k)
	}
	kEff := procK * (1 - math.Exp(-float64(k)/procK))
	if agg := kEff * float64(n); machK > 0 && agg > machK {
		kEff *= machK / agg
	}
	return work / kEff
}
