package platsim

import (
	"math"
	"sync"

	"argo/internal/search"
)

// defaultSimIters bounds simulated iterations per objective evaluation:
// the pipeline reaches steady state within a few iterations, so the epoch
// time is extrapolated from a 40-iteration window (validated by
// TestExtrapolationMatchesFullSim).
const defaultSimIters = 40

// Objective adapts a Scenario to search.Objective: evaluating a
// configuration simulates one training epoch and returns its duration in
// seconds. Evaluations are memoised (the simulator is deterministic), and
// optional multiplicative noise models epoch-time measurement jitter.
type Objective struct {
	Scenario Scenario
	MaxIters int
	// NoiseFrac adds deterministic pseudo-random noise of the given
	// relative magnitude, keyed by configuration and NoiseSeed — distinct
	// seeds model distinct measurement runs (the ± spread in Table IV/V).
	NoiseFrac float64
	NoiseSeed int64

	mu    sync.Mutex
	cache map[search.Config]float64
}

// NewObjective returns a noise-free memoised objective for sc.
func NewObjective(sc Scenario) *Objective {
	return &Objective{Scenario: sc, MaxIters: defaultSimIters}
}

// Evaluate implements search.Objective.
func (o *Objective) Evaluate(c search.Config) float64 {
	o.mu.Lock()
	if o.cache == nil {
		o.cache = map[search.Config]float64{}
	}
	if v, ok := o.cache[c]; ok {
		o.mu.Unlock()
		return o.noisy(c, v)
	}
	o.mu.Unlock()

	maxIters := o.MaxIters
	if maxIters == 0 {
		maxIters = defaultSimIters
	}
	m, err := Simulate(o.Scenario, SimConfig{
		Procs:       c.Procs,
		SampleCores: c.SampleCores,
		TrainCores:  c.TrainCores,
		MaxIters:    maxIters,
	})
	v := math.Inf(1)
	if err == nil {
		v = m.EpochSeconds
	}
	o.mu.Lock()
	o.cache[c] = v
	o.mu.Unlock()
	return o.noisy(c, v)
}

// noisy applies the deterministic jitter.
func (o *Objective) noisy(c search.Config, v float64) float64 {
	if o.NoiseFrac == 0 || math.IsInf(v, 1) {
		return v
	}
	h := uint64(c.Procs)*0x9e3779b9 ^ uint64(c.SampleCores)*0x85ebca6b ^
		uint64(c.TrainCores)*0xc2b2ae35 ^ uint64(o.NoiseSeed)*0x27d4eb2f
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	u := float64(h%10000)/10000*2 - 1 // uniform in [-1, 1)
	return v * (1 + o.NoiseFrac*u)
}

// BaselineConfig returns the library's officially recommended
// single-process setup on a machine with `cores` available cores: a few
// sampling workers and the rest for training (Tables IV/V "Default").
func BaselineConfig(lib Profile, cores int) (sampleCores, trainCores int) {
	s := lib.DefaultSample
	if s > cores/4 {
		s = cores / 4
	}
	if s < 1 {
		s = 1
	}
	return s, cores - s
}

// BaselineEpoch simulates the library default (one process) on a core
// budget — the DGL/PyG lines in Figs. 1 and 8.
func BaselineEpoch(sc Scenario, cores int) (float64, error) {
	s, t := BaselineConfig(sc.Library, cores)
	m, err := Simulate(sc, SimConfig{Procs: 1, SampleCores: s, TrainCores: t, MaxIters: defaultSimIters})
	if err != nil {
		return 0, err
	}
	return m.EpochSeconds, nil
}

// BestWithBudget exhaustively finds the best ARGO configuration whose
// total core demand fits the budget — the "with ARGO enabled" lines in
// Fig. 8 (the auto-tuner converges to this configuration; using the true
// optimum isolates scaling behaviour from tuner noise).
func BestWithBudget(sc Scenario, budget int) (search.Config, float64) {
	sp := search.DefaultSpace(budget)
	obj := NewObjective(sc)
	best := search.Config{}
	bestTime := math.Inf(1)
	for _, c := range sp.Enumerate() {
		if v := obj.Evaluate(c); v < bestTime {
			best, bestTime = c, v
		}
	}
	return best, bestTime
}
