package platsim

import (
	"testing"

	"argo/internal/platform"
	"argo/internal/search"
)

func BenchmarkSimulateEpoch(b *testing.B) {
	sc := scenarioFor(b, DGL, platform.IceLake4S, Neighbor, SAGE, "ogbn-products")
	cfg := SimConfig{Procs: 8, SampleCores: 4, TrainCores: 10, MaxIters: 40}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(sc, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExhaustiveSearch112(b *testing.B) {
	sc := scenarioFor(b, DGL, platform.IceLake4S, Neighbor, SAGE, "ogbn-products")
	sp := search.DefaultSpace(112)
	for i := 0; i < b.N; i++ {
		obj := NewObjective(sc) // fresh cache: measure the real sweep
		search.Exhaustive(sp, obj)
	}
}

func BenchmarkPerProcessWork(b *testing.B) {
	sc := scenarioFor(b, DGL, platform.IceLake4S, Neighbor, SAGE, "ogbn-papers100M")
	for i := 0; i < b.N; i++ {
		sc.PerProcessWork(8)
	}
}
